// crowdtopk_loadgen: closed-loop load generator for crowdtopk_server
// (src/net, docs/NETWORK.md). Submits a seeded trace of top-k queries over
// TCP and prints a deterministic latency / cost report.
//
// The arrival schedule is the same seeded Poisson process the offline
// serving bench replays (serve::PoissonArrivals); by default it only
// labels the queries (no wall-clock pacing), because every latency figure
// in the report is *simulated* seconds carried back in the Result frames —
// the crowd is a deterministic simulation, so for a fixed seed and one
// worker the whole report is byte-identical across runs. That invariant is
// what the net_smoke CI job diffs. Multiple workers keep every number
// correct per query but may split the trace into different server-side
// batches, so only the single-worker report is canonical.
//
// All knobs are environment variables (run with --help for the list).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "serve/arrival.h"
#include "util/env.h"
#include "util/file_io.h"
#include "util/status.h"

namespace {

using namespace crowdtopk;

constexpr char kHelp[] = R"(crowdtopk_loadgen [--help]

Drives crowdtopk_server (or crowdtopk_router — same protocol) with a
seeded query trace and prints a deterministic report (byte-identical
across runs for a fixed seed and CROWDTOPK_LOADGEN_WORKERS=1 — latency is
simulated time from the server, never wall clock). The shard_id column is
0 against a plain server and the executing shard behind a router.

Target
  CROWDTOPK_NET_HOST        server host                (default 127.0.0.1)
  CROWDTOPK_NET_PORT        server's bound port        (required; no default)

Workload knobs
  CROWDTOPK_LOADGEN_QUERIES queries in the trace             (default 24)
  CROWDTOPK_LOADGEN_RATE    Poisson arrival rate lambda /s   (default 0.01)
  CROWDTOPK_LOADGEN_DATASET imdb|book|jester|photo|peopleage (peopleage)
  CROWDTOPK_LOADGEN_K       top-k                            (default 10)
  CROWDTOPK_LOADGEN_ALPHA   significance level               (default 0.02)
  CROWDTOPK_LOADGEN_BUDGET  per-pair budget B, <=0 = server default (0)
  CROWDTOPK_LOADGEN_ALGOS   comma list: spr,tourtree,heapsort,quickselect
                            — query q runs algos[q mod len]  (all four)
  CROWDTOPK_LOADGEN_WORKERS closed-loop client threads       (default 1)
  CROWDTOPK_LOADGEN_PACE_MS_PER_S
                            wall-clock pacing: sleep this many ms per
                            simulated arrival second; 0 = no pacing (0)
  CROWDTOPK_SEED            arrival-trace seed         (default 20170514)

Output knobs
  CROWDTOPK_LOADGEN_REPORT  also write the report to this path (default "")

Exit codes: 0 all queries reached a terminal outcome, 1 transport failure.
)";

std::vector<std::string> SplitCsv(const std::string& list) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : list) {
    if (c == ',') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else if (c != ' ') {
      current += c;
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size());
  int64_t idx = static_cast<int64_t>(std::ceil(rank)) - 1;
  idx = std::max<int64_t>(0, std::min<int64_t>(idx, values.size() - 1));
  return values[idx];
}

struct QueryRecord {
  bool transport_error = false;
  util::Status status;  // transport status when transport_error
  int64_t query_id = -1;
  net::Result result;
};

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::printf("%s", kHelp);
      return 0;
    }
    std::fprintf(stderr, "unknown argument %s (try --help)\n", argv[i]);
    return 1;
  }

  net::ClientOptions client_options;
  client_options.host = util::GetEnvString("CROWDTOPK_NET_HOST", "127.0.0.1");
  client_options.port = util::NetPort();
  if (client_options.port <= 0) {
    std::fprintf(stderr,
                 "crowdtopk_loadgen: CROWDTOPK_NET_PORT must be the server's "
                 "bound port (the server binds an ephemeral port by default "
                 "and prints 'listening on 127.0.0.1:<port>')\n");
    return 1;
  }

  const int64_t queries = util::GetEnvInt64("CROWDTOPK_LOADGEN_QUERIES", 24);
  const double rate = util::GetEnvDouble("CROWDTOPK_LOADGEN_RATE", 0.01);
  const std::string dataset =
      util::GetEnvString("CROWDTOPK_LOADGEN_DATASET", "peopleage");
  const int64_t k = util::GetEnvInt64("CROWDTOPK_LOADGEN_K", 10);
  const double alpha = util::GetEnvDouble("CROWDTOPK_LOADGEN_ALPHA", 0.02);
  const int64_t budget = util::GetEnvInt64("CROWDTOPK_LOADGEN_BUDGET", 0);
  const std::vector<std::string> algos = SplitCsv(util::GetEnvString(
      "CROWDTOPK_LOADGEN_ALGOS", "spr,tourtree,heapsort,quickselect"));
  const int64_t workers =
      std::max<int64_t>(1, util::GetEnvInt64("CROWDTOPK_LOADGEN_WORKERS", 1));
  const double pace_ms_per_s =
      util::GetEnvDouble("CROWDTOPK_LOADGEN_PACE_MS_PER_S", 0.0);
  const uint64_t seed = util::BenchSeed();
  if (queries <= 0 || algos.empty()) {
    std::fprintf(stderr, "nothing to do (queries=%lld, %zu algos)\n",
                 static_cast<long long>(queries), algos.size());
    return 1;
  }

  const std::vector<double> arrivals =
      serve::PoissonArrivals(queries, rate, seed);

  std::vector<QueryRecord> records(queries);
  const auto start = std::chrono::steady_clock::now();

  // Closed loop: worker w owns query indices w, w+W, w+2W, ... and runs
  // each submit -> await to completion before the next, over its own
  // connection. Workers never share state, so no locks.
  auto run_worker = [&](int64_t w) {
    net::Client client(client_options);
    for (int64_t q = w; q < queries; q += workers) {
      if (pace_ms_per_s > 0.0) {
        const auto due =
            start + std::chrono::milliseconds(static_cast<int64_t>(
                        arrivals[q] * pace_ms_per_s));
        std::this_thread::sleep_until(due);
      }
      net::SubmitQuery submit;
      submit.dataset = dataset;
      submit.k = k;
      submit.algo = algos[q % algos.size()];
      submit.alpha = alpha;
      submit.budget = budget;
      util::StatusOr<int64_t> id = client.Submit(submit);
      if (!id.ok()) {
        records[q].transport_error = true;
        records[q].status = id.status();
        continue;
      }
      records[q].query_id = *id;
      util::StatusOr<net::Result> result = client.AwaitResult(*id);
      if (!result.ok()) {
        records[q].transport_error = true;
        records[q].status = result.status();
        continue;
      }
      records[q].result = std::move(*result);
    }
  };

  std::vector<std::thread> threads;
  for (int64_t w = 1; w < workers; ++w) threads.emplace_back(run_worker, w);
  run_worker(0);
  for (std::thread& t : threads) t.join();

  // ----- deterministic report (simulated metrics only) -------------------
  std::string report;
  Appendf(&report,
          "crowdtopk_loadgen: %lld queries (%s) on %s, k=%lld, alpha=%g, "
          "budget=%lld, lambda=%g/s, seed=%llu, workers=%lld\n",
          static_cast<long long>(queries),
          util::GetEnvString("CROWDTOPK_LOADGEN_ALGOS",
                             "spr,tourtree,heapsort,quickselect")
              .c_str(),
          dataset.c_str(), static_cast<long long>(k), alpha,
          static_cast<long long>(budget), rate,
          static_cast<unsigned long long>(seed),
          static_cast<long long>(workers));
  Appendf(&report,
          "q,query_id,algo,arrival_s,status,rounds,microtasks,latency_s,"
          "queue_wait_s,precision,shard_id\n");

  int64_t ok_count = 0;
  int64_t rejected = 0;
  int64_t transport_errors = 0;
  int64_t total_microtasks = 0;
  int64_t total_rounds = 0;
  double precision_sum = 0.0;
  std::vector<double> latencies;
  std::vector<double> queue_waits;
  for (int64_t q = 0; q < queries; ++q) {
    const QueryRecord& r = records[q];
    if (r.transport_error) {
      ++transport_errors;
      Appendf(&report, "%lld,%lld,%s,%.6f,transport:%s,,,,,,\n",
              static_cast<long long>(q),
              static_cast<long long>(r.query_id),
              algos[q % algos.size()].c_str(), arrivals[q],
              util::StatusCodeName(r.status.code()));
      continue;
    }
    const net::Result& res = r.result;
    const bool ok = res.status_code ==
                    static_cast<uint32_t>(util::StatusCode::kOk);
    if (ok) {
      ++ok_count;
      total_microtasks += res.total_microtasks;
      total_rounds += res.rounds;
      precision_sum += res.precision_at_k;
      latencies.push_back(res.latency_seconds);
      queue_waits.push_back(res.queue_wait_seconds);
    } else {
      ++rejected;
    }
    Appendf(&report, "%lld,%lld,%s,%.6f,%s,%lld,%lld,%.6f,%.6f,%.4f,%lld\n",
            static_cast<long long>(q), static_cast<long long>(r.query_id),
            algos[q % algos.size()].c_str(), arrivals[q],
            ok ? "ok"
               : util::StatusCodeName(
                     static_cast<util::StatusCode>(res.status_code)),
            static_cast<long long>(res.rounds),
            static_cast<long long>(res.total_microtasks),
            res.latency_seconds, res.queue_wait_seconds,
            res.precision_at_k, static_cast<long long>(res.shard_id));
  }
  Appendf(&report,
          "summary: ok=%lld rejected=%lld transport_errors=%lld "
          "total_microtasks=%lld total_rounds=%lld mean_precision=%.4f\n",
          static_cast<long long>(ok_count), static_cast<long long>(rejected),
          static_cast<long long>(transport_errors),
          static_cast<long long>(total_microtasks),
          static_cast<long long>(total_rounds),
          ok_count > 0 ? precision_sum / static_cast<double>(ok_count) : 0.0);
  Appendf(&report,
          "latency_s: p50=%.6f p95=%.6f p99=%.6f | queue_wait_s: p50=%.6f "
          "p95=%.6f p99=%.6f\n",
          Percentile(latencies, 50), Percentile(latencies, 95),
          Percentile(latencies, 99), Percentile(queue_waits, 50),
          Percentile(queue_waits, 95), Percentile(queue_waits, 99));

  std::fputs(report.c_str(), stdout);
  const std::string report_path =
      util::GetEnvString("CROWDTOPK_LOADGEN_REPORT", "");
  if (!report_path.empty()) {
    const util::Status status = util::WriteFileAtomic(report_path, report);
    if (!status.ok()) {
      std::fprintf(stderr, "loadgen report: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return transport_errors == 0 ? 0 : 1;
}
