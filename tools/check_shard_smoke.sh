#!/usr/bin/env bash
# Sharded scale-out smoke check (src/shard, docs/SHARDING.md).
#
# Job 1 — merged-report byte-determinism: start crowdtopk_router over four
# in-process shards, drive it with crowdtopk_loadgen under a fixed seed,
# drain, then repeat with a fresh router. The two merged per-query reports
# (pure columns, global-id order) must be byte-identical.
#
# Job 2 — shard-count invariance: a 1-shard router under the same seed
# must produce the same merged table bytes as the 4-shard runs. Placement
# only decides *where* a query runs, never its seed streams.
#
# Job 3 — failover: a 4-shard router with one shard killed by fault
# injection while executing its first batch must still exit 0 on SIGTERM
# with every admitted query completed, re-dispatch accounted in the drain
# summary, and the *same* merged table bytes as the healthy runs.
#
# Usage: tools/check_shard_smoke.sh <build_dir>
set -eu

build="${1:?usage: tools/check_shard_smoke.sh <build_dir>}"
router="$build/tools/crowdtopk_router"
loadgen="$build/tools/crowdtopk_loadgen"
[ -x "$router" ] || { echo "FAIL: $router not built"; exit 1; }
[ -x "$loadgen" ] || { echo "FAIL: $loadgen not built"; exit 1; }

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

queries=12
k=5

# run_once <tag> <shards> [extra env as VAR=val ...]
run_once() {
  local tag="$1" shards="$2"
  shift 2
  local log="$work/router_$tag.log"

  env CROWDTOPK_NET_PORT=0 CROWDTOPK_SHARDS="$shards" \
      CROWDTOPK_ROUTER_REPORT="$work/report_$tag.txt" "$@" \
      "$router" > "$log" 2>&1 &
  local pid=$!

  local port=""
  for _ in $(seq 100); do
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
        "$log" 2>/dev/null)"
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "FAIL($tag): router never reported its port"; cat "$log"
    kill "$pid" 2>/dev/null || true
    exit 1
  fi

  env CROWDTOPK_NET_PORT="$port" CROWDTOPK_LOADGEN_QUERIES="$queries" \
      CROWDTOPK_LOADGEN_K="$k" CROWDTOPK_LOADGEN_WORKERS=1 \
      "$loadgen" > "$work/loadgen_$tag.txt" || {
    echo "FAIL($tag): loadgen reported transport errors"; cat "$log"
    kill "$pid" 2>/dev/null || true
    exit 1
  }

  kill -TERM "$pid"
  local status=0
  wait "$pid" || status=$?
  if [ "$status" -ne 0 ]; then
    echo "FAIL($tag): router exited $status on SIGTERM"; cat "$log"
    exit 1
  fi
  if ! grep -q "crowdtopk_router: drained" "$log"; then
    echo "FAIL($tag): no drain summary in router log"; cat "$log"
    exit 1
  fi
  if ! grep -q "completed=$queries" "$log"; then
    echo "FAIL($tag): drain summary does not show completed=$queries"
    cat "$log"
    exit 1
  fi
  # The merged table (pure columns only) is what all runs must agree on;
  # the report header carries shard counts and counters, so strip to the
  # table for the cross-run diffs.
  sed -n '/^gid,/,$p' "$work/report_$tag.txt" > "$work/table_$tag.txt"
  if [ ! -s "$work/table_$tag.txt" ]; then
    echo "FAIL($tag): merged report has no per-query table"
    cat "$work/report_$tag.txt"
    exit 1
  fi
  echo "   OK($tag): $queries queries routed, clean drain"
}

echo "== run 1: 4 shards =="
run_once run1 4
echo "== run 2: fresh 4-shard router, same seed =="
run_once run2 4

echo "== full merged-report byte-identity (fresh run, same config) =="
if ! cmp -s "$work/report_run1.txt" "$work/report_run2.txt"; then
  echo "FAIL: same-seed 4-shard merged reports differ"
  diff "$work/report_run1.txt" "$work/report_run2.txt" | head -10
  exit 1
fi
if ! cmp -s "$work/loadgen_run1.txt" "$work/loadgen_run2.txt"; then
  echo "FAIL: same-seed 4-shard loadgen reports differ"
  diff "$work/loadgen_run1.txt" "$work/loadgen_run2.txt" | head -10
  exit 1
fi
echo "   OK: merged + loadgen reports byte-identical"

echo "== run 3: 1 shard, same seed =="
run_once run3 1

echo "== shard-count invariance of the merged table =="
if ! cmp -s "$work/table_run1.txt" "$work/table_run3.txt"; then
  echo "FAIL: 4-shard and 1-shard merged tables differ"
  diff "$work/table_run1.txt" "$work/table_run3.txt" | head -10
  exit 1
fi
echo "   OK: K=4 and K=1 tables byte-identical"

echo "== run 4: 4 shards, shard 2 killed on its first batch =="
run_once run4 4 CROWDTOPK_SHARD_FAIL=2 CROWDTOPK_SHARD_FAIL_AFTER=1

echo "== failover completed every query with the same table bytes =="
if ! cmp -s "$work/table_run1.txt" "$work/table_run4.txt"; then
  echo "FAIL: shard-kill run's merged table differs from the healthy run"
  diff "$work/table_run1.txt" "$work/table_run4.txt" | head -10
  exit 1
fi
if ! grep -q "exhausted=0" "$work/router_run4.log"; then
  echo "FAIL: failover run exhausted a re-dispatch budget"
  cat "$work/router_run4.log"
  exit 1
fi
# Non-vacuity: the killed shard must actually have died mid-batch and
# queries must actually have been re-dispatched, or this run proves
# nothing about failover.
if ! grep -Eq "failures=[1-9]" "$work/router_run4.log" ||
   ! grep -Eq "redispatched=[1-9]" "$work/router_run4.log"; then
  echo "FAIL: shard-kill run recorded no failure/re-dispatch (vacuous)"
  cat "$work/router_run4.log"
  exit 1
fi
echo "   OK: failover run byte-identical, no exhausted queries"
echo "PASS: shard smoke"
