#!/usr/bin/env bash
# Crash-recovery determinism check for the durable-state subsystem
# (src/persist, docs/PERSISTENCE.md).
#
# Job 1 — kill + resume byte-identity: run the serve CLI to completion for
# a reference report, then re-run with CROWDTOPK_PERSIST_KILL_BARRIER so
# the process _Exit(137)s right after a WAL batch lands, and --resume it.
# The resumed run's machine-readable report must byte-match the reference
# for CROWDTOPK_JOBS=1 and =8 (resume may even switch worker counts).
#
# Job 2 — corrupted WAL tail: flip a byte near the tail of the newest
# surviving segment before resuming. The resume must exit 0 (graceful
# degradation, not a crash), report dropped bytes, and still reproduce the
# reference report byte-for-byte — corruption only lengthens catch-up.
#
# Usage: tools/check_crash_recovery.sh <build_dir>
set -eu

build="${1:?usage: tools/check_crash_recovery.sh <build_dir>}"
serve="$build/tools/crowdtopk_serve"
[ -x "$serve" ] || { echo "FAIL: $serve not built"; exit 1; }

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

queries=12
kill_barrier=40

run_serve() {  # run_serve <jobs> <report> <persist_dir> [extra args...]
  local jobs="$1" report="$2" dir="$3"; shift 3
  env CROWDTOPK_SERVE_QUERIES="$queries" CROWDTOPK_CACHE=1 \
      CROWDTOPK_JOBS="$jobs" CROWDTOPK_SERVE_REPORT="$report" \
      CROWDTOPK_PERSIST_DIR="$dir" "$serve" "$@"
}

echo "== reference run (no persistence) =="
env CROWDTOPK_SERVE_QUERIES="$queries" CROWDTOPK_CACHE=1 CROWDTOPK_JOBS=4 \
    CROWDTOPK_SERVE_REPORT="$work/reference.jsonl" \
    "$serve" > /dev/null

for jobs in 1 8; do
  echo "== kill at barrier $kill_barrier + resume, jobs=$jobs =="
  dir="$work/persist_j$jobs"
  status=0
  env CROWDTOPK_SERVE_QUERIES="$queries" CROWDTOPK_CACHE=1 \
      CROWDTOPK_JOBS="$jobs" CROWDTOPK_PERSIST_DIR="$dir" \
      CROWDTOPK_PERSIST_KILL_BARRIER="$kill_barrier" \
      "$serve" > /dev/null 2>&1 || status=$?
  if [ "$status" -ne 137 ]; then
    echo "FAIL: kill run exited $status, expected 137"; exit 1
  fi
  run_serve "$jobs" "$work/resumed_j$jobs.jsonl" "$dir" --resume > /dev/null
  if ! cmp -s "$work/reference.jsonl" "$work/resumed_j$jobs.jsonl"; then
    echo "FAIL: resumed report (jobs=$jobs) differs from reference"
    diff "$work/reference.jsonl" "$work/resumed_j$jobs.jsonl" | head -5
    exit 1
  fi
  echo "   OK: resumed report byte-identical"
done

echo "== corrupted WAL tail degrades gracefully =="
dir="$work/persist_corrupt"
status=0
env CROWDTOPK_SERVE_QUERIES="$queries" CROWDTOPK_CACHE=1 \
    CROWDTOPK_JOBS=1 CROWDTOPK_PERSIST_DIR="$dir" \
    CROWDTOPK_PERSIST_KILL_BARRIER="$kill_barrier" \
    "$serve" > /dev/null 2>&1 || status=$?
[ "$status" -eq 137 ] || { echo "FAIL: kill run exited $status"; exit 1; }

segment="$(ls "$dir"/wal-*.log | sort | tail -1)"
size="$(stat -c%s "$segment")"
printf '\xff' | dd of="$segment" bs=1 seek=$((size - 3)) conv=notrunc 2>/dev/null
echo "   corrupted tail byte of $(basename "$segment")"

run_serve 8 "$work/resumed_corrupt.jsonl" "$dir" --resume \
  > "$work/corrupt_stdout.txt" 2> "$work/corrupt_stderr.txt"
if ! cmp -s "$work/reference.jsonl" "$work/resumed_corrupt.jsonl"; then
  echo "FAIL: post-corruption resume differs from reference"; exit 1
fi
if ! grep -q "dropped_bytes=[1-9]" "$work/corrupt_stdout.txt"; then
  echo "FAIL: resume did not report dropped WAL bytes"
  grep "^persist:" "$work/corrupt_stdout.txt" || true
  exit 1
fi
if ! grep -q "WAL tail damaged" "$work/corrupt_stderr.txt"; then
  echo "FAIL: resume did not warn about the damaged tail"; exit 1
fi
echo "   OK: clean exit, dropped bytes reported, report byte-identical"

echo "PASS: crash-recovery determinism checks"
