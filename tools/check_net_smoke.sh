#!/usr/bin/env bash
# Network-serving smoke check (src/net, docs/NETWORK.md).
#
# Job 1 — loadgen byte-determinism: start crowdtopk_server on an ephemeral
# loopback port, drive it with crowdtopk_loadgen (single worker, fixed
# seed), SIGTERM the server, then repeat with a *fresh* server under the
# same seed. The two loadgen reports must be byte-identical: every latency
# and cost figure is simulated time carried back in Result frames, so the
# whole report is a pure function of the seeds.
#
# Job 2 — graceful drain: both server runs must exit 0 on SIGTERM with a
# "drained" summary whose completed-query count matches the trace, i.e.
# every accepted query finished and was delivered before exit.
#
# Usage: tools/check_net_smoke.sh <build_dir>
set -eu

build="${1:?usage: tools/check_net_smoke.sh <build_dir>}"
server="$build/tools/crowdtopk_server"
loadgen="$build/tools/crowdtopk_loadgen"
[ -x "$server" ] || { echo "FAIL: $server not built"; exit 1; }
[ -x "$loadgen" ] || { echo "FAIL: $loadgen not built"; exit 1; }

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

queries=8
k=5

run_once() {  # run_once <tag>
  local tag="$1"
  local srv_log="$work/server_$tag.log"

  env CROWDTOPK_NET_PORT=0 CROWDTOPK_CACHE=1 \
      "$server" > "$srv_log" 2>&1 &
  local srv_pid=$!

  local port=""
  for _ in $(seq 100); do
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
        "$srv_log" 2>/dev/null)"
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "FAIL($tag): server never reported its port"; cat "$srv_log"
    kill "$srv_pid" 2>/dev/null || true
    exit 1
  fi

  env CROWDTOPK_NET_PORT="$port" CROWDTOPK_LOADGEN_QUERIES="$queries" \
      CROWDTOPK_LOADGEN_K="$k" CROWDTOPK_LOADGEN_WORKERS=1 \
      CROWDTOPK_LOADGEN_REPORT="$work/report_$tag.txt" \
      "$loadgen" > /dev/null || {
    echo "FAIL($tag): loadgen reported transport errors"; cat "$srv_log"
    kill "$srv_pid" 2>/dev/null || true
    exit 1
  }

  kill -TERM "$srv_pid"
  local status=0
  wait "$srv_pid" || status=$?
  if [ "$status" -ne 0 ]; then
    echo "FAIL($tag): server exited $status on SIGTERM"; cat "$srv_log"
    exit 1
  fi
  if ! grep -q "crowdtopk_server: drained" "$srv_log"; then
    echo "FAIL($tag): no drain summary in server log"; cat "$srv_log"
    exit 1
  fi
  if ! grep -q "completed=$queries" "$srv_log"; then
    echo "FAIL($tag): drain summary does not show completed=$queries"
    cat "$srv_log"
    exit 1
  fi
  echo "   OK($tag): $queries queries served, clean drain"
}

echo "== run 1: serve + drain =="
run_once run1
echo "== run 2: fresh server, same seed =="
run_once run2

echo "== loadgen report byte-identity =="
if ! cmp -s "$work/report_run1.txt" "$work/report_run2.txt"; then
  echo "FAIL: same-seed loadgen reports differ"
  diff "$work/report_run1.txt" "$work/report_run2.txt" | head -10
  exit 1
fi
echo "   OK: reports byte-identical"
echo "PASS: network smoke"
