// crowdtopk_server: TCP front-end for the serving layer (src/net,
// docs/NETWORK.md). Binds 127.0.0.1:CROWDTOPK_NET_PORT, speaks the framed
// binary protocol of src/net/protocol.h, and executes SubmitQuery requests
// in shared-capacity batches through serve::QueryService.
//
// SIGTERM / SIGINT start a graceful drain: the acceptor stops, new
// submissions are refused with UNAVAILABLE, every already-accepted query
// finishes and its result is flushed, then the process exits 0. Queries
// still queued when CROWDTOPK_NET_DRAIN_TIMEOUT_MS expires are rejected
// rather than executed.
//
// All knobs are environment variables (run with --help for the list). The
// bound port is printed on stdout — with CROWDTOPK_NET_PORT=0 that is the
// only way to learn the ephemeral port, and the smoke script parses it.

#include <csignal>
#include <cstdio>
#include <cstring>

#include "net/server.h"
#include "util/env.h"

namespace {

using namespace crowdtopk;

constexpr char kHelp[] = R"(crowdtopk_server [--help]

Serves crowdsourced top-k queries over TCP on 127.0.0.1 (wire protocol:
docs/NETWORK.md). SIGTERM/SIGINT drain gracefully: in-flight queries
finish, new ones are refused with UNAVAILABLE.

Network knobs
  CROWDTOPK_NET_PORT             TCP port; 0 = ephemeral    (default 0)
  CROWDTOPK_NET_MAX_CONNS        connection bound           (default 64)
  CROWDTOPK_NET_IDLE_TIMEOUT_MS  idle-connection close, <=0 off (60000)
  CROWDTOPK_NET_DRAIN_TIMEOUT_MS drain budget on SIGTERM    (default 30000)
  CROWDTOPK_NET_MAX_QUEUE        admission bound, <0 = inf  (default 256)

Engine knobs (same meaning as crowdtopk_serve)
  CROWDTOPK_SERVE_WORKERS   crowd worker slots W per round   (default 100)
  CROWDTOPK_SERVE_ETA       per-pair batch cap eta           (default 30)
  CROWDTOPK_SERVE_INFLIGHT  max concurrently served queries  (default 16)
  CROWDTOPK_SERVE_DEADLINE  assignment deadline seconds      (default 60)
  CROWDTOPK_SERVE_ABANDON   worker abandonment probability   (default 0.03)
  CROWDTOPK_SERVE_ATTEMPTS  dispatch attempts per microtask  (default 4)
  CROWDTOPK_CACHE, CROWDTOPK_CACHE_CAPACITY, CROWDTOPK_CACHE_TRANSITIVITY
                            cross-query judgment cache; committed entries
                            chain across batches
  CROWDTOPK_SEED            master seed                (default 20170514)
  CROWDTOPK_JOBS            wave-simulation threads, 0 = hw   (default 1)
  CROWDTOPK_TRACE=1, CROWDTOPK_TRACE_DIR  net/* telemetry counters
                            (net_server.trace.jsonl on exit)

Exit codes: 0 clean drain, 2 startup failure.
)";

net::Server* g_server = nullptr;

// Only async-signal-safe work here: RequestDrain is an atomic store plus a
// self-pipe write.
void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestDrain();
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::printf("%s", kHelp);
      return 0;
    }
    std::fprintf(stderr, "unknown argument %s (try --help)\n", argv[i]);
    return 2;
  }

  net::ServerOptions options;
  options.port = util::NetPort();
  options.max_connections = util::NetMaxConns();
  options.idle_timeout_ms = util::NetIdleTimeoutMs();
  options.drain_timeout_ms = util::NetDrainTimeoutMs();
  options.max_queue = util::GetEnvInt64("CROWDTOPK_NET_MAX_QUEUE", 256);
  options.seed = util::BenchSeed();
  options.schedule.crowd_workers =
      util::GetEnvInt64("CROWDTOPK_SERVE_WORKERS", 100);
  options.schedule.per_pair_batch =
      util::GetEnvInt64("CROWDTOPK_SERVE_ETA", 30);
  options.schedule.deadline_seconds =
      util::GetEnvDouble("CROWDTOPK_SERVE_DEADLINE", 60.0);
  options.schedule.abandon_probability =
      util::GetEnvDouble("CROWDTOPK_SERVE_ABANDON", 0.03);
  options.schedule.max_attempts =
      util::GetEnvInt64("CROWDTOPK_SERVE_ATTEMPTS", 4);
  options.max_inflight = util::GetEnvInt64("CROWDTOPK_SERVE_INFLIGHT", 16);
  options.jobs = util::BenchJobs();
  options.cache.enabled = util::CacheEnabled();
  options.cache.capacity = util::CacheCapacity();
  options.cache.transitivity = util::CacheTransitivity();
  if (util::TraceEnabled()) options.trace_dir = util::TraceDir();

  net::Server server(options);
  const util::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "crowdtopk_server: %s\n", status.ToString().c_str());
    return 2;
  }

  g_server = &server;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  // The port line is machine-parsed (smoke script, loadgen wrappers);
  // flush it before blocking in the event loop.
  std::printf("crowdtopk_server: listening on 127.0.0.1:%d\n", server.port());
  std::printf(
      "crowdtopk_server: max_conns=%lld idle_timeout_ms=%lld "
      "drain_timeout_ms=%lld max_queue=%lld seed=%llu cache=%d\n",
      static_cast<long long>(options.max_connections),
      static_cast<long long>(options.idle_timeout_ms),
      static_cast<long long>(options.drain_timeout_ms),
      static_cast<long long>(options.max_queue),
      static_cast<unsigned long long>(options.seed),
      options.cache.enabled ? 1 : 0);
  std::fflush(stdout);

  server.Serve();

  const net::StatsReply stats = server.Stats();
  std::printf(
      "crowdtopk_server: drained | conns accepted=%lld rejected=%lld "
      "idle_closed=%lld | frames in=%lld out=%lld crc_errors=%lld "
      "malformed=%lld version_mismatches=%lld | queries submitted=%lld "
      "completed=%lld rejected=%lld cancelled=%lld batches=%lld\n",
      static_cast<long long>(stats.accepted_connections),
      static_cast<long long>(stats.rejected_connections),
      static_cast<long long>(stats.idle_closed),
      static_cast<long long>(stats.frames_in),
      static_cast<long long>(stats.frames_out),
      static_cast<long long>(stats.crc_errors),
      static_cast<long long>(stats.malformed_frames),
      static_cast<long long>(stats.version_mismatches),
      static_cast<long long>(stats.queries_submitted),
      static_cast<long long>(stats.queries_completed),
      static_cast<long long>(stats.queries_rejected),
      static_cast<long long>(stats.queries_cancelled),
      static_cast<long long>(stats.batches));
  g_server = nullptr;
  return 0;
}
