#!/usr/bin/env bash
# Docs lint: verify that every relative markdown link in the repo's tracked
# .md files points at a file (or directory) that actually exists.
#
# Checked:   [text](relative/path), [text](relative/path#anchor)
# Ignored:   http(s)://, mailto:, pure #anchors, code spans
#
# Usage: tools/check_markdown_links.sh [repo_root]
# Exit 0 when all links resolve; 1 otherwise, listing each broken link.
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 1

if git -C "$root" rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  mapfile -t files < <(git -C "$root" ls-files '*.md')
else
  mapfile -t files < <(find "$root" -name '*.md' -not -path '*/build/*' \
    -printf '%P\n')
fi

failures=0

# The documentation set the README promises must exist.
for required in README.md docs/ARCHITECTURE.md docs/OBSERVABILITY.md \
    docs/BENCHMARKS.md docs/PERSISTENCE.md docs/NETWORK.md \
    docs/SIMULATION.md docs/SHARDING.md; do
  if [ ! -f "$root/$required" ]; then
    echo "MISSING: required doc $required"
    failures=$((failures + 1))
  fi
done

for file in "${files[@]}"; do
  dir="$(dirname "$file")"
  # Extract every (...) target of an inline markdown link in this file.
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"          # strip anchor
    [ -z "$path" ] && continue
    case "$path" in
      /*) resolved="$root$path" ;;              # repo-absolute
      *) resolved="$dir/$path" ;;               # relative to the file
    esac
    if [ ! -e "$resolved" ]; then
      echo "BROKEN: $file -> $target"
      failures=$((failures + 1))
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$file" 2>/dev/null |
    sed 's/.*](\([^)]*\))/\1/' | sed 's/ .*//')
done

if [ "$failures" -gt 0 ]; then
  echo "docs-lint: $failures broken link(s)"
  exit 1
fi
echo "docs-lint: all markdown links resolve"
