// crowdtopk_router: sharded scale-out front-end (src/shard,
// docs/SHARDING.md). Speaks the same wire protocol as crowdtopk_server on
// 127.0.0.1:CROWDTOPK_NET_PORT, but executes every batch through a
// shard::RouterEngine — a deterministic router over K engine shards:
// CROWDTOPK_SHARDS in-process engines by default, or one remote
// crowdtopk_server per CROWDTOPK_SHARD_PORTS endpoint. For a fixed master
// seed the merged per-query result table is byte-identical for every
// shard count; a shard that dies mid-batch loses its sub-batch and the
// router re-dispatches the queries to survivors (bounded by
// CROWDTOPK_SHARD_REDISPATCH).
//
// SIGTERM / SIGINT drain gracefully exactly like crowdtopk_server: the
// drain fans out through the router, every admitted query finishes (or
// fails over), results are flushed, then the process exits 0.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/server.h"
#include "shard/router_engine.h"
#include "util/env.h"
#include "util/file_io.h"

namespace {

using namespace crowdtopk;

constexpr char kHelp[] = R"(crowdtopk_router [--help]

Routes crowdsourced top-k queries over K engine shards behind one TCP
front-end on 127.0.0.1 (wire protocol: docs/NETWORK.md; sharding model:
docs/SHARDING.md). SIGTERM/SIGINT drain gracefully: admitted queries
finish (failing over past dead shards), new ones are refused.

Sharding knobs
  CROWDTOPK_SHARDS            in-process engine shards       (default 1)
  CROWDTOPK_SHARD_POLICY      rendezvous | modulo   (default rendezvous)
  CROWDTOPK_SHARD_PORTS       comma-separated crowdtopk_server ports;
                              overrides CROWDTOPK_SHARDS with one remote
                              shard per endpoint          (default unset)
  CROWDTOPK_SHARD_CACHE_SYNC  =1 gossip judgment-cache entries between
                              shards at batch barriers       (default 0)
  CROWDTOPK_SHARD_REDISPATCH  failover re-dispatches per query (default 2)
  CROWDTOPK_SHARD_FAIL        fault injection: this shard id dies ...
  CROWDTOPK_SHARD_FAIL_AFTER  ... while executing its N-th batch (default 1)
  CROWDTOPK_ROUTER_REPORT     write the merged per-query report (pure
                              columns, global-id order) here on drain

Network knobs (same as crowdtopk_server)
  CROWDTOPK_NET_PORT             TCP port; 0 = ephemeral    (default 0)
  CROWDTOPK_NET_MAX_CONNS        connection bound           (default 64)
  CROWDTOPK_NET_IDLE_TIMEOUT_MS  idle-connection close, <=0 off (60000)
  CROWDTOPK_NET_DRAIN_TIMEOUT_MS drain budget on SIGTERM    (default 30000)
  CROWDTOPK_NET_MAX_QUEUE        admission bound, <0 = inf  (default 256)

Engine knobs (per shard; same meaning as crowdtopk_serve)
  CROWDTOPK_SERVE_WORKERS   crowd worker slots W per round   (default 100)
  CROWDTOPK_SERVE_ETA       per-pair batch cap eta           (default 30)
  CROWDTOPK_SERVE_INFLIGHT  max concurrently served queries  (default 16)
  CROWDTOPK_SERVE_DEADLINE  assignment deadline seconds      (default 60)
  CROWDTOPK_SERVE_ABANDON   worker abandonment probability   (default 0.03)
  CROWDTOPK_SERVE_ATTEMPTS  dispatch attempts per microtask  (default 4)
  CROWDTOPK_CACHE, CROWDTOPK_CACHE_CAPACITY, CROWDTOPK_CACHE_TRANSITIVITY
                            per-shard judgment cache (cache-sync gossips
                            committed entries between shards)
  CROWDTOPK_SEED            master seed                (default 20170514)
  CROWDTOPK_JOBS            wave-simulation threads, 0 = hw   (default 1)
  CROWDTOPK_TRACE=1, CROWDTOPK_TRACE_DIR  net/* and shard/* counters
                            (net_server.trace.jsonl,
                             shard_router.trace.jsonl on exit)

Exit codes: 0 clean drain, 2 startup failure.
)";

net::Server* g_server = nullptr;

// Only async-signal-safe work here: RequestDrain is an atomic store plus a
// self-pipe write.
void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestDrain();
}

// Parses CROWDTOPK_SHARD_PORTS ("7001,7002,..."); false on any malformed
// field, so a typo refuses startup instead of silently dropping a shard.
bool ParsePorts(const std::string& value, std::vector<int64_t>* ports) {
  std::string field;
  for (size_t i = 0; i <= value.size(); ++i) {
    if (i < value.size() && value[i] != ',') {
      field += value[i];
      continue;
    }
    if (field.empty()) return false;
    char* end = nullptr;
    const long long port = std::strtoll(field.c_str(), &end, 10);
    if (end == field.c_str() || *end != '\0' || port <= 0 || port > 65535) {
      return false;
    }
    ports->push_back(port);
    field.clear();
  }
  return !ports->empty();
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::printf("%s", kHelp);
      return 0;
    }
    std::fprintf(stderr, "unknown argument %s (try --help)\n", argv[i]);
    return 2;
  }

  net::ServerOptions options;
  options.port = util::NetPort();
  options.max_connections = util::NetMaxConns();
  options.idle_timeout_ms = util::NetIdleTimeoutMs();
  options.drain_timeout_ms = util::NetDrainTimeoutMs();
  options.max_queue = util::GetEnvInt64("CROWDTOPK_NET_MAX_QUEUE", 256);
  options.seed = util::BenchSeed();
  options.schedule.crowd_workers =
      util::GetEnvInt64("CROWDTOPK_SERVE_WORKERS", 100);
  options.schedule.per_pair_batch =
      util::GetEnvInt64("CROWDTOPK_SERVE_ETA", 30);
  options.schedule.deadline_seconds =
      util::GetEnvDouble("CROWDTOPK_SERVE_DEADLINE", 60.0);
  options.schedule.abandon_probability =
      util::GetEnvDouble("CROWDTOPK_SERVE_ABANDON", 0.03);
  options.schedule.max_attempts =
      util::GetEnvInt64("CROWDTOPK_SERVE_ATTEMPTS", 4);
  options.max_inflight = util::GetEnvInt64("CROWDTOPK_SERVE_INFLIGHT", 16);
  options.jobs = util::BenchJobs();
  options.cache.enabled = util::CacheEnabled();
  options.cache.capacity = util::CacheCapacity();
  options.cache.transitivity = util::CacheTransitivity();
  if (util::TraceEnabled()) options.trace_dir = util::TraceDir();

  shard::RouterEngineConfig config;
  config.shards = util::ShardCount();
  config.policy = shard::ParsePolicy(util::ShardPolicy());
  config.cache_sync = util::ShardCacheSync();
  config.max_redispatch = util::ShardRedispatch();
  config.fail_shard = util::ShardFail();
  config.fail_at_batch = util::ShardFailAfterBatches();
  const std::string ports_env =
      util::GetEnvString("CROWDTOPK_SHARD_PORTS", "");
  if (!ports_env.empty() && !ParsePorts(ports_env, &config.ports)) {
    std::fprintf(stderr,
                 "crowdtopk_router: CROWDTOPK_SHARD_PORTS='%s' is not a "
                 "comma-separated port list\n",
                 ports_env.c_str());
    return 2;
  }

  shard::RouterEngine* engine = nullptr;
  options.engine_factory = [&config, &engine](
                               const net::ServerOptions& server_options,
                               std::function<void()> wake) {
    auto built = std::make_unique<shard::RouterEngine>(
        server_options, config, std::move(wake));
    engine = built.get();
    return built;
  };

  net::Server server(options);
  const util::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "crowdtopk_router: %s\n", status.ToString().c_str());
    return 2;
  }

  g_server = &server;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  // The port line is machine-parsed (smoke script, loadgen wrappers);
  // flush it before blocking in the event loop.
  std::printf("crowdtopk_router: listening on 127.0.0.1:%d\n", server.port());
  std::printf(
      "crowdtopk_router: shards=%lld policy=%s remote=%d cache_sync=%d "
      "max_redispatch=%lld seed=%llu cache=%d\n",
      static_cast<long long>(config.ports.empty()
                                 ? config.shards
                                 : static_cast<int64_t>(config.ports.size())),
      shard::PolicyName(config.policy), config.ports.empty() ? 0 : 1,
      config.cache_sync ? 1 : 0,
      static_cast<long long>(config.max_redispatch),
      static_cast<unsigned long long>(options.seed),
      options.cache.enabled ? 1 : 0);
  std::fflush(stdout);

  server.Serve();

  const net::StatsReply stats = server.Stats();
  const shard::RouterCounters counters = engine->counters();
  std::printf(
      "crowdtopk_router: drained | queries submitted=%lld completed=%lld "
      "rejected=%lld cancelled=%lld batches=%lld | shards failures=%lld "
      "redispatched=%lld repurchased_microtasks=%lld exhausted=%lld | "
      "upstream retries=%lld redials=%lld\n",
      static_cast<long long>(stats.queries_submitted),
      static_cast<long long>(stats.queries_completed),
      static_cast<long long>(stats.queries_rejected),
      static_cast<long long>(stats.queries_cancelled),
      static_cast<long long>(stats.batches),
      static_cast<long long>(counters.shard_failures),
      static_cast<long long>(counters.redispatched_queries),
      static_cast<long long>(counters.repurchased_microtasks),
      static_cast<long long>(counters.exhausted_queries),
      static_cast<long long>(stats.client_retries),
      static_cast<long long>(stats.client_redials));

  const std::string report_path =
      util::GetEnvString("CROWDTOPK_ROUTER_REPORT", "");
  if (!report_path.empty()) {
    const util::Status written =
        util::WriteFileAtomic(report_path, engine->MergedReport());
    if (!written.ok()) {
      std::fprintf(stderr, "crowdtopk_router: report: %s\n",
                   written.ToString().c_str());
    }
  }
  engine->DumpTrace();
  g_server = nullptr;
  return 0;
}
