// crowdtopk_serve: replay a seeded open-loop Poisson trace of concurrent
// top-k queries against the shared-capacity serving layer (src/serve) and
// report throughput plus p50/p95/p99 query latency in batch rounds and
// simulated seconds.
//
// Argument-free like the benches; all knobs are environment variables:
//   CROWDTOPK_SERVE_QUERIES   queries in the trace            (default 60)
//   CROWDTOPK_SERVE_RATE      Poisson arrival rate lambda /s  (default 0.01)
//   CROWDTOPK_SERVE_DATASET   imdb|book|jester|photo|peopleage (peopleage)
//   CROWDTOPK_SERVE_K         top-k                           (default 10)
//   CROWDTOPK_SERVE_ALPHA     significance level              (default 0.02)
//   CROWDTOPK_SERVE_ALGOS     comma list: spr,tourtree,heapsort,quickselect
//                             — query q runs algos[q mod len] (default all 4)
//   CROWDTOPK_SERVE_WORKERS   crowd worker slots W per round  (default 100)
//   CROWDTOPK_SERVE_ETA       per-pair batch cap eta          (default 30)
//   CROWDTOPK_SERVE_INFLIGHT  max concurrently served queries (default 16)
//   CROWDTOPK_SERVE_QUEUE     admission queue bound, <0 = unbounded (-1)
//   CROWDTOPK_SERVE_DEADLINE  assignment deadline seconds     (default 60)
//   CROWDTOPK_SERVE_ABANDON   worker abandonment probability  (default 0.03)
//   CROWDTOPK_SERVE_ATTEMPTS  dispatch attempts per microtask (default 4)
//   CROWDTOPK_SERVE_PER_QUERY =1 prints the per-query CSV table
//   CROWDTOPK_CACHE           =1 shares completed judgments across queries
//                             through the cross-query cache (src/cache)
//   CROWDTOPK_CACHE_CAPACITY  max cached pairs, <0 unbounded, 0 none  (-1)
//   CROWDTOPK_CACHE_TRANSITIVITY =1 serves single-hop composed verdicts
//   CROWDTOPK_SEED, CROWDTOPK_JOBS, CROWDTOPK_TRACE, CROWDTOPK_TRACE_DIR
//     as everywhere else (docs/OBSERVABILITY.md, docs/BENCHMARKS.md). The
//     report is bit-identical for every CROWDTOPK_JOBS value, with or
//     without the cache.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/heap_sort.h"
#include "baselines/quick_select.h"
#include "baselines/tournament_tree.h"
#include "core/spr.h"
#include "data/generators.h"
#include "serve/arrival.h"
#include "serve/query_service.h"
#include "serve/report.h"
#include "util/check.h"
#include "util/env.h"

namespace {

using namespace crowdtopk;

std::vector<std::string> SplitCsv(const std::string& list) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : list) {
    if (c == ',') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else if (c != ' ') {
      current += c;
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

std::unique_ptr<core::TopKAlgorithm> MakeAlgorithm(
    const std::string& name, const judgment::ComparisonOptions& options) {
  if (name == "spr") {
    core::SprOptions spr_options;
    spr_options.comparison = options;
    return std::make_unique<core::Spr>(spr_options);
  }
  if (name == "tourtree") {
    return std::make_unique<baselines::TournamentTree>(options);
  }
  if (name == "heapsort") {
    return std::make_unique<baselines::HeapSortTopK>(options);
  }
  if (name == "quickselect") {
    return std::make_unique<baselines::QuickSelectTopK>(options);
  }
  CROWDTOPK_CHECK(false && "unknown CROWDTOPK_SERVE_ALGOS entry");
  return nullptr;
}

}  // namespace

int main() {
  const int64_t queries = util::GetEnvInt64("CROWDTOPK_SERVE_QUERIES", 60);
  const double rate = util::GetEnvDouble("CROWDTOPK_SERVE_RATE", 0.01);
  const std::string dataset_name =
      util::GetEnvString("CROWDTOPK_SERVE_DATASET", "peopleage");
  const int64_t k = util::GetEnvInt64("CROWDTOPK_SERVE_K", 10);
  const std::string algo_list = util::GetEnvString(
      "CROWDTOPK_SERVE_ALGOS", "spr,tourtree,heapsort,quickselect");
  const uint64_t seed = util::BenchSeed();

  serve::ServeOptions options;
  options.schedule.crowd_workers =
      util::GetEnvInt64("CROWDTOPK_SERVE_WORKERS", 100);
  options.schedule.per_pair_batch = util::GetEnvInt64("CROWDTOPK_SERVE_ETA", 30);
  options.schedule.deadline_seconds =
      util::GetEnvDouble("CROWDTOPK_SERVE_DEADLINE", 60.0);
  options.schedule.abandon_probability =
      util::GetEnvDouble("CROWDTOPK_SERVE_ABANDON", 0.03);
  options.schedule.max_attempts =
      util::GetEnvInt64("CROWDTOPK_SERVE_ATTEMPTS", 4);
  options.max_inflight = util::GetEnvInt64("CROWDTOPK_SERVE_INFLIGHT", 16);
  options.max_queue = util::GetEnvInt64("CROWDTOPK_SERVE_QUEUE", -1);
  options.jobs = util::BenchJobs();
  options.seed = seed;
  if (util::TraceEnabled()) options.trace_dir = util::TraceDir();
  options.cache.enabled = util::CacheEnabled();
  options.cache.capacity = util::CacheCapacity();
  options.cache.transitivity = util::CacheTransitivity();

  judgment::ComparisonOptions comparison;
  comparison.alpha = util::GetEnvDouble("CROWDTOPK_SERVE_ALPHA", 0.02);

  const std::unique_ptr<data::Dataset> dataset =
      data::MakeByName(dataset_name, seed);
  std::vector<std::unique_ptr<core::TopKAlgorithm>> algorithms;
  for (const std::string& name : SplitCsv(algo_list)) {
    algorithms.push_back(MakeAlgorithm(name, comparison));
  }
  CROWDTOPK_CHECK(!algorithms.empty());

  std::vector<serve::QueryRequest> requests(queries);
  for (int64_t q = 0; q < queries; ++q) {
    requests[q].algorithm = algorithms[q % algorithms.size()].get();
    requests[q].dataset = dataset.get();
    requests[q].k = k;
  }
  const std::vector<double> arrivals =
      serve::PoissonArrivals(queries, rate, seed);

  std::printf(
      "crowdtopk_serve: %lld queries (%s, k=%lld) on %s, lambda=%.4f/s\n",
      static_cast<long long>(queries), algo_list.c_str(),
      static_cast<long long>(k), dataset_name.c_str(), rate);
  std::printf(
      "crowd: W=%lld workers/round, eta=%lld, deadline=%.1fs, "
      "abandon=%.3f, attempts=%lld | admission: inflight<=%lld, queue=%lld\n",
      static_cast<long long>(options.schedule.crowd_workers),
      static_cast<long long>(options.schedule.per_pair_batch),
      options.schedule.deadline_seconds,
      options.schedule.abandon_probability,
      static_cast<long long>(options.schedule.max_attempts),
      static_cast<long long>(options.max_inflight),
      static_cast<long long>(options.max_queue));
  std::printf("seed=%llu (report is bit-identical for any CROWDTOPK_JOBS)\n\n",
              static_cast<unsigned long long>(seed));

  serve::QueryService service(options);
  const std::vector<serve::QueryOutcome> outcomes =
      service.Replay(requests, arrivals);
  const serve::ServeReport report = serve::BuildServeReport(
      outcomes, service.assignment_stats(), service.makespan_seconds(),
      service.total_rounds());

  if (util::GetEnvBool("CROWDTOPK_SERVE_PER_QUERY", false)) {
    std::printf("%s\n", serve::RenderQueryTable(outcomes).c_str());
  }
  std::printf("%s", serve::RenderServeReport(report).c_str());
  if (options.cache.enabled) {
    const cache::CacheStats cs = service.cache_stats();
    std::printf(
        "\ncache: lookups=%lld hits=%lld topups=%lld inferred=%lld "
        "misses=%lld | pairs=%lld inserts=%lld upgrades=%lld dropped=%lld "
        "seeded_samples=%lld\n",
        static_cast<long long>(cs.lookups), static_cast<long long>(cs.hits),
        static_cast<long long>(cs.topups), static_cast<long long>(cs.inferred),
        static_cast<long long>(cs.misses), static_cast<long long>(cs.pairs),
        static_cast<long long>(cs.inserts),
        static_cast<long long>(cs.upgrades),
        static_cast<long long>(cs.dropped_capacity),
        static_cast<long long>(cs.seeded_samples));
  }
  return 0;
}
