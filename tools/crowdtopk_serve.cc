// crowdtopk_serve: replay a seeded open-loop Poisson trace of concurrent
// top-k queries against the shared-capacity serving layer (src/serve) and
// report throughput plus p50/p95/p99 query latency in batch rounds and
// simulated seconds.
//
// All knobs are environment variables (run with --help for the full list).
// Modes:
//   (none)     fresh replay; with CROWDTOPK_PERSIST_DIR set, also starts a
//              fresh durable generation (snapshots + WAL, src/persist)
//   --resume   recover CROWDTOPK_PERSIST_DIR and re-execute as verified
//              catch-up: the report and every trace byte match an
//              uninterrupted run, and already-durable crowd work is
//              accounted as replayed rather than re-purchased
//   --warm     load the newest snapshot's judgment-cache image and serve
//              the (new) trace warm — the cross-generation reuse path
//
// Exit codes: 0 ok (including a degraded resume after WAL-tail damage,
// which is reported, not fatal); 2 persistence error (configuration
// fingerprint mismatch, write failure); 3 catch-up divergence (durable
// records disagree with deterministic re-execution — file a bug).

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/heap_sort.h"
#include "baselines/quick_select.h"
#include "baselines/tournament_tree.h"
#include "core/spr.h"
#include "data/generators.h"
#include "persist/recovery.h"
#include "serve/arrival.h"
#include "serve/query_service.h"
#include "serve/report.h"
#include "util/check.h"
#include "util/env.h"

namespace {

using namespace crowdtopk;

constexpr char kHelp[] = R"(crowdtopk_serve [--help] [--resume | --warm]

Replays a seeded open-loop trace of concurrent top-k queries against the
shared-capacity serving layer and prints a deterministic report (byte-
identical for every CROWDTOPK_JOBS value).

Modes
  --resume  recover CROWDTOPK_PERSIST_DIR (snapshot + WAL) and re-execute
            as verified catch-up; requires the same knobs as the original
            run (jobs may differ)
  --warm    preload the judgment cache from the newest snapshot in
            CROWDTOPK_PERSIST_DIR, then serve the trace as a fresh run

Workload knobs
  CROWDTOPK_SERVE_QUERIES   queries in the trace             (default 60)
  CROWDTOPK_SERVE_RATE      Poisson arrival rate lambda /s   (default 0.01)
  CROWDTOPK_SERVE_DATASET   imdb|book|jester|photo|peopleage (peopleage)
  CROWDTOPK_SERVE_K         top-k                            (default 10)
  CROWDTOPK_SERVE_ALPHA     significance level               (default 0.02)
  CROWDTOPK_SERVE_ALGOS     comma list: spr,tourtree,heapsort,quickselect
                            — query q runs algos[q mod len]  (all four)

Crowd / admission knobs
  CROWDTOPK_SERVE_WORKERS   crowd worker slots W per round   (default 100)
  CROWDTOPK_SERVE_ETA       per-pair batch cap eta           (default 30)
  CROWDTOPK_SERVE_INFLIGHT  max concurrently served queries  (default 16)
  CROWDTOPK_SERVE_QUEUE     admission queue bound, <0 = inf  (default -1)
  CROWDTOPK_SERVE_DEADLINE  assignment deadline seconds      (default 60)
  CROWDTOPK_SERVE_ABANDON   worker abandonment probability   (default 0.03)
  CROWDTOPK_SERVE_ATTEMPTS  dispatch attempts per microtask  (default 4)

Cross-query cache knobs
  CROWDTOPK_CACHE           =1 shares judgments across queries (default 0)
  CROWDTOPK_CACHE_CAPACITY  max cached pairs, <0 inf, 0 none (default -1)
  CROWDTOPK_CACHE_TRANSITIVITY  =1 serves composed verdicts  (default 0)

Durable-state knobs (src/persist, docs/PERSISTENCE.md)
  CROWDTOPK_PERSIST_DIR     snapshot + WAL directory; empty = persistence
                            off                              (default "")
  CROWDTOPK_SNAPSHOT_EVERY  barriers between snapshots, <=0 = final only
                                                             (default 8)
  CROWDTOPK_WAL_FSYNC       =1 fdatasync every WAL batch     (default 1)
  CROWDTOPK_WAL_SEGMENT_BYTES  WAL segment rotation size     (default 1MiB)
  CROWDTOPK_PERSIST_KILL_BARRIER  _Exit(137) after barrier N is durable —
                            crash-recovery CI hook           (default -1)

Output knobs
  CROWDTOPK_SERVE_PER_QUERY =1 prints the per-query CSV table (default 0)
  CROWDTOPK_SERVE_REPORT    path for the machine-readable JSONL report
                            (summary + per-query records); empty = none
  CROWDTOPK_SEED            master seed                (default 20170514)
  CROWDTOPK_JOBS            wave-simulation threads, 0 = hw   (default 1)
  CROWDTOPK_TRACE=1, CROWDTOPK_TRACE_DIR  per-query telemetry traces
                            (docs/OBSERVABILITY.md)

Exit codes: 0 ok (degraded resume included), 2 persistence error,
3 catch-up divergence.
)";

std::vector<std::string> SplitCsv(const std::string& list) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : list) {
    if (c == ',') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else if (c != ' ') {
      current += c;
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

std::unique_ptr<core::TopKAlgorithm> MakeAlgorithm(
    const std::string& name, const judgment::ComparisonOptions& options) {
  if (name == "spr") {
    core::SprOptions spr_options;
    spr_options.comparison = options;
    return std::make_unique<core::Spr>(spr_options);
  }
  if (name == "tourtree") {
    return std::make_unique<baselines::TournamentTree>(options);
  }
  if (name == "heapsort") {
    return std::make_unique<baselines::HeapSortTopK>(options);
  }
  if (name == "quickselect") {
    return std::make_unique<baselines::QuickSelectTopK>(options);
  }
  CROWDTOPK_CHECK(false && "unknown CROWDTOPK_SERVE_ALGOS entry");
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  bool resume = false;
  bool warm = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::printf("%s", kHelp);
      return 0;
    }
    if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--warm") == 0) {
      warm = true;
    } else {
      std::fprintf(stderr, "unknown argument %s (try --help)\n", argv[i]);
      return 2;
    }
  }
  if (resume && warm) {
    std::fprintf(stderr, "--resume and --warm are mutually exclusive\n");
    return 2;
  }

  const int64_t queries = util::GetEnvInt64("CROWDTOPK_SERVE_QUERIES", 60);
  const double rate = util::GetEnvDouble("CROWDTOPK_SERVE_RATE", 0.01);
  const std::string dataset_name =
      util::GetEnvString("CROWDTOPK_SERVE_DATASET", "peopleage");
  const int64_t k = util::GetEnvInt64("CROWDTOPK_SERVE_K", 10);
  const std::string algo_list = util::GetEnvString(
      "CROWDTOPK_SERVE_ALGOS", "spr,tourtree,heapsort,quickselect");
  const uint64_t seed = util::BenchSeed();

  serve::ServeOptions options;
  options.schedule.crowd_workers =
      util::GetEnvInt64("CROWDTOPK_SERVE_WORKERS", 100);
  options.schedule.per_pair_batch = util::GetEnvInt64("CROWDTOPK_SERVE_ETA", 30);
  options.schedule.deadline_seconds =
      util::GetEnvDouble("CROWDTOPK_SERVE_DEADLINE", 60.0);
  options.schedule.abandon_probability =
      util::GetEnvDouble("CROWDTOPK_SERVE_ABANDON", 0.03);
  options.schedule.max_attempts =
      util::GetEnvInt64("CROWDTOPK_SERVE_ATTEMPTS", 4);
  options.max_inflight = util::GetEnvInt64("CROWDTOPK_SERVE_INFLIGHT", 16);
  options.max_queue = util::GetEnvInt64("CROWDTOPK_SERVE_QUEUE", -1);
  options.jobs = util::BenchJobs();
  options.seed = seed;
  if (util::TraceEnabled()) options.trace_dir = util::TraceDir();
  options.cache.enabled = util::CacheEnabled();
  options.cache.capacity = util::CacheCapacity();
  options.cache.transitivity = util::CacheTransitivity();
  options.persist.dir = util::PersistDir();
  options.persist.snapshot_every = util::SnapshotEvery();
  options.persist.wal_fsync = util::WalFsync();
  options.persist.wal_segment_bytes = util::WalSegmentBytes();
  options.persist.kill_at_barrier = util::PersistKillBarrier();
  options.persist.resume = resume;
  if ((resume || warm) && options.persist.dir.empty()) {
    std::fprintf(stderr,
                 "--%s requires CROWDTOPK_PERSIST_DIR (try --help)\n",
                 resume ? "resume" : "warm");
    return 2;
  }
  if (warm) {
    // Warm restart: lift the previous generation's cache image out of the
    // newest snapshot, then run as a *fresh* generation (the image enters
    // the new run's cache as restored entries; persistence, if still
    // enabled, starts over for the new trace).
    persist::SnapshotData snapshot;
    const util::Status status =
        persist::LoadLatestSnapshot(options.persist.dir, &snapshot);
    if (!status.ok()) {
      std::fprintf(stderr, "--warm: %s\n", status.ToString().c_str());
      return 2;
    }
    options.warm_cache = snapshot.cache_entries;
    std::printf("warm restart: %zu cached pairs from barrier %lld\n",
                options.warm_cache.size(),
                static_cast<long long>(snapshot.barrier.barrier));
  }

  judgment::ComparisonOptions comparison;
  comparison.alpha = util::GetEnvDouble("CROWDTOPK_SERVE_ALPHA", 0.02);

  const std::unique_ptr<data::Dataset> dataset =
      data::MakeByName(dataset_name, seed);
  std::vector<std::unique_ptr<core::TopKAlgorithm>> algorithms;
  for (const std::string& name : SplitCsv(algo_list)) {
    algorithms.push_back(MakeAlgorithm(name, comparison));
  }
  CROWDTOPK_CHECK(!algorithms.empty());

  std::vector<serve::QueryRequest> requests(queries);
  for (int64_t q = 0; q < queries; ++q) {
    requests[q].algorithm = algorithms[q % algorithms.size()].get();
    requests[q].dataset = dataset.get();
    requests[q].k = k;
  }
  const std::vector<double> arrivals =
      serve::PoissonArrivals(queries, rate, seed);

  std::printf(
      "crowdtopk_serve: %lld queries (%s, k=%lld) on %s, lambda=%.4f/s\n",
      static_cast<long long>(queries), algo_list.c_str(),
      static_cast<long long>(k), dataset_name.c_str(), rate);
  std::printf(
      "crowd: W=%lld workers/round, eta=%lld, deadline=%.1fs, "
      "abandon=%.3f, attempts=%lld | admission: inflight<=%lld, queue=%lld\n",
      static_cast<long long>(options.schedule.crowd_workers),
      static_cast<long long>(options.schedule.per_pair_batch),
      options.schedule.deadline_seconds,
      options.schedule.abandon_probability,
      static_cast<long long>(options.schedule.max_attempts),
      static_cast<long long>(options.max_inflight),
      static_cast<long long>(options.max_queue));
  std::printf("seed=%llu (report is bit-identical for any CROWDTOPK_JOBS)\n\n",
              static_cast<unsigned long long>(seed));

  serve::QueryService service(options);
  const std::vector<serve::QueryOutcome> outcomes =
      service.Replay(requests, arrivals);
  const serve::ServeReport report = serve::BuildServeReport(
      outcomes, service.assignment_stats(), service.makespan_seconds(),
      service.total_rounds());

  if (util::GetEnvBool("CROWDTOPK_SERVE_PER_QUERY", false)) {
    std::printf("%s\n", serve::RenderQueryTable(outcomes).c_str());
  }
  std::printf("%s", serve::RenderServeReport(report).c_str());
  if (options.cache.enabled) {
    const cache::CacheStats cs = service.cache_stats();
    std::printf(
        "\ncache: lookups=%lld hits=%lld topups=%lld inferred=%lld "
        "misses=%lld | pairs=%lld inserts=%lld upgrades=%lld dropped=%lld "
        "seeded_samples=%lld restored=%lld\n",
        static_cast<long long>(cs.lookups), static_cast<long long>(cs.hits),
        static_cast<long long>(cs.topups), static_cast<long long>(cs.inferred),
        static_cast<long long>(cs.misses), static_cast<long long>(cs.pairs),
        static_cast<long long>(cs.inserts),
        static_cast<long long>(cs.upgrades),
        static_cast<long long>(cs.dropped_capacity),
        static_cast<long long>(cs.seeded_samples),
        static_cast<long long>(cs.restored));
    for (const auto& [universe, dropped] : cs.dropped_by_universe) {
      std::printf("cache: universe %lld dropped %lld inserts at capacity\n",
                  static_cast<long long>(universe),
                  static_cast<long long>(dropped));
    }
  }

  const std::string report_path =
      util::GetEnvString("CROWDTOPK_SERVE_REPORT", "");
  if (!report_path.empty()) {
    const util::Status status =
        serve::WriteServeReportJsonl(report, outcomes, report_path);
    if (!status.ok()) {
      std::fprintf(stderr, "serve report: %s\n", status.ToString().c_str());
      return 2;
    }
  }

  if (!options.persist.dir.empty()) {
    const persist::PersistCounters pc = service.persist_counters();
    std::printf(
        "\npersist: wal_records=%lld wal_segments=%lld snapshots=%lld"
        " | resumed=%lld durable_barrier=%lld verified=%lld divergent=%lld"
        " replayed_microtasks=%lld dropped_records=%lld dropped_bytes=%lld\n",
        static_cast<long long>(pc.wal_records),
        static_cast<long long>(pc.wal_segments),
        static_cast<long long>(pc.snapshots),
        static_cast<long long>(pc.resumed),
        static_cast<long long>(pc.durable_barrier),
        static_cast<long long>(pc.verified_barriers),
        static_cast<long long>(pc.divergent_barriers),
        static_cast<long long>(service.replayed_microtasks()),
        static_cast<long long>(pc.wal_records_dropped),
        static_cast<long long>(pc.wal_bytes_dropped));
    if (!service.persist_status().ok()) {
      std::fprintf(stderr, "persist: %s\n",
                   service.persist_status().ToString().c_str());
      return 2;
    }
    if (pc.divergent_barriers > 0 || pc.cache_image_divergent > 0) {
      std::fprintf(stderr,
                   "persist: durable records disagree with deterministic "
                   "re-execution — this is a bug, not data loss\n");
      return 3;
    }
  }
  return 0;
}
