// crowdtopk_sim: deterministic simulation harness driver (docs/SIMULATION.md).
//
// Sweeps N seeded chaos episodes through the full serving stack — each
// episode replays one trace cold/wide/cached/uncached/persisted/crashed/
// resumed/warm, fuzzes the wire codec, and checks every cross-layer
// invariant. On a violation the failing episode is shrunk to a minimal
// still-failing spec and a copy-pasteable replay command is printed.
//
//   crowdtopk_sim --seeds 64              # CI sweep (exit 1 on violation)
//   crowdtopk_sim --seed 12345            # one derived episode
//   crowdtopk_sim --episode 'seed=...'    # replay a printed spec verbatim
//   crowdtopk_sim --seeds 8 --mutate seed-drift   # must fail (harness test)
//
// Exit codes: 0 all invariants hold, 1 violations found, 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/chaos.h"
#include "sim/harness.h"
#include "util/env.h"
#include "util/file_io.h"
#include "util/random.h"

namespace {

using namespace crowdtopk;

constexpr char kHelp[] = R"(crowdtopk_sim [options]

Deterministic simulation harness: seeded chaos episodes over the full
serving stack with cross-layer invariant checking, seed shrinking, and
replay (docs/SIMULATION.md).

  --seeds N          sweep N episodes (episode i = DeriveEpisode(
                     SplitSeed(master, i)))               (default 16)
  --master S         master seed of the sweep     (default 20170514)
  --seed X           run the single episode derived from seed X
  --episode SPEC     replay a key=value episode spec verbatim (the
                     format failure reports print)
  --mutate NAME      inject a deliberate determinism bug into every
                     episode: seed-drift | cache-leak | wire-flip —
                     the harness MUST catch it (acceptance test)
  --no-shrink        print the raw failing episode without minimising
  --scratch DIR      scratch directory for persist chaos
                     (default $TMPDIR/crowdtopk_sim or /tmp/crowdtopk_sim)

Exit codes: 0 clean, 1 invariant violation, 2 usage error.
)";

void ApplyMutation(sim::Episode* episode, const std::string& mutation) {
  episode->mutation = mutation;
  if (mutation == "cache-leak") {
    // The capacity-0 ablation only runs for cached episodes.
    episode->cache_enabled = true;
  } else if (mutation == "wire-flip") {
    if (episode->wire_trials < 1) episode->wire_trials = 1;
  }
}

void PrintViolations(const std::vector<sim::Violation>& violations) {
  for (const sim::Violation& v : violations) {
    std::printf("  [%s] %s\n", v.invariant.c_str(), v.detail.c_str());
  }
}

// Shrinks (unless told not to), prints the minimal spec + replay line, and
// returns the process exit code contribution.
void ReportFailure(const sim::Episode& episode,
                   const std::vector<sim::Violation>& violations,
                   bool shrink, const std::string& scratch) {
  std::printf("episode seed=%llu FAILED (%zu violations):\n",
              static_cast<unsigned long long>(episode.seed),
              violations.size());
  PrintViolations(violations);
  sim::Episode minimal = episode;
  std::vector<sim::Violation> minimal_violations = violations;
  if (shrink) {
    std::printf("shrinking...\n");
    minimal = sim::ShrinkEpisode(episode, scratch, &minimal_violations);
    std::printf("minimal episode (%zu violations):\n",
                minimal_violations.size());
    PrintViolations(minimal_violations);
  }
  std::printf("spec:   %s\n", sim::ToSpec(minimal).c_str());
  std::printf("replay: %s\n", sim::ReplayCommand(minimal).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int64_t seeds = 16;
  uint64_t master = 20170514;
  bool have_single_seed = false;
  uint64_t single_seed = 0;
  std::string episode_spec;
  std::string mutation;
  bool shrink = true;
  const char* tmpdir = std::getenv("TMPDIR");
  std::string scratch =
      std::string(tmpdir != nullptr && tmpdir[0] != '\0' ? tmpdir : "/tmp") +
      "/crowdtopk_sim";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value (try --help)\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", kHelp);
      return 0;
    } else if (arg == "--seeds") {
      seeds = std::strtoll(next("--seeds"), nullptr, 10);
    } else if (arg == "--master") {
      master = std::strtoull(next("--master"), nullptr, 10);
    } else if (arg == "--seed") {
      have_single_seed = true;
      single_seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (arg == "--episode") {
      episode_spec = next("--episode");
    } else if (arg == "--mutate") {
      mutation = next("--mutate");
      if (mutation != "seed-drift" && mutation != "cache-leak" &&
          mutation != "wire-flip") {
        std::fprintf(stderr, "unknown --mutate %s (try --help)\n",
                     mutation.c_str());
        return 2;
      }
    } else if (arg == "--no-shrink") {
      shrink = false;
    } else if (arg == "--scratch") {
      scratch = next("--scratch");
    } else {
      std::fprintf(stderr, "unknown argument %s (try --help)\n", arg.c_str());
      return 2;
    }
  }
  if (!util::EnsureDirectory(scratch).ok()) {
    std::fprintf(stderr, "cannot create scratch directory %s\n",
                 scratch.c_str());
    return 2;
  }

  // Single-episode modes: --episode replays a spec verbatim; --seed derives.
  if (!episode_spec.empty() || have_single_seed) {
    sim::Episode episode;
    if (!episode_spec.empty()) {
      util::StatusOr<sim::Episode> parsed = sim::EpisodeFromSpec(episode_spec);
      if (!parsed.ok()) {
        std::fprintf(stderr, "--episode: %s\n",
                     parsed.status().ToString().c_str());
        return 2;
      }
      episode = parsed.value();
    } else {
      episode = sim::DeriveEpisode(single_seed);
    }
    if (!mutation.empty()) ApplyMutation(&episode, mutation);
    std::printf("episode: %s\n", sim::ToSpec(episode).c_str());
    const std::vector<sim::Violation> violations =
        sim::RunEpisode(episode, scratch + "/single");
    if (violations.empty()) {
      std::printf("all invariants hold\n");
      return 0;
    }
    ReportFailure(episode, violations, shrink, scratch);
    return 1;
  }

  // Sweep mode.
  std::printf("crowdtopk_sim: sweeping %lld episodes, master seed %llu%s\n",
              static_cast<long long>(seeds),
              static_cast<unsigned long long>(master),
              mutation.empty() ? "" : (", mutation " + mutation).c_str());
  int64_t failures = 0;
  for (int64_t i = 0; i < seeds; ++i) {
    sim::Episode episode =
        sim::DeriveEpisode(util::SplitSeed(master, static_cast<uint64_t>(i)));
    if (!mutation.empty()) ApplyMutation(&episode, mutation);
    const std::vector<sim::Violation> violations =
        sim::RunEpisode(episode, scratch + "/ep" + std::to_string(i));
    if (violations.empty()) {
      std::printf("episode %lld/%lld seed=%llu ok\n",
                  static_cast<long long>(i + 1),
                  static_cast<long long>(seeds),
                  static_cast<unsigned long long>(episode.seed));
      continue;
    }
    ++failures;
    std::printf("episode %lld/%lld ", static_cast<long long>(i + 1),
                static_cast<long long>(seeds));
    ReportFailure(episode, violations, shrink, scratch);
  }
  if (failures == 0) {
    std::printf("sweep clean: %lld episodes, zero invariant violations\n",
                static_cast<long long>(seeds));
    return 0;
  }
  std::printf("sweep found %lld failing episodes\n",
              static_cast<long long>(failures));
  return 1;
}
