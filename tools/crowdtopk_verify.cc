// crowdtopk_verify: statistical-guarantee verification harness (src/verify).
//
// Runs Monte-Carlo sweeps that check the paper's probabilistic contracts —
// COMP answers correctly with probability >= 1 - alpha (Section 3) and
// SPR's expected precision is >= (1 - alpha) / c (Section 5.4) — on a
// clean crowd and, optionally, on a crowd wrapped in the fault-injection
// layer (src/fault). Each check is judged with a strict Wilson pass/fail
// band and stops early once the band is decisive.
//
// Argument-free like the benches; all knobs are environment variables:
//   CROWDTOPK_VERIFY_TRIALS      max Monte-Carlo trials per check   (400)
//   CROWDTOPK_VERIFY_BLOCK       trials per sequential block        (50)
//   CROWDTOPK_VERIFY_BAND_ALPHA  Wilson band significance           (0.002)
//   CROWDTOPK_VERIFY_ALPHAS      comma list of contract alphas      (0.05,0.1)
//   CROWDTOPK_VERIFY_ESTIMATORS  comma list: student,stein,hoeffding,anytime
//                                                       (student,stein,hoeffding)
//   CROWDTOPK_VERIFY_EFFECT      COMP pair effect size mean/sd      (0.6)
//   CROWDTOPK_VERIFY_BUDGET      per-pair budget for COMP checks    (1<<20)
//   CROWDTOPK_VERIFY_SPR         =0 skips the end-to-end SPR checks (1)
//   CROWDTOPK_VERIFY_REPORT      JSONL report path; empty = stdout only
//   CROWDTOPK_FAULT_SPAMMER      spammer worker fraction            (0)
//   CROWDTOPK_FAULT_ADVERSARY    adversarial worker fraction        (0)
//   CROWDTOPK_FAULT_LAZY         lazy worker fraction               (0)
//   CROWDTOPK_FAULT_DUPLICATE    duplicate-submitter fraction       (0)
//   CROWDTOPK_FAULT_WORKERS      simulated worker pool size         (200)
//   CROWDTOPK_SEED, CROWDTOPK_JOBS as everywhere else
//     (docs/OBSERVABILITY.md). The report is bit-identical for every
//     CROWDTOPK_JOBS value, including each check's early-stop point.
//
// When any CROWDTOPK_FAULT_* fraction is positive every check also runs a
// "<label>+fault" variant against the faulty crowd. Faulty-crowd verdicts
// are diagnostic — the paper's contracts assume honest workers, so a FAIL
// there documents degradation rather than a bug. The process exit code
// reflects clean-crowd checks only: 0 iff none of them is a FAIL.

#include <cstdio>
#include <string>
#include <vector>

#include "exec/run_engine.h"
#include "fault/injector.h"
#include "judgment/comparison.h"
#include "util/check.h"
#include "util/env.h"
#include "verify/guarantee.h"

namespace {

using namespace crowdtopk;

std::vector<std::string> SplitCsv(const std::string& list) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : list) {
    if (c == ',') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else if (c != ' ') {
      current += c;
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

judgment::Estimator ParseEstimator(const std::string& name) {
  if (name == "student") return judgment::Estimator::kStudent;
  if (name == "stein") return judgment::Estimator::kStein;
  if (name == "hoeffding") return judgment::Estimator::kHoeffding;
  if (name == "anytime") return judgment::Estimator::kAnytime;
  CROWDTOPK_CHECK(false && "unknown CROWDTOPK_VERIFY_ESTIMATORS entry");
  return judgment::Estimator::kStudent;
}

fault::FaultPlan EnvFaultPlan() {
  fault::FaultPlan plan;
  plan.num_workers = util::GetEnvInt64("CROWDTOPK_FAULT_WORKERS", 200);
  plan.spammer_fraction = util::GetEnvDouble("CROWDTOPK_FAULT_SPAMMER", 0.0);
  plan.adversary_fraction =
      util::GetEnvDouble("CROWDTOPK_FAULT_ADVERSARY", 0.0);
  plan.lazy_fraction = util::GetEnvDouble("CROWDTOPK_FAULT_LAZY", 0.0);
  plan.duplicate_fraction =
      util::GetEnvDouble("CROWDTOPK_FAULT_DUPLICATE", 0.0);
  return plan;
}

void PrintReport(const verify::GuaranteeReport& report) {
  std::printf(
      "%-28s %-4s a=%.3f contract<=%.4f  err %5lld/%-6lld (%.4f)  "
      "wilson [%.4f, %.4f]  ties %lld  workload %.1f  %s%s\n",
      report.label.c_str(), report.kind.c_str(), report.alpha,
      report.contract, static_cast<long long>(report.errors),
      static_cast<long long>(report.trials), report.error_rate,
      report.wilson_lo, report.wilson_hi,
      static_cast<long long>(report.ties), report.mean_workload,
      verify::VerdictName(report.verdict),
      report.decisive ? " (early stop)" : "");
}

constexpr char kHelp[] = R"(crowdtopk_verify - statistical-guarantee verification harness

Usage: crowdtopk_verify [--help]

Runs Monte-Carlo sweeps that check the paper's probabilistic contracts
(COMP correctness >= 1 - alpha; SPR expected precision >= (1 - alpha)/c)
on a clean crowd and, when any CROWDTOPK_FAULT_* fraction is positive,
on a faulty crowd too. Exit code is 0 iff no clean-crowd check FAILs.

All knobs are environment variables:

Verification knobs
  CROWDTOPK_VERIFY_TRIALS      max Monte-Carlo trials per check   (default 400)
  CROWDTOPK_VERIFY_BLOCK       trials per sequential block        (default 50)
  CROWDTOPK_VERIFY_BAND_ALPHA  Wilson band significance           (default 0.002)
  CROWDTOPK_VERIFY_ALPHAS      comma list of contract alphas      (default 0.05,0.1)
  CROWDTOPK_VERIFY_ESTIMATORS  comma list: student,stein,hoeffding,anytime
                                              (default student,stein,hoeffding)
  CROWDTOPK_VERIFY_EFFECT      COMP pair effect size mean/sd      (default 0.6)
  CROWDTOPK_VERIFY_BUDGET      per-pair budget for COMP checks    (default 1048576)
  CROWDTOPK_VERIFY_SPR         =0 skips the end-to-end SPR checks (default 1)
  CROWDTOPK_VERIFY_REPORT      JSONL report path; empty = stdout  (default empty)

Fault-injection knobs (any positive fraction adds "+fault" variants)
  CROWDTOPK_FAULT_SPAMMER      spammer worker fraction            (default 0)
  CROWDTOPK_FAULT_ADVERSARY    adversarial worker fraction        (default 0)
  CROWDTOPK_FAULT_LAZY         lazy worker fraction               (default 0)
  CROWDTOPK_FAULT_DUPLICATE    duplicate-submitter fraction       (default 0)
  CROWDTOPK_FAULT_WORKERS      simulated worker pool size         (default 200)

Common knobs
  CROWDTOPK_SEED               base RNG seed                      (default 42)
  CROWDTOPK_JOBS               worker threads; report is bit-identical
                               for every value                    (default hw)
)";

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kHelp, stdout);
      return 0;
    }
    std::fprintf(stderr, "crowdtopk_verify: unknown argument '%s' (try --help)\n",
                 arg.c_str());
    return 2;
  }
  verify::VerifyOptions options;
  options.max_trials = util::GetEnvInt64("CROWDTOPK_VERIFY_TRIALS", 400);
  options.block_trials = util::GetEnvInt64("CROWDTOPK_VERIFY_BLOCK", 50);
  options.band_alpha =
      util::GetEnvDouble("CROWDTOPK_VERIFY_BAND_ALPHA", 0.002);
  const double effect = util::GetEnvDouble("CROWDTOPK_VERIFY_EFFECT", 0.6);
  const int64_t budget =
      util::GetEnvInt64("CROWDTOPK_VERIFY_BUDGET", int64_t{1} << 20);
  const bool check_spr = util::GetEnvBool("CROWDTOPK_VERIFY_SPR", true);
  const std::string report_path =
      util::GetEnvString("CROWDTOPK_VERIFY_REPORT", "");
  const uint64_t seed = util::BenchSeed();

  const std::vector<std::string> alpha_names =
      SplitCsv(util::GetEnvString("CROWDTOPK_VERIFY_ALPHAS", "0.05,0.1"));
  const std::vector<std::string> estimator_names = SplitCsv(
      util::GetEnvString("CROWDTOPK_VERIFY_ESTIMATORS",
                         "student,stein,hoeffding"));
  CROWDTOPK_CHECK(!alpha_names.empty() && !estimator_names.empty());

  const fault::FaultPlan faults = EnvFaultPlan();
  const bool faulty_sweep = fault::AnyValueFaults(faults);

  exec::RunEngine::Options engine_options;
  engine_options.jobs = util::BenchJobs();
  exec::RunEngine engine(engine_options);

  // The worker count is deliberately absent from the report: the output is
  // byte-identical for every CROWDTOPK_JOBS value, and CI diffs it.
  std::printf(
      "crowdtopk_verify: max %lld trials/check, blocks of %lld, Wilson band "
      "alpha=%.4g, seed=%llu\n",
      static_cast<long long>(options.max_trials),
      static_cast<long long>(options.block_trials), options.band_alpha,
      static_cast<unsigned long long>(seed));
  if (faulty_sweep) {
    std::printf(
        "fault sweep on: spammer=%.2f adversary=%.2f lazy=%.2f "
        "duplicate=%.2f over %lld workers (diagnostic; does not affect the "
        "exit code)\n",
        faults.spammer_fraction, faults.adversary_fraction,
        faults.lazy_fraction, faults.duplicate_fraction,
        static_cast<long long>(faults.num_workers));
  }
  std::printf("\n");

  std::vector<verify::GuaranteeReport> reports;
  int clean_failures = 0;
  const auto run_comp = [&](const verify::CompCheckSpec& spec, bool clean) {
    const verify::GuaranteeReport report =
        verify::VerifyComparisonGuarantee(spec, options, &engine, seed);
    PrintReport(report);
    if (clean && report.verdict == verify::Verdict::kFail) ++clean_failures;
    reports.push_back(report);
  };
  const auto run_spr = [&](const verify::SprCheckSpec& spec, bool clean) {
    const verify::GuaranteeReport report =
        verify::VerifySprGuarantee(spec, options, &engine, seed);
    PrintReport(report);
    if (clean && report.verdict == verify::Verdict::kFail) ++clean_failures;
    reports.push_back(report);
  };

  for (const std::string& alpha_name : alpha_names) {
    const double alpha = std::stod(alpha_name);
    for (const std::string& estimator_name : estimator_names) {
      verify::CompCheckSpec spec;
      spec.label = estimator_name + "_a" + alpha_name;
      spec.estimator = ParseEstimator(estimator_name);
      spec.alpha = alpha;
      spec.effect = effect;
      spec.budget = budget;
      run_comp(spec, /*clean=*/true);
      if (faulty_sweep) {
        spec.label += "+fault";
        spec.faults = faults;
        run_comp(spec, /*clean=*/false);
      }
    }
    if (check_spr) {
      verify::SprCheckSpec spec;
      spec.label = "spr_a" + alpha_name;
      spec.alpha = alpha;
      run_spr(spec, /*clean=*/true);
      if (faulty_sweep) {
        spec.label += "+fault";
        spec.faults = faults;
        run_spr(spec, /*clean=*/false);
      }
    }
  }

  if (!report_path.empty()) {
    const util::Status status =
        verify::WriteReportJsonl(reports, report_path);
    if (!status.ok()) {
      std::fprintf(stderr, "crowdtopk_verify: writing %s failed: %s\n",
                   report_path.c_str(), status.ToString().c_str());
      return 2;
    }
    std::printf("\nreport: %s (%zu checks)\n", report_path.c_str(),
                reports.size());
  }

  if (clean_failures > 0) {
    std::printf(
        "\n%d clean-crowd guarantee violation(s): the Wilson lower bound "
        "exceeded the contract (see docs/OBSERVABILITY.md, 'Reading "
        "guarantee violations').\n",
        clean_failures);
    return 1;
  }
  std::printf("\nall clean-crowd contracts hold within the Wilson band\n");
  return 0;
}
