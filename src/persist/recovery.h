// Recovery: turn the bytes in a persist directory back into trusted state.
//
// Recover() loads the newest readable snapshot (falling back over corrupt
// ones), replays every WAL segment at or after the snapshot's
// next_wal_segment with torn-tail truncation, physically repairs a torn
// log, and reports the durable frontier: the last barrier whose batch
// survived intact. The serving layer then re-executes its deterministic
// replay from time zero, verifying each re-derived barrier digest against
// the recovered records up to that frontier ("verified deterministic
// catch-up", docs/PERSISTENCE.md) and appending fresh WAL batches past it.
//
// The manifest pins the configuration fingerprint for the directory's
// lifetime; resuming under a different configuration is refused rather
// than silently diverging.

#ifndef CROWDTOPK_PERSIST_RECOVERY_H_
#define CROWDTOPK_PERSIST_RECOVERY_H_

#include <cstdint>
#include <map>
#include <string>

#include "persist/snapshot.h"
#include "persist/wal.h"
#include "util/status.h"

namespace crowdtopk::persist {

// manifest.bin: written once when a persist directory is (re)initialised.
util::Status WriteManifest(const std::string& dir, uint64_t fingerprint);
// NotFound when no manifest exists; InvalidArgument when unreadable.
util::Status ReadManifest(const std::string& dir, uint64_t* fingerprint);

// Newest snapshot that parses and checksums clean; NotFound when none.
// `skipped` (optional) counts corrupt snapshots fallen past.
util::Status LoadLatestSnapshot(const std::string& dir, SnapshotData* out,
                                int64_t* skipped = nullptr);

struct RecoveredState {
  bool manifest_found = false;
  bool has_snapshot = false;
  SnapshotData snapshot;  // meaningful iff has_snapshot
  int64_t snapshots_skipped = 0;

  // Barrier records recovered from the WAL, past the snapshot barrier.
  std::map<int64_t, BarrierRecord> barriers;
  // Last barrier whose batch is durable: max(snapshot barrier, last WAL
  // barrier). -1 when the directory holds nothing usable.
  int64_t durable_barrier = -1;
  // Fresh segment index live appends continue in (never a used file).
  int64_t next_wal_segment = 0;

  int64_t wal_records = 0;  // records replayed (events + barriers)
  bool wal_truncated = false;
  int64_t wal_records_dropped = 0;
  int64_t wal_bytes_dropped = 0;
  std::string wal_detail;
};

// FailedPrecondition when the directory's manifest or snapshot carries a
// different configuration fingerprint; otherwise degrades gracefully —
// corruption lowers the durable frontier, it never fails the call.
util::StatusOr<RecoveredState> Recover(const std::string& dir,
                                       uint64_t config_fingerprint);

}  // namespace crowdtopk::persist

#endif  // CROWDTOPK_PERSIST_RECOVERY_H_
