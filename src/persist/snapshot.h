// Snapshot: the full durable-state image at one quiescence barrier.
//
// A snapshot captures everything a resumed run needs to verify (and a warm
// restart needs to reuse): the barrier position and chained digest, the
// serving layer's admission state (queued ids, in-flight descriptors,
// completed outcomes, rejected ids), and the judgment cache's committed
// entries in canonical order with bit-exact Welford summaries. Snapshots
// are written atomically (tmp + fsync + rename + dir fsync) and carry a
// whole-payload CRC32, so a reader observes either a complete image or
// none; a corrupt snapshot makes recovery fall back to the previous one.

#ifndef CROWDTOPK_PERSIST_SNAPSHOT_H_
#define CROWDTOPK_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cache/judgment_cache.h"
#include "persist/format.h"
#include "util/status.h"

namespace crowdtopk::persist {

// Admission state of one query that was in flight at the snapshot barrier.
// The mid-algorithm state itself lives on a driver stack and is
// regenerated deterministically by catch-up re-execution; the descriptor
// is recorded for observability and divergence triage.
struct InflightDescriptor {
  int64_t query_id = 0;
  int64_t admitted_round = 0;
  int64_t expired_assignments = 0;
  int64_t requeued_assignments = 0;
};

struct SnapshotData {
  // Position: the barrier this image was taken at, plus the running digest
  // (BarrierRecord::digest) catch-up verification compares against.
  BarrierRecord barrier;
  // FNV-1a fingerprint of the serving configuration; resume refuses to
  // proceed when it does not match the live run's.
  uint64_t config_fingerprint = 0;
  // The run finished cleanly (Finalize wrote this image).
  bool complete = false;
  // First WAL segment with records after this snapshot; older segments
  // are pruned once the snapshot is durable.
  int64_t next_wal_segment = 0;

  // Serving admission state, all in deterministic order.
  std::vector<int64_t> queued;                  // FIFO admission queue
  std::vector<InflightDescriptor> inflight;     // ascending query id
  std::vector<CompleteRecord> completed;        // ascending query id
  std::vector<int64_t> rejected;                // ascending query id

  // Judgment-cache image: canonical order (universe, pair, kind), entries
  // bit-exact. `cache_digest` is CacheImageDigest(cache_entries), stored so
  // catch-up can verify the regenerated cache without re-reading disk.
  std::vector<cache::ExportedEntry> cache_entries;
  uint64_t cache_digest = 0;
};

// FNV-1a over the encoded cache image; the cache-equivalence check used by
// resume verification and the tests.
uint64_t CacheImageDigest(const std::vector<cache::ExportedEntry>& entries);

// Serialises `data` to `path` atomically. Fills bytes_written when
// non-null. `data.cache_digest` is recomputed from `data.cache_entries`.
util::Status WriteSnapshot(const std::string& path, const SnapshotData& data,
                           int64_t* bytes_written = nullptr);

// Parses a snapshot; InvalidArgument / DataLoss-style Internal errors on a
// bad magic, version, CRC, or malformed payload.
util::Status ReadSnapshot(const std::string& path, SnapshotData* out);

}  // namespace crowdtopk::persist

#endif  // CROWDTOPK_PERSIST_SNAPSHOT_H_
