// PersistenceManager: the serving layer's single entry point into the
// durability subsystem.
//
// The serving replay is a pure function of (options, seed, trace), so a
// resumed process re-executes it from time zero and every judgment,
// latency, and scheduling decision regenerates bit-identically. What the
// durable state adds on top of that re-execution:
//
//   * the durable frontier — barriers at or below it are *catch-up*:
//     their batches are already on disk, nothing is appended, and the
//     crowd work they contain is accounted as replayed rather than
//     re-purchased;
//   * verification — each catch-up barrier's re-derived chained digest is
//     compared against the recovered record (and, at a snapshot barrier,
//     the regenerated judgment-cache image against the snapshot's image
//     digest), making "byte-identical warm state" a checked property
//     instead of an assumption;
//   * live durability past the frontier — one framed, CRC'd, optionally
//     fsynced WAL batch per quiescence barrier, snapshots every
//     `snapshot_every` barriers, older artifacts pruned.
//
// The manager is driven from the service thread only (event hooks between
// barriers, OnBarrier at each quiescence point); it has no locking of its
// own. A manager with an empty `dir` is inert: every call is a cheap
// no-op, so callers need no persistence-enabled branches.

#ifndef CROWDTOPK_PERSIST_MANAGER_H_
#define CROWDTOPK_PERSIST_MANAGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "persist/recovery.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "util/status.h"

namespace crowdtopk::persist {

struct PersistOptions {
  // Persist directory; empty disables the subsystem entirely.
  std::string dir;
  // Snapshot every N barriers; <= 0 writes only the final snapshot.
  int64_t snapshot_every = 8;
  // fdatasync each WAL batch before proceeding past its barrier.
  bool wal_fsync = true;
  // WAL segment rotation threshold.
  int64_t wal_segment_bytes = int64_t{1} << 20;
  // Resume from the directory's existing state instead of starting a
  // fresh generation (which clears previous wal/snapshot/manifest files).
  bool resume = false;
  // Crash injection: _Exit(137) immediately after this barrier's WAL
  // batch is durable (before any snapshot it would have triggered).
  // < 0 disables.
  int64_t kill_at_barrier = -1;
  // Fail-stop injection for in-process tests: like kill_at_barrier but
  // silently stops persisting instead of exiting, so the run completes
  // and the directory looks exactly as a crash would have left it
  // (minus the torn tail). < 0 disables.
  int64_t halt_after_barrier = -1;
};

struct PersistCounters {
  // Writer side.
  int64_t wal_records = 0;
  int64_t wal_bytes = 0;
  int64_t wal_segments = 0;
  int64_t snapshots = 0;
  int64_t snapshot_bytes = 0;  // last snapshot's size
  // Recovery side.
  int64_t resumed = 0;  // 1 when Open() ran recovery
  int64_t snapshot_loaded = 0;
  int64_t snapshots_skipped = 0;  // corrupt snapshots fallen past
  int64_t durable_barrier = -1;   // frontier at Open() time
  int64_t replayed_barriers = 0;  // catch-up barriers re-executed
  int64_t verified_barriers = 0;  // digest-checked against durable records
  int64_t divergent_barriers = 0; // digest mismatches (0 in a healthy run)
  int64_t cache_image_verified = 0;
  int64_t cache_image_divergent = 0;
  int64_t wal_records_recovered = 0;
  int64_t wal_records_dropped = 0;
  int64_t wal_bytes_dropped = 0;
  int64_t wal_truncated = 0;
};

class PersistenceManager {
 public:
  // Builds the SnapshotData image (admission state + cache export) at the
  // current barrier; invoked only when a snapshot is due or a snapshot
  // barrier needs cache verification. Position fields (barrier,
  // fingerprint, next_wal_segment, complete) are filled by the manager.
  using SnapshotSource = std::function<SnapshotData()>;

  PersistenceManager(const PersistOptions& options,
                     uint64_t config_fingerprint);

  PersistenceManager(const PersistenceManager&) = delete;
  PersistenceManager& operator=(const PersistenceManager&) = delete;

  // Prepares the directory: fresh generation (clear + manifest) or
  // recovery (resume). FailedPrecondition on a configuration-fingerprint
  // mismatch; the caller decides whether to run without persistence.
  util::Status Open();

  bool enabled() const { return !options_.dir.empty(); }
  // True while re-executing barriers that are already durable.
  bool in_catchup() const {
    return next_barrier_ <= counters_.durable_barrier;
  }

  // Event hooks; call between barriers in deterministic replay order.
  void OnAdmit(int64_t query_id);
  void OnReject(int64_t query_id);
  void OnComplete(const CompleteRecord& record);
  void OnCacheInsert(const cache::ExportedEntry& entry);

  // Seals the current batch at a quiescence barrier: verifies during
  // catch-up, appends + maybe snapshots when live. `round`, `now_seconds`,
  // `next_arrival`, `done` describe the replay position.
  util::Status OnBarrier(int64_t round, double now_seconds,
                         int64_t next_arrival, int64_t done,
                         const SnapshotSource& source);

  // Writes the final (complete) snapshot and prunes old artifacts.
  util::Status Finalize(const SnapshotSource& source);

  const PersistCounters& counters() const { return counters_; }
  const RecoveredState* recovered() const {
    return recovered_ ? recovered_.get() : nullptr;
  }

 private:
  void BufferEvent(std::string payload);
  // Checks a re-derived catch-up barrier against the durable record.
  void VerifyCatchup(const BarrierRecord& derived,
                     const SnapshotSource& source);
  util::Status TakeSnapshot(const SnapshotSource& source, bool complete);
  util::Status Prune();

  const PersistOptions options_;
  const uint64_t config_fingerprint_;

  std::unique_ptr<WalWriter> writer_;
  std::unique_ptr<RecoveredState> recovered_;

  // Current batch: framed at the next barrier. The digest chains over
  // event payloads only (not barrier records), restarting from the FNV
  // offset basis at barrier 0 — identical for fresh and resumed runs.
  std::vector<std::string> pending_;
  uint64_t digest_;

  int64_t next_barrier_ = 0;
  BarrierRecord last_barrier_;
  bool sealed_any_ = false;
  int64_t last_snapshot_barrier_ = -1;
  bool halted_ = false;
  int divergence_warnings_ = 0;

  PersistCounters counters_;
};

}  // namespace crowdtopk::persist

#endif  // CROWDTOPK_PERSIST_MANAGER_H_
