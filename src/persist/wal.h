// Write-ahead log: segmented, CRC-framed, torn-tail tolerant.
//
// The serving layer appends one batch of records per quiescence barrier
// (event records followed by the sealing kBarrier record) — a single
// write(2) and, with fsync enabled, a single fdatasync(2), so durability
// costs one I/O round-trip per global round. Segments rotate at a size
// threshold and immediately after every snapshot, which is what lets the
// snapshot prune all older segments wholesale.
//
// Reading replays every surviving record in order. The first record whose
// frame or CRC32 fails to verify marks the torn tail: everything before it
// is kept, everything after — including any intact later segments, whose
// ordering can no longer be trusted — is counted as dropped. Repair()
// truncates the log back to the last valid record so subsequent runs see a
// clean log; recovery reports what was dropped instead of crashing
// (docs/PERSISTENCE.md, "Recovery semantics").

#ifndef CROWDTOPK_PERSIST_WAL_H_
#define CROWDTOPK_PERSIST_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "persist/format.h"
#include "util/status.h"

namespace crowdtopk::persist {

struct WalWriterOptions {
  std::string dir;
  // Rotate to a new segment once the current one exceeds this many bytes.
  int64_t segment_bytes = int64_t{1} << 20;
  // fdatasync every batch before acknowledging it.
  bool fsync = true;
};

struct WalWriterCounters {
  int64_t records = 0;
  int64_t bytes = 0;
  int64_t segments = 0;  // segments this writer created
};

class WalWriter {
 public:
  // Appends start in segment `start_segment` (created lazily; never reuses
  // an existing file's tail — recovery always hands out a fresh index).
  WalWriter(const WalWriterOptions& options, int64_t start_segment);

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Appends one batch of record payloads as a unit (framed, CRC'd, single
  // write + optional fdatasync). Rotates beforehand when the current
  // segment is over the size threshold.
  util::Status AppendBatch(const std::vector<std::string>& payloads);

  // Starts a new segment; the next batch creates it. Called after every
  // snapshot so older segments become prunable.
  void Rotate();

  // Index of the segment the next append writes to.
  int64_t current_segment() const { return segment_; }

  // First segment index guaranteed to hold only records appended from now
  // on: the current index while it is still untouched, one past it once
  // the file exists. Snapshots store this as their next_wal_segment.
  int64_t next_clean_segment() const {
    return segment_ + (segment_created_ ? 1 : 0);
  }

  const WalWriterCounters& counters() const { return counters_; }

 private:
  util::Status EnsureSegmentOpen();

  WalWriterOptions options_;
  int64_t segment_;
  bool segment_created_ = false;
  int64_t segment_size_ = 0;
  WalWriterCounters counters_;
};

struct WalReadResult {
  std::vector<WalRecord> records;  // every record before the torn tail
  int64_t segments_read = 0;
  bool truncated = false;       // a frame failed to verify
  int64_t records_dropped = 0;  // intact records discarded past the tear
  int64_t bytes_dropped = 0;    // bytes discarded past the tear
  std::string detail;           // human-readable tear location
};

// Replays segments `from_segment`, `from_segment`+1, ... until the first
// missing index. Never fails on corruption — it truncates instead (see
// header comment); only I/O errors surface as non-Ok.
util::StatusOr<WalReadResult> ReadWal(const std::string& dir,
                                      int64_t from_segment);

// Largest segment index present in `dir`, or -1.
int64_t MaxWalSegment(const std::string& dir);

// Physically repairs the log after a torn read: rewrites the torn segment
// to its valid prefix (dropping it entirely when nothing valid remains)
// and deletes every later segment, so the next recovery sees a clean log.
util::Status RepairWal(const std::string& dir, int64_t from_segment);

// Framing helper shared with tests: [u32 len][u32 crc][payload].
void FrameRecord(const std::string& payload, std::string* out);

}  // namespace crowdtopk::persist

#endif  // CROWDTOPK_PERSIST_WAL_H_
