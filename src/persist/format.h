// On-disk format of the durable-state subsystem.
//
// Two artifact kinds live in CROWDTOPK_PERSIST_DIR (docs/PERSISTENCE.md):
//
//   wal-<seq>.log        write-ahead log segments. A fixed header
//                        (magic, version, segment index) followed by
//                        length-prefixed records, each independently
//                        CRC32-protected:
//                            [u32 payload_len][u32 crc32][payload]
//                        A record whose length or checksum does not verify
//                        marks the torn tail: replay keeps everything
//                        before it and reports everything after it as
//                        dropped — never a crash, never silent corruption.
//
//   snapshot-<barrier>.snap
//                        full state image at one quiescence barrier:
//                        header (magic, version, flags, payload length,
//                        CRC32) + payload. Written atomically
//                        (util::WriteFileAtomic), so a reader sees either
//                        a complete snapshot or none.
//
// All integers are little-endian fixed width; doubles are stored as their
// IEEE-754 bit patterns, so a restored value is bit-exact — the same
// contract the judgment cache's Welford Restore path relies on.
//
// Record payloads start with a RecordType byte. Event records (admit /
// reject / complete / cache-insert) describe what happened since the
// previous barrier; a kBarrier record seals the batch and carries the
// running FNV-1a digest of every event payload so far, which is what
// recovery verifies catch-up re-execution against.

#ifndef CROWDTOPK_PERSIST_FORMAT_H_
#define CROWDTOPK_PERSIST_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "cache/judgment_cache.h"
#include "util/codec.h"

namespace crowdtopk::persist {

inline constexpr uint64_t kWalMagic = 0x31304c4157344b54ULL;   // "TK4WAL01"
inline constexpr uint64_t kSnapshotMagic = 0x50414e53344b54ULL;  // "TK4SNAP\0"
inline constexpr uint32_t kFormatVersion = 1;

// Snapshot header flag: the run this snapshot closes finished cleanly.
inline constexpr uint32_t kSnapshotFlagComplete = 1u << 0;

enum class RecordType : uint8_t {
  kAdmit = 1,        // query admitted into an in-flight slot
  kReject = 2,       // query bounced at admission (queue overflow)
  kComplete = 3,     // query finished; durable outcome summary attached
  kCacheInsert = 4,  // one staged judgment-cache insert applied at a barrier
  kBarrier = 5,      // seals the batch; carries the chained state digest
};

// Durable outcome summary of a finished query (the fields a warm restart
// must not lose; timing fields re-derive deterministically from replay).
struct CompleteRecord {
  int64_t query_id = 0;
  uint32_t status_code = 0;  // util::StatusCode
  int64_t total_microtasks = 0;
  int64_t rounds_private = 0;
  double precision_at_k = 0.0;
  std::vector<int32_t> items;
};

// Seals one quiescence barrier.
struct BarrierRecord {
  int64_t barrier = 0;       // 0-based barrier sequence number
  int64_t round = 0;         // scheduler's global round counter
  double now_seconds = 0.0;  // simulated clock (bit-exact)
  int64_t next_arrival = 0;  // arrivals consumed from the trace
  int64_t done = 0;          // queries finished or rejected
  uint64_t digest = 0;       // chained FNV-1a over all event payloads
};

// One decoded WAL record; `type` says which member is meaningful.
struct WalRecord {
  RecordType type = RecordType::kBarrier;
  int64_t query_id = 0;               // kAdmit / kReject
  CompleteRecord complete;            // kComplete
  cache::ExportedEntry cache_insert;  // kCacheInsert
  BarrierRecord barrier;              // kBarrier
};

// ----- byte-level codec ---------------------------------------------------

// The codec lives in util/codec.h now (the network wire protocol shares
// it); these aliases keep the persist call sites and tests unchanged.
using Encoder = util::Encoder;
using Decoder = util::Decoder;

// ----- record payload codecs ---------------------------------------------

std::string EncodeAdmit(int64_t query_id);
std::string EncodeReject(int64_t query_id);
std::string EncodeComplete(const CompleteRecord& record);
std::string EncodeCacheInsert(const cache::ExportedEntry& entry);
std::string EncodeBarrier(const BarrierRecord& record);

// Decodes one record payload (type byte included). False on malformed.
bool DecodeRecord(const std::string& payload, WalRecord* out);

// Serialises / parses a cache entry body (shared by WAL records and the
// snapshot's cache image).
void EncodeCacheEntry(const cache::ExportedEntry& entry, Encoder* enc);
bool DecodeCacheEntry(Decoder* dec, cache::ExportedEntry* out);

// File names inside the persist directory.
std::string WalSegmentName(int64_t seq);
std::string SnapshotName(int64_t barrier);
// Parses the numeric id out of a wal-/snapshot- name; false when `name` is
// not one of ours.
bool ParseWalSegmentName(const std::string& name, int64_t* seq);
bool ParseSnapshotName(const std::string& name, int64_t* barrier);

}  // namespace crowdtopk::persist

#endif  // CROWDTOPK_PERSIST_FORMAT_H_
