#include "persist/manager.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/crc32.h"
#include "util/file_io.h"

namespace crowdtopk::persist {

namespace {

constexpr int kMaxDivergenceWarnings = 5;

bool BitsEqual(double a, double b) {
  uint64_t ab, bb;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

bool SameBarrier(const BarrierRecord& a, const BarrierRecord& b) {
  return a.barrier == b.barrier && a.round == b.round &&
         BitsEqual(a.now_seconds, b.now_seconds) &&
         a.next_arrival == b.next_arrival && a.done == b.done &&
         a.digest == b.digest;
}

}  // namespace

PersistenceManager::PersistenceManager(const PersistOptions& options,
                                       uint64_t config_fingerprint)
    : options_(options),
      config_fingerprint_(config_fingerprint),
      digest_(util::kFnv1a64Init) {}

util::Status PersistenceManager::Open() {
  if (!enabled()) return util::Status::Ok();
  CROWDTOPK_RETURN_IF_ERROR(util::EnsureDirectory(options_.dir));

  WalWriterOptions writer_options;
  writer_options.dir = options_.dir;
  writer_options.segment_bytes = options_.wal_segment_bytes;
  writer_options.fsync = options_.wal_fsync;

  if (options_.resume) {
    auto recovered = Recover(options_.dir, config_fingerprint_);
    if (!recovered.ok()) return recovered.status();
    recovered_ =
        std::make_unique<RecoveredState>(std::move(recovered).value());
    counters_.resumed = 1;
    counters_.snapshot_loaded = recovered_->has_snapshot ? 1 : 0;
    counters_.snapshots_skipped = recovered_->snapshots_skipped;
    counters_.durable_barrier = recovered_->durable_barrier;
    counters_.wal_records_recovered = recovered_->wal_records;
    counters_.wal_records_dropped = recovered_->wal_records_dropped;
    counters_.wal_bytes_dropped = recovered_->wal_bytes_dropped;
    counters_.wal_truncated = recovered_->wal_truncated ? 1 : 0;
    if (recovered_->has_snapshot) {
      last_snapshot_barrier_ = recovered_->snapshot.barrier.barrier;
    }
    if (recovered_->wal_truncated) {
      std::fprintf(stderr,
                   "crowdtopk persist: WAL tail damaged (%s); dropped %lld "
                   "records / %lld bytes, resuming from barrier %lld\n",
                   recovered_->wal_detail.c_str(),
                   static_cast<long long>(recovered_->wal_records_dropped),
                   static_cast<long long>(recovered_->wal_bytes_dropped),
                   static_cast<long long>(recovered_->durable_barrier));
    }
    writer_ = std::make_unique<WalWriter>(writer_options,
                                          recovered_->next_wal_segment);
    if (!recovered_->manifest_found) {
      CROWDTOPK_RETURN_IF_ERROR(
          WriteManifest(options_.dir, config_fingerprint_));
    }
    return util::Status::Ok();
  }

  // Fresh generation: previous artifacts (ours only) are cleared so stale
  // segments can never interleave with the new run's records.
  std::vector<std::string> names;
  CROWDTOPK_RETURN_IF_ERROR(util::ListDirectoryFiles(options_.dir, &names));
  for (const std::string& name : names) {
    int64_t ignored = 0;
    if (ParseWalSegmentName(name, &ignored) ||
        ParseSnapshotName(name, &ignored) || name == "manifest.bin" ||
        name == "persist.trace.jsonl") {
      CROWDTOPK_RETURN_IF_ERROR(
          util::RemoveFileIfExists(options_.dir + "/" + name));
    }
  }
  CROWDTOPK_RETURN_IF_ERROR(WriteManifest(options_.dir, config_fingerprint_));
  writer_ = std::make_unique<WalWriter>(writer_options, 0);
  return util::Status::Ok();
}

void PersistenceManager::BufferEvent(std::string payload) {
  if (!enabled()) return;
  digest_ = util::Fnv1a64(payload.data(), payload.size(), digest_);
  pending_.push_back(std::move(payload));
}

void PersistenceManager::OnAdmit(int64_t query_id) {
  BufferEvent(EncodeAdmit(query_id));
}

void PersistenceManager::OnReject(int64_t query_id) {
  BufferEvent(EncodeReject(query_id));
}

void PersistenceManager::OnComplete(const CompleteRecord& record) {
  BufferEvent(EncodeComplete(record));
}

void PersistenceManager::OnCacheInsert(const cache::ExportedEntry& entry) {
  BufferEvent(EncodeCacheInsert(entry));
}

void PersistenceManager::VerifyCatchup(const BarrierRecord& derived,
                                       const SnapshotSource& source) {
  ++counters_.replayed_barriers;
  const BarrierRecord* durable = nullptr;
  const bool at_snapshot =
      recovered_->has_snapshot &&
      derived.barrier == recovered_->snapshot.barrier.barrier;
  if (at_snapshot) {
    durable = &recovered_->snapshot.barrier;
  } else {
    auto it = recovered_->barriers.find(derived.barrier);
    if (it != recovered_->barriers.end()) durable = &it->second;
  }
  if (durable != nullptr) {
    if (SameBarrier(derived, *durable)) {
      ++counters_.verified_barriers;
    } else {
      ++counters_.divergent_barriers;
      if (divergence_warnings_ < kMaxDivergenceWarnings) {
        ++divergence_warnings_;
        std::fprintf(stderr,
                     "crowdtopk persist: catch-up diverged at barrier %lld "
                     "(digest %016llx vs durable %016llx)\n",
                     static_cast<long long>(derived.barrier),
                     static_cast<unsigned long long>(derived.digest),
                     static_cast<unsigned long long>(durable->digest));
      }
    }
  }
  if (at_snapshot) {
    // The regenerated judgment cache must match the snapshot image
    // bit-for-bit at the barrier the image was taken.
    const SnapshotData current = source();
    if (CacheImageDigest(current.cache_entries) ==
        recovered_->snapshot.cache_digest) {
      ++counters_.cache_image_verified;
    } else {
      ++counters_.cache_image_divergent;
      std::fprintf(stderr,
                   "crowdtopk persist: regenerated cache image diverges from "
                   "snapshot at barrier %lld\n",
                   static_cast<long long>(derived.barrier));
    }
  }
}

util::Status PersistenceManager::OnBarrier(int64_t round, double now_seconds,
                                           int64_t next_arrival, int64_t done,
                                           const SnapshotSource& source) {
  if (!enabled()) return util::Status::Ok();
  const int64_t seq = next_barrier_++;
  BarrierRecord record;
  record.barrier = seq;
  record.round = round;
  record.now_seconds = now_seconds;
  record.next_arrival = next_arrival;
  record.done = done;
  record.digest = digest_;
  last_barrier_ = record;
  sealed_any_ = true;

  if (seq <= counters_.durable_barrier) {
    VerifyCatchup(record, source);
    pending_.clear();
    return util::Status::Ok();
  }
  if (halted_) {
    pending_.clear();
    return util::Status::Ok();
  }

  pending_.push_back(EncodeBarrier(record));
  const util::Status append = writer_->AppendBatch(pending_);
  pending_.clear();
  CROWDTOPK_RETURN_IF_ERROR(append);
  counters_.wal_records = writer_->counters().records;
  counters_.wal_bytes = writer_->counters().bytes;
  counters_.wal_segments = writer_->counters().segments;

  if (options_.kill_at_barrier == seq) {
    std::fprintf(stderr,
                 "crowdtopk persist: injected crash after barrier %lld\n",
                 static_cast<long long>(seq));
    std::fflush(nullptr);
    std::_Exit(137);
  }
  if (options_.halt_after_barrier == seq) {
    halted_ = true;
    return util::Status::Ok();
  }

  if (options_.snapshot_every > 0 &&
      seq - last_snapshot_barrier_ >= options_.snapshot_every) {
    CROWDTOPK_RETURN_IF_ERROR(TakeSnapshot(source, /*complete=*/false));
  }
  return util::Status::Ok();
}

util::Status PersistenceManager::TakeSnapshot(const SnapshotSource& source,
                                              bool complete) {
  SnapshotData data = source();
  data.barrier = last_barrier_;
  data.config_fingerprint = config_fingerprint_;
  data.complete = complete;
  data.next_wal_segment = writer_->next_clean_segment();
  const std::string path =
      options_.dir + "/" + SnapshotName(data.barrier.barrier);
  int64_t bytes = 0;
  CROWDTOPK_RETURN_IF_ERROR(WriteSnapshot(path, data, &bytes));
  ++counters_.snapshots;
  counters_.snapshot_bytes = bytes;
  last_snapshot_barrier_ = data.barrier.barrier;
  writer_->Rotate();
  return Prune();
}

util::Status PersistenceManager::Prune() {
  // The latest snapshot makes every earlier segment redundant; the
  // previous snapshot is kept as the fallback should the newest one prove
  // unreadable (in which case its own segments are gone and recovery
  // degrades to the older barrier — still safe, just a longer catch-up).
  std::vector<std::string> names;
  CROWDTOPK_RETURN_IF_ERROR(util::ListDirectoryFiles(options_.dir, &names));
  std::vector<int64_t> snapshots;
  for (const std::string& name : names) {
    int64_t barrier = 0;
    if (ParseSnapshotName(name, &barrier)) snapshots.push_back(barrier);
  }
  std::sort(snapshots.rbegin(), snapshots.rend());
  for (size_t i = 2; i < snapshots.size(); ++i) {
    CROWDTOPK_RETURN_IF_ERROR(util::RemoveFileIfExists(
        options_.dir + "/" + SnapshotName(snapshots[i])));
  }
  const int64_t keep_from = writer_->current_segment();
  for (const std::string& name : names) {
    int64_t seq = 0;
    if (ParseWalSegmentName(name, &seq) && seq < keep_from) {
      CROWDTOPK_RETURN_IF_ERROR(
          util::RemoveFileIfExists(options_.dir + "/" + name));
    }
  }
  return util::Status::Ok();
}

util::Status PersistenceManager::Finalize(const SnapshotSource& source) {
  if (!enabled() || halted_ || !sealed_any_) return util::Status::Ok();
  if (last_barrier_.barrier <= counters_.durable_barrier &&
      recovered_ != nullptr && recovered_->has_snapshot &&
      recovered_->snapshot.complete) {
    // Resumed a run that had already finalised; the directory is current.
    return util::Status::Ok();
  }
  return TakeSnapshot(source, /*complete=*/true);
}

}  // namespace crowdtopk::persist
