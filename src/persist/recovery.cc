#include "persist/recovery.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/crc32.h"
#include "util/file_io.h"

namespace crowdtopk::persist {

namespace {

constexpr uint64_t kManifestMagic = 0x46494e414d344b54ULL;  // "TK4MANIF"
constexpr char kManifestName[] = "manifest.bin";

// Snapshot barriers present in `dir`, newest first.
std::vector<int64_t> SnapshotBarriers(const std::string& dir) {
  std::vector<std::string> names;
  std::vector<int64_t> barriers;
  if (!util::ListDirectoryFiles(dir, &names).ok()) return barriers;
  for (const std::string& name : names) {
    int64_t barrier = 0;
    if (ParseSnapshotName(name, &barrier)) barriers.push_back(barrier);
  }
  std::sort(barriers.rbegin(), barriers.rend());
  return barriers;
}

int64_t MinWalSegment(const std::string& dir) {
  std::vector<std::string> names;
  if (!util::ListDirectoryFiles(dir, &names).ok()) return -1;
  int64_t min_seq = -1;
  for (const std::string& name : names) {
    int64_t seq = 0;
    if (ParseWalSegmentName(name, &seq) && (min_seq < 0 || seq < min_seq)) {
      min_seq = seq;
    }
  }
  return min_seq;
}

}  // namespace

util::Status WriteManifest(const std::string& dir, uint64_t fingerprint) {
  Encoder enc;
  enc.PutU64(kManifestMagic);
  enc.PutU32(kFormatVersion);
  enc.PutU64(fingerprint);
  enc.PutU32(util::Crc32(enc.buffer()));
  return util::WriteFileAtomic(dir + "/" + kManifestName, enc.Take());
}

util::Status ReadManifest(const std::string& dir, uint64_t* fingerprint) {
  const std::string path = dir + "/" + kManifestName;
  if (util::FileSize(path) < 0) {
    return util::Status::NotFound("no manifest in " + dir);
  }
  std::string bytes;
  CROWDTOPK_RETURN_IF_ERROR(util::ReadFileToString(path, &bytes));
  Decoder dec(bytes);
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t crc = 0;
  if (!dec.GetU64(&magic) || !dec.GetU32(&version) ||
      !dec.GetU64(fingerprint) || !dec.GetU32(&crc) || dec.remaining() != 0 ||
      magic != kManifestMagic || version != kFormatVersion ||
      util::Crc32(bytes.data(), bytes.size() - sizeof(uint32_t)) != crc) {
    return util::Status::InvalidArgument("manifest unreadable: " + path);
  }
  return util::Status::Ok();
}

util::Status LoadLatestSnapshot(const std::string& dir, SnapshotData* out,
                                int64_t* skipped) {
  if (skipped != nullptr) *skipped = 0;
  for (const int64_t barrier : SnapshotBarriers(dir)) {
    const std::string path = dir + "/" + SnapshotName(barrier);
    SnapshotData data;
    if (ReadSnapshot(path, &data).ok()) {
      *out = std::move(data);
      return util::Status::Ok();
    }
    if (skipped != nullptr) ++*skipped;
  }
  return util::Status::NotFound("no readable snapshot in " + dir);
}

util::StatusOr<RecoveredState> Recover(const std::string& dir,
                                       uint64_t config_fingerprint) {
  RecoveredState state;

  uint64_t manifest_fingerprint = 0;
  const util::Status manifest_status =
      ReadManifest(dir, &manifest_fingerprint);
  if (manifest_status.ok()) {
    state.manifest_found = true;
    if (manifest_fingerprint != config_fingerprint) {
      return util::Status::FailedPrecondition(
          "persist dir " + dir +
          " was written under a different configuration; refusing to resume "
          "(delete the directory or match the original knobs)");
    }
  } else if (manifest_status.code() != util::StatusCode::kNotFound) {
    // Unreadable manifest: treat like any other corruption — fall back to
    // whatever the snapshots/WAL still prove, but say so.
    state.wal_detail = manifest_status.message();
  }

  const util::Status snapshot_status =
      LoadLatestSnapshot(dir, &state.snapshot, &state.snapshots_skipped);
  if (snapshot_status.ok()) {
    if (state.snapshot.config_fingerprint != config_fingerprint) {
      return util::Status::FailedPrecondition(
          "snapshot in " + dir +
          " was written under a different configuration; refusing to resume");
    }
    state.has_snapshot = true;
    state.durable_barrier = state.snapshot.barrier.barrier;
  }

  // Replay the WAL from the snapshot's clean segment (or the oldest
  // segment present when no snapshot survived).
  int64_t from_segment =
      state.has_snapshot ? state.snapshot.next_wal_segment : 0;
  if (!state.has_snapshot) {
    const int64_t min_seq = MinWalSegment(dir);
    if (min_seq > 0) from_segment = min_seq;
  }
  auto read = ReadWal(dir, from_segment);
  if (!read.ok()) return read.status();
  const WalReadResult& wal = *read;
  state.wal_records = static_cast<int64_t>(wal.records.size());
  state.wal_truncated = wal.truncated;
  state.wal_records_dropped = wal.records_dropped;
  state.wal_bytes_dropped = wal.bytes_dropped;
  if (!wal.detail.empty()) state.wal_detail = wal.detail;

  for (const WalRecord& record : wal.records) {
    if (record.type != RecordType::kBarrier) continue;
    // Event records between barriers are digested into the next barrier's
    // record; only the barriers themselves anchor verification. Events
    // after the last barrier belong to a batch that never sealed and are
    // ignored (a batch is a single write, so this only happens at a tear).
    state.barriers[record.barrier.barrier] = record.barrier;
    state.durable_barrier =
        std::max(state.durable_barrier, record.barrier.barrier);
  }

  if (wal.truncated) {
    CROWDTOPK_RETURN_IF_ERROR(RepairWal(dir, from_segment));
  }
  // Live appends always open a fresh segment; a repaired tail segment is
  // never extended.
  state.next_wal_segment = std::max(MaxWalSegment(dir) + 1, from_segment);
  return state;
}

}  // namespace crowdtopk::persist
