#include "persist/wal.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "util/crc32.h"
#include "util/file_io.h"

namespace crowdtopk::persist {

namespace {

// Segment header: magic + version + segment index.
constexpr size_t kSegmentHeaderSize = 8 + 4 + 8;
// Framed records cap payloads far above anything the encoders emit; a
// larger length field is treated as corruption rather than allocated.
constexpr uint32_t kMaxRecordPayload = 64u << 20;

std::string SegmentPath(const std::string& dir, int64_t seq) {
  return dir + "/" + WalSegmentName(seq);
}

std::string EncodeSegmentHeader(int64_t seq) {
  Encoder enc;
  enc.PutU64(kWalMagic);
  enc.PutU32(kFormatVersion);
  enc.PutI64(seq);
  return enc.Take();
}

bool DecodeSegmentHeader(Decoder* dec, int64_t expected_seq) {
  uint64_t magic = 0;
  uint32_t version = 0;
  int64_t seq = 0;
  if (!dec->GetU64(&magic) || !dec->GetU32(&version) || !dec->GetI64(&seq)) {
    return false;
  }
  return magic == kWalMagic && version == kFormatVersion &&
         seq == expected_seq;
}

}  // namespace

void FrameRecord(const std::string& payload, std::string* out) {
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(payload.size()));
  enc.PutU32(util::Crc32(payload));
  out->append(enc.buffer());
  out->append(payload);
}

WalWriter::WalWriter(const WalWriterOptions& options, int64_t start_segment)
    : options_(options), segment_(start_segment) {}

util::Status WalWriter::EnsureSegmentOpen() {
  if (segment_created_) return util::Status::Ok();
  const std::string header = EncodeSegmentHeader(segment_);
  CROWDTOPK_RETURN_IF_ERROR(util::AppendToFile(
      SegmentPath(options_.dir, segment_), header, options_.fsync));
  segment_created_ = true;
  segment_size_ = static_cast<int64_t>(header.size());
  ++counters_.segments;
  return util::Status::Ok();
}

util::Status WalWriter::AppendBatch(const std::vector<std::string>& payloads) {
  if (payloads.empty()) return util::Status::Ok();
  if (segment_created_ && segment_size_ >= options_.segment_bytes) Rotate();
  CROWDTOPK_RETURN_IF_ERROR(EnsureSegmentOpen());
  std::string batch;
  for (const std::string& payload : payloads) FrameRecord(payload, &batch);
  CROWDTOPK_RETURN_IF_ERROR(util::AppendToFile(
      SegmentPath(options_.dir, segment_), batch, options_.fsync));
  segment_size_ += static_cast<int64_t>(batch.size());
  counters_.records += static_cast<int64_t>(payloads.size());
  counters_.bytes += static_cast<int64_t>(batch.size());
  return util::Status::Ok();
}

void WalWriter::Rotate() {
  if (!segment_created_) return;  // current segment is still untouched
  ++segment_;
  segment_created_ = false;
  segment_size_ = 0;
}

namespace {

// Parses one segment's bytes. Returns false when the segment has a torn
// or corrupt region; `*bad_offset` then marks where the valid prefix ends.
bool ParseSegment(const std::string& bytes, int64_t seq,
                  std::vector<WalRecord>* records, size_t* bad_offset) {
  Decoder dec(bytes);
  if (!DecodeSegmentHeader(&dec, seq)) {
    *bad_offset = 0;
    return false;
  }
  size_t good = kSegmentHeaderSize;
  while (dec.remaining() > 0) {
    uint32_t len = 0;
    uint32_t crc = 0;
    if (!dec.GetU32(&len) || !dec.GetU32(&crc) || len > kMaxRecordPayload ||
        dec.remaining() < len) {
      *bad_offset = good;
      return false;
    }
    std::string payload(bytes.data() + (bytes.size() - dec.remaining()), len);
    // Advance past the payload by re-slicing: Decoder has no skip, so pull
    // the bytes through GetBytes via a throwaway buffer-free path.
    for (uint32_t i = 0; i < len; ++i) {
      uint8_t b;
      dec.GetU8(&b);
    }
    WalRecord record;
    if (util::Crc32(payload) != crc || !DecodeRecord(payload, &record)) {
      *bad_offset = good;
      return false;
    }
    records->push_back(std::move(record));
    good = bytes.size() - dec.remaining();
  }
  *bad_offset = bytes.size();
  return true;
}

}  // namespace

int64_t MaxWalSegment(const std::string& dir) {
  std::vector<std::string> names;
  if (!util::ListDirectoryFiles(dir, &names).ok()) return -1;
  int64_t max_seq = -1;
  for (const std::string& name : names) {
    int64_t seq = 0;
    if (ParseWalSegmentName(name, &seq) && seq > max_seq) max_seq = seq;
  }
  return max_seq;
}

util::StatusOr<WalReadResult> ReadWal(const std::string& dir,
                                      int64_t from_segment) {
  WalReadResult result;
  const int64_t max_seq = MaxWalSegment(dir);
  for (int64_t seq = from_segment; seq <= max_seq; ++seq) {
    const std::string path = SegmentPath(dir, seq);
    if (util::FileSize(path) < 0) break;  // gap: stop at the last contiguous
    std::string bytes;
    CROWDTOPK_RETURN_IF_ERROR(util::ReadFileToString(path, &bytes));
    std::vector<WalRecord> records;
    size_t bad_offset = bytes.size();
    const bool clean = ParseSegment(bytes, seq, &records, &bad_offset);
    if (!result.truncated) {
      ++result.segments_read;
      result.records.insert(result.records.end(),
                            std::make_move_iterator(records.begin()),
                            std::make_move_iterator(records.end()));
      if (!clean) {
        result.truncated = true;
        result.bytes_dropped +=
            static_cast<int64_t>(bytes.size() - bad_offset);
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "torn tail in %s at offset %zu (%zu bytes)",
                      WalSegmentName(seq).c_str(), bad_offset, bytes.size());
        result.detail = buf;
      }
    } else {
      // Everything past the tear is dropped wholesale; intact records here
      // are counted so the operator can see what the tear cost.
      result.records_dropped += static_cast<int64_t>(records.size());
      result.bytes_dropped += static_cast<int64_t>(bytes.size());
    }
  }
  return result;
}

util::Status RepairWal(const std::string& dir, int64_t from_segment) {
  const int64_t max_seq = MaxWalSegment(dir);
  bool torn = false;
  for (int64_t seq = from_segment; seq <= max_seq; ++seq) {
    const std::string path = SegmentPath(dir, seq);
    if (util::FileSize(path) < 0) break;
    if (torn) {
      CROWDTOPK_RETURN_IF_ERROR(util::RemoveFileIfExists(path));
      continue;
    }
    std::string bytes;
    CROWDTOPK_RETURN_IF_ERROR(util::ReadFileToString(path, &bytes));
    std::vector<WalRecord> records;
    size_t bad_offset = bytes.size();
    if (ParseSegment(bytes, seq, &records, &bad_offset)) continue;
    torn = true;
    if (bad_offset <= kSegmentHeaderSize) {
      // Nothing valid survived (even the header may be bad): drop the file.
      CROWDTOPK_RETURN_IF_ERROR(util::RemoveFileIfExists(path));
    } else {
      CROWDTOPK_RETURN_IF_ERROR(
          util::WriteFileAtomic(path, bytes.substr(0, bad_offset)));
    }
  }
  return util::Status::Ok();
}

}  // namespace crowdtopk::persist
