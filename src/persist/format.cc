#include "persist/format.h"

#include <cinttypes>
#include <cstdio>

namespace crowdtopk::persist {

std::string EncodeAdmit(int64_t query_id) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(RecordType::kAdmit));
  enc.PutI64(query_id);
  return enc.Take();
}

std::string EncodeReject(int64_t query_id) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(RecordType::kReject));
  enc.PutI64(query_id);
  return enc.Take();
}

std::string EncodeComplete(const CompleteRecord& record) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(RecordType::kComplete));
  enc.PutI64(record.query_id);
  enc.PutU32(record.status_code);
  enc.PutI64(record.total_microtasks);
  enc.PutI64(record.rounds_private);
  enc.PutDouble(record.precision_at_k);
  enc.PutU32(static_cast<uint32_t>(record.items.size()));
  for (const int32_t item : record.items) enc.PutI32(item);
  return enc.Take();
}

void EncodeCacheEntry(const cache::ExportedEntry& entry, Encoder* enc) {
  enc->PutI64(entry.universe);
  enc->PutI32(entry.kind);
  enc->PutI32(entry.lo);
  enc->PutI32(entry.hi);
  enc->PutI32(static_cast<int32_t>(entry.entry.outcome));
  enc->PutU8(entry.entry.decisive ? 1 : 0);
  enc->PutDouble(entry.entry.alpha);
  enc->PutI64(entry.entry.count);
  enc->PutDouble(entry.entry.mean);
  enc->PutDouble(entry.entry.m2);
  enc->PutI64(entry.entry.first_stage_count);
  enc->PutDouble(entry.entry.first_stage_sd);
}

bool DecodeCacheEntry(Decoder* dec, cache::ExportedEntry* out) {
  int32_t outcome = 0;
  uint8_t decisive = 0;
  if (!dec->GetI64(&out->universe) || !dec->GetI32(&out->kind) ||
      !dec->GetI32(&out->lo) || !dec->GetI32(&out->hi) ||
      !dec->GetI32(&outcome) || !dec->GetU8(&decisive) ||
      !dec->GetDouble(&out->entry.alpha) || !dec->GetI64(&out->entry.count) ||
      !dec->GetDouble(&out->entry.mean) || !dec->GetDouble(&out->entry.m2) ||
      !dec->GetI64(&out->entry.first_stage_count) ||
      !dec->GetDouble(&out->entry.first_stage_sd)) {
    return false;
  }
  if (outcome < 0 || outcome > 2) return false;
  out->entry.outcome = static_cast<crowd::ComparisonOutcome>(outcome);
  out->entry.decisive = decisive != 0;
  return true;
}

std::string EncodeCacheInsert(const cache::ExportedEntry& entry) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(RecordType::kCacheInsert));
  EncodeCacheEntry(entry, &enc);
  return enc.Take();
}

std::string EncodeBarrier(const BarrierRecord& record) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(RecordType::kBarrier));
  enc.PutI64(record.barrier);
  enc.PutI64(record.round);
  enc.PutDouble(record.now_seconds);
  enc.PutI64(record.next_arrival);
  enc.PutI64(record.done);
  enc.PutU64(record.digest);
  return enc.Take();
}

bool DecodeRecord(const std::string& payload, WalRecord* out) {
  Decoder dec(payload);
  uint8_t type = 0;
  if (!dec.GetU8(&type)) return false;
  switch (static_cast<RecordType>(type)) {
    case RecordType::kAdmit:
      out->type = RecordType::kAdmit;
      return dec.GetI64(&out->query_id) && dec.remaining() == 0;
    case RecordType::kReject:
      out->type = RecordType::kReject;
      return dec.GetI64(&out->query_id) && dec.remaining() == 0;
    case RecordType::kComplete: {
      out->type = RecordType::kComplete;
      CompleteRecord& c = out->complete;
      uint32_t item_count = 0;
      if (!dec.GetI64(&c.query_id) || !dec.GetU32(&c.status_code) ||
          !dec.GetI64(&c.total_microtasks) || !dec.GetI64(&c.rounds_private) ||
          !dec.GetDouble(&c.precision_at_k) || !dec.GetU32(&item_count)) {
        return false;
      }
      c.items.resize(item_count);
      for (uint32_t i = 0; i < item_count; ++i) {
        if (!dec.GetI32(&c.items[i])) return false;
      }
      return dec.remaining() == 0;
    }
    case RecordType::kCacheInsert:
      out->type = RecordType::kCacheInsert;
      return DecodeCacheEntry(&dec, &out->cache_insert) &&
             dec.remaining() == 0;
    case RecordType::kBarrier: {
      out->type = RecordType::kBarrier;
      BarrierRecord& b = out->barrier;
      return dec.GetI64(&b.barrier) && dec.GetI64(&b.round) &&
             dec.GetDouble(&b.now_seconds) && dec.GetI64(&b.next_arrival) &&
             dec.GetI64(&b.done) && dec.GetU64(&b.digest) &&
             dec.remaining() == 0;
    }
    default:
      return false;
  }
}

std::string WalSegmentName(int64_t seq) {
  char name[64];
  std::snprintf(name, sizeof(name), "wal-%08" PRId64 ".log", seq);
  return name;
}

std::string SnapshotName(int64_t barrier) {
  char name[64];
  std::snprintf(name, sizeof(name), "snapshot-%010" PRId64 ".snap", barrier);
  return name;
}

namespace {

bool ParseNumericName(const std::string& name, const std::string& prefix,
                      const std::string& suffix, int64_t* value) {
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  int64_t parsed = 0;
  for (size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    parsed = parsed * 10 + (name[i] - '0');
  }
  *value = parsed;
  return true;
}

}  // namespace

bool ParseWalSegmentName(const std::string& name, int64_t* seq) {
  return ParseNumericName(name, "wal-", ".log", seq);
}

bool ParseSnapshotName(const std::string& name, int64_t* barrier) {
  return ParseNumericName(name, "snapshot-", ".snap", barrier);
}

}  // namespace crowdtopk::persist
