#include "persist/snapshot.h"

#include <utility>

#include "util/crc32.h"
#include "util/file_io.h"

namespace crowdtopk::persist {

namespace {

// Snapshot file layout:
//   [u64 magic][u32 version][u32 flags][u32 payload_len][u32 crc32][payload]
constexpr size_t kSnapshotHeaderSize = 8 + 4 + 4 + 4 + 4;

void EncodeBarrierFields(const BarrierRecord& barrier, Encoder* enc) {
  enc->PutI64(barrier.barrier);
  enc->PutI64(barrier.round);
  enc->PutDouble(barrier.now_seconds);
  enc->PutI64(barrier.next_arrival);
  enc->PutI64(barrier.done);
  enc->PutU64(barrier.digest);
}

bool DecodeBarrierFields(Decoder* dec, BarrierRecord* barrier) {
  return dec->GetI64(&barrier->barrier) && dec->GetI64(&barrier->round) &&
         dec->GetDouble(&barrier->now_seconds) &&
         dec->GetI64(&barrier->next_arrival) && dec->GetI64(&barrier->done) &&
         dec->GetU64(&barrier->digest);
}

void EncodeCompleteFields(const CompleteRecord& record, Encoder* enc) {
  enc->PutI64(record.query_id);
  enc->PutU32(record.status_code);
  enc->PutI64(record.total_microtasks);
  enc->PutI64(record.rounds_private);
  enc->PutDouble(record.precision_at_k);
  enc->PutU32(static_cast<uint32_t>(record.items.size()));
  for (const int32_t item : record.items) enc->PutI32(item);
}

bool DecodeCompleteFields(Decoder* dec, CompleteRecord* record) {
  uint32_t item_count = 0;
  if (!dec->GetI64(&record->query_id) || !dec->GetU32(&record->status_code) ||
      !dec->GetI64(&record->total_microtasks) ||
      !dec->GetI64(&record->rounds_private) ||
      !dec->GetDouble(&record->precision_at_k) || !dec->GetU32(&item_count)) {
    return false;
  }
  record->items.resize(item_count);
  for (uint32_t i = 0; i < item_count; ++i) {
    if (!dec->GetI32(&record->items[i])) return false;
  }
  return true;
}

std::string EncodePayload(const SnapshotData& data, uint64_t cache_digest) {
  Encoder enc;
  EncodeBarrierFields(data.barrier, &enc);
  enc.PutU64(data.config_fingerprint);
  enc.PutI64(data.next_wal_segment);

  enc.PutU32(static_cast<uint32_t>(data.queued.size()));
  for (const int64_t id : data.queued) enc.PutI64(id);

  enc.PutU32(static_cast<uint32_t>(data.inflight.size()));
  for (const InflightDescriptor& d : data.inflight) {
    enc.PutI64(d.query_id);
    enc.PutI64(d.admitted_round);
    enc.PutI64(d.expired_assignments);
    enc.PutI64(d.requeued_assignments);
  }

  enc.PutU32(static_cast<uint32_t>(data.completed.size()));
  for (const CompleteRecord& record : data.completed) {
    EncodeCompleteFields(record, &enc);
  }

  enc.PutU32(static_cast<uint32_t>(data.rejected.size()));
  for (const int64_t id : data.rejected) enc.PutI64(id);

  enc.PutU32(static_cast<uint32_t>(data.cache_entries.size()));
  for (const cache::ExportedEntry& entry : data.cache_entries) {
    EncodeCacheEntry(entry, &enc);
  }
  enc.PutU64(cache_digest);
  return enc.Take();
}

bool DecodePayload(const std::string& payload, SnapshotData* out) {
  Decoder dec(payload);
  if (!DecodeBarrierFields(&dec, &out->barrier) ||
      !dec.GetU64(&out->config_fingerprint) ||
      !dec.GetI64(&out->next_wal_segment)) {
    return false;
  }

  uint32_t count = 0;
  if (!dec.GetU32(&count)) return false;
  out->queued.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!dec.GetI64(&out->queued[i])) return false;
  }

  if (!dec.GetU32(&count)) return false;
  out->inflight.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    InflightDescriptor& d = out->inflight[i];
    if (!dec.GetI64(&d.query_id) || !dec.GetI64(&d.admitted_round) ||
        !dec.GetI64(&d.expired_assignments) ||
        !dec.GetI64(&d.requeued_assignments)) {
      return false;
    }
  }

  if (!dec.GetU32(&count)) return false;
  out->completed.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!DecodeCompleteFields(&dec, &out->completed[i])) return false;
  }

  if (!dec.GetU32(&count)) return false;
  out->rejected.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!dec.GetI64(&out->rejected[i])) return false;
  }

  if (!dec.GetU32(&count)) return false;
  out->cache_entries.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!DecodeCacheEntry(&dec, &out->cache_entries[i])) return false;
  }
  return dec.GetU64(&out->cache_digest) && dec.remaining() == 0;
}

}  // namespace

uint64_t CacheImageDigest(const std::vector<cache::ExportedEntry>& entries) {
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(entries.size()));
  for (const cache::ExportedEntry& entry : entries) {
    EncodeCacheEntry(entry, &enc);
  }
  return util::Fnv1a64(enc.buffer());
}

util::Status WriteSnapshot(const std::string& path, const SnapshotData& data,
                           int64_t* bytes_written) {
  const uint64_t cache_digest = CacheImageDigest(data.cache_entries);
  const std::string payload = EncodePayload(data, cache_digest);
  Encoder header;
  header.PutU64(kSnapshotMagic);
  header.PutU32(kFormatVersion);
  header.PutU32(data.complete ? kSnapshotFlagComplete : 0);
  header.PutU32(static_cast<uint32_t>(payload.size()));
  header.PutU32(util::Crc32(payload));
  std::string bytes = header.Take();
  bytes.append(payload);
  if (bytes_written != nullptr) {
    *bytes_written = static_cast<int64_t>(bytes.size());
  }
  return util::WriteFileAtomic(path, bytes);
}

util::Status ReadSnapshot(const std::string& path, SnapshotData* out) {
  std::string bytes;
  CROWDTOPK_RETURN_IF_ERROR(util::ReadFileToString(path, &bytes));
  Decoder dec(bytes);
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t flags = 0;
  uint32_t payload_len = 0;
  uint32_t crc = 0;
  if (!dec.GetU64(&magic) || !dec.GetU32(&version) || !dec.GetU32(&flags) ||
      !dec.GetU32(&payload_len) || !dec.GetU32(&crc)) {
    return util::Status::InvalidArgument("snapshot truncated: " + path);
  }
  if (magic != kSnapshotMagic) {
    return util::Status::InvalidArgument("snapshot bad magic: " + path);
  }
  if (version != kFormatVersion) {
    return util::Status::InvalidArgument("snapshot unsupported version: " +
                                         path);
  }
  if (dec.remaining() != payload_len) {
    return util::Status::InvalidArgument("snapshot length mismatch: " + path);
  }
  const std::string payload = bytes.substr(kSnapshotHeaderSize);
  if (util::Crc32(payload) != crc) {
    return util::Status::InvalidArgument("snapshot checksum mismatch: " +
                                         path);
  }
  SnapshotData data;
  if (!DecodePayload(payload, &data)) {
    return util::Status::InvalidArgument("snapshot payload malformed: " +
                                         path);
  }
  if (CacheImageDigest(data.cache_entries) != data.cache_digest) {
    return util::Status::InvalidArgument("snapshot cache digest mismatch: " +
                                         path);
  }
  data.complete = (flags & kSnapshotFlagComplete) != 0;
  *out = std::move(data);
  return util::Status::Ok();
}

}  // namespace crowdtopk::persist
