// Reductions from a telemetry trace to the paper's accounting tables.
//
// The evaluation of Section 6 reports, per algorithm, total monetary cost
// (TMC = microtasks purchased) and query latency (batch rounds, eta = 30).
// These helpers reduce a flat TraceEvent stream (telemetry/events.h) to
// exactly those quantities, split by the algorithm phase that incurred them
// — e.g. SPR's select vs. partition vs. rank share of a Table 7 TMC cell.
// docs/OBSERVABILITY.md walks through a worked example.

#ifndef CROWDTOPK_METRICS_TRACE_AGGREGATE_H_
#define CROWDTOPK_METRICS_TRACE_AGGREGATE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/events.h"
#include "util/table.h"

namespace crowdtopk::metrics {

// Per-phase accounting. `microtasks` is the phase's TMC contribution;
// `rounds` its batch-round latency contribution; `purchases` the number of
// purchase events (not microtasks) recorded in it.
struct PhaseStat {
  int64_t microtasks = 0;
  int64_t rounds = 0;
  int64_t purchases = 0;
};

// Leaf attribution: every purchase/round event counts toward exactly the
// phase path it was emitted under ("" for events outside any phase). The
// values over all keys therefore sum to the whole-trace totals.
std::map<std::string, PhaseStat> AggregateByPhase(
    const std::vector<telemetry::TraceEvent>& events);

// Rollup attribution: every event additionally counts toward each ancestor
// of its phase path, including the root "" — so result[""] holds the
// whole-trace totals and result["spr"] includes "spr/partition" etc.
std::map<std::string, PhaseStat> AggregateByPhaseRollup(
    const std::vector<telemetry::TraceEvent>& events);

// Whole-trace totals. When the trace covers one full query these equal the
// CrowdPlatform aggregate counters (total_microtasks(), rounds()).
PhaseStat TraceTotals(const std::vector<telemetry::TraceEvent>& events);

// Last recorded value of counter `name` anywhere in the trace; `fallback`
// if the counter never fired.
double LastCounter(const std::vector<telemetry::TraceEvent>& events,
                   const std::string& name, double fallback = 0.0);

// Renders per-phase stats as a printable/CSV-able table with columns
// phase | microtasks | rounds | purchases, sorted by phase path.
util::TablePrinter PhaseTable(const std::map<std::string, PhaseStat>& stats,
                              const std::string& title);

}  // namespace crowdtopk::metrics

#endif  // CROWDTOPK_METRICS_TRACE_AGGREGATE_H_
