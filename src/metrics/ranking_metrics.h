// Ranking quality metrics for top-k results.
//
// The paper scores results with NDCG [24] (Section 6.2; Figures 13 and 14
// report it via bench/fig13_accuracy and bench/fig14_nonconfidence, and the
// Appendix F interactive experiment via bench/people_age). NDCG needs a
// graded
// relevance; we use the linear gain g(o) = max(0, 2k + 1 - true_rank(o)):
// the true best item is worth 2k, the true k-th item k + 1, decaying to zero
// at rank 2k, with the standard log2 position discount. The linear decay
// past rank k gives partial credit for near-misses -- in crowdsourced data
// the items straddling the top-k boundary are statistically almost
// indistinguishable, and an all-or-nothing gain would score a rank-(k+1)
// substitution as badly as returning the worst item. A strict variant
// (gain zero past rank k) is provided as NdcgStrict. Precision, recall and
// Kendall-tau cover set accuracy and ordering quality.

#ifndef CROWDTOPK_METRICS_RANKING_METRICS_H_
#define CROWDTOPK_METRICS_RANKING_METRICS_H_

#include <cstdint>
#include <vector>

#include "crowd/types.h"
#include "data/dataset.h"

namespace crowdtopk::metrics {

// NDCG@k of `ranked` (best-first, usually size k) against the ground truth.
// Returns a value in [0, 1]; 1 iff the true top-k in the true order.
double Ndcg(const data::Dataset& dataset,
            const std::vector<crowd::ItemId>& ranked, int64_t k);

// NDCG with the all-or-nothing gain max(0, k + 1 - true_rank(o)): no credit
// for items outside the true top-k.
double NdcgStrict(const data::Dataset& dataset,
                  const std::vector<crowd::ItemId>& ranked, int64_t k);

// Fraction of `ranked`'s first k entries that are true top-k members.
double PrecisionAtK(const data::Dataset& dataset,
                    const std::vector<crowd::ItemId>& ranked, int64_t k);

// Fraction of true top-k members present in `ranked`'s first k entries.
// (Equal to precision when |ranked| == k.)
double RecallAtK(const data::Dataset& dataset,
                 const std::vector<crowd::ItemId>& ranked, int64_t k);

// Kendall rank correlation (tau-a) between the order of `ranked` and the
// ground-truth order of the same items, in [-1, 1]. Requires >= 2 items.
double KendallTau(const data::Dataset& dataset,
                  const std::vector<crowd::ItemId>& ranked);

// Spearman footrule distance between `ranked` and the ground-truth order of
// the same items (sum over items of |position difference|); 0 = identical.
int64_t SpearmanFootrule(const data::Dataset& dataset,
                         const std::vector<crowd::ItemId>& ranked);

}  // namespace crowdtopk::metrics

#endif  // CROWDTOPK_METRICS_RANKING_METRICS_H_
