#include "metrics/trace_aggregate.h"

#include <cstdio>

namespace crowdtopk::metrics {

namespace {

void Accumulate(const telemetry::TraceEvent& event, PhaseStat* stat) {
  switch (event.kind) {
    case telemetry::EventKind::kPurchase:
      stat->microtasks += event.count;
      ++stat->purchases;
      break;
    case telemetry::EventKind::kRound:
      stat->rounds += event.count;
      break;
    default:
      break;
  }
}

bool IsAccountable(const telemetry::TraceEvent& event) {
  return event.kind == telemetry::EventKind::kPurchase ||
         event.kind == telemetry::EventKind::kRound;
}

}  // namespace

std::map<std::string, PhaseStat> AggregateByPhase(
    const std::vector<telemetry::TraceEvent>& events) {
  std::map<std::string, PhaseStat> stats;
  for (const telemetry::TraceEvent& event : events) {
    if (!IsAccountable(event)) continue;
    Accumulate(event, &stats[event.phase]);
  }
  return stats;
}

std::map<std::string, PhaseStat> AggregateByPhaseRollup(
    const std::vector<telemetry::TraceEvent>& events) {
  std::map<std::string, PhaseStat> stats;
  for (const telemetry::TraceEvent& event : events) {
    if (!IsAccountable(event)) continue;
    // The phase itself, every ancestor, and the root "".
    Accumulate(event, &stats[event.phase]);
    std::string path = event.phase;
    while (!path.empty()) {
      const size_t slash = path.rfind('/');
      path = slash == std::string::npos ? "" : path.substr(0, slash);
      Accumulate(event, &stats[path]);
    }
  }
  return stats;
}

PhaseStat TraceTotals(const std::vector<telemetry::TraceEvent>& events) {
  PhaseStat totals;
  for (const telemetry::TraceEvent& event : events) {
    if (IsAccountable(event)) Accumulate(event, &totals);
  }
  return totals;
}

double LastCounter(const std::vector<telemetry::TraceEvent>& events,
                   const std::string& name, double fallback) {
  double value = fallback;
  for (const telemetry::TraceEvent& event : events) {
    if (event.kind == telemetry::EventKind::kCounter && event.name == name) {
      value = event.value;
    }
  }
  return value;
}

util::TablePrinter PhaseTable(const std::map<std::string, PhaseStat>& stats,
                              const std::string& title) {
  util::TablePrinter table(title);
  table.SetHeader({"phase", "microtasks", "rounds", "purchases"});
  char buffer[32];
  for (const auto& [phase, stat] : stats) {
    std::vector<std::string> row;
    row.push_back(phase.empty() ? "(total)" : phase);
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(stat.microtasks));
    row.push_back(buffer);
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(stat.rounds));
    row.push_back(buffer);
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(stat.purchases));
    row.push_back(buffer);
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace crowdtopk::metrics
