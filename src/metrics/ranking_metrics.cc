#include "metrics/ranking_metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace crowdtopk::metrics {

namespace {

double PositionDiscount(int64_t position_1based) {
  return 1.0 / std::log2(static_cast<double>(position_1based) + 1.0);
}

// Gain decaying linearly from `zero_rank` (the true best is worth
// zero_rank - 1... formally max(0, zero_rank - true_rank)).
double LinearGain(const data::Dataset& dataset, crowd::ItemId item,
                  int64_t zero_rank) {
  const int64_t rank = dataset.TrueRank(item);
  return rank < zero_rank ? static_cast<double>(zero_rank - rank) : 0.0;
}

double NdcgWithZeroRank(const data::Dataset& dataset,
                        const std::vector<crowd::ItemId>& ranked, int64_t k,
                        int64_t zero_rank) {
  CROWDTOPK_CHECK_GE(k, 1);
  CROWDTOPK_CHECK_LE(k, dataset.num_items());
  double dcg = 0.0;
  const int64_t positions =
      std::min<int64_t>(k, static_cast<int64_t>(ranked.size()));
  for (int64_t p = 0; p < positions; ++p) {
    dcg += LinearGain(dataset, ranked[p], zero_rank) * PositionDiscount(p + 1);
  }
  // Ideal: the true top-k in order, gains zero_rank - 1 downward.
  double ideal = 0.0;
  for (int64_t p = 0; p < k; ++p) {
    ideal += static_cast<double>(zero_rank - 1 - p) * PositionDiscount(p + 1);
  }
  CROWDTOPK_CHECK_GT(ideal, 0.0);
  return dcg / ideal;
}

}  // namespace

double Ndcg(const data::Dataset& dataset,
            const std::vector<crowd::ItemId>& ranked, int64_t k) {
  return NdcgWithZeroRank(dataset, ranked, k, 2 * k + 1);
}

double NdcgStrict(const data::Dataset& dataset,
                  const std::vector<crowd::ItemId>& ranked, int64_t k) {
  return NdcgWithZeroRank(dataset, ranked, k, k + 1);
}

double PrecisionAtK(const data::Dataset& dataset,
                    const std::vector<crowd::ItemId>& ranked, int64_t k) {
  CROWDTOPK_CHECK_GE(k, 1);
  const int64_t positions =
      std::min<int64_t>(k, static_cast<int64_t>(ranked.size()));
  if (positions == 0) return 0.0;
  int64_t hits = 0;
  for (int64_t p = 0; p < positions; ++p) {
    if (dataset.TrueRank(ranked[p]) <= k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double RecallAtK(const data::Dataset& dataset,
                 const std::vector<crowd::ItemId>& ranked, int64_t k) {
  CROWDTOPK_CHECK_GE(k, 1);
  const int64_t positions =
      std::min<int64_t>(k, static_cast<int64_t>(ranked.size()));
  int64_t hits = 0;
  for (int64_t p = 0; p < positions; ++p) {
    if (dataset.TrueRank(ranked[p]) <= k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double KendallTau(const data::Dataset& dataset,
                  const std::vector<crowd::ItemId>& ranked) {
  const int64_t n = static_cast<int64_t>(ranked.size());
  CROWDTOPK_CHECK_GE(n, 2);
  int64_t concordant = 0;
  int64_t discordant = 0;
  for (int64_t a = 0; a < n; ++a) {
    for (int64_t b = a + 1; b < n; ++b) {
      // ranked[a] is placed before ranked[b]; concordant iff the ground
      // truth agrees.
      if (dataset.TrueBetter(ranked[a], ranked[b])) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double pairs = static_cast<double>(n) * (n - 1) / 2.0;
  return (concordant - discordant) / pairs;
}

int64_t SpearmanFootrule(const data::Dataset& dataset,
                         const std::vector<crowd::ItemId>& ranked) {
  // Rank the same item set by ground truth, then sum position differences.
  std::vector<crowd::ItemId> truth = ranked;
  std::sort(truth.begin(), truth.end(),
            [&](crowd::ItemId a, crowd::ItemId b) {
              return dataset.TrueRank(a) < dataset.TrueRank(b);
            });
  int64_t distance = 0;
  for (size_t p = 0; p < ranked.size(); ++p) {
    const auto it = std::find(truth.begin(), truth.end(), ranked[p]);
    CROWDTOPK_CHECK(it != truth.end());
    distance += std::llabs(static_cast<long long>(p) -
                           static_cast<long long>(it - truth.begin()));
  }
  return distance;
}

}  // namespace crowdtopk::metrics
