// Deterministic fault injection for simulated crowds.
//
// The paper's guarantees (Section 3, Algorithms 1/5) assume honest i.i.d.
// judgments; real marketplaces field spammers, adversaries, lazy
// click-through workers, duplicate submissions, and no-shows (Hui &
// Berberich, PAPERS.md). This layer makes those degraded regimes
// reproducible: FaultInjectionOracle wraps any JudgmentOracle and routes
// every judgment through one worker of a fixed pool whose fault profile is
// a pure function of (fault seed, worker index) via util::Rng::Split, so a
// verification sweep fanned out on the experiment engine sees bit-identical
// faults for every CROWDTOPK_JOBS worker count. Value-level faults live
// here; the no-show/timeout fault (an assignment that never returns) lives
// at the serving layer — serve::ScheduleOptions::no_show_probability,
// populated from the plan via NoShowProbability() — because it degrades
// *delivery*, not judgment values, and must exercise the scheduler's
// expiry/requeue/bounded-retry path.
//
// The guarantee-verification harness (src/verify, tools/crowdtopk_verify)
// measures how far each fault model pushes COMP's empirical error past its
// 1 - alpha contract.

#ifndef CROWDTOPK_FAULT_INJECTOR_H_
#define CROWDTOPK_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "crowd/oracle.h"
#include "crowd/types.h"
#include "util/random.h"

namespace crowdtopk::fault {

// Per-worker fault rates of one degraded crowd. Fractions are independent
// Bernoulli flags per worker (a worker can be, say, both a spammer and an
// adversary; the composition order is documented at PreferenceJudgment).
struct FaultPlan {
  // Size of the simulated worker pool judgments are routed through.
  int64_t num_workers = 200;
  // Replaces the answer with Uniform[-1, 1] (a spammer click).
  double spammer_fraction = 0.0;
  // Flips the sign of the answer (a colluding/adversarial worker).
  double adversary_fraction = 0.0;
  // Collapses the answer to near-neutral Uniform[-jitter, jitter] (a worker
  // who never commits to a direction).
  double lazy_fraction = 0.0;
  // Resubmits a frozen per-pair answer on every request (duplicate / stale
  // response: the first answer re-posted forever).
  double duplicate_fraction = 0.0;
  // Serving layer only: fraction of workers who accept an assignment but
  // never return it, so the assignment expires at the round deadline. See
  // NoShowProbability().
  double no_show_fraction = 0.0;
  // |v| scale of a lazy worker's near-neutral answers.
  double lazy_jitter = 0.02;
};

// True when any value-level fault rate is nonzero (no-show excluded: it
// never touches judgment values).
bool AnyValueFaults(const FaultPlan& plan);

// Per-assignment probability that the drawn worker is a no-show, for
// serve::ScheduleOptions::no_show_probability. Assignments land on workers
// uniformly, so this is just the plan's fraction (validated).
double NoShowProbability(const FaultPlan& plan);

// One pool member's fault flags.
struct WorkerFaultProfile {
  bool spammer = false;
  bool adversary = false;
  bool lazy = false;
  bool duplicate = false;

  bool any() const { return spammer || adversary || lazy || duplicate; }
};

// Derives the pool's profiles from the plan: worker w's flags are drawn
// from Rng(seed).Split(w) — a pure function of (seed, w), independent of
// construction or dispatch order.
std::vector<WorkerFaultProfile> MakeWorkerProfiles(const FaultPlan& plan,
                                                   uint64_t seed);

// Wraps a base oracle: every judgment is answered by a uniformly random
// pool worker, whose fault flags distort the honest answer. Immutable after
// construction, so one injector is safely shared by concurrent runs (each
// run supplies its own platform Rng). When no worker carries any fault the
// injector is a pure pass-through: it consumes nothing from the platform's
// RNG stream and is byte-identical to the unwrapped oracle.
class FaultInjectionOracle : public crowd::JudgmentOracle {
 public:
  // `base` must outlive this oracle; the pool is MakeWorkerProfiles(plan,
  // seed). Injectors nest: `base` may itself be a FaultInjectionOracle
  // (outer faults then apply to the inner injector's output).
  FaultInjectionOracle(const crowd::JudgmentOracle* base,
                       const FaultPlan& plan, uint64_t seed);

  // Direct construction from explicit profiles (tests).
  FaultInjectionOracle(const crowd::JudgmentOracle* base,
                       std::vector<WorkerFaultProfile> workers, uint64_t seed,
                       double lazy_jitter = 0.02);

  int64_t num_items() const override { return base_->num_items(); }
  int64_t num_workers() const {
    return static_cast<int64_t>(workers_.size());
  }
  const WorkerFaultProfile& worker(int64_t w) const { return workers_[w]; }
  // False iff the injector is the pass-through described above.
  bool active() const { return active_; }

  // Composition order within one faulty worker, applied to the honest
  // answer: (1) duplicate substitutes the frozen stale answer as the
  // source, (2) spammer replaces the value outright, (3) adversary flips
  // the sign, (4) lazy collapses whatever is left toward neutral. Later
  // stages therefore win: a lazy adversary answers near zero, a duplicate
  // spammer spams.
  double PreferenceJudgment(crowd::ItemId i, crowd::ItemId j,
                            util::Rng* rng) const override;

  // Grades distort on the [0, 1] scale: spam = Uniform[0, 1], adversary =
  // reflection 1 - g, lazy = 0.5 plus jitter, duplicate = frozen per-item
  // grade. (Binary judgments inherit faults through the base-class
  // sign-of-preference derivation.)
  double GradedJudgment(crowd::ItemId i, util::Rng* rng) const override;

 private:
  // The frozen answer a duplicate worker keeps resubmitting for (i, j) /
  // item i: the base judgment drawn from a throwaway Rng that is a pure
  // function of (stale seed, pair), so every resubmission is identical.
  double StalePreference(crowd::ItemId i, crowd::ItemId j) const;
  double StaleGrade(crowd::ItemId i) const;

  const crowd::JudgmentOracle* base_;
  std::vector<WorkerFaultProfile> workers_;
  double lazy_jitter_;
  uint64_t fault_seed_;
  uint64_t stale_seed_;
  bool active_;
};

}  // namespace crowdtopk::fault

#endif  // CROWDTOPK_FAULT_INJECTOR_H_
