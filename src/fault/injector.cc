#include "fault/injector.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace crowdtopk::fault {
namespace {

// Salts separating the injector's derived streams from each other and from
// anything else hashed off the same master seed.
constexpr uint64_t kProfileStream = 0x6661756c740001ULL;  // "fault" 1
constexpr uint64_t kCoinStream = 0x6661756c740002ULL;     // "fault" 2
constexpr uint64_t kStaleStream = 0x6661756c740003ULL;    // "fault" 3

void CheckFraction(double fraction, const char* what) {
  CROWDTOPK_CHECK(fraction >= 0.0 && fraction <= 1.0 && what != nullptr);
}

}  // namespace

bool AnyValueFaults(const FaultPlan& plan) {
  return plan.spammer_fraction > 0.0 || plan.adversary_fraction > 0.0 ||
         plan.lazy_fraction > 0.0 || plan.duplicate_fraction > 0.0;
}

double NoShowProbability(const FaultPlan& plan) {
  CheckFraction(plan.no_show_fraction, "no_show_fraction");
  return plan.no_show_fraction;
}

std::vector<WorkerFaultProfile> MakeWorkerProfiles(const FaultPlan& plan,
                                                   uint64_t seed) {
  CROWDTOPK_CHECK_GE(plan.num_workers, 1);
  CheckFraction(plan.spammer_fraction, "spammer_fraction");
  CheckFraction(plan.adversary_fraction, "adversary_fraction");
  CheckFraction(plan.lazy_fraction, "lazy_fraction");
  CheckFraction(plan.duplicate_fraction, "duplicate_fraction");
  const util::Rng root(util::SplitSeed(seed, kProfileStream));
  std::vector<WorkerFaultProfile> workers(plan.num_workers);
  for (int64_t w = 0; w < plan.num_workers; ++w) {
    util::Rng rng = root.Split(static_cast<uint64_t>(w));
    workers[w].spammer = rng.Bernoulli(plan.spammer_fraction);
    workers[w].adversary = rng.Bernoulli(plan.adversary_fraction);
    workers[w].lazy = rng.Bernoulli(plan.lazy_fraction);
    workers[w].duplicate = rng.Bernoulli(plan.duplicate_fraction);
  }
  return workers;
}

FaultInjectionOracle::FaultInjectionOracle(const crowd::JudgmentOracle* base,
                                           const FaultPlan& plan,
                                           uint64_t seed)
    : FaultInjectionOracle(base, MakeWorkerProfiles(plan, seed), seed,
                           plan.lazy_jitter) {}

FaultInjectionOracle::FaultInjectionOracle(
    const crowd::JudgmentOracle* base, std::vector<WorkerFaultProfile> workers,
    uint64_t seed, double lazy_jitter)
    : base_(base),
      workers_(std::move(workers)),
      lazy_jitter_(lazy_jitter),
      fault_seed_(util::SplitSeed(seed, kCoinStream)),
      stale_seed_(util::SplitSeed(seed, kStaleStream)) {
  CROWDTOPK_CHECK(base != nullptr);
  CROWDTOPK_CHECK(!workers_.empty());
  CROWDTOPK_CHECK(lazy_jitter_ >= 0.0 && lazy_jitter_ <= 1.0);
  active_ = false;
  for (const WorkerFaultProfile& worker : workers_) {
    if (worker.any()) active_ = true;
  }
}

double FaultInjectionOracle::PreferenceJudgment(crowd::ItemId i,
                                                crowd::ItemId j,
                                                util::Rng* rng) const {
  if (!active_) return base_->PreferenceJudgment(i, j, rng);
  // One draw from the platform stream funds the worker choice and every
  // fault coin through a derived stream, so the injector consumes exactly
  // one platform draw per judgment no matter which faults fire.
  util::Rng fault_rng(util::SplitSeed(fault_seed_, rng->NextUint64()));
  const WorkerFaultProfile& worker =
      workers_[fault_rng.UniformInt(num_workers())];
  double v = worker.duplicate ? StalePreference(i, j)
                              : base_->PreferenceJudgment(i, j, rng);
  if (worker.spammer) v = fault_rng.Uniform(-1.0, 1.0);
  if (worker.adversary) v = -v;
  if (worker.lazy) v = lazy_jitter_ * fault_rng.Uniform(-1.0, 1.0);
  return std::clamp(v, -1.0, 1.0);
}

double FaultInjectionOracle::GradedJudgment(crowd::ItemId i,
                                            util::Rng* rng) const {
  if (!active_) return base_->GradedJudgment(i, rng);
  util::Rng fault_rng(util::SplitSeed(fault_seed_, rng->NextUint64()));
  const WorkerFaultProfile& worker =
      workers_[fault_rng.UniformInt(num_workers())];
  double g =
      worker.duplicate ? StaleGrade(i) : base_->GradedJudgment(i, rng);
  if (worker.spammer) g = fault_rng.Uniform();
  if (worker.adversary) g = 1.0 - g;
  if (worker.lazy) {
    g = 0.5 + 0.5 * lazy_jitter_ * fault_rng.Uniform(-1.0, 1.0);
  }
  return std::clamp(g, 0.0, 1.0);
}

double FaultInjectionOracle::StalePreference(crowd::ItemId i,
                                             crowd::ItemId j) const {
  uint64_t seed = util::SplitSeed(stale_seed_, static_cast<uint64_t>(i));
  seed = util::SplitSeed(seed, static_cast<uint64_t>(j));
  util::Rng stale(seed);
  return base_->PreferenceJudgment(i, j, &stale);
}

double FaultInjectionOracle::StaleGrade(crowd::ItemId i) const {
  util::Rng stale(util::SplitSeed(stale_seed_, static_cast<uint64_t>(i)));
  return base_->GradedJudgment(i, &stale);
}

}  // namespace crowdtopk::fault
