#include "exec/thread_pool.h"

#include <cstdio>
#include <cstdlib>
#include <exception>

#include "util/check.h"

namespace crowdtopk::exec {

ThreadPool::ThreadPool(int64_t num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int64_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int64_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  CROWDTOPK_CHECK(task != nullptr);
  const int64_t target =
      next_worker_.fetch_add(1, std::memory_order_relaxed) % num_threads();
  {
    Worker& worker = *workers_[static_cast<size_t>(target)];
    std::lock_guard<std::mutex> lock(worker.mutex);
    worker.tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CROWDTOPK_CHECK(!stop_);
    ++queued_;
    ++unfinished_;
  }
  wake_.notify_one();
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return unfinished_ == 0; });
}

int64_t ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int64_t>(hw);
}

bool ThreadPool::TryPop(int64_t self, std::function<void()>* task) {
  // Own deque: LIFO.
  {
    Worker& mine = *workers_[static_cast<size_t>(self)];
    std::lock_guard<std::mutex> lock(mine.mutex);
    if (!mine.tasks.empty()) {
      *task = std::move(mine.tasks.back());
      mine.tasks.pop_back();
      return true;
    }
  }
  // Steal: scan siblings starting after self, FIFO from their front.
  const int64_t n = num_threads();
  for (int64_t offset = 1; offset < n; ++offset) {
    Worker& victim = *workers_[static_cast<size_t>((self + offset) % n)];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(int64_t self) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || queued_ > 0; });
      if (queued_ == 0) return;  // stop_, and nothing left to claim
      --queued_;                 // claim one task before popping
    }
    // The claim guarantees at least as many visible tasks as claimants, but
    // a sibling's scan may momentarily beat us to "our" deque entry, so
    // retry until the claimed task is found.
    std::function<void()> task;
    while (!TryPop(self, &task)) std::this_thread::yield();
    try {
      task();
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "exec::ThreadPool: task threw \"%s\"; pool tasks must "
                   "not throw (use ParallelFor to propagate exceptions)\n",
                   e.what());
      std::abort();
    } catch (...) {
      std::fprintf(stderr, "exec::ThreadPool: task threw; aborting\n");
      std::abort();
    }
    bool all_done;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      all_done = --unfinished_ == 0;
    }
    if (all_done) drained_.notify_all();
  }
}

}  // namespace crowdtopk::exec
