// Deterministic index-space dispatch on top of the thread pool.
//
// ParallelFor(pool, begin, end, body) calls body(i) exactly once for every
// index i in [begin, end) and returns when all calls have finished. Indices
// are claimed dynamically (an atomic cursor), so the *assignment* of index
// to thread — and the finishing order — is scheduling-dependent; callers
// that need reproducible results must make body(i) a pure function of i
// (per-index RNG streams via util::SplitSeed, writes only to slot i of a
// pre-sized output). Under that contract the result is bit-identical for
// every worker count, including the inline serial path.
//
// Exceptions: if one or more body invocations throw, the loop still runs
// every index to completion, and then the exception thrown by the
// *smallest* failing index is rethrown on the calling thread —
// deterministic even when several indices fail. (The serial path stops at
// the first throwing index instead, which is the same smallest index.)
//
// The calling thread participates in the loop, so ParallelFor(pool, ...)
// with max_workers == 1 (or pool == nullptr) degenerates to a plain serial
// for-loop with no synchronisation at all — the legacy execution path.

#ifndef CROWDTOPK_EXEC_PARALLEL_FOR_H_
#define CROWDTOPK_EXEC_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

#include "exec/thread_pool.h"

namespace crowdtopk::exec {

// Runs body(i) for all i in [begin, end) using at most `max_workers`
// concurrent executors (0 = pool->num_threads(); the caller counts as one
// executor). `pool` may be nullptr for the serial path.
void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body,
                 int64_t max_workers = 0);

}  // namespace crowdtopk::exec

#endif  // CROWDTOPK_EXEC_PARALLEL_FOR_H_
