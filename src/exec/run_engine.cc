#include "exec/run_engine.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "exec/parallel_for.h"
#include "exec/result_sink.h"
#include "util/check.h"
#include "util/random.h"

namespace crowdtopk::exec {

namespace {

// Internal lookup key; '\x1f' (ASCII unit separator) cannot appear in an
// experiment name that came from a file name.
std::string EntryKey(const std::string& experiment, int64_t point,
                     int64_t run, uint64_t seed) {
  return experiment + '\x1f' + std::to_string(point) + '\x1f' +
         std::to_string(run) + '\x1f' + std::to_string(seed);
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

// Extracts the string value of `"field":"..."`, undoing the quote and
// backslash escapes produced by AppendJsonEscaped.
bool ParseStringField(const std::string& line, const char* field,
                      std::string* out) {
  const std::string needle = std::string("\"") + field + "\":\"";
  const size_t start = line.find(needle);
  if (start == std::string::npos) return false;
  out->clear();
  for (size_t i = start + needle.size(); i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      out->push_back(line[++i]);
    } else if (line[i] == '"') {
      return true;
    } else {
      out->push_back(line[i]);
    }
  }
  return false;
}

bool ParseIntField(const std::string& line, const char* field,
                   long long* out) {
  const std::string needle = std::string("\"") + field + "\":";
  const size_t start = line.find(needle);
  if (start == std::string::npos) return false;
  char* end = nullptr;
  const char* begin = line.c_str() + start + needle.size();
  *out = std::strtoll(begin, &end, 10);
  return end != begin;
}

bool ParseValues(const std::string& line, std::vector<double>* out) {
  const char needle[] = "\"values\":[";
  const size_t start = line.find(needle);
  if (start == std::string::npos) return false;
  out->clear();
  const char* cursor = line.c_str() + start + sizeof(needle) - 1;
  if (*cursor == ']') return true;  // empty record
  for (;;) {
    char* end = nullptr;
    const double value = std::strtod(cursor, &end);
    if (end == cursor) return false;
    out->push_back(value);
    cursor = end;
    if (*cursor == ',') {
      ++cursor;
    } else {
      return *cursor == ']';
    }
  }
}

}  // namespace

RunRegistry::RunRegistry(std::string path) : path_(std::move(path)) {
  CROWDTOPK_CHECK(!path_.empty());
  std::FILE* file = std::fopen(path_.c_str(), "r");
  if (file == nullptr) return;  // fresh journal; created on first Record
  std::string line;
  char buffer[4096];
  int64_t skipped = 0;
  while (std::fgets(buffer, sizeof(buffer), file) != nullptr) {
    line.append(buffer);
    if (line.empty() || line.back() != '\n') continue;  // long line: keep
    while (!line.empty() && line.back() == '\n') line.pop_back();
    if (!line.empty()) {
      std::string experiment;
      long long point = 0, run = 0, seed = 0;
      std::vector<double> values;
      if (ParseStringField(line, "experiment", &experiment) &&
          ParseIntField(line, "point", &point) &&
          ParseIntField(line, "run", &run) &&
          ParseIntField(line, "seed", &seed) &&
          ParseValues(line, &values)) {
        entries_[EntryKey(experiment, point, run,
                          static_cast<uint64_t>(seed))] = std::move(values);
      } else {
        ++skipped;
      }
    }
    line.clear();
  }
  std::fclose(file);
  if (skipped > 0) {
    std::fprintf(stderr, "run-registry: skipped %lld unparsable lines in %s\n",
                 static_cast<long long>(skipped), path_.c_str());
  }
}

bool RunRegistry::Lookup(const RunKey& key, int64_t run, uint64_t seed,
                         std::vector<double>* values) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(EntryKey(key.experiment, key.point, run, seed));
  if (it == entries_.end()) return false;
  *values = it->second;
  return true;
}

void RunRegistry::Record(const RunKey& key, int64_t run, uint64_t seed,
                         const std::vector<double>& values) {
  std::string line = "{\"experiment\":\"";
  AppendJsonEscaped(key.experiment, &line);
  line += "\",\"point\":" + std::to_string(key.point) +
          ",\"run\":" + std::to_string(run) +
          ",\"seed\":" + std::to_string(static_cast<long long>(seed)) +
          ",\"values\":[";
  char number[32];
  for (size_t i = 0; i < values.size(); ++i) {
    // %.17g round-trips every double exactly, so resumed sweeps reproduce
    // the original aggregates bit-for-bit.
    std::snprintf(number, sizeof(number), "%.17g", values[i]);
    if (i > 0) line += ',';
    line += number;
  }
  line += "]}\n";

  std::lock_guard<std::mutex> lock(mutex_);
  entries_[EntryKey(key.experiment, key.point, run, seed)] = values;
  std::FILE* file = std::fopen(path_.c_str(), "a");
  if (file == nullptr) {
    std::fprintf(stderr, "run-registry: cannot append to %s\n",
                 path_.c_str());
    return;
  }
  std::fwrite(line.data(), 1, line.size(), file);
  std::fclose(file);
}

int64_t RunRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(entries_.size());
}

RunEngine::RunEngine(Options options) : options_(std::move(options)) {}

RunEngine::~RunEngine() = default;

int64_t RunEngine::default_jobs() const {
  return options_.jobs <= 0 ? ThreadPool::HardwareThreads() : options_.jobs;
}

ThreadPool* RunEngine::PoolFor(int64_t jobs) {
  if (jobs <= 1) return nullptr;
  if (pool_ == nullptr || pool_->num_threads() < jobs) {
    pool_.reset();  // join the narrower pool before replacing it
    pool_ = std::make_unique<ThreadPool>(jobs);
  }
  return pool_.get();
}

std::vector<std::vector<double>> RunEngine::Run(
    const RunKey& key, int64_t runs, uint64_t master_seed,
    const std::function<std::vector<double>(int64_t, uint64_t)>& task,
    int64_t jobs_override) {
  CROWDTOPK_CHECK_GE(runs, 0);
  const int64_t jobs = jobs_override > 0 ? jobs_override : default_jobs();
  ResultSink sink(runs);
  std::atomic<int64_t> done{0};
  RunRegistry* registry = options_.registry;
  const auto& progress = options_.progress;
  const auto body = [&](int64_t r) {
    // The run's whole stream is a pure function of (master_seed, r):
    // independent of dispatch order, thread, and worker count.
    const uint64_t run_seed =
        util::SplitSeed(master_seed, static_cast<uint64_t>(r));
    std::vector<double> values;
    if (registry != nullptr && registry->Lookup(key, r, run_seed, &values)) {
      sink.Put(r, std::move(values));
    } else {
      values = task(r, run_seed);
      if (registry != nullptr) registry->Record(key, r, run_seed, values);
      sink.Put(r, std::move(values));
    }
    if (progress) {
      progress(key, done.fetch_add(1, std::memory_order_relaxed) + 1, runs);
    }
  };
  ParallelFor(PoolFor(jobs), 0, runs, body, jobs);
  ++points_completed_;
  return sink.Take();
}

std::vector<double> RunEngine::RunMean(
    const RunKey& key, int64_t runs, uint64_t master_seed,
    const std::function<std::vector<double>(int64_t, uint64_t)>& task,
    int64_t jobs_override) {
  const std::vector<std::vector<double>> records =
      Run(key, runs, master_seed, task, jobs_override);
  if (records.empty()) return {};
  // Canonical-order reduction: the exact additions of the serial loop.
  std::vector<double> sums(records[0].size(), 0.0);
  for (const std::vector<double>& record : records) {
    CROWDTOPK_CHECK_EQ(record.size(), sums.size());
    for (size_t c = 0; c < sums.size(); ++c) sums[c] += record[c];
  }
  for (double& s : sums) s /= static_cast<double>(runs);
  return sums;
}

}  // namespace crowdtopk::exec
