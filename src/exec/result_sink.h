// Thread-safe collection point for per-run experiment records.
//
// Concurrent tasks complete in scheduling order, but aggregates must not
// depend on that order: floating-point addition is not associative, so
// "accumulate as results arrive" would make averages vary from run to run.
// ResultSink therefore stores each record in the slot of its run index and
// only *reduces* (in canonical index order, on the caller's thread) once
// every slot is filled — the reduction is then the exact same sequence of
// additions the serial loop performs, making parallel aggregates
// bit-identical to serial ones.
//
// A record is a flat vector of doubles; what the columns mean is the
// caller's business (the bench harness uses {tmc, rounds, ndcg, precision}).

#ifndef CROWDTOPK_EXEC_RESULT_SINK_H_
#define CROWDTOPK_EXEC_RESULT_SINK_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace crowdtopk::exec {

class ResultSink {
 public:
  // A sink for `runs` records, indexed 0 .. runs-1.
  explicit ResultSink(int64_t runs);

  ResultSink(const ResultSink&) = delete;
  ResultSink& operator=(const ResultSink&) = delete;

  // Deposits the record of run `run`. Each slot must be filled exactly
  // once. Thread-safe.
  void Put(int64_t run, std::vector<double> values);

  // True once every slot has been filled. Thread-safe.
  bool Complete() const;

  // The records in run-index order. CHECKs completeness. Must only be
  // called after all producers have finished.
  std::vector<std::vector<double>> Take();

  // Canonical-order column means: the exact additions a serial loop over
  // runs 0..N-1 would perform, divided by N. CHECKs completeness and that
  // all records have equal width.
  std::vector<double> Mean() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<double>> records_;
  std::vector<bool> filled_;
  int64_t remaining_;
};

}  // namespace crowdtopk::exec

#endif  // CROWDTOPK_EXEC_RESULT_SINK_H_
