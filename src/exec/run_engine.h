// Deterministic fan-out of repeated simulation runs.
//
// The paper's evaluation averages ~100 repetitions per experiment point;
// repetitions are embarrassingly parallel by construction (each run owns a
// fresh CrowdPlatform, oracle view, and RNG stream). RunEngine is the piece
// that exploits that: it dispatches run indices onto the work-stealing
// thread pool, hands each run an RNG seed derived *by index* with
// util::SplitSeed (never by drawing from a shared seeder, so seeds are
// independent of execution order), collects the per-run records in a
// ResultSink, and returns them in canonical run order — which makes every
// downstream aggregate bit-identical to the single-threaded loop it
// replaced, for any worker count.
//
// An optional RunRegistry provides resume: every completed run is appended
// to a JSONL journal keyed by (experiment, point, run, seed), and runs
// already present in the journal are not re-executed — an interrupted
// multi-hour sweep restarts where it stopped.
//
// A task must confine its side effects to its own run: no writes to shared
// state, randomness only from the provided seed. Algorithms whose Run()
// method mutates the algorithm object (core::TopKAlgorithm::
// concurrent_runs_safe() == false) are dispatched with jobs = 1.

#ifndef CROWDTOPK_EXEC_RUN_ENGINE_H_
#define CROWDTOPK_EXEC_RUN_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/thread_pool.h"

namespace crowdtopk::exec {

// Identity of one experiment point, used for resume bookkeeping and
// progress display. `experiment` is typically the bench binary's name and
// `point` a monotone per-binary counter, so re-running the same binary
// reproduces the same keys.
struct RunKey {
  std::string experiment;
  int64_t point = 0;
};

// Append-only JSONL journal of completed runs. One line per run:
//   {"experiment":"table7_tmc","point":2,"run":7,"seed":123,"values":[...]}
// Values are written with enough digits to round-trip doubles exactly, so a
// resumed sweep reproduces the original aggregates bit-for-bit.
class RunRegistry {
 public:
  // Opens (and reads) the journal at `path`; the file is created on the
  // first Record. Unparsable lines are skipped with a warning.
  explicit RunRegistry(std::string path);

  RunRegistry(const RunRegistry&) = delete;
  RunRegistry& operator=(const RunRegistry&) = delete;

  // Fetches the recorded values of (key, run, seed) if present.
  bool Lookup(const RunKey& key, int64_t run, uint64_t seed,
              std::vector<double>* values) const;

  // Appends one completed run and flushes. Thread-safe.
  void Record(const RunKey& key, int64_t run, uint64_t seed,
              const std::vector<double>& values);

  // Number of loaded + recorded entries.
  int64_t size() const;

 private:
  std::string path_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::vector<double>> entries_;
};

class RunEngine {
 public:
  struct Options {
    // Default worker count: 0 = hardware concurrency, 1 = fully inline
    // serial execution (no threads are ever spawned).
    int64_t jobs = 0;
    // Optional resume journal; not owned, may be nullptr.
    RunRegistry* registry = nullptr;
    // Optional progress observer, called after every completed run with
    // (key, runs done, runs total). May be invoked from worker threads.
    std::function<void(const RunKey&, int64_t, int64_t)> progress;
  };

  explicit RunEngine(Options options);
  ~RunEngine();

  // Executes task(run, SplitSeed(master_seed, run)) for run in [0, runs)
  // and returns the records in run order. `jobs_override` > 0 forces a
  // specific worker count for this point (1 = serial), otherwise the
  // engine default applies. Rethrows the smallest failing run's exception.
  std::vector<std::vector<double>> Run(
      const RunKey& key, int64_t runs, uint64_t master_seed,
      const std::function<std::vector<double>(int64_t, uint64_t)>& task,
      int64_t jobs_override = 0);

  // As Run, but reduces to canonical-order column means (the exact
  // floating-point sums a serial loop would produce).
  std::vector<double> RunMean(
      const RunKey& key, int64_t runs, uint64_t master_seed,
      const std::function<std::vector<double>(int64_t, uint64_t)>& task,
      int64_t jobs_override = 0);

  // The resolved default worker count (options.jobs with 0 expanded to
  // hardware concurrency).
  int64_t default_jobs() const;

  // Experiment points completed by this engine so far.
  int64_t points_completed() const { return points_completed_; }

 private:
  // The pool backing a dispatch with `jobs` workers; nullptr for jobs <= 1.
  // Grows (rebuilds) the pool if a wider dispatch is requested.
  ThreadPool* PoolFor(int64_t jobs);

  Options options_;
  std::unique_ptr<ThreadPool> pool_;
  int64_t points_completed_ = 0;
};

}  // namespace crowdtopk::exec

#endif  // CROWDTOPK_EXEC_RUN_ENGINE_H_
