#include "exec/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>

namespace crowdtopk::exec {

namespace {

// Shared loop state; lives on the caller's stack for the duration of the
// ParallelFor (the caller joins all helpers before returning).
struct LoopState {
  std::atomic<int64_t> next;
  int64_t end = 0;
  const std::function<void(int64_t)>* body = nullptr;

  // First-failing-index exception transport.
  std::mutex failure_mutex;
  int64_t failed_index = -1;
  std::exception_ptr exception;

  // Helper-task join.
  std::mutex join_mutex;
  std::condition_variable joined;
  int64_t helpers_active = 0;

  void RunLoop() {
    for (;;) {
      const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      try {
        (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(failure_mutex);
        if (failed_index < 0 || i < failed_index) {
          failed_index = i;
          exception = std::current_exception();
        }
      }
    }
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body,
                 int64_t max_workers) {
  if (end <= begin) return;
  int64_t workers = pool == nullptr ? 1 : pool->num_threads();
  if (max_workers > 0) workers = std::min(workers, max_workers);
  workers = std::min(workers, end - begin);

  if (pool == nullptr || workers <= 1) {
    // Serial path: plain loop, zero synchronisation. Stops at the first
    // throwing index (which is also the smallest, since indices run in
    // order), so the escaping exception matches the parallel path's.
    for (int64_t i = begin; i < end; ++i) body(i);
    return;
  }

  LoopState state;
  state.next.store(begin, std::memory_order_relaxed);
  state.end = end;
  state.body = &body;
  state.helpers_active = workers - 1;  // the caller is the last executor

  for (int64_t w = 0; w < workers - 1; ++w) {
    pool->Submit([&state] {
      state.RunLoop();
      // Notify while still holding the mutex: the caller destroys `state`
      // (and this condition variable) as soon as it observes zero, and it
      // can only leave wait() after re-acquiring the mutex — i.e. after the
      // notify below has fully completed. Notifying outside the lock would
      // race the notify against the destructor.
      std::lock_guard<std::mutex> lock(state.join_mutex);
      if (--state.helpers_active == 0) state.joined.notify_all();
    });
  }
  state.RunLoop();
  {
    std::unique_lock<std::mutex> lock(state.join_mutex);
    state.joined.wait(lock, [&state] { return state.helpers_active == 0; });
  }
  if (state.exception) std::rethrow_exception(state.exception);
}

}  // namespace crowdtopk::exec
