// Work-stealing thread pool: the bottom layer of the execution subsystem.
//
// N worker threads each own a deque of tasks. A worker services its own
// deque LIFO (newest first, for cache locality of nested submissions) and,
// when empty, steals from the *front* of a sibling's deque (oldest first,
// so stolen work is the work least likely to be touched by its owner soon).
// External Submit() calls distribute round-robin across the worker deques.
//
// The pool makes no ordering or fairness promises — determinism is the
// responsibility of the layers above (parallel_for assigns work by index,
// run_engine derives per-task RNG streams by index and reduces results in
// index order), which is exactly what lets this layer schedule greedily.
//
// Tasks must not throw: an exception escaping a task aborts the process
// with a diagnostic (there is nobody to rethrow to on a worker thread).
// Layers that run user code (parallel_for) wrap it and transport the first
// exception back to the caller instead.
//
// Destruction drains: ~ThreadPool() waits for every already-submitted task
// to finish before joining the workers, so captured references stay valid
// for the lifetime of the pool object.

#ifndef CROWDTOPK_EXEC_THREAD_POOL_H_
#define CROWDTOPK_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace crowdtopk::exec {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int64_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains all pending tasks, then joins the workers.
  ~ThreadPool();

  int64_t num_threads() const {
    return static_cast<int64_t>(workers_.size());
  }

  // Enqueues `task` for execution on some worker thread. Thread-safe.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished. Thread-safe, but
  // must not be called from inside a pool task (it would wait on itself).
  void Drain();

  // Best-effort hardware concurrency; at least 1.
  static int64_t HardwareThreads();

 private:
  struct Worker {
    std::deque<std::function<void()>> tasks;
    std::mutex mutex;
  };

  void WorkerLoop(int64_t self);

  // Pops one task: own deque back first, then steals siblings' fronts.
  // Returns false if every deque is empty at scan time.
  bool TryPop(int64_t self, std::function<void()>* task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<int64_t> next_worker_{0};  // round-robin submission cursor

  // Guards sleep/wake and the counters below. Kept separate from the
  // per-worker deque mutexes. Invariant: a task is pushed to its deque
  // *before* queued_ is incremented, and a worker decrements queued_
  // *before* popping, so queued_ > 0 implies work is visible in a deque.
  std::mutex mutex_;
  std::condition_variable wake_;      // workers wait here when idle
  std::condition_variable drained_;   // Drain()/dtor wait here
  int64_t queued_ = 0;                // pushed but not yet claimed
  int64_t unfinished_ = 0;            // submitted but not yet completed
  bool stop_ = false;
};

}  // namespace crowdtopk::exec

#endif  // CROWDTOPK_EXEC_THREAD_POOL_H_
