#include "exec/result_sink.h"

#include <utility>

#include "util/check.h"

namespace crowdtopk::exec {

ResultSink::ResultSink(int64_t runs)
    : records_(static_cast<size_t>(runs)),
      filled_(static_cast<size_t>(runs), false),
      remaining_(runs) {
  CROWDTOPK_CHECK_GE(runs, 0);
}

void ResultSink::Put(int64_t run, std::vector<double> values) {
  std::lock_guard<std::mutex> lock(mutex_);
  CROWDTOPK_CHECK_GE(run, 0);
  CROWDTOPK_CHECK_LT(run, static_cast<int64_t>(records_.size()));
  CROWDTOPK_CHECK(!filled_[static_cast<size_t>(run)]);
  records_[static_cast<size_t>(run)] = std::move(values);
  filled_[static_cast<size_t>(run)] = true;
  --remaining_;
}

bool ResultSink::Complete() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return remaining_ == 0;
}

std::vector<std::vector<double>> ResultSink::Take() {
  std::lock_guard<std::mutex> lock(mutex_);
  CROWDTOPK_CHECK_EQ(remaining_, 0);
  return std::move(records_);
}

std::vector<double> ResultSink::Mean() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CROWDTOPK_CHECK_EQ(remaining_, 0);
  const int64_t n = static_cast<int64_t>(records_.size());
  if (n == 0) return {};
  std::vector<double> sums(records_[0].size(), 0.0);
  for (const std::vector<double>& record : records_) {
    CROWDTOPK_CHECK_EQ(record.size(), sums.size());
    for (size_t c = 0; c < sums.size(); ++c) sums[c] += record[c];
  }
  for (double& s : sums) s /= static_cast<double>(n);
  return sums;
}

}  // namespace crowdtopk::exec
