#include "shard/report.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace crowdtopk::shard {
namespace {

std::string Line(const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  return buffer;
}

std::vector<const RoutedOutcome*> SortedByGlobalId(
    const std::vector<RoutedOutcome>& outcomes) {
  std::vector<const RoutedOutcome*> sorted(outcomes.size());
  for (size_t i = 0; i < outcomes.size(); ++i) sorted[i] = &outcomes[i];
  std::sort(sorted.begin(), sorted.end(),
            [](const RoutedOutcome* a, const RoutedOutcome* b) {
              return a->query.global_id < b->query.global_id;
            });
  return sorted;
}

}  // namespace

std::string RenderMergedTable(const std::vector<RoutedOutcome>& outcomes) {
  std::string out =
      "gid,dataset,algo,k,status,tmc,rounds_private,expired,requeued,"
      "precision,items\n";
  for (const RoutedOutcome* o : SortedByGlobalId(outcomes)) {
    std::string items;
    for (size_t i = 0; i < o->result.items.size(); ++i) {
      if (i > 0) items += ';';
      items += std::to_string(o->result.items[i]);
    }
    out += Line("%lld,%s,%s,%lld,%s,%lld,%lld,%lld,%lld,%.4f,%s\n",
                static_cast<long long>(o->query.global_id),
                o->query.dataset.c_str(), o->query.algo.c_str(),
                static_cast<long long>(o->query.k),
                util::StatusCodeName(o->result.status.code()),
                static_cast<long long>(o->result.total_microtasks),
                static_cast<long long>(o->result.rounds_private),
                static_cast<long long>(o->result.expired_assignments),
                static_cast<long long>(o->result.requeued_assignments),
                o->result.precision_at_k, items.c_str());
  }
  return out;
}

std::string RenderMergedReport(const ShardRouter& router,
                               const std::vector<RoutedOutcome>& outcomes) {
  const RouterCounters& c = router.counters();
  std::string out;
  out += Line("# crowdtopk shard router: shards=%lld healthy=%lld\n",
              static_cast<long long>(router.num_shards()),
              static_cast<long long>(router.healthy_shards()));
  out += Line(
      "# counters: routed=%lld waves=%lld shard_batches=%lld "
      "shard_failures=%lld redispatched=%lld repurchased_microtasks=%lld "
      "exhausted=%lld cache_sync_rounds=%lld cache_entries_gossiped=%lld\n",
      static_cast<long long>(c.routed_queries),
      static_cast<long long>(c.waves),
      static_cast<long long>(c.shard_batches),
      static_cast<long long>(c.shard_failures),
      static_cast<long long>(c.redispatched_queries),
      static_cast<long long>(c.repurchased_microtasks),
      static_cast<long long>(c.exhausted_queries),
      static_cast<long long>(c.cache_sync_rounds),
      static_cast<long long>(c.cache_entries_gossiped));
  for (int64_t s = 0; s < router.num_shards(); ++s) {
    const ShardBackend& backend = router.backend(s);
    out += Line("# shard %lld: %s batches=%lld queries=%lld microtasks=%lld\n",
                static_cast<long long>(s),
                backend.dead() ? "dead" : "healthy",
                static_cast<long long>(backend.batches_run()),
                static_cast<long long>(backend.queries_run()),
                static_cast<long long>(backend.microtasks()));
  }
  out += RenderMergedTable(outcomes);
  return out;
}

}  // namespace crowdtopk::shard
