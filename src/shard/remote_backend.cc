#include "shard/remote_backend.h"

#include <utility>

namespace crowdtopk::shard {
namespace {

// Errors that condemn the query, not the shard: the server answered, it
// just refused this submission. Anything else (UNAVAILABLE after the
// client's bounded retries, a hangup mid-reply) means the shard is gone.
bool QueryLevelError(const util::Status& status) {
  switch (status.code()) {
    case util::StatusCode::kInvalidArgument:
    case util::StatusCode::kNotFound:
    case util::StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

}  // namespace

util::StatusOr<ShardBatchResult> RemoteShardBackend::RunBatch(
    const std::vector<RoutedQuery>& batch) {
  if (dead_) {
    return util::Status::Unavailable("shard is dead");
  }
  if (!connected_) {
    const util::Status status = client_->Connect();
    if (!status.ok()) {
      dead_ = true;
      return status;
    }
    connected_ = true;
  }

  ShardBatchResult result;
  result.results.resize(batch.size());
  // Submit everything first so the server batches the queries together,
  // then await in submission order.
  std::vector<int64_t> remote_ids(batch.size(), -1);
  for (size_t i = 0; i < batch.size(); ++i) {
    const RoutedQuery& q = batch[i];
    net::SubmitQuery submit;
    submit.dataset = q.dataset;
    submit.k = q.k;
    submit.algo = q.algo;
    submit.alpha = q.alpha;
    submit.budget = q.budget;
    submit.seed_stream = q.global_id;
    util::StatusOr<int64_t> submitted = client_->Submit(submit);
    result.results[i].global_id = q.global_id;
    if (submitted.ok()) {
      remote_ids[i] = *submitted;
    } else if (QueryLevelError(submitted.status())) {
      result.results[i].status = submitted.status();
    } else {
      dead_ = true;
      return submitted.status();
    }
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    if (remote_ids[i] < 0) continue;  // refused at submission
    util::StatusOr<net::Result> awaited = client_->AwaitResult(remote_ids[i]);
    if (!awaited.ok()) {
      if (QueryLevelError(awaited.status())) {
        result.results[i].status = awaited.status();
        continue;
      }
      dead_ = true;
      return awaited.status();
    }
    const net::Result& r = *awaited;
    ShardQueryResult& out = result.results[i];
    out.status = util::Status(static_cast<util::StatusCode>(r.status_code),
                              r.message);
    out.items.assign(r.items.begin(), r.items.end());
    out.precision_at_k = r.precision_at_k;
    out.total_microtasks = r.total_microtasks;
    out.rounds_observed = r.rounds;
    out.latency_seconds = r.latency_seconds;
    out.queue_wait_seconds = r.queue_wait_seconds;
    // rounds_private / expired / requeued do not travel on the wire;
    // they stay zero for remote shards (noted in docs/SHARDING.md).
    result.microtasks += r.total_microtasks;
  }
  ++batches_run_;
  queries_run_ += static_cast<int64_t>(batch.size());
  microtasks_ += result.microtasks;
  return result;
}

}  // namespace crowdtopk::shard
