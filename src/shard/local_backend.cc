#include "shard/local_backend.h"

#include <utility>

#include "util/check.h"

namespace crowdtopk::shard {

util::StatusOr<ShardBatchResult> LocalShardBackend::RunBatch(
    const std::vector<RoutedQuery>& batch) {
  if (dead_) {
    return util::Status::Unavailable("shard is dead");
  }
  if (options_.fail_at_batch >= 1 &&
      batches_run_ + 1 >= options_.fail_at_batch) {
    // The injected death loses the whole sub-batch, like a real crash
    // between dispatch and reply.
    dead_ = true;
    return util::Status::Unavailable("shard killed by fault injection");
  }

  serve::ServeOptions serve_options;
  serve_options.schedule = options_.schedule;
  serve_options.max_inflight = options_.max_inflight;
  // Unbounded: admission control happened at the router. A shard-local
  // queue bound would reject queries based on *placement*, breaking the
  // shard-count-invariance of the merged result table.
  serve_options.max_queue = -1;
  serve_options.jobs = options_.jobs;
  // Constant master seed: every judgment/latency stream is keyed by the
  // stamped global id, never by which shard or batch ran the query.
  serve_options.seed = options_.seed;
  serve_options.cache = options_.cache;
  serve_options.warm_cache = std::move(warm_);
  warm_.clear();

  std::vector<serve::QueryRequest> requests(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const RoutedQuery& q = batch[i];
    CROWDTOPK_CHECK(q.algorithm != nullptr);
    CROWDTOPK_CHECK(q.dataset_ptr != nullptr);
    requests[i].algorithm = q.algorithm;
    requests[i].dataset = q.dataset_ptr;
    requests[i].k = q.k;
    requests[i].cache_universe = q.universe;
    requests[i].seed_stream = q.global_id;
  }

  serve::QueryService service(serve_options);
  const std::vector<double> arrivals(requests.size(), 0.0);
  const std::vector<serve::QueryOutcome> outcomes =
      service.Replay(requests, arrivals);
  warm_ = service.ExportCache();

  ShardBatchResult result;
  result.results.resize(outcomes.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const serve::QueryOutcome& o = outcomes[i];
    ShardQueryResult& r = result.results[i];
    r.global_id = batch[i].global_id;
    r.status = o.status;
    r.items = o.items;
    r.precision_at_k = o.precision_at_k;
    r.total_microtasks = o.total_microtasks;
    r.rounds_private = o.rounds_private;
    r.expired_assignments = o.expired_assignments;
    r.requeued_assignments = o.requeued_assignments;
    r.rounds_observed = o.rounds_observed;
    r.latency_seconds = o.latency_seconds;
    r.queue_wait_seconds = o.start_seconds - o.arrival_seconds;
    result.microtasks += o.total_microtasks;
  }
  ++batches_run_;
  queries_run_ += static_cast<int64_t>(batch.size());
  microtasks_ += result.microtasks;
  return result;
}

}  // namespace crowdtopk::shard
