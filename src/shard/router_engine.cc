#include "shard/router_engine.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "shard/local_backend.h"
#include "shard/remote_backend.h"
#include "telemetry/export.h"
#include "telemetry/recorder.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/random.h"

namespace crowdtopk::shard {
namespace {

// Same submission sanity bounds as the plain server's BatchEngine, so a
// router front-end refuses exactly what a single server would.
constexpr int64_t kMaxK = 10000;
constexpr int64_t kMaxBudget = int64_t{1} << 30;

}  // namespace

RouterEngine::RouterEngine(const net::ServerOptions& options,
                           const RouterEngineConfig& config,
                           std::function<void()> wake)
    : options_(options),
      config_(config),
      dataset_factory_(options.dataset_factory
                           ? options.dataset_factory
                           : net::DefaultDatasetFactory()),
      algorithm_factory_(options.algorithm_factory
                             ? options.algorithm_factory
                             : net::DefaultAlgorithmFactory()),
      wake_(std::move(wake)),
      remote_(!config.ports.empty()) {
  std::vector<std::unique_ptr<ShardBackend>> backends;
  if (remote_) {
    for (const int64_t port : config_.ports) {
      net::ClientOptions client_options;
      client_options.port = port;
      client_options.clock = options_.clock;
      auto backend = std::make_unique<RemoteShardBackend>(client_options);
      remote_backends_.push_back(backend.get());
      backends.push_back(std::move(backend));
    }
  } else {
    const int64_t shards = config_.shards < 1 ? 1 : config_.shards;
    for (int64_t s = 0; s < shards; ++s) {
      LocalShardBackend::Options backend_options;
      backend_options.seed = options_.seed;
      backend_options.schedule = options_.schedule;
      backend_options.max_inflight = options_.max_inflight;
      backend_options.jobs = options_.jobs;
      backend_options.cache = options_.cache;
      if (s == config_.fail_shard) {
        backend_options.fail_at_batch = config_.fail_at_batch;
      }
      backends.push_back(
          std::make_unique<LocalShardBackend>(backend_options));
    }
  }
  RouterOptions router_options;
  router_options.policy = config_.policy;
  router_options.max_redispatch = config_.max_redispatch;
  router_options.cache_sync = config_.cache_sync;
  router_options.cache = options_.cache;
  router_ = std::make_unique<ShardRouter>(router_options,
                                          std::move(backends));
  thread_ = std::thread([this] { ThreadMain(); });
}

RouterEngine::~RouterEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

const data::Dataset* RouterEngine::ResolveDatasetLocked(
    const std::string& name, int64_t* universe) {
  const auto it = datasets_.find(name);
  if (it != datasets_.end()) {
    *universe = universes_[name];
    return it->second.get();
  }
  // Per-name seed stream, identical to the single server's rule: dataset
  // content is a pure function of (master seed, name) — and therefore the
  // same on a router and on a plain crowdtopk_serve with the same seed.
  std::unique_ptr<data::Dataset> dataset = dataset_factory_(
      name, util::SplitSeed(options_.seed, util::Fnv1a64(name)));
  if (dataset == nullptr) return nullptr;
  const int64_t id = static_cast<int64_t>(universes_.size());
  universes_.emplace(name, id);
  *universe = id;
  return datasets_.emplace(name, std::move(dataset)).first->second.get();
}

core::TopKAlgorithm* RouterEngine::ResolveAlgorithmLocked(
    const net::SubmitQuery& spec) {
  judgment::ComparisonOptions comparison;
  comparison.alpha = spec.alpha;
  if (spec.budget > 0) comparison.budget = spec.budget;
  uint64_t alpha_bits;
  std::memcpy(&alpha_bits, &comparison.alpha, sizeof(alpha_bits));
  const std::string key = spec.algo + "|" + std::to_string(alpha_bits) +
                          "|" + std::to_string(comparison.budget);
  const auto it = algorithms_.find(key);
  if (it != algorithms_.end()) return it->second.get();
  std::unique_ptr<core::TopKAlgorithm> algorithm =
      algorithm_factory_(spec.algo, comparison);
  if (algorithm == nullptr) return nullptr;
  // Shared across every shard's concurrent sub-batches, so the instance
  // must tolerate concurrent runs — same contract as BatchEngine.
  CROWDTOPK_CHECK(algorithm->concurrent_runs_safe());
  return algorithms_.emplace(key, std::move(algorithm)).first->second.get();
}

util::StatusOr<int64_t> RouterEngine::Submit(int64_t conn_id,
                                             const net::SubmitQuery& spec) {
  if (spec.k < 1 || spec.k > kMaxK) {
    return util::Status::InvalidArgument("k out of range");
  }
  if (!(spec.alpha > 0.0 && spec.alpha < 1.0)) {
    return util::Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (spec.budget < 0 || spec.budget > kMaxBudget) {
    return util::Status::InvalidArgument("budget out of range");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    return util::Status::Unavailable("router is draining");
  }
  if (options_.max_queue >= 0 &&
      static_cast<int64_t>(queue_.size()) >= options_.max_queue) {
    return util::Status::ResourceExhausted("admission queue full");
  }
  RoutedQuery query;
  query.dataset = spec.dataset;
  query.algo = spec.algo;
  query.k = spec.k;
  query.alpha = spec.alpha;
  query.budget = spec.budget;
  if (remote_) {
    // Names are validated by the far server; the placement universe is
    // still assigned here, per distinct name, so routing stays keyed on
    // the universe in both deployments.
    const auto inserted = universes_.emplace(
        spec.dataset, static_cast<int64_t>(universes_.size()));
    query.universe = inserted.first->second;
  } else {
    const data::Dataset* dataset =
        ResolveDatasetLocked(spec.dataset, &query.universe);
    if (dataset == nullptr) {
      return util::Status::InvalidArgument("unknown dataset '" +
                                           spec.dataset + "'");
    }
    core::TopKAlgorithm* algorithm = ResolveAlgorithmLocked(spec);
    if (algorithm == nullptr) {
      return util::Status::InvalidArgument("unknown algorithm '" +
                                           spec.algo + "'");
    }
    query.dataset_ptr = dataset;
    query.algorithm = algorithm;
  }
  // The global id doubles as the wire query id and as the seed-stream
  // stamp: the id the client sees is the id that keys the outcome.
  const int64_t id = next_query_id_++;
  query.global_id = id;
  Record& record = records_[id];
  record.conn_id = conn_id;
  record.query = std::move(query);
  record.state = net::QueryState::kQueued;
  queue_.push_back(id);
  cv_.notify_all();
  return id;
}

net::QueryState RouterEngine::State(int64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = records_.find(query_id);
  if (it != records_.end()) return it->second.state;
  return done_.count(query_id) ? net::QueryState::kDone
                               : net::QueryState::kUnknown;
}

bool RouterEngine::Cancel(int64_t query_id, int64_t* submitter_conn) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = records_.find(query_id);
  if (it == records_.end() || it->second.state != net::QueryState::kQueued) {
    return false;
  }
  *submitter_conn = it->second.conn_id;
  queue_.erase(std::find(queue_.begin(), queue_.end(), query_id));
  records_.erase(it);
  return true;
}

void RouterEngine::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
  cv_.notify_all();
}

void RouterEngine::AbortQueued() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const int64_t id : queue_) {
    net::Completion c;
    c.conn_id = records_[id].conn_id;
    c.query_id = id;
    c.send_error = true;
    c.error_code = net::ErrorCode::kUnavailable;
    c.error_message = "drain timeout";
    completions_.push_back(std::move(c));
    records_.erase(id);
  }
  queue_.clear();
  cv_.notify_all();
}

std::vector<net::Completion> RouterEngine::TakeCompletions() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<net::Completion> taken = std::move(completions_);
  completions_.clear();
  return taken;
}

bool RouterEngine::Drained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_ && queue_.empty() && !running_ && completions_.empty();
}

int64_t RouterEngine::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

int64_t RouterEngine::batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

// The retry/redial sums are cached under mu_ by the engine thread after
// every routed batch: net::Client counters are plain fields owned by that
// thread, and Stats() asks from the network thread mid-run.
int64_t RouterEngine::upstream_retries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cached_retries_;
}

int64_t RouterEngine::upstream_redials() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cached_redials_;
}

std::string RouterEngine::MergedReport() const {
  std::lock_guard<std::mutex> lock(mu_);
  return RenderMergedReport(*router_, outcomes_);
}

RouterCounters RouterEngine::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return router_->counters();
}

void RouterEngine::DumpTrace() const {
  if (options_.trace_dir.empty()) return;
  telemetry::TraceRecorder recorder;
  const RouterCounters c = counters();
  const auto record = [&recorder](const std::string& name, int64_t value) {
    recorder.RecordCounter(name, static_cast<double>(value));
  };
  record("shard/shards", router_->num_shards());
  record("shard/healthy", router_->healthy_shards());
  record("shard/routed_queries", c.routed_queries);
  record("shard/waves", c.waves);
  record("shard/batches", c.shard_batches);
  record("shard/failures", c.shard_failures);
  record("shard/redispatched_queries", c.redispatched_queries);
  record("shard/repurchased_microtasks", c.repurchased_microtasks);
  record("shard/exhausted_queries", c.exhausted_queries);
  record("shard/cache_sync_rounds", c.cache_sync_rounds);
  record("shard/cache_entries_gossiped", c.cache_entries_gossiped);
  record("shard/upstream_retries", upstream_retries());
  record("shard/upstream_redials", upstream_redials());
  const util::Status status = telemetry::WriteJsonlFile(
      recorder.events(), options_.trace_dir + "/shard_router.trace.jsonl");
  if (!status.ok()) {
    std::fprintf(stderr, "shard trace: %s\n", status.ToString().c_str());
  }
}

void RouterEngine::ThreadMain() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock,
             [this] { return stop_ || draining_ || !queue_.empty(); });
    if (stop_) return;
    if (queue_.empty()) {
      if (draining_) {
        lock.unlock();
        wake_();
        lock.lock();
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_) return;
      }
      continue;
    }

    // Drain the queue into one routed batch, submission order preserved.
    const std::vector<int64_t> ids(queue_.begin(), queue_.end());
    queue_.clear();
    std::vector<RoutedQuery> batch(ids.size());
    std::vector<int64_t> conn_ids(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      Record& record = records_[ids[i]];
      record.state = net::QueryState::kRunning;
      batch[i] = record.query;
      conn_ids[i] = record.conn_id;
    }
    running_ = true;
    lock.unlock();

    std::vector<RoutedOutcome> routed = router_->RouteBatch(std::move(batch));

    int64_t retries = 0;
    int64_t redials = 0;
    for (const RemoteShardBackend* backend : remote_backends_) {
      retries += backend->client_retries();
      redials += backend->client_redials();
    }

    lock.lock();
    running_ = false;
    ++batches_;
    cached_retries_ = retries;
    cached_redials_ = redials;
    CROWDTOPK_CHECK(routed.size() == ids.size());
    for (size_t i = 0; i < routed.size(); ++i) {
      const RoutedOutcome& o = routed[i];
      const int64_t id = ids[i];
      net::Completion c;
      c.conn_id = conn_ids[i];
      c.query_id = id;
      net::Result& r = c.result;
      r.query_id = id;
      r.status_code = static_cast<uint32_t>(o.result.status.code());
      r.message = o.result.status.ok() ? "" : o.result.status.message();
      r.items.assign(o.result.items.begin(), o.result.items.end());
      r.precision_at_k = o.result.precision_at_k;
      r.total_microtasks = o.result.total_microtasks;
      r.rounds = o.result.rounds_observed;
      r.latency_seconds = o.result.latency_seconds;
      r.queue_wait_seconds = o.result.queue_wait_seconds;
      r.shard_id = o.shard_id;
      completions_.push_back(std::move(c));
      records_.erase(id);
      RememberDoneLocked(id);
      outcomes_.push_back(o);
    }
    lock.unlock();
    wake_();
    lock.lock();
  }
}

void RouterEngine::RememberDoneLocked(int64_t id) {
  done_.insert(id);
  done_order_.push_back(id);
  while (done_order_.size() > 4096) {
    done_.erase(done_order_.front());
    done_order_.pop_front();
  }
}

}  // namespace crowdtopk::shard
