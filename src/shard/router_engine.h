// RouterEngine: the shard router as a net::Engine.
//
// crowdtopk_router injects this through ServerOptions::engine_factory, so
// the entire socket front-end — handshake, admission, backpressure,
// graceful drain — is the plain server's, unchanged; only query execution
// differs. Accepted submissions queue FIFO exactly like BatchEngine's;
// the engine thread drains the queue into one batch, stamps each query
// with its global id, and hands the batch to the ShardRouter, which
// scatters it over K shards and runs the failover waves (router.h).
//
// Global ids are assigned at submission, monotonically, and double as the
// wire query ids — so the id a client sees is the id that keys the
// query's judgment/latency streams, and the merged table (shard/report.h)
// can be byte-diffed across shard counts.
//
// Deployment: with `ports` empty the engine spawns `shards` in-process
// LocalShardBackends (dataset/algorithm instances resolved once, shared
// by all shards — both are safe for concurrent runs); with `ports` set it
// dials one RemoteShardBackend per endpoint.

#ifndef CROWDTOPK_SHARD_ROUTER_ENGINE_H_
#define CROWDTOPK_SHARD_ROUTER_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/engine.h"
#include "net/server.h"
#include "shard/report.h"
#include "shard/router.h"

namespace crowdtopk::shard {

struct RouterEngineConfig {
  // In-process shard count; ignored when `ports` is non-empty.
  int64_t shards = 1;
  // Remote deployment: one crowdtopk_serve endpoint per shard on
  // 127.0.0.1. Empty = in-process shards.
  std::vector<int64_t> ports;
  Policy policy = Policy::kRendezvous;
  int64_t max_redispatch = 2;
  bool cache_sync = false;
  // Fault injection (CROWDTOPK_SHARD_FAIL/_FAIL_AFTER): local shard
  // `fail_shard` dies while executing its `fail_at_batch`-th sub-batch.
  int64_t fail_shard = -1;
  int64_t fail_at_batch = 1;
};

class RemoteShardBackend;

class RouterEngine : public net::Engine {
 public:
  RouterEngine(const net::ServerOptions& options,
               const RouterEngineConfig& config,
               std::function<void()> wake);
  ~RouterEngine() override;

  util::StatusOr<int64_t> Submit(int64_t conn_id,
                                 const net::SubmitQuery& spec) override;
  net::QueryState State(int64_t query_id) const override;
  bool Cancel(int64_t query_id, int64_t* submitter_conn) override;
  void BeginDrain() override;
  void AbortQueued() override;
  std::vector<net::Completion> TakeCompletions() override;
  bool Drained() const override;
  int64_t queued() const override;
  int64_t batches() const override;
  int64_t upstream_retries() const override;
  int64_t upstream_redials() const override;

  // Merged report over every routed query so far (shard/report.h). Call
  // after the drain completes; the CLI writes it on exit and the smoke
  // script byte-diffs it across runs and shard counts.
  std::string MergedReport() const;
  RouterCounters counters() const;

  // Writes shard/* counters to <trace_dir>/shard_router.trace.jsonl; the
  // CLI calls it after Serve returns. No-op without a trace_dir.
  void DumpTrace() const;

 private:
  struct Record {
    int64_t conn_id = 0;
    RoutedQuery query;
    net::QueryState state = net::QueryState::kQueued;
  };

  void ThreadMain();
  // Resolves the shared dataset/algorithm instances and the per-dataset
  // universe id for an in-process deployment; null on unknown names.
  const data::Dataset* ResolveDatasetLocked(const std::string& name,
                                            int64_t* universe);
  core::TopKAlgorithm* ResolveAlgorithmLocked(const net::SubmitQuery& spec);
  void RememberDoneLocked(int64_t id);

  const net::ServerOptions options_;
  const RouterEngineConfig config_;
  const net::DatasetFactory dataset_factory_;
  const net::AlgorithmFactory algorithm_factory_;
  const std::function<void()> wake_;
  const bool remote_;

  std::unique_ptr<ShardRouter> router_;
  // Remote backends, for the retry/redial sums (owned by router_).
  std::vector<const RemoteShardBackend*> remote_backends_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool draining_ = false;
  bool running_ = false;
  int64_t next_query_id_ = 0;
  int64_t batches_ = 0;
  std::deque<int64_t> queue_;
  std::unordered_map<int64_t, Record> records_;
  std::unordered_set<int64_t> done_;
  std::deque<int64_t> done_order_;
  std::vector<net::Completion> completions_;
  std::vector<RoutedOutcome> outcomes_;  // everything routed so far
  // Upstream client counters, snapshotted after each routed batch so the
  // network thread can report them mid-run without racing the clients.
  int64_t cached_retries_ = 0;
  int64_t cached_redials_ = 0;

  // In-process resolution state (names -> shared instances); universes
  // are assigned per distinct dataset name in first-seen order, the same
  // rule serve::QueryService applies per distinct pointer.
  std::unordered_map<std::string, std::unique_ptr<data::Dataset>> datasets_;
  std::unordered_map<std::string, int64_t> universes_;
  std::unordered_map<std::string, std::unique_ptr<core::TopKAlgorithm>>
      algorithms_;

  std::thread thread_;  // last: joins in the destructor before members die
};

}  // namespace crowdtopk::shard

#endif  // CROWDTOPK_SHARD_ROUTER_ENGINE_H_
