// Merged reporting for routed batches (docs/SHARDING.md).
//
// RenderMergedTable is the shard-count-invariance witness: it renders, in
// ascending global-query-id order, exactly the columns that are pure
// functions of (master seed, global id) — status, result items,
// precision, microtasks, private rounds, expired/requeued assignments.
// For a fixed master seed the bytes are identical for every shard count
// and every placement policy, with or without shard deaths (as long as
// every query completes), because placement only changes *where* a query
// runs, never its seed streams. Deliberately excluded: the executing
// shard id (placement-dependent by construction) and the timing columns
// (latency, observed rounds, queue wait — functions of what else shared
// the shard's worker pool). Note the judgment cache must be off for
// cross-K byte-identity: cache visibility depends on co-placement.
//
// RenderMergedReport is the full operator's view: routing configuration,
// shard/* counters, a per-shard section in shard-id order, then the
// merged table.

#ifndef CROWDTOPK_SHARD_REPORT_H_
#define CROWDTOPK_SHARD_REPORT_H_

#include <string>
#include <vector>

#include "shard/router.h"

namespace crowdtopk::shard {

// CSV of the pure per-query columns, sorted by global id.
std::string RenderMergedTable(const std::vector<RoutedOutcome>& outcomes);

// Full merged report: config header, router counters, per-shard
// sections (ascending shard id), merged table.
std::string RenderMergedReport(const ShardRouter& router,
                               const std::vector<RoutedOutcome>& outcomes);

}  // namespace crowdtopk::shard

#endif  // CROWDTOPK_SHARD_REPORT_H_
