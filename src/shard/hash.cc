#include "shard/hash.h"

#include <algorithm>

#include "util/check.h"
#include "util/crc32.h"
#include "util/random.h"

namespace crowdtopk::shard {

Policy ParsePolicy(const std::string& name) {
  if (name == "modulo") return Policy::kModulo;
  return Policy::kRendezvous;
}

const char* PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kRendezvous:
      return "rendezvous";
    case Policy::kModulo:
      return "modulo";
  }
  return "rendezvous";
}

uint64_t KeyFingerprint(const PlacementKey& key) {
  // Length-prefixed field encoding: ("ab", "c") and ("a", "bc") must not
  // collide, and the universe id participates as raw bytes.
  uint64_t h = util::Fnv1a64(&key.universe, sizeof(key.universe));
  const uint64_t dataset_len = key.dataset.size();
  h = util::Fnv1a64(&dataset_len, sizeof(dataset_len), h);
  h = util::Fnv1a64(key.dataset.data(), key.dataset.size(), h);
  const uint64_t algo_len = key.algo.size();
  h = util::Fnv1a64(&algo_len, sizeof(algo_len), h);
  return util::Fnv1a64(key.algo.data(), key.algo.size(), h);
}

uint64_t RendezvousWeight(const PlacementKey& key, int64_t shard) {
  return util::SplitSeed(KeyFingerprint(key),
                         static_cast<uint64_t>(shard));
}

std::vector<int64_t> RankShards(const PlacementKey& key, int64_t shards,
                                Policy policy) {
  CROWDTOPK_CHECK(shards >= 1);
  std::vector<int64_t> order(static_cast<size_t>(shards));
  if (policy == Policy::kModulo) {
    const int64_t primary =
        static_cast<int64_t>(KeyFingerprint(key) % static_cast<uint64_t>(shards));
    for (int64_t i = 0; i < shards; ++i) {
      order[static_cast<size_t>(i)] = (primary + i) % shards;
    }
    return order;
  }
  for (int64_t i = 0; i < shards; ++i) order[static_cast<size_t>(i)] = i;
  std::vector<uint64_t> weight(static_cast<size_t>(shards));
  for (int64_t i = 0; i < shards; ++i) {
    weight[static_cast<size_t>(i)] = RendezvousWeight(key, i);
  }
  // Descending weight; shard id breaks (astronomically unlikely) ties so
  // the order is total.
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const uint64_t wa = weight[static_cast<size_t>(a)];
    const uint64_t wb = weight[static_cast<size_t>(b)];
    if (wa != wb) return wa > wb;
    return a < b;
  });
  return order;
}

}  // namespace crowdtopk::shard
