// ShardRouter: deterministic scatter of query batches over K shards.
//
// Routing: every query hashes to a preference list of shards
// (shard/hash.h); the router dispatches it to the first *healthy* entry.
// Each routing wave groups the pending queries by target shard, executes
// the per-shard sub-batches concurrently (one thread per shard), and
// aggregates in ascending shard-id order — so the merged outcome is
// independent of thread interleaving.
//
// Failover: a shard whose RunBatch fails is dead for the rest of the run;
// its whole sub-batch is re-dispatched down each query's preference list
// in the next wave. A query survives at most max_redispatch re-dispatches
// before it fails with kResourceExhausted — the bounded re-purchase
// contract: crowd work lost with a dead shard is bought again at most
// max_redispatch times, and the counters below account for every repeat
// microtask. Because outcomes are pure functions of (master seed, global
// id), a re-dispatched query returns byte-identical results on the
// survivor.
//
// Cache sync (optional): after each wave the router collects every
// healthy shard's committed judgment-cache export (entries that were
// themselves committed at quiescence barriers in query-id order), merges
// them through a JudgmentCache — whose better-entry rule makes the merge
// order-insensitive and whose capacity bound still applies — and gossips
// the merged set back as every shard's next warm_cache. Entries never
// bypass the alpha gate: a receiving query still only *hits* on an
// imported entry whose cached alpha covers its own, identical to a local
// cache hit (docs/SHARDING.md discusses soundness).

#ifndef CROWDTOPK_SHARD_ROUTER_H_
#define CROWDTOPK_SHARD_ROUTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/judgment_cache.h"
#include "shard/backend.h"
#include "shard/hash.h"
#include "util/status.h"

namespace crowdtopk::shard {

struct RouterOptions {
  Policy policy = Policy::kRendezvous;
  // Re-dispatches allowed per query after shard deaths; exceeding it
  // fails the query with kResourceExhausted.
  int64_t max_redispatch = 2;
  // Barrier-aligned cross-shard cache exchange; only effective when the
  // backends support it (local shards with an enabled cache).
  bool cache_sync = false;
  // Cache geometry for the merge vessel (capacity bound applies to the
  // gossiped set too); used only when cache_sync is on.
  cache::CacheOptions cache;
};

// Monotone counters, exported as shard/* telemetry by the router engine.
struct RouterCounters {
  int64_t routed_queries = 0;       // queries dispatched at least once
  int64_t waves = 0;                // routing waves executed
  int64_t shard_batches = 0;        // per-shard sub-batches attempted
  int64_t shard_failures = 0;       // RunBatch failures observed
  int64_t redispatched_queries = 0; // re-dispatches performed (query-level)
  int64_t repurchased_microtasks = 0; // microtasks bought for re-dispatched
                                      // queries on surviving shards
  int64_t exhausted_queries = 0;    // failed after max_redispatch
  int64_t cache_sync_rounds = 0;
  int64_t cache_entries_gossiped = 0;
};

// Outcome of one routed query: the shard result plus routing metadata.
struct RoutedOutcome {
  RoutedQuery query;
  ShardQueryResult result;
  int64_t shard_id = -1;    // executing shard; -1 = never executed
  int64_t redispatches = 0; // times this query was re-dispatched
};

class ShardRouter {
 public:
  // `backends[i]` is shard i; at least one.
  ShardRouter(const RouterOptions& options,
              std::vector<std::unique_ptr<ShardBackend>> backends);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Routes one batch of queries to completion (including failover waves);
  // returns outcomes in input order.
  std::vector<RoutedOutcome> RouteBatch(std::vector<RoutedQuery> queries);

  int64_t num_shards() const { return static_cast<int64_t>(backends_.size()); }
  int64_t healthy_shards() const;
  const RouterCounters& counters() const { return counters_; }
  const ShardBackend& backend(int64_t shard) const {
    return *backends_[static_cast<size_t>(shard)];
  }

 private:
  // Gossip committed cache entries among healthy, sync-capable shards.
  void SyncCaches();

  const RouterOptions options_;
  std::vector<std::unique_ptr<ShardBackend>> backends_;
  RouterCounters counters_;
};

}  // namespace crowdtopk::shard

#endif  // CROWDTOPK_SHARD_ROUTER_H_
