// RemoteShardBackend: an engine shard behind a TCP endpoint.
//
// Wraps one net::Client per shard: a sub-batch is submitted query by
// query (each stamped with its global id via SubmitQuery::seed_stream),
// then results are awaited in submission order. Any transport or server
// failure — a refused dial after the client's bounded retries, a hangup
// mid-await — marks the shard dead and loses the whole sub-batch, which
// is exactly the local backend's failure model, so the router's failover
// path is deployment-agnostic.
//
// Cache sync is not supported across the wire: the judgment cache lives
// inside the far crowdtopk_serve process, which already chains it across
// its own batches; shipping entries through the protocol is future work
// (docs/SHARDING.md).

#ifndef CROWDTOPK_SHARD_REMOTE_BACKEND_H_
#define CROWDTOPK_SHARD_REMOTE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "net/client.h"
#include "shard/backend.h"

namespace crowdtopk::shard {

class RemoteShardBackend : public ShardBackend {
 public:
  explicit RemoteShardBackend(const net::ClientOptions& options)
      : client_(std::make_unique<net::Client>(options)) {}

  util::StatusOr<ShardBatchResult> RunBatch(
      const std::vector<RoutedQuery>& batch) override;

  bool dead() const override { return dead_; }

  bool SupportsCacheSync() const override { return false; }
  std::vector<cache::ExportedEntry> ExportCache() override { return {}; }
  void SetWarmCache(std::vector<cache::ExportedEntry> entries) override {
    (void)entries;
  }

  int64_t batches_run() const override { return batches_run_; }
  int64_t queries_run() const override { return queries_run_; }
  int64_t microtasks() const override { return microtasks_; }

  // Upstream traffic counters, surfaced through the router's StatsReply.
  int64_t client_retries() const { return client_->retries(); }
  int64_t client_redials() const { return client_->redials(); }

 private:
  std::unique_ptr<net::Client> client_;
  bool connected_ = false;
  bool dead_ = false;
  int64_t batches_run_ = 0;
  int64_t queries_run_ = 0;
  int64_t microtasks_ = 0;
};

}  // namespace crowdtopk::shard

#endif  // CROWDTOPK_SHARD_REMOTE_BACKEND_H_
