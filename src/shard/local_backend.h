// LocalShardBackend: an in-process engine shard.
//
// Executes each sub-batch through a fresh serve::QueryService — the same
// engine-per-batch construction net's BatchEngine uses — under the
// *constant* master seed, with every request stamped with its global
// query id (backend.h). The shard's judgment cache chains batch-to-batch
// through warm_cache exports, exactly like a single server's; under
// router cache_sync the router replaces that warm set with the merged
// cross-shard export between batches.
//
// Deterministic failure injection: with fail_at_batch >= 1 the shard
// "dies" at the start of its fail_at_batch-th RunBatch (1-based), loses
// that sub-batch, and stays dead — the hook behind CROWDTOPK_SHARD_FAIL
// and the simulation's shard-kill chaos episodes.

#ifndef CROWDTOPK_SHARD_LOCAL_BACKEND_H_
#define CROWDTOPK_SHARD_LOCAL_BACKEND_H_

#include <cstdint>
#include <vector>

#include "serve/query_service.h"
#include "shard/backend.h"

namespace crowdtopk::shard {

class LocalShardBackend : public ShardBackend {
 public:
  struct Options {
    uint64_t seed = 20170514;  // master seed, shared by every shard
    serve::ScheduleOptions schedule;
    int64_t max_inflight = 16;
    int64_t jobs = 1;
    cache::CacheOptions cache;
    // Fault injection: die while executing the N-th batch (1-based);
    // <= 0 disables.
    int64_t fail_at_batch = -1;
  };

  explicit LocalShardBackend(const Options& options) : options_(options) {}

  util::StatusOr<ShardBatchResult> RunBatch(
      const std::vector<RoutedQuery>& batch) override;

  bool dead() const override { return dead_; }

  bool SupportsCacheSync() const override { return options_.cache.enabled; }
  std::vector<cache::ExportedEntry> ExportCache() override { return warm_; }
  void SetWarmCache(std::vector<cache::ExportedEntry> entries) override {
    warm_ = std::move(entries);
  }

  int64_t batches_run() const override { return batches_run_; }
  int64_t queries_run() const override { return queries_run_; }
  int64_t microtasks() const override { return microtasks_; }

 private:
  const Options options_;
  bool dead_ = false;
  int64_t batches_run_ = 0;
  int64_t queries_run_ = 0;
  int64_t microtasks_ = 0;
  // Committed cache entries after the last batch; the warm-start set for
  // the next one (possibly overwritten by the router's merged export).
  std::vector<cache::ExportedEntry> warm_;
};

}  // namespace crowdtopk::shard

#endif  // CROWDTOPK_SHARD_LOCAL_BACKEND_H_
