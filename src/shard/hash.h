// Deterministic shard placement (docs/SHARDING.md).
//
// The router places every query on a shard by hashing its placement key —
// (cache universe, dataset name, algorithm name) — so queries that could
// share cached judgments land on the same shard. Two policies:
//
//   * kRendezvous (default): highest-random-weight hashing. Each shard's
//     weight for a key is SplitSeed(fingerprint(key), shard), and shards
//     are ranked by descending weight. Adding or removing a shard only
//     moves the keys whose top-ranked shard changed (~1/K of them); every
//     other key keeps its placement, which is what keeps shard-local
//     caches warm across resizes.
//   * kModulo: fingerprint(key) % K, with the fallback order walking
//     (primary + 1) % K, (primary + 2) % K, ... Simple, but a resize
//     reshuffles almost every key.
//
// Both policies are pure functions of (key, shard count) — no state, no
// randomness — so routing is byte-reproducible across runs and across
// processes.

#ifndef CROWDTOPK_SHARD_HASH_H_
#define CROWDTOPK_SHARD_HASH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace crowdtopk::shard {

enum class Policy {
  kRendezvous,
  kModulo,
};

// Parses a CROWDTOPK_SHARD_POLICY value; unknown names fall back to
// rendezvous (util::ShardPolicy has already warned once by then).
Policy ParsePolicy(const std::string& name);
const char* PolicyName(Policy policy);

// What placement hashes on. The universe id — not the Dataset pointer —
// so in-process and remote routing agree, and so subset datasets that
// share a universe co-locate with their parent's queries.
struct PlacementKey {
  int64_t universe = 0;
  std::string dataset;
  std::string algo;
};

// Stable 64-bit fingerprint of `key` (FNV-1a over a canonical encoding).
uint64_t KeyFingerprint(const PlacementKey& key);

// Rendezvous weight of `key` on `shard`; pure function, higher wins.
uint64_t RendezvousWeight(const PlacementKey& key, int64_t shard);

// Shard ids [0, shards) in routing-preference order, best first. The
// router dispatches to the first *healthy* entry; failover walks down the
// same list, so re-dispatch targets are as deterministic as the primary.
std::vector<int64_t> RankShards(const PlacementKey& key, int64_t shards,
                                Policy policy);

}  // namespace crowdtopk::shard

#endif  // CROWDTOPK_SHARD_HASH_H_
