// ShardBackend: one engine shard as the router sees it.
//
// A backend executes sub-batches of routed queries and reports per-query
// outcomes. Two implementations:
//
//   * LocalShardBackend (local_backend.h): an in-process
//     serve::QueryService per batch — the "spawn K engines in one
//     process" deployment, and the only one the deterministic simulation
//     drives.
//   * RemoteShardBackend (remote_backend.h): a net::Client against a
//     crowdtopk_serve process — the scale-out deployment.
//
// Failure model: RunBatch either returns an outcome for every query of
// the sub-batch, or a non-OK status meaning the *shard* failed (process
// died, connection lost, injected fault). A failed shard loses the whole
// sub-batch — partial results are never surfaced — and stays dead for the
// rest of the run; the router re-dispatches the lost queries to survivors
// (router.h). Because every query's judgment and latency streams are
// keyed by its router-stamped global id under the constant master seed,
// the re-executed query buys the same microtasks and returns the same
// answer it would have produced on the dead shard.

#ifndef CROWDTOPK_SHARD_BACKEND_H_
#define CROWDTOPK_SHARD_BACKEND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cache/judgment_cache.h"
#include "core/topk_algorithm.h"
#include "crowd/types.h"
#include "data/dataset.h"
#include "util/status.h"

namespace crowdtopk::shard {

// One query as the router dispatches it. Names travel to remote shards;
// the resolved pointers (owned by the router engine, not the backend) are
// what a local shard executes.
struct RoutedQuery {
  // Router-assigned global id; stamped into serve::QueryRequest::seed_stream
  // (and the wire SubmitQuery) so the outcome is a pure function of
  // (master seed, global id) on whichever shard runs it.
  int64_t global_id = 0;
  std::string dataset;
  std::string algo;
  int64_t k = 10;
  double alpha = 0.02;
  int64_t budget = 0;  // <= 0 keeps the engine default
  // Placement-key universe; also the cache universe for local execution.
  int64_t universe = 0;
  // Resolved by the router engine for local backends; null for remote.
  const data::Dataset* dataset_ptr = nullptr;
  core::TopKAlgorithm* algorithm = nullptr;
};

// Terminal outcome of one routed query, as reported by a shard. The
// first block is the contention-independent "pure" columns (a function of
// master seed + global id only); the second is timing, which depends on
// what else shared the shard's worker pool.
struct ShardQueryResult {
  int64_t global_id = 0;
  util::Status status;
  std::vector<crowd::ItemId> items;
  double precision_at_k = 0.0;
  int64_t total_microtasks = 0;
  int64_t rounds_private = 0;
  int64_t expired_assignments = 0;
  int64_t requeued_assignments = 0;

  int64_t rounds_observed = 0;
  double latency_seconds = 0.0;
  double queue_wait_seconds = 0.0;
};

struct ShardBatchResult {
  // One entry per routed query, dispatch order preserved.
  std::vector<ShardQueryResult> results;
  int64_t microtasks = 0;  // purchased in this sub-batch
};

class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  // Executes one sub-batch to completion. Non-OK = the shard died and the
  // whole sub-batch is lost (see the failure model above); the backend
  // must report dead() from then on.
  virtual util::StatusOr<ShardBatchResult> RunBatch(
      const std::vector<RoutedQuery>& batch) = 0;

  virtual bool dead() const = 0;

  // Cross-shard cache exchange (router cache_sync). ExportCache returns
  // the shard's committed judgment-cache entries after the last completed
  // batch; SetWarmCache replaces the warm-start entries applied before
  // the next one. Backends that cannot participate (remote shards —
  // cache state lives in the far process) return false from
  // SupportsCacheSync and empty exports.
  virtual bool SupportsCacheSync() const = 0;
  virtual std::vector<cache::ExportedEntry> ExportCache() = 0;
  virtual void SetWarmCache(std::vector<cache::ExportedEntry> entries) = 0;

  // Cumulative counters for the merged report.
  virtual int64_t batches_run() const = 0;
  virtual int64_t queries_run() const = 0;
  virtual int64_t microtasks() const = 0;
};

}  // namespace crowdtopk::shard

#endif  // CROWDTOPK_SHARD_BACKEND_H_
