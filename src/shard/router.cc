#include "shard/router.h"

#include <optional>
#include <thread>
#include <utility>

#include "util/check.h"

namespace crowdtopk::shard {

ShardRouter::ShardRouter(const RouterOptions& options,
                         std::vector<std::unique_ptr<ShardBackend>> backends)
    : options_(options), backends_(std::move(backends)) {
  CROWDTOPK_CHECK(!backends_.empty());
  for (const std::unique_ptr<ShardBackend>& backend : backends_) {
    CROWDTOPK_CHECK(backend != nullptr);
  }
}

int64_t ShardRouter::healthy_shards() const {
  int64_t healthy = 0;
  for (const std::unique_ptr<ShardBackend>& backend : backends_) {
    if (!backend->dead()) ++healthy;
  }
  return healthy;
}

std::vector<RoutedOutcome> ShardRouter::RouteBatch(
    std::vector<RoutedQuery> queries) {
  struct Pending {
    size_t index = 0;          // position in `queries` / `outcomes`
    int64_t redispatches = 0;  // re-dispatches already consumed
  };

  const size_t n = queries.size();
  const int64_t shards = num_shards();
  std::vector<RoutedOutcome> outcomes(n);
  std::vector<Pending> pending(n);
  for (size_t i = 0; i < n; ++i) {
    outcomes[i].query = std::move(queries[i]);
    outcomes[i].result.global_id = outcomes[i].query.global_id;
    pending[i].index = i;
  }
  counters_.routed_queries += static_cast<int64_t>(n);

  while (!pending.empty()) {
    ++counters_.waves;
    // Group this wave's queries by their first healthy preferred shard.
    std::vector<std::vector<Pending>> groups(static_cast<size_t>(shards));
    std::vector<std::vector<RoutedQuery>> sub(static_cast<size_t>(shards));
    for (const Pending& p : pending) {
      const RoutedQuery& q = outcomes[p.index].query;
      const std::vector<int64_t> prefs = RankShards(
          PlacementKey{q.universe, q.dataset, q.algo}, shards,
          options_.policy);
      int64_t target = -1;
      for (const int64_t s : prefs) {
        if (!backends_[static_cast<size_t>(s)]->dead()) {
          target = s;
          break;
        }
      }
      if (target < 0) {
        // Every shard is dead; nothing left to fail over to.
        outcomes[p.index].redispatches = p.redispatches;
        outcomes[p.index].result.status = util::Status::ResourceExhausted(
            "no healthy shard remaining");
        ++counters_.exhausted_queries;
        continue;
      }
      groups[static_cast<size_t>(target)].push_back(p);
      sub[static_cast<size_t>(target)].push_back(q);
    }
    pending.clear();

    // Execute the non-empty sub-batches concurrently, one thread per
    // shard; results land in fixed slots, so no synchronization beyond
    // the joins is needed.
    std::vector<std::optional<util::StatusOr<ShardBatchResult>>> results(
        static_cast<size_t>(shards));
    std::vector<std::thread> threads;
    for (int64_t s = 0; s < shards; ++s) {
      if (sub[static_cast<size_t>(s)].empty()) continue;
      threads.emplace_back([this, s, &sub, &results] {
        results[static_cast<size_t>(s)].emplace(
            backends_[static_cast<size_t>(s)]->RunBatch(
                sub[static_cast<size_t>(s)]));
      });
    }
    for (std::thread& t : threads) t.join();

    // Aggregate in ascending shard-id order — the canonical reduction
    // that keeps the merged outcome independent of thread timing.
    for (int64_t s = 0; s < shards; ++s) {
      const std::vector<Pending>& group = groups[static_cast<size_t>(s)];
      if (group.empty()) continue;
      ++counters_.shard_batches;
      const util::StatusOr<ShardBatchResult>& attempt =
          *results[static_cast<size_t>(s)];
      if (attempt.ok()) {
        const ShardBatchResult& batch = attempt.value();
        CROWDTOPK_CHECK(batch.results.size() == group.size());
        for (size_t j = 0; j < group.size(); ++j) {
          const Pending& p = group[j];
          outcomes[p.index].result = batch.results[j];
          outcomes[p.index].shard_id = s;
          outcomes[p.index].redispatches = p.redispatches;
          if (p.redispatches > 0) {
            counters_.repurchased_microtasks +=
                batch.results[j].total_microtasks;
          }
        }
        continue;
      }
      // The shard died; its whole sub-batch is lost. Queries with
      // re-dispatch budget left go back to pending for the next wave.
      ++counters_.shard_failures;
      for (const Pending& p : group) {
        if (p.redispatches + 1 > options_.max_redispatch) {
          outcomes[p.index].redispatches = p.redispatches;
          outcomes[p.index].result.status = util::Status::ResourceExhausted(
              "re-dispatch budget exhausted (" + attempt.status().message() +
              ")");
          ++counters_.exhausted_queries;
        } else {
          ++counters_.redispatched_queries;
          pending.push_back(Pending{p.index, p.redispatches + 1});
        }
      }
    }

    if (options_.cache_sync) SyncCaches();
  }
  return outcomes;
}

void ShardRouter::SyncCaches() {
  // Merge through a JudgmentCache so the gossiped set obeys the same
  // better-entry rule and capacity bound as any shard's own cache; the
  // merge is order-insensitive, but entries are restored in shard-id
  // order anyway so the restored-counter bookkeeping is reproducible.
  bool any = false;
  for (const std::unique_ptr<ShardBackend>& backend : backends_) {
    if (!backend->dead() && backend->SupportsCacheSync()) any = true;
  }
  if (!any) return;
  cache::CacheOptions merge_options = options_.cache;
  merge_options.enabled = true;
  merge_options.deferred_commit = false;
  cache::JudgmentCache merged(merge_options);
  for (const std::unique_ptr<ShardBackend>& backend : backends_) {
    if (backend->dead() || !backend->SupportsCacheSync()) continue;
    merged.RestoreEntries(backend->ExportCache());
  }
  std::vector<cache::ExportedEntry> entries = merged.Export();
  for (const std::unique_ptr<ShardBackend>& backend : backends_) {
    if (backend->dead() || !backend->SupportsCacheSync()) continue;
    backend->SetWarmCache(entries);
  }
  ++counters_.cache_sync_rounds;
  counters_.cache_entries_gossiped += static_cast<int64_t>(entries.size());
}

}  // namespace crowdtopk::shard
