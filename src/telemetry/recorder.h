// TraceRecorder: the collection point of the telemetry subsystem.
//
// A recorder is attached to a CrowdPlatform (crowd/platform.h) for the
// duration of one query; the platform reports every purchase and round
// boundary, while the algorithm layers open/close named phases around their
// sub-steps through RAII PhaseScopes. Everything is null-safe: algorithms
// pass `platform->recorder()` straight into PhaseScope without checking, so
// an undecorated run (no recorder attached) costs one pointer test per
// scope and nothing else.
//
// Recording is strictly append-only and single-threaded, matching the
// simulator's execution model; the aggregate counters (total_microtasks,
// total_rounds) are maintained incrementally so consistency checks against
// CrowdPlatform's own counters are O(1).
//
// Single-threaded is a *contract*, not an accident: under the parallel
// experiment engine (exec/run_engine.h) each run constructs its recorder
// inside its own task, so one recorder is only ever touched by one thread.
// In debug builds the recorder latches the first recording thread's id and
// CHECK-fails if any other thread records into it, so a recorder shared
// across runs fails loudly instead of silently corrupting the trace.

#ifndef CROWDTOPK_TELEMETRY_RECORDER_H_
#define CROWDTOPK_TELEMETRY_RECORDER_H_

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/events.h"

namespace crowdtopk::telemetry {

class TraceRecorder {
 public:
  TraceRecorder() = default;

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Opens a nested phase. `name` must be non-empty and must not contain '/'
  // (reserved as the path separator).
  void BeginPhase(const std::string& name);

  // Closes the innermost open phase. CHECK-fails if none is open.
  void EndPhase();

  // Records a purchase of `count` microtasks for (i, j); j < 0 for graded
  // single-item purchases. The pending purchase iteration (see
  // SetPurchaseIteration) is stamped onto the event.
  void RecordPurchase(PurchaseKind kind, int64_t item_i, int64_t item_j,
                      int64_t count);

  // Records `n` elapsed batch rounds as one event.
  void RecordRounds(int64_t n);

  // Records a named scalar observation in the current phase.
  void RecordCounter(const std::string& name, double value);

  // Tags subsequent purchases with a confidence-process iteration index;
  // -1 clears the tag. Set by ComparisonSession around each buy.
  void SetPurchaseIteration(int64_t iteration) {
    purchase_iteration_ = iteration;
  }

  const std::vector<TraceEvent>& events() const { return events_; }

  // '/'-joined path of currently open phases ("" at top level).
  const std::string& phase_path() const { return phase_path_; }
  int64_t phase_depth() const {
    return static_cast<int64_t>(phase_stack_.size());
  }

  // Running totals over all recorded purchase/round events. When the
  // recorder is attached to a platform for a full query these match the
  // platform's own aggregate counters exactly.
  int64_t total_microtasks() const { return total_microtasks_; }
  int64_t total_rounds() const { return total_rounds_; }

  // Drops all events and totals; open phases are kept. Also releases the
  // debug-mode thread ownership, so a cleared recorder may be handed to a
  // different thread.
  void Clear();

 private:
  TraceEvent* Append(EventKind kind);

  // Debug-mode ownership assertion: latches the first recording thread and
  // aborts on recording from any other (no-op under NDEBUG). Clear()
  // releases ownership so a recorder may be reused by a later run.
  void AssertOwningThread();

  std::thread::id owner_thread_;  // default-constructed = unowned
  std::vector<TraceEvent> events_;
  std::vector<std::string> phase_stack_;
  std::string phase_path_;  // cached join of phase_stack_
  int64_t purchase_iteration_ = -1;
  int64_t total_microtasks_ = 0;
  int64_t total_rounds_ = 0;
};

// RAII phase delimiter. Null recorder => no-op, so call sites can pass
// `platform->recorder()` unconditionally.
class PhaseScope {
 public:
  PhaseScope(TraceRecorder* recorder, const std::string& name)
      : recorder_(recorder) {
    if (recorder_ != nullptr) recorder_->BeginPhase(name);
  }
  ~PhaseScope() {
    if (recorder_ != nullptr) recorder_->EndPhase();
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  TraceRecorder* recorder_;
};

}  // namespace crowdtopk::telemetry

#endif  // CROWDTOPK_TELEMETRY_RECORDER_H_
