#include "telemetry/recorder.h"

#include "util/check.h"

namespace crowdtopk::telemetry {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kPurchase:
      return "purchase";
    case EventKind::kRound:
      return "round";
    case EventKind::kPhaseBegin:
      return "phase_begin";
    case EventKind::kPhaseEnd:
      return "phase_end";
    case EventKind::kCounter:
      return "counter";
  }
  return "unknown";
}

const char* PurchaseKindName(PurchaseKind kind) {
  switch (kind) {
    case PurchaseKind::kPreference:
      return "preference";
    case PurchaseKind::kBinary:
      return "binary";
    case PurchaseKind::kGraded:
      return "graded";
  }
  return "unknown";
}

void TraceRecorder::AssertOwningThread() {
#ifdef NDEBUG
  // Release builds: the contract is documented, not enforced.
#else
  const std::thread::id self = std::this_thread::get_id();
  if (owner_thread_ == std::thread::id()) owner_thread_ = self;
  // A recorder belongs to exactly one run, hence one thread. Recording
  // from a second thread means it was shared across parallel runs — the
  // trace would interleave events of unrelated runs.
  CROWDTOPK_CHECK(owner_thread_ == self);
#endif
}

TraceEvent* TraceRecorder::Append(EventKind kind) {
  AssertOwningThread();
  TraceEvent& event = events_.emplace_back();
  event.sequence = static_cast<int64_t>(events_.size()) - 1;
  event.kind = kind;
  event.phase = phase_path_;
  return &event;
}

void TraceRecorder::BeginPhase(const std::string& name) {
  CROWDTOPK_CHECK(!name.empty());
  CROWDTOPK_CHECK(name.find('/') == std::string::npos);
  phase_stack_.push_back(name);
  if (!phase_path_.empty()) phase_path_ += '/';
  phase_path_ += name;
  Append(EventKind::kPhaseBegin);
}

void TraceRecorder::EndPhase() {
  CROWDTOPK_CHECK(!phase_stack_.empty());
  // The end event carries the path of the phase being closed.
  Append(EventKind::kPhaseEnd);
  const std::string& name = phase_stack_.back();
  phase_path_.resize(phase_path_.size() - name.size());
  if (!phase_path_.empty()) phase_path_.pop_back();  // trailing '/'
  phase_stack_.pop_back();
}

void TraceRecorder::RecordPurchase(PurchaseKind kind, int64_t item_i,
                                   int64_t item_j, int64_t count) {
  CROWDTOPK_CHECK_GE(count, 1);
  TraceEvent* event = Append(EventKind::kPurchase);
  event->purchase_kind = kind;
  event->item_i = item_i;
  event->item_j = item_j;
  event->count = count;
  event->iteration = purchase_iteration_;
  total_microtasks_ += count;
}

void TraceRecorder::RecordRounds(int64_t n) {
  CROWDTOPK_CHECK_GE(n, 1);
  TraceEvent* event = Append(EventKind::kRound);
  event->count = n;
  total_rounds_ += n;
}

void TraceRecorder::RecordCounter(const std::string& name, double value) {
  CROWDTOPK_CHECK(!name.empty());
  TraceEvent* event = Append(EventKind::kCounter);
  event->name = name;
  event->value = value;
}

void TraceRecorder::Clear() {
  events_.clear();
  total_microtasks_ = 0;
  total_rounds_ = 0;
  owner_thread_ = std::thread::id();  // next recording thread re-latches
}

}  // namespace crowdtopk::telemetry
