// Trace exporters / importer.
//
// Traces are persisted as JSON Lines (one event object per line) so they can
// be post-processed with standard tools (`jq`, pandas, DuckDB) as well as
// re-imported here for aggregation. The emitted subset of JSON is flat
// (string and number values only) and ReadJsonl understands exactly that
// subset — it is a round-trip partner for WriteJsonl, not a general JSON
// parser. The line format is documented in docs/OBSERVABILITY.md.

#ifndef CROWDTOPK_TELEMETRY_EXPORT_H_
#define CROWDTOPK_TELEMETRY_EXPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/events.h"
#include "util/status.h"

namespace crowdtopk::telemetry {

// Serialises one event as a single JSON object (no trailing newline).
std::string EventToJson(const TraceEvent& event);

// Writes one event per line to `out`.
void WriteJsonl(const std::vector<TraceEvent>& events, std::ostream* out);

// Writes one event per line to `path`, overwriting. Fails on I/O errors.
util::Status WriteJsonlFile(const std::vector<TraceEvent>& events,
                            const std::string& path);

// Parses one line previously produced by EventToJson.
util::StatusOr<TraceEvent> EventFromJson(const std::string& line);

// Reads a whole JSONL stream / file back into events. Blank lines are
// skipped; any malformed line fails the read.
util::StatusOr<std::vector<TraceEvent>> ReadJsonl(std::istream* in);
util::StatusOr<std::vector<TraceEvent>> ReadJsonlFile(const std::string& path);

}  // namespace crowdtopk::telemetry

#endif  // CROWDTOPK_TELEMETRY_EXPORT_H_
