#include "telemetry/export.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace crowdtopk::telemetry {

namespace {

void AppendEscaped(const std::string& value, std::string* out) {
  for (char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          *out += buffer;
        } else {
          *out += c;
        }
    }
  }
}

void AppendStringField(const std::string& key, const std::string& value,
                       std::string* out) {
  *out += ",\"";
  *out += key;
  *out += "\":\"";
  AppendEscaped(value, out);
  *out += '"';
}

void AppendIntField(const std::string& key, int64_t value, std::string* out) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld",
                static_cast<long long>(value));
  *out += ",\"";
  *out += key;
  *out += "\":";
  *out += buffer;
}

// Locates the raw token following `"key":` in a flat JSON object. Returns
// false if the key is absent. Only suitable for the subset we emit (no
// nested objects, keys never appear inside earlier string values except
// `phase`/`name`, which are emitted before any field this is used for).
bool FindRaw(const std::string& line, const std::string& key, size_t* pos) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  *pos = at + needle.size();
  return true;
}

bool ParseStringField(const std::string& line, const std::string& key,
                      std::string* out) {
  size_t pos = 0;
  if (!FindRaw(line, key, &pos)) return false;
  if (pos >= line.size() || line[pos] != '"') return false;
  ++pos;
  out->clear();
  while (pos < line.size() && line[pos] != '"') {
    char c = line[pos];
    if (c == '\\' && pos + 1 < line.size()) {
      ++pos;
      switch (line[pos]) {
        case 'n':
          c = '\n';
          break;
        case 't':
          c = '\t';
          break;
        case 'u': {
          if (pos + 4 >= line.size()) return false;
          c = static_cast<char>(
              std::strtol(line.substr(pos + 1, 4).c_str(), nullptr, 16));
          pos += 4;
          break;
        }
        default:
          c = line[pos];
      }
    }
    *out += c;
    ++pos;
  }
  return pos < line.size();
}

bool ParseIntField(const std::string& line, const std::string& key,
                   int64_t* out) {
  size_t pos = 0;
  if (!FindRaw(line, key, &pos)) return false;
  char* end = nullptr;
  const long long parsed = std::strtoll(line.c_str() + pos, &end, 10);
  if (end == line.c_str() + pos) return false;
  *out = static_cast<int64_t>(parsed);
  return true;
}

bool ParseDoubleField(const std::string& line, const std::string& key,
                      double* out) {
  size_t pos = 0;
  if (!FindRaw(line, key, &pos)) return false;
  char* end = nullptr;
  const double parsed = std::strtod(line.c_str() + pos, &end);
  if (end == line.c_str() + pos) return false;
  *out = parsed;
  return true;
}

}  // namespace

std::string EventToJson(const TraceEvent& event) {
  std::string out = "{\"seq\":";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%lld",
                static_cast<long long>(event.sequence));
  out += buffer;
  out += ",\"kind\":\"";
  out += EventKindName(event.kind);
  out += '"';
  AppendStringField("phase", event.phase, &out);
  switch (event.kind) {
    case EventKind::kPurchase:
      AppendStringField("judgment", PurchaseKindName(event.purchase_kind),
                        &out);
      AppendIntField("i", event.item_i, &out);
      AppendIntField("j", event.item_j, &out);
      AppendIntField("n", event.count, &out);
      AppendIntField("iter", event.iteration, &out);
      break;
    case EventKind::kRound:
      AppendIntField("n", event.count, &out);
      break;
    case EventKind::kPhaseBegin:
    case EventKind::kPhaseEnd:
      break;
    case EventKind::kCounter: {
      AppendStringField("name", event.name, &out);
      std::snprintf(buffer, sizeof(buffer), "%.17g", event.value);
      out += ",\"value\":";
      out += buffer;
      break;
    }
  }
  out += '}';
  return out;
}

void WriteJsonl(const std::vector<TraceEvent>& events, std::ostream* out) {
  CROWDTOPK_CHECK(out != nullptr);
  for (const TraceEvent& event : events) {
    *out << EventToJson(event) << '\n';
  }
}

util::Status WriteJsonlFile(const std::vector<TraceEvent>& events,
                            const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return util::Status::NotFound("cannot open for writing: " + path);
  }
  WriteJsonl(events, &out);
  out.flush();
  if (!out.good()) return util::Status::Internal("write failed: " + path);
  return util::Status::Ok();
}

util::StatusOr<TraceEvent> EventFromJson(const std::string& line) {
  TraceEvent event;
  if (!ParseIntField(line, "seq", &event.sequence)) {
    return util::Status::InvalidArgument("missing seq: " + line);
  }
  std::string kind;
  if (!ParseStringField(line, "kind", &kind)) {
    return util::Status::InvalidArgument("missing kind: " + line);
  }
  if (!ParseStringField(line, "phase", &event.phase)) {
    return util::Status::InvalidArgument("missing phase: " + line);
  }
  if (kind == "purchase") {
    event.kind = EventKind::kPurchase;
    std::string judgment;
    if (!ParseStringField(line, "judgment", &judgment) ||
        !ParseIntField(line, "i", &event.item_i) ||
        !ParseIntField(line, "j", &event.item_j) ||
        !ParseIntField(line, "n", &event.count) ||
        !ParseIntField(line, "iter", &event.iteration)) {
      return util::Status::InvalidArgument("malformed purchase: " + line);
    }
    if (judgment == "preference") {
      event.purchase_kind = PurchaseKind::kPreference;
    } else if (judgment == "binary") {
      event.purchase_kind = PurchaseKind::kBinary;
    } else if (judgment == "graded") {
      event.purchase_kind = PurchaseKind::kGraded;
    } else {
      return util::Status::InvalidArgument("unknown judgment: " + judgment);
    }
  } else if (kind == "round") {
    event.kind = EventKind::kRound;
    if (!ParseIntField(line, "n", &event.count)) {
      return util::Status::InvalidArgument("malformed round: " + line);
    }
  } else if (kind == "phase_begin") {
    event.kind = EventKind::kPhaseBegin;
  } else if (kind == "phase_end") {
    event.kind = EventKind::kPhaseEnd;
  } else if (kind == "counter") {
    event.kind = EventKind::kCounter;
    if (!ParseStringField(line, "name", &event.name) ||
        !ParseDoubleField(line, "value", &event.value)) {
      return util::Status::InvalidArgument("malformed counter: " + line);
    }
  } else {
    return util::Status::InvalidArgument("unknown kind: " + kind);
  }
  return event;
}

util::StatusOr<std::vector<TraceEvent>> ReadJsonl(std::istream* in) {
  CROWDTOPK_CHECK(in != nullptr);
  std::vector<TraceEvent> events;
  std::string line;
  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    util::StatusOr<TraceEvent> event = EventFromJson(line);
    if (!event.ok()) return event.status();
    events.push_back(*std::move(event));
  }
  return events;
}

util::StatusOr<std::vector<TraceEvent>> ReadJsonlFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return util::Status::NotFound("cannot open: " + path);
  return ReadJsonl(&in);
}

}  // namespace crowdtopk::telemetry
