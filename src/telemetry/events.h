// Trace event vocabulary for the telemetry subsystem.
//
// A trace is a flat, totally ordered sequence of TraceEvents describing one
// top-k query: every microtask purchase (the paper's unit of total monetary
// cost, Section 4), every batch-round boundary (the paper's unit of query
// latency, Section 5.5), the begin/end of named algorithm phases (SPR's
// select / partition / rank split, a baseline's build / extract split, ...),
// and free-form scalar counters. Events carry the full phase path active
// when they were emitted, so a trace can be reduced to per-phase cost and
// latency tables offline (metrics/trace_aggregate.h) without replaying the
// query. The schema is documented in docs/OBSERVABILITY.md.

#ifndef CROWDTOPK_TELEMETRY_EVENTS_H_
#define CROWDTOPK_TELEMETRY_EVENTS_H_

#include <cstdint>
#include <string>

namespace crowdtopk::telemetry {

enum class EventKind {
  // A batch of `count` microtasks bought for one item (pair). TMC events.
  kPurchase,
  // `count` batch-round boundaries elapsed. Latency events.
  kRound,
  // A named phase opened / closed; `phase` is the path *including* the
  // phase itself.
  kPhaseBegin,
  kPhaseEnd,
  // A named scalar observation (e.g. "reference_changes").
  kCounter,
};

// Which judgment primitive a purchase bought (crowd/oracle.h).
enum class PurchaseKind {
  kPreference,  // signed strength in [-1, 1]
  kBinary,      // vote in {-1, +1}
  kGraded,      // absolute grade of a single item in [0, 1]
};

// Stable lowercase names used by the JSONL/CSV exporters.
const char* EventKindName(EventKind kind);
const char* PurchaseKindName(PurchaseKind kind);

struct TraceEvent {
  // Position in the trace's total order, starting at 0.
  int64_t sequence = 0;
  EventKind kind = EventKind::kCounter;
  // '/'-joined path of open phases when the event fired ("" = outside any
  // phase; "spr/partition" = inside partition nested in spr).
  std::string phase;

  // kPurchase only.
  PurchaseKind purchase_kind = PurchaseKind::kPreference;
  int64_t item_i = -1;
  int64_t item_j = -1;  // -1 for single-item (graded) purchases
  // kPurchase: microtasks bought; kRound: rounds elapsed (usually 1).
  int64_t count = 0;
  // Confidence-process iteration of the owning COMP session (0 = cold
  // start), or -1 when the purchase was not made by a comparison session.
  int64_t iteration = -1;

  // kCounter only.
  std::string name;
  double value = 0.0;

  bool operator==(const TraceEvent&) const = default;
};

}  // namespace crowdtopk::telemetry

#endif  // CROWDTOPK_TELEMETRY_EVENTS_H_
