// Dataset: a judgment oracle with a known ground-truth total order.
//
// All four evaluation datasets of the paper (IMDb, Book, Jester, Photo) plus
// the interactive PeopleAge set are modelled as Datasets: they answer
// simulated judgments AND expose the ground truth Omega used to score
// accuracy (the algorithms never see the ground truth).

#ifndef CROWDTOPK_DATA_DATASET_H_
#define CROWDTOPK_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crowd/oracle.h"
#include "crowd/types.h"

namespace crowdtopk::data {

using crowd::ItemId;

class Dataset : public crowd::JudgmentOracle {
 public:
  Dataset(std::string name, std::vector<double> true_scores);

  const std::string& name() const { return name_; }
  int64_t num_items() const override {
    return static_cast<int64_t>(true_scores_.size());
  }

  // Ground-truth score of an item (higher is better).
  double TrueScore(ItemId i) const { return true_scores_[i]; }

  // Ground-truth total order Omega, best item first. Deterministic: score
  // ties are broken by item id.
  const std::vector<ItemId>& TrueOrder() const { return true_order_; }

  // 1-based rank of item i in Omega (1 = best).
  int64_t TrueRank(ItemId i) const { return true_rank_[i]; }

  // The ids of the true top-k items, best first.
  std::vector<ItemId> TrueTopK(int64_t k) const;

  // True iff s(i) > s(j) in the ground truth (rank comparison).
  bool TrueBetter(ItemId i, ItemId j) const {
    return true_rank_[i] < true_rank_[j];
  }

  // Restriction helper: a view over the first `n` items *of the ground-truth
  // shuffle order* is not provided here; benches subsample by constructing
  // datasets of the right size instead (see generators.h).

 protected:
  // Subclasses may call this if they compute true scores after construction.
  void SetTrueScores(std::vector<double> true_scores);

 private:
  void RebuildOrder();

  std::string name_;
  std::vector<double> true_scores_;
  std::vector<ItemId> true_order_;
  std::vector<int64_t> true_rank_;
};

}  // namespace crowdtopk::data

#endif  // CROWDTOPK_DATA_DATASET_H_
