// PairRecordDataset: a pre-collected pairwise judgment database (Photo style).
//
// Mirrors the paper's Photo protocol (Section 6.1): a judgment database D
// holds >= 10 Likert-scale records per item pair collected once from a real
// crowd; simulating a judgment re-samples one stored record of that pair.
// The ground truth is a latent per-item score supplied by the generator.

#ifndef CROWDTOPK_DATA_PAIR_RECORD_DATASET_H_
#define CROWDTOPK_DATA_PAIR_RECORD_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace crowdtopk::data {

class PairRecordDataset : public Dataset {
 public:
  // records must contain, for every unordered pair {i, j} with i < j, at
  // least one preference value oriented as v(i, j) (positive favours i),
  // already normalised to [-1, 1]. graded[i] holds absolute grade records
  // for item i in [0, 1] (may be empty if graded judgments are not needed).
  PairRecordDataset(std::string name, std::vector<double> true_scores,
                    std::vector<std::vector<std::vector<double>>> records,
                    std::vector<std::vector<double>> graded);

  // Number of stored records for the unordered pair {i, j}.
  int64_t NumRecords(ItemId i, ItemId j) const;

  // The stored records for the unordered pair {i, j}, oriented as
  // v(min(i,j), max(i,j)). Requires i != j.
  const std::vector<double>& RecordsFor(ItemId i, ItemId j) const;

  double PreferenceJudgment(ItemId i, ItemId j,
                            util::Rng* rng) const override;

  double GradedJudgment(ItemId i, util::Rng* rng) const override;

 private:
  // records_[i][j - i - 1] = records for pair {i, j}, i < j.
  std::vector<std::vector<std::vector<double>>> records_;
  std::vector<std::vector<double>> graded_;
};

}  // namespace crowdtopk::data

#endif  // CROWDTOPK_DATA_PAIR_RECORD_DATASET_H_
