#include "data/user_matrix_dataset.h"

#include "util/check.h"

namespace crowdtopk::data {

UserMatrixDataset::UserMatrixDataset(
    std::string name, std::vector<std::vector<double>> ratings,
    double rating_min, double rating_max)
    : Dataset(std::move(name), {}),
      ratings_(std::move(ratings)),
      rating_min_(rating_min),
      rating_range_(rating_max - rating_min) {
  CROWDTOPK_CHECK(!ratings_.empty());
  CROWDTOPK_CHECK_GT(rating_range_, 0.0);
  const size_t num_items = ratings_.front().size();
  CROWDTOPK_CHECK_GT(num_items, 0u);
  std::vector<double> sums(num_items, 0.0);
  for (const auto& row : ratings_) {
    CROWDTOPK_CHECK_EQ(row.size(), num_items);
    for (size_t i = 0; i < num_items; ++i) {
      CROWDTOPK_DCHECK(row[i] >= rating_min && row[i] <= rating_max);
      sums[i] += row[i];
    }
  }
  for (double& s : sums) s /= static_cast<double>(ratings_.size());
  SetTrueScores(std::move(sums));
}

double UserMatrixDataset::PreferenceJudgment(ItemId i, ItemId j,
                                             util::Rng* rng) const {
  const auto& user = ratings_[rng->UniformInt(num_users())];
  return (user[i] - user[j]) / rating_range_;
}

double UserMatrixDataset::GradedJudgment(ItemId i, util::Rng* rng) const {
  const auto& user = ratings_[rng->UniformInt(num_users())];
  return (user[i] - rating_min_) / rating_range_;
}

}  // namespace crowdtopk::data
