#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/normal.h"
#include "util/check.h"
#include "util/random.h"

namespace crowdtopk::data {

namespace {

// Ten rating bins 1..10 (IMDb / Book-Crossing style).
std::vector<double> TenBins() {
  std::vector<double> bins(10);
  std::iota(bins.begin(), bins.end(), 1.0);
  return bins;
}

// Probability mass of N(mean, stddev^2) truncated-and-discretised onto the
// integer bins 1..10, with small polarised spikes at the extreme bins (real
// rating histograms have "love it / hate it" bumps).
std::vector<double> DiscretisedBellMass(double mean, double stddev,
                                        double spike_low, double spike_high) {
  std::vector<double> mass(10, 0.0);
  double total = 0.0;
  for (int b = 0; b < 10; ++b) {
    const double value = static_cast<double>(b + 1);
    const double lo = (value - 0.5 - mean) / stddev;
    const double hi = (value + 0.5 - mean) / stddev;
    mass[b] = stats::NormalCdf(hi) - stats::NormalCdf(lo);
    total += mass[b];
  }
  CROWDTOPK_CHECK_GT(total, 0.0);
  for (double& m : mass) m /= total;
  // Blend in the edge spikes.
  const double keep = 1.0 - spike_low - spike_high;
  for (double& m : mass) m *= keep;
  mass.front() += spike_low;
  mass.back() += spike_high;
  return mass;
}

// Draws `votes` ratings from `mass` and returns the empirical counts.
// For very large vote counts the histogram converges to the expectation, so
// above the threshold we skip the sampling and use expected counts directly.
std::vector<double> SampleHistogramCounts(const std::vector<double>& mass,
                                          double votes, util::Rng* rng) {
  std::vector<double> counts(mass.size(), 0.0);
  constexpr double kExactThreshold = 20000.0;
  if (votes >= kExactThreshold) {
    for (size_t b = 0; b < mass.size(); ++b) counts[b] = mass[b] * votes;
    return counts;
  }
  const int64_t draws = static_cast<int64_t>(votes);
  std::vector<double> cumulative(mass.size());
  double acc = 0.0;
  for (size_t b = 0; b < mass.size(); ++b) {
    acc += mass[b];
    cumulative[b] = acc;
  }
  for (int64_t d = 0; d < draws; ++d) {
    const double u = rng->Uniform() * acc;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), u);
    const size_t bin = std::min<size_t>(
        static_cast<size_t>(it - cumulative.begin()), mass.size() - 1);
    counts[bin] += 1.0;
  }
  // Guard against empty histograms for tiny vote counts.
  bool any = false;
  for (double c : counts) any = any || c > 0.0;
  if (!any) counts[mass.size() / 2] = 1.0;
  return counts;
}

}  // namespace

std::unique_ptr<HistogramDataset> MakeImdbLike(uint64_t seed) {
  util::Rng rng(seed ^ 0x1adb00ULL);
  constexpr int kNumItems = 1225;  // Table 5: movies with >= 100,000 votes
  std::vector<VoteHistogram> histograms;
  histograms.reserve(kNumItems);
  for (int i = 0; i < kNumItems; ++i) {
    // Popular-movie means cluster around ~7 with a ~1.2 spread, plus a thin
    // crust of "classics" clearly above the pack (real IMDb's top is sparse:
    // Shawshank, Godfather, ... separated by ~0.05-0.1 weighted-rank
    // points). Classics also show more rating consensus (smaller spread).
    const bool classic = rng.Bernoulli(0.025);
    const double mean =
        classic ? std::min(8.5 + std::fabs(rng.Gaussian(0.0, 0.55)), 9.7)
                : std::clamp(rng.Gaussian(7.0, 1.2), 2.0, 9.3);
    const double stddev =
        classic ? rng.Uniform(0.8, 1.2) : rng.Uniform(0.9, 1.6);
    const double spike_low = rng.Uniform(0.005, 0.03);
    const double spike_high = rng.Uniform(0.01, 0.05);
    // Vote counts: lognormal above the 100k filtering threshold; classics
    // are heavily voted (millions of votes), so the weighted-rank shrinkage
    // barely moves them and their mean-order separation survives in the
    // ground truth.
    const double votes =
        (classic ? 800000.0 : 100000.0) *
        std::exp(std::fabs(rng.Gaussian(0.0, 0.9)));
    VoteHistogram histogram;
    histogram.counts = SampleHistogramCounts(
        DiscretisedBellMass(mean, stddev, spike_low, spike_high), votes,
        &rng);
    histograms.push_back(std::move(histogram));
  }
  HistogramDataset::Options options;
  options.bin_values = TenBins();
  options.k_constant = 25000.0;  // IMDb weighted-rank constants (Section 6.1)
  options.c_constant = 6.9;
  return std::make_unique<HistogramDataset>("IMDb", std::move(histograms),
                                            std::move(options));
}

std::unique_ptr<HistogramDataset> MakeBookLike(uint64_t seed) {
  util::Rng rng(seed ^ 0x2b00c5ULL);
  constexpr int kNumItems = 537;  // Table 5: books with >= 50 votes
  std::vector<VoteHistogram> histograms;
  histograms.reserve(kNumItems);
  for (int i = 0; i < kNumItems; ++i) {
    const double mean = std::clamp(rng.Gaussian(7.2, 1.1), 1.5, 9.8);
    const double stddev = rng.Uniform(1.5, 2.8);
    const double spike_low = rng.Uniform(0.005, 0.04);
    const double spike_high = rng.Uniform(0.01, 0.06);
    // Few votes: histograms are genuinely noisy, like Book-Crossing.
    const double votes = 50.0 * std::exp(std::fabs(rng.Gaussian(0.0, 1.0)));
    VoteHistogram histogram;
    histogram.counts = SampleHistogramCounts(
        DiscretisedBellMass(mean, stddev, spike_low, spike_high), votes,
        &rng);
    histograms.push_back(std::move(histogram));
  }
  HistogramDataset::Options options;
  options.bin_values = TenBins();
  options.k_constant = 0.0;  // plain histogram mean (Section 6.1, Book)
  options.c_constant = 0.0;
  return std::make_unique<HistogramDataset>("Book", std::move(histograms),
                                            std::move(options));
}

std::unique_ptr<UserMatrixDataset> MakeJesterLike(uint64_t seed) {
  util::Rng rng(seed ^ 0x3e57e2ULL);
  constexpr int kNumItems = 100;   // Table 5: 100 jokes
  constexpr int kNumUsers = 2000;  // users who rated all the jokes
  // Latent joke quality on Jester's [-10, 10] scale.
  std::vector<double> quality(kNumItems);
  for (double& q : quality) q = std::clamp(rng.Gaussian(0.8, 3.2), -9.0, 9.0);
  std::vector<std::vector<double>> ratings(kNumUsers,
                                           std::vector<double>(kNumItems));
  for (int u = 0; u < kNumUsers; ++u) {
    const double scale = rng.Uniform(0.5, 1.5);  // humour sensitivity
    const double bias = rng.Gaussian(0.0, 1.5);  // generosity offset
    for (int i = 0; i < kNumItems; ++i) {
      const double noise = rng.Gaussian(0.0, 3.0);  // taste is noisy
      ratings[u][i] =
          std::clamp(scale * quality[i] + bias + noise, -10.0, 10.0);
    }
  }
  return std::make_unique<UserMatrixDataset>("Jester", std::move(ratings),
                                             -10.0, 10.0);
}

std::unique_ptr<PairRecordDataset> MakePhotoLike(uint64_t seed) {
  util::Rng rng(seed ^ 0x4f070ULL);
  constexpr int kNumItems = 200;       // Table 5: 200 campus photos
  constexpr int kRecordsPerPair = 12;  // ">= 10 judgment records per pair"
  constexpr int kGradesPerItem = 30;
  // Latent photo appeal.
  std::vector<double> scores(kNumItems);
  for (double& s : scores) s = rng.Gaussian(0.0, 1.0);

  // Map a raw preference onto the 8-point Likert scale used on CrowdFlower:
  // levels 0..7 -> v in {-1, -5/7, ..., +5/7, +1}; no neutral level.
  auto likert = [](double raw) {
    const double u = std::clamp(raw / 2.5, -1.0, 1.0);
    const int level =
        std::clamp(static_cast<int>(std::lround((u + 1.0) / 2.0 * 7.0)), 0, 7);
    return 2.0 * static_cast<double>(level) / 7.0 - 1.0;
  };

  std::vector<std::vector<std::vector<double>>> records(kNumItems);
  for (int i = 0; i < kNumItems; ++i) {
    records[i].resize(kNumItems - i - 1);
    for (int j = i + 1; j < kNumItems; ++j) {
      auto& bag = records[i][j - i - 1];
      bag.reserve(kRecordsPerPair);
      for (int r = 0; r < kRecordsPerPair; ++r) {
        const double raw = scores[i] - scores[j] + rng.Gaussian(0.0, 1.0);
        bag.push_back(likert(raw));
      }
    }
  }
  std::vector<std::vector<double>> graded(kNumItems);
  for (int i = 0; i < kNumItems; ++i) {
    graded[i].reserve(kGradesPerItem);
    for (int g = 0; g < kGradesPerItem; ++g) {
      const double raw = scores[i] + rng.Gaussian(0.0, 1.0);
      graded[i].push_back(std::clamp((raw + 3.0) / 6.0, 0.0, 1.0));
    }
  }
  return std::make_unique<PairRecordDataset>(
      "Photo", std::move(scores), std::move(records), std::move(graded));
}

std::unique_ptr<GaussianDataset> MakePeopleAgeLike(uint64_t seed) {
  util::Rng rng(seed ^ 0x5a6eULL);
  constexpr int kNumItems = 100;  // photos of women aged 1..100
  // Score = youth; the query "10 youngest" is then a plain top-k query.
  std::vector<double> scores(kNumItems);
  for (int i = 0; i < kNumItems; ++i) {
    scores[i] = 101.0 - static_cast<double>(i + 1);  // item i has age i+1
  }
  (void)rng;  // ages are fixed; only judgments are random
  // Humans estimate adult ages within roughly +-6 years; one preference
  // judgment differences two independent estimates (stddev ~ 6 * sqrt(2)).
  return std::make_unique<GaussianDataset>("PeopleAge", std::move(scores),
                                           /*noise_stddev=*/8.5,
                                           /*score_scale=*/100.0);
}

std::unique_ptr<GaussianDataset> MakeUniformLadder(int64_t n, double gap,
                                                   double noise_stddev) {
  CROWDTOPK_CHECK_GE(n, 1);
  std::vector<double> scores(n);
  for (int64_t i = 0; i < n; ++i) scores[i] = static_cast<double>(i) * gap;
  const double span = std::max(gap * static_cast<double>(n), 1.0);
  return std::make_unique<GaussianDataset>("Ladder", std::move(scores),
                                           noise_stddev, span);
}

std::unique_ptr<Dataset> MakeByName(const std::string& name, uint64_t seed) {
  if (name == "imdb") return MakeImdbLike(seed);
  if (name == "book") return MakeBookLike(seed);
  if (name == "jester") return MakeJesterLike(seed);
  if (name == "photo") return MakePhotoLike(seed);
  if (name == "peopleage") return MakePeopleAgeLike(seed);
  CROWDTOPK_CHECK(false);
  return nullptr;
}

}  // namespace crowdtopk::data
