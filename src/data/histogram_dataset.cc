#include "data/histogram_dataset.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace crowdtopk::data {

double VoteHistogram::Mean(const std::vector<double>& bin_values) const {
  CROWDTOPK_CHECK_EQ(counts.size(), bin_values.size());
  double weighted = 0.0;
  double total = 0.0;
  for (size_t b = 0; b < counts.size(); ++b) {
    weighted += counts[b] * bin_values[b];
    total += counts[b];
  }
  CROWDTOPK_CHECK_GT(total, 0.0);
  return weighted / total;
}

double WeightedRank(double mean, double votes, double k_constant,
                    double c_constant) {
  if (k_constant <= 0.0) return mean;
  return votes / (votes + k_constant) * mean +
         k_constant / (votes + k_constant) * c_constant;
}

HistogramDataset::HistogramDataset(std::string name,
                                   std::vector<VoteHistogram> histograms,
                                   Options options)
    : Dataset(std::move(name), {}),
      histograms_(std::move(histograms)),
      options_(std::move(options)) {
  CROWDTOPK_CHECK(!histograms_.empty());
  CROWDTOPK_CHECK_GE(options_.bin_values.size(), 2u);
  rating_min_ = options_.bin_values.front();
  rating_range_ = options_.bin_values.back() - options_.bin_values.front();
  CROWDTOPK_CHECK_GT(rating_range_, 0.0);

  std::vector<double> scores;
  scores.reserve(histograms_.size());
  cumulative_.reserve(histograms_.size());
  for (auto& histogram : histograms_) {
    CROWDTOPK_CHECK_EQ(histogram.counts.size(), options_.bin_values.size());
    double total = 0.0;
    std::vector<double> cumulative(histogram.counts.size());
    for (size_t b = 0; b < histogram.counts.size(); ++b) {
      CROWDTOPK_CHECK_GE(histogram.counts[b], 0.0);
      total += histogram.counts[b];
      cumulative[b] = total;
    }
    CROWDTOPK_CHECK_GT(total, 0.0);
    for (double& c : cumulative) c /= total;
    cumulative_.push_back(std::move(cumulative));
    histogram.total_votes = total;
    const double mean = histogram.Mean(options_.bin_values);
    scores.push_back(WeightedRank(mean, total, options_.k_constant,
                                  options_.c_constant));
  }
  SetTrueScores(std::move(scores));
}

double HistogramDataset::SampleRating(ItemId i, util::Rng* rng) const {
  const std::vector<double>& cumulative = cumulative_[i];
  const double u = rng->Uniform();
  const auto it =
      std::lower_bound(cumulative.begin(), cumulative.end(), u);
  const size_t bin = std::min<size_t>(
      static_cast<size_t>(it - cumulative.begin()), cumulative.size() - 1);
  return options_.bin_values[bin];
}

double HistogramDataset::PreferenceJudgment(ItemId i, ItemId j,
                                            util::Rng* rng) const {
  const double si = SampleRating(i, rng);
  const double sj = SampleRating(j, rng);
  return (si - sj) / rating_range_;
}

double HistogramDataset::GradedJudgment(ItemId i, util::Rng* rng) const {
  return (SampleRating(i, rng) - rating_min_) / rating_range_;
}

}  // namespace crowdtopk::data
