#include "data/pair_record_dataset.h"

#include <utility>

#include "util/check.h"

namespace crowdtopk::data {

PairRecordDataset::PairRecordDataset(
    std::string name, std::vector<double> true_scores,
    std::vector<std::vector<std::vector<double>>> records,
    std::vector<std::vector<double>> graded)
    : Dataset(std::move(name), std::move(true_scores)),
      records_(std::move(records)),
      graded_(std::move(graded)) {
  const int64_t n = num_items();
  CROWDTOPK_CHECK_EQ(static_cast<int64_t>(records_.size()), n);
  for (int64_t i = 0; i < n; ++i) {
    CROWDTOPK_CHECK_EQ(static_cast<int64_t>(records_[i].size()), n - i - 1);
    for (const auto& bag : records_[i]) {
      CROWDTOPK_CHECK(!bag.empty());
    }
  }
  if (!graded_.empty()) {
    CROWDTOPK_CHECK_EQ(static_cast<int64_t>(graded_.size()), n);
  }
}

int64_t PairRecordDataset::NumRecords(ItemId i, ItemId j) const {
  return static_cast<int64_t>(RecordsFor(i, j).size());
}

const std::vector<double>& PairRecordDataset::RecordsFor(ItemId i,
                                                         ItemId j) const {
  CROWDTOPK_CHECK_NE(i, j);
  const ItemId lo = i < j ? i : j;
  const ItemId hi = i < j ? j : i;
  return records_[lo][hi - lo - 1];
}

double PairRecordDataset::PreferenceJudgment(ItemId i, ItemId j,
                                             util::Rng* rng) const {
  CROWDTOPK_CHECK_NE(i, j);
  const ItemId lo = i < j ? i : j;
  const ItemId hi = i < j ? j : i;
  const auto& bag = records_[lo][hi - lo - 1];
  const double v = bag[rng->UniformInt(static_cast<int64_t>(bag.size()))];
  return i < j ? v : -v;
}

double PairRecordDataset::GradedJudgment(ItemId i, util::Rng* rng) const {
  CROWDTOPK_CHECK(!graded_.empty());
  const auto& bag = graded_[i];
  CROWDTOPK_CHECK(!bag.empty());
  return bag[rng->UniformInt(static_cast<int64_t>(bag.size()))];
}

}  // namespace crowdtopk::data
