// HistogramDataset: items carry discrete rating histograms (IMDb/Book style).
//
// Mirrors the paper's simulation protocol for IMDb and Book (Section 6.1):
// a preference judgment for (o_i, o_j) samples one rating from each item's
// voting histogram and returns the normalised difference; the ground truth
// is the weighted-rank formula applied to the histogram mean.

#ifndef CROWDTOPK_DATA_HISTOGRAM_DATASET_H_
#define CROWDTOPK_DATA_HISTOGRAM_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace crowdtopk::data {

// One item's voting record: a histogram over the rating bins plus the total
// vote count (used by the weighted-rank ground truth).
struct VoteHistogram {
  // counts[b] = number of votes with rating value bin_values[b].
  std::vector<double> counts;
  // Total number of votes (sum of counts; cached).
  double total_votes = 0.0;

  double Mean(const std::vector<double>& bin_values) const;
};

// IMDb's weighted-rank: (v/(v+K)) * mu + (K/(v+K)) * C.
double WeightedRank(double mean, double votes, double k_constant,
                    double c_constant);

class HistogramDataset : public Dataset {
 public:
  struct Options {
    // Rating values of the histogram bins, ascending (e.g. 1..10 for IMDb).
    std::vector<double> bin_values;
    // Weighted-rank constants; votes-weighted mean when k_constant == 0.
    double k_constant = 0.0;
    double c_constant = 0.0;
  };

  HistogramDataset(std::string name, std::vector<VoteHistogram> histograms,
                   Options options);

  const std::vector<double>& bin_values() const {
    return options_.bin_values;
  }
  const VoteHistogram& histogram(ItemId i) const { return histograms_[i]; }

  // Samples one rating for item i from its histogram (a bin value).
  double SampleRating(ItemId i, util::Rng* rng) const;

  // v(i, j) = (rating_i - rating_j) / rating_range, in [-1, 1].
  double PreferenceJudgment(ItemId i, ItemId j,
                            util::Rng* rng) const override;

  // A single sampled rating normalised to [0, 1].
  double GradedJudgment(ItemId i, util::Rng* rng) const override;

 private:
  std::vector<VoteHistogram> histograms_;
  Options options_;
  double rating_range_;
  double rating_min_;
  // Per-item cumulative bin probabilities for O(log bins) sampling.
  std::vector<std::vector<double>> cumulative_;
};

}  // namespace crowdtopk::data

#endif  // CROWDTOPK_DATA_HISTOGRAM_DATASET_H_
