#include "data/io.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "util/check.h"

namespace crowdtopk::data {

namespace {

// Minimal CSV splitting (no quoting: the formats are purely numeric).
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char ch : line) {
    if (ch == ',') {
      fields.push_back(current);
      current.clear();
    } else if (ch != '\r' && ch != '\n') {
      current += ch;
    }
  }
  fields.push_back(current);
  return fields;
}

util::StatusOr<std::vector<std::string>> ReadLines(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return util::Status::NotFound("cannot open " + path);
  }
  std::vector<std::string> lines;
  std::string current;
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), f) != nullptr) {
    current += buffer;
    if (!current.empty() && current.back() == '\n') {
      current.pop_back();
      lines.push_back(current);
      current.clear();
    }
  }
  if (!current.empty()) lines.push_back(current);
  std::fclose(f);
  return lines;
}

bool ParseDouble(const std::string& field, double* out) {
  char* end = nullptr;
  *out = std::strtod(field.c_str(), &end);
  return end != field.c_str() && *end == '\0';
}

bool ParseId(const std::string& field, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(field.c_str(), &end, 10);
  return end != field.c_str() && *end == '\0';
}

bool IsSkippable(const std::string& line) {
  return line.empty() || line[0] == '#';
}

}  // namespace

util::Status SaveHistogramCsv(const HistogramDataset& dataset,
                              const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return util::Status::Internal("cannot write " + path);
  std::fprintf(f, "item_id");
  for (size_t b = 0; b < dataset.bin_values().size(); ++b) {
    std::fprintf(f, ",votes_bin%zu", b + 1);
  }
  std::fprintf(f, "\n");
  for (ItemId i = 0; i < dataset.num_items(); ++i) {
    std::fprintf(f, "%d", i);
    for (double count : dataset.histogram(i).counts) {
      std::fprintf(f, ",%.6g", count);
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  return util::Status::Ok();
}

util::StatusOr<std::unique_ptr<HistogramDataset>> LoadHistogramCsv(
    const std::string& path, std::string dataset_name,
    HistogramDataset::Options options) {
  auto lines = ReadLines(path);
  if (!lines.ok()) return lines.status();
  const size_t bins = options.bin_values.size();
  if (bins < 2) {
    return util::Status::InvalidArgument("need at least 2 bin values");
  }
  std::vector<std::pair<int64_t, VoteHistogram>> rows;
  bool header_skipped = false;
  for (const std::string& line : *lines) {
    if (IsSkippable(line)) continue;
    if (!header_skipped) {
      header_skipped = true;  // first non-comment line is the header
      continue;
    }
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != bins + 1) {
      return util::Status::InvalidArgument("bad column count in: " + line);
    }
    int64_t id = 0;
    if (!ParseId(fields[0], &id) || id < 0) {
      return util::Status::InvalidArgument("bad item id in: " + line);
    }
    VoteHistogram histogram;
    histogram.counts.resize(bins);
    for (size_t b = 0; b < bins; ++b) {
      if (!ParseDouble(fields[b + 1], &histogram.counts[b]) ||
          histogram.counts[b] < 0) {
        return util::Status::InvalidArgument("bad vote count in: " + line);
      }
    }
    rows.emplace_back(id, std::move(histogram));
  }
  if (rows.empty()) {
    return util::Status::InvalidArgument("no data rows in " + path);
  }
  std::vector<VoteHistogram> histograms(rows.size());
  std::vector<bool> seen(rows.size(), false);
  for (auto& [id, histogram] : rows) {
    if (id >= static_cast<int64_t>(rows.size()) || seen[id]) {
      return util::Status::InvalidArgument(
          "item ids must be the dense range 0..N-1 exactly once");
    }
    seen[id] = true;
    histograms[id] = std::move(histogram);
  }
  return std::make_unique<HistogramDataset>(
      std::move(dataset_name), std::move(histograms), std::move(options));
}

util::Status SaveScoresCsv(const Dataset& dataset, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return util::Status::Internal("cannot write " + path);
  std::fprintf(f, "item_id,score\n");
  for (ItemId i = 0; i < dataset.num_items(); ++i) {
    std::fprintf(f, "%d,%.17g\n", i, dataset.TrueScore(i));
  }
  std::fclose(f);
  return util::Status::Ok();
}

util::StatusOr<std::vector<double>> LoadScoresCsv(const std::string& path) {
  auto lines = ReadLines(path);
  if (!lines.ok()) return lines.status();
  std::vector<std::pair<int64_t, double>> rows;
  bool header_skipped = false;
  for (const std::string& line : *lines) {
    if (IsSkippable(line)) continue;
    if (!header_skipped) {
      header_skipped = true;
      continue;
    }
    const std::vector<std::string> fields = SplitCsvLine(line);
    int64_t id = 0;
    double score = 0.0;
    if (fields.size() != 2 || !ParseId(fields[0], &id) || id < 0 ||
        !ParseDouble(fields[1], &score)) {
      return util::Status::InvalidArgument("bad score row: " + line);
    }
    rows.emplace_back(id, score);
  }
  if (rows.empty()) {
    return util::Status::InvalidArgument("no data rows in " + path);
  }
  std::vector<double> scores(rows.size(), 0.0);
  std::vector<bool> seen(rows.size(), false);
  for (const auto& [id, score] : rows) {
    if (id >= static_cast<int64_t>(rows.size()) || seen[id]) {
      return util::Status::InvalidArgument(
          "item ids must be the dense range 0..N-1 exactly once");
    }
    seen[id] = true;
    scores[id] = score;
  }
  return scores;
}

util::Status SavePairwiseCsv(const PairRecordDataset& dataset,
                             const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return util::Status::Internal("cannot write " + path);
  std::fprintf(f, "left_id,right_id,preference\n");
  for (ItemId i = 0; i < dataset.num_items(); ++i) {
    for (ItemId j = i + 1; j < dataset.num_items(); ++j) {
      for (double v : dataset.RecordsFor(i, j)) {
        std::fprintf(f, "%d,%d,%.17g\n", i, j, v);
      }
    }
  }
  std::fclose(f);
  return util::Status::Ok();
}

util::StatusOr<std::unique_ptr<PairRecordDataset>> LoadPairwiseCsv(
    const std::string& path, std::string dataset_name,
    std::vector<double> true_scores) {
  auto lines = ReadLines(path);
  if (!lines.ok()) return lines.status();
  const int64_t n = static_cast<int64_t>(true_scores.size());
  if (n < 2) {
    return util::Status::InvalidArgument("need at least 2 item scores");
  }
  std::vector<std::vector<std::vector<double>>> records(n);
  for (int64_t i = 0; i < n; ++i) records[i].resize(n - i - 1);
  bool header_skipped = false;
  for (const std::string& line : *lines) {
    if (IsSkippable(line)) continue;
    if (!header_skipped) {
      header_skipped = true;
      continue;
    }
    const std::vector<std::string> fields = SplitCsvLine(line);
    int64_t left = 0, right = 0;
    double preference = 0.0;
    if (fields.size() != 3 || !ParseId(fields[0], &left) ||
        !ParseId(fields[1], &right) || !ParseDouble(fields[2], &preference)) {
      return util::Status::InvalidArgument("bad judgment row: " + line);
    }
    if (left < 0 || left >= n || right < 0 || right >= n || left == right) {
      return util::Status::InvalidArgument("bad item ids in: " + line);
    }
    if (preference < -1.0 || preference > 1.0) {
      return util::Status::InvalidArgument("preference out of [-1,1]: " +
                                           line);
    }
    const int64_t lo = std::min(left, right);
    const int64_t hi = std::max(left, right);
    records[lo][hi - lo - 1].push_back(left == lo ? preference : -preference);
  }
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      if (records[i][j - i - 1].empty()) {
        return util::Status::InvalidArgument(
            "no records for pair (" + std::to_string(i) + ", " +
            std::to_string(j) + ")");
      }
    }
  }
  return std::make_unique<PairRecordDataset>(
      std::move(dataset_name), std::move(true_scores), std::move(records),
      std::vector<std::vector<double>>{});
}

}  // namespace crowdtopk::data
