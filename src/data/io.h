// Dataset (de)serialisation: CSV import/export.
//
// Lets downstream users run the library on their own data without writing
// C++: a rating-histogram CSV becomes a HistogramDataset (IMDb/Book style),
// and a pairwise judgment log becomes a PairRecordDataset (Photo style).
// Generated datasets can be exported in the same formats for inspection or
// plotting.
//
// Formats (header row required, '#' lines ignored):
//
//   Histograms:  item_id,votes_bin1,votes_bin2,...,votes_binB
//     bin values are supplied separately (e.g. 1..10); item ids must be the
//     dense range 0..N-1 in any order.
//
//   Pairwise log: left_id,right_id,preference
//     preference in [-1, 1], positive favours left_id. Every unordered pair
//     must occur at least once. True scores (for evaluation only) can be
//     loaded from an optional  item_id,score  file.

#ifndef CROWDTOPK_DATA_IO_H_
#define CROWDTOPK_DATA_IO_H_

#include <memory>
#include <string>
#include <vector>

#include "data/histogram_dataset.h"
#include "data/pair_record_dataset.h"
#include "util/status.h"

namespace crowdtopk::data {

// Writes the dataset's histograms as CSV. Returns an error on I/O failure.
util::Status SaveHistogramCsv(const HistogramDataset& dataset,
                              const std::string& path);

// Loads a histogram CSV (see format above).
util::StatusOr<std::unique_ptr<HistogramDataset>> LoadHistogramCsv(
    const std::string& path, std::string dataset_name,
    HistogramDataset::Options options);

// Writes `item_id,score` rows of the ground truth.
util::Status SaveScoresCsv(const Dataset& dataset, const std::string& path);

// Loads `item_id,score` rows; result[i] = score of item i. Ids must cover
// 0..N-1 exactly once.
util::StatusOr<std::vector<double>> LoadScoresCsv(const std::string& path);

// Writes every stored pairwise record as `left_id,right_id,preference`.
util::Status SavePairwiseCsv(const PairRecordDataset& dataset,
                             const std::string& path);

// Loads a pairwise judgment log. `true_scores` supplies the evaluation
// ground truth (its size fixes N). Fails if any unordered pair has no
// records or any id is out of range.
util::StatusOr<std::unique_ptr<PairRecordDataset>> LoadPairwiseCsv(
    const std::string& path, std::string dataset_name,
    std::vector<double> true_scores);

}  // namespace crowdtopk::data

#endif  // CROWDTOPK_DATA_IO_H_
