#include "data/gaussian_dataset.h"

#include <algorithm>

#include "util/check.h"

namespace crowdtopk::data {

GaussianDataset::GaussianDataset(std::string name,
                                 std::vector<double> true_scores,
                                 double noise_stddev, double score_scale)
    : Dataset(std::move(name), std::move(true_scores)),
      noise_stddev_(noise_stddev),
      score_scale_(score_scale) {
  CROWDTOPK_CHECK_GE(noise_stddev, 0.0);
  CROWDTOPK_CHECK_GT(score_scale, 0.0);
  score_min_ = TrueScore(TrueOrder().back());
  score_max_ = TrueScore(TrueOrder().front());
}

double GaussianDataset::PreferenceJudgment(ItemId i, ItemId j,
                                           util::Rng* rng) const {
  const double raw =
      TrueScore(i) - TrueScore(j) + rng->Gaussian(0.0, noise_stddev_);
  return std::clamp(raw / score_scale_, -1.0, 1.0);
}

double GaussianDataset::GradedJudgment(ItemId i, util::Rng* rng) const {
  const double range = std::max(score_max_ - score_min_, 1e-12);
  const double raw = TrueScore(i) + rng->Gaussian(0.0, noise_stddev_);
  return std::clamp((raw - score_min_) / range, 0.0, 1.0);
}

}  // namespace crowdtopk::data
