// UserMatrixDataset: a dense user x item rating matrix (Jester style).
//
// Mirrors the paper's Jester protocol (Section 6.1): a preference judgment
// picks one random user and differences her ratings of the two items, so
// both scores in a judgment come from the same (simulated) worker and any
// per-worker bias cancels. The ground truth is the per-item mean rating.

#ifndef CROWDTOPK_DATA_USER_MATRIX_DATASET_H_
#define CROWDTOPK_DATA_USER_MATRIX_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace crowdtopk::data {

class UserMatrixDataset : public Dataset {
 public:
  // ratings[u][i] = rating of item i by user u, within
  // [rating_min, rating_max]. Every user rated every item (Jester's
  // filtering criterion: "users voted all the jokes").
  UserMatrixDataset(std::string name,
                    std::vector<std::vector<double>> ratings,
                    double rating_min, double rating_max);

  int64_t num_users() const {
    return static_cast<int64_t>(ratings_.size());
  }

  double PreferenceJudgment(ItemId i, ItemId j,
                            util::Rng* rng) const override;

  double GradedJudgment(ItemId i, util::Rng* rng) const override;

 private:
  std::vector<std::vector<double>> ratings_;
  double rating_min_;
  double rating_range_;
};

}  // namespace crowdtopk::data

#endif  // CROWDTOPK_DATA_USER_MATRIX_DATASET_H_
