// Synthetic generators standing in for the paper's evaluation datasets.
//
// The real IMDb / Book-Crossing / Jester / Photo / PeopleAge data is not
// redistributable; these generators build statistically analogous datasets
// (see DESIGN.md, "Substitutions") with fixed sizes matching Table 5:
//
//   IMDb-like   1225 items, 10-bin vote histograms, weighted-rank ground
//               truth (K = 25000, C = 6.9)
//   Book-like    537 items, 10-bin histograms with few votes (>= 50)
//   Jester-like  100 items, dense simulated user x joke rating matrix
//   Photo-like   200 items, pre-materialised 8-point-Likert record database
//                with >= 10 records per pair
//   PeopleAge    100 items, latent score = youth, Gaussian age-guessing noise
//
// All generators are deterministic in `seed`.

#ifndef CROWDTOPK_DATA_GENERATORS_H_
#define CROWDTOPK_DATA_GENERATORS_H_

#include <cstdint>
#include <memory>

#include "data/gaussian_dataset.h"
#include "data/histogram_dataset.h"
#include "data/pair_record_dataset.h"
#include "data/user_matrix_dataset.h"

namespace crowdtopk::data {

std::unique_ptr<HistogramDataset> MakeImdbLike(uint64_t seed);
std::unique_ptr<HistogramDataset> MakeBookLike(uint64_t seed);
std::unique_ptr<UserMatrixDataset> MakeJesterLike(uint64_t seed);
std::unique_ptr<PairRecordDataset> MakePhotoLike(uint64_t seed);
std::unique_ptr<GaussianDataset> MakePeopleAgeLike(uint64_t seed);

// Test helper: n items with true scores {0, gap, 2*gap, ...} (item id i has
// score i * gap, so the top-k set is the k highest ids) and Gaussian
// preference noise of the given stddev on the score scale.
std::unique_ptr<GaussianDataset> MakeUniformLadder(int64_t n, double gap,
                                                   double noise_stddev);

// Builds the dataset named by `name` ("imdb", "book", "jester", "photo",
// "peopleage"); CHECK-fails on unknown names.
std::unique_ptr<Dataset> MakeByName(const std::string& name, uint64_t seed);

}  // namespace crowdtopk::data

#endif  // CROWDTOPK_DATA_GENERATORS_H_
