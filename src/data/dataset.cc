#include "data/dataset.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace crowdtopk::data {

Dataset::Dataset(std::string name, std::vector<double> true_scores)
    : name_(std::move(name)), true_scores_(std::move(true_scores)) {
  RebuildOrder();
}

void Dataset::SetTrueScores(std::vector<double> true_scores) {
  true_scores_ = std::move(true_scores);
  RebuildOrder();
}

void Dataset::RebuildOrder() {
  const int64_t n = static_cast<int64_t>(true_scores_.size());
  true_order_.resize(n);
  std::iota(true_order_.begin(), true_order_.end(), 0);
  std::stable_sort(true_order_.begin(), true_order_.end(),
                   [&](ItemId a, ItemId b) {
                     if (true_scores_[a] != true_scores_[b]) {
                       return true_scores_[a] > true_scores_[b];
                     }
                     return a < b;
                   });
  true_rank_.assign(n, 0);
  for (int64_t pos = 0; pos < n; ++pos) {
    true_rank_[true_order_[pos]] = pos + 1;
  }
}

std::vector<ItemId> Dataset::TrueTopK(int64_t k) const {
  CROWDTOPK_CHECK(k >= 0 && k <= num_items());
  return std::vector<ItemId>(true_order_.begin(), true_order_.begin() + k);
}

}  // namespace crowdtopk::data
