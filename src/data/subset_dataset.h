// SubsetDataset: a view over a subset of another dataset's items.
//
// The scalability experiments (Fig. 9, "effect of item cardinality") run the
// algorithms on N-item random subsets of each dataset; SubsetDataset remaps
// dense local ids onto the parent's ids and delegates all judgments.

#ifndef CROWDTOPK_DATA_SUBSET_DATASET_H_
#define CROWDTOPK_DATA_SUBSET_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace crowdtopk::data {

class SubsetDataset : public Dataset {
 public:
  // `parent` must outlive the subset. `parent_ids` lists the retained items;
  // local item `i` maps to parent_ids[i]. Ids must be distinct and valid.
  SubsetDataset(const Dataset* parent, std::vector<ItemId> parent_ids);

  ItemId ToParentId(ItemId local) const { return parent_ids_[local]; }

  // Local-to-parent id table; what a serve::QueryRequest passes as
  // cache_item_ids so overlapping subset queries share cached judgments in
  // the parent's id space.
  const std::vector<ItemId>& parent_ids() const { return parent_ids_; }

  double PreferenceJudgment(ItemId i, ItemId j,
                            util::Rng* rng) const override;
  double BinaryJudgment(ItemId i, ItemId j, util::Rng* rng) const override;
  double GradedJudgment(ItemId i, util::Rng* rng) const override;

 private:
  const Dataset* parent_;
  std::vector<ItemId> parent_ids_;
};

// Convenience: a subset of `n` items drawn uniformly without replacement.
std::unique_ptr<SubsetDataset> RandomSubset(const Dataset* parent, int64_t n,
                                            util::Rng* rng);

}  // namespace crowdtopk::data

#endif  // CROWDTOPK_DATA_SUBSET_DATASET_H_
