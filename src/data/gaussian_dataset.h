// GaussianDataset: latent scores with Gaussian preference noise.
//
// The simplest oracle matching the paper's modelling assumption
// (Section 3.1): v(o_i, o_j) ~ N(mu_ij, sigma^2) with mu_ij proportional to
// s(o_i) - s(o_j). Used for the PeopleAge interactive experiment (latent
// score = youth) and heavily in unit/property tests, where exact control of
// the preference distribution is needed.

#ifndef CROWDTOPK_DATA_GAUSSIAN_DATASET_H_
#define CROWDTOPK_DATA_GAUSSIAN_DATASET_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace crowdtopk::data {

class GaussianDataset : public Dataset {
 public:
  // true_scores: latent item scores (any real scale).
  // noise_stddev: std-dev of a single preference judgment, on the *score*
  //   scale, before normalisation.
  // score_scale: preferences are (s_i - s_j + noise) / score_scale, clamped
  //   to [-1, 1]; choose score_scale >= max score gap so clamping is rare.
  GaussianDataset(std::string name, std::vector<double> true_scores,
                  double noise_stddev, double score_scale);

  double noise_stddev() const { return noise_stddev_; }

  double PreferenceJudgment(ItemId i, ItemId j,
                            util::Rng* rng) const override;

  double GradedJudgment(ItemId i, util::Rng* rng) const override;

 private:
  double noise_stddev_;
  double score_scale_;
  double score_min_;
  double score_max_;
};

}  // namespace crowdtopk::data

#endif  // CROWDTOPK_DATA_GAUSSIAN_DATASET_H_
