#include "data/subset_dataset.h"

#include <numeric>

#include "util/check.h"

namespace crowdtopk::data {

namespace {
std::vector<double> SubsetScores(const Dataset* parent,
                                 const std::vector<ItemId>& parent_ids) {
  CROWDTOPK_CHECK(parent != nullptr);
  std::vector<double> scores;
  scores.reserve(parent_ids.size());
  for (ItemId id : parent_ids) {
    CROWDTOPK_CHECK(id >= 0 && id < parent->num_items());
    scores.push_back(parent->TrueScore(id));
  }
  return scores;
}
}  // namespace

SubsetDataset::SubsetDataset(const Dataset* parent,
                             std::vector<ItemId> parent_ids)
    : Dataset(parent->name() + "-subset", SubsetScores(parent, parent_ids)),
      parent_(parent),
      parent_ids_(std::move(parent_ids)) {}

double SubsetDataset::PreferenceJudgment(ItemId i, ItemId j,
                                         util::Rng* rng) const {
  return parent_->PreferenceJudgment(parent_ids_[i], parent_ids_[j], rng);
}

double SubsetDataset::BinaryJudgment(ItemId i, ItemId j,
                                     util::Rng* rng) const {
  return parent_->BinaryJudgment(parent_ids_[i], parent_ids_[j], rng);
}

double SubsetDataset::GradedJudgment(ItemId i, util::Rng* rng) const {
  return parent_->GradedJudgment(parent_ids_[i], rng);
}

std::unique_ptr<SubsetDataset> RandomSubset(const Dataset* parent, int64_t n,
                                            util::Rng* rng) {
  CROWDTOPK_CHECK(n >= 1 && n <= parent->num_items());
  std::vector<ItemId> all(parent->num_items());
  std::iota(all.begin(), all.end(), 0);
  rng->Shuffle(&all);
  all.resize(n);
  return std::make_unique<SubsetDataset>(parent, std::move(all));
}

}  // namespace crowdtopk::data
