#include "judgment/graded.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace crowdtopk::judgment {

std::vector<double> CollectMeanGrades(const std::vector<crowd::ItemId>& items,
                                      int64_t workload_per_item,
                                      int64_t batch_size,
                                      crowd::CrowdPlatform* platform) {
  CROWDTOPK_CHECK_GE(workload_per_item, 1);
  CROWDTOPK_CHECK_GE(batch_size, 1);
  std::vector<double> sums(items.size(), 0.0);
  std::vector<double> scratch;
  int64_t remaining = workload_per_item;
  while (remaining > 0) {
    const int64_t batch = std::min(batch_size, remaining);
    for (size_t index = 0; index < items.size(); ++index) {
      scratch.clear();
      platform->CollectGrades(items[index], batch, &scratch);
      for (double g : scratch) sums[index] += g;
    }
    platform->NextRound();
    remaining -= batch;
  }
  for (double& s : sums) s /= static_cast<double>(workload_per_item);
  return sums;
}

std::vector<crowd::ItemId> RankByGrades(
    const std::vector<crowd::ItemId>& items,
    const std::vector<double>& mean_grades) {
  CROWDTOPK_CHECK_EQ(items.size(), mean_grades.size());
  std::vector<size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (mean_grades[a] != mean_grades[b]) {
      return mean_grades[a] > mean_grades[b];
    }
    return items[a] < items[b];
  });
  std::vector<crowd::ItemId> ranked;
  ranked.reserve(items.size());
  for (size_t index : order) ranked.push_back(items[index]);
  return ranked;
}

}  // namespace crowdtopk::judgment
