#include "judgment/comparison.h"

#include <algorithm>
#include <cmath>

#include "stats/anytime.h"
#include "stats/hoeffding.h"
#include "util/check.h"

namespace crowdtopk::judgment {

double EffectiveAlpha(const ComparisonOptions& options) {
  if (!options.one_sided) return options.alpha;
  return std::min(2.0 * options.alpha, 0.5);
}

ComparisonSession::ComparisonSession(ItemId left, ItemId right,
                                     const ComparisonOptions* options,
                                     stats::TCriticalCache* t_cache)
    : left_(left), right_(right), options_(options), t_cache_(t_cache) {
  CROWDTOPK_CHECK(options != nullptr);
  CROWDTOPK_CHECK(t_cache != nullptr);
  CROWDTOPK_CHECK_NE(left, right);
  CROWDTOPK_CHECK_GE(options->budget, 1);
  CROWDTOPK_CHECK_GE(options->min_workload, 2);
  CROWDTOPK_CHECK_GE(options->batch_size, 1);
}

void ComparisonSession::Step(crowd::CrowdPlatform* platform, int64_t batch) {
  if (finished_) return;
  CROWDTOPK_CHECK_GE(batch, 1);
  int64_t to_buy = batch;
  if (bag_.count() == 0) {
    // Cold start: the first publication is at least I microtasks
    // (Algorithm 1 line 1).
    to_buy = std::max(to_buy, options_->min_workload);
  }
  to_buy = std::min(to_buy, options_->budget - bag_.count());
  CROWDTOPK_CHECK_GE(to_buy, 0);
  if (to_buy > 0) {
    Purchase(platform, to_buy);
    if (first_stage_count_ == 0 &&
        bag_.count() >= options_->min_workload) {
      // Freeze Stein's first-stage variance estimate.
      first_stage_count_ = bag_.count();
      first_stage_sd_ = bag_.StdDev();
    }
  }
  Evaluate();
  if (!finished_ && bag_.count() >= options_->budget) {
    // Budget exhausted: indistinguishable under budget B.
    finished_ = true;
    outcome_ = ComparisonOutcome::kTie;
  }
}

ComparisonOutcome ComparisonSession::RunToCompletion(
    crowd::CrowdPlatform* platform) {
  while (!finished_) {
    Step(platform, options_->batch_size);
    platform->NextRound();
  }
  return outcome_;
}

void ComparisonSession::RefineWithExtraSamples(crowd::CrowdPlatform* platform,
                                               int64_t count) {
  CROWDTOPK_CHECK_GE(count, 0);
  if (count == 0) return;
  Purchase(platform, count);
}

void ComparisonSession::Purchase(crowd::CrowdPlatform* platform,
                                 int64_t count) {
  // Tag the purchase with this session's confidence-process iteration so
  // traces can reconstruct the stopping rule's convergence profile.
  telemetry::TraceRecorder* recorder = platform->recorder();
  if (recorder != nullptr) {
    recorder->SetPurchaseIteration(purchase_iterations_);
  }
  scratch_.clear();
  if (options_->estimator == Estimator::kHoeffding) {
    platform->CollectBinaryVotes(left_, right_, count, &scratch_);
  } else {
    platform->CollectPreferences(left_, right_, count, &scratch_);
  }
  if (recorder != nullptr) recorder->SetPurchaseIteration(-1);
  ++purchase_iterations_;
  for (double v : scratch_) bag_.Add(v);
}

void ComparisonSession::AddSampleForTest(double value) {
  CROWDTOPK_CHECK(!finished_);
  bag_.Add(value);
  if (first_stage_count_ == 0 && bag_.count() >= options_->min_workload) {
    first_stage_count_ = bag_.count();
    first_stage_sd_ = bag_.StdDev();
  }
  if (bag_.count() >= options_->min_workload) {
    Evaluate();
  }
  if (!finished_ && bag_.count() >= options_->budget) {
    finished_ = true;
    outcome_ = ComparisonOutcome::kTie;
  }
}

void ComparisonSession::SeedFromCache(int64_t count, double mean, double m2,
                                      int64_t first_stage_count,
                                      double first_stage_sd) {
  CROWDTOPK_CHECK(!finished_);
  CROWDTOPK_CHECK_EQ(bag_.count(), 0);
  CROWDTOPK_CHECK_GE(count, 1);
  bag_.Restore(count, mean, m2);
  seeded_count_ = count;
  first_stage_count_ = first_stage_count;
  first_stage_sd_ = first_stage_sd;
  if (first_stage_count_ == 0 && bag_.count() >= options_->min_workload) {
    // Donor never froze a first stage (it was seeded below I and abandoned);
    // freeze from the restored bag, as Step() would after a purchase.
    first_stage_count_ = bag_.count();
    first_stage_sd_ = bag_.StdDev();
  }
  if (bag_.count() >= options_->min_workload) {
    Evaluate();
  }
  if (!finished_ && bag_.count() >= options_->budget) {
    finished_ = true;
    outcome_ = ComparisonOutcome::kTie;
  }
}

void ComparisonSession::ForceOutcomeFromCache(ComparisonOutcome outcome) {
  CROWDTOPK_CHECK(!finished_);
  finished_ = true;
  outcome_ = outcome;
}

void ComparisonSession::Evaluate() {
  if (bag_.count() < 2) return;
  bool excludes_zero = false;
  switch (options_->estimator) {
    case Estimator::kStudent:
      excludes_zero = IntervalExcludesZeroStudent();
      break;
    case Estimator::kStein:
      excludes_zero = IntervalExcludesZeroStein();
      break;
    case Estimator::kHoeffding:
      excludes_zero = IntervalExcludesZeroHoeffding();
      break;
    case Estimator::kAnytime:
      excludes_zero = IntervalExcludesZeroAnytime();
      break;
  }
  if (excludes_zero) {
    finished_ = true;
    outcome_ = bag_.Mean() > 0.0 ? ComparisonOutcome::kLeftWins
                                 : ComparisonOutcome::kRightWins;
  }
}

bool ComparisonSession::IntervalExcludesZeroStudent() const {
  const double mean = bag_.Mean();
  if (mean == 0.0) return false;
  const int64_t n = bag_.count();
  const double sd = bag_.StdDev();
  // Degenerate bag (all samples identical and nonzero): zero-width interval.
  if (sd == 0.0) return true;
  const double half_width =
      t_cache_->Get(n - 1) * sd / std::sqrt(static_cast<double>(n));
  return std::fabs(mean) > half_width;
}

bool ComparisonSession::IntervalExcludesZeroStein() const {
  // Algorithm 5 with Stein's genuine two-stage variance treatment: the
  // standard deviation S_y and the degrees of freedom y-1 are frozen at the
  // first stage (the cold-start bag of I samples) -- this is what makes
  // Stein's required sample size independent of the (unknown) variance.
  // The interval half-width L = |mean| - epsilon tracks the running mean
  // (the progressive adaptation of Appendix E); conclude once
  // S_y^2 * L^-2 * t^2_{1-alpha/2, y-1} <= n. Note: with S and the dof
  // updated every step instead (a literal reading of Algorithm 5 lines 6-8),
  // the rule becomes algebraically identical to StudentComp.
  const double mean = bag_.Mean();
  const double half_width = std::fabs(mean) - options_->stein_epsilon;
  if (half_width <= 0.0) return false;
  const int64_t n = bag_.count();
  if (first_stage_count_ < 2) return false;  // no variance estimate yet
  const double sd = first_stage_sd_;
  if (sd == 0.0) return true;
  const double t = t_cache_->Get(first_stage_count_ - 1);
  const double required = sd * sd * t * t / (half_width * half_width);
  return required <= static_cast<double>(n);
}

bool ComparisonSession::IntervalExcludesZeroHoeffding() const {
  const double mean = bag_.Mean();
  if (mean == 0.0) return false;
  // Binary votes live in {-1, +1}: range 2. EffectiveAlpha doubles alpha in
  // one-sided mode, turning ln(2/alpha) into ln(1/alpha) inside the bound.
  const double half_width = stats::HoeffdingHalfWidth(
      bag_.count(), 2.0, EffectiveAlpha(*options_));
  return std::fabs(mean) > half_width;
}

bool ComparisonSession::IntervalExcludesZeroAnytime() const {
  const double mean = bag_.Mean();
  if (mean == 0.0) return false;
  const double sd = bag_.StdDev();
  if (sd == 0.0) return true;
  const double half_width = stats::AnytimeHalfWidth(
      bag_.count(), sd, EffectiveAlpha(*options_));
  return std::fabs(mean) > half_width;
}

ComparisonOutcome RunComparison(ItemId i, ItemId j,
                                const ComparisonOptions& options,
                                stats::TCriticalCache* t_cache,
                                crowd::CrowdPlatform* platform,
                                int64_t* workload_out) {
  CROWDTOPK_DCHECK(t_cache->alpha() == EffectiveAlpha(options));
  ComparisonSession session(i, j, &options, t_cache);
  const ComparisonOutcome outcome = session.RunToCompletion(platform);
  if (workload_out != nullptr) *workload_out = session.workload();
  return outcome;
}

}  // namespace crowdtopk::judgment
