// ComparisonCache: persistent, reusable judgment state per item pair.
//
// "All human preference feedback can be stored and the results of
// comparisons are always reusable" (Section 5.3): the cache keys sessions by
// the unordered item pair, so re-comparing a pair during sorting costs
// nothing if it was already resolved during partitioning, and partially
// funded comparisons resume instead of restarting.
//
// When the platform carries a cache::CacheClient (the cross-query judgment
// cache, src/cache), the per-query cache additionally consults the shared
// store on first touch of a pair — seeding or finishing the session from a
// memoised verdict — and publishes its own finished sessions back on
// destruction. Algorithms are oblivious: they see only ComparisonSessions.

#ifndef CROWDTOPK_JUDGMENT_CACHE_H_
#define CROWDTOPK_JUDGMENT_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "cache/cache_client.h"
#include "crowd/platform.h"
#include "crowd/types.h"
#include "judgment/comparison.h"
#include "stats/student_t.h"
#include "telemetry/recorder.h"

namespace crowdtopk::judgment {

class ComparisonCache {
 public:
  // When `platform` is non-null and carries a cache::CacheClient, sessions
  // are seeded from / published to the shared cross-query cache. The client
  // must outlive this object (the serving layer guarantees both live for the
  // whole query).
  explicit ComparisonCache(const ComparisonOptions& options,
                           crowd::CrowdPlatform* platform = nullptr);

  // Publishes every finished, self-funded session to the shared cache (a
  // no-op without one), in canonical key order for determinism.
  ~ComparisonCache();

  const ComparisonOptions& options() const { return options_; }
  stats::TCriticalCache* t_cache() { return &t_cache_; }

  // The session for {i, j} in canonical orientation (smaller id on the
  // left), creating it on first use.
  ComparisonSession* GetSession(ItemId i, ItemId j);

  // The session for {i, j} if one exists, else nullptr. Never creates.
  const ComparisonSession* FindSession(ItemId i, ItemId j) const;

  // Runs COMP(i, j) to completion (resuming any prior funding), accounting
  // one batch round per purchase. The outcome is oriented for (i, j): a
  // kLeftWins return means i beats j. Already-finished pairs cost nothing.
  ComparisonOutcome Compare(ItemId i, ItemId j,
                            crowd::CrowdPlatform* platform);

  // Estimated preference mean oriented for (i, j): positive means i is
  // preferred. Returns 0 if the pair has never been sampled.
  double EstimatedMean(ItemId i, ItemId j) const;

  // Estimated stddev of one judgment of the pair (0 if never sampled).
  double EstimatedStdDev(ItemId i, ItemId j) const;

  // Workload already spent on the pair.
  int64_t Workload(ItemId i, ItemId j) const;

  // Best guess of "i beats j": the confirmed outcome when finished with a
  // decision, otherwise the sign of the estimated mean (random questions are
  // avoided: an unsampled pair reports false deterministically).
  bool LikelyBetter(ItemId i, ItemId j) const;

  // Number of distinct pairs ever touched.
  int64_t num_pairs() const { return static_cast<int64_t>(sessions_.size()); }

 private:
  static uint64_t Key(ItemId lo, ItemId hi) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(lo)) << 32) |
           static_cast<uint32_t>(hi);
  }

  // Consults the shared cache for a freshly created session (hit / top-up /
  // inferred verdict); no-op when no client is attached.
  void ConsultSharedCache(ComparisonSession* session);

  ComparisonOptions options_;
  stats::TCriticalCache t_cache_;
  std::unordered_map<uint64_t, std::unique_ptr<ComparisonSession>> sessions_;
  cache::CacheClient* shared_ = nullptr;      // optional, not owned
  telemetry::TraceRecorder* recorder_ = nullptr;  // optional, not owned
};

}  // namespace crowdtopk::judgment

#endif  // CROWDTOPK_JUDGMENT_CACHE_H_
