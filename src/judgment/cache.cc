#include "judgment/cache.h"

#include <algorithm>

#include "util/check.h"

namespace crowdtopk::judgment {

ComparisonCache::ComparisonCache(const ComparisonOptions& options)
    : options_(options), t_cache_(EffectiveAlpha(options)) {}

ComparisonSession* ComparisonCache::GetSession(ItemId i, ItemId j) {
  CROWDTOPK_CHECK_NE(i, j);
  const ItemId lo = std::min(i, j);
  const ItemId hi = std::max(i, j);
  auto& slot = sessions_[Key(lo, hi)];
  if (slot == nullptr) {
    slot = std::make_unique<ComparisonSession>(lo, hi, &options_, &t_cache_);
  }
  return slot.get();
}

const ComparisonSession* ComparisonCache::FindSession(ItemId i,
                                                      ItemId j) const {
  CROWDTOPK_CHECK_NE(i, j);
  const ItemId lo = std::min(i, j);
  const ItemId hi = std::max(i, j);
  const auto it = sessions_.find(Key(lo, hi));
  return it == sessions_.end() ? nullptr : it->second.get();
}

ComparisonOutcome ComparisonCache::Compare(ItemId i, ItemId j,
                                           crowd::CrowdPlatform* platform) {
  ComparisonSession* session = GetSession(i, j);
  ComparisonOutcome outcome = session->Finished()
                                  ? session->outcome()
                                  : session->RunToCompletion(platform);
  if (i != session->left()) outcome = crowd::Reverse(outcome);
  return outcome;
}

double ComparisonCache::EstimatedMean(ItemId i, ItemId j) const {
  const ComparisonSession* session = FindSession(i, j);
  if (session == nullptr) return 0.0;
  return i == session->left() ? session->Mean() : -session->Mean();
}

double ComparisonCache::EstimatedStdDev(ItemId i, ItemId j) const {
  const ComparisonSession* session = FindSession(i, j);
  return session == nullptr ? 0.0 : session->StdDev();
}

int64_t ComparisonCache::Workload(ItemId i, ItemId j) const {
  const ComparisonSession* session = FindSession(i, j);
  return session == nullptr ? 0 : session->workload();
}

bool ComparisonCache::LikelyBetter(ItemId i, ItemId j) const {
  const ComparisonSession* session = FindSession(i, j);
  if (session == nullptr) return false;
  const ComparisonOutcome outcome =
      i == session->left() ? session->outcome()
                           : crowd::Reverse(session->outcome());
  if (session->Finished() && outcome != ComparisonOutcome::kTie) {
    return outcome == ComparisonOutcome::kLeftWins;
  }
  return EstimatedMean(i, j) > 0.0;
}

}  // namespace crowdtopk::judgment
