#include "judgment/cache.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace crowdtopk::judgment {

namespace {

cache::JudgmentKind KindFor(const ComparisonOptions& options) {
  return options.estimator == Estimator::kHoeffding
             ? cache::JudgmentKind::kBinary
             : cache::JudgmentKind::kPreference;
}

}  // namespace

ComparisonCache::ComparisonCache(const ComparisonOptions& options,
                                 crowd::CrowdPlatform* platform)
    : options_(options), t_cache_(EffectiveAlpha(options)) {
  if (platform != nullptr) {
    shared_ = platform->cache_client();
    recorder_ = platform->recorder();
  }
}

ComparisonCache::~ComparisonCache() {
  if (shared_ == nullptr) return;
  // Publish finished sessions this query funded itself (workload beyond the
  // seed): pure hits and inferred verdicts carry nothing new. Keys are
  // iterated in sorted order so the publication sequence — and therefore the
  // deferred-commit staging order — is independent of hash-map iteration.
  std::vector<uint64_t> keys;
  keys.reserve(sessions_.size());
  for (const auto& [key, session] : sessions_) {
    if (session->Finished() && session->workload() > session->seeded_count()) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());
  const cache::JudgmentKind kind = KindFor(options_);
  for (uint64_t key : keys) {
    const ComparisonSession& session = *sessions_.at(key);
    cache::CachedComparison entry;
    entry.outcome = session.outcome();
    entry.decisive = session.outcome() != ComparisonOutcome::kTie;
    entry.alpha = options_.alpha;
    entry.count = session.workload();
    entry.mean = session.Mean();
    entry.m2 = session.M2();
    entry.first_stage_count = session.first_stage_count();
    entry.first_stage_sd = session.first_stage_sd();
    shared_->Record(session.left(), session.right(), kind, entry);
  }
}

void ComparisonCache::ConsultSharedCache(ComparisonSession* session) {
  if (shared_ == nullptr) return;
  const cache::LookupResult result =
      shared_->Lookup(session->left(), session->right(), options_.alpha,
                      options_.budget, KindFor(options_));
  switch (result.status) {
    case cache::LookupStatus::kMiss:
      return;
    case cache::LookupStatus::kHit:
      if (result.entry.count >= 1) {
        session->SeedFromCache(result.entry.count, result.entry.mean,
                               result.entry.m2, result.entry.first_stage_count,
                               result.entry.first_stage_sd);
      }
      // The requester's own estimator usually re-concludes from the seeded
      // bag (its interval is no narrower than the donor's); when it does
      // not — e.g. the donor decided under a different estimator — the
      // memoised verdict is still valid at the covering confidence.
      if (!session->Finished()) {
        session->ForceOutcomeFromCache(result.entry.outcome);
      }
      if (recorder_ != nullptr) recorder_->RecordCounter("cache/hit", 1.0);
      return;
    case cache::LookupStatus::kTopUp:
      session->SeedFromCache(result.entry.count, result.entry.mean,
                             result.entry.m2, result.entry.first_stage_count,
                             result.entry.first_stage_sd);
      if (recorder_ != nullptr) recorder_->RecordCounter("cache/topup", 1.0);
      return;
    case cache::LookupStatus::kInferred:
      session->ForceOutcomeFromCache(result.entry.outcome);
      if (recorder_ != nullptr) {
        recorder_->RecordCounter("cache/inferred_hit", 1.0);
      }
      return;
  }
}

ComparisonSession* ComparisonCache::GetSession(ItemId i, ItemId j) {
  CROWDTOPK_CHECK_NE(i, j);
  const ItemId lo = std::min(i, j);
  const ItemId hi = std::max(i, j);
  auto& slot = sessions_[Key(lo, hi)];
  if (slot == nullptr) {
    slot = std::make_unique<ComparisonSession>(lo, hi, &options_, &t_cache_);
    ConsultSharedCache(slot.get());
  }
  return slot.get();
}

const ComparisonSession* ComparisonCache::FindSession(ItemId i,
                                                      ItemId j) const {
  CROWDTOPK_CHECK_NE(i, j);
  const ItemId lo = std::min(i, j);
  const ItemId hi = std::max(i, j);
  const auto it = sessions_.find(Key(lo, hi));
  return it == sessions_.end() ? nullptr : it->second.get();
}

ComparisonOutcome ComparisonCache::Compare(ItemId i, ItemId j,
                                           crowd::CrowdPlatform* platform) {
  ComparisonSession* session = GetSession(i, j);
  ComparisonOutcome outcome = session->Finished()
                                  ? session->outcome()
                                  : session->RunToCompletion(platform);
  if (i != session->left()) outcome = crowd::Reverse(outcome);
  return outcome;
}

double ComparisonCache::EstimatedMean(ItemId i, ItemId j) const {
  const ComparisonSession* session = FindSession(i, j);
  if (session == nullptr) return 0.0;
  return i == session->left() ? session->Mean() : -session->Mean();
}

double ComparisonCache::EstimatedStdDev(ItemId i, ItemId j) const {
  const ComparisonSession* session = FindSession(i, j);
  return session == nullptr ? 0.0 : session->StdDev();
}

int64_t ComparisonCache::Workload(ItemId i, ItemId j) const {
  const ComparisonSession* session = FindSession(i, j);
  return session == nullptr ? 0 : session->workload();
}

bool ComparisonCache::LikelyBetter(ItemId i, ItemId j) const {
  const ComparisonSession* session = FindSession(i, j);
  if (session == nullptr) return false;
  const ComparisonOutcome outcome =
      i == session->left() ? session->outcome()
                           : crowd::Reverse(session->outcome());
  if (session->Finished() && outcome != ComparisonOutcome::kTie) {
    return outcome == ComparisonOutcome::kLeftWins;
  }
  return EstimatedMean(i, j) > 0.0;
}

}  // namespace crowdtopk::judgment
