// Graded (absolute) judgment aggregation.
//
// The graded judgment model (Table 1 / Table 3 bottom) rates single items on
// an absolute scale with a fixed per-item workload; items are then ranked by
// their mean grade. Used by the Table 3 study and by the Hybrid baselines'
// filtering phase (Khan & Garcia-Molina [26]).

#ifndef CROWDTOPK_JUDGMENT_GRADED_H_
#define CROWDTOPK_JUDGMENT_GRADED_H_

#include <cstdint>
#include <vector>

#include "crowd/platform.h"
#include "crowd/types.h"

namespace crowdtopk::judgment {

// Buys `workload_per_item` grades for each item in `items` and returns the
// per-item mean grades, index-aligned with `items`. Accounts one batch round
// per ceil(workload / batch_size) wave (all items graded in parallel).
std::vector<double> CollectMeanGrades(const std::vector<crowd::ItemId>& items,
                                      int64_t workload_per_item,
                                      int64_t batch_size,
                                      crowd::CrowdPlatform* platform);

// Ranks `items` best-first by mean grade (ties broken by item id).
std::vector<crowd::ItemId> RankByGrades(
    const std::vector<crowd::ItemId>& items,
    const std::vector<double>& mean_grades);

}  // namespace crowdtopk::judgment

#endif  // CROWDTOPK_JUDGMENT_GRADED_H_
