// The confidence-aware comparison process COMP(o_i, o_j) (Section 3).
//
// A ComparisonSession owns the bag V_{i,j} of judgments for one item pair in
// summarised (Welford) form and decides, after each purchase, whether the
// 1-alpha confidence interval of the preference mean excludes the neutral
// value 0. Three estimators are provided:
//
//   kStudent   - Algorithm 1 (StudentComp): Student-t interval on preference
//                judgments.
//   kStein     - Algorithm 5 (SteinComp): Stein's progressive two-stage
//                estimation on preference judgments.
//   kHoeffding - the binary-judgment baseline (Busa-Fekete et al. [8],
//                Appendix D): Hoeffding interval on votes in {-1, +1}.
//
// Sessions are resumable: Step() buys any number of further microtasks, so a
// driver can advance many sessions "in parallel" within one batch round
// (Algorithm 4) or run one session to completion (RunComparison).
//
// Termination mirrors Algorithm 1: start with the cold-start workload I,
// then buy one batch (eta, Section 5.5) at a time until the interval
// excludes 0 or the per-pair budget B is exhausted, in which case the pair
// is declared a tie and ranked by its sample mean. Each purchase a session
// makes is tagged with its iteration count in traces
// (docs/OBSERVABILITY.md), which is how per-pair convergence cost is
// attributed in the observability tooling.

#ifndef CROWDTOPK_JUDGMENT_COMPARISON_H_
#define CROWDTOPK_JUDGMENT_COMPARISON_H_

#include <cstdint>

#include "crowd/platform.h"
#include "crowd/types.h"
#include "stats/running_stats.h"
#include "stats/student_t.h"

namespace crowdtopk::judgment {

using crowd::ComparisonOutcome;
using crowd::ItemId;

enum class Estimator {
  kStudent,
  kStein,
  kHoeffding,
  // Anytime-valid confidence sequence (LIL bound, stats/anytime.h): unlike
  // the fixed-n t-interval peeked after every sample, its error guarantee
  // holds *uniformly over the whole monitoring trajectory*, at the price of
  // wider intervals (larger workloads). Extension beyond the paper.
  kAnytime,
};

// Parameters shared by every comparison in one query (Table 6 defaults).
struct ComparisonOptions {
  // Significance level; the confidence level is 1 - alpha. Default matches
  // the paper's bold default 1 - alpha = 0.98.
  double alpha = 0.02;
  // Per-pair budget B: a comparison never buys more than this many
  // microtasks; when exhausted the pair is declared a tie.
  int64_t budget = 1000;
  // Minimum initial workload I (cold start; >= 30 per common practice).
  int64_t min_workload = 30;
  // Batch size eta: microtasks distributed per batch round (Section 5.5).
  int64_t batch_size = 30;
  // Which interval estimator drives the decision.
  Estimator estimator = Estimator::kStudent;
  // SteinComp's epsilon: the interval half width is |mean| - epsilon so the
  // interval always just excludes 0 (Appendix E).
  double stein_epsilon = 1e-6;
  // Half-closed intervals (Section 3.1: "Our strategy can also extend to
  // half-closed interval"): test each direction one-sidedly at level alpha
  // instead of alpha/2. At most one wrong direction exists, so the error
  // probability stays <= alpha while the smaller critical value stops
  // comparisons earlier.
  bool one_sided = false;
};

// The tail probability the critical value must cover: alpha/2 per side for
// the symmetric interval, alpha per side in one-sided mode. TCriticalCache
// instances used with these options must be constructed with this value.
double EffectiveAlpha(const ComparisonOptions& options);

// Resumable state of one COMP(left, right). The session always stores the
// pair in the orientation it was constructed with; a positive mean favours
// `left`.
class ComparisonSession {
 public:
  // `options` and `t_cache` must outlive the session; `t_cache` must have
  // been constructed with EffectiveAlpha(*options).
  ComparisonSession(ItemId left, ItemId right,
                    const ComparisonOptions* options,
                    stats::TCriticalCache* t_cache);

  ItemId left() const { return left_; }
  ItemId right() const { return right_; }

  // True once an outcome (win/loss) has been reached, or the budget is
  // exhausted (outcome kTie).
  bool Finished() const { return finished_; }

  // Valid once Finished(); kTie until then.
  ComparisonOutcome outcome() const { return outcome_; }

  // True if the session finished only because the budget ran out.
  bool BudgetExhausted() const {
    return finished_ && outcome_ == ComparisonOutcome::kTie;
  }

  // Workload so far: |V_{i,j}|.
  int64_t workload() const { return bag_.count(); }

  // Number of purchases this session has made so far (confidence-process
  // iterations: 0 before the cold start, 1 after it, ...). When a telemetry
  // recorder is attached to the platform, each buy is tagged with the
  // iteration it belongs to, so traces expose the per-pair convergence
  // profile of the stopping rule.
  int64_t purchase_iterations() const { return purchase_iterations_; }

  // Sample mean / stddev of the bag (preference scale; sign favours left).
  double Mean() const { return bag_.Mean(); }
  double StdDev() const { return bag_.StdDev(); }

  // Buys up to `batch` more microtasks (clipped to the remaining budget,
  // and raised to min_workload I on the very first purchase as Algorithm 1
  // line 1 does), then re-evaluates the stopping rule. No-op when finished.
  // Does NOT advance the platform's round counter; callers group steps into
  // rounds themselves.
  void Step(crowd::CrowdPlatform* platform, int64_t batch);

  // Runs the session to completion under the batch policy: one batch per
  // round, advancing the platform's round counter after every purchase.
  ComparisonOutcome RunToCompletion(crowd::CrowdPlatform* platform);

  // Buys `count` further judgments IGNORING the stopping rule and the
  // per-pair budget cap. Used by interval-based ranking refinement
  // (core/interval_ranking.h), which deliberately keeps sampling after COMP
  // concluded to tighten the interval around the mean. Does not change the
  // recorded outcome.
  void RefineWithExtraSamples(crowd::CrowdPlatform* platform, int64_t count);

  // Injects an already-known judgment value without purchasing (testing and
  // offline replay).
  void AddSampleForTest(double value);

  // Seeds a fresh session from a memoised bag summary (the cross-query
  // judgment cache, src/cache): restores the Welford accumulator and Stein's
  // frozen first-stage estimate bit-for-bit to the donor session's state,
  // then re-evaluates the stopping rule under THIS session's options. Only
  // valid before any sample has been added. Subsequent Step() calls buy from
  // the restored count onward, exactly as the donor would have continued.
  void SeedFromCache(int64_t count, double mean, double m2,
                     int64_t first_stage_count, double first_stage_sd);

  // Marks the session finished with `outcome` without purchasing. Used for
  // cache hits: transitively inferred verdicts (empty bag — the verdict is
  // trusted at the cache's composed confidence) and seeded decisive verdicts
  // that this session's own estimator would not re-derive from the restored
  // bag (the donor may have decided under a different estimator).
  void ForceOutcomeFromCache(ComparisonOutcome outcome);

  // Samples restored by SeedFromCache (0 for cold sessions). workload() ==
  // seeded_count() means this session never purchased anything itself.
  int64_t seeded_count() const { return seeded_count_; }

  // Bag / first-stage raw state, read off by the cache when memoising.
  double M2() const { return bag_.M2(); }
  int64_t first_stage_count() const { return first_stage_count_; }
  double first_stage_sd() const { return first_stage_sd_; }

 private:
  // Re-evaluates the stopping rule from the current bag.
  void Evaluate();

  // Buys `count` judgments of the configured kind into the bag, tagging the
  // purchase with the current iteration when telemetry is attached.
  void Purchase(crowd::CrowdPlatform* platform, int64_t count);

  bool IntervalExcludesZeroStudent() const;
  bool IntervalExcludesZeroStein() const;
  bool IntervalExcludesZeroHoeffding() const;
  bool IntervalExcludesZeroAnytime() const;

  ItemId left_;
  ItemId right_;
  const ComparisonOptions* options_;
  stats::TCriticalCache* t_cache_;
  stats::RunningStats bag_;
  // Stein's first-stage variance estimate (frozen at the cold start).
  int64_t first_stage_count_ = 0;
  double first_stage_sd_ = 0.0;
  bool finished_ = false;
  ComparisonOutcome outcome_ = ComparisonOutcome::kTie;
  int64_t purchase_iterations_ = 0;
  int64_t seeded_count_ = 0;
  std::vector<double> scratch_;  // reused purchase buffer
};

// Convenience wrapper: runs a fresh COMP(i, j) to completion.
ComparisonOutcome RunComparison(ItemId i, ItemId j,
                                const ComparisonOptions& options,
                                stats::TCriticalCache* t_cache,
                                crowd::CrowdPlatform* platform,
                                int64_t* workload_out = nullptr);

}  // namespace crowdtopk::judgment

#endif  // CROWDTOPK_JUDGMENT_COMPARISON_H_
