// CacheClient: one query's handle onto the shared JudgmentCache.
//
// A client binds three things the shared cache cannot know by itself:
//
//   * the query id, which orders this query's deferred-commit inserts at
//     the serving layer's quiescence barriers;
//   * the universe id, namespacing entries per underlying oracle so that
//     queries over different datasets never share verdicts;
//   * an optional local-to-universe item-id translation, so a query running
//     over a data::SubsetDataset (dense local ids) still shares judgments
//     with every other query over the same parent items.
//
// The client also keeps this query's own hit/top-up/miss counters, which the
// serving layer exports as cache/* telemetry counters per query
// (docs/OBSERVABILITY.md).
//
// A client is owned by exactly one driver thread (like the platform it is
// attached to via crowd::CrowdPlatform::SetCacheClient); the shared cache it
// forwards to is thread-safe.

#ifndef CROWDTOPK_CACHE_CACHE_CLIENT_H_
#define CROWDTOPK_CACHE_CACHE_CLIENT_H_

#include <cstdint>
#include <vector>

#include "cache/judgment_cache.h"
#include "crowd/types.h"

namespace crowdtopk::cache {

// Per-query cache traffic counters.
struct ClientStats {
  int64_t hits = 0;
  int64_t topups = 0;
  int64_t inferred = 0;
  int64_t misses = 0;
  int64_t seeded_samples = 0;  // cached samples restored into this query
};

class CacheClient {
 public:
  // `cache` must outlive the client. `universe_ids` maps this query's local
  // item ids onto the shared universe's ids (empty = identity); it is
  // copied, so a caller-side vector need not outlive the client.
  CacheClient(JudgmentCache* cache, int64_t query_id, int64_t universe,
              std::vector<crowd::ItemId> universe_ids = {});

  CacheClient(const CacheClient&) = delete;
  CacheClient& operator=(const CacheClient&) = delete;

  // Lookup/Record in this query's LOCAL id space; translation and
  // canonical-pair orientation happen inside. Returned entries are oriented
  // for (i, j) as passed.
  LookupResult Lookup(crowd::ItemId i, crowd::ItemId j, double alpha,
                      int64_t budget, JudgmentKind kind);
  void Record(crowd::ItemId i, crowd::ItemId j, JudgmentKind kind,
              const CachedComparison& entry);

  int64_t query_id() const { return query_id_; }
  int64_t universe() const { return universe_; }
  const ClientStats& stats() const { return stats_; }
  JudgmentCache* cache() const { return cache_; }

 private:
  crowd::ItemId Translate(crowd::ItemId local) const;

  JudgmentCache* cache_;
  int64_t query_id_;
  int64_t universe_;
  std::vector<crowd::ItemId> universe_ids_;
  ClientStats stats_;
};

}  // namespace crowdtopk::cache

#endif  // CROWDTOPK_CACHE_CACHE_CLIENT_H_
