#include "cache/judgment_cache.h"

#include <algorithm>

#include "util/check.h"
#include "util/random.h"

namespace crowdtopk::cache {
namespace {

using crowd::ComparisonOutcome;
using crowd::ItemId;

uint64_t CanonicalPair(ItemId lo, ItemId hi) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(lo)) << 32) |
         static_cast<uint32_t>(hi);
}

// Flips an entry's orientation (operands swapped).
CachedComparison Flip(CachedComparison entry) {
  entry.outcome = crowd::Reverse(entry.outcome);
  entry.mean = -entry.mean;
  return entry;
}

uint64_t MixHash(uint64_t x) {
  // splitmix64 finalizer — same mixer the seeding layer uses.
  uint64_t state = x;
  return util::SplitMix64(&state);
}

}  // namespace

size_t JudgmentCache::KeyHash::operator()(const Key& key) const {
  return static_cast<size_t>(
      MixHash(MixHash(static_cast<uint64_t>(key.universe)) ^ key.pair ^
              (static_cast<uint64_t>(key.kind) << 62)));
}

size_t JudgmentCache::AdjKeyHash::operator()(const AdjKey& key) const {
  return static_cast<size_t>(
      MixHash((static_cast<uint64_t>(key.universe) << 34) ^
              (static_cast<uint64_t>(static_cast<uint32_t>(key.item)) << 2) ^
              static_cast<uint64_t>(key.kind)));
}

JudgmentCache::JudgmentCache(const CacheOptions& options) : options_(options) {}

JudgmentCache::Shard* JudgmentCache::ShardFor(const Key& key) {
  return &shards_[KeyHash{}(key) % kNumShards];
}

const JudgmentCache::Shard* JudgmentCache::ShardFor(const Key& key) const {
  return &shards_[KeyHash{}(key) % kNumShards];
}

bool JudgmentCache::Better(const CachedComparison& incoming,
                           const CachedComparison& existing) {
  if (incoming.decisive != existing.decisive) return incoming.decisive;
  if (incoming.alpha != existing.alpha) return incoming.alpha < existing.alpha;
  return incoming.count > existing.count;
}

LookupResult JudgmentCache::Lookup(int64_t universe, ItemId i, ItemId j,
                                   double alpha, int64_t budget,
                                   JudgmentKind kind) {
  CROWDTOPK_CHECK_NE(i, j);
  lookups_.fetch_add(1, std::memory_order_relaxed);
  LookupResult result;
  if (options_.capacity == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return result;
  }
  const ItemId lo = std::min(i, j);
  const ItemId hi = std::max(i, j);
  const Key key{universe, CanonicalPair(lo, hi),
                static_cast<int32_t>(kind)};
  bool found = false;
  CachedComparison canonical;
  {
    Shard* shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard->mu);
    const auto it = shard->entries.find(key);
    if (it != shard->entries.end()) {
      found = true;
      canonical = it->second;
    }
  }
  if (found) {
    result.entry = i == lo ? canonical : Flip(canonical);
    const bool confidence_covered =
        canonical.decisive && canonical.alpha <= alpha;
    // A budget-exhausted tie answers queries whose own budget the cached
    // funding already covers: they too would have run out undecided.
    const bool tie_covered = !canonical.decisive && canonical.count >= budget;
    if (confidence_covered || tie_covered) {
      result.status = LookupStatus::kHit;
      hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      result.status = LookupStatus::kTopUp;
      topups_.fetch_add(1, std::memory_order_relaxed);
    }
    seeded_samples_.fetch_add(canonical.count, std::memory_order_relaxed);
    return result;
  }
  if (options_.transitivity) {
    CachedComparison inferred;
    if (TryInfer(universe, lo, hi, alpha, kind, &inferred)) {
      result.status = LookupStatus::kInferred;
      result.entry = i == lo ? inferred : Flip(inferred);
      inferred_.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

bool JudgmentCache::FindOriented(int64_t universe, ItemId a, ItemId b,
                                 JudgmentKind kind,
                                 CachedComparison* out) const {
  const ItemId lo = std::min(a, b);
  const ItemId hi = std::max(a, b);
  const Key key{universe, CanonicalPair(lo, hi), static_cast<int32_t>(kind)};
  const Shard* shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard->mu);
  const auto it = shard->entries.find(key);
  if (it == shard->entries.end()) return false;
  *out = a == lo ? it->second : Flip(it->second);
  return true;
}

bool JudgmentCache::TryInfer(int64_t universe, ItemId lo, ItemId hi,
                             double alpha, JudgmentKind kind,
                             CachedComparison* out) {
  // Candidate middles: items with decisive cached verdicts against BOTH
  // endpoints. Neighbour lists are sorted, so the intersection — and with it
  // the chosen chain — is deterministic.
  std::vector<ItemId> middles;
  {
    std::lock_guard<std::mutex> lock(adjacency_mu_);
    const auto it_lo = adjacency_.find(
        AdjKey{universe, lo, static_cast<int32_t>(kind)});
    const auto it_hi = adjacency_.find(
        AdjKey{universe, hi, static_cast<int32_t>(kind)});
    if (it_lo == adjacency_.end() || it_hi == adjacency_.end()) return false;
    std::set_intersection(it_lo->second.begin(), it_lo->second.end(),
                          it_hi->second.begin(), it_hi->second.end(),
                          std::back_inserter(middles));
  }
  bool found = false;
  double best_alpha = 0.0;
  ComparisonOutcome best_outcome = ComparisonOutcome::kTie;
  for (const ItemId r : middles) {
    if (r == lo || r == hi) continue;
    CachedComparison first;   // oriented (lo, r)
    CachedComparison second;  // oriented (r, hi)
    if (!FindOriented(universe, lo, r, kind, &first)) continue;
    if (!FindOriented(universe, r, hi, kind, &second)) continue;
    if (!first.decisive || !second.decisive) continue;
    // The verdicts only chain when they point the same way through r:
    // lo > r > hi infers lo > hi; lo < r < hi infers lo < hi.
    if (first.outcome != second.outcome) continue;
    // Union bound: both links hold with probability >= 1 - (a1 + a2).
    const double combined = first.alpha + second.alpha;
    if (combined > alpha) continue;
    // Keep the tightest chain; middles ascend, so ties keep the smallest r.
    if (!found || combined < best_alpha) {
      found = true;
      best_alpha = combined;
      best_outcome = first.outcome;
    }
  }
  if (!found) return false;
  *out = CachedComparison{};
  out->outcome = best_outcome;
  out->decisive = true;
  out->alpha = best_alpha;
  // count stays 0: an inferred verdict carries no samples to seed and no
  // strength estimate, and is never re-published (comparison-cache side
  // publishes only sessions that bought real samples).
  return true;
}

void JudgmentCache::Record(int64_t query_id, int64_t universe, ItemId i,
                           ItemId j, JudgmentKind kind,
                           const CachedComparison& entry) {
  CROWDTOPK_CHECK_NE(i, j);
  CROWDTOPK_CHECK_GE(entry.count, 1);
  if (options_.capacity == 0) return;
  const ItemId lo = std::min(i, j);
  const ItemId hi = std::max(i, j);
  const Key key{universe, CanonicalPair(lo, hi), static_cast<int32_t>(kind)};
  const CachedComparison canonical = i == lo ? entry : Flip(entry);
  if (options_.deferred_commit) {
    std::lock_guard<std::mutex> lock(staged_mu_);
    staged_[query_id].push_back(Staged{key, canonical});
    return;
  }
  Commit(key, canonical);
}

void JudgmentCache::Commit(const Key& key, const CachedComparison& entry,
                           bool restored) {
  bool adjacency_dirty = false;
  {
    Shard* shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard->mu);
    const auto it = shard->entries.find(key);
    if (it == shard->entries.end()) {
      if (options_.capacity >= 0 &&
          pairs_.load(std::memory_order_relaxed) >= options_.capacity) {
        dropped_capacity_.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> dropped_lock(dropped_mu_);
          ++dropped_by_universe_[key.universe];
        }
        return;
      }
      shard->entries.emplace(key, entry);
      pairs_.fetch_add(1, std::memory_order_relaxed);
      (restored ? restored_ : inserts_)
          .fetch_add(1, std::memory_order_relaxed);
      adjacency_dirty = entry.decisive;
    } else if (Better(entry, it->second)) {
      adjacency_dirty = entry.decisive && !it->second.decisive;
      it->second = entry;
      upgrades_.fetch_add(1, std::memory_order_relaxed);
    } else {
      return;
    }
  }
  if (adjacency_dirty && options_.transitivity) {
    const ItemId lo = static_cast<ItemId>(key.pair >> 32);
    const ItemId hi = static_cast<ItemId>(key.pair & 0xffffffffu);
    std::lock_guard<std::mutex> lock(adjacency_mu_);
    for (const auto& [item, other] : {std::pair(lo, hi), std::pair(hi, lo)}) {
      std::vector<ItemId>& neighbours =
          adjacency_[AdjKey{key.universe, item, key.kind}];
      const auto pos =
          std::lower_bound(neighbours.begin(), neighbours.end(), other);
      if (pos == neighbours.end() || *pos != other) {
        neighbours.insert(pos, other);
      }
    }
  }
}

void JudgmentCache::CommitPending(std::vector<ExportedEntry>* applied) {
  std::map<int64_t, std::vector<Staged>> staged;
  {
    std::lock_guard<std::mutex> lock(staged_mu_);
    staged.swap(staged_);
  }
  // std::map iterates queries in id order; each query's inserts apply in
  // its own staging order — both independent of thread timing.
  for (const auto& [query_id, inserts] : staged) {
    (void)query_id;
    for (const Staged& staged_insert : inserts) {
      if (applied != nullptr) {
        ExportedEntry exported;
        exported.universe = staged_insert.key.universe;
        exported.kind = staged_insert.key.kind;
        exported.lo = static_cast<ItemId>(staged_insert.key.pair >> 32);
        exported.hi = static_cast<ItemId>(staged_insert.key.pair & 0xffffffffu);
        exported.entry = staged_insert.entry;
        applied->push_back(exported);
      }
      Commit(staged_insert.key, staged_insert.entry);
    }
  }
}

std::vector<ExportedEntry> JudgmentCache::Export() const {
  std::vector<ExportedEntry> exported;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.entries) {
      ExportedEntry e;
      e.universe = key.universe;
      e.kind = key.kind;
      e.lo = static_cast<ItemId>(key.pair >> 32);
      e.hi = static_cast<ItemId>(key.pair & 0xffffffffu);
      e.entry = entry;
      exported.push_back(e);
    }
  }
  std::sort(exported.begin(), exported.end(),
            [](const ExportedEntry& a, const ExportedEntry& b) {
              if (a.universe != b.universe) return a.universe < b.universe;
              if (a.lo != b.lo) return a.lo < b.lo;
              if (a.hi != b.hi) return a.hi < b.hi;
              return a.kind < b.kind;
            });
  return exported;
}

void JudgmentCache::RestoreEntries(const std::vector<ExportedEntry>& entries) {
  if (options_.capacity == 0) return;
  for (const ExportedEntry& e : entries) {
    CROWDTOPK_CHECK(e.lo < e.hi);
    const Key key{e.universe, CanonicalPair(e.lo, e.hi), e.kind};
    Commit(key, e.entry, /*restored=*/true);
  }
}

CacheStats JudgmentCache::stats() const {
  CacheStats stats;
  stats.lookups = lookups_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.topups = topups_.load(std::memory_order_relaxed);
  stats.inferred = inferred_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.upgrades = upgrades_.load(std::memory_order_relaxed);
  stats.dropped_capacity = dropped_capacity_.load(std::memory_order_relaxed);
  stats.seeded_samples = seeded_samples_.load(std::memory_order_relaxed);
  stats.pairs = pairs_.load(std::memory_order_relaxed);
  stats.restored = restored_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(dropped_mu_);
    stats.dropped_by_universe.assign(dropped_by_universe_.begin(),
                                     dropped_by_universe_.end());
  }
  return stats;
}

}  // namespace crowdtopk::cache
