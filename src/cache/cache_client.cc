#include "cache/cache_client.h"

#include <utility>

#include "util/check.h"

namespace crowdtopk::cache {

CacheClient::CacheClient(JudgmentCache* cache, int64_t query_id,
                         int64_t universe,
                         std::vector<crowd::ItemId> universe_ids)
    : cache_(cache),
      query_id_(query_id),
      universe_(universe),
      universe_ids_(std::move(universe_ids)) {
  CROWDTOPK_CHECK(cache != nullptr);
}

crowd::ItemId CacheClient::Translate(crowd::ItemId local) const {
  if (universe_ids_.empty()) return local;
  CROWDTOPK_CHECK_GE(local, 0);
  CROWDTOPK_CHECK_LT(static_cast<size_t>(local), universe_ids_.size());
  return universe_ids_[local];
}

LookupResult CacheClient::Lookup(crowd::ItemId i, crowd::ItemId j,
                                 double alpha, int64_t budget,
                                 JudgmentKind kind) {
  // Translation preserves the (i, j) order, so the entry the cache orients
  // for the translated pair is already oriented for the local pair.
  const LookupResult result =
      cache_->Lookup(universe_, Translate(i), Translate(j), alpha, budget,
                     kind);
  switch (result.status) {
    case LookupStatus::kMiss:
      ++stats_.misses;
      break;
    case LookupStatus::kHit:
      ++stats_.hits;
      stats_.seeded_samples += result.entry.count;
      break;
    case LookupStatus::kTopUp:
      ++stats_.topups;
      stats_.seeded_samples += result.entry.count;
      break;
    case LookupStatus::kInferred:
      ++stats_.inferred;
      break;
  }
  return result;
}

void CacheClient::Record(crowd::ItemId i, crowd::ItemId j, JudgmentKind kind,
                         const CachedComparison& entry) {
  cache_->Record(query_id_, universe_, Translate(i), Translate(j), kind,
                 entry);
}

}  // namespace crowdtopk::cache
