// JudgmentCache: the cross-query judgment cache.
//
// The paper's SPR reuses judgments *within* one ranking pass ("the results
// of comparisons are always reusable", Section 5.3); this module extends the
// reuse across queries. A completed COMP(o_i, o_j) is memoised in summarised
// form — verdict, preference mean, Welford M2, sample count, and the nominal
// error bound alpha it was decided at — keyed by the canonical unordered
// pair. A later query asking about the same pair is served:
//
//   * a HIT when the cached confidence level 1 - alpha_cached meets or
//     exceeds the requesting query's 1 - alpha (alpha_cached <= alpha), or,
//     for a budget-exhausted tie, when the cached funding already covers the
//     requester's per-pair budget B;
//   * a TOP-UP otherwise: the requester seeds its ComparisonSession with the
//     cached bag summary and continues buying from the cached sample count,
//     exactly per COMP's progressive-sampling contract (Algorithm 1 keeps
//     purchasing eta-batches until its own interval excludes 0);
//   * optionally (off by default) an INFERRED verdict from transitivity:
//     cached o_i > o_r and o_r > o_j compose to o_i > o_j. Hui & Berberich
//     (CSCW'17) measure crowd preference judgments as overwhelmingly
//     transitive, which is what justifies serving composed verdicts.
//     Composition rule: each cached verdict is wrong with probability at
//     most its alpha, so by the union bound the composed verdict is wrong
//     with probability at most alpha_1 + alpha_2; an inferred answer is
//     served only when alpha_1 + alpha_2 <= the requester's alpha. Only
//     directly-judged (never themselves inferred) single-hop chains are
//     composed, so inference error never compounds.
//
// Concurrency and determinism (the src/exec contract): the committed map is
// mutex-sharded for cheap concurrent lookups. Under the serving layer
// (src/serve) the cache runs in *deferred-commit* mode: driver threads stage
// their completed comparisons, and the service thread applies the staged
// inserts at the scheduler's existing quiescence barriers — sorted by query
// id — so every driver observes a snapshot that is a pure function of
// (options, seed, trace) and the replay stays byte-identical for any
// CROWDTOPK_JOBS value. Two queries that race on the same cold pair within
// one global round both buy it (the price of determinism); the merge rule
// below resolves their inserts identically regardless of thread timing.
//
// Entries live in per-universe namespaces: queries only share judgments when
// their CacheClients declare the same universe (same oracle) and translate
// their local item ids into that universe's id space (cache_client.h).

#ifndef CROWDTOPK_CACHE_JUDGMENT_CACHE_H_
#define CROWDTOPK_CACHE_JUDGMENT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "crowd/types.h"

namespace crowdtopk::cache {

// Which judgment stream funded an entry. Preference bags (Student / Stein /
// anytime estimators) and binary-vote bags (Hoeffding) are different sample
// spaces and never mix.
enum class JudgmentKind : int32_t {
  kPreference = 0,
  kBinary = 1,
};

struct CacheOptions {
  // Master switch for layers that construct the cache conditionally
  // (serve::ServeOptions, tools). The cache object itself is always live.
  bool enabled = false;
  // Maximum distinct pairs stored; < 0 = unbounded. 0 stores nothing and
  // hits nothing, making an attached cache byte-identical to no cache.
  // When full, new pairs are dropped (deterministic, no eviction).
  int64_t capacity = -1;
  // Serve single-hop transitively inferred verdicts (off by default).
  bool transitivity = false;
  // Deferred-commit mode: Record() stages inserts per query and only
  // CommitPending() — called at a point where no driver runs, e.g. the
  // serving layer's quiescence barrier — applies them, in query-id order.
  // When false, Record() commits immediately (single-threaded replays).
  bool deferred_commit = false;
};

// One memoised comparison, oriented so that a positive mean and kLeftWins
// favour the first item of the (i, j) order it is handed over with.
struct CachedComparison {
  crowd::ComparisonOutcome outcome = crowd::ComparisonOutcome::kTie;
  // True for a win/loss verdict; false for a budget-exhausted tie.
  bool decisive = false;
  // Nominal error bound of the verdict: the alpha of the ComparisonOptions
  // that decided it, or the union-bound sum for an inferred verdict.
  double alpha = 1.0;
  // Bag summary (count, mean, Welford M2) — restoring these into a fresh
  // RunningStats reproduces the donor session's accumulator bit-for-bit.
  // count == 0 for inferred verdicts (no samples to seed).
  int64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;
  // Stein's frozen first-stage variance estimate (comparison.h).
  int64_t first_stage_count = 0;
  double first_stage_sd = 0.0;
};

enum class LookupStatus {
  kMiss,      // nothing usable cached
  kHit,       // cached confidence covers the request; no purchases needed
  kTopUp,     // cached bag seeds the session; buy the remainder
  kInferred,  // transitive composition; verdict only, no bag
};

struct LookupResult {
  LookupStatus status = LookupStatus::kMiss;
  // Valid unless kMiss; oriented for the (i, j) order passed to Lookup.
  CachedComparison entry;
};

// Monotone counters; readable at any time, exact once quiescent.
struct CacheStats {
  int64_t lookups = 0;
  int64_t hits = 0;
  int64_t topups = 0;
  int64_t inferred = 0;
  int64_t misses = 0;
  int64_t inserts = 0;            // new pairs committed
  int64_t upgrades = 0;           // existing pairs replaced by better entries
  int64_t dropped_capacity = 0;   // inserts refused by the capacity bound
  int64_t seeded_samples = 0;     // samples served into hit/top-up seeds
  int64_t pairs = 0;              // distinct pairs currently stored
  int64_t restored = 0;           // pairs restored from a snapshot/warm start
  // Capacity drops broken down by universe (ascending universe id), so a
  // multi-tenant deployment can see *whose* inserts the bound refused; the
  // aggregate dropped_capacity is their sum. Exported as
  // cache/universe<id>/dropped telemetry counters by the serving layer.
  std::vector<std::pair<int64_t, int64_t>> dropped_by_universe;
};

// One committed entry in canonical orientation (lo < hi), as exported by
// JudgmentCache::Export and restored by RestoreEntries — the on-disk unit
// of the durability layer's snapshots (src/persist).
struct ExportedEntry {
  int64_t universe = 0;
  int32_t kind = 0;
  crowd::ItemId lo = 0;
  crowd::ItemId hi = 0;
  CachedComparison entry;
};

class JudgmentCache {
 public:
  explicit JudgmentCache(const CacheOptions& options);

  JudgmentCache(const JudgmentCache&) = delete;
  JudgmentCache& operator=(const JudgmentCache&) = delete;

  const CacheOptions& options() const { return options_; }

  // Looks up the pair (i, j) of `universe` for a query at significance
  // `alpha` and per-pair budget `budget`. The returned entry is oriented for
  // (i, j) as passed (mean sign and outcome flipped from canonical storage
  // when needed). Thread-safe.
  LookupResult Lookup(int64_t universe, crowd::ItemId i, crowd::ItemId j,
                      double alpha, int64_t budget, JudgmentKind kind);

  // Records a completed comparison, `entry` oriented for (i, j) as passed.
  // Immediate mode commits now; deferred mode stages under `query_id` until
  // CommitPending(). An existing entry is only replaced by a strictly
  // better one (decisive beats tie, then lower alpha, then higher count),
  // so commit order between equal entries never changes the map.
  // Thread-safe.
  void Record(int64_t query_id, int64_t universe, crowd::ItemId i,
              crowd::ItemId j, JudgmentKind kind,
              const CachedComparison& entry);

  // Applies staged inserts in (query id, staging order). Call only while no
  // driver is recording or looking up — the serving layer calls it at its
  // quiescence barriers. No-op in immediate mode. When `applied` is
  // non-null, every staged insert is appended to it in apply order
  // (canonical orientation, regardless of the capacity/merge outcome) — the
  // write-ahead log records exactly this sequence.
  void CommitPending(std::vector<ExportedEntry>* applied = nullptr);

  // Deterministic dump of every committed entry, sorted by (universe, pair,
  // kind): the snapshot image. Call only while quiescent.
  std::vector<ExportedEntry> Export() const;

  // Commits previously exported entries into an (typically fresh) cache —
  // the warm-restart path. Counted under CacheStats::restored rather than
  // inserts; the capacity bound still applies. Call only while quiescent.
  void RestoreEntries(const std::vector<ExportedEntry>& entries);

  CacheStats stats() const;
  int64_t num_pairs() const { return pairs_.load(std::memory_order_relaxed); }

 private:
  struct Key {
    int64_t universe = 0;
    uint64_t pair = 0;  // canonical (lo << 32) | hi
    int32_t kind = 0;
    bool operator==(const Key& other) const {
      return universe == other.universe && pair == other.pair &&
             kind == other.kind;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, CachedComparison, KeyHash> entries;
  };
  struct Staged {
    Key key;
    CachedComparison entry;  // canonical orientation
  };
  // Neighbours with decisive entries, per (universe, item, kind); sorted.
  struct AdjKey {
    int64_t universe = 0;
    crowd::ItemId item = 0;
    int32_t kind = 0;
    bool operator==(const AdjKey& other) const {
      return universe == other.universe && item == other.item &&
             kind == other.kind;
    }
  };
  struct AdjKeyHash {
    size_t operator()(const AdjKey& key) const;
  };

  static constexpr int kNumShards = 16;

  Shard* ShardFor(const Key& key);
  const Shard* ShardFor(const Key& key) const;
  // Commits one canonical-orientation entry into its shard (and the
  // adjacency index when decisive). Immediate mode calls it from Record;
  // deferred mode from CommitPending; RestoreEntries passes
  // `restored` = true so warm-start imports are counted separately.
  void Commit(const Key& key, const CachedComparison& entry,
              bool restored = false);
  // True when `incoming` should replace `existing`.
  static bool Better(const CachedComparison& incoming,
                     const CachedComparison& existing);
  // Single-hop transitive inference for canonical pair (lo, hi); returns a
  // canonical-orientation entry on success.
  bool TryInfer(int64_t universe, crowd::ItemId lo, crowd::ItemId hi,
                double alpha, JudgmentKind kind, CachedComparison* out);
  // Fetches the committed canonical entry for (a, b), oriented for (a, b).
  bool FindOriented(int64_t universe, crowd::ItemId a, crowd::ItemId b,
                    JudgmentKind kind, CachedComparison* out) const;

  const CacheOptions options_;
  Shard shards_[kNumShards];
  std::atomic<int64_t> pairs_{0};

  std::mutex staged_mu_;
  std::map<int64_t, std::vector<Staged>> staged_;  // query id -> inserts

  std::mutex adjacency_mu_;
  std::unordered_map<AdjKey, std::vector<crowd::ItemId>, AdjKeyHash>
      adjacency_;

  // Stats counters (relaxed: monotone, read for reporting only).
  std::atomic<int64_t> lookups_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> topups_{0};
  std::atomic<int64_t> inferred_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> inserts_{0};
  std::atomic<int64_t> upgrades_{0};
  std::atomic<int64_t> dropped_capacity_{0};
  std::atomic<int64_t> seeded_samples_{0};
  std::atomic<int64_t> restored_{0};

  // Per-universe capacity-drop counts (the drop path is already the slow
  // path, so a mutex-guarded map costs nothing measurable).
  mutable std::mutex dropped_mu_;
  std::map<int64_t, int64_t> dropped_by_universe_;
};

}  // namespace crowdtopk::cache

#endif  // CROWDTOPK_CACHE_JUDGMENT_CACHE_H_
