#include "baselines/tournament_tree.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/tournament.h"
#include "judgment/cache.h"
#include "telemetry/recorder.h"
#include "util/check.h"

namespace crowdtopk::baselines {

using core::ItemId;

core::TopKResult TournamentTree::Run(crowd::CrowdPlatform* platform,
                                     int64_t k) {
  const int64_t n = platform->num_items();
  CROWDTOPK_CHECK(k >= 1 && k <= n);
  telemetry::PhaseScope trace_phase(platform->recorder(), "tourtree");
  judgment::ComparisonCache cache(options_, platform);

  // Random initial bracket (the expected workload is very sensitive to this
  // permutation, Section 4.1).
  std::vector<ItemId> bracket(n);
  std::iota(bracket.begin(), bracket.end(), 0);
  platform->rng()->Shuffle(&bracket);

  // losers_to[x]: items that lost a match directly to x, in any tournament.
  std::unordered_map<ItemId, std::vector<ItemId>> losers_to;

  core::TopKResult result;
  // Phase "build": the full first tournament crowning the overall champion.
  // Phase "extract": the k-1 replay tournaments among direct losers.
  std::unordered_set<ItemId> extracted;
  std::vector<ItemId> candidates;
  {
    telemetry::PhaseScope trace_build(platform->recorder(), "build");
    const core::TournamentRecord first =
        core::TournamentMax(bracket, &cache, platform,
                            /*charge_platform_rounds=*/true);
    for (const auto& [winner, loser] : first.matches) {
      losers_to[winner].push_back(loser);
    }
    result.items.push_back(first.winner);
    extracted.insert(first.winner);
    // Candidates for the next champion: direct losers to extracted items.
    candidates = losers_to[first.winner];
  }
  telemetry::PhaseScope trace_extract(platform->recorder(), "extract");
  while (static_cast<int64_t>(result.items.size()) < k) {
    CROWDTOPK_CHECK(!candidates.empty());
    const core::TournamentRecord record =
        core::TournamentMax(candidates, &cache, platform,
                            /*charge_platform_rounds=*/true);
    for (const auto& [winner, loser] : record.matches) {
      losers_to[winner].push_back(loser);
    }
    result.items.push_back(record.winner);
    extracted.insert(record.winner);
    // Next candidate pool: old candidates minus the new champion, plus the
    // items that directly lost to the new champion (deduplicated).
    std::vector<ItemId> next;
    std::unordered_set<ItemId> seen;
    for (ItemId o : candidates) {
      if (o != record.winner && extracted.count(o) == 0 && seen.insert(o).second) {
        next.push_back(o);
      }
    }
    for (ItemId o : losers_to[record.winner]) {
      if (extracted.count(o) == 0 && seen.insert(o).second) next.push_back(o);
    }
    candidates = std::move(next);
  }

  result.total_microtasks = platform->total_microtasks();
  result.rounds = platform->rounds();
  return result;
}

}  // namespace crowdtopk::baselines
