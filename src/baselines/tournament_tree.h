// Tournament-tree top-k (Section 4.1, after Davidson et al. [12, 13]).
//
// Items are randomly paired; winners promote until the best item reaches the
// root. The j-th best (j >= 2) is found by re-running a tournament over the
// items that ever lost a match directly to an already-extracted item. All
// matches are confidence-aware comparisons; results are cached, so replayed
// matches are free. Total workload O(Nw + kw log N).

#ifndef CROWDTOPK_BASELINES_TOURNAMENT_TREE_H_
#define CROWDTOPK_BASELINES_TOURNAMENT_TREE_H_

#include <string>

#include "core/topk_algorithm.h"
#include "judgment/comparison.h"

namespace crowdtopk::baselines {

class TournamentTree : public core::TopKAlgorithm {
 public:
  explicit TournamentTree(judgment::ComparisonOptions options)
      : options_(options) {}

  std::string name() const override { return "TourTree"; }

  core::TopKResult Run(crowd::CrowdPlatform* platform, int64_t k) override;

 private:
  judgment::ComparisonOptions options_;
};

}  // namespace crowdtopk::baselines

#endif  // CROWDTOPK_BASELINES_TOURNAMENT_TREE_H_
