// Preference-based racing top-k (Section 2/6, after Busa-Fekete et al. [8]).
//
// PBR ranks items by their expected binary-preference score against a random
// opponent (the "sum of expectations" Borda criterion) and races them with
// Hoeffding confidence intervals: each batch round every undecided item buys
// eta binary votes against uniformly random opponents; an item is accepted
// into the top-k once its lower bound clears all but < k upper bounds, and
// rejected once k items' lower bounds clear its upper bound. Binary votes
// plus Hoeffding's loose intervals make PBR far more expensive than the
// preference-judgment methods (Table 7), which is exactly the paper's point.

#ifndef CROWDTOPK_BASELINES_PBR_H_
#define CROWDTOPK_BASELINES_PBR_H_

#include <string>

#include "core/topk_algorithm.h"
#include "judgment/comparison.h"

namespace crowdtopk::baselines {

class PbrTopK : public core::TopKAlgorithm {
 public:
  // `options` supplies alpha, batch_size, and budget; the racing cap per
  // item is `per_item_budget_factor * options.budget` samples, after which
  // remaining decisions fall back to the empirical means.
  explicit PbrTopK(judgment::ComparisonOptions options,
                   int64_t per_item_budget_factor = 8)
      : options_(options),
        per_item_budget_factor_(per_item_budget_factor) {}

  std::string name() const override { return "PBR"; }

  core::TopKResult Run(crowd::CrowdPlatform* platform, int64_t k) override;

 private:
  judgment::ComparisonOptions options_;
  int64_t per_item_budget_factor_;
};

}  // namespace crowdtopk::baselines

#endif  // CROWDTOPK_BASELINES_PBR_H_
