#include "baselines/crowd_bt.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "opt/lbfgs.h"
#include "telemetry/recorder.h"
#include "util/check.h"

namespace crowdtopk::baselines {

using core::ItemId;

core::TopKResult CrowdBt::Run(crowd::CrowdPlatform* platform, int64_t k) {
  const int64_t n = platform->num_items();
  CROWDTOPK_CHECK(k >= 1 && k <= n);
  CROWDTOPK_CHECK_GE(n, 2);

  telemetry::PhaseScope trace_phase(platform->recorder(), "crowdbt");

  // Phase 1: spend the budget on binary votes over random pairs.
  // wins[(i, j)] with i < j counts votes; value.first = votes for i.
  std::unordered_map<uint64_t, std::pair<int64_t, int64_t>> votes;
  std::vector<double> scratch;
  int64_t spent = 0;
  {
    telemetry::PhaseScope trace_votes(platform->recorder(), "votes");
    while (spent < options_.total_budget) {
      const int64_t wave =
          std::min(options_.batch_size * n, options_.total_budget - spent);
      for (int64_t t = 0; t < wave; ++t) {
        ItemId i = static_cast<ItemId>(platform->rng()->UniformInt(n));
        ItemId j = i;
        while (j == i) j = static_cast<ItemId>(platform->rng()->UniformInt(n));
        if (i > j) std::swap(i, j);
        scratch.clear();
        platform->CollectBinaryVotes(i, j, 1, &scratch);
        const uint64_t key =
            (static_cast<uint64_t>(static_cast<uint32_t>(i)) << 32) |
            static_cast<uint32_t>(j);
        auto& record = votes[key];
        if (scratch.front() > 0.0) {
          ++record.first;
        } else {
          ++record.second;
        }
      }
      spent += wave;
      platform->NextRound();
    }
  }

  // The BTL fit buys nothing and runs platform-side, so it opens no phase;
  // its cost is pure CPU time outside the crowd's accounting.
  // Phase 2: BTL maximum likelihood. NLL(s) = -sum over votes of
  // log sigmoid(s_winner - s_loser) + (lambda/2)||s||^2.
  // Flatten the vote map first: the objective is evaluated hundreds of
  // times by the optimiser and a contiguous scan is several times faster
  // than hash-map iteration.
  struct VoteRecord {
    ItemId i;
    ItemId j;
    double wins_i;
    double wins_j;
  };
  std::vector<VoteRecord> vote_list;
  vote_list.reserve(votes.size());
  for (const auto& [key, record] : votes) {
    vote_list.push_back({static_cast<ItemId>(key >> 32),
                         static_cast<ItemId>(key & 0xffffffffu),
                         static_cast<double>(record.first),
                         static_cast<double>(record.second)});
  }
  const double lambda = options_.l2_penalty;
  // Normalise by the vote count: the optimum is unchanged but unit L-BFGS
  // steps become well-scaled, cutting the line-search backtracking that
  // otherwise dominates the fit's runtime.
  const double inv_votes =
      1.0 / std::max<double>(1.0, static_cast<double>(spent));
  auto objective = [&](const std::vector<double>& s,
                       std::vector<double>* gradient) {
    double nll = 0.0;
    std::fill(gradient->begin(), gradient->end(), 0.0);
    for (const VoteRecord& record : vote_list) {
      const ItemId i = record.i;
      const ItemId j = record.j;
      const double d = s[i] - s[j];
      // log(1 + e^-d) computed stably.
      const double log1p_exp_neg = d > 0 ? std::log1p(std::exp(-d))
                                         : -d + std::log1p(std::exp(d));
      const double log1p_exp_pos = log1p_exp_neg + d;
      const double sigmoid = 1.0 / (1.0 + std::exp(-d));
      const double wi = record.wins_i;
      const double wj = record.wins_j;
      nll += wi * log1p_exp_neg + wj * log1p_exp_pos;
      const double g = -wi * (1.0 - sigmoid) + wj * sigmoid;
      (*gradient)[i] += g;
      (*gradient)[j] -= g;
    }
    for (size_t index = 0; index < s.size(); ++index) {
      nll += 0.5 * lambda * s[index] * s[index];
      (*gradient)[index] += lambda * s[index];
    }
    nll *= inv_votes;
    for (double& g : *gradient) g *= inv_votes;
    return nll;
  };

  opt::LbfgsOptions lbfgs_options;
  lbfgs_options.max_iterations = options_.max_iterations;
  const opt::LbfgsResult fit = opt::MinimizeLbfgs(
      objective, std::vector<double>(n, 0.0), lbfgs_options);
  fitted_scores_ = fit.x;

  std::vector<ItemId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](ItemId a, ItemId b) {
    if (fitted_scores_[a] != fitted_scores_[b]) {
      return fitted_scores_[a] > fitted_scores_[b];
    }
    return a < b;
  });
  order.resize(k);

  core::TopKResult result;
  result.items = std::move(order);
  result.total_microtasks = platform->total_microtasks();
  result.rounds = platform->rounds();
  return result;
}

}  // namespace crowdtopk::baselines
