#include "baselines/hybrid.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "judgment/cache.h"
#include "judgment/graded.h"
#include "telemetry/recorder.h"
#include "util/check.h"

namespace crowdtopk::baselines {

using core::ItemId;

namespace {

// Runs the grading filter: buys `grades_per_item` grades for every item and
// returns the `keep` best ids (with their mean grades via *grades_out).
std::vector<ItemId> FilterByGrades(int64_t grades_per_item, int64_t keep,
                                   int64_t batch_size,
                                   crowd::CrowdPlatform* platform,
                                   std::vector<double>* grades_out) {
  const int64_t n = platform->num_items();
  std::vector<ItemId> all(n);
  std::iota(all.begin(), all.end(), 0);
  const std::vector<double> grades = judgment::CollectMeanGrades(
      all, grades_per_item, batch_size, platform);
  std::vector<ItemId> ranked = judgment::RankByGrades(all, grades);
  ranked.resize(std::min<int64_t>(keep, n));
  if (grades_out != nullptr) *grades_out = grades;
  return ranked;
}

}  // namespace

core::TopKResult Hybrid::Run(crowd::CrowdPlatform* platform, int64_t k) {
  const int64_t n = platform->num_items();
  CROWDTOPK_CHECK(k >= 1 && k <= n);
  telemetry::PhaseScope trace_phase(platform->recorder(), "hybrid");

  const int64_t keep = std::min<int64_t>(
      n, std::max<int64_t>(
             k, static_cast<int64_t>(std::llround(options_.keep_factor *
                                                  static_cast<double>(k)))));
  const int64_t filter_budget = static_cast<int64_t>(
      static_cast<double>(options_.total_budget) * options_.filter_fraction);
  const int64_t grades_per_item =
      std::max<int64_t>(1, filter_budget / std::max<int64_t>(n, 1));

  std::vector<double> grades;
  std::vector<ItemId> survivors;
  {
    telemetry::PhaseScope trace_filter(platform->recorder(), "filter");
    survivors = FilterByGrades(grades_per_item, keep, options_.batch_size,
                               platform, &grades);
  }

  // Ranking phase: round-robin binary votes over the surviving pairs until
  // the budget runs out; score = vote share, grades break ties.
  telemetry::PhaseScope trace_rank(platform->recorder(), "rank");
  const int64_t m = static_cast<int64_t>(survivors.size());
  std::vector<std::vector<int64_t>> wins(m, std::vector<int64_t>(m, 0));
  std::vector<double> scratch;
  int64_t remaining = options_.total_budget - platform->total_microtasks();
  while (remaining >= m * (m - 1) / 2 && m >= 2) {
    // One full round-robin sweep; all pairs run in parallel.
    for (int64_t a = 0; a < m; ++a) {
      for (int64_t b = a + 1; b < m; ++b) {
        scratch.clear();
        platform->CollectBinaryVotes(survivors[a], survivors[b], 1, &scratch);
        if (scratch.front() > 0.0) {
          ++wins[a][b];
        } else {
          ++wins[b][a];
        }
      }
    }
    platform->NextRound();
    remaining = options_.total_budget - platform->total_microtasks();
  }

  std::vector<double> score(m, 0.0);
  for (int64_t a = 0; a < m; ++a) {
    for (int64_t b = 0; b < m; ++b) {
      score[a] += static_cast<double>(wins[a][b]);
    }
  }
  std::vector<int64_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    if (score[a] != score[b]) return score[a] > score[b];
    const double ga = grades[survivors[a]];
    const double gb = grades[survivors[b]];
    if (ga != gb) return ga > gb;
    return survivors[a] < survivors[b];
  });

  core::TopKResult result;
  for (int64_t index = 0; index < std::min<int64_t>(k, m); ++index) {
    result.items.push_back(survivors[order[index]]);
  }
  result.total_microtasks = platform->total_microtasks();
  result.rounds = platform->rounds();
  return result;
}

core::TopKResult HybridSpr::Run(crowd::CrowdPlatform* platform, int64_t k) {
  const int64_t n = platform->num_items();
  CROWDTOPK_CHECK(k >= 1 && k <= n);
  telemetry::PhaseScope trace_phase(platform->recorder(), "hybrid_spr");

  const int64_t keep = std::min<int64_t>(
      n, std::max<int64_t>(
             k, static_cast<int64_t>(std::llround(options_.keep_factor *
                                                  static_cast<double>(k)))));
  std::vector<ItemId> survivors;
  {
    telemetry::PhaseScope trace_filter(platform->recorder(), "filter");
    survivors =
        FilterByGrades(options_.grades_per_item, keep,
                       options_.spr.comparison.batch_size, platform, nullptr);
  }

  // The SPR stage opens its own select/partition/rank phases beneath this
  // one.
  core::Spr spr(options_.spr);
  judgment::ComparisonCache cache(options_.spr.comparison, platform);
  std::vector<ItemId> ranked = spr.RunOnItems(survivors, k, &cache, platform);

  core::TopKResult result;
  result.items = std::move(ranked);
  result.total_microtasks = platform->total_microtasks();
  result.rounds = platform->rounds();
  return result;
}

}  // namespace crowdtopk::baselines
