#include "baselines/heap_sort.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/sorting.h"
#include "judgment/cache.h"
#include "telemetry/recorder.h"
#include "util/check.h"

namespace crowdtopk::baselines {

using core::ItemId;

namespace {

// "a is (crowd-)better than b": confirmed outcome if reachable, otherwise
// the estimated-mean tie-break (deterministic: id order on dead-even).
bool Better(ItemId a, ItemId b, judgment::ComparisonCache* cache,
            crowd::CrowdPlatform* platform) {
  const auto outcome = cache->Compare(a, b, platform);
  if (outcome == crowd::ComparisonOutcome::kLeftWins) return true;
  if (outcome == crowd::ComparisonOutcome::kRightWins) return false;
  const double mean = cache->EstimatedMean(a, b);
  if (mean != 0.0) return mean > 0.0;
  return a < b;
}

// Sifts heap[index] down in the min-heap ("worse item on top").
void SiftDown(std::vector<ItemId>* heap, size_t index,
              judgment::ComparisonCache* cache,
              crowd::CrowdPlatform* platform) {
  const size_t size = heap->size();
  while (true) {
    const size_t left = 2 * index + 1;
    const size_t right = 2 * index + 2;
    size_t worst = index;
    if (left < size &&
        Better((*heap)[worst], (*heap)[left], cache, platform)) {
      worst = left;
    }
    if (right < size &&
        Better((*heap)[worst], (*heap)[right], cache, platform)) {
      worst = right;
    }
    if (worst == index) return;
    std::swap((*heap)[index], (*heap)[worst]);
    index = worst;
  }
}

}  // namespace

core::TopKResult HeapSortTopK::Run(crowd::CrowdPlatform* platform,
                                   int64_t k) {
  const int64_t n = platform->num_items();
  CROWDTOPK_CHECK(k >= 1 && k <= n);
  telemetry::PhaseScope trace_phase(platform->recorder(), "heapsort");
  judgment::ComparisonCache cache(options_, platform);

  std::vector<ItemId> order(n);
  std::iota(order.begin(), order.end(), 0);
  platform->rng()->Shuffle(&order);

  // Seed the min-heap with k random items (performance is sensitive to this
  // choice, Section 4.2) and heapify.
  std::vector<ItemId> heap(order.begin(), order.begin() + k);
  {
    telemetry::PhaseScope trace_heapify(platform->recorder(), "heapify");
    for (size_t index = heap.size() / 2 + 1; index-- > 0;) {
      SiftDown(&heap, index, &cache, platform);
    }
  }

  // Sequentially race every other item against the current k-th best.
  {
    telemetry::PhaseScope trace_scan(platform->recorder(), "scan");
    for (int64_t position = k; position < n; ++position) {
      const ItemId challenger = order[position];
      if (Better(challenger, heap.front(), &cache, platform)) {
        heap.front() = challenger;
        SiftDown(&heap, 0, &cache, platform);
      }
    }
  }

  // Rank the k survivors best-first. Judgments among them are largely
  // cached, so this final sort is cheap.
  {
    telemetry::PhaseScope trace_rank(platform->recorder(), "rank");
    core::ConfirmSort(&heap, &cache, platform);
  }
  core::TopKResult result;
  result.items = std::move(heap);
  result.total_microtasks = platform->total_microtasks();
  result.rounds = platform->rounds();
  return result;
}

}  // namespace crowdtopk::baselines
