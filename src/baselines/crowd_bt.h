// CrowdBT baseline (Section 6.5, after Chen et al. [9]).
//
// A non-confidence-aware heuristic: spend a *fixed* budget on binary votes
// over randomly chosen pairs, fit Bradley-Terry-Luce scores by maximum
// likelihood (L-BFGS, as the paper optimises with BFGS [31]), and return the
// top-k by fitted score. Our simulated workers are homogeneous, so the
// per-worker reliability term of the original CrowdBT reduces to the plain
// BTL likelihood.

#ifndef CROWDTOPK_BASELINES_CROWD_BT_H_
#define CROWDTOPK_BASELINES_CROWD_BT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/topk_algorithm.h"

namespace crowdtopk::baselines {

class CrowdBt : public core::TopKAlgorithm {
 public:
  struct Options {
    // Total microtask budget (the harness sets this to SPR's measured TMC
    // for fairness, as in Fig. 14).
    int64_t total_budget = 100000;
    // Microtasks distributed per batch round.
    int64_t batch_size = 30;
    // L-BFGS iterations (the paper runs BFGS for 100 iterations).
    int max_iterations = 100;
    // L2 regularisation of the BTL scores (keeps the likelihood bounded for
    // items with one-sided records).
    double l2_penalty = 0.05;
  };

  explicit CrowdBt(Options options) : options_(options) {}

  std::string name() const override { return "CrowdBT"; }

  core::TopKResult Run(crowd::CrowdPlatform* platform, int64_t k) override;

  // Run() publishes the fitted scores below, so concurrent repetitions on
  // one CrowdBt object would race; the experiment engine serialises them.
  bool concurrent_runs_safe() const override { return false; }

  // Fitted BTL scores of the last Run (index = item id); for analyses.
  const std::vector<double>& fitted_scores() const { return fitted_scores_; }

 private:
  Options options_;
  std::vector<double> fitted_scores_;
};

}  // namespace crowdtopk::baselines

#endif  // CROWDTOPK_BASELINES_CROWD_BT_H_
