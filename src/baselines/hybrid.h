// Hybrid strategies (Section 6.5, after Khan & Garcia-Molina [26]).
//
// Hybrid: a fixed budget is split between (1) a *filtering* phase that
// grades every item and keeps only the highest-rated candidates and (2) a
// *ranking* phase that round-robins binary votes over the surviving pairs
// and ranks by wins (grades break ties).
//
// HybridSPR: the same filtering phase, but the survivors are ranked by SPR
// (confidence-aware); its total cost is therefore variable, and the paper
// reports it saves ~10% monetary cost over SPR while matching Hybrid's NDCG.

#ifndef CROWDTOPK_BASELINES_HYBRID_H_
#define CROWDTOPK_BASELINES_HYBRID_H_

#include <cstdint>
#include <string>

#include "core/spr.h"
#include "core/topk_algorithm.h"
#include "judgment/comparison.h"

namespace crowdtopk::baselines {

class Hybrid : public core::TopKAlgorithm {
 public:
  struct Options {
    // Total microtask budget (harness: SPR's measured TMC, as in Fig. 14).
    int64_t total_budget = 100000;
    // Fraction of the budget spent on the grading/filtering phase.
    double filter_fraction = 0.5;
    // Survivors kept by the filter, as a multiple of k (>= 1).
    double keep_factor = 3.0;
    // Batch size for latency accounting.
    int64_t batch_size = 30;
  };

  explicit Hybrid(Options options) : options_(options) {}

  std::string name() const override { return "Hybrid"; }

  core::TopKResult Run(crowd::CrowdPlatform* platform, int64_t k) override;

 private:
  Options options_;
};

class HybridSpr : public core::TopKAlgorithm {
 public:
  struct Options {
    // Grades purchased per item during the filter phase.
    int64_t grades_per_item = 30;
    // Survivors kept by the filter, as a multiple of k (>= 1).
    double keep_factor = 3.0;
    // SPR settings for the ranking phase.
    core::SprOptions spr;
  };

  explicit HybridSpr(Options options) : options_(std::move(options)) {}

  std::string name() const override { return "HybridSPR"; }

  core::TopKResult Run(crowd::CrowdPlatform* platform, int64_t k) override;

 private:
  Options options_;
};

}  // namespace crowdtopk::baselines

#endif  // CROWDTOPK_BASELINES_HYBRID_H_
