// Quick-selection top-k (Section 4.3, after Hoare's FIND [22]).
//
// Recursively partitions the items around a random pivot (one parallel batch
// wave per level) and recurses into the side containing the k-th item.
// Average workload O(Nw + kw log k), worst case O(N^2 w). The pivot is not
// confidence-steered, so near-pivot comparisons can be very expensive --
// exactly the weakness SPR's sweet-spot reference avoids.

#ifndef CROWDTOPK_BASELINES_QUICK_SELECT_H_
#define CROWDTOPK_BASELINES_QUICK_SELECT_H_

#include <string>

#include "core/topk_algorithm.h"
#include "judgment/comparison.h"

namespace crowdtopk::baselines {

class QuickSelectTopK : public core::TopKAlgorithm {
 public:
  explicit QuickSelectTopK(judgment::ComparisonOptions options)
      : options_(options) {}

  std::string name() const override { return "QuickSelect"; }

  core::TopKResult Run(crowd::CrowdPlatform* platform, int64_t k) override;

 private:
  judgment::ComparisonOptions options_;
};

}  // namespace crowdtopk::baselines

#endif  // CROWDTOPK_BASELINES_QUICK_SELECT_H_
