// Heap-sort top-k (Section 4.2).
//
// A min-heap of k candidate items is seeded with k random items; every other
// item is then tested sequentially against the heap's minimum and replaces
// it when better. Comparisons are confidence-aware and inherently
// sequential, so the latency is high (Section 5.5). Total workload
// O(Nw log k).

#ifndef CROWDTOPK_BASELINES_HEAP_SORT_H_
#define CROWDTOPK_BASELINES_HEAP_SORT_H_

#include <string>

#include "core/topk_algorithm.h"
#include "judgment/comparison.h"

namespace crowdtopk::baselines {

class HeapSortTopK : public core::TopKAlgorithm {
 public:
  explicit HeapSortTopK(judgment::ComparisonOptions options)
      : options_(options) {}

  std::string name() const override { return "HeapSort"; }

  core::TopKResult Run(crowd::CrowdPlatform* platform, int64_t k) override;

 private:
  judgment::ComparisonOptions options_;
};

}  // namespace crowdtopk::baselines

#endif  // CROWDTOPK_BASELINES_HEAP_SORT_H_
