#include "baselines/pbr.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "stats/hoeffding.h"
#include "stats/running_stats.h"
#include "telemetry/recorder.h"
#include "util/check.h"

namespace crowdtopk::baselines {

using core::ItemId;

core::TopKResult PbrTopK::Run(crowd::CrowdPlatform* platform, int64_t k) {
  const int64_t n = platform->num_items();
  CROWDTOPK_CHECK(k >= 1 && k <= n);
  CROWDTOPK_CHECK_GE(n, 2);
  telemetry::PhaseScope trace_phase(platform->recorder(), "pbr");

  std::vector<stats::RunningStats> scores(n);
  std::vector<bool> active(n, true);
  std::vector<ItemId> selected;
  std::vector<double> votes_scratch;
  const int64_t cap = per_item_budget_factor_ * options_.budget;
  int64_t num_active = n;

  telemetry::PhaseScope trace_race(platform->recorder(), "race");
  while (static_cast<int64_t>(selected.size()) < k &&
         num_active > k - static_cast<int64_t>(selected.size())) {
    // One batch round: every racing item buys eta binary votes against
    // uniformly random opponents (parallel across items).
    bool bought = false;
    for (ItemId i = 0; i < n; ++i) {
      if (!active[i] || scores[i].count() >= cap) continue;
      for (int64_t t = 0; t < options_.batch_size; ++t) {
        ItemId opponent = i;
        while (opponent == i) {
          opponent = static_cast<ItemId>(platform->rng()->UniformInt(n));
        }
        votes_scratch.clear();
        platform->CollectBinaryVotes(i, opponent, 1, &votes_scratch);
        scores[i].Add(votes_scratch.front());
      }
      bought = true;
    }
    if (bought) platform->NextRound();

    // Racing bounds. Racing makes simultaneous claims about all N items, so
    // the per-item confidence is union-bound corrected (as in the racing
    // literature); this is a large part of why PBR's binary-vote racing is
    // so much more expensive than per-pair confidence-aware comparisons.
    const double corrected_alpha = options_.alpha / static_cast<double>(n);
    std::vector<double> lower(n), upper(n);
    std::vector<double> active_uppers, active_lowers;
    for (ItemId i = 0; i < n; ++i) {
      if (!active[i]) continue;
      const double half = stats::HoeffdingHalfWidth(
          std::max<int64_t>(scores[i].count(), 1), 2.0, corrected_alpha);
      lower[i] = scores[i].Mean() - half;
      upper[i] = scores[i].Mean() + half;
      active_uppers.push_back(upper[i]);
      active_lowers.push_back(lower[i]);
    }
    std::sort(active_uppers.begin(), active_uppers.end());
    std::sort(active_lowers.begin(), active_lowers.end());

    // Decide accepts/rejects against a consistent snapshot of this round's
    // bounds (applying them mid-scan would mix stale counts with a shrunken
    // active set and can mis-select).
    const int64_t k_remaining = k - static_cast<int64_t>(selected.size());
    const int64_t snapshot_active = num_active;
    std::vector<ItemId> accepts, rejects;
    for (ItemId i = 0; i < n; ++i) {
      if (!active[i]) continue;
      // Accept: i's lower bound beats all but < k_remaining active uppers.
      const int64_t uppers_below =
          std::lower_bound(active_uppers.begin(), active_uppers.end(),
                           lower[i]) -
          active_uppers.begin();  // strictly below lower[i]
      // Reject: >= k_remaining active lowers beat i's upper bound.
      const int64_t lowers_above =
          active_lowers.end() -
          std::upper_bound(active_lowers.begin(), active_lowers.end(),
                           upper[i]);  // strictly above upper[i]
      if (uppers_below >= snapshot_active - k_remaining) {
        accepts.push_back(i);
      } else if (lowers_above >= k_remaining) {
        rejects.push_back(i);
      }
    }
    for (ItemId i : accepts) {
      if (static_cast<int64_t>(selected.size()) >= k) break;
      selected.push_back(i);
      active[i] = false;
      --num_active;
    }
    for (ItemId i : rejects) {
      if (num_active <= k - static_cast<int64_t>(selected.size())) break;
      active[i] = false;
      --num_active;
    }

    if (!bought) {
      // Every racer hit the cap without separating: fall back to the
      // empirical means for the remaining slots.
      std::vector<ItemId> rest;
      for (ItemId i = 0; i < n; ++i) {
        if (active[i]) rest.push_back(i);
      }
      std::sort(rest.begin(), rest.end(), [&](ItemId a, ItemId b) {
        return scores[a].Mean() > scores[b].Mean();
      });
      for (ItemId i : rest) {
        if (static_cast<int64_t>(selected.size()) >= k) break;
        selected.push_back(i);
      }
      break;
    }
  }

  // If the race collapsed to exactly k_remaining survivors, they are all in.
  if (static_cast<int64_t>(selected.size()) < k) {
    for (ItemId i = 0; i < n; ++i) {
      if (active[i] && static_cast<int64_t>(selected.size()) < k) {
        selected.push_back(i);
      }
    }
  }

  // Rank the selected items by empirical Borda mean.
  std::sort(selected.begin(), selected.end(), [&](ItemId a, ItemId b) {
    if (scores[a].Mean() != scores[b].Mean()) {
      return scores[a].Mean() > scores[b].Mean();
    }
    return a < b;
  });

  core::TopKResult result;
  result.items = std::move(selected);
  result.total_microtasks = platform->total_microtasks();
  result.rounds = platform->rounds();
  return result;
}

}  // namespace crowdtopk::baselines
