#include "baselines/quick_select.h"

#include <numeric>
#include <vector>

#include "core/sorting.h"
#include "judgment/cache.h"
#include "telemetry/recorder.h"
#include "util/check.h"

namespace crowdtopk::baselines {

using core::ItemId;

namespace {

// Partitions `items` around a pivot in parallel batch waves and recurses
// into the side holding the top-k boundary.
std::vector<ItemId> TopKSet(std::vector<ItemId> items, int64_t k,
                            judgment::ComparisonCache* cache,
                            crowd::CrowdPlatform* platform) {
  if (k <= 0) return {};
  if (static_cast<int64_t>(items.size()) <= k) return items;

  const ItemId pivot =
      items[platform->rng()->UniformInt(static_cast<int64_t>(items.size()))];
  // One parallel wave set: every non-pivot item races against the pivot.
  const int64_t batch = cache->options().batch_size;
  while (true) {
    bool stepped = false;
    for (ItemId o : items) {
      if (o == pivot) continue;
      auto* session = cache->GetSession(o, pivot);
      if (!session->Finished()) {
        session->Step(platform, batch);
        stepped = true;
      }
    }
    if (!stepped) break;
    platform->NextRound();
  }

  std::vector<ItemId> winners;
  std::vector<ItemId> losers;
  for (ItemId o : items) {
    if (o == pivot) continue;
    auto* session = cache->GetSession(o, pivot);
    auto outcome = session->left() == o ? session->outcome()
                                        : crowd::Reverse(session->outcome());
    if (outcome == crowd::ComparisonOutcome::kTie) {
      // Quick selection must place every item; budget-exhausted ties fall
      // back to the estimated mean.
      outcome = cache->EstimatedMean(o, pivot) > 0.0
                    ? crowd::ComparisonOutcome::kLeftWins
                    : crowd::ComparisonOutcome::kRightWins;
    }
    if (outcome == crowd::ComparisonOutcome::kLeftWins) {
      winners.push_back(o);
    } else {
      losers.push_back(o);
    }
  }

  if (static_cast<int64_t>(winners.size()) >= k) {
    return TopKSet(std::move(winners), k, cache, platform);
  }
  const int64_t still_needed =
      k - static_cast<int64_t>(winners.size()) - 1;  // pivot is selected
  winners.push_back(pivot);
  std::vector<ItemId> rest =
      TopKSet(std::move(losers), still_needed, cache, platform);
  winners.insert(winners.end(), rest.begin(), rest.end());
  return winners;
}

}  // namespace

core::TopKResult QuickSelectTopK::Run(crowd::CrowdPlatform* platform,
                                      int64_t k) {
  const int64_t n = platform->num_items();
  CROWDTOPK_CHECK(k >= 1 && k <= n);
  telemetry::PhaseScope trace_phase(platform->recorder(), "quickselect");
  judgment::ComparisonCache cache(options_, platform);

  std::vector<ItemId> items(n);
  std::iota(items.begin(), items.end(), 0);
  std::vector<ItemId> selected;
  {
    telemetry::PhaseScope trace_select(platform->recorder(), "select");
    selected = TopKSet(std::move(items), k, &cache, platform);
  }
  telemetry::PhaseScope trace_rank(platform->recorder(), "rank");
  core::ConfirmSort(&selected, &cache, platform);

  core::TopKResult result;
  result.items = std::move(selected);
  result.total_microtasks = platform->total_microtasks();
  result.rounds = platform->rounds();
  return result;
}

}  // namespace crowdtopk::baselines
