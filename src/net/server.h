// TCP front-end exposing serve::QueryService to remote clients.
//
// Architecture (docs/NETWORK.md): two threads plus whatever the serving
// layer spawns internally.
//
//   network thread — the caller of Serve(). A poll(2) event loop over the
//   listening socket, a self-pipe (drain wakeups from signal handlers and
//   result wakeups from the engine), and every live connection. Sockets
//   are non-blocking; each connection owns a FrameReader and a bounded
//   write buffer. Backpressure: a connection whose write buffer passes the
//   high watermark stops being read until it drains, and one that passes
//   the hard cap is closed as a slow consumer. Connections idle past
//   idle_timeout_ms with no in-flight queries are closed. When the
//   connection table is full, a new connection is greeted with an
//   UNAVAILABLE error frame and closed.
//
//   engine thread — owns the actual query execution. Accepted submissions
//   queue FIFO; the engine drains the queue into a batch and replays it
//   through one serve::QueryService (arrivals all zero, shared crowd
//   capacity, per-query algorithm/alpha/budget), so queries that arrive
//   together share worker slots and — when the cache is enabled — reuse
//   each other's judgments. Batch b runs under seed SplitSeed(seed, b) and
//   inherits the previous batch's committed cache entries through
//   QueryService::ExportCache -> warm_cache, the same cross-generation
//   path a --warm restart uses. With a single blocking client the batch
//   sequence (and thus every outcome) is a pure function of the seed,
//   which is what makes the loadgen report byte-reproducible.
//
// Graceful drain: RequestDrain() is async-signal-safe (an atomic store and
// a self-pipe write), so a SIGTERM handler may call it directly. Draining
// stops the acceptor, answers new SubmitQuery frames with UNAVAILABLE,
// finishes every already-accepted query, flushes the results, and returns
// from Serve(). Queries still waiting in the engine queue when
// drain_timeout_ms expires are rejected with UNAVAILABLE; the batch in
// flight always runs to completion.

#ifndef CROWDTOPK_NET_SERVER_H_
#define CROWDTOPK_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "cache/judgment_cache.h"
#include "core/topk_algorithm.h"
#include "data/dataset.h"
#include "judgment/comparison.h"
#include "net/engine.h"
#include "net/protocol.h"
#include "serve/batch_scheduler.h"
#include "serve/query_service.h"
#include "util/clock.h"
#include "util/status.h"

namespace crowdtopk::net {

// Resolves a SubmitQuery dataset name; nullptr = unknown name (the client
// gets an INVALID_ARGUMENT error frame). Results are memoized per name.
using DatasetFactory = std::function<std::unique_ptr<data::Dataset>(
    const std::string& name, uint64_t seed)>;

// Resolves a SubmitQuery algorithm name under the query's comparison
// options (alpha, budget); nullptr = unknown name. Memoized per
// (name, alpha, budget); instances must be concurrent_runs_safe().
using AlgorithmFactory = std::function<std::unique_ptr<core::TopKAlgorithm>(
    const std::string& name, const judgment::ComparisonOptions& options)>;

// The built-in factories the CLI uses: the five paper datasets by name,
// and spr / tourtree / heapsort / quickselect.
DatasetFactory DefaultDatasetFactory();
AlgorithmFactory DefaultAlgorithmFactory();

// Maps a serve-layer admission rejection onto the wire error taxonomy —
// the machine-readable path that replaces string-matching the status.
ErrorCode MapRejectReason(serve::RejectReason reason);

struct ServerOptions;

// Builds the engine the front-end drives (net/engine.h). `wake` must be
// called after posting completions so the poll loop picks them up; it is
// async-safe (a self-pipe write). Null picks the built-in BatchEngine.
using EngineFactory = std::function<std::unique_ptr<Engine>(
    const ServerOptions& options, std::function<void()> wake)>;

struct ServerOptions {
  // TCP port on 127.0.0.1; 0 (the default) binds a kernel-assigned
  // ephemeral port — read it back with port() (the CLI prints it, the
  // smoke script parses it), so concurrent servers never race on a fixed
  // port. Set a positive port only for a long-lived deployment.
  int64_t port = 0;
  int64_t max_connections = 64;
  // Connections with no traffic and no in-flight queries for this long
  // are closed; <= 0 disables.
  int64_t idle_timeout_ms = 60000;
  // Drain budget: queries still queued (not yet batched) past it are
  // rejected instead of executed.
  int64_t drain_timeout_ms = 30000;
  // Admission bound across engine queue + in-flight batch; arrivals past
  // it are refused with a QUEUE_FULL error frame. < 0 = unbounded.
  int64_t max_queue = 256;

  // Engine: one serve::QueryService per batch, built from these.
  uint64_t seed = 20170514;
  serve::ScheduleOptions schedule;
  int64_t max_inflight = 16;
  int64_t jobs = 1;
  // Shared judgment cache; committed entries chain across batches.
  cache::CacheOptions cache;

  // Non-empty: write net/* telemetry counters (per connection and
  // aggregate) to <trace_dir>/net_server.trace.jsonl when Serve returns.
  std::string trace_dir;

  // Time source for idle timeouts and the drain deadline. Null = wall
  // clock. The simulation harness (src/sim) injects a util::SimClock so
  // timeout behaviour is script-controlled; with a non-null clock the
  // event loop polls on a short wall tick to observe simulated-time
  // advances promptly.
  const util::Clock* clock = nullptr;

  // Test injection points; null picks the defaults above.
  DatasetFactory dataset_factory;
  AlgorithmFactory algorithm_factory;
  // Execution engine behind the front-end; null = the single-process
  // BatchEngine. crowdtopk_router injects shard::RouterEngine here and
  // reuses the whole socket/drain front-end unchanged.
  EngineFactory engine_factory;
};

class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds 127.0.0.1:port, starts listening, and spawns the engine thread.
  util::Status Start();

  // Port actually bound (meaningful after Start; equals options.port
  // unless that was 0).
  int port() const { return port_; }

  // Runs the event loop on the calling thread until a drain completes.
  // Call Start() first.
  void Serve();

  // Begins a graceful drain; async-signal-safe (atomic store + pipe
  // write), so SIGTERM handlers may call it directly. Idempotent.
  void RequestDrain();

  // Live counter snapshot; safe from any thread.
  StatsReply Stats() const;

 private:
  struct Connection;
  class Impl;
  std::unique_ptr<Impl> impl_;
  int port_ = 0;
};

}  // namespace crowdtopk::net

#endif  // CROWDTOPK_NET_SERVER_H_
