// Engine: the execution half of the network server.
//
// net::Server splits into two layers. The *front-end* (server.cc's poll
// loop) owns sockets, framing, handshakes, backpressure, and drain
// sequencing; the *engine* owns query execution. This interface is the
// seam between them: the front-end validates and forwards submissions,
// the engine answers with Completions it posts back for delivery. Two
// implementations exist —
//
//   net::BatchEngine   (server.cc)  one serve::QueryService per batch,
//                                   single-process execution;
//   shard::RouterEngine (src/shard) scatter across K engine shards with
//                                   failover and cross-shard cache sync.
//
// Threading contract: Submit/State/Cancel/BeginDrain/AbortQueued/
// TakeCompletions/Drained are called on the network thread; the engine
// runs execution on its own thread(s) and calls the wake function it was
// constructed with after posting completions, so the poll loop re-checks
// TakeCompletions. All methods must be safe against that internal thread.

#ifndef CROWDTOPK_NET_ENGINE_H_
#define CROWDTOPK_NET_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "util/status.h"

namespace crowdtopk::net {

// Terminal outcome of one accepted submission, addressed to the
// connection that submitted it.
struct Completion {
  int64_t conn_id = 0;
  int64_t query_id = 0;
  // Rejected at admission: deliver an error frame instead of a result.
  bool send_error = false;
  ErrorCode error_code = ErrorCode::kInternal;
  std::string error_message;
  Result result;
};

class Engine {
 public:
  virtual ~Engine() = default;

  // Validates and queues one submission; returns the assigned query id.
  // Called on the network thread.
  virtual util::StatusOr<int64_t> Submit(int64_t conn_id,
                                         const SubmitQuery& spec) = 0;

  // Where `query_id` is in its lifecycle.
  virtual QueryState State(int64_t query_id) const = 0;

  // Removes a still-queued query. On success fills the submitter's conn id
  // so the server can clear its pending bookkeeping.
  virtual bool Cancel(int64_t query_id, int64_t* submitter_conn) = 0;

  // Stops accepting work and lets the queue run dry.
  virtual void BeginDrain() = 0;

  // Drain-deadline path: reject everything still waiting for a batch. The
  // batch in flight (if any) always completes.
  virtual void AbortQueued() = 0;

  virtual std::vector<Completion> TakeCompletions() = 0;

  // True once a drain has consumed everything: no queued or running
  // queries remain and no completions await delivery.
  virtual bool Drained() const = 0;

  virtual int64_t queued() const = 0;
  virtual int64_t batches() const = 0;

  // Upstream net::Client retry/redial totals (StatsReply::client_retries /
  // client_redials). Nonzero only for engines that dial other servers.
  virtual int64_t upstream_retries() const { return 0; }
  virtual int64_t upstream_redials() const { return 0; }
};

}  // namespace crowdtopk::net

#endif  // CROWDTOPK_NET_ENGINE_H_
