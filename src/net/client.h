// Blocking client for the crowdtopk network protocol (docs/NETWORK.md).
//
// One Client owns one TCP connection and is meant to be used from one
// thread. Every call is synchronous: Connect dials and completes the
// version handshake; Submit sends a query and returns its server-assigned
// id as soon as the kSubmitAck arrives; AwaitResult blocks until the
// server pushes the kResult frame for that id. Results that arrive while
// the client is waiting for something else (a status reply, a different
// query's result) are stashed and handed out when asked for.
//
// Timeouts and retries: connect_timeout_ms bounds the dial, and
// request_timeout_ms bounds each wait for a reply (AwaitResult uses the
// larger result_timeout_ms, since a query may legitimately take a while).
// Connect and Submit transparently retry up to max_retries times when the
// server answers UNAVAILABLE (it is draining or at capacity) or hangs up
// before the reply — each retry redials, so a freshly restarted server is
// picked up. All other errors surface immediately.

#ifndef CROWDTOPK_NET_CLIENT_H_
#define CROWDTOPK_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>

#include "net/protocol.h"
#include "util/clock.h"
#include "util/status.h"

namespace crowdtopk::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  // Must be set to the server's bound port (Server::port(), or the
  // "listening on 127.0.0.1:<port>" line the CLI prints — servers bind
  // ephemeral ports by default). Connect refuses port <= 0.
  int64_t port = 0;
  int64_t connect_timeout_ms = 5000;
  // Per-reply wait for request/reply calls (Submit, QueryStatus, Cancel,
  // Stats).
  int64_t request_timeout_ms = 30000;
  // Wait bound for AwaitResult; queries queue behind whole batches, so
  // this is deliberately larger than request_timeout_ms.
  int64_t result_timeout_ms = 120000;
  // Bounded retries on UNAVAILABLE (and on the server hanging up before a
  // reply); 0 disables retrying.
  int64_t max_retries = 3;
  int64_t retry_backoff_ms = 50;
  // Time source for deadlines and retry backoff. Null = wall clock; the
  // simulation harness injects a util::SimClock (backoff then advances
  // simulated time instead of sleeping).
  const util::Clock* clock = nullptr;
};

class Client {
 public:
  explicit Client(const ClientOptions& options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Dials host:port and runs the version handshake. Safe to call again
  // after a failure or Close; an existing connection is torn down first.
  util::Status Connect();

  bool connected() const { return fd_ >= 0; }
  void Close();

  // Submits one query; returns the server-assigned query id. The result
  // arrives later via AwaitResult.
  util::StatusOr<int64_t> Submit(const SubmitQuery& query);

  // Blocks until the result for `query_id` arrives (or result_timeout_ms
  // elapses). Never retries: the submitting connection is the only place
  // the result will ever be pushed.
  util::StatusOr<Result> AwaitResult(int64_t query_id);

  // Where `query_id` is in its lifecycle, per the server.
  util::StatusOr<QueryState> GetQueryState(int64_t query_id);

  // Asks the server to drop a still-queued query. Returns true when the
  // query was removed, false when it was already running or done.
  util::StatusOr<bool> Cancel(int64_t query_id);

  // Live server counters.
  util::StatusOr<StatsReply> Stats();

  // Lifetime retry traffic of this client: `retries` counts backed-off
  // re-attempts inside Connect/Submit (attempt > 0), `redials` counts TCP
  // dials beyond the first. A router surfaces the sums over its upstream
  // clients in StatsReply::client_retries / client_redials.
  int64_t retries() const { return retries_; }
  int64_t redials() const { return redials_; }

 private:
  util::Status Dial();
  util::Status Handshake();
  util::Status SendMessage(const NetMessage& message);
  // Reads frames until one of `want` arrives, stashing kResult frames for
  // other queries. deadline_ms is absolute on the client's clock.
  util::StatusOr<NetMessage> ReadUntil(MessageType want, int64_t deadline_ms);
  util::Status ReadMore(int64_t deadline_ms);
  int64_t NowMs() const { return clock_->NowMillis(); }
  // Wall-time bound for one poll(2) wait toward a deadline `left` ms away
  // on the client's clock: `left` itself on the wall clock, a short tick
  // under an injected clock (whose deadlines only move when the test
  // advances them).
  int PollWaitMs(int64_t left) const;

  ClientOptions options_;
  const util::Clock* clock_;
  int fd_ = -1;
  FrameReader reader_;
  std::map<int64_t, Result> pending_results_;
  int64_t retries_ = 0;
  int64_t redials_ = 0;
  int64_t dials_ = 0;
};

}  // namespace crowdtopk::net

#endif  // CROWDTOPK_NET_CLIENT_H_
