#include "net/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baselines/heap_sort.h"
#include "baselines/quick_select.h"
#include "baselines/tournament_tree.h"
#include "core/spr.h"
#include "data/generators.h"
#include "telemetry/export.h"
#include "telemetry/recorder.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/random.h"

namespace crowdtopk::net {
namespace {

// Salt separating per-batch seeds from every other stream split off the
// server's master seed.
constexpr uint64_t kBatchStream = 0x6e657462ULL;  // "netb"

// Backpressure watermarks on a connection's write buffer: past kWriteHigh
// the connection stops being read until the buffer drains; past kWriteMax
// it is closed as a slow consumer.
constexpr size_t kWriteHigh = 1u << 20;
constexpr size_t kWriteMax = 8u << 20;

// Submission sanity bounds; a request outside them gets INVALID_ARGUMENT.
constexpr int64_t kMaxK = 10000;
constexpr int64_t kMaxBudget = int64_t{1} << 30;

}  // namespace

DatasetFactory DefaultDatasetFactory() {
  return [](const std::string& name,
            uint64_t seed) -> std::unique_ptr<data::Dataset> {
    // MakeByName CHECK-fails on unknown names; gate it so a bad request is
    // a client error, not a server crash.
    if (name != "imdb" && name != "book" && name != "jester" &&
        name != "photo" && name != "peopleage") {
      return nullptr;
    }
    return data::MakeByName(name, seed);
  };
}

AlgorithmFactory DefaultAlgorithmFactory() {
  return [](const std::string& name, const judgment::ComparisonOptions&
                options) -> std::unique_ptr<core::TopKAlgorithm> {
    if (name == "spr") {
      core::SprOptions spr_options;
      spr_options.comparison = options;
      return std::make_unique<core::Spr>(spr_options);
    }
    if (name == "tourtree") {
      return std::make_unique<baselines::TournamentTree>(options);
    }
    if (name == "heapsort") {
      return std::make_unique<baselines::HeapSortTopK>(options);
    }
    if (name == "quickselect") {
      return std::make_unique<baselines::QuickSelectTopK>(options);
    }
    return nullptr;
  };
}

ErrorCode MapRejectReason(serve::RejectReason reason) {
  switch (reason) {
    case serve::RejectReason::kQueueFull:
      return ErrorCode::kQueueFull;
    case serve::RejectReason::kNone:
      break;
  }
  return ErrorCode::kInternal;
}

// ----- BatchEngine --------------------------------------------------------

// Owns query execution: accepted submissions queue FIFO, the engine thread
// drains the queue into a batch, replays it through one
// serve::QueryService, and posts completions back for the network thread
// to deliver. See the architecture note in server.h. The default
// net::Engine implementation; src/shard swaps in a multi-shard router
// through ServerOptions::engine_factory.
class BatchEngine : public Engine {
 public:
  BatchEngine(const ServerOptions& options, std::function<void()> wake)
      : options_(options),
        dataset_factory_(options.dataset_factory ? options.dataset_factory
                                                 : DefaultDatasetFactory()),
        algorithm_factory_(options.algorithm_factory
                               ? options.algorithm_factory
                               : DefaultAlgorithmFactory()),
        wake_(std::move(wake)),
        thread_([this] { ThreadMain(); }) {}

  ~BatchEngine() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  // Validates and queues one submission; returns the assigned query id.
  // Called on the network thread.
  util::StatusOr<int64_t> Submit(int64_t conn_id,
                                 const SubmitQuery& spec) override {
    if (spec.k < 1 || spec.k > kMaxK) {
      return util::Status::InvalidArgument("k out of range");
    }
    if (!(spec.alpha > 0.0 && spec.alpha < 1.0)) {
      return util::Status::InvalidArgument("alpha must be in (0, 1)");
    }
    if (spec.budget < 0 || spec.budget > kMaxBudget) {
      return util::Status::InvalidArgument("budget out of range");
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      return util::Status::Unavailable("server is draining");
    }
    if (options_.max_queue >= 0 &&
        static_cast<int64_t>(queue_.size()) >= options_.max_queue) {
      return util::Status::ResourceExhausted("admission queue full");
    }
    const data::Dataset* dataset = ResolveDatasetLocked(spec.dataset);
    if (dataset == nullptr) {
      return util::Status::InvalidArgument("unknown dataset '" +
                                           spec.dataset + "'");
    }
    core::TopKAlgorithm* algorithm = ResolveAlgorithmLocked(spec);
    if (algorithm == nullptr) {
      return util::Status::InvalidArgument("unknown algorithm '" +
                                           spec.algo + "'");
    }
    const int64_t id = next_query_id_++;
    Record& record = records_[id];
    record.conn_id = conn_id;
    record.k = spec.k;
    record.seed_stream = spec.seed_stream;
    record.dataset = dataset;
    record.algorithm = algorithm;
    record.state = QueryState::kQueued;
    queue_.push_back(id);
    cv_.notify_all();
    return id;
  }

  QueryState State(int64_t query_id) const override {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = records_.find(query_id);
    if (it != records_.end()) return it->second.state;
    return done_.count(query_id) ? QueryState::kDone : QueryState::kUnknown;
  }

  // Removes a still-queued query. On success fills the submitter's conn id
  // so the server can clear its pending bookkeeping.
  bool Cancel(int64_t query_id, int64_t* submitter_conn) override {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = records_.find(query_id);
    if (it == records_.end() || it->second.state != QueryState::kQueued) {
      return false;
    }
    *submitter_conn = it->second.conn_id;
    queue_.erase(std::find(queue_.begin(), queue_.end(), query_id));
    records_.erase(it);
    return true;
  }

  // Stops accepting work and lets the queue run dry. Submissions are
  // refused by the server before they reach Submit, but the engine refuses
  // too, in case of races.
  void BeginDrain() override {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    cv_.notify_all();
  }

  // Drain-deadline path: reject everything still waiting for a batch. The
  // batch in flight (if any) always completes.
  void AbortQueued() override {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int64_t id : queue_) {
      Completion c;
      c.conn_id = records_[id].conn_id;
      c.query_id = id;
      c.send_error = true;
      c.error_code = ErrorCode::kUnavailable;
      c.error_message = "drain timeout";
      completions_.push_back(std::move(c));
      records_.erase(id);
    }
    queue_.clear();
    cv_.notify_all();
  }

  std::vector<Completion> TakeCompletions() override {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Completion> taken = std::move(completions_);
    completions_.clear();
    return taken;
  }

  // True once a drain has consumed everything: no queued or running
  // queries remain and no completions await delivery.
  bool Drained() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return draining_ && queue_.empty() && !running_ && completions_.empty();
  }

  int64_t queued() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(queue_.size());
  }

  int64_t batches() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return batches_;
  }

 private:
  struct Record {
    int64_t conn_id = 0;
    int64_t k = 10;
    int64_t seed_stream = -1;
    const data::Dataset* dataset = nullptr;
    core::TopKAlgorithm* algorithm = nullptr;
    QueryState state = QueryState::kQueued;
  };

  const data::Dataset* ResolveDatasetLocked(const std::string& name) {
    const auto it = datasets_.find(name);
    if (it != datasets_.end()) return it->second.get();
    // Per-name seed stream: dataset content is a pure function of the
    // server's master seed and the name, never of request order.
    std::unique_ptr<data::Dataset> dataset =
        dataset_factory_(name, util::SplitSeed(options_.seed,
                                               util::Fnv1a64(name)));
    if (dataset == nullptr) return nullptr;
    return datasets_.emplace(name, std::move(dataset)).first->second.get();
  }

  core::TopKAlgorithm* ResolveAlgorithmLocked(const SubmitQuery& spec) {
    judgment::ComparisonOptions comparison;
    comparison.alpha = spec.alpha;
    if (spec.budget > 0) comparison.budget = spec.budget;
    uint64_t alpha_bits;
    std::memcpy(&alpha_bits, &comparison.alpha, sizeof(alpha_bits));
    const std::string key = spec.algo + "|" + std::to_string(alpha_bits) +
                            "|" + std::to_string(comparison.budget);
    const auto it = algorithms_.find(key);
    if (it != algorithms_.end()) return it->second.get();
    std::unique_ptr<core::TopKAlgorithm> algorithm =
        algorithm_factory_(spec.algo, comparison);
    if (algorithm == nullptr) return nullptr;
    CROWDTOPK_CHECK(algorithm->concurrent_runs_safe());
    return algorithms_.emplace(key, std::move(algorithm))
        .first->second.get();
  }

  void ThreadMain() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock,
               [this] { return stop_ || draining_ || !queue_.empty(); });
      if (stop_) return;
      if (queue_.empty()) {
        if (draining_) {
          // Nothing left to run; tell the network thread to re-check its
          // drain-completion condition.
          lock.unlock();
          wake_();
          lock.lock();
          cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
          if (stop_) return;
        }
        continue;
      }

      // Drain the queue into one batch, submission order preserved.
      const std::vector<int64_t> ids(queue_.begin(), queue_.end());
      queue_.clear();
      std::vector<serve::QueryRequest> requests(ids.size());
      std::vector<int64_t> conn_ids(ids.size());
      bool all_stamped = true;
      for (size_t i = 0; i < ids.size(); ++i) {
        Record& record = records_[ids[i]];
        record.state = QueryState::kRunning;
        requests[i].algorithm = record.algorithm;
        requests[i].dataset = record.dataset;
        requests[i].k = record.k;
        requests[i].seed_stream = record.seed_stream;
        if (record.seed_stream < 0) all_stamped = false;
        conn_ids[i] = record.conn_id;
      }
      const int64_t batch_index = batches_;
      running_ = true;
      std::vector<cache::ExportedEntry> warm = std::move(warm_cache_);
      warm_cache_.clear();
      lock.unlock();

      // Everything in the batch arrives "now": queueing delay inside the
      // batch is pure shared-capacity contention, and the whole replay is
      // a deterministic function of (options, batch seed, requests).
      serve::ServeOptions serve_options;
      serve_options.schedule = options_.schedule;
      serve_options.max_inflight = options_.max_inflight;
      serve_options.max_queue = options_.max_queue;
      serve_options.jobs = options_.jobs;
      // Router-stamped batches run under the constant master seed: every
      // stream is then keyed by the stamped global id, so the outcome does
      // not depend on which batch (or shard) the query landed in. Unstamped
      // batches keep the classic per-batch split.
      serve_options.seed =
          all_stamped && !ids.empty()
              ? options_.seed
              : util::SplitSeed(options_.seed, kBatchStream + batch_index);
      serve_options.cache = options_.cache;
      serve_options.warm_cache = std::move(warm);
      serve::QueryService service(serve_options);
      const std::vector<double> arrivals(requests.size(), 0.0);
      const std::vector<serve::QueryOutcome> outcomes =
          service.Replay(requests, arrivals);
      std::vector<cache::ExportedEntry> exported = service.ExportCache();

      lock.lock();
      warm_cache_ = std::move(exported);
      running_ = false;
      ++batches_;
      for (size_t i = 0; i < outcomes.size(); ++i) {
        const serve::QueryOutcome& o = outcomes[i];
        const int64_t id = ids[i];
        Completion c;
        c.conn_id = conn_ids[i];
        c.query_id = id;
        if (o.rejected) {
          // The serve layer's machine-readable reason maps straight onto
          // the wire taxonomy — no string-matching on status messages.
          c.send_error = true;
          c.error_code = MapRejectReason(o.reject_reason);
          c.error_message = o.status.message();
        } else {
          Result& r = c.result;
          r.query_id = id;
          r.status_code = static_cast<uint32_t>(o.status.code());
          r.reject_reason = static_cast<uint8_t>(o.reject_reason);
          r.message = o.status.ok() ? "" : o.status.message();
          r.items.assign(o.items.begin(), o.items.end());
          r.precision_at_k = o.precision_at_k;
          r.total_microtasks = o.total_microtasks;
          r.rounds = o.rounds_observed;
          r.latency_seconds = o.latency_seconds;
          r.queue_wait_seconds = o.start_seconds - o.arrival_seconds;
        }
        completions_.push_back(std::move(c));
        records_.erase(id);
        RememberDoneLocked(id);
      }
      lock.unlock();
      wake_();
      lock.lock();
    }
  }

  void RememberDoneLocked(int64_t id) {
    done_.insert(id);
    done_order_.push_back(id);
    while (done_order_.size() > 4096) {
      done_.erase(done_order_.front());
      done_order_.pop_front();
    }
  }

  const ServerOptions options_;
  const DatasetFactory dataset_factory_;
  const AlgorithmFactory algorithm_factory_;
  const std::function<void()> wake_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool draining_ = false;
  bool running_ = false;
  int64_t next_query_id_ = 0;
  int64_t batches_ = 0;
  std::deque<int64_t> queue_;
  std::unordered_map<int64_t, Record> records_;
  std::unordered_set<int64_t> done_;
  std::deque<int64_t> done_order_;
  std::vector<Completion> completions_;
  std::vector<cache::ExportedEntry> warm_cache_;
  std::unordered_map<std::string, std::unique_ptr<data::Dataset>> datasets_;
  std::unordered_map<std::string, std::unique_ptr<core::TopKAlgorithm>>
      algorithms_;

  std::thread thread_;  // last: joins in ~BatchEngine before members die
};

// ----- Server::Impl -------------------------------------------------------

struct Server::Connection {
  int fd = -1;
  int64_t id = 0;
  FrameReader reader;
  std::string wbuf;
  size_t woff = 0;
  bool handshaken = false;
  bool close_after_flush = false;
  int64_t last_activity_ms = 0;
  std::set<int64_t> pending;  // submitted query ids, result undelivered

  int64_t frames_in = 0;
  int64_t frames_out = 0;
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;

  size_t unflushed() const { return wbuf.size() - woff; }
};

class Server::Impl {
 public:
  explicit Impl(const ServerOptions& options)
      : options_(options),
        clock_(options.clock != nullptr ? options.clock
                                        : util::WallClock::Get()) {}

  ~Impl() {
    engine_.reset();  // joins the engine thread before fds close
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
    if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
    for (auto& [id, conn] : conns_) ::close(conn.fd);
  }

  util::Status Start(int* bound_port) {
    if (::pipe(wake_pipe_) != 0) {
      return util::Status::Internal("pipe: " +
                                    std::string(std::strerror(errno)));
    }
    SetNonBlocking(wake_pipe_[0]);
    SetNonBlocking(wake_pipe_[1]);

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (listen_fd_ < 0) {
      return util::Status::Internal("socket: " +
                                    std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return util::Status::Internal("bind 127.0.0.1:" +
                                    std::to_string(options_.port) + ": " +
                                    std::strerror(errno));
    }
    if (::listen(listen_fd_, 128) != 0) {
      return util::Status::Internal("listen: " +
                                    std::string(std::strerror(errno)));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    *bound_port = ntohs(addr.sin_port);

    const int wake_fd = wake_pipe_[1];
    std::function<void()> wake = [wake_fd] {
      const char byte = 1;
      [[maybe_unused]] const ssize_t n = ::write(wake_fd, &byte, 1);
    };
    engine_ = options_.engine_factory != nullptr
                  ? options_.engine_factory(options_, std::move(wake))
                  : std::make_unique<BatchEngine>(options_, std::move(wake));
    return util::Status::Ok();
  }

  void RequestDrain() {
    // Async-signal-safe: an atomic store plus a pipe write, nothing else.
    drain_requested_.store(true, std::memory_order_release);
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }

  void Serve() {
    std::vector<pollfd> fds;
    std::vector<int64_t> owners;  // conn id per pollfd; -1 listen, -2 pipe
    while (true) {
      if (drain_requested_.load(std::memory_order_acquire) && !draining_) {
        draining_ = true;
        draining_pub_.store(true, std::memory_order_release);
        drain_deadline_ms_ = NowMs() + options_.drain_timeout_ms;
        engine_->BeginDrain();
      }
      DeliverCompletions();
      if (draining_) {
        if (NowMs() >= drain_deadline_ms_ && !drain_aborted_) {
          drain_aborted_ = true;
          engine_->AbortQueued();
          DeliverCompletions();
        }
        if (engine_->Drained()) {
          // Everything accepted has been answered; close connections as
          // soon as their replies are flushed (immediately when past the
          // drain deadline).
          std::vector<int64_t> closing;
          for (auto& [id, conn] : conns_) {
            if (conn.unflushed() == 0 || NowMs() >= drain_deadline_ms_) {
              closing.push_back(id);
            } else {
              conn.close_after_flush = true;
            }
          }
          for (const int64_t id : closing) CloseConn(id);
          if (conns_.empty()) break;
        }
      }

      fds.clear();
      owners.clear();
      fds.push_back({wake_pipe_[0], POLLIN, 0});
      owners.push_back(-2);
      if (!draining_) {
        fds.push_back({listen_fd_, POLLIN, 0});
        owners.push_back(-1);
      }
      for (auto& [id, conn] : conns_) {
        short events = 0;
        // Backpressure: stop reading a connection whose replies are not
        // being consumed.
        if (!conn.close_after_flush && conn.unflushed() < kWriteHigh) {
          events |= POLLIN;
        }
        if (conn.unflushed() > 0) events |= POLLOUT;
        fds.push_back({conn.fd, events, 0});
        owners.push_back(id);
      }

      ::poll(fds.data(), fds.size(), PollTimeoutMs());

      for (size_t i = 0; i < fds.size(); ++i) {
        const short revents = fds[i].revents;
        if (revents == 0) continue;
        if (owners[i] == -2) {
          char buf[256];
          while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
          }
        } else if (owners[i] == -1) {
          AcceptPending();
        } else {
          HandleConnEvents(owners[i], revents);
        }
      }
      DeliverCompletions();
      SweepIdle();
      // Connections whose goodbye is already flushed (or was dropped on
      // write-buffer overflow) produce no poll events; close them here.
      std::vector<int64_t> flushed;
      for (const auto& [id, conn] : conns_) {
        if (conn.close_after_flush && conn.unflushed() == 0) {
          flushed.push_back(id);
        }
      }
      for (const int64_t id : flushed) CloseConn(id);
    }
    DumpTrace();
  }

  StatsReply Stats() const {
    StatsReply s;
    s.draining = draining_pub_.load(std::memory_order_acquire);
    s.active_connections = active_conns_.load(std::memory_order_relaxed);
    s.accepted_connections = accepted_.load(std::memory_order_relaxed);
    s.rejected_connections = rejected_conns_.load(std::memory_order_relaxed);
    s.idle_closed = idle_closed_.load(std::memory_order_relaxed);
    s.frames_in = frames_in_.load(std::memory_order_relaxed);
    s.frames_out = frames_out_.load(std::memory_order_relaxed);
    s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
    s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
    s.crc_errors = crc_errors_.load(std::memory_order_relaxed);
    s.malformed_frames = malformed_.load(std::memory_order_relaxed);
    s.version_mismatches = version_mismatch_.load(std::memory_order_relaxed);
    s.queries_submitted = submitted_.load(std::memory_order_relaxed);
    s.queries_completed = completed_.load(std::memory_order_relaxed);
    s.queries_rejected = rejected_queries_.load(std::memory_order_relaxed);
    s.queries_cancelled = cancelled_.load(std::memory_order_relaxed);
    s.batches = engine_ ? engine_->batches() : 0;
    s.client_retries = engine_ ? engine_->upstream_retries() : 0;
    s.client_redials = engine_ ? engine_->upstream_redials() : 0;
    return s;
  }

 private:
  static void SetNonBlocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }

  int64_t NowMs() const { return clock_->NowMillis(); }

  int PollTimeoutMs() const {
    // Under an injected (simulated) clock, deadlines move only when the
    // test advances them; wake on a short wall tick so the loop observes
    // those advances instead of sleeping out a wall-time translation of a
    // simulated deadline.
    int64_t timeout = options_.clock != nullptr ? 10 : 200;
    const int64_t now = NowMs();
    if (options_.idle_timeout_ms > 0) {
      for (const auto& [id, conn] : conns_) {
        if (!conn.pending.empty()) continue;
        const int64_t remain =
            conn.last_activity_ms + options_.idle_timeout_ms - now;
        timeout = std::min(timeout, std::max<int64_t>(remain, 0));
      }
    }
    if (draining_ && !drain_aborted_) {
      // Past the deadline the queue is already aborted; the only thing
      // left to wait for is the in-flight batch, which wakes us via the
      // pipe — no need to spin on an expired deadline.
      timeout = std::min(
          timeout, std::max<int64_t>(drain_deadline_ms_ - now, 0));
    }
    return static_cast<int>(std::min<int64_t>(timeout, 1000));
  }

  void AcceptPending() {
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      accepted_.fetch_add(1, std::memory_order_relaxed);
      Connection& conn = conns_[next_conn_id_];
      conn.fd = fd;
      conn.id = next_conn_id_++;
      conn.last_activity_ms = NowMs();
      active_conns_.store(static_cast<int64_t>(conns_.size()),
                          std::memory_order_relaxed);
      if (static_cast<int64_t>(conns_.size()) > options_.max_connections) {
        // Bounded acceptor: greet with UNAVAILABLE so the client can back
        // off instead of seeing a silent RST.
        rejected_conns_.fetch_add(1, std::memory_order_relaxed);
        QueueMessage(&conn, MakeError(ErrorCode::kUnavailable, -1,
                                      "connection limit reached"));
        conn.close_after_flush = true;
      }
    }
  }

  void HandleConnEvents(int64_t conn_id, short revents) {
    const auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    Connection& conn = it->second;
    if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
      CloseConn(conn_id);
      return;
    }
    if (revents & POLLIN) {
      if (!ReadFrom(&conn)) {
        CloseConn(conn_id);
        return;
      }
    }
    if ((revents & POLLOUT) || conn.unflushed() > 0) {
      if (!FlushWrites(&conn)) {
        CloseConn(conn_id);
        return;
      }
    }
    if (conn.close_after_flush && conn.unflushed() == 0) {
      CloseConn(conn_id);
    }
  }

  // False on a fatal connection error (peer closed, recv failure).
  bool ReadFrom(Connection* conn) {
    char buf[65536];
    for (;;) {
      const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->last_activity_ms = NowMs();
        conn->bytes_in += n;
        bytes_in_.fetch_add(n, std::memory_order_relaxed);
        conn->reader.Append(buf, static_cast<size_t>(n));
        if (!DrainFrames(conn)) return true;  // error frame queued; flush
        if (static_cast<size_t>(n) < sizeof(buf)) return true;
        continue;
      }
      if (n == 0) return false;  // orderly shutdown by the peer
      return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
    }
  }

  // Extracts every complete frame. False when the stream turned out to be
  // corrupt (an error frame has been queued and the connection marked).
  bool DrainFrames(Connection* conn) {
    std::string payload;
    for (;;) {
      switch (conn->reader.Pop(&payload)) {
        case FrameReader::Next::kFrame:
          ++conn->frames_in;
          frames_in_.fetch_add(1, std::memory_order_relaxed);
          HandlePayload(conn, payload);
          if (conn->close_after_flush) return false;
          continue;
        case FrameReader::Next::kNeedMore:
          return true;
        case FrameReader::Next::kCorrupt:
          crc_errors_.fetch_add(1, std::memory_order_relaxed);
          QueueMessage(conn, MakeError(ErrorCode::kMalformed, -1,
                                       "frame checksum mismatch"));
          conn->close_after_flush = true;
          return false;
        case FrameReader::Next::kOversized:
          malformed_.fetch_add(1, std::memory_order_relaxed);
          QueueMessage(conn, MakeError(ErrorCode::kMalformed, -1,
                                       "frame exceeds maximum payload"));
          conn->close_after_flush = true;
          return false;
      }
    }
  }

  void HandlePayload(Connection* conn, const std::string& payload) {
    NetMessage m;
    if (!DecodeMessage(payload, &m)) {
      malformed_.fetch_add(1, std::memory_order_relaxed);
      QueueMessage(conn, MakeError(ErrorCode::kMalformed, -1,
                                   "undecodable message"));
      conn->close_after_flush = true;
      return;
    }
    if (!conn->handshaken) {
      if (m.type != MessageType::kHello || m.hello.magic != kNetMagic) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        QueueMessage(conn, MakeError(ErrorCode::kMalformed, -1,
                                     "expected hello frame"));
        conn->close_after_flush = true;
        return;
      }
      if (m.hello.version != kProtocolVersion) {
        version_mismatch_.fetch_add(1, std::memory_order_relaxed);
        QueueMessage(
            conn,
            MakeError(ErrorCode::kVersionMismatch, -1,
                      "server speaks protocol version " +
                          std::to_string(kProtocolVersion) + ", client sent " +
                          std::to_string(m.hello.version)));
        conn->close_after_flush = true;
        return;
      }
      conn->handshaken = true;
      NetMessage ack;
      ack.type = MessageType::kHelloAck;
      QueueMessage(conn, ack);
      return;
    }
    switch (m.type) {
      case MessageType::kSubmitQuery:
        HandleSubmit(conn, m.submit);
        return;
      case MessageType::kStatusRequest: {
        NetMessage reply;
        reply.type = MessageType::kStatusReply;
        reply.status_reply.query_id = m.status_request.query_id;
        reply.status_reply.state = engine_->State(m.status_request.query_id);
        QueueMessage(conn, reply);
        return;
      }
      case MessageType::kCancel: {
        int64_t submitter = -1;
        const bool cancelled = engine_->Cancel(m.cancel.query_id, &submitter);
        if (cancelled) {
          cancelled_.fetch_add(1, std::memory_order_relaxed);
          const auto sit = conns_.find(submitter);
          if (sit != conns_.end()) {
            sit->second.pending.erase(m.cancel.query_id);
          }
        }
        NetMessage reply;
        reply.type = MessageType::kCancelAck;
        reply.cancel_ack.query_id = m.cancel.query_id;
        reply.cancel_ack.cancelled = cancelled;
        QueueMessage(conn, reply);
        return;
      }
      case MessageType::kStatsRequest: {
        NetMessage reply;
        reply.type = MessageType::kStatsReply;
        reply.stats_reply = Stats();
        QueueMessage(conn, reply);
        return;
      }
      default:
        // A decodable message the client has no business sending
        // (server-to-client types, a second hello).
        malformed_.fetch_add(1, std::memory_order_relaxed);
        QueueMessage(conn, MakeError(ErrorCode::kMalformed, -1,
                                     "unexpected message type"));
        conn->close_after_flush = true;
        return;
    }
  }

  void HandleSubmit(Connection* conn, const SubmitQuery& spec) {
    if (draining_) {
      rejected_queries_.fetch_add(1, std::memory_order_relaxed);
      QueueMessage(conn, MakeError(ErrorCode::kUnavailable, -1,
                                   "server is draining"));
      return;
    }
    const util::StatusOr<int64_t> id = engine_->Submit(conn->id, spec);
    if (!id.ok()) {
      ErrorCode code = ErrorCode::kInvalidArgument;
      if (id.status().code() == util::StatusCode::kResourceExhausted) {
        code = ErrorCode::kQueueFull;
        rejected_queries_.fetch_add(1, std::memory_order_relaxed);
      } else if (id.status().code() == util::StatusCode::kUnavailable) {
        code = ErrorCode::kUnavailable;
        rejected_queries_.fetch_add(1, std::memory_order_relaxed);
      }
      QueueMessage(conn, MakeError(code, -1, id.status().message()));
      return;
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    conn->pending.insert(*id);
    NetMessage ack;
    ack.type = MessageType::kSubmitAck;
    ack.submit_ack.query_id = *id;
    QueueMessage(conn, ack);
  }

  void DeliverCompletions() {
    for (Completion& c : engine_->TakeCompletions()) {
      const auto it = conns_.find(c.conn_id);
      if (c.send_error) {
        rejected_queries_.fetch_add(1, std::memory_order_relaxed);
      } else {
        completed_.fetch_add(1, std::memory_order_relaxed);
      }
      if (it == conns_.end()) continue;  // submitter went away; drop
      it->second.pending.erase(c.query_id);
      if (c.send_error) {
        QueueMessage(&it->second,
                     MakeError(c.error_code, c.query_id, c.error_message));
      } else {
        NetMessage m;
        m.type = MessageType::kResult;
        m.result = std::move(c.result);
        QueueMessage(&it->second, m);
      }
      if (it->second.unflushed() > 0) FlushWrites(&it->second);
    }
  }

  void QueueMessage(Connection* conn, const NetMessage& message) {
    const std::string frame = FrameMessage(message);
    conn->wbuf.append(frame);
    ++conn->frames_out;
    frames_out_.fetch_add(1, std::memory_order_relaxed);
    if (conn->wbuf.size() - conn->woff > kWriteMax) {
      // Slow consumer: the peer is not reading replies. Nothing sane to
      // send; drop the connection.
      conn->close_after_flush = true;
      conn->wbuf.clear();
      conn->woff = 0;
    }
  }

  // False on a fatal send error.
  bool FlushWrites(Connection* conn) {
    while (conn->woff < conn->wbuf.size()) {
      const ssize_t n =
          ::send(conn->fd, conn->wbuf.data() + conn->woff,
                 conn->wbuf.size() - conn->woff, MSG_NOSIGNAL);
      if (n > 0) {
        conn->woff += static_cast<size_t>(n);
        conn->bytes_out += n;
        bytes_out_.fetch_add(n, std::memory_order_relaxed);
        conn->last_activity_ms = NowMs();
        continue;
      }
      return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
    }
    conn->wbuf.clear();
    conn->woff = 0;
    return true;
  }

  void SweepIdle() {
    if (options_.idle_timeout_ms <= 0) return;
    const int64_t now = NowMs();
    std::vector<int64_t> idle;
    for (const auto& [id, conn] : conns_) {
      // A connection waiting on a query result is working, not idle.
      if (!conn.pending.empty()) continue;
      if (now - conn.last_activity_ms >= options_.idle_timeout_ms) {
        idle.push_back(id);
      }
    }
    for (const int64_t id : idle) {
      idle_closed_.fetch_add(1, std::memory_order_relaxed);
      CloseConn(id);
    }
  }

  void CloseConn(int64_t conn_id) {
    const auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    const Connection& conn = it->second;
    closed_conn_stats_.push_back({conn.id, conn.frames_in, conn.frames_out,
                                  conn.bytes_in, conn.bytes_out,
                                  static_cast<int64_t>(conn.pending.size())});
    ::close(conn.fd);
    conns_.erase(it);
    active_conns_.store(static_cast<int64_t>(conns_.size()),
                        std::memory_order_relaxed);
  }

  // Writes the net/* counter trace (aggregate plus one block per closed
  // connection) once the loop exits. docs/OBSERVABILITY.md naming.
  void DumpTrace() {
    if (options_.trace_dir.empty()) return;
    telemetry::TraceRecorder recorder;
    const StatsReply s = Stats();
    const auto record = [&recorder](const std::string& name, int64_t value) {
      recorder.RecordCounter(name, static_cast<double>(value));
    };
    record("net/accepted_connections", s.accepted_connections);
    record("net/rejected_connections", s.rejected_connections);
    record("net/idle_closed", s.idle_closed);
    record("net/frames_in", s.frames_in);
    record("net/frames_out", s.frames_out);
    record("net/bytes_in", s.bytes_in);
    record("net/bytes_out", s.bytes_out);
    record("net/crc_errors", s.crc_errors);
    record("net/malformed_frames", s.malformed_frames);
    record("net/version_mismatches", s.version_mismatches);
    record("net/queries_submitted", s.queries_submitted);
    record("net/queries_completed", s.queries_completed);
    record("net/queries_rejected", s.queries_rejected);
    record("net/queries_cancelled", s.queries_cancelled);
    record("net/batches", s.batches);
    record("net/client_retries", s.client_retries);
    record("net/client_redials", s.client_redials);
    for (const ClosedConnStats& c : closed_conn_stats_) {
      const std::string prefix = "net/conn" + std::to_string(c.id) + "/";
      record(prefix + "frames_in", c.frames_in);
      record(prefix + "frames_out", c.frames_out);
      record(prefix + "bytes_in", c.bytes_in);
      record(prefix + "bytes_out", c.bytes_out);
      record(prefix + "undelivered", c.undelivered);
    }
    const util::Status status = telemetry::WriteJsonlFile(
        recorder.events(), options_.trace_dir + "/net_server.trace.jsonl");
    if (!status.ok()) {
      std::fprintf(stderr, "net trace: %s\n", status.ToString().c_str());
    }
  }

  struct ClosedConnStats {
    int64_t id = 0;
    int64_t frames_in = 0;
    int64_t frames_out = 0;
    int64_t bytes_in = 0;
    int64_t bytes_out = 0;
    int64_t undelivered = 0;
  };

  const ServerOptions options_;
  const util::Clock* clock_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::unique_ptr<Engine> engine_;

  // Network-thread state.
  std::map<int64_t, Connection> conns_;
  int64_t next_conn_id_ = 0;
  bool draining_ = false;
  bool drain_aborted_ = false;
  int64_t drain_deadline_ms_ = 0;
  std::vector<ClosedConnStats> closed_conn_stats_;

  // Cross-thread-visible state.
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> draining_pub_{false};
  std::atomic<int64_t> active_conns_{0};
  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> rejected_conns_{0};
  std::atomic<int64_t> idle_closed_{0};
  std::atomic<int64_t> frames_in_{0};
  std::atomic<int64_t> frames_out_{0};
  std::atomic<int64_t> bytes_in_{0};
  std::atomic<int64_t> bytes_out_{0};
  std::atomic<int64_t> crc_errors_{0};
  std::atomic<int64_t> malformed_{0};
  std::atomic<int64_t> version_mismatch_{0};
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> rejected_queries_{0};
  std::atomic<int64_t> cancelled_{0};
};

Server::Server(const ServerOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

Server::~Server() = default;

util::Status Server::Start() { return impl_->Start(&port_); }

void Server::Serve() { impl_->Serve(); }

void Server::RequestDrain() { impl_->RequestDrain(); }

StatsReply Server::Stats() const { return impl_->Stats(); }

}  // namespace crowdtopk::net
