#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace crowdtopk::net {
namespace {

bool SetNonBlocking(int fd, bool enabled) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) == 0;
}

// True for the failures a redial might fix: the server refused with
// UNAVAILABLE, or the connection died under us.
bool Retryable(const util::Status& status) {
  return status.code() == util::StatusCode::kUnavailable;
}

}  // namespace

Client::Client(const ClientOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : util::WallClock::Get()) {}

int Client::PollWaitMs(int64_t left) const {
  if (options_.clock != nullptr) {
    return static_cast<int>(std::min<int64_t>(left, 10));
  }
  return static_cast<int>(left);
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_ = FrameReader();
}

util::Status Client::Dial() {
  Close();
  if (++dials_ > 1) ++redials_;
  if (options_.port <= 0) {
    return util::Status::InvalidArgument(
        "client port must be the server's bound port (servers bind "
        "ephemeral ports by default and print the assigned one)");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return util::Status::Internal(std::string("socket: ") +
                                  std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::Status::InvalidArgument("unparseable host: " + options_.host);
  }
  // Non-blocking connect so the dial honours connect_timeout_ms; the
  // socket goes back to blocking afterwards (reads are paced by poll).
  if (!SetNonBlocking(fd, true)) {
    ::close(fd);
    return util::Status::Internal("fcntl(O_NONBLOCK) failed");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      const int err = errno;
      ::close(fd);
      return util::Status::Unavailable(std::string("connect: ") +
                                       std::strerror(err));
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int rc =
        ::poll(&pfd, 1, static_cast<int>(options_.connect_timeout_ms));
    if (rc <= 0) {
      ::close(fd);
      return util::Status::Unavailable("connect timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return util::Status::Unavailable(std::string("connect: ") +
                                       std::strerror(err));
    }
  }
  if (!SetNonBlocking(fd, false)) {
    ::close(fd);
    return util::Status::Internal("fcntl(~O_NONBLOCK) failed");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  reader_ = FrameReader();
  return util::Status::Ok();
}

util::Status Client::Handshake() {
  NetMessage hello;
  hello.type = MessageType::kHello;
  CROWDTOPK_RETURN_IF_ERROR(SendMessage(hello));
  const int64_t deadline = NowMs() + options_.request_timeout_ms;
  util::StatusOr<NetMessage> ack = ReadUntil(MessageType::kHelloAck, deadline);
  if (!ack.ok()) return ack.status();
  if (ack->hello_ack.version != kProtocolVersion) {
    Close();
    return util::Status::FailedPrecondition(
        "server speaks protocol version " +
        std::to_string(ack->hello_ack.version));
  }
  return util::Status::Ok();
}

util::Status Client::Connect() {
  util::Status status = util::Status::Ok();
  for (int64_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      clock_->SleepMillis(options_.retry_backoff_ms);
    }
    status = Dial();
    if (status.ok()) status = Handshake();
    if (status.ok() || !Retryable(status)) return status;
    Close();
  }
  return status;
}

util::Status Client::SendMessage(const NetMessage& message) {
  if (fd_ < 0) return util::Status::FailedPrecondition("not connected");
  const std::string frame = FrameMessage(message);
  size_t sent = 0;
  const int64_t deadline = NowMs() + options_.request_timeout_ms;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int64_t left = deadline - NowMs();
      if (left <= 0) return util::Status::Internal("send timed out");
      pollfd pfd{fd_, POLLOUT, 0};
      ::poll(&pfd, 1, PollWaitMs(left));
      continue;
    }
    Close();
    return util::Status::Unavailable(std::string("send: ") +
                                     std::strerror(errno));
  }
  return util::Status::Ok();
}

util::Status Client::ReadMore(int64_t deadline_ms) {
  const int64_t left = deadline_ms - NowMs();
  if (left <= 0) return util::Status::Internal("timed out waiting for reply");
  pollfd pfd{fd_, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, PollWaitMs(left));
  if (rc < 0 && errno == EINTR) return util::Status::Ok();
  // An injected clock's deadline has not necessarily passed when a short
  // wall tick elapses; loop so the caller re-checks it against the clock.
  if (rc == 0 && options_.clock != nullptr) return util::Status::Ok();
  if (rc <= 0) return util::Status::Internal("timed out waiting for reply");
  char buf[4096];
  const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
  if (n > 0) {
    reader_.Append(buf, static_cast<size_t>(n));
    return util::Status::Ok();
  }
  if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
    return util::Status::Ok();
  }
  Close();
  if (n == 0) return util::Status::Unavailable("server closed the connection");
  return util::Status::Unavailable(std::string("recv: ") +
                                   std::strerror(errno));
}

util::StatusOr<NetMessage> Client::ReadUntil(MessageType want,
                                             int64_t deadline_ms) {
  if (fd_ < 0) return util::Status::FailedPrecondition("not connected");
  std::string payload;
  while (true) {
    switch (reader_.Pop(&payload)) {
      case FrameReader::Next::kFrame: {
        NetMessage m;
        if (!DecodeMessage(payload, &m)) {
          Close();
          return util::Status::InvalidArgument(
              "undecodable frame from server");
        }
        if (m.type == want && want != MessageType::kResult) return m;
        if (m.type == MessageType::kResult) {
          if (want == MessageType::kResult) return m;
          // A result for some query arrived while we were waiting for a
          // different reply; keep it for AwaitResult.
          pending_results_[m.result.query_id] = std::move(m.result);
          continue;
        }
        if (m.type == MessageType::kError) {
          return MapErrorCode(m.error.code, m.error.message);
        }
        Close();
        return util::Status::Internal("unexpected message from server");
      }
      case FrameReader::Next::kNeedMore:
        CROWDTOPK_RETURN_IF_ERROR(ReadMore(deadline_ms));
        break;
      case FrameReader::Next::kCorrupt:
        Close();
        return util::Status::InvalidArgument("corrupt frame from server");
      case FrameReader::Next::kOversized:
        Close();
        return util::Status::InvalidArgument("oversized frame from server");
    }
  }
}

util::StatusOr<int64_t> Client::Submit(const SubmitQuery& query) {
  util::Status status = util::Status::Ok();
  for (int64_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      clock_->SleepMillis(options_.retry_backoff_ms);
    }
    if (fd_ < 0) {
      status = Dial();
      if (status.ok()) status = Handshake();
      if (!status.ok()) {
        if (Retryable(status)) continue;
        return status;
      }
    }
    NetMessage m;
    m.type = MessageType::kSubmitQuery;
    m.submit = query;
    status = SendMessage(m);
    if (!status.ok()) {
      if (Retryable(status)) continue;
      return status;
    }
    util::StatusOr<NetMessage> ack = ReadUntil(
        MessageType::kSubmitAck, NowMs() + options_.request_timeout_ms);
    if (ack.ok()) return ack->submit_ack.query_id;
    status = ack.status();
    if (!Retryable(status)) return status;
  }
  return status;
}

util::StatusOr<Result> Client::AwaitResult(int64_t query_id) {
  const auto it = pending_results_.find(query_id);
  if (it != pending_results_.end()) {
    Result r = std::move(it->second);
    pending_results_.erase(it);
    return r;
  }
  const int64_t deadline = NowMs() + options_.result_timeout_ms;
  while (true) {
    util::StatusOr<NetMessage> m = ReadUntil(MessageType::kResult, deadline);
    if (!m.ok()) return m.status();
    if (m->result.query_id == query_id) return std::move(m->result);
    pending_results_[m->result.query_id] = std::move(m->result);
  }
}

util::StatusOr<QueryState> Client::GetQueryState(int64_t query_id) {
  NetMessage m;
  m.type = MessageType::kStatusRequest;
  m.status_request.query_id = query_id;
  CROWDTOPK_RETURN_IF_ERROR(SendMessage(m));
  util::StatusOr<NetMessage> reply = ReadUntil(
      MessageType::kStatusReply, NowMs() + options_.request_timeout_ms);
  if (!reply.ok()) return reply.status();
  return reply->status_reply.state;
}

util::StatusOr<bool> Client::Cancel(int64_t query_id) {
  NetMessage m;
  m.type = MessageType::kCancel;
  m.cancel.query_id = query_id;
  CROWDTOPK_RETURN_IF_ERROR(SendMessage(m));
  util::StatusOr<NetMessage> reply = ReadUntil(
      MessageType::kCancelAck, NowMs() + options_.request_timeout_ms);
  if (!reply.ok()) return reply.status();
  return reply->cancel_ack.cancelled;
}

util::StatusOr<StatsReply> Client::Stats() {
  NetMessage m;
  m.type = MessageType::kStatsRequest;
  CROWDTOPK_RETURN_IF_ERROR(SendMessage(m));
  util::StatusOr<NetMessage> reply = ReadUntil(
      MessageType::kStatsReply, NowMs() + options_.request_timeout_ms);
  if (!reply.ok()) return reply.status();
  return reply->stats_reply;
}

}  // namespace crowdtopk::net
