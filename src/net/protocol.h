// Wire protocol of the network serving subsystem (docs/NETWORK.md).
//
// Framing: every message travels as one length-prefixed, checksummed frame
//
//     [u32 payload_len][u32 crc32(payload)][payload]
//
// with all integers little-endian (util/codec.h) and the CRC the same IEEE
// polynomial the write-ahead log uses (util::Crc32). A frame whose length
// exceeds kMaxFramePayload or whose checksum does not verify is a stream
// error: the receiver reports it and closes the connection — framing is
// not resynchronizable, and a corrupt length prefix would otherwise make
// the reader wait forever on garbage.
//
// Payloads start with a MessageType byte. The first exchange on every
// connection is the version handshake: the client sends kHello{magic,
// version}; the server answers kHelloAck{version} or an error frame with
// kVersionMismatch and closes. Everything after the handshake is
// request/reply, except kResult, which the server pushes to the submitting
// connection when the query completes (submission is asynchronous: the
// client gets kSubmitAck{query_id} as soon as the query is queued).
//
// The protocol is deliberately version-gated rather than
// forward-compatible: both ends are built from this repo, so a version
// bump is a recompile, not a migration.

#ifndef CROWDTOPK_NET_PROTOCOL_H_
#define CROWDTOPK_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/codec.h"
#include "util/status.h"

namespace crowdtopk::net {

// "TK4NET01", little-endian, same naming scheme as the persist magics.
inline constexpr uint64_t kNetMagic = 0x313054454e344b54ULL;
// v2: Result carries shard_id; StatsReply carries upstream retry/redial
// counters (both zero when the answering process is a plain single-engine
// server). v1 peers are refused at the handshake.
inline constexpr uint32_t kProtocolVersion = 2;

// Upper bound on a frame payload. Results carry at most k item ids, so
// real frames are tiny; the bound exists to reject a corrupt length prefix
// before it turns into a giant allocation.
inline constexpr uint32_t kMaxFramePayload = 1u << 20;

// Bytes of framing overhead in front of every payload.
inline constexpr size_t kFrameHeaderBytes = 8;

enum class MessageType : uint8_t {
  kHello = 1,         // client -> server: {magic, version}
  kHelloAck = 2,      // server -> client: {version}
  kSubmitQuery = 3,   // client -> server: {dataset, k, algo, alpha, budget}
  kSubmitAck = 4,     // server -> client: {query_id} — queued, result later
  kStatusRequest = 5, // client -> server: {query_id}
  kStatusReply = 6,   // server -> client: {query_id, state}
  kResult = 7,        // server -> client: pushed when the query finishes
  kCancel = 8,        // client -> server: {query_id}
  kCancelAck = 9,     // server -> client: {query_id, cancelled}
  kStatsRequest = 10, // client -> server: {}
  kStatsReply = 11,   // server -> client: server counters
  kError = 12,        // server -> client: {code, query_id, message}
};

// Machine-readable error taxonomy carried by kError frames; MapErrorCode
// turns one into the util::Status the client library surfaces.
enum class ErrorCode : uint8_t {
  kVersionMismatch = 1,  // handshake refused; connection closes
  kMalformed = 2,        // undecodable or out-of-order message; closes
  kUnavailable = 3,      // draining or at connection capacity — retryable
  kQueueFull = 4,        // admission queue at max_queue — retryable
  kInvalidArgument = 5,  // unknown dataset/algo, bad k/alpha/budget
  kNotFound = 6,         // query id the server does not know
  kInternal = 7,
};

// Lifecycle a query id moves through, as reported by kStatusReply.
enum class QueryState : uint8_t {
  kUnknown = 0,  // never seen, or already delivered and pruned
  kQueued = 1,
  kRunning = 2,
  kDone = 3,  // finished; the result frame is queued or delivered
};

struct Hello {
  uint64_t magic = kNetMagic;
  uint32_t version = kProtocolVersion;
};

struct HelloAck {
  uint32_t version = kProtocolVersion;
};

// One top-k query. dataset / algo name the server-side factories; alpha
// and budget parameterise the confidence contract (COMP's significance
// level and per-pair budget B), so every client chooses its own
// cost/confidence point.
struct SubmitQuery {
  std::string dataset;
  int64_t k = 10;
  std::string algo;
  double alpha = 0.02;
  // Per-pair microtask budget B; <= 0 keeps the server default.
  int64_t budget = 0;
  // Seed-stream override (serve::QueryRequest::seed_stream): < 0 (the
  // default) keys the query's judgment/latency streams off its local slot
  // in the executing batch; a router stamps the global query id here so
  // the outcome is the same on whichever shard runs it. A batch made up
  // entirely of stamped queries also runs under the server's constant
  // master seed instead of the per-batch split, for the same reason.
  int64_t seed_stream = -1;
};

struct SubmitAck {
  int64_t query_id = 0;
};

struct StatusRequest {
  int64_t query_id = 0;
};

struct StatusReply {
  int64_t query_id = 0;
  QueryState state = QueryState::kUnknown;
};

// Terminal outcome of one query. Latency figures are in *simulated*
// seconds (the crowd is a deterministic simulation), which is what makes
// the loadgen report byte-reproducible.
struct Result {
  int64_t query_id = 0;
  uint32_t status_code = 0;  // util::StatusCode
  uint8_t reject_reason = 0; // serve::RejectReason
  std::string message;       // status message; empty on success
  std::vector<int32_t> items;
  double precision_at_k = 0.0;
  int64_t total_microtasks = 0;
  int64_t rounds = 0;
  double latency_seconds = 0.0;
  double queue_wait_seconds = 0.0;
  // Shard that executed the query: 0 for a plain single-engine server,
  // the routed shard's id under a crowdtopk_router front-end.
  int64_t shard_id = 0;
};

struct Cancel {
  int64_t query_id = 0;
};

struct CancelAck {
  int64_t query_id = 0;
  // True when the query was still queued and has been removed; a running
  // or finished query is not cancellable.
  bool cancelled = false;
};

struct StatsReply {
  bool draining = false;
  int64_t active_connections = 0;
  int64_t accepted_connections = 0;
  int64_t rejected_connections = 0;
  int64_t idle_closed = 0;
  int64_t frames_in = 0;
  int64_t frames_out = 0;
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
  int64_t crc_errors = 0;
  int64_t malformed_frames = 0;
  int64_t version_mismatches = 0;
  int64_t queries_submitted = 0;
  int64_t queries_completed = 0;
  int64_t queries_rejected = 0;
  int64_t queries_cancelled = 0;
  int64_t batches = 0;
  // Upstream client traffic (net::Client retry/redial counters): nonzero
  // only when the answering process itself dials other servers — a router
  // fronting remote shards. A plain server reports zero.
  int64_t client_retries = 0;
  int64_t client_redials = 0;
};

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  int64_t query_id = -1;  // -1 when the error is not about one query
  std::string message;
};

// One decoded message; `type` says which member is meaningful (same
// pattern as persist::WalRecord).
struct NetMessage {
  MessageType type = MessageType::kError;
  Hello hello;
  HelloAck hello_ack;
  SubmitQuery submit;
  SubmitAck submit_ack;
  StatusRequest status_request;
  StatusReply status_reply;
  Result result;
  Cancel cancel;
  CancelAck cancel_ack;
  StatsReply stats_reply;
  Error error;
};

// ----- payload codec ------------------------------------------------------

// Serialises `message` into a payload (type byte first, no framing).
std::string EncodeMessage(const NetMessage& message);

// Parses one payload. False on any malformed byte sequence, including
// trailing garbage after a well-formed body.
bool DecodeMessage(const std::string& payload, NetMessage* out);

// Wraps a payload into a wire frame: length prefix + CRC32 + payload.
std::string FramePayload(const std::string& payload);

// EncodeMessage + FramePayload.
std::string FrameMessage(const NetMessage& message);

// Convenience constructor for error frames.
NetMessage MakeError(ErrorCode code, int64_t query_id, std::string message);

// The util::Status a client surfaces for a received error frame.
util::Status MapErrorCode(ErrorCode code, const std::string& message);

// ----- incremental deframer ----------------------------------------------

// Accumulates raw received bytes and yields complete frame payloads.
// Truncation is not an error (more bytes may arrive); an oversized length
// prefix or a checksum mismatch is, and the connection must close.
class FrameReader {
 public:
  enum class Next {
    kFrame,     // *payload holds the next complete payload
    kNeedMore,  // buffer holds only part of a frame
    kCorrupt,   // CRC mismatch — unrecoverable stream error
    kOversized, // length prefix exceeds max_payload — unrecoverable
  };

  explicit FrameReader(uint32_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void Append(const char* data, size_t size) { buffer_.append(data, size); }
  void Append(const std::string& data) { Append(data.data(), data.size()); }

  Next Pop(std::string* payload);

  size_t buffered_bytes() const { return buffer_.size() - offset_; }

 private:
  uint32_t max_payload_;
  std::string buffer_;
  size_t offset_ = 0;  // consumed prefix, compacted lazily
};

}  // namespace crowdtopk::net

#endif  // CROWDTOPK_NET_PROTOCOL_H_
