#include "net/protocol.h"

#include <cstring>

#include "util/crc32.h"

namespace crowdtopk::net {
namespace {

using util::Decoder;
using util::Encoder;

void EncodeBody(const NetMessage& m, Encoder* enc) {
  switch (m.type) {
    case MessageType::kHello:
      enc->PutU64(m.hello.magic);
      enc->PutU32(m.hello.version);
      return;
    case MessageType::kHelloAck:
      enc->PutU32(m.hello_ack.version);
      return;
    case MessageType::kSubmitQuery:
      enc->PutString(m.submit.dataset);
      enc->PutI64(m.submit.k);
      enc->PutString(m.submit.algo);
      enc->PutDouble(m.submit.alpha);
      enc->PutI64(m.submit.budget);
      enc->PutI64(m.submit.seed_stream);
      return;
    case MessageType::kSubmitAck:
      enc->PutI64(m.submit_ack.query_id);
      return;
    case MessageType::kStatusRequest:
      enc->PutI64(m.status_request.query_id);
      return;
    case MessageType::kStatusReply:
      enc->PutI64(m.status_reply.query_id);
      enc->PutU8(static_cast<uint8_t>(m.status_reply.state));
      return;
    case MessageType::kResult: {
      const Result& r = m.result;
      enc->PutI64(r.query_id);
      enc->PutU32(r.status_code);
      enc->PutU8(r.reject_reason);
      enc->PutString(r.message);
      enc->PutU32(static_cast<uint32_t>(r.items.size()));
      for (const int32_t item : r.items) enc->PutI32(item);
      enc->PutDouble(r.precision_at_k);
      enc->PutI64(r.total_microtasks);
      enc->PutI64(r.rounds);
      enc->PutDouble(r.latency_seconds);
      enc->PutDouble(r.queue_wait_seconds);
      enc->PutI64(r.shard_id);
      return;
    }
    case MessageType::kCancel:
      enc->PutI64(m.cancel.query_id);
      return;
    case MessageType::kCancelAck:
      enc->PutI64(m.cancel_ack.query_id);
      enc->PutU8(m.cancel_ack.cancelled ? 1 : 0);
      return;
    case MessageType::kStatsRequest:
      return;  // empty body
    case MessageType::kStatsReply: {
      const StatsReply& s = m.stats_reply;
      enc->PutU8(s.draining ? 1 : 0);
      enc->PutI64(s.active_connections);
      enc->PutI64(s.accepted_connections);
      enc->PutI64(s.rejected_connections);
      enc->PutI64(s.idle_closed);
      enc->PutI64(s.frames_in);
      enc->PutI64(s.frames_out);
      enc->PutI64(s.bytes_in);
      enc->PutI64(s.bytes_out);
      enc->PutI64(s.crc_errors);
      enc->PutI64(s.malformed_frames);
      enc->PutI64(s.version_mismatches);
      enc->PutI64(s.queries_submitted);
      enc->PutI64(s.queries_completed);
      enc->PutI64(s.queries_rejected);
      enc->PutI64(s.queries_cancelled);
      enc->PutI64(s.batches);
      enc->PutI64(s.client_retries);
      enc->PutI64(s.client_redials);
      return;
    }
    case MessageType::kError:
      enc->PutU8(static_cast<uint8_t>(m.error.code));
      enc->PutI64(m.error.query_id);
      enc->PutString(m.error.message);
      return;
  }
}

bool DecodeBody(MessageType type, Decoder* dec, NetMessage* out) {
  out->type = type;
  switch (type) {
    case MessageType::kHello:
      return dec->GetU64(&out->hello.magic) &&
             dec->GetU32(&out->hello.version);
    case MessageType::kHelloAck:
      return dec->GetU32(&out->hello_ack.version);
    case MessageType::kSubmitQuery:
      return dec->GetString(&out->submit.dataset) &&
             dec->GetI64(&out->submit.k) &&
             dec->GetString(&out->submit.algo) &&
             dec->GetDouble(&out->submit.alpha) &&
             dec->GetI64(&out->submit.budget) &&
             dec->GetI64(&out->submit.seed_stream);
    case MessageType::kSubmitAck:
      return dec->GetI64(&out->submit_ack.query_id);
    case MessageType::kStatusRequest:
      return dec->GetI64(&out->status_request.query_id);
    case MessageType::kStatusReply: {
      uint8_t state;
      if (!dec->GetI64(&out->status_reply.query_id) || !dec->GetU8(&state)) {
        return false;
      }
      if (state > static_cast<uint8_t>(QueryState::kDone)) return false;
      out->status_reply.state = static_cast<QueryState>(state);
      return true;
    }
    case MessageType::kResult: {
      Result& r = out->result;
      uint32_t count;
      if (!dec->GetI64(&r.query_id) || !dec->GetU32(&r.status_code) ||
          !dec->GetU8(&r.reject_reason) || !dec->GetString(&r.message) ||
          !dec->GetU32(&count)) {
        return false;
      }
      // Each item costs 4 bytes; a count the remaining bytes cannot hold
      // is corruption, not a huge allocation.
      if (count > dec->remaining() / sizeof(int32_t)) return false;
      r.items.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        if (!dec->GetI32(&r.items[i])) return false;
      }
      return dec->GetDouble(&r.precision_at_k) &&
             dec->GetI64(&r.total_microtasks) && dec->GetI64(&r.rounds) &&
             dec->GetDouble(&r.latency_seconds) &&
             dec->GetDouble(&r.queue_wait_seconds) &&
             dec->GetI64(&r.shard_id);
    }
    case MessageType::kCancel:
      return dec->GetI64(&out->cancel.query_id);
    case MessageType::kCancelAck: {
      uint8_t cancelled;
      if (!dec->GetI64(&out->cancel_ack.query_id) ||
          !dec->GetU8(&cancelled)) {
        return false;
      }
      out->cancel_ack.cancelled = cancelled != 0;
      return true;
    }
    case MessageType::kStatsRequest:
      return true;
    case MessageType::kStatsReply: {
      StatsReply& s = out->stats_reply;
      uint8_t draining;
      if (!dec->GetU8(&draining)) return false;
      s.draining = draining != 0;
      return dec->GetI64(&s.active_connections) &&
             dec->GetI64(&s.accepted_connections) &&
             dec->GetI64(&s.rejected_connections) &&
             dec->GetI64(&s.idle_closed) && dec->GetI64(&s.frames_in) &&
             dec->GetI64(&s.frames_out) && dec->GetI64(&s.bytes_in) &&
             dec->GetI64(&s.bytes_out) && dec->GetI64(&s.crc_errors) &&
             dec->GetI64(&s.malformed_frames) &&
             dec->GetI64(&s.version_mismatches) &&
             dec->GetI64(&s.queries_submitted) &&
             dec->GetI64(&s.queries_completed) &&
             dec->GetI64(&s.queries_rejected) &&
             dec->GetI64(&s.queries_cancelled) && dec->GetI64(&s.batches) &&
             dec->GetI64(&s.client_retries) && dec->GetI64(&s.client_redials);
    }
    case MessageType::kError: {
      uint8_t code;
      if (!dec->GetU8(&code)) return false;
      if (code < static_cast<uint8_t>(ErrorCode::kVersionMismatch) ||
          code > static_cast<uint8_t>(ErrorCode::kInternal)) {
        return false;
      }
      out->error.code = static_cast<ErrorCode>(code);
      return dec->GetI64(&out->error.query_id) &&
             dec->GetString(&out->error.message);
    }
  }
  return false;
}

}  // namespace

std::string EncodeMessage(const NetMessage& message) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(message.type));
  EncodeBody(message, &enc);
  return enc.Take();
}

bool DecodeMessage(const std::string& payload, NetMessage* out) {
  Decoder dec(payload);
  uint8_t type;
  if (!dec.GetU8(&type)) return false;
  if (type < static_cast<uint8_t>(MessageType::kHello) ||
      type > static_cast<uint8_t>(MessageType::kError)) {
    return false;
  }
  if (!DecodeBody(static_cast<MessageType>(type), &dec, out)) return false;
  return dec.remaining() == 0;  // trailing garbage is malformed, not slack
}

std::string FramePayload(const std::string& payload) {
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(payload.size()));
  enc.PutU32(util::Crc32(payload));
  std::string frame = enc.Take();
  frame += payload;
  return frame;
}

std::string FrameMessage(const NetMessage& message) {
  return FramePayload(EncodeMessage(message));
}

NetMessage MakeError(ErrorCode code, int64_t query_id, std::string message) {
  NetMessage m;
  m.type = MessageType::kError;
  m.error.code = code;
  m.error.query_id = query_id;
  m.error.message = std::move(message);
  return m;
}

util::Status MapErrorCode(ErrorCode code, const std::string& message) {
  switch (code) {
    case ErrorCode::kVersionMismatch:
      return util::Status::FailedPrecondition(message);
    case ErrorCode::kMalformed:
      return util::Status::InvalidArgument(message);
    case ErrorCode::kUnavailable:
      return util::Status::Unavailable(message);
    case ErrorCode::kQueueFull:
      return util::Status::ResourceExhausted(message);
    case ErrorCode::kInvalidArgument:
      return util::Status::InvalidArgument(message);
    case ErrorCode::kNotFound:
      return util::Status::NotFound(message);
    case ErrorCode::kInternal:
      return util::Status::Internal(message);
  }
  return util::Status::Internal(message);
}

FrameReader::Next FrameReader::Pop(std::string* payload) {
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (offset_ > 0 && offset_ >= buffer_.size() / 2) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  if (buffered_bytes() < kFrameHeaderBytes) return Next::kNeedMore;
  uint32_t length;
  uint32_t crc;
  std::memcpy(&length, buffer_.data() + offset_, sizeof(length));
  std::memcpy(&crc, buffer_.data() + offset_ + sizeof(length), sizeof(crc));
  if (length > max_payload_) return Next::kOversized;
  if (buffered_bytes() < kFrameHeaderBytes + length) return Next::kNeedMore;
  const char* body = buffer_.data() + offset_ + kFrameHeaderBytes;
  if (util::Crc32(body, static_cast<size_t>(length)) != crc) {
    return Next::kCorrupt;
  }
  payload->assign(body, length);
  offset_ += kFrameHeaderBytes + length;
  return Next::kFrame;
}

}  // namespace crowdtopk::net
