#include "sim/chaos.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "data/generators.h"
#include "sim/environment.h"
#include "util/check.h"

namespace crowdtopk::sim {
namespace {

// A ladder whose judgments flow through a degraded worker pool while the
// ground truth — used only for precision scoring — stays honest. The base
// ladder is owned; the injector wraps it.
class FaultyLadderDataset : public data::Dataset {
 public:
  FaultyLadderDataset(std::unique_ptr<data::Dataset> base,
                      const fault::FaultPlan& plan, uint64_t fault_seed)
      : data::Dataset("sim_faulty_ladder", CopyScores(*base)),
        base_(std::move(base)),
        injector_(base_.get(), plan, fault_seed) {}

  double PreferenceJudgment(crowd::ItemId i, crowd::ItemId j,
                            util::Rng* rng) const override {
    return injector_.PreferenceJudgment(i, j, rng);
  }
  double BinaryJudgment(crowd::ItemId i, crowd::ItemId j,
                        util::Rng* rng) const override {
    // The injector's inherited sign-of-preference derivation, so binary
    // streams see the same degraded workers.
    return injector_.BinaryJudgment(i, j, rng);
  }
  double GradedJudgment(crowd::ItemId i, util::Rng* rng) const override {
    return injector_.GradedJudgment(i, rng);
  }

 private:
  static std::vector<double> CopyScores(const data::Dataset& d) {
    std::vector<double> scores(d.num_items());
    for (int64_t i = 0; i < d.num_items(); ++i) {
      scores[i] = d.TrueScore(i);
    }
    return scores;
  }

  std::unique_ptr<data::Dataset> base_;
  fault::FaultInjectionOracle injector_;
};

}  // namespace

fault::FaultPlan Episode::FaultPlanFor() const {
  fault::FaultPlan plan;
  plan.num_workers = 50;
  plan.spammer_fraction = spammer_fraction;
  plan.adversary_fraction = adversary_fraction;
  plan.lazy_fraction = lazy_fraction;
  plan.duplicate_fraction = duplicate_fraction;
  plan.no_show_fraction = no_show_fraction;
  return plan;
}

bool Episode::any_value_faults() const {
  return fault::AnyValueFaults(FaultPlanFor());
}

Episode DeriveEpisode(uint64_t seed) {
  Episode e;
  e.seed = seed;
  const util::Rng root(
      util::SplitSeed(seed, static_cast<uint64_t>(Stream::kEpisode)));

  util::Rng workload = root.Split(1);
  e.items = workload.UniformInt(8, 14);
  e.gap = 0.5 + 0.5 * workload.Uniform();
  e.noise = 0.5 + 1.0 * workload.Uniform();
  e.queries = workload.UniformInt(3, 6);
  e.k = workload.UniformInt(2, 4);
  e.alpha = 0.02 + 0.06 * workload.Uniform();
  e.algorithms = workload.UniformInt(1, 4);
  e.arrival_rate = 0.02 + 0.08 * workload.Uniform();

  util::Rng sched = root.Split(2);
  e.crowd_workers = sched.UniformInt(8, 24);
  e.per_pair_batch = sched.UniformInt(2, 6);
  e.deadline_seconds = 30.0 + 60.0 * sched.Uniform();
  e.abandon_probability = sched.Bernoulli(0.5) ? 0.05 * sched.Uniform() : 0.0;
  e.max_attempts = sched.UniformInt(3, 5);
  e.max_inflight = sched.UniformInt(2, 4);
  e.max_queue = sched.Bernoulli(0.3) ? sched.UniformInt(1, 3) : -1;

  util::Rng faults = root.Split(3);
  if (faults.Bernoulli(0.5)) {
    e.spammer_fraction = faults.Bernoulli(0.5) ? 0.2 * faults.Uniform() : 0.0;
    e.adversary_fraction =
        faults.Bernoulli(0.35) ? 0.1 * faults.Uniform() : 0.0;
    e.lazy_fraction = faults.Bernoulli(0.5) ? 0.3 * faults.Uniform() : 0.0;
    e.duplicate_fraction =
        faults.Bernoulli(0.35) ? 0.2 * faults.Uniform() : 0.0;
    e.no_show_fraction =
        faults.Bernoulli(0.35) ? 0.15 * faults.Uniform() : 0.0;
  }

  util::Rng cache = root.Split(4);
  e.cache_enabled = cache.Bernoulli(0.6);
  if (e.cache_enabled) {
    e.transitivity = cache.Bernoulli(0.4);
    e.cache_capacity = cache.Bernoulli(0.3) ? cache.UniformInt(1, 8) : -1;
  }

  util::Rng persist = root.Split(5);
  e.persist_enabled = persist.Bernoulli(0.6);
  if (e.persist_enabled) {
    e.snapshot_every = persist.UniformInt(1, 5);
    e.wal_segment_bytes = persist.Bernoulli(0.5) ? (1 << 10) : (1 << 14);
    e.halt_after_barrier =
        persist.Bernoulli(0.6) ? persist.UniformInt(0, 6) : -1;
    // A torn tail needs a live WAL tail to tear; only halted (crash-image)
    // runs leave one behind — completed runs prune their log.
    e.torn_tail_bytes = (e.halt_after_barrier >= 0 && persist.Bernoulli(0.4))
                            ? persist.UniformInt(1, 64)
                            : 0;
  }

  e.jobs_b = root.Split(6).Bernoulli(0.5) ? 4 : 8;

  util::Rng wire = root.Split(7);
  e.wire_trials = wire.UniformInt(1, 3);
  const double roll = wire.Uniform();
  e.wire_corruption = roll < 0.55   ? WireCorruption::kNone
                      : roll < 0.75 ? WireCorruption::kBitFlip
                      : roll < 0.90 ? WireCorruption::kTruncate
                                    : WireCorruption::kOversized;

  e.check_verify = root.Split(8).Bernoulli(0.25);

  util::Rng shard = root.Split(9);
  if (shard.Bernoulli(0.4)) {
    e.shards = shard.UniformInt(2, 4);
    e.shard_kill = shard.Bernoulli(0.5);
  }
  return e;
}

namespace {

void AppendKv(std::string* out, const char* key, const std::string& value) {
  if (!out->empty()) out->push_back(',');
  out->append(key);
  out->push_back('=');
  out->append(value);
}

std::string FmtI(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

std::string FmtU(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

// %.17g round-trips every double exactly through text.
std::string FmtD(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string ToSpec(const Episode& e) {
  std::string s;
  AppendKv(&s, "seed", FmtU(e.seed));
  AppendKv(&s, "items", FmtI(e.items));
  AppendKv(&s, "gap", FmtD(e.gap));
  AppendKv(&s, "noise", FmtD(e.noise));
  AppendKv(&s, "queries", FmtI(e.queries));
  AppendKv(&s, "k", FmtI(e.k));
  AppendKv(&s, "alpha", FmtD(e.alpha));
  AppendKv(&s, "algos", FmtI(e.algorithms));
  AppendKv(&s, "rate", FmtD(e.arrival_rate));
  AppendKv(&s, "workers", FmtI(e.crowd_workers));
  AppendKv(&s, "eta", FmtI(e.per_pair_batch));
  AppendKv(&s, "deadline", FmtD(e.deadline_seconds));
  AppendKv(&s, "abandon", FmtD(e.abandon_probability));
  AppendKv(&s, "attempts", FmtI(e.max_attempts));
  AppendKv(&s, "inflight", FmtI(e.max_inflight));
  AppendKv(&s, "queue", FmtI(e.max_queue));
  AppendKv(&s, "spam", FmtD(e.spammer_fraction));
  AppendKv(&s, "adv", FmtD(e.adversary_fraction));
  AppendKv(&s, "lazy", FmtD(e.lazy_fraction));
  AppendKv(&s, "dup", FmtD(e.duplicate_fraction));
  AppendKv(&s, "noshow", FmtD(e.no_show_fraction));
  AppendKv(&s, "cache", FmtI(e.cache_enabled ? 1 : 0));
  AppendKv(&s, "cap", FmtI(e.cache_capacity));
  AppendKv(&s, "trans", FmtI(e.transitivity ? 1 : 0));
  AppendKv(&s, "persist", FmtI(e.persist_enabled ? 1 : 0));
  AppendKv(&s, "snap", FmtI(e.snapshot_every));
  AppendKv(&s, "walseg", FmtI(e.wal_segment_bytes));
  AppendKv(&s, "halt", FmtI(e.halt_after_barrier));
  AppendKv(&s, "torn", FmtI(e.torn_tail_bytes));
  AppendKv(&s, "jobsa", FmtI(e.jobs_a));
  AppendKv(&s, "jobsb", FmtI(e.jobs_b));
  AppendKv(&s, "wire", FmtI(e.wire_trials));
  AppendKv(&s, "corrupt", FmtI(static_cast<int32_t>(e.wire_corruption)));
  AppendKv(&s, "verify", FmtI(e.check_verify ? 1 : 0));
  AppendKv(&s, "shards", FmtI(e.shards));
  AppendKv(&s, "shardkill", FmtI(e.shard_kill ? 1 : 0));
  AppendKv(&s, "mutation", e.mutation);
  return s;
}

namespace {

bool ParseI(const std::string& v, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(v.c_str(), &end, 10);
  return end != v.c_str() && *end == '\0';
}

bool ParseU(const std::string& v, uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(v.c_str(), &end, 10);
  return end != v.c_str() && *end == '\0';
}

bool ParseD(const std::string& v, double* out) {
  char* end = nullptr;
  *out = std::strtod(v.c_str(), &end);
  return end != v.c_str() && *end == '\0';
}

bool ParseB(const std::string& v, bool* out) {
  if (v != "0" && v != "1") return false;
  *out = v == "1";
  return true;
}

}  // namespace

util::StatusOr<Episode> EpisodeFromSpec(const std::string& spec) {
  Episode e;
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string pair =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return util::Status::InvalidArgument("episode spec entry without '=': " +
                                           pair);
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    bool ok = true;
    int32_t corrupt = 0;
    if (key == "seed") {
      ok = ParseU(value, &e.seed);
    } else if (key == "items") {
      ok = ParseI(value, &e.items);
    } else if (key == "gap") {
      ok = ParseD(value, &e.gap);
    } else if (key == "noise") {
      ok = ParseD(value, &e.noise);
    } else if (key == "queries") {
      ok = ParseI(value, &e.queries);
    } else if (key == "k") {
      ok = ParseI(value, &e.k);
    } else if (key == "alpha") {
      ok = ParseD(value, &e.alpha);
    } else if (key == "algos") {
      ok = ParseI(value, &e.algorithms);
    } else if (key == "rate") {
      ok = ParseD(value, &e.arrival_rate);
    } else if (key == "workers") {
      ok = ParseI(value, &e.crowd_workers);
    } else if (key == "eta") {
      ok = ParseI(value, &e.per_pair_batch);
    } else if (key == "deadline") {
      ok = ParseD(value, &e.deadline_seconds);
    } else if (key == "abandon") {
      ok = ParseD(value, &e.abandon_probability);
    } else if (key == "attempts") {
      ok = ParseI(value, &e.max_attempts);
    } else if (key == "inflight") {
      ok = ParseI(value, &e.max_inflight);
    } else if (key == "queue") {
      ok = ParseI(value, &e.max_queue);
    } else if (key == "spam") {
      ok = ParseD(value, &e.spammer_fraction);
    } else if (key == "adv") {
      ok = ParseD(value, &e.adversary_fraction);
    } else if (key == "lazy") {
      ok = ParseD(value, &e.lazy_fraction);
    } else if (key == "dup") {
      ok = ParseD(value, &e.duplicate_fraction);
    } else if (key == "noshow") {
      ok = ParseD(value, &e.no_show_fraction);
    } else if (key == "cache") {
      ok = ParseB(value, &e.cache_enabled);
    } else if (key == "cap") {
      ok = ParseI(value, &e.cache_capacity);
    } else if (key == "trans") {
      ok = ParseB(value, &e.transitivity);
    } else if (key == "persist") {
      ok = ParseB(value, &e.persist_enabled);
    } else if (key == "snap") {
      ok = ParseI(value, &e.snapshot_every);
    } else if (key == "walseg") {
      ok = ParseI(value, &e.wal_segment_bytes);
    } else if (key == "halt") {
      ok = ParseI(value, &e.halt_after_barrier);
    } else if (key == "torn") {
      ok = ParseI(value, &e.torn_tail_bytes);
    } else if (key == "jobsa") {
      ok = ParseI(value, &e.jobs_a);
    } else if (key == "jobsb") {
      ok = ParseI(value, &e.jobs_b);
    } else if (key == "wire") {
      ok = ParseI(value, &e.wire_trials);
    } else if (key == "corrupt") {
      int64_t raw = 0;
      ok = ParseI(value, &raw) && raw >= 0 && raw <= 3;
      corrupt = static_cast<int32_t>(raw);
      if (ok) e.wire_corruption = static_cast<WireCorruption>(corrupt);
    } else if (key == "verify") {
      ok = ParseB(value, &e.check_verify);
    } else if (key == "shards") {
      ok = ParseI(value, &e.shards);
    } else if (key == "shardkill") {
      ok = ParseB(value, &e.shard_kill);
    } else if (key == "mutation") {
      e.mutation = value;
    } else {
      return util::Status::InvalidArgument("unknown episode spec key: " + key);
    }
    if (!ok) {
      return util::Status::InvalidArgument("unparseable episode spec value: " +
                                           pair);
    }
  }
  return e;
}

std::unique_ptr<data::Dataset> MakeEpisodeDataset(const Episode& episode,
                                                  uint64_t fault_seed) {
  std::unique_ptr<data::Dataset> ladder =
      data::MakeUniformLadder(episode.items, episode.gap, episode.noise);
  if (!episode.any_value_faults()) return ladder;
  return std::make_unique<FaultyLadderDataset>(
      std::move(ladder), episode.FaultPlanFor(), fault_seed);
}

}  // namespace crowdtopk::sim
