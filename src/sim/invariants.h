// Cross-layer invariant checkers of the simulation harness.
//
// Each checker inspects the artifacts of one or two full-stack replays (or
// drives a subsystem directly, for the wire and verify families) and
// appends a Violation per broken property. The families, mapped to the
// layers they guard (docs/SIMULATION.md has the triage table):
//
//   jobs-bit-identity          serve/exec: report + table bytes equal for
//                              any worker count
//   cache-capacity0-identity   cache: an attached capacity-0 cache is
//                              byte-identical to no cache at all
//   cache-export-soundness     cache: alpha gate, capacity bound, counter
//                              coherence of the exported image
//   persist-transparency       persist: durability on/off/halted never
//                              changes the replay's bytes
//   resume-identity            persist: crash + resume reproduces the cold
//                              run with zero digest divergence
//   wal-frontier-monotonic     persist: durable barrier records advance
//                              monotonically on disk
//   warm-restart-determinism   cache+persist: a warm restart is itself
//                              bit-identical across worker counts
//   wire-reassembly-identity   net: split points never change reassembly;
//                              corruption is classified, never delivered
//   verify-preservation        verify: guarantee checks are engine-width
//                              independent and the clean crowd passes
//   shard-scatter-identity     shard: the merged pure-column table of a
//                              K-shard router replay equals the 1-shard one
//   shard-failover-completes   shard: a shard killed mid-batch loses no
//                              admitted query; re-purchased crowd work
//                              stays within the re-dispatch budget

#ifndef CROWDTOPK_SIM_INVARIANTS_H_
#define CROWDTOPK_SIM_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cache/judgment_cache.h"
#include "persist/manager.h"
#include "serve/query_service.h"
#include "sim/chaos.h"
#include "util/status.h"

namespace crowdtopk::sim {

struct Violation {
  std::string invariant;  // family name from the table above
  std::string detail;     // what diverged, with enough context to triage
};

// Everything one full-stack replay leaves behind.
struct RunArtifacts {
  std::string report_jsonl;  // serve::RenderServeReportJsonl
  std::string query_table;   // serve::RenderQueryTable
  std::vector<serve::QueryOutcome> outcomes;
  std::vector<cache::ExportedEntry> cache_export;
  cache::CacheStats cache_stats;
  persist::PersistCounters persist;
  util::Status persist_status;
  int64_t replayed_microtasks = 0;
};

// Report + table bytes of `a` and `b` must be identical.
void CheckBitIdentity(const std::string& invariant, const std::string& label,
                      const RunArtifacts& a, const RunArtifacts& b,
                      std::vector<Violation>* out);

// Table bytes only — for pairs whose JSONL legitimately differs in cache
// counters (a capacity-0 cache records misses; a disabled one records
// nothing).
void CheckTableIdentity(const std::string& invariant, const std::string& label,
                        const RunArtifacts& a, const RunArtifacts& b,
                        std::vector<Violation>* out);

// Exported-cache soundness of a cached run: every entry's alpha in (0, 1],
// finite bag moments, the capacity bound respected, and the lookup counters
// summing up.
void CheckCacheExport(const Episode& episode, const RunArtifacts& run,
                      std::vector<Violation>* out);

// Crash + resume reproduced the cold run: bytes equal, recovery actually
// ran, and catch-up re-execution never diverged from the durable records.
void CheckResume(const Episode& episode, const RunArtifacts& cold,
                 const RunArtifacts& resumed, std::vector<Violation>* out);

// Reads the WAL left in `dir` and checks the durable frontier only ever
// advances: barriers strictly increasing; round, simulated time, arrivals
// consumed, and completions all non-decreasing.
void CheckWalFrontier(const std::string& dir, std::vector<Violation>* out);

// Wire family: `episode.wire_trials` clean split-point trials (reassembly
// and decode must be exact) plus one corrupted trial per
// episode.wire_corruption (classification must match the mangling). The
// "wire-flip" mutation flips an undeclared bit in clean trial 0.
void CheckWireTrials(const Episode& episode, std::vector<Violation>* out);

// Verify family: one clean COMP guarantee check run on a 1-worker and a
// 2-worker engine — reports must match field-for-field and pass.
void CheckVerifyPreservation(const Episode& episode,
                             std::vector<Violation>* out);

// Shard family (episode.shards >= 2, cache forced off — cache visibility
// depends on co-placement): replays the episode's trace through a
// shard::ShardRouter over K local shards and over one, and compares the
// merged pure-column tables byte-for-byte (shard-scatter-identity). With
// episode.shard_kill, a third replay kills the first query's primary
// shard on its first sub-batch: every query must still complete with the
// same table bytes, no query may land on the dead shard, and the
// re-dispatch / re-purchase counters must stay within budget
// (shard-failover-completes).
void CheckShardScatter(const Episode& episode, std::vector<Violation>* out);

}  // namespace crowdtopk::sim

#endif  // CROWDTOPK_SIM_INVARIANTS_H_
