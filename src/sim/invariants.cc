#include "sim/invariants.h"

#include <cmath>
#include <cstdio>
#include <set>
#include <utility>

#include "baselines/heap_sort.h"
#include "baselines/quick_select.h"
#include "baselines/tournament_tree.h"
#include "core/spr.h"
#include "exec/run_engine.h"
#include "persist/format.h"
#include "persist/wal.h"
#include "shard/hash.h"
#include "shard/local_backend.h"
#include "shard/report.h"
#include "shard/router.h"
#include "sim/environment.h"
#include "sim/loopback.h"
#include "util/file_io.h"
#include "verify/guarantee.h"

namespace crowdtopk::sim {

namespace {

std::string I64(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

// First byte offset where two blobs differ, with a short context window —
// a failing seed should be diagnosable from the violation text alone.
std::string FirstDiff(const std::string& a, const std::string& b) {
  size_t n = std::min(a.size(), b.size());
  size_t at = n;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      at = i;
      break;
    }
  }
  if (at == n && a.size() == b.size()) return "equal";
  std::string detail = "sizes " + I64(static_cast<int64_t>(a.size())) + " vs " +
                       I64(static_cast<int64_t>(b.size())) + ", first diff @" +
                       I64(static_cast<int64_t>(at));
  size_t from = at > 20 ? at - 20 : 0;
  detail += " [";
  detail += a.substr(from, std::min<size_t>(40, a.size() - from));
  detail += "] vs [";
  detail += b.substr(from, std::min<size_t>(40, b.size() - from));
  detail += "]";
  return detail;
}

void CompareBlobs(const std::string& invariant, const std::string& label,
                  const char* what, const std::string& a, const std::string& b,
                  std::vector<Violation>* out) {
  if (a == b) return;
  out->push_back(
      {invariant, label + ": " + what + " differ: " + FirstDiff(a, b)});
}

}  // namespace

void CheckBitIdentity(const std::string& invariant, const std::string& label,
                      const RunArtifacts& a, const RunArtifacts& b,
                      std::vector<Violation>* out) {
  CompareBlobs(invariant, label, "report jsonl", a.report_jsonl, b.report_jsonl,
               out);
  CompareBlobs(invariant, label, "query table", a.query_table, b.query_table,
               out);
}

void CheckTableIdentity(const std::string& invariant, const std::string& label,
                        const RunArtifacts& a, const RunArtifacts& b,
                        std::vector<Violation>* out) {
  CompareBlobs(invariant, label, "query table", a.query_table, b.query_table,
               out);
}

void CheckCacheExport(const Episode& episode, const RunArtifacts& run,
                      std::vector<Violation>* out) {
  constexpr char kName[] = "cache-export-soundness";
  std::set<std::pair<int64_t, std::pair<int64_t, int64_t>>> pairs;
  for (const cache::ExportedEntry& e : run.cache_export) {
    // The alpha gate: an entry is only ever served when its cached error
    // bound covers the requester's, so a committed bound outside (0, 1]
    // would poison every later hit decision.
    if (!(e.entry.alpha > 0.0) || e.entry.alpha > 1.0 ||
        !std::isfinite(e.entry.alpha)) {
      out->push_back({kName, "entry (" + I64(e.universe) + "," + I64(e.lo) +
                                 "," + I64(e.hi) + ") has alpha outside (0,1]"});
    }
    if (!std::isfinite(e.entry.mean) || !std::isfinite(e.entry.m2) ||
        e.entry.m2 < 0.0 || e.entry.count < 0) {
      out->push_back({kName, "entry (" + I64(e.universe) + "," + I64(e.lo) +
                                 "," + I64(e.hi) + ") has a malformed bag"});
    }
    if (e.lo >= e.hi) {
      out->push_back({kName, "entry not in canonical lo<hi orientation: " +
                                 I64(e.lo) + "," + I64(e.hi)});
    }
    pairs.insert({e.universe, {e.lo, e.hi}});
  }
  if (episode.cache_capacity >= 0 &&
      static_cast<int64_t>(pairs.size()) > episode.cache_capacity) {
    out->push_back({kName, "exported " + I64(static_cast<int64_t>(pairs.size())) +
                               " distinct pairs over capacity " +
                               I64(episode.cache_capacity)});
  }
  const cache::CacheStats& s = run.cache_stats;
  if (s.lookups != s.hits + s.topups + s.inferred + s.misses) {
    out->push_back({kName, "lookup counters do not sum: lookups=" +
                               I64(s.lookups) + " hits=" + I64(s.hits) +
                               " topups=" + I64(s.topups) + " inferred=" +
                               I64(s.inferred) + " misses=" + I64(s.misses)});
  }
  if (!episode.transitivity && s.inferred != 0) {
    out->push_back({kName, "inferred verdicts served with transitivity off: " +
                               I64(s.inferred)});
  }
}

void CheckResume(const Episode& episode, const RunArtifacts& cold,
                 const RunArtifacts& resumed, std::vector<Violation>* out) {
  constexpr char kName[] = "resume-identity";
  CompareBlobs(kName, "cold vs resumed", "report jsonl", cold.report_jsonl,
               resumed.report_jsonl, out);
  CompareBlobs(kName, "cold vs resumed", "query table", cold.query_table,
               resumed.query_table, out);
  if (!resumed.persist_status.ok()) {
    out->push_back(
        {kName, "resume persist status: " + resumed.persist_status.ToString()});
  }
  if (resumed.persist.resumed != 1) {
    out->push_back({kName, "resume ran without recovery (resumed=" +
                               I64(resumed.persist.resumed) + ")"});
  }
  if (resumed.persist.divergent_barriers != 0) {
    out->push_back({kName, "catch-up digest divergence on " +
                               I64(resumed.persist.divergent_barriers) +
                               " barriers"});
  }
  if (resumed.persist.cache_image_divergent != 0) {
    out->push_back({kName, "cache image divergence on " +
                               I64(resumed.persist.cache_image_divergent) +
                               " snapshot barriers"});
  }
  // Crowd-work accounting: a resume that verified durable barriers with
  // completed queries in them must account their microtasks as replayed,
  // never re-purchased.
  if (episode.torn_tail_bytes == 0 && resumed.persist.durable_barrier >= 0 &&
      resumed.replayed_microtasks < 0) {
    out->push_back({kName, "negative replayed-microtask accounting"});
  }
}

void CheckWalFrontier(const std::string& dir, std::vector<Violation>* out) {
  constexpr char kName[] = "wal-frontier-monotonic";
  const int64_t max_segment = persist::MaxWalSegment(dir);
  if (max_segment < 0) return;  // nothing durable (pruned or never written)
  int64_t first = -1;
  for (int64_t s = 0; s <= max_segment; ++s) {
    if (util::PathExists(dir + "/" + persist::WalSegmentName(s))) {
      first = s;
      break;
    }
  }
  if (first < 0) return;
  util::StatusOr<persist::WalReadResult> read = persist::ReadWal(dir, first);
  if (!read.ok()) {
    out->push_back({kName, "ReadWal: " + read.status().ToString()});
    return;
  }
  const persist::BarrierRecord* prev = nullptr;
  for (const persist::WalRecord& record : read.value().records) {
    if (record.type != persist::RecordType::kBarrier) continue;
    const persist::BarrierRecord& b = record.barrier;
    if (prev != nullptr) {
      if (b.barrier <= prev->barrier) {
        out->push_back({kName, "barrier id regressed: " + I64(prev->barrier) +
                                   " -> " + I64(b.barrier)});
      }
      if (b.round < prev->round) {
        out->push_back({kName, "round regressed at barrier " + I64(b.barrier)});
      }
      if (b.now_seconds < prev->now_seconds) {
        out->push_back(
            {kName, "simulated clock regressed at barrier " + I64(b.barrier)});
      }
      if (b.next_arrival < prev->next_arrival) {
        out->push_back({kName, "arrival cursor regressed at barrier " +
                                   I64(b.barrier)});
      }
      if (b.done < prev->done) {
        out->push_back(
            {kName, "done counter regressed at barrier " + I64(b.barrier)});
      }
    }
    prev = &record.barrier;
  }
}

void CheckWireTrials(const Episode& episode, std::vector<Violation>* out) {
  constexpr char kName[] = "wire-reassembly-identity";
  if (episode.wire_trials <= 0 &&
      episode.wire_corruption == WireCorruption::kNone) {
    return;
  }
  const SimEnvironment env(episode.seed);
  // A fixed message census (every type, plus extra seeded repeats) framed
  // once; every trial re-delivers the same bytes at different split points.
  const std::vector<net::NetMessage> messages =
      SampleMessages(env.StreamSeed(Stream::kWire, 1000), 16);
  const FramedStream stream = FrameStream(messages);

  for (int64_t t = 0; t < episode.wire_trials; ++t) {
    std::string bytes = stream.bytes;
    if (t == 0 && episode.mutation == "wire-flip") {
      // Deliberate determinism bug: an undeclared bit flip in a clean
      // trial. The clean-trial expectations below must catch it.
      FramedStream mangled = stream;
      FlipBit(&mangled, mangled.frame_offsets.size() / 2,
              env.StreamSeed(Stream::kWire, 9999));
      bytes = mangled.bytes;
    }
    const Delivery d = DeliverByteStream(bytes, env.StreamSeed(Stream::kWire,
                                                               static_cast<uint64_t>(t)));
    if (d.corrupt || d.oversized) {
      out->push_back({kName, "clean trial " + I64(t) + " classified " +
                                 (d.corrupt ? "corrupt" : "oversized")});
      continue;
    }
    if (d.payloads != stream.payloads) {
      out->push_back({kName,
                      "clean trial " + I64(t) + " reassembly mismatch: got " +
                          I64(static_cast<int64_t>(d.payloads.size())) +
                          " payloads, want " +
                          I64(static_cast<int64_t>(stream.payloads.size()))});
      continue;
    }
    for (size_t i = 0; i < d.payloads.size(); ++i) {
      net::NetMessage decoded;
      if (!net::DecodeMessage(d.payloads[i], &decoded)) {
        out->push_back({kName, "clean trial " + I64(t) + " payload " +
                                   I64(static_cast<int64_t>(i)) +
                                   " no longer decodes"});
      }
    }
  }

  if (episode.wire_corruption == WireCorruption::kNone) return;
  util::Rng pick(env.StreamSeed(Stream::kWire, 2000));
  const size_t target = static_cast<size_t>(
      pick.UniformInt(0, static_cast<int64_t>(stream.frame_offsets.size()) - 1));
  FramedStream mangled = stream;
  switch (episode.wire_corruption) {
    case WireCorruption::kNone:
      break;
    case WireCorruption::kBitFlip: {
      FlipBit(&mangled, target, env.StreamSeed(Stream::kWire, 2001));
      const Delivery d =
          DeliverByteStream(mangled.bytes, env.StreamSeed(Stream::kWire, 2002));
      if (!d.corrupt || d.oversized) {
        out->push_back({kName, "bit flip in frame " +
                                   I64(static_cast<int64_t>(target)) +
                                   " not classified as corrupt"});
      }
      // Intact earlier frames are delivered; nothing at or past the
      // mangled frame ever is.
      std::vector<std::string> want(stream.payloads.begin(),
                                    stream.payloads.begin() +
                                        static_cast<int64_t>(target));
      if (d.payloads != want) {
        out->push_back({kName, "bit flip leaked payloads past frame " +
                                   I64(static_cast<int64_t>(target))});
      }
      break;
    }
    case WireCorruption::kTruncate: {
      TruncateTail(&mangled,
                   static_cast<size_t>(pick.UniformInt(1, 64)));
      const Delivery d =
          DeliverByteStream(mangled.bytes, env.StreamSeed(Stream::kWire, 2003));
      if (d.corrupt || d.oversized) {
        out->push_back(
            {kName, "truncated tail misclassified as a stream error"});
      }
      if (d.payloads != mangled.payloads) {
        out->push_back({kName, "truncation changed the surviving payloads"});
      }
      break;
    }
    case WireCorruption::kOversized: {
      InflateLength(&mangled, target);
      const Delivery d =
          DeliverByteStream(mangled.bytes, env.StreamSeed(Stream::kWire, 2004));
      if (!d.oversized || d.corrupt) {
        out->push_back({kName, "inflated length prefix in frame " +
                                   I64(static_cast<int64_t>(target)) +
                                   " not classified as oversized"});
      }
      std::vector<std::string> want(stream.payloads.begin(),
                                    stream.payloads.begin() +
                                        static_cast<int64_t>(target));
      if (d.payloads != want) {
        out->push_back({kName, "oversized frame leaked payloads past frame " +
                                   I64(static_cast<int64_t>(target))});
      }
      break;
    }
  }
}

void CheckVerifyPreservation(const Episode& episode,
                             std::vector<Violation>* out) {
  constexpr char kName[] = "verify-preservation";
  verify::CompCheckSpec spec;
  spec.label = "sim";
  spec.alpha = 0.05;
  spec.effect = 1.0;  // clean, well-separated pair: must pass its contract
  verify::VerifyOptions options;
  options.max_trials = 60;
  options.block_trials = 20;
  const uint64_t seed =
      SimEnvironment(episode.seed).StreamSeed(Stream::kVerify);

  exec::RunEngine::Options serial_opts;
  serial_opts.jobs = 1;
  exec::RunEngine serial(serial_opts);
  exec::RunEngine::Options wide_opts;
  wide_opts.jobs = 2;
  exec::RunEngine wide(wide_opts);

  const verify::GuaranteeReport a =
      verify::VerifyComparisonGuarantee(spec, options, &serial, seed);
  const verify::GuaranteeReport b =
      verify::VerifyComparisonGuarantee(spec, options, &wide, seed);

  if (a.trials != b.trials || a.errors != b.errors || a.ties != b.ties ||
      a.error_rate != b.error_rate || a.wilson_lo != b.wilson_lo ||
      a.wilson_hi != b.wilson_hi || a.mean_workload != b.mean_workload ||
      a.decisive != b.decisive || a.verdict != b.verdict) {
    out->push_back({kName,
                    "guarantee check differs between 1- and 2-worker engines "
                    "(trials " +
                        I64(a.trials) + " vs " + I64(b.trials) + ", errors " +
                        I64(a.errors) + " vs " + I64(b.errors) + ")"});
  }
  if (a.verdict != verify::Verdict::kPass) {
    out->push_back({kName, "clean crowd failed its own contract: error_rate=" +
                               std::to_string(a.error_rate) + " over " +
                               I64(a.trials) + " trials"});
  }
}

namespace {

// The harness's algorithm rotation (harness.cc MakeAlgorithm), with the
// placement-key name each index routes under.
constexpr const char* kShardAlgoNames[] = {"spr", "heapsort", "quickselect",
                                           "tourtree"};

std::unique_ptr<core::TopKAlgorithm> MakeShardAlgorithm(
    int64_t index, const judgment::ComparisonOptions& comparison) {
  switch (index % 4) {
    case 0: {
      core::SprOptions spr_options;
      spr_options.comparison = comparison;
      return std::make_unique<core::Spr>(spr_options);
    }
    case 1:
      return std::make_unique<baselines::HeapSortTopK>(comparison);
    case 2:
      return std::make_unique<baselines::QuickSelectTopK>(comparison);
    default:
      return std::make_unique<baselines::TournamentTree>(comparison);
  }
}

struct ShardReplay {
  std::vector<shard::RoutedOutcome> outcomes;
  shard::RouterCounters counters;
  std::string table;  // shard::RenderMergedTable
};

// One router replay of the episode's trace over `shards` local shards;
// `kill_shard` >= 0 injects a death on that shard's first sub-batch. The
// cache is forced off: cache visibility depends on co-placement, so only
// uncached replays are comparable across shard counts.
ShardReplay RunShardReplay(const Episode& e, int64_t shards,
                           int64_t kill_shard) {
  const SimEnvironment env(e.seed);
  const std::unique_ptr<data::Dataset> dataset =
      MakeEpisodeDataset(e, env.StreamSeed(Stream::kFaults));

  judgment::ComparisonOptions comparison;
  comparison.alpha = e.alpha;
  comparison.budget = 500;
  std::vector<std::unique_ptr<core::TopKAlgorithm>> algorithms;
  for (int64_t a = 0; a < e.algorithms; ++a) {
    algorithms.push_back(MakeShardAlgorithm(a, comparison));
  }

  std::vector<shard::RoutedQuery> queries(static_cast<size_t>(e.queries));
  for (int64_t q = 0; q < e.queries; ++q) {
    shard::RoutedQuery& routed = queries[static_cast<size_t>(q)];
    routed.global_id = q;
    routed.dataset = "sim_ladder";
    routed.algo = kShardAlgoNames[q % e.algorithms % 4];
    routed.k = e.k;
    routed.alpha = e.alpha;
    routed.universe = 0;
    routed.dataset_ptr = dataset.get();
    routed.algorithm = algorithms[static_cast<size_t>(q % e.algorithms)].get();
  }

  std::vector<std::unique_ptr<shard::ShardBackend>> backends;
  for (int64_t s = 0; s < shards; ++s) {
    shard::LocalShardBackend::Options backend_options;
    backend_options.seed = env.StreamSeed(Stream::kReplay);
    backend_options.schedule.crowd_workers = e.crowd_workers;
    backend_options.schedule.per_pair_batch = e.per_pair_batch;
    backend_options.schedule.deadline_seconds = e.deadline_seconds;
    backend_options.schedule.abandon_probability = e.abandon_probability;
    backend_options.schedule.no_show_probability =
        fault::NoShowProbability(e.FaultPlanFor());
    backend_options.schedule.max_attempts = e.max_attempts;
    backend_options.max_inflight = e.max_inflight;
    backend_options.jobs = 1;
    if (s == kill_shard) backend_options.fail_at_batch = 1;
    backends.push_back(
        std::make_unique<shard::LocalShardBackend>(backend_options));
  }

  shard::RouterOptions router_options;
  router_options.policy = shard::Policy::kRendezvous;
  shard::ShardRouter router(router_options, std::move(backends));

  ShardReplay replay;
  replay.outcomes = router.RouteBatch(std::move(queries));
  replay.counters = router.counters();
  replay.table = shard::RenderMergedTable(replay.outcomes);
  return replay;
}

}  // namespace

void CheckShardScatter(const Episode& episode, std::vector<Violation>* out) {
  if (episode.shards < 2 || episode.queries < 1) return;

  const ShardReplay one = RunShardReplay(episode, 1, /*kill_shard=*/-1);
  const ShardReplay many =
      RunShardReplay(episode, episode.shards, /*kill_shard=*/-1);
  CompareBlobs("shard-scatter-identity",
               "shards=1 vs shards=" + I64(episode.shards), "merged table",
               one.table, many.table, out);

  if (!episode.shard_kill) return;
  constexpr char kName[] = "shard-failover-completes";
  // Kill the first query's primary so the injected death is guaranteed to
  // cost a sub-batch in wave 1 and exercise re-dispatch.
  const shard::RoutedQuery& first = many.outcomes.front().query;
  const int64_t victim =
      shard::RankShards(
          shard::PlacementKey{first.universe, first.dataset, first.algo},
          episode.shards, shard::Policy::kRendezvous)
          .front();
  const ShardReplay killed = RunShardReplay(episode, episode.shards, victim);

  CompareBlobs(kName, "healthy vs shard " + I64(victim) + " killed",
               "merged table", many.table, killed.table, out);
  int64_t repurchased = 0;
  for (const shard::RoutedOutcome& o : killed.outcomes) {
    if (o.shard_id < 0) {
      out->push_back({kName, "query " + I64(o.query.global_id) +
                                 " never executed: " +
                                 o.result.status.ToString()});
    } else if (o.shard_id == victim) {
      out->push_back({kName, "query " + I64(o.query.global_id) +
                                 " reported by the dead shard"});
    }
    if (o.redispatches > 0) repurchased += o.result.total_microtasks;
  }
  const shard::RouterCounters& c = killed.counters;
  if (c.shard_failures < 1 || c.redispatched_queries < 1) {
    out->push_back({kName, "injected death never fired (failures=" +
                               I64(c.shard_failures) + ", redispatched=" +
                               I64(c.redispatched_queries) + ")"});
  }
  if (c.exhausted_queries != 0) {
    out->push_back({kName, I64(c.exhausted_queries) +
                               " queries exhausted their re-dispatch budget "
                               "with healthy shards remaining"});
  }
  if (c.redispatched_queries > episode.queries * 2) {
    out->push_back({kName, "re-dispatches over budget: " +
                               I64(c.redispatched_queries) + " for " +
                               I64(episode.queries) + " queries"});
  }
  if (c.repurchased_microtasks != repurchased) {
    out->push_back({kName, "re-purchase accounting mismatch: counter " +
                               I64(c.repurchased_microtasks) +
                               " vs outcomes " + I64(repurchased)});
  }
}

}  // namespace crowdtopk::sim
