// ChaosSchedule: seeded episode scripts composing the existing fault knobs.
//
// One Episode is the complete, self-describing configuration of one
// simulation run: workload shape (ladder dataset, query mix, arrivals),
// crowd schedule, worker-quality fault plan (src/fault), cache pressure
// (src/cache), durability chaos (src/persist halt points, torn WAL tails),
// wire fuzzing against net::FrameReader, and which invariant families the
// harness checks. DeriveEpisode(seed) builds it as a pure function of the
// seed via util::Rng::Split streams, so a failing seed IS the repro; the
// key=value spec round-trip (ToSpec / EpisodeFromSpec) lets the shrinker
// hand back a minimal episode as a copy-pasteable replay command.
//
// Sizes are deliberately small (<= 16 items, <= 6 queries): one episode
// runs the full serving stack up to ~8 times (jobs pairs, cache ablation,
// crash/resume, warm restart), and the CI sweep runs 64+ episodes under
// TSAN too.

#ifndef CROWDTOPK_SIM_CHAOS_H_
#define CROWDTOPK_SIM_CHAOS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "fault/injector.h"
#include "util/status.h"

namespace crowdtopk::sim {

// How one wire-fuzz trial mangles the framed byte stream.
enum class WireCorruption : int32_t {
  kNone = 0,       // clean stream: must reassemble bit-identically
  kBitFlip = 1,    // flip one payload/CRC bit -> FrameReader kCorrupt
  kTruncate = 2,   // drop the stream's tail -> kNeedMore forever
  kOversized = 3,  // inflate a length prefix past the cap -> kOversized
};

struct Episode {
  // The master seed this episode was derived from (0 when hand-built).
  uint64_t seed = 0;

  // ----- workload --------------------------------------------------------
  int64_t items = 10;      // ladder dataset size
  double gap = 1.0;        // true-score gap between adjacent items
  double noise = 1.0;      // preference noise stddev
  int64_t queries = 4;     // trace length
  int64_t k = 3;           // top-k per query
  double alpha = 0.05;     // per-comparison significance
  int64_t algorithms = 2;  // leading entries of {spr, heapsort, quickselect,
                           // tourtree} used round-robin per query
  double arrival_rate = 0.05;  // Poisson lambda (simulated seconds)

  // ----- crowd schedule --------------------------------------------------
  int64_t crowd_workers = 16;
  int64_t per_pair_batch = 4;
  double deadline_seconds = 60.0;
  double abandon_probability = 0.0;
  int64_t max_attempts = 4;
  int64_t max_inflight = 4;
  int64_t max_queue = -1;

  // ----- worker-quality faults (src/fault) -------------------------------
  double spammer_fraction = 0.0;
  double adversary_fraction = 0.0;
  double lazy_fraction = 0.0;
  double duplicate_fraction = 0.0;
  double no_show_fraction = 0.0;

  // ----- cache pressure (src/cache) --------------------------------------
  bool cache_enabled = false;
  int64_t cache_capacity = -1;  // < 0 unbounded; small values force drops
  bool transitivity = false;

  // ----- durability chaos (src/persist) ----------------------------------
  bool persist_enabled = false;
  int64_t snapshot_every = 4;
  int64_t wal_segment_bytes = 1 << 12;  // tiny: forces multi-segment logs
  // Stop persisting after this barrier (in-process crash image); < 0 = run
  // to completion before the resume generation starts.
  int64_t halt_after_barrier = -1;
  // Cut this many bytes off the newest WAL segment before resuming.
  int64_t torn_tail_bytes = 0;

  // ----- determinism probes ---------------------------------------------
  int64_t jobs_a = 1;  // reference worker count
  int64_t jobs_b = 4;  // must be bit-identical to jobs_a

  // ----- wire fuzzing (net::FrameReader) ---------------------------------
  int64_t wire_trials = 2;  // clean split-point trials per episode
  WireCorruption wire_corruption = WireCorruption::kNone;

  // ----- shard scatter (src/shard) ---------------------------------------
  // >= 2 replays the trace through a ShardRouter over this many local
  // shards and checks the merged table against a 1-shard run; <= 1 off.
  int64_t shards = 0;
  // Kill the first query's primary shard on its first sub-batch; every
  // query must still complete, byte-identically, via failover.
  bool shard_kill = false;

  // ----- invariant families ---------------------------------------------
  bool check_verify = false;  // Monte-Carlo guarantee check (expensive)

  // ----- mutation hook (never derived from the seed) ---------------------
  // Deliberate determinism bugs for the harness acceptance test
  // (docs/SIMULATION.md): "" none, "seed-drift" perturbs the jobs_b replay
  // seed, "cache-leak" gives the capacity-0 control run one cache slot,
  // "wire-flip" flips a bit in a clean wire trial.
  std::string mutation;

  fault::FaultPlan FaultPlanFor() const;
  bool any_value_faults() const;
};

// Derives the episode for `seed` — a pure function (same seed, same
// episode, any machine). Fault, chaos, and pressure knobs are sampled so
// roughly half the episodes stress each subsystem.
Episode DeriveEpisode(uint64_t seed);

// Compact, complete, order-stable "key=value,..." serialisation; the
// shrink/replay currency. EpisodeFromSpec(ToSpec(e)) == e for every field.
std::string ToSpec(const Episode& episode);
util::StatusOr<Episode> EpisodeFromSpec(const std::string& spec);

// A ladder dataset whose judgments pass through a FaultInjectionOracle
// while ground truth (precision scoring) stays honest. Plain data::Dataset
// when the episode has no value faults.
std::unique_ptr<data::Dataset> MakeEpisodeDataset(const Episode& episode,
                                                  uint64_t fault_seed);

}  // namespace crowdtopk::sim

#endif  // CROWDTOPK_SIM_CHAOS_H_
