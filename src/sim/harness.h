// The simulation harness: runs one chaos episode against the full serving
// stack and checks every invariant family, sweeps seeds, and shrinks a
// failing episode to a minimal replayable spec.
//
// One episode performs up to ~9 full replays of the same seeded trace —
// cold at two worker counts, cache ablations, a persisted run, an injected
// crash plus resume, and warm restarts — and cross-checks their artifacts
// (src/sim/invariants.h). Everything is a pure function of the episode, so
// the only state a failure report needs is the episode spec itself
// (chaos.h, ToSpec); tools/crowdtopk_sim prints it as a replay command.

#ifndef CROWDTOPK_SIM_HARNESS_H_
#define CROWDTOPK_SIM_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/chaos.h"
#include "sim/invariants.h"

namespace crowdtopk::sim {

// Clamps an episode (possibly hand-edited via --episode) into the ranges
// the stack accepts: items >= 4, 1 <= k < items, queries >= 1, and so on.
// DeriveEpisode output is already in range; Normalize never changes it.
Episode NormalizeEpisode(const Episode& episode);

// Runs one episode. `scratch_dir` is created if needed; persist chaos uses
// subdirectories under it and clears them first. Returns every violation
// found (empty = the episode upholds all invariants).
std::vector<Violation> RunEpisode(const Episode& episode,
                                  const std::string& scratch_dir);

struct SweepFailure {
  int64_t index = 0;      // position in the sweep
  Episode episode;        // the failing episode (pre-shrink)
  std::vector<Violation> violations;
};

struct SweepResult {
  int64_t episodes_run = 0;
  std::vector<SweepFailure> failures;
};

// Runs `count` episodes: episode i is DeriveEpisode(SplitSeed(master_seed,
// i)), so any slice of the sweep is reproducible independently.
SweepResult SweepSeeds(uint64_t master_seed, int64_t count,
                       const std::string& scratch_dir);

// Greedy shrink: disables chaos dimensions and halves the workload while
// the episode keeps failing, in a fixed order (wire -> verify -> shard
// kill -> shards -> torn tail -> halt -> persist -> transitivity ->
// capacity -> cache -> faults -> queries -> items -> jobs -> algorithms).
// Deterministic; returns the minimal still-failing episode and
// (optionally) its violations.
Episode ShrinkEpisode(const Episode& failing, const std::string& scratch_dir,
                      std::vector<Violation>* violations = nullptr);

// The copy-pasteable repro line for an episode.
std::string ReplayCommand(const Episode& episode);

}  // namespace crowdtopk::sim

#endif  // CROWDTOPK_SIM_HARNESS_H_
