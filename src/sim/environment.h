// SimEnvironment: the seed and time authority of one simulation episode.
//
// FoundationDB-style deterministic simulation (docs/SIMULATION.md) needs
// every source of nondeterminism pinned to one master seed. Inside this
// codebase that is already true of the *logical* simulation — the serving
// replay, scheduler, cache, and persistence layers run on simulated seconds
// and SplitSeed streams — so the environment has two remaining jobs:
//
//   * seed streams: every component of an episode (chaos schedule, fault
//     plan, wire fuzzing, replay seeds) draws its seed as a pure function
//     of (master seed, named salt) via util::SplitSeed, never from a
//     shared draw-order-dependent generator;
//   * time: a util::SimClock injected into the one layer that would
//     otherwise consult the wall clock (src/net timeouts), advanced only
//     by the episode script.
//
// Alias note: SimClock is util::SimClock — it lives in util so src/net can
// accept one without a dependency cycle (net cannot depend on sim, which
// depends on net).

#ifndef CROWDTOPK_SIM_ENVIRONMENT_H_
#define CROWDTOPK_SIM_ENVIRONMENT_H_

#include <cstdint>

#include "util/clock.h"
#include "util/random.h"

namespace crowdtopk::sim {

using Clock = util::Clock;
using SimClock = util::SimClock;
using WallClock = util::WallClock;

// Named seed streams of one episode. Values are arbitrary but frozen:
// changing one silently re-randomises every pinned seed-sweep episode, so
// treat them like a wire format.
enum class Stream : uint64_t {
  kEpisode = 0x73696d65ULL,   // "sime": episode shape derivation
  kReplay = 0x73696d72ULL,    // "simr": serve replay seeds
  kArrivals = 0x73696d61ULL,  // "sima": arrival traces
  kFaults = 0x73696d66ULL,    // "simf": fault plan seeds
  kWire = 0x73696d77ULL,      // "simw": wire split/corruption choices
  kVerify = 0x73696d76ULL,    // "simv": guarantee-check seeds
  kDataset = 0x73696d64ULL,   // "simd": dataset construction
};

class SimEnvironment {
 public:
  explicit SimEnvironment(uint64_t master_seed) : master_seed_(master_seed) {}

  uint64_t master_seed() const { return master_seed_; }

  // The `stream`-th child seed: a pure function of (master seed, stream).
  uint64_t StreamSeed(Stream stream) const {
    return util::SplitSeed(master_seed_, static_cast<uint64_t>(stream));
  }
  uint64_t StreamSeed(Stream stream, uint64_t index) const {
    return util::SplitSeed(StreamSeed(stream), index);
  }
  util::Rng StreamRng(Stream stream) const {
    return util::Rng(StreamSeed(stream));
  }

  // The episode's time authority; inject into net::ServerOptions::clock /
  // net::ClientOptions::clock.
  const SimClock* clock() const { return &clock_; }
  void AdvanceMillis(int64_t ms) const { clock_.AdvanceMillis(ms); }

 private:
  uint64_t master_seed_;
  SimClock clock_;
};

}  // namespace crowdtopk::sim

#endif  // CROWDTOPK_SIM_ENVIRONMENT_H_
