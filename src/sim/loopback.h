// In-process loopback transport for wire-codec fuzzing.
//
// Real sockets deliver a framed stream in arbitrary chunks; the
// net::FrameReader must reassemble the same frames no matter where the
// kernel split them. This transport makes that property testable without
// sockets: it feeds a framed byte stream into a FrameReader at seeded
// split points (including pathological 1-byte deliveries across the
// length/CRC header) and reports exactly which payloads came out and which
// terminal classification — if any — the reader reached. Corruption
// helpers mangle a stream the way the chaos schedule asks (bit flips,
// truncation, oversized length prefixes) while recording where, so the
// invariant layer can assert the reader never delivers a frame past the
// mangled point.

#ifndef CROWDTOPK_SIM_LOOPBACK_H_
#define CROWDTOPK_SIM_LOOPBACK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace crowdtopk::sim {

// A framed stream plus the byte offset where each frame starts, so
// corruption can target frame `index` precisely.
struct FramedStream {
  std::string bytes;
  std::vector<size_t> frame_offsets;  // one per message, ascending
  std::vector<std::string> payloads;  // the unframed payloads, in order
};

// One seeded message per protocol type, field values drawn from `seed` —
// covers every codec path with reproducible content. `count` > number of
// types keeps cycling with fresh seeded values.
std::vector<net::NetMessage> SampleMessages(uint64_t seed, int64_t count);

// Encodes and frames `messages` into one contiguous stream.
FramedStream FrameStream(const std::vector<net::NetMessage>& messages);

// What came out of the FrameReader after the whole stream was delivered.
struct Delivery {
  std::vector<std::string> payloads;  // complete payloads, in order
  bool corrupt = false;               // reader hit kCorrupt
  bool oversized = false;             // reader hit kOversized
  // Chunk sizes used, for failure reports ("split 3|1|1|40|...").
  std::vector<size_t> chunks;
};

// Feeds `bytes` into a fresh FrameReader in seeded chunks (1..16 bytes,
// drawn from `split_seed`) and pops greedily after every chunk.
Delivery DeliverByteStream(const std::string& bytes, uint64_t split_seed);

// ----- corruption operators (chaos schedule building blocks) -------------

// Flips one seeded bit inside frame `frame_index`'s CRC-protected region
// (header CRC or payload). Returns the flipped byte offset.
size_t FlipBit(FramedStream* stream, size_t frame_index, uint64_t seed);

// Drops the last `bytes` bytes (clamped to leave at least one byte of the
// final frame missing).
void TruncateTail(FramedStream* stream, size_t bytes);

// Rewrites frame `frame_index`'s length prefix to max_payload + 1 (the
// reader must classify kOversized before trusting the length).
void InflateLength(FramedStream* stream, size_t frame_index,
                   uint32_t max_payload = net::kMaxFramePayload);

}  // namespace crowdtopk::sim

#endif  // CROWDTOPK_SIM_LOOPBACK_H_
