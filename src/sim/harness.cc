#include "sim/harness.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>

#include "baselines/heap_sort.h"
#include "baselines/quick_select.h"
#include "baselines/tournament_tree.h"
#include "core/spr.h"
#include "persist/recovery.h"
#include "persist/wal.h"
#include "serve/arrival.h"
#include "serve/query_service.h"
#include "serve/report.h"
#include "sim/environment.h"
#include "util/file_io.h"

namespace crowdtopk::sim {

namespace {

// How one replay within the episode deviates from the episode's own
// configuration (the control runs of the invariant families).
struct RunConfig {
  int64_t jobs = 1;
  uint64_t seed_bump = 0;  // "seed-drift" mutation hook
  enum class CacheMode { kEpisode, kOff, kZeroCapacity, kOneSlot };
  CacheMode cache_mode = CacheMode::kEpisode;
  std::string persist_dir;  // empty = durability off
  bool resume = false;
  int64_t halt_after_barrier = -1;
  const std::vector<cache::ExportedEntry>* warm = nullptr;
};

std::unique_ptr<core::TopKAlgorithm> MakeAlgorithm(
    int64_t index, const judgment::ComparisonOptions& comparison) {
  switch (index % 4) {
    case 0: {
      core::SprOptions spr_options;
      spr_options.comparison = comparison;
      return std::make_unique<core::Spr>(spr_options);
    }
    case 1:
      return std::make_unique<baselines::HeapSortTopK>(comparison);
    case 2:
      return std::make_unique<baselines::QuickSelectTopK>(comparison);
    default:
      return std::make_unique<baselines::TournamentTree>(comparison);
  }
}

// One full-stack replay of the episode's trace under `config`.
RunArtifacts RunReplay(const Episode& e, const RunConfig& config) {
  const SimEnvironment env(e.seed);
  const std::unique_ptr<data::Dataset> dataset =
      MakeEpisodeDataset(e, env.StreamSeed(Stream::kFaults));

  judgment::ComparisonOptions comparison;
  comparison.alpha = e.alpha;
  comparison.budget = 500;  // bounds per-pair cost; ties are fine

  std::vector<std::unique_ptr<core::TopKAlgorithm>> algorithms;
  for (int64_t a = 0; a < e.algorithms; ++a) {
    algorithms.push_back(MakeAlgorithm(a, comparison));
  }

  std::vector<serve::QueryRequest> requests(e.queries);
  for (int64_t q = 0; q < e.queries; ++q) {
    requests[q].algorithm = algorithms[q % algorithms.size()].get();
    requests[q].dataset = dataset.get();
    requests[q].k = e.k;
  }
  const std::vector<double> arrivals = serve::PoissonArrivals(
      e.queries, e.arrival_rate, env.StreamSeed(Stream::kArrivals));

  serve::ServeOptions options;
  options.schedule.crowd_workers = e.crowd_workers;
  options.schedule.per_pair_batch = e.per_pair_batch;
  options.schedule.deadline_seconds = e.deadline_seconds;
  options.schedule.abandon_probability = e.abandon_probability;
  options.schedule.no_show_probability =
      fault::NoShowProbability(e.FaultPlanFor());
  options.schedule.max_attempts = e.max_attempts;
  options.max_inflight = e.max_inflight;
  options.max_queue = e.max_queue;
  options.jobs = config.jobs;
  options.seed = env.StreamSeed(Stream::kReplay) + config.seed_bump;
  switch (config.cache_mode) {
    case RunConfig::CacheMode::kEpisode:
      options.cache.enabled = e.cache_enabled;
      options.cache.capacity = e.cache_capacity;
      options.cache.transitivity = e.transitivity;
      break;
    case RunConfig::CacheMode::kOff:
      options.cache.enabled = false;
      break;
    case RunConfig::CacheMode::kZeroCapacity:
      options.cache.enabled = true;
      options.cache.capacity = 0;
      options.cache.transitivity = e.transitivity;
      break;
    case RunConfig::CacheMode::kOneSlot:
      options.cache.enabled = true;
      options.cache.capacity = 1;
      options.cache.transitivity = e.transitivity;
      break;
  }
  if (!config.persist_dir.empty()) {
    options.persist.dir = config.persist_dir;
    options.persist.snapshot_every = e.snapshot_every;
    options.persist.wal_segment_bytes = e.wal_segment_bytes;
    options.persist.wal_fsync = false;  // chaos is fail-stop, not power loss
    options.persist.resume = config.resume;
    options.persist.halt_after_barrier = config.halt_after_barrier;
  }
  if (config.warm != nullptr) options.warm_cache = *config.warm;

  serve::QueryService service(options);
  RunArtifacts artifacts;
  artifacts.outcomes = service.Replay(requests, arrivals);
  const serve::ServeReport report = serve::BuildServeReport(
      artifacts.outcomes, service.assignment_stats(),
      service.makespan_seconds(), service.total_rounds());
  artifacts.report_jsonl =
      serve::RenderServeReportJsonl(report, artifacts.outcomes);
  artifacts.query_table = serve::RenderQueryTable(artifacts.outcomes);
  artifacts.cache_export = service.ExportCache();
  artifacts.cache_stats = service.cache_stats();
  artifacts.persist = service.persist_counters();
  artifacts.persist_status = service.persist_status();
  artifacts.replayed_microtasks = service.replayed_microtasks();
  return artifacts;
}

// Empties (or creates) a scratch subdirectory for one persisted run.
std::string FreshDir(const std::string& path) {
  std::vector<std::string> files;
  if (util::ListDirectoryFiles(path, &files).ok()) {
    for (const std::string& f : files) {
      util::RemoveFileIfExists(path + "/" + f);
    }
  }
  util::EnsureDirectory(path);
  return path;
}

// Cuts `bytes` off the end of the newest WAL segment — the crash image's
// torn tail.
void TearWalTail(const std::string& dir, int64_t bytes,
                 std::vector<Violation>* out) {
  const int64_t segment = persist::MaxWalSegment(dir);
  if (segment < 0) return;  // nothing to tear (halt before any barrier)
  const std::string path = dir + "/" + persist::WalSegmentName(segment);
  std::string contents;
  if (!util::ReadFileToString(path, &contents).ok()) {
    out->push_back({"resume-identity", "torn-tail setup: unreadable " + path});
    return;
  }
  const size_t cut =
      std::min(contents.size(), static_cast<size_t>(bytes));
  contents.resize(contents.size() - cut);
  if (!util::WriteFileAtomic(path, contents).ok()) {
    out->push_back({"resume-identity", "torn-tail setup: rewrite failed"});
  }
}

}  // namespace

Episode NormalizeEpisode(const Episode& episode) {
  Episode e = episode;
  e.items = std::clamp<int64_t>(e.items, 4, 64);
  e.k = std::clamp<int64_t>(e.k, 1, e.items - 1);
  e.queries = std::clamp<int64_t>(e.queries, 1, 32);
  e.algorithms = std::clamp<int64_t>(e.algorithms, 1, 4);
  e.gap = std::clamp(e.gap, 0.01, 100.0);
  e.noise = std::clamp(e.noise, 0.0, 100.0);
  e.alpha = std::clamp(e.alpha, 1e-4, 0.4);
  e.arrival_rate = std::clamp(e.arrival_rate, 1e-4, 10.0);
  e.crowd_workers = std::clamp<int64_t>(e.crowd_workers, 1, 256);
  e.per_pair_batch = std::clamp<int64_t>(e.per_pair_batch, 1, 64);
  e.deadline_seconds = std::clamp(e.deadline_seconds, 1.0, 3600.0);
  e.abandon_probability = std::clamp(e.abandon_probability, 0.0, 0.5);
  e.max_attempts = std::clamp<int64_t>(e.max_attempts, 1, 16);
  e.max_inflight = std::clamp<int64_t>(e.max_inflight, 1, 64);
  if (e.max_queue < -1) e.max_queue = -1;
  auto clamp_fraction = [](double* f) { *f = std::clamp(*f, 0.0, 0.9); };
  clamp_fraction(&e.spammer_fraction);
  clamp_fraction(&e.adversary_fraction);
  clamp_fraction(&e.lazy_fraction);
  clamp_fraction(&e.duplicate_fraction);
  clamp_fraction(&e.no_show_fraction);
  if (e.cache_capacity < -1) e.cache_capacity = -1;
  e.snapshot_every = std::clamp<int64_t>(e.snapshot_every, 1, 64);
  e.wal_segment_bytes = std::clamp<int64_t>(e.wal_segment_bytes, 256, 1 << 20);
  if (e.halt_after_barrier < -1) e.halt_after_barrier = -1;
  e.torn_tail_bytes = std::clamp<int64_t>(e.torn_tail_bytes, 0, 1 << 16);
  e.jobs_a = std::clamp<int64_t>(e.jobs_a, 1, 16);
  e.jobs_b = std::clamp<int64_t>(e.jobs_b, 1, 16);
  e.wire_trials = std::clamp<int64_t>(e.wire_trials, 0, 16);
  e.shards = std::clamp<int64_t>(e.shards, 0, 8);
  if (e.shards < 2) e.shard_kill = false;
  return e;
}

std::vector<Violation> RunEpisode(const Episode& episode,
                                  const std::string& scratch_dir) {
  const Episode e = NormalizeEpisode(episode);
  std::vector<Violation> violations;
  util::EnsureDirectory(scratch_dir);

  // --- jobs bit-identity: the core determinism contract ------------------
  RunConfig base;
  base.jobs = e.jobs_a;
  const RunArtifacts cold = RunReplay(e, base);

  RunConfig wide = base;
  wide.jobs = e.jobs_b;
  if (e.mutation == "seed-drift") wide.seed_bump = 1;
  const RunArtifacts cold_wide = RunReplay(e, wide);
  CheckBitIdentity("jobs-bit-identity",
                   "jobs=" + std::to_string(e.jobs_a) + " vs jobs=" +
                       std::to_string(e.jobs_b),
                   cold, cold_wide, &violations);

  CheckCacheExport(e, cold, &violations);

  // --- cache ablation: capacity 0 must equal no cache at all -------------
  if (e.cache_enabled || e.mutation == "cache-leak") {
    RunConfig off = base;
    off.cache_mode = RunConfig::CacheMode::kOff;
    RunConfig zero = base;
    zero.cache_mode = e.mutation == "cache-leak"
                          ? RunConfig::CacheMode::kOneSlot
                          : RunConfig::CacheMode::kZeroCapacity;
    CheckTableIdentity("cache-capacity0-identity", "off vs capacity=0",
                       RunReplay(e, off), RunReplay(e, zero), &violations);
  }

  // --- durability chaos --------------------------------------------------
  if (e.persist_enabled) {
    // A complete persisted generation: durability must be transparent.
    const std::string complete_dir = FreshDir(scratch_dir + "/complete");
    RunConfig persisted = base;
    persisted.persist_dir = complete_dir;
    const RunArtifacts full = RunReplay(e, persisted);
    CheckBitIdentity("persist-transparency", "cold vs persisted", cold, full,
                     &violations);
    if (!full.persist_status.ok()) {
      violations.push_back({"persist-transparency",
                            "persist status: " +
                                full.persist_status.ToString()});
    }

    // Crash image: halt persisting mid-run, optionally tear the WAL tail,
    // then resume at the other worker count.
    const std::string crash_dir = FreshDir(scratch_dir + "/crash");
    RunConfig crash = base;
    crash.persist_dir = crash_dir;
    crash.halt_after_barrier = e.halt_after_barrier;
    const RunArtifacts halted = RunReplay(e, crash);
    CheckBitIdentity("persist-transparency", "cold vs halted", cold, halted,
                     &violations);
    CheckWalFrontier(crash_dir, &violations);
    if (e.torn_tail_bytes > 0) {
      TearWalTail(crash_dir, e.torn_tail_bytes, &violations);
    }
    RunConfig resume = base;
    resume.jobs = e.jobs_b;
    resume.persist_dir = crash_dir;
    resume.resume = true;
    CheckResume(e, cold, RunReplay(e, resume), &violations);

    // Warm restart off the completed generation's snapshot: two warm runs
    // at different worker counts must agree byte-for-byte.
    persist::SnapshotData snapshot;
    const util::Status loaded =
        persist::LoadLatestSnapshot(complete_dir, &snapshot);
    if (!loaded.ok()) {
      violations.push_back({"warm-restart-determinism",
                            "no loadable snapshot after a complete run: " +
                                loaded.ToString()});
    } else {
      RunConfig warm_a = base;
      warm_a.warm = &snapshot.cache_entries;
      RunConfig warm_b = warm_a;
      warm_b.jobs = e.jobs_b;
      CheckBitIdentity("warm-restart-determinism",
                       "warm jobs=" + std::to_string(e.jobs_a) +
                           " vs jobs=" + std::to_string(e.jobs_b),
                       RunReplay(e, warm_a), RunReplay(e, warm_b),
                       &violations);
    }
  }

  // --- wire + verify + shard families -----------------------------------
  CheckWireTrials(e, &violations);
  if (e.check_verify) CheckVerifyPreservation(e, &violations);
  CheckShardScatter(e, &violations);

  return violations;
}

SweepResult SweepSeeds(uint64_t master_seed, int64_t count,
                       const std::string& scratch_dir) {
  SweepResult result;
  for (int64_t i = 0; i < count; ++i) {
    const Episode episode =
        DeriveEpisode(util::SplitSeed(master_seed, static_cast<uint64_t>(i)));
    std::vector<Violation> violations =
        RunEpisode(episode, scratch_dir + "/ep" + std::to_string(i));
    ++result.episodes_run;
    if (!violations.empty()) {
      result.failures.push_back({i, episode, std::move(violations)});
    }
  }
  return result;
}

Episode ShrinkEpisode(const Episode& failing, const std::string& scratch_dir,
                      std::vector<Violation>* violations) {
  Episode current = NormalizeEpisode(failing);
  const std::string shrink_dir = scratch_dir + "/shrink";
  auto still_fails = [&](const Episode& candidate,
                         std::vector<Violation>* out) {
    std::vector<Violation> v = RunEpisode(candidate, shrink_dir);
    const bool fails = !v.empty();
    if (fails && out != nullptr) *out = std::move(v);
    return fails;
  };

  // Dimension-disabling steps, cheapest first; each is kept only when the
  // shrunk episode still violates an invariant.
  const std::vector<std::function<void(Episode*)>> steps = {
      [](Episode* e) {
        e->wire_trials = 0;
        e->wire_corruption = WireCorruption::kNone;
      },
      [](Episode* e) { e->check_verify = false; },
      [](Episode* e) { e->shard_kill = false; },
      [](Episode* e) { e->shards = 0; },
      [](Episode* e) { e->torn_tail_bytes = 0; },
      [](Episode* e) { e->halt_after_barrier = -1; },
      [](Episode* e) { e->persist_enabled = false; },
      [](Episode* e) { e->transitivity = false; },
      [](Episode* e) { e->cache_capacity = -1; },
      [](Episode* e) { e->cache_enabled = false; },
      [](Episode* e) {
        e->spammer_fraction = 0.0;
        e->adversary_fraction = 0.0;
        e->lazy_fraction = 0.0;
        e->duplicate_fraction = 0.0;
        e->no_show_fraction = 0.0;
      },
      [](Episode* e) { e->abandon_probability = 0.0; },
      [](Episode* e) { e->max_queue = -1; },
      [](Episode* e) { e->algorithms = 1; },
      [](Episode* e) { e->jobs_b = 2; },
  };
  std::vector<Violation> last;
  for (const auto& step : steps) {
    Episode candidate = current;
    step(&candidate);
    candidate = NormalizeEpisode(candidate);
    if (ToSpec(candidate) == ToSpec(current)) continue;  // no-op step
    if (still_fails(candidate, &last)) current = candidate;
  }
  // Workload halving, each axis repeated while the failure survives.
  while (current.queries > 1) {
    Episode candidate = current;
    candidate.queries /= 2;
    candidate = NormalizeEpisode(candidate);
    if (!still_fails(candidate, &last)) break;
    current = candidate;
  }
  while (current.items > 4) {
    Episode candidate = current;
    candidate.items /= 2;
    candidate = NormalizeEpisode(candidate);  // re-clamps k below items
    if (!still_fails(candidate, &last)) break;
    current = candidate;
  }
  if (violations != nullptr) {
    if (last.empty()) still_fails(current, &last);
    *violations = std::move(last);
  }
  return current;
}

std::string ReplayCommand(const Episode& episode) {
  return "crowdtopk_sim --episode '" + ToSpec(episode) + "'";
}

}  // namespace crowdtopk::sim
