#include "sim/loopback.h"

#include <algorithm>
#include <utility>

#include "util/random.h"

namespace crowdtopk::sim {

namespace {

// Seeded, printable-ish string: keeps failure dumps readable.
std::string SeededString(util::Rng* rng, int64_t min_len, int64_t max_len) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789_-";
  int64_t len = rng->UniformInt(min_len, max_len);
  std::string out;
  out.reserve(static_cast<size_t>(len));
  for (int64_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng->UniformInt(0, 37)]);
  }
  return out;
}

net::NetMessage SampleMessage(net::MessageType type, util::Rng* rng) {
  net::NetMessage m;
  m.type = type;
  switch (type) {
    case net::MessageType::kHello:
      // Keep the canonical magic/version: a corrupted handshake is the
      // server's job to reject, not the codec's job to round-trip.
      break;
    case net::MessageType::kHelloAck:
      break;
    case net::MessageType::kSubmitQuery:
      m.submit.dataset = SeededString(rng, 3, 12);
      m.submit.k = rng->UniformInt(1, 50);
      m.submit.algo = SeededString(rng, 3, 10);
      m.submit.alpha = rng->Uniform(0.001, 0.2);
      m.submit.budget = rng->Bernoulli(0.5) ? rng->UniformInt(1, 1000) : 0;
      break;
    case net::MessageType::kSubmitAck:
      m.submit_ack.query_id = rng->UniformInt(0, 1 << 20);
      break;
    case net::MessageType::kStatusRequest:
      m.status_request.query_id = rng->UniformInt(0, 1 << 20);
      break;
    case net::MessageType::kStatusReply:
      m.status_reply.query_id = rng->UniformInt(0, 1 << 20);
      m.status_reply.state =
          static_cast<net::QueryState>(rng->UniformInt(0, 3));
      break;
    case net::MessageType::kResult: {
      m.result.query_id = rng->UniformInt(0, 1 << 20);
      m.result.status_code = static_cast<uint32_t>(rng->UniformInt(0, 7));
      m.result.reject_reason = static_cast<uint8_t>(rng->UniformInt(0, 3));
      if (m.result.status_code != 0) m.result.message = SeededString(rng, 0, 20);
      int64_t n = rng->UniformInt(0, 16);
      for (int64_t i = 0; i < n; ++i) {
        m.result.items.push_back(
            static_cast<int32_t>(rng->UniformInt(0, 1000)));
      }
      m.result.precision_at_k = rng->Uniform();
      m.result.total_microtasks = rng->UniformInt(0, 100000);
      m.result.rounds = rng->UniformInt(0, 500);
      m.result.latency_seconds = rng->Uniform(0.0, 1e4);
      m.result.queue_wait_seconds = rng->Uniform(0.0, 1e3);
      break;
    }
    case net::MessageType::kCancel:
      m.cancel.query_id = rng->UniformInt(0, 1 << 20);
      break;
    case net::MessageType::kCancelAck:
      m.cancel_ack.query_id = rng->UniformInt(0, 1 << 20);
      m.cancel_ack.cancelled = rng->Bernoulli(0.5);
      break;
    case net::MessageType::kStatsRequest:
      break;
    case net::MessageType::kStatsReply:
      m.stats_reply.draining = rng->Bernoulli(0.5);
      m.stats_reply.active_connections = rng->UniformInt(0, 64);
      m.stats_reply.accepted_connections = rng->UniformInt(0, 10000);
      m.stats_reply.rejected_connections = rng->UniformInt(0, 100);
      m.stats_reply.idle_closed = rng->UniformInt(0, 100);
      m.stats_reply.frames_in = rng->UniformInt(0, 1 << 20);
      m.stats_reply.frames_out = rng->UniformInt(0, 1 << 20);
      m.stats_reply.bytes_in = rng->UniformInt(0, 1 << 30);
      m.stats_reply.bytes_out = rng->UniformInt(0, 1 << 30);
      m.stats_reply.crc_errors = rng->UniformInt(0, 10);
      m.stats_reply.malformed_frames = rng->UniformInt(0, 10);
      m.stats_reply.version_mismatches = rng->UniformInt(0, 10);
      m.stats_reply.queries_submitted = rng->UniformInt(0, 100000);
      m.stats_reply.queries_completed = rng->UniformInt(0, 100000);
      m.stats_reply.queries_rejected = rng->UniformInt(0, 1000);
      m.stats_reply.queries_cancelled = rng->UniformInt(0, 1000);
      m.stats_reply.batches = rng->UniformInt(0, 10000);
      break;
    case net::MessageType::kError:
      m.error.code = static_cast<net::ErrorCode>(rng->UniformInt(1, 7));
      m.error.query_id = rng->Bernoulli(0.5) ? rng->UniformInt(0, 1 << 20) : -1;
      m.error.message = SeededString(rng, 0, 24);
      break;
  }
  return m;
}

}  // namespace

std::vector<net::NetMessage> SampleMessages(uint64_t seed, int64_t count) {
  static constexpr net::MessageType kAllTypes[] = {
      net::MessageType::kHello,         net::MessageType::kHelloAck,
      net::MessageType::kSubmitQuery,   net::MessageType::kSubmitAck,
      net::MessageType::kStatusRequest, net::MessageType::kStatusReply,
      net::MessageType::kResult,        net::MessageType::kCancel,
      net::MessageType::kCancelAck,     net::MessageType::kStatsRequest,
      net::MessageType::kStatsReply,    net::MessageType::kError,
  };
  constexpr int64_t kNumTypes =
      static_cast<int64_t>(sizeof(kAllTypes) / sizeof(kAllTypes[0]));
  std::vector<net::NetMessage> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    // Per-message child stream: message i's content does not depend on how
    // many random draws message i-1 consumed.
    util::Rng rng(util::SplitSeed(seed, static_cast<uint64_t>(i)));
    out.push_back(SampleMessage(kAllTypes[i % kNumTypes], &rng));
  }
  return out;
}

FramedStream FrameStream(const std::vector<net::NetMessage>& messages) {
  FramedStream stream;
  stream.frame_offsets.reserve(messages.size());
  stream.payloads.reserve(messages.size());
  for (const net::NetMessage& m : messages) {
    stream.frame_offsets.push_back(stream.bytes.size());
    std::string payload = net::EncodeMessage(m);
    stream.bytes += net::FramePayload(payload);
    stream.payloads.push_back(std::move(payload));
  }
  return stream;
}

Delivery DeliverByteStream(const std::string& bytes, uint64_t split_seed) {
  util::Rng rng(split_seed);
  Delivery delivery;
  net::FrameReader reader;
  size_t pos = 0;
  bool done = false;
  while (pos < bytes.size() && !done) {
    size_t chunk = static_cast<size_t>(rng.UniformInt(1, 16));
    chunk = std::min(chunk, bytes.size() - pos);
    delivery.chunks.push_back(chunk);
    reader.Append(bytes.data() + pos, chunk);
    pos += chunk;
    for (;;) {
      std::string payload;
      net::FrameReader::Next next = reader.Pop(&payload);
      if (next == net::FrameReader::Next::kFrame) {
        delivery.payloads.push_back(std::move(payload));
        continue;
      }
      if (next == net::FrameReader::Next::kCorrupt) {
        delivery.corrupt = true;
        done = true;  // a real connection closes here
      } else if (next == net::FrameReader::Next::kOversized) {
        delivery.oversized = true;
        done = true;
      }
      break;  // kNeedMore: wait for the next chunk
    }
  }
  return delivery;
}

size_t FlipBit(FramedStream* stream, size_t frame_index, uint64_t seed) {
  frame_index = std::min(frame_index, stream->frame_offsets.size() - 1);
  size_t frame_start = stream->frame_offsets[frame_index];
  // CRC-protected region: the 4 CRC bytes plus the payload. Flipping the
  // length prefix instead would be a *different* failure (desync or
  // oversized), so stay past byte 4 of the header.
  size_t region_start = frame_start + 4;
  size_t frame_end = frame_index + 1 < stream->frame_offsets.size()
                         ? stream->frame_offsets[frame_index + 1]
                         : stream->bytes.size();
  util::Rng rng(seed);
  size_t offset = region_start + static_cast<size_t>(rng.UniformInt(
                                     0, static_cast<int64_t>(
                                            frame_end - region_start - 1)));
  int bit = static_cast<int>(rng.UniformInt(0, 7));
  stream->bytes[offset] = static_cast<char>(
      static_cast<unsigned char>(stream->bytes[offset]) ^ (1u << bit));
  return offset;
}

void TruncateTail(FramedStream* stream, size_t bytes) {
  if (stream->bytes.empty()) return;
  size_t last_frame = stream->frame_offsets.back();
  // Keep at least the previous frames intact but guarantee the final frame
  // loses at least one byte.
  size_t max_cut = stream->bytes.size() - last_frame;
  size_t cut = std::clamp<size_t>(bytes, 1, max_cut);
  stream->bytes.resize(stream->bytes.size() - cut);
  stream->payloads.pop_back();  // the final payload can no longer arrive
}

void InflateLength(FramedStream* stream, size_t frame_index,
                   uint32_t max_payload) {
  frame_index = std::min(frame_index, stream->frame_offsets.size() - 1);
  size_t frame_start = stream->frame_offsets[frame_index];
  uint32_t bogus = max_payload + 1;
  for (int i = 0; i < 4; ++i) {  // little-endian, same as util::Encoder
    stream->bytes[frame_start + static_cast<size_t>(i)] =
        static_cast<char>((bogus >> (8 * i)) & 0xff);
  }
}

}  // namespace crowdtopk::sim
