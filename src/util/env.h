// Environment-variable options for the benchmark harnesses.
//
// Benches run with no command-line arguments (so `for b in build/bench/*; do
// $b; done` works); knobs such as the number of repetitions are read from
// CROWDTOPK_* environment variables with sensible defaults.

#ifndef CROWDTOPK_UTIL_ENV_H_
#define CROWDTOPK_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace crowdtopk::util {

// Reads an integer env var. Returns `fallback` if unset, empty, or not a
// valid integer; a value with trailing garbage ("4x") is rejected as a
// whole (trailing whitespace is fine) and warns once per variable name on
// stderr, so typos in knobs like CROWDTOPK_JOBS=4x do not silently parse
// as 4.
int64_t GetEnvInt64(const std::string& name, int64_t fallback);

// Reads a double env var; same strict-parse + warn-once contract as
// GetEnvInt64.
double GetEnvDouble(const std::string& name, double fallback);

// Reads a string env var; returns `fallback` if unset.
std::string GetEnvString(const std::string& name, const std::string& fallback);

// Reads a boolean env var. Unset/empty returns `fallback`; "0", "false",
// "off", "no" (case-insensitive) are false; everything else is true.
bool GetEnvBool(const std::string& name, bool fallback);

// Number of Monte-Carlo repetitions per experiment point. The paper averages
// over 100 runs; the default here is smaller so every bench finishes quickly
// on a single core. Override with CROWDTOPK_RUNS.
int64_t BenchRuns(int64_t fallback = 5);

// Master seed for benches; override with CROWDTOPK_SEED.
uint64_t BenchSeed(uint64_t fallback = 20170514);  // SIGMOD'17 opening day.

// Worker threads for the parallel experiment engine (exec/run_engine.h).
// CROWDTOPK_JOBS; 1 runs everything inline on the calling thread (the
// legacy serial path), 0/unset means hardware concurrency. Results are
// bit-identical for every value (per-run SplitSeed streams + canonical-
// order reduction); the knob only changes wall-clock time.
int64_t BenchJobs();

// JSONL run-registry path (CROWDTOPK_REGISTRY). When set, every completed
// (experiment, point, run) record is appended there and already-recorded
// runs are skipped on the next invocation, so an interrupted sweep resumes
// where it stopped. Empty (the default) disables the registry.
std::string RegistryPath();

// CROWDTOPK_PROGRESS=1 makes the engine report runs/points completed on
// stderr while a sweep is executing.
bool ProgressEnabled();

// CROWDTOPK_TRACE=1 makes the bench harness attach a telemetry recorder to
// every traced run and dump machine-readable traces (JSONL + per-phase CSV)
// next to the bench output. See docs/OBSERVABILITY.md.
bool TraceEnabled();

// Directory trace files are written to (CROWDTOPK_TRACE_DIR, default ".").
std::string TraceDir();

// By default only the first run of every experiment point is traced, to
// bound file counts; CROWDTOPK_TRACE_ALL_RUNS=1 traces every repetition.
bool TraceAllRuns();

// Short name of the running binary (/proc/self/comm), used to label trace
// files; "bench" when unavailable.
std::string ProgramName();

// CROWDTOPK_CACHE=1 enables the cross-query judgment cache (src/cache) in
// tools and benches that support it. Off by default: the cache trades
// statistical independence between queries for cost, so reuse is opt-in.
bool CacheEnabled();

// Maximum distinct pairs the judgment cache stores (CROWDTOPK_CACHE_CAPACITY,
// default -1 = unbounded; 0 stores nothing, making an enabled cache
// byte-identical to a disabled one).
int64_t CacheCapacity();

// CROWDTOPK_CACHE_TRANSITIVITY=1 additionally serves single-hop transitively
// composed verdicts (see src/cache/judgment_cache.h for the union-bound
// confidence composition rule). Off by default.
bool CacheTransitivity();

// ----- durable-state knobs (src/persist, docs/PERSISTENCE.md) -----------

// Directory snapshots and the write-ahead log are kept in
// (CROWDTOPK_PERSIST_DIR). Empty (the default) disables persistence.
std::string PersistDir();

// Quiescence barriers between snapshots (CROWDTOPK_SNAPSHOT_EVERY, default
// 8). <= 0 writes only the final completion snapshot.
int64_t SnapshotEvery();

// CROWDTOPK_WAL_FSYNC (default 1) forces every barrier's WAL append to
// stable storage with fdatasync before the barrier is acknowledged; =0
// trades durability of the last few barriers for speed.
bool WalFsync();

// WAL segment rotation threshold in bytes (CROWDTOPK_WAL_SEGMENT_BYTES,
// default 1 MiB). Mostly a test knob: tiny values force multi-segment logs.
int64_t WalSegmentBytes();

// Crash-injection point (CROWDTOPK_PERSIST_KILL_BARRIER, default -1 = off):
// the serving layer calls _Exit(137) immediately after making barrier N
// durable, simulating a hard kill for the recovery CI jobs.
int64_t PersistKillBarrier();

// ----- network front-end knobs (src/net, docs/NETWORK.md) ----------------

// TCP port the server binds on 127.0.0.1 (CROWDTOPK_NET_PORT, default 0 =
// kernel-assigned ephemeral port, so concurrent test runs never collide on
// a fixed port or a TIME_WAIT leftover). The CLI prints the bound port
// either way, which is what the smoke scripts parse; clients (the loadgen)
// must be pointed at that printed port explicitly.
int64_t NetPort();

// Connection bound (CROWDTOPK_NET_MAX_CONNS, default 64): connections past
// it are greeted with an UNAVAILABLE error frame and closed.
int64_t NetMaxConns();

// Idle/read timeout in milliseconds (CROWDTOPK_NET_IDLE_TIMEOUT_MS,
// default 60000): a connection with no traffic and no in-flight queries
// for this long is closed. <= 0 disables the timeout.
int64_t NetIdleTimeoutMs();

// Graceful-drain budget in milliseconds (CROWDTOPK_NET_DRAIN_TIMEOUT_MS,
// default 30000): on SIGTERM the server finishes in-flight queries and
// flushes replies for at most this long before exiting anyway.
int64_t NetDrainTimeoutMs();

// ----- sharded scale-out knobs (src/shard, docs/SHARDING.md) --------------

// Engine shards behind the router (CROWDTOPK_SHARDS, default 1; values < 1
// are clamped to 1). For a fixed master seed the merged per-query result
// table is byte-identical for every shard count.
int64_t ShardCount();

// Placement policy (CROWDTOPK_SHARD_POLICY): "rendezvous" (default,
// highest-random-weight hashing — stable under shard add/remove) or
// "modulo". Unknown values warn once on stderr and fall back, same
// contract as the numeric knobs.
std::string ShardPolicy();

// CROWDTOPK_SHARD_CACHE_SYNC=1 turns on the barrier-aligned cross-shard
// judgment-cache exchange (only meaningful with CROWDTOPK_CACHE=1).
bool ShardCacheSync();

// Bounded failover: how many times one query may be re-dispatched to a
// surviving shard after its shard died (CROWDTOPK_SHARD_REDISPATCH,
// default 2) before it fails with kResourceExhausted.
int64_t ShardRedispatch();

// Deterministic failure injection for the failover smoke/chaos paths
// (CROWDTOPK_SHARD_FAIL, default -1 = off): the shard with this id dies
// while executing its CROWDTOPK_SHARD_FAIL_AFTER-th batch (default 1),
// losing the sub-batch, and stays dead for the rest of the run.
int64_t ShardFail();
int64_t ShardFailAfterBatches();

namespace internal {
// Total strict-parse warnings emitted so far by GetEnvInt64/GetEnvDouble.
// Exposed so tests can assert the warn-once-per-variable contract without
// scraping stderr.
int64_t EnvWarningCountForTest();

// Clears the once-per-variable registry (not the counter above), so the
// next bad parse of any variable warns again. Tests that assert "warns
// exactly once" call this first; without it their outcome would depend on
// which earlier test happened to touch the same variable.
void ResetEnvWarningsForTest();
}  // namespace internal

}  // namespace crowdtopk::util

#endif  // CROWDTOPK_UTIL_ENV_H_
