// Environment-variable options for the benchmark harnesses.
//
// Benches run with no command-line arguments (so `for b in build/bench/*; do
// $b; done` works); knobs such as the number of repetitions are read from
// CROWDTOPK_* environment variables with sensible defaults.

#ifndef CROWDTOPK_UTIL_ENV_H_
#define CROWDTOPK_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace crowdtopk::util {

// Reads an integer env var; returns `fallback` if unset or unparsable.
int64_t GetEnvInt64(const std::string& name, int64_t fallback);

// Reads a double env var; returns `fallback` if unset or unparsable.
double GetEnvDouble(const std::string& name, double fallback);

// Reads a string env var; returns `fallback` if unset.
std::string GetEnvString(const std::string& name, const std::string& fallback);

// Number of Monte-Carlo repetitions per experiment point. The paper averages
// over 100 runs; the default here is smaller so every bench finishes quickly
// on a single core. Override with CROWDTOPK_RUNS.
int64_t BenchRuns(int64_t fallback = 5);

// Master seed for benches; override with CROWDTOPK_SEED.
uint64_t BenchSeed(uint64_t fallback = 20170514);  // SIGMOD'17 opening day.

}  // namespace crowdtopk::util

#endif  // CROWDTOPK_UTIL_ENV_H_
