// Error handling without exceptions: Status and StatusOr<T>.
//
// Recoverable failures (invalid arguments, exhausted budgets where the caller
// must react) are reported through Status / StatusOr<T>. This mirrors the
// absl/Arrow convention mandated by the project style: the public API never
// throws.

#ifndef CROWDTOPK_UTIL_STATUS_H_
#define CROWDTOPK_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace crowdtopk::util {

// Coarse error taxonomy; enough for a library of this size.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kNotFound,
  // Transient refusal: the server is draining or at capacity; retrying
  // later (or elsewhere) may succeed. Appended last so the numeric codes
  // persisted in WAL records stay stable.
  kUnavailable,
};

// Returns a human-readable name for `code` ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error result. Cheap to copy in the success case.
class Status {
 public:
  // Success.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value or an error. The value is only accessible when ok().
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, mirroring absl::StatusOr: lets functions
  // `return value;` and `return Status::...;` interchangeably.
  StatusOr(T value) : status_(), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    CROWDTOPK_CHECK(!status_.ok());  // use the value constructor for success
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CROWDTOPK_CHECK(ok());
    return *value_;
  }
  T& value() & {
    CROWDTOPK_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    CROWDTOPK_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace crowdtopk::util

// Propagates a non-OK Status to the caller.
#define CROWDTOPK_RETURN_IF_ERROR(expr)                  \
  do {                                                   \
    ::crowdtopk::util::Status status_macro_ = (expr);    \
    if (!status_macro_.ok()) return status_macro_;       \
  } while (false)

#endif  // CROWDTOPK_UTIL_STATUS_H_
