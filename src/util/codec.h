// Byte-level codec shared by the durable-state format (src/persist) and
// the network wire protocol (src/net).
//
// All integers are little-endian fixed width; doubles are stored as their
// IEEE-754 bit patterns, so a decoded value is bit-exact. The Decoder is
// bounds-checked: every getter returns false on overrun and the caller
// treats that as corruption (a torn WAL tail, a malformed network frame).

#ifndef CROWDTOPK_UTIL_CODEC_H_
#define CROWDTOPK_UTIL_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace crowdtopk::util {

class Encoder {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { PutBytes(&v, sizeof(v)); }
  void PutU32(uint32_t v) { PutBytes(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutBytes(&v, sizeof(v)); }
  void PutI32(int32_t v) { PutBytes(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutBytes(&v, sizeof(v)); }
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  void PutString(const std::string& v) {
    PutU32(static_cast<uint32_t>(v.size()));
    buffer_.append(v);
  }

  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  void PutBytes(const void* data, size_t size) {
    // Little-endian hosts only (the toolchains this repo targets); memcpy
    // keeps the accessors free of alignment traps.
    buffer_.append(static_cast<const char*>(data), size);
  }
  std::string buffer_;
};

// Bounds-checked reader; every getter returns false on overrun and the
// caller treats that as corruption.
class Decoder {
 public:
  Decoder(const char* data, size_t size) : data_(data), size_(size) {}
  explicit Decoder(const std::string& data)
      : Decoder(data.data(), data.size()) {}

  bool GetU8(uint8_t* v) { return GetBytes(v, sizeof(*v)); }
  bool GetU16(uint16_t* v) { return GetBytes(v, sizeof(*v)); }
  bool GetU32(uint32_t* v) { return GetBytes(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return GetBytes(v, sizeof(*v)); }
  bool GetI32(int32_t* v) { return GetBytes(v, sizeof(*v)); }
  bool GetI64(int64_t* v) { return GetBytes(v, sizeof(*v)); }
  bool GetDouble(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool GetString(std::string* v) {
    uint32_t size;
    if (!GetU32(&size) || size_ - offset_ < size) return false;
    v->assign(data_ + offset_, size);
    offset_ += size;
    return true;
  }

  size_t remaining() const { return size_ - offset_; }

 private:
  bool GetBytes(void* out, size_t size) {
    if (size_ - offset_ < size) return false;
    std::memcpy(out, data_ + offset_, size);
    offset_ += size;
    return true;
  }
  const char* data_;
  size_t size_;
  size_t offset_ = 0;
};

}  // namespace crowdtopk::util

#endif  // CROWDTOPK_UTIL_CODEC_H_
