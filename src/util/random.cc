#include "util/random.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace crowdtopk::util {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t SplitSeed(uint64_t seed, uint64_t stream) {
  // Two finalizer applications: the first decorrelates the master seed, the
  // second mixes in the stream index scaled by the golden-ratio gamma (the
  // same increment splitmix64 itself uses), so that consecutive stream
  // indices land far apart in the seed space.
  uint64_t state = seed;
  uint64_t mixed = SplitMix64(&state);
  state = mixed ^ ((stream + 1) * 0x9e3779b97f4a7c15ULL);
  return SplitMix64(&state);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // All-zero state would be absorbing; splitmix64 never yields four zero
  // outputs from any seed, but be defensive anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  CROWDTOPK_DCHECK(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t n) {
  CROWDTOPK_CHECK_GT(n, 0);
  const uint64_t un = static_cast<uint64_t>(n);
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = (~uint64_t{0}) - (~uint64_t{0}) % un;
  uint64_t x;
  do {
    x = engine_();
  } while (x >= limit);
  return static_cast<int64_t>(x % un);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CROWDTOPK_CHECK(lo <= hi);
  return lo + UniformInt(hi - lo + 1);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] to keep log() finite.
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  CROWDTOPK_DCHECK(stddev >= 0.0);
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int64_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    CROWDTOPK_DCHECK(w >= 0.0);
    total += w;
  }
  CROWDTOPK_CHECK_GT(total, 0.0);
  double u = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return static_cast<int64_t>(i);
  }
  // Floating-point slack: return the last positive-weight index.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return static_cast<int64_t>(i);
  }
  return 0;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace crowdtopk::util
