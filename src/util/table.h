// Console table / CSV emission used by the benchmark harnesses.
//
// The harnesses print paper-style tables (aligned columns on stdout) and can
// additionally dump CSV for plotting. TablePrinter collects rows as strings
// and right-pads columns on Print().

#ifndef CROWDTOPK_UTIL_TABLE_H_
#define CROWDTOPK_UTIL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace crowdtopk::util {

class TablePrinter {
 public:
  // `title` is printed above the table; may be empty.
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  // Sets the header row. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  // Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  // Renders the aligned table to `out` (defaults to stdout).
  void Print(std::FILE* out = stdout) const;

  // Writes the table as CSV to `path`. Returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` significant decimal places, trimming wide
// scientific noise (used for table cells).
std::string FormatDouble(double value, int digits = 1);

}  // namespace crowdtopk::util

#endif  // CROWDTOPK_UTIL_TABLE_H_
