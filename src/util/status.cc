#include "util/status.h"

namespace crowdtopk::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace crowdtopk::util
