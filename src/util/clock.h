// Injectable time source.
//
// The serving replay, scheduler, and persistence layers run entirely on
// *simulated* seconds and never consult the wall clock; the network layer
// (src/net) is the one place real time leaks in — idle timeouts, drain
// deadlines, client retry backoff. Threading a Clock through those call
// sites lets the deterministic simulation harness (src/sim,
// docs/SIMULATION.md) replace wall time with a manually advanced SimClock,
// so timeout behaviour becomes a pure function of the test script instead
// of machine load.
//
// Null clock pointers in options structs mean "wall clock": production
// callers never construct one.

#ifndef CROWDTOPK_UTIL_CLOCK_H_
#define CROWDTOPK_UTIL_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace crowdtopk::util {

class Clock {
 public:
  virtual ~Clock() = default;

  // Monotonic milliseconds. Only differences are meaningful; the epoch is
  // unspecified (steady_clock for the wall implementation, 0 for a fresh
  // SimClock).
  virtual int64_t NowMillis() const = 0;

  // Blocks the caller for `ms` of *this clock's* time. The wall clock
  // really sleeps; a SimClock advances itself instead, so seeded retry
  // backoff costs no wall time under simulation.
  virtual void SleepMillis(int64_t ms) const = 0;
};

// The production clock (std::chrono::steady_clock). Stateless; use the
// shared instance.
class WallClock : public Clock {
 public:
  int64_t NowMillis() const override;
  void SleepMillis(int64_t ms) const override;

  static const WallClock* Get();
};

// Manually advanced clock for deterministic tests. Starts at 0; thread-safe
// (the net event loop reads it from the network thread while a test
// advances it from another).
class SimClock : public Clock {
 public:
  SimClock() = default;
  explicit SimClock(int64_t start_ms) : now_ms_(start_ms) {}

  int64_t NowMillis() const override {
    return now_ms_.load(std::memory_order_acquire);
  }
  // "Sleeping" on simulated time is advancing it.
  void SleepMillis(int64_t ms) const override { AdvanceMillis(ms); }

  void AdvanceMillis(int64_t ms) const {
    now_ms_.fetch_add(ms, std::memory_order_acq_rel);
  }
  void SetMillis(int64_t ms) const {
    now_ms_.store(ms, std::memory_order_release);
  }

 private:
  mutable std::atomic<int64_t> now_ms_{0};
};

}  // namespace crowdtopk::util

#endif  // CROWDTOPK_UTIL_CLOCK_H_
