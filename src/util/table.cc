#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace crowdtopk::util {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  CROWDTOPK_CHECK(rows_.empty());
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  CROWDTOPK_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!title_.empty()) std::fprintf(out, "=== %s ===\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                   c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(header_);
  size_t total = header_.size() > 0 ? 2 * (header_.size() - 1) : 0;
  for (size_t w : widths) total += w;
  std::string rule(total, '-');
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
  std::fflush(out);
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (char ch : cell) {
    if (ch == '"') escaped += '"';
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}
}  // namespace

bool TablePrinter::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(f, "%s%s", CsvEscape(row[c]).c_str(),
                   c + 1 == row.size() ? "\n" : ",");
    }
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  std::fclose(f);
  return true;
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

}  // namespace crowdtopk::util
