#include "util/file_io.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace crowdtopk::util {
namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::Internal(op + " " + path + ": " + std::strerror(errno));
}

// RAII fd so every early return closes.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

Status WriteAll(int fd, const std::string& data, const std::string& path) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status EnsureDirectory(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  // Create each prefix in turn; EEXIST at any level is fine.
  for (size_t i = 1; i <= path.size(); ++i) {
    if (i != path.size() && path[i] != '/') continue;
    const std::string prefix = path.substr(0, i);
    if (prefix.empty() || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", prefix);
    }
  }
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
  if (!S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument(path + " exists and is not a directory");
  }
  return Status::Ok();
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status ReadFileToString(const std::string& path, std::string* out) {
  out->clear();
  Fd file;
  file.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (file.fd < 0) {
    if (errno == ENOENT) return Status::NotFound(path);
    return Errno("open", path);
  }
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(file.fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read", path);
    }
    if (n == 0) break;
    out->append(buffer, static_cast<size_t>(n));
  }
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  {
    Fd file;
    file.fd = ::open(tmp.c_str(),
                     O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (file.fd < 0) return Errno("open", tmp);
    CROWDTOPK_RETURN_IF_ERROR(WriteAll(file.fd, data, tmp));
    if (::fsync(file.fd) != 0) return Errno("fsync", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) return Errno("rename", path);
  const size_t slash = path.find_last_of('/');
  if (slash != std::string::npos && slash > 0) {
    return SyncDirectory(path.substr(0, slash));
  }
  return Status::Ok();
}

Status AppendToFile(const std::string& path, const std::string& data,
                    bool fsync) {
  Fd file;
  file.fd = ::open(path.c_str(),
                   O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (file.fd < 0) return Errno("open", path);
  CROWDTOPK_RETURN_IF_ERROR(WriteAll(file.fd, data, path));
  if (fsync && ::fdatasync(file.fd) != 0) return Errno("fdatasync", path);
  return Status::Ok();
}

Status SyncFile(const std::string& path) {
  Fd file;
  file.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (file.fd < 0) return Errno("open", path);
  if (::fsync(file.fd) != 0) return Errno("fsync", path);
  return Status::Ok();
}

Status SyncDirectory(const std::string& path) {
  Fd dir;
  dir.fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir.fd < 0) return Errno("open", path);
  if (::fsync(dir.fd) != 0) return Errno("fsync", path);
  return Status::Ok();
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::Ok();
}

Status ListDirectoryFiles(const std::string& dir,
                          std::vector<std::string>* names) {
  names->clear();
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    if (errno == ENOENT) return Status::Ok();
    return Errno("opendir", dir);
  }
  for (;;) {
    errno = 0;
    const struct dirent* entry = ::readdir(handle);
    if (entry == nullptr) break;
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) != 0) continue;
    if (S_ISREG(st.st_mode)) names->push_back(name);
  }
  ::closedir(handle);
  std::sort(names->begin(), names->end());
  return Status::Ok();
}

int64_t FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<int64_t>(st.st_size);
}

}  // namespace crowdtopk::util
