// Small POSIX file helpers for the durable-state subsystem (src/persist).
//
// Everything returns util::Status instead of throwing, per the project
// error-handling convention. The two properties the persistence layer needs
// from this file are (a) *atomic publication* — WriteFileAtomic writes a
// sibling temp file, fsyncs it, and rename(2)s it into place, so readers
// never observe a half-written snapshot — and (b) *explicit durability* —
// SyncFile/SyncDirectory expose fsync so the write-ahead log can force its
// records (and the directory entries naming them) to stable storage before
// acknowledging a barrier.

#ifndef CROWDTOPK_UTIL_FILE_IO_H_
#define CROWDTOPK_UTIL_FILE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace crowdtopk::util {

// Creates `path` (and missing parents) as a directory. Ok if it exists.
Status EnsureDirectory(const std::string& path);

// True when `path` exists (any file type).
bool PathExists(const std::string& path);

// Reads the whole file into `out` (binary).
Status ReadFileToString(const std::string& path, std::string* out);

// Writes `data` to `<path>.tmp`, fsyncs, renames onto `path`, and fsyncs
// the parent directory, so `path` is either the old or the new content —
// never a torn mix.
Status WriteFileAtomic(const std::string& path, const std::string& data);

// Appends `data` to `path` (creating it 0644 if absent). When `fsync` is
// true the data is forced to stable storage before returning.
Status AppendToFile(const std::string& path, const std::string& data,
                    bool fsync);

// fsyncs an existing file / directory (directory sync makes renames and
// creations within it durable).
Status SyncFile(const std::string& path);
Status SyncDirectory(const std::string& path);

// Removes one file; Ok when it does not exist.
Status RemoveFileIfExists(const std::string& path);

// Regular-file names (not paths) directly inside `dir`, sorted ascending.
// Missing directory yields an empty list and Ok.
Status ListDirectoryFiles(const std::string& dir,
                          std::vector<std::string>* names);

// Size of `path` in bytes; -1 when it does not exist.
int64_t FileSize(const std::string& path);

}  // namespace crowdtopk::util

#endif  // CROWDTOPK_UTIL_FILE_IO_H_
