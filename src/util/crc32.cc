#include "util/crc32.h"

namespace crowdtopk::util {
namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xedb88320u : 0u);
      }
      entries[i] = crc;
    }
  }
};

const Crc32Table& Table() {
  static const Crc32Table table;
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const Crc32Table& table = Table();
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = seed ^ 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table.entries[(crc ^ bytes[i]) & 0xffu];
  }
  return crc ^ 0xffffffffu;
}

uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace crowdtopk::util
