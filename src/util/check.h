// Lightweight CHECK macros for invariant enforcement.
//
// CHECK-style macros abort the process with a diagnostic when an invariant
// does not hold. They are for programmer errors (broken invariants), not for
// recoverable conditions -- use util::Status for the latter.

#ifndef CROWDTOPK_UTIL_CHECK_H_
#define CROWDTOPK_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace crowdtopk::util {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, condition);
  std::abort();
}

}  // namespace crowdtopk::util

// Aborts if `condition` is false.
#define CROWDTOPK_CHECK(condition)                                     \
  do {                                                                 \
    if (!(condition)) {                                                \
      ::crowdtopk::util::CheckFailed(__FILE__, __LINE__, #condition);  \
    }                                                                  \
  } while (false)

#define CROWDTOPK_CHECK_EQ(a, b) CROWDTOPK_CHECK((a) == (b))
#define CROWDTOPK_CHECK_NE(a, b) CROWDTOPK_CHECK((a) != (b))
#define CROWDTOPK_CHECK_LT(a, b) CROWDTOPK_CHECK((a) < (b))
#define CROWDTOPK_CHECK_LE(a, b) CROWDTOPK_CHECK((a) <= (b))
#define CROWDTOPK_CHECK_GT(a, b) CROWDTOPK_CHECK((a) > (b))
#define CROWDTOPK_CHECK_GE(a, b) CROWDTOPK_CHECK((a) >= (b))

#ifdef NDEBUG
#define CROWDTOPK_DCHECK(condition) \
  do {                              \
  } while (false)
#else
#define CROWDTOPK_DCHECK(condition) CROWDTOPK_CHECK(condition)
#endif

#endif  // CROWDTOPK_UTIL_CHECK_H_
