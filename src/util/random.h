// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through util::Rng so that every
// experiment is reproducible from a single printed seed, independent of the
// platform's std::*_distribution implementations (which are not specified
// bit-for-bit by the standard).
//
// The core engine is xoshiro256++ seeded through splitmix64, a widely used
// combination with good statistical quality and tiny state.

#ifndef CROWDTOPK_UTIL_RANDOM_H_
#define CROWDTOPK_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace crowdtopk::util {

// splitmix64 step; used for seeding and for hashing seeds together.
uint64_t SplitMix64(uint64_t* state);

// Derives the seed of the `stream`-th child stream of `seed` by hashing both
// words through the splitmix64 finalizer. The result depends only on
// (seed, stream) — never on how many random numbers anyone has drawn — so
// streams derived this way are safe to hand to concurrently executing tasks.
//
// Contrast with the obvious alternative of drawing child seeds sequentially
// from a shared seeder Rng (`seeder.NextUint64()` per child): there the i-th
// child's seed depends on how many seeds were drawn before it, i.e. on
// dispatch order, which is exactly what a parallel scheduler does not
// guarantee. SplitSeed makes run i's randomness a pure function of the
// master seed and the run index.
uint64_t SplitSeed(uint64_t seed, uint64_t stream);

// xoshiro256++ engine. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  result_type operator()();

 private:
  uint64_t s_[4];
};

// Convenience wrapper bundling an engine with the distributions the library
// needs. Deliberately small: only what the simulation uses.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed), seed_(seed) {}

  // Raw 64 random bits.
  uint64_t NextUint64() { return engine_(); }

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0. Uses unbiased rejection.
  int64_t UniformInt(int64_t n);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (deterministic across platforms).
  double Gaussian();

  // Normal with the given mean and standard deviation (stddev >= 0).
  double Gaussian(double mean, double stddev);

  // Bernoulli(p): true with probability p.
  bool Bernoulli(double p);

  // Samples an index in [0, weights.size()) with probability proportional to
  // weights[i]. Requires at least one strictly positive weight.
  int64_t Categorical(const std::vector<double>& weights);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int64_t i = static_cast<int64_t>(v->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  // Derives an independent child generator; useful for giving each run or
  // each dataset its own stream while keeping one master seed. The child's
  // seed is the next draw of this engine, so Fork() is order-dependent:
  // forking after N draws yields a different child than forking after N+1.
  // Fine inside one sequential computation; NOT safe for seeding work that
  // may execute in a different order than it was forked (use Split).
  Rng Fork();

  // Derives the `stream`-th child generator as a pure function of this
  // Rng's construction seed (SplitSeed above): independent of how many
  // values have been drawn, so identical streams are obtained no matter in
  // which order (or on which thread) the children are created.
  Rng Split(uint64_t stream) const { return Rng(SplitSeed(seed_, stream)); }

 private:
  Xoshiro256 engine_;
  uint64_t seed_;  // construction seed; anchors Split() streams
  // Box-Muller produces pairs; cache the spare value.
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace crowdtopk::util

#endif  // CROWDTOPK_UTIL_RANDOM_H_
