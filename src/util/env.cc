#include "util/env.h"

#include <cstdlib>

namespace crowdtopk::util {

int64_t GetEnvInt64(const std::string& name, int64_t fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const std::string& name, double fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value) return fallback;
  return parsed;
}

std::string GetEnvString(const std::string& name,
                         const std::string& fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  return value;
}

int64_t BenchRuns(int64_t fallback) {
  return GetEnvInt64("CROWDTOPK_RUNS", fallback);
}

uint64_t BenchSeed(uint64_t fallback) {
  return static_cast<uint64_t>(
      GetEnvInt64("CROWDTOPK_SEED", static_cast<int64_t>(fallback)));
}

}  // namespace crowdtopk::util
