#include "util/env.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace crowdtopk::util {

int64_t GetEnvInt64(const std::string& name, int64_t fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const std::string& name, double fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value) return fallback;
  return parsed;
}

std::string GetEnvString(const std::string& name,
                         const std::string& fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  return value;
}

bool GetEnvBool(const std::string& name, bool fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  std::string lowered = value;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return lowered != "0" && lowered != "false" && lowered != "off" &&
         lowered != "no";
}

int64_t BenchRuns(int64_t fallback) {
  return GetEnvInt64("CROWDTOPK_RUNS", fallback);
}

uint64_t BenchSeed(uint64_t fallback) {
  return static_cast<uint64_t>(
      GetEnvInt64("CROWDTOPK_SEED", static_cast<int64_t>(fallback)));
}

int64_t BenchJobs() {
  const int64_t jobs = GetEnvInt64("CROWDTOPK_JOBS", 0);
  return jobs < 0 ? 0 : jobs;
}

std::string RegistryPath() { return GetEnvString("CROWDTOPK_REGISTRY", ""); }

bool ProgressEnabled() { return GetEnvBool("CROWDTOPK_PROGRESS", false); }

bool TraceEnabled() { return GetEnvBool("CROWDTOPK_TRACE", false); }

std::string TraceDir() { return GetEnvString("CROWDTOPK_TRACE_DIR", "."); }

bool TraceAllRuns() {
  return GetEnvBool("CROWDTOPK_TRACE_ALL_RUNS", false);
}

std::string ProgramName() {
  std::FILE* comm = std::fopen("/proc/self/comm", "r");
  if (comm == nullptr) return "bench";
  char buffer[64] = {0};
  const size_t read = std::fread(buffer, 1, sizeof(buffer) - 1, comm);
  std::fclose(comm);
  std::string name(buffer, read);
  while (!name.empty() && (name.back() == '\n' || name.back() == '\0')) {
    name.pop_back();
  }
  return name.empty() ? "bench" : name;
}

}  // namespace crowdtopk::util
