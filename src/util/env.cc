#include "util/env.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

namespace crowdtopk::util {

namespace {

std::atomic<int64_t> env_warnings{0};

// Once-per-key registry behind WarnBadValueOnce. Hoisted out of the
// function (and leaked, never destroyed) so tests can reset it between
// cases: without the reset, whether a repeated-parse test observes a
// warning depends on which earlier test touched the same variable first.
std::mutex& WarnedMutex() {
  static std::mutex mutex;
  return mutex;
}

std::set<std::string>& WarnedKeys() {
  static std::set<std::string>* warned = new std::set<std::string>();
  return *warned;
}

// Numeric env values must parse in full: "4x" silently becoming 4 hides
// typos in knobs like CROWDTOPK_JOBS. Rejected values fall back to the
// default and warn on stderr once per variable name per process, so a
// bench looping over configurations does not flood its report.
void WarnBadValueOnce(const std::string& name, const char* value,
                      const char* kind) {
  std::lock_guard<std::mutex> lock(WarnedMutex());
  if (!WarnedKeys().insert(name).second) return;
  env_warnings.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr,
               "crowdtopk: ignoring %s='%s' (not a valid %s); "
               "using the built-in default\n",
               name.c_str(), value, kind);
}

// Returns true if everything from `end` to the end of the string is
// whitespace, i.e. the numeric parse consumed the whole value.
bool OnlyTrailingWhitespace(const char* end) {
  for (; *end != '\0'; ++end) {
    if (!std::isspace(static_cast<unsigned char>(*end))) return false;
  }
  return true;
}

}  // namespace

int64_t GetEnvInt64(const std::string& name, int64_t fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(value, &end, 10);
  // An out-of-range value (strtoll clamps and sets ERANGE) is as much a
  // typo as trailing garbage: reject it instead of silently saturating.
  if (end == value || !OnlyTrailingWhitespace(end) || errno == ERANGE) {
    WarnBadValueOnce(name, value, "integer");
    return fallback;
  }
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const std::string& name, double fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value, &end);
  if (end == value || !OnlyTrailingWhitespace(end) || errno == ERANGE) {
    WarnBadValueOnce(name, value, "number");
    return fallback;
  }
  return parsed;
}

std::string GetEnvString(const std::string& name,
                         const std::string& fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  return value;
}

bool GetEnvBool(const std::string& name, bool fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  std::string lowered = value;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return lowered != "0" && lowered != "false" && lowered != "off" &&
         lowered != "no";
}

int64_t BenchRuns(int64_t fallback) {
  return GetEnvInt64("CROWDTOPK_RUNS", fallback);
}

uint64_t BenchSeed(uint64_t fallback) {
  return static_cast<uint64_t>(
      GetEnvInt64("CROWDTOPK_SEED", static_cast<int64_t>(fallback)));
}

int64_t BenchJobs() {
  const int64_t jobs = GetEnvInt64("CROWDTOPK_JOBS", 0);
  return jobs < 0 ? 0 : jobs;
}

std::string RegistryPath() { return GetEnvString("CROWDTOPK_REGISTRY", ""); }

bool ProgressEnabled() { return GetEnvBool("CROWDTOPK_PROGRESS", false); }

bool TraceEnabled() { return GetEnvBool("CROWDTOPK_TRACE", false); }

std::string TraceDir() { return GetEnvString("CROWDTOPK_TRACE_DIR", "."); }

bool TraceAllRuns() {
  return GetEnvBool("CROWDTOPK_TRACE_ALL_RUNS", false);
}

bool CacheEnabled() { return GetEnvBool("CROWDTOPK_CACHE", false); }

int64_t CacheCapacity() {
  return GetEnvInt64("CROWDTOPK_CACHE_CAPACITY", -1);
}

bool CacheTransitivity() {
  return GetEnvBool("CROWDTOPK_CACHE_TRANSITIVITY", false);
}

std::string PersistDir() { return GetEnvString("CROWDTOPK_PERSIST_DIR", ""); }

int64_t SnapshotEvery() { return GetEnvInt64("CROWDTOPK_SNAPSHOT_EVERY", 8); }

bool WalFsync() { return GetEnvBool("CROWDTOPK_WAL_FSYNC", true); }

int64_t WalSegmentBytes() {
  return GetEnvInt64("CROWDTOPK_WAL_SEGMENT_BYTES", int64_t{1} << 20);
}

int64_t PersistKillBarrier() {
  return GetEnvInt64("CROWDTOPK_PERSIST_KILL_BARRIER", -1);
}

int64_t NetPort() { return GetEnvInt64("CROWDTOPK_NET_PORT", 0); }

int64_t NetMaxConns() { return GetEnvInt64("CROWDTOPK_NET_MAX_CONNS", 64); }

int64_t NetIdleTimeoutMs() {
  return GetEnvInt64("CROWDTOPK_NET_IDLE_TIMEOUT_MS", 60000);
}

int64_t NetDrainTimeoutMs() {
  return GetEnvInt64("CROWDTOPK_NET_DRAIN_TIMEOUT_MS", 30000);
}

int64_t ShardCount() {
  const int64_t shards = GetEnvInt64("CROWDTOPK_SHARDS", 1);
  return shards < 1 ? 1 : shards;
}

std::string ShardPolicy() {
  const char* value = std::getenv("CROWDTOPK_SHARD_POLICY");
  if (value == nullptr || *value == '\0') return "rendezvous";
  const std::string policy = value;
  if (policy != "rendezvous" && policy != "modulo") {
    // Same strict-parse contract as the numeric knobs: a typo falls back
    // to the default and warns once instead of silently routing wrong.
    WarnBadValueOnce("CROWDTOPK_SHARD_POLICY", value, "placement policy");
    return "rendezvous";
  }
  return policy;
}

bool ShardCacheSync() {
  return GetEnvBool("CROWDTOPK_SHARD_CACHE_SYNC", false);
}

int64_t ShardRedispatch() {
  return GetEnvInt64("CROWDTOPK_SHARD_REDISPATCH", 2);
}

int64_t ShardFail() { return GetEnvInt64("CROWDTOPK_SHARD_FAIL", -1); }

int64_t ShardFailAfterBatches() {
  return GetEnvInt64("CROWDTOPK_SHARD_FAIL_AFTER", 1);
}

namespace internal {
int64_t EnvWarningCountForTest() {
  return env_warnings.load(std::memory_order_relaxed);
}

void ResetEnvWarningsForTest() {
  std::lock_guard<std::mutex> lock(WarnedMutex());
  WarnedKeys().clear();
}
}  // namespace internal

std::string ProgramName() {
  std::FILE* comm = std::fopen("/proc/self/comm", "r");
  if (comm == nullptr) return "bench";
  char buffer[64] = {0};
  const size_t read = std::fread(buffer, 1, sizeof(buffer) - 1, comm);
  std::fclose(comm);
  std::string name(buffer, read);
  while (!name.empty() && (name.back() == '\n' || name.back() == '\0')) {
    name.pop_back();
  }
  return name.empty() ? "bench" : name;
}

}  // namespace crowdtopk::util
