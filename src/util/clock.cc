#include "util/clock.h"

#include <chrono>
#include <thread>

namespace crowdtopk::util {

int64_t WallClock::NowMillis() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void WallClock::SleepMillis(int64_t ms) const {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

const WallClock* WallClock::Get() {
  static const WallClock clock;
  return &clock;
}

}  // namespace crowdtopk::util
