// Checksums for the durable-state subsystem (src/persist).
//
// Crc32: the IEEE 802.3 polynomial (the one zlib, gzip, and most WAL
// implementations use), table-driven. Every write-ahead-log record and
// snapshot payload carries one so torn or bit-rotted bytes are detected on
// recovery instead of being replayed as state.
//
// Fnv1a64: a cheap streaming digest used to chain the event history across
// quiescence barriers; the recovery path recomputes it during catch-up and
// compares against the logged value to prove the restored state is
// byte-identical to the pre-crash run (docs/PERSISTENCE.md).

#ifndef CROWDTOPK_UTIL_CRC32_H_
#define CROWDTOPK_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace crowdtopk::util {

// CRC-32 (IEEE, reflected, init/final xor 0xffffffff) of `size` bytes.
// Pass a previous result as `seed` to checksum data incrementally:
// Crc32(b, nb, Crc32(a, na)) == Crc32(ab, na + nb).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(const std::string& data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

// 64-bit FNV-1a streaming hash. Same incremental contract as Crc32 via the
// `seed` parameter (pass the previous digest).
inline constexpr uint64_t kFnv1a64Init = 0xcbf29ce484222325ULL;
uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed = kFnv1a64Init);

inline uint64_t Fnv1a64(const std::string& data,
                        uint64_t seed = kFnv1a64Init) {
  return Fnv1a64(data.data(), data.size(), seed);
}

}  // namespace crowdtopk::util

#endif  // CROWDTOPK_UTIL_CRC32_H_
