// Infimum cost of a crowdsourced top-k query (Section 4.4, Lemmas 1 and 3).
//
// Lemma 1: with the perfect reference o*_k, the minimum possible cost is
//     TMC_inf = sum_{j=1}^{k-1} W(o*_j, o*_{j+1}) + sum_{j=k+1}^{N} W(o*_j, o*_k),
// where W(a, b) is the expected workload of COMP(a, b). The expectation has
// no closed form under the stopping rule, so it is estimated by Monte-Carlo:
// each required pair's comparison is simulated `repetitions` times on a
// scratch platform (this privileged use of the ground truth is exactly how
// the paper's "Inf" series is obtained -- it is a yardstick, not an
// algorithm).

#ifndef CROWDTOPK_CORE_INFIMUM_H_
#define CROWDTOPK_CORE_INFIMUM_H_

#include <cstdint>

#include "data/dataset.h"
#include "judgment/comparison.h"

namespace crowdtopk::core {

struct InfimumEstimate {
  // Estimated TMC_inf (expected microtasks).
  double tmc = 0.0;
  // Best-case latency in batch rounds: all partition comparisons run in
  // parallel (max of their round counts) plus one parallel wave of the
  // adjacent top-k confirmations.
  double rounds = 0.0;
};

// Lemma 1 (reference = o*_k).
InfimumEstimate EstimateInfimum(const data::Dataset& dataset, int64_t k,
                                const judgment::ComparisonOptions& options,
                                uint64_t seed, int64_t repetitions = 3);

// Lemma 3: the infimum when partitioning with reference o*_ell (ell >= k).
InfimumEstimate EstimateInfimumWithReference(
    const data::Dataset& dataset, int64_t k, int64_t ell,
    const judgment::ComparisonOptions& options, uint64_t seed,
    int64_t repetitions = 3);

}  // namespace crowdtopk::core

#endif  // CROWDTOPK_CORE_INFIMUM_H_
