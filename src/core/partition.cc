#include "core/partition.h"

#include <algorithm>
#include <limits>

#include "telemetry/recorder.h"
#include "util/check.h"

namespace crowdtopk::core {

PartitionResult Partition(const std::vector<ItemId>& items, int64_t k,
                          ItemId reference, int64_t max_reference_changes,
                          judgment::ComparisonCache* cache,
                          crowd::CrowdPlatform* platform) {
  CROWDTOPK_CHECK_GE(k, 1);
  CROWDTOPK_CHECK(std::find(items.begin(), items.end(), reference) !=
                  items.end());

  PartitionResult result;
  result.reference = reference;
  std::vector<ItemId>& winners = result.winners;
  std::vector<ItemId>& losers = result.losers;

  // Pending: items still being compared against the current reference
  // (Algorithm 4's T_r before budget exhaustion). Exhausted ties are final.
  std::vector<ItemId> pending;
  pending.reserve(items.size());
  for (ItemId o : items) {
    if (o != reference) pending.push_back(o);
  }
  std::vector<ItemId> exhausted_ties;

  const int64_t batch = cache->options().batch_size;
  while (!pending.empty()) {
    // One batch round: every pending comparison advances in parallel
    // (Algorithm 4 lines 3-6; the first purchase is the cold-start I).
    bool stepped = false;
    for (ItemId o : pending) {
      auto* session = cache->GetSession(o, result.reference);
      if (!session->Finished()) {
        session->Step(platform, batch);
        stepped = true;
      }
    }
    if (stepped) platform->NextRound();

    // Classify what resolved this round (lines 7-8).
    std::vector<ItemId> still_pending;
    still_pending.reserve(pending.size());
    for (ItemId o : pending) {
      auto* session = cache->GetSession(o, result.reference);
      if (!session->Finished()) {
        still_pending.push_back(o);
        continue;
      }
      const auto outcome = session->left() == o
                               ? session->outcome()
                               : crowd::Reverse(session->outcome());
      switch (outcome) {
        case crowd::ComparisonOutcome::kLeftWins:
          winners.push_back(o);
          break;
        case crowd::ComparisonOutcome::kRightWins:
          losers.push_back(o);
          break;
        case crowd::ComparisonOutcome::kTie:
          exhausted_ties.push_back(o);
          break;
      }
    }
    pending = std::move(still_pending);

    // Reference change (lines 9-12): once k (or more, when several winners
    // resolve within one batch wave) winners are confirmed, the estimated
    // k-th best winner is a strictly better reference (Lemma 4).
    if (static_cast<int64_t>(winners.size()) >= k &&
        result.reference_changes < max_reference_changes &&
        (!pending.empty() || !exhausted_ties.empty())) {
      // The k-th item of W_r under the estimated ordering (means against the
      // current reference, descending) becomes the new reference. Only the
      // k-1 winners estimated above it stay confirmed; any surplus winners
      // (possible when several resolved within one wave) were judged only
      // against the *old* reference and are demoted for re-comparison --
      // otherwise the final Sort(W) could exclude the new reference while
      // keeping items that never beat it.
      std::vector<ItemId> by_estimate = winners;
      std::sort(by_estimate.begin(), by_estimate.end(),
                [&](ItemId a, ItemId b) {
                  return cache->EstimatedMean(a, result.reference) >
                         cache->EstimatedMean(b, result.reference);
                });
      const ItemId new_reference = by_estimate[k - 1];
      losers.push_back(result.reference);
      winners.assign(by_estimate.begin(), by_estimate.begin() + (k - 1));
      result.reference = new_reference;
      ++result.reference_changes;
      // Surplus winners and ties judged against the old reference are
      // re-opened against the new one (their old sessions stay in the cache
      // and may be reused later).
      for (size_t index = k; index < by_estimate.size(); ++index) {
        pending.push_back(by_estimate[index]);
      }
      for (ItemId o : exhausted_ties) pending.push_back(o);
      exhausted_ties.clear();
    }

    if (!stepped && pending.empty()) break;
  }

  result.ties = std::move(exhausted_ties);
  // Line 13: if fewer than k confirmed winners, the reference itself is a
  // top-k candidate.
  if (static_cast<int64_t>(winners.size()) < k) {
    winners.push_back(result.reference);
  }
  if (platform->recorder() != nullptr) {
    platform->recorder()->RecordCounter(
        "reference_changes", static_cast<double>(result.reference_changes));
  }
  return result;
}

}  // namespace crowdtopk::core
