// Median selection strategies and their comparison costs (Appendix C).
//
// SPR's reference selection needs the median of m group maxima; Appendix C
// bounds the comparisons of candidate algorithms (Table 10):
//
//   Bubble / Selection  (3m^2 + m - 2) / 8
//   Merge               3 m log m
//   Heap                m + 2 m log(m / 2)
//   Quick               m (m - 1) / 2
//
// This module implements the four strategies over an abstract comparator so
// the *actual* comparison counts can be measured against the bounds (the
// bench table10_median_bounds prints both). The comparator returns true when
// the left argument ranks higher (better).

#ifndef CROWDTOPK_CORE_MEDIAN_H_
#define CROWDTOPK_CORE_MEDIAN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "crowd/types.h"

namespace crowdtopk::core {

using crowd::ItemId;

// Comparator abstraction; implementations may be backed by crowd judgments
// (expensive) or plain numbers (tests). Must behave like a strict weak
// ordering for the cost guarantees to hold.
using BetterThan = std::function<bool(ItemId, ItemId)>;

enum class MedianAlgorithm {
  kBubble,     // Appendix C's reference analysis
  kSelection,  // selection sort up to the median position
  kMerge,      // full merge sort, take the middle
  kHeap,       // heapify + extract half
  kQuick,      // quickselect on the middle order statistic
};

struct MedianResult {
  ItemId median = -1;
  // Comparisons actually performed.
  int64_t comparisons = 0;
};

// Finds the lower median (position ceil(m/2) best-first) of `items` using
// the chosen strategy. Items must be non-empty and distinct. Deterministic:
// kQuick uses a fixed midpoint pivot.
MedianResult FindMedian(const std::vector<ItemId>& items,
                        const BetterThan& better, MedianAlgorithm algorithm);

// Appendix C / Table 10 upper bounds for m items.
double MedianComparisonBound(MedianAlgorithm algorithm, int64_t m);

// Human-readable name of the strategy ("Bubble", ...).
const char* MedianAlgorithmName(MedianAlgorithm algorithm);

}  // namespace crowdtopk::core

#endif  // CROWDTOPK_CORE_MEDIAN_H_
