#include "core/tournament.h"

#include "util/check.h"

namespace crowdtopk::core {

ItemId PickMatchWinner(ItemId a, ItemId b,
                       const judgment::ComparisonCache& cache) {
  const auto* session = cache.FindSession(a, b);
  if (session != nullptr && session->Finished() &&
      session->outcome() != crowd::ComparisonOutcome::kTie) {
    return session->outcome() == crowd::ComparisonOutcome::kLeftWins
               ? session->left()
               : session->right();
  }
  const double mean = cache.EstimatedMean(a, b);
  if (mean > 0.0) return a;
  if (mean < 0.0) return b;
  return a < b ? a : b;
}

TournamentRecord TournamentMax(const std::vector<ItemId>& items,
                               judgment::ComparisonCache* cache,
                               crowd::CrowdPlatform* platform,
                               bool charge_platform_rounds) {
  CROWDTOPK_CHECK(!items.empty());
  TournamentRecord record;
  std::vector<ItemId> level = items;
  const int64_t batch = cache->options().batch_size;
  while (level.size() > 1) {
    std::vector<judgment::ComparisonSession*> sessions;
    sessions.reserve(level.size() / 2);
    for (size_t p = 0; p + 1 < level.size(); p += 2) {
      sessions.push_back(cache->GetSession(level[p], level[p + 1]));
    }
    // Waves: every unfinished match of this level buys one batch per round.
    while (true) {
      bool stepped = false;
      for (auto* session : sessions) {
        if (!session->Finished()) {
          session->Step(platform, batch);
          stepped = true;
        }
      }
      if (!stepped) break;
      ++record.rounds;
      if (charge_platform_rounds) platform->NextRound();
    }
    std::vector<ItemId> next;
    next.reserve(level.size() / 2 + 1);
    for (size_t p = 0; p + 1 < level.size(); p += 2) {
      const ItemId winner = PickMatchWinner(level[p], level[p + 1], *cache);
      const ItemId loser = winner == level[p] ? level[p + 1] : level[p];
      record.matches.emplace_back(winner, loser);
      next.push_back(winner);
    }
    if (level.size() % 2 == 1) next.push_back(level.back());  // bye
    level = std::move(next);
  }
  record.winner = level.front();
  return record;
}

}  // namespace crowdtopk::core
