#include "core/spr.h"

#include <algorithm>
#include <numeric>

#include "core/partition.h"
#include "core/select_reference.h"
#include "core/sorting.h"
#include "telemetry/recorder.h"
#include "util/check.h"

namespace crowdtopk::core {

TopKResult Spr::Run(crowd::CrowdPlatform* platform, int64_t k) {
  CROWDTOPK_CHECK_GE(k, 1);
  telemetry::PhaseScope trace_phase(platform->recorder(), "spr");
  std::vector<ItemId> items(platform->num_items());
  std::iota(items.begin(), items.end(), 0);
  judgment::ComparisonCache cache(options_.comparison, platform);

  TopKResult result;
  result.items = RunOnItems(items, k, &cache, platform);
  result.total_microtasks = platform->total_microtasks();
  result.rounds = platform->rounds();
  return result;
}

std::vector<ItemId> Spr::RunOnItems(const std::vector<ItemId>& items,
                                    int64_t k,
                                    judgment::ComparisonCache* cache,
                                    crowd::CrowdPlatform* platform) const {
  CROWDTOPK_CHECK_GE(k, 1);
  const int64_t n = static_cast<int64_t>(items.size());
  if (n == 0) return {};

  // Base case: no room to prune; sort everything.
  if (n <= k) {
    telemetry::PhaseScope trace_phase(platform->recorder(), "rank");
    std::vector<ItemId> all = items;
    ConfirmSort(&all, cache, platform);
    return all;
  }

  // (1) Select a reference inside the sweet spot (Section 5.1). Selection
  // comparisons run under a reduced per-pair budget through a private cache
  // (their errors only cost efficiency, Section 5.4); the partition phase
  // re-judges the chosen reference's pairs at full confidence.
  const int64_t selection_budget = std::max<int64_t>(
      8, static_cast<int64_t>(options_.selection_budget_fraction *
                              static_cast<double>(n)));
  judgment::ComparisonOptions selection_options = options_.comparison;
  selection_options.budget =
      std::min(options_.comparison.budget,
               options_.selection_budget_per_pair_batches *
                   options_.comparison.min_workload);
  judgment::ComparisonCache selection_cache(selection_options, platform);
  ItemId initial_reference;
  {
    telemetry::PhaseScope trace_phase(platform->recorder(), "select");
    initial_reference =
        SelectReference(items, k, options_.sweet_spot_c, selection_budget,
                        &selection_cache, platform);
  }

  // (2) Partition against the reference (Section 5.2).
  PartitionResult partition;
  {
    telemetry::PhaseScope trace_phase(platform->recorder(), "partition");
    partition =
        Partition(items, k, initial_reference, options_.max_reference_changes,
                  cache, platform);
  }
  const ItemId reference = partition.reference;
  const int64_t num_winners = static_cast<int64_t>(partition.winners.size());
  const int64_t num_with_ties =
      num_winners + static_cast<int64_t>(partition.ties.size());

  // (3) Rank (Section 5.3 / Algorithm 2 lines 4-10). The recursion of
  // lines 7-9 nests its own select/partition/rank phases inside this one.
  telemetry::PhaseScope trace_rank(platform->recorder(), "rank");
  if (num_winners >= k) {
    // Line 10: |W_r| >= k -- the answer is the top-k of sorted W_r.
    std::vector<ItemId> sorted =
        SortByReference(partition.winners, reference, cache, platform);
    sorted.resize(k);
    return sorted;
  }
  if (num_with_ties >= k) {
    // Lines 4-6: fill up with random ties (they are all within budget-B
    // indistinguishability of the reference, hence of each other's rank
    // region), then sort.
    std::vector<ItemId> candidates = partition.winners;
    std::vector<ItemId> ties = partition.ties;
    platform->rng()->Shuffle(&ties);
    candidates.insert(candidates.end(), ties.begin(),
                      ties.begin() + (k - num_winners));
    return SortByReference(candidates, reference, cache, platform);
  }
  // Lines 7-9: not enough candidates; recurse into the losers for the rest.
  std::vector<ItemId> candidates = partition.winners;
  candidates.insert(candidates.end(), partition.ties.begin(),
                    partition.ties.end());
  const int64_t remaining = k - num_with_ties;
  CROWDTOPK_CHECK_GE(remaining, 1);
  const std::vector<ItemId> from_losers =
      RunOnItems(partition.losers, remaining, cache, platform);
  candidates.insert(candidates.end(), from_losers.begin(), from_losers.end());
  std::vector<ItemId> sorted =
      SortByReference(candidates, reference, cache, platform);
  if (static_cast<int64_t>(sorted.size()) > k) sorted.resize(k);
  return sorted;
}

double SprPrecisionLowerBound(double alpha, double c) {
  CROWDTOPK_CHECK(alpha >= 0.0 && alpha < 1.0);
  CROWDTOPK_CHECK(c >= 1.0);
  return (1.0 - alpha) / c;
}

}  // namespace crowdtopk::core
