// Reference-based partitioning (Section 5.2, Algorithm 4).
//
// Compares every item with the reference r, incrementally (one batch per tie
// per round) so that difficult comparisons are deferred; items resolve into
// winners W_r, losers L_r, or permanent ties T_r (budget exhausted). When
// the winner set reaches size k the reference may be *changed* to the
// estimated k-th best winner (Lemma 4: a reference closer to o*_k is
// cheaper), up to a configurable number of times (Table 4 ablation).

#ifndef CROWDTOPK_CORE_PARTITION_H_
#define CROWDTOPK_CORE_PARTITION_H_

#include <cstdint>
#include <vector>

#include "crowd/platform.h"
#include "crowd/types.h"
#include "judgment/cache.h"

namespace crowdtopk::core {

using crowd::ItemId;

struct PartitionResult {
  // The final reference (may differ from the initial one after changes).
  ItemId reference = -1;
  // Winners: confirmed better than the reference they were judged against.
  // Per Algorithm 4 line 13, includes the final reference itself whenever
  // the confirmed winners alone number fewer than k.
  std::vector<ItemId> winners;
  // Ties: indistinguishable from the final reference within budget B.
  std::vector<ItemId> ties;
  // Losers: confirmed worse (includes abandoned references).
  std::vector<ItemId> losers;
  // How many times the reference was changed.
  int64_t reference_changes = 0;
};

// Partitions `items` (which must contain `reference`) for a top-k query.
// `max_reference_changes` = 0 disables changing (Table 4, column "0").
PartitionResult Partition(const std::vector<ItemId>& items, int64_t k,
                          ItemId reference, int64_t max_reference_changes,
                          judgment::ComparisonCache* cache,
                          crowd::CrowdPlatform* platform);

}  // namespace crowdtopk::core

#endif  // CROWDTOPK_CORE_PARTITION_H_
