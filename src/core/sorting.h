// Reference-based sorting (Section 5.3) and confirmed bubble sort.
//
// Items that were partitioned against a common reference r carry estimated
// means mu^_{o,r}; Thurstone's calculation turns pairs of those estimates
// into P{o_i > o_j}, which yields a good initial order. A best-case-linear
// bubble sort then confirms (and where needed corrects) the order with
// confidence-aware comparisons, reusing all previously purchased judgments
// through the ComparisonCache.

#ifndef CROWDTOPK_CORE_SORTING_H_
#define CROWDTOPK_CORE_SORTING_H_

#include <vector>

#include "crowd/platform.h"
#include "crowd/types.h"
#include "judgment/cache.h"

namespace crowdtopk::core {

using crowd::ItemId;

// Thurstone probability P{mu_i,r > mu_j,r} given the two estimated judgment
// means and per-judgment stddevs against the shared reference (Section 5.3):
// Phi((mean_i - mean_j) / sqrt(sd_i^2 + sd_j^2)). Falls back to a hard
// 0/1/0.5 comparison of the means when both stddevs are zero.
double ThurstoneProbability(double mean_i, double sd_i, double mean_j,
                            double sd_j);

// Orders `items` best-first by their estimated means against `reference`
// (the reference itself, if present, uses mean 0; items never compared to
// the reference also use 0). This is the Thurstone-consistent initial order:
// for a common reference, P{i > j} > 1/2 iff mu^_{i,r} > mu^_{j,r}.
std::vector<ItemId> InitialOrderByReference(
    const std::vector<ItemId>& items, ItemId reference,
    const judgment::ComparisonCache& cache);

// Bubble-sorts *items best-first in place, confirming each adjacent pair
// with a confidence-aware comparison through `cache` (already-resolved
// pairs are free). Pairs that remain ties under the budget keep their
// current relative order, which guarantees termination even under
// non-transitive outcomes. Passes are capped at |items|.
void ConfirmSort(std::vector<ItemId>* items, judgment::ComparisonCache* cache,
                 crowd::CrowdPlatform* platform);

// Full reference-based sort: initial order via the reference, then
// ConfirmSort. Returns the sorted items best-first.
std::vector<ItemId> SortByReference(const std::vector<ItemId>& items,
                                    ItemId reference,
                                    judgment::ComparisonCache* cache,
                                    crowd::CrowdPlatform* platform);

}  // namespace crowdtopk::core

#endif  // CROWDTOPK_CORE_SORTING_H_
