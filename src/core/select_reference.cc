#include "core/select_reference.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/sorting.h"
#include "core/tournament.h"
#include "stats/binomial.h"
#include "telemetry/recorder.h"
#include "util/check.h"

namespace crowdtopk::core {

int64_t BubbleMedianCost(int64_t m) {
  CROWDTOPK_CHECK_GE(m, 1);
  // Sum_{i=1}^{ceil(m/2)} (m - i): bubble passes until the median surfaces
  // (Appendix C).
  const int64_t passes = (m + 1) / 2;
  return m * passes - passes * (passes + 1) / 2;
}

double GroupMaxReachesTopJ(int64_t n, int64_t j, int64_t x) {
  CROWDTOPK_CHECK_GE(n, 1);
  CROWDTOPK_CHECK_GE(x, 1);
  if (j <= 0) return 0.0;
  if (j >= n) return 1.0;
  const double miss = 1.0 - static_cast<double>(j) / static_cast<double>(n);
  return 1.0 - std::pow(miss, static_cast<double>(x));
}

double MedianInSweetSpotProbability(int64_t n, int64_t k, double c,
                                    int64_t x, int64_t m) {
  CROWDTOPK_CHECK_GE(m, 1);
  CROWDTOPK_CHECK_EQ(m % 2, 1);
  // p: a group max lands strictly above the sweet spot (within the top k-1).
  const double p = GroupMaxReachesTopJ(n, k - 1, x);
  // q: a group max lands at or above the bottom of the sweet spot.
  const int64_t ck = std::min<int64_t>(
      n, std::max<int64_t>(k, static_cast<int64_t>(std::floor(
                                  c * static_cast<double>(k)))));
  const double q = GroupMaxReachesTopJ(n, ck, x);
  // Median too high: at least ceil(m/2) maxima above the sweet spot.
  const double fail_high =
      stats::BinomialTailAtLeast(m, (m + 1) / 2, p);
  // Median too low: at least ceil((m+1)/2) maxima below the sweet spot.
  const double fail_low =
      stats::BinomialTailAtLeast(m, (m + 1) / 2, 1.0 - q);
  return std::max(0.0, 1.0 - fail_high - fail_low);
}

ReferenceSelectionPlan PlanReferenceSelection(int64_t n, int64_t k, double c,
                                              int64_t comparison_budget) {
  CROWDTOPK_CHECK_GE(n, 1);
  CROWDTOPK_CHECK_GE(k, 1);
  CROWDTOPK_CHECK_GE(comparison_budget, 0);
  ReferenceSelectionPlan best;
  best.x = 1;
  best.m = 1;
  best.success_probability = MedianInSweetSpotProbability(n, k, c, 1, 1);

  constexpr int64_t kMaxGroups = 31;
  for (int64_t m = 1; m <= kMaxGroups; m += 2) {
    const int64_t median_cost = BubbleMedianCost(m);
    if (median_cost > comparison_budget) break;
    const int64_t x_max = std::min<int64_t>(
        n, (comparison_budget - median_cost) / m + 1);
    if (x_max < 1) continue;
    // The objective is smooth and unimodal in x; a coarse geometric grid
    // with unit steps near the bottom finds the optimum to within noise.
    int64_t x = 1;
    while (x <= x_max) {
      const double probability = MedianInSweetSpotProbability(n, k, c, x, m);
      if (probability > best.success_probability) {
        best.success_probability = probability;
        best.x = x;
        best.m = m;
      }
      // Unit steps up to 64, then 5% geometric growth.
      x = x < 64 ? x + 1 : std::max(x + 1, x + x / 20);
    }
  }
  return best;
}

ItemId SelectReference(const std::vector<ItemId>& items, int64_t k, double c,
                       int64_t comparison_budget,
                       judgment::ComparisonCache* cache,
                       crowd::CrowdPlatform* platform) {
  CROWDTOPK_CHECK(!items.empty());
  const int64_t n = static_cast<int64_t>(items.size());
  if (n == 1) return items.front();

  const ReferenceSelectionPlan plan =
      PlanReferenceSelection(n, k, c, comparison_budget);
  telemetry::TraceRecorder* recorder = platform->recorder();
  if (recorder != nullptr) {
    // The solved (x, m) of optimization problem (2), so traces show how the
    // selection budget was laid out.
    recorder->RecordCounter("selection_group_size_x",
                            static_cast<double>(plan.x));
    recorder->RecordCounter("selection_num_groups_m",
                            static_cast<double>(plan.m));
  }

  util::Rng* rng = platform->rng();
  std::vector<ItemId> maxima;
  maxima.reserve(plan.m);
  int64_t parallel_rounds = 0;
  {
    telemetry::PhaseScope trace_groups(recorder, "group_maxima");
    for (int64_t g = 0; g < plan.m; ++g) {
      // x uniform samples with replacement; duplicates collapse (comparing
      // an item with itself is meaningless).
      std::vector<ItemId> group;
      group.reserve(plan.x);
      for (int64_t s = 0; s < plan.x; ++s) {
        const ItemId candidate = items[rng->UniformInt(n)];
        if (std::find(group.begin(), group.end(), candidate) == group.end()) {
          group.push_back(candidate);
        }
      }
      const TournamentRecord record =
          TournamentMax(group, cache, platform,
                        /*charge_platform_rounds=*/false);
      parallel_rounds = std::max(parallel_rounds, record.rounds);
      maxima.push_back(record.winner);
    }
    // The m groups ran in parallel: charge the slowest one.
    if (parallel_rounds > 0) platform->AccountRounds(parallel_rounds);
  }

  if (maxima.size() == 1) return maxima.front();

  // Median of the maxima: dedupe (keeping multiplicities), sort the distinct
  // candidates best-first with confirmed comparisons, then take the weighted
  // median position.
  telemetry::PhaseScope trace_median(recorder, "median_of_maxima");
  std::map<ItemId, int64_t> multiplicity;
  for (ItemId id : maxima) ++multiplicity[id];
  std::vector<ItemId> distinct;
  distinct.reserve(multiplicity.size());
  for (const auto& [id, count] : multiplicity) {
    (void)count;
    distinct.push_back(id);
  }
  ConfirmSort(&distinct, cache, platform);
  const int64_t median_position = (static_cast<int64_t>(maxima.size()) + 1) / 2;
  int64_t cumulative = 0;
  for (ItemId id : distinct) {
    cumulative += multiplicity[id];
    if (cumulative >= median_position) return id;
  }
  return distinct.back();
}

}  // namespace crowdtopk::core
