// Common interface for crowdsourced top-k algorithms.
//
// Every algorithm (SPR and all baselines) consumes a CrowdPlatform and
// returns the ranked top-k plus the cost/latency it incurred, so the
// benchmark harnesses can treat them uniformly.

#ifndef CROWDTOPK_CORE_TOPK_ALGORITHM_H_
#define CROWDTOPK_CORE_TOPK_ALGORITHM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crowd/platform.h"
#include "crowd/types.h"

namespace crowdtopk::core {

using crowd::ItemId;

struct TopKResult {
  // The answer, best item first; size min(k, N).
  std::vector<ItemId> items;
  // Total monetary cost: microtasks purchased during the run.
  int64_t total_microtasks = 0;
  // Query latency: batch rounds elapsed during the run (Section 5.5).
  int64_t rounds = 0;
};

class TopKAlgorithm {
 public:
  virtual ~TopKAlgorithm() = default;

  // Display name used in benchmark tables ("SPR", "TourTree", ...).
  virtual std::string name() const = 0;

  // Answers the top-k query over all of the platform's items. The platform
  // should be freshly constructed (counters at zero); the result copies the
  // platform's final counters.
  virtual TopKResult Run(crowd::CrowdPlatform* platform, int64_t k) = 0;

  // Whether concurrent Run() calls on this *same object* (each with its own
  // platform) are safe, i.e. Run never writes to algorithm state. The
  // parallel experiment engine (exec/run_engine.h) serialises repetitions
  // of algorithms that return false. Default true: most algorithms here
  // treat their options as read-only.
  virtual bool concurrent_runs_safe() const { return true; }
};

}  // namespace crowdtopk::core

#endif  // CROWDTOPK_CORE_TOPK_ALGORITHM_H_
