// Analytic latency bounds (Section 5.5).
//
// The paper derives the number of sequential comparison *stages* of each
// method, each stage worth up to B/eta batch rounds:
//
//   TourTree     O(B' (log N + k log log N))
//   HeapSort     O(B' (log^2 k + (N - k) log k))
//   QuickSelect  O(B' log N)            (expected)
//   SPR          O(B' (log x + log m))  (best case)
//
// with B' = ceil(B / eta). These closed forms are programme-checkable
// sanity bounds: measured round counts should stay within a constant factor
// of them, and their *ordering* (HeapSort far above the parallel methods)
// is a headline experimental claim.

#ifndef CROWDTOPK_CORE_LATENCY_BOUNDS_H_
#define CROWDTOPK_CORE_LATENCY_BOUNDS_H_

#include <cstdint>

#include "judgment/comparison.h"

namespace crowdtopk::core {

struct LatencyBounds {
  double tournament_tree = 0.0;
  double heap_sort = 0.0;
  double quick_select = 0.0;
  double spr = 0.0;  // best case, using the (x, m) plan for this n/k
};

// Evaluates the Section 5.5 formulas for a query over n items with the given
// comparison options; `x` and `m` are SPR's reference-sampling plan
// (PlanReferenceSelection). Requires n >= 2, 1 <= k <= n.
LatencyBounds ComputeLatencyBounds(int64_t n, int64_t k,
                                   const judgment::ComparisonOptions& options,
                                   int64_t x, int64_t m);

}  // namespace crowdtopk::core

#endif  // CROWDTOPK_CORE_LATENCY_BOUNDS_H_
