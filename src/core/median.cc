#include "core/median.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace crowdtopk::core {

namespace {

// Wraps the comparator with a counter.
struct CountingComparator {
  const BetterThan* better;
  int64_t* counter;
  bool operator()(ItemId a, ItemId b) const {
    ++*counter;
    return (*better)(a, b);
  }
};

// Bubble passes from the tail until the median position is settled
// (Appendix C's procedure: after ceil(m/2) passes the median surfaces).
ItemId BubbleMedian(std::vector<ItemId> items, const CountingComparator& cmp) {
  const int64_t m = static_cast<int64_t>(items.size());
  const int64_t passes = (m + 1) / 2;
  for (int64_t pass = 0; pass < passes; ++pass) {
    // One bubble pass: the (pass+1)-th best floats to position `pass`.
    for (int64_t pos = m - 1; pos > pass; --pos) {
      if (cmp(items[pos], items[pos - 1])) {
        std::swap(items[pos], items[pos - 1]);
      }
    }
  }
  return items[passes - 1];
}

// Selection sort up to the median position.
ItemId SelectionMedian(std::vector<ItemId> items,
                       const CountingComparator& cmp) {
  const int64_t m = static_cast<int64_t>(items.size());
  const int64_t target = (m + 1) / 2;
  for (int64_t pos = 0; pos < target; ++pos) {
    int64_t best = pos;
    for (int64_t probe = pos + 1; probe < m; ++probe) {
      if (cmp(items[probe], items[best])) best = probe;
    }
    std::swap(items[pos], items[best]);
  }
  return items[target - 1];
}

void Merge(std::vector<ItemId>* items, int64_t lo, int64_t mid, int64_t hi,
           const CountingComparator& cmp, std::vector<ItemId>* scratch) {
  scratch->clear();
  int64_t a = lo, b = mid;
  while (a < mid && b < hi) {
    if (cmp((*items)[b], (*items)[a])) {
      scratch->push_back((*items)[b++]);
    } else {
      scratch->push_back((*items)[a++]);
    }
  }
  while (a < mid) scratch->push_back((*items)[a++]);
  while (b < hi) scratch->push_back((*items)[b++]);
  std::copy(scratch->begin(), scratch->end(), items->begin() + lo);
}

void MergeSort(std::vector<ItemId>* items, int64_t lo, int64_t hi,
               const CountingComparator& cmp, std::vector<ItemId>* scratch) {
  if (hi - lo < 2) return;
  const int64_t mid = lo + (hi - lo) / 2;
  MergeSort(items, lo, mid, cmp, scratch);
  MergeSort(items, mid, hi, cmp, scratch);
  Merge(items, lo, mid, hi, cmp, scratch);
}

ItemId MergeMedian(std::vector<ItemId> items, const CountingComparator& cmp) {
  std::vector<ItemId> scratch;
  MergeSort(&items, 0, static_cast<int64_t>(items.size()), cmp, &scratch);
  return items[(items.size() - 1) / 2];
}

// Max-heap ("best on top") built in place; extract ceil(m/2) times.
ItemId HeapMedian(std::vector<ItemId> items, const CountingComparator& cmp) {
  const auto sift_down = [&](int64_t index, int64_t size) {
    while (true) {
      const int64_t left = 2 * index + 1;
      const int64_t right = 2 * index + 2;
      int64_t best = index;
      if (left < size && cmp(items[left], items[best])) best = left;
      if (right < size && cmp(items[right], items[best])) best = right;
      if (best == index) return;
      std::swap(items[index], items[best]);
      index = best;
    }
  };
  const int64_t m = static_cast<int64_t>(items.size());
  for (int64_t index = m / 2; index-- > 0;) sift_down(index, m);
  const int64_t extractions = (m + 1) / 2;
  int64_t size = m;
  ItemId median = items[0];
  for (int64_t e = 0; e < extractions; ++e) {
    median = items[0];
    --size;
    std::swap(items[0], items[size]);
    sift_down(0, size);
  }
  return median;
}

ItemId QuickMedian(std::vector<ItemId> items, const CountingComparator& cmp) {
  // Deterministic quickselect for the (ceil(m/2)-1)-th best (0-based),
  // midpoint pivot.
  int64_t lo = 0;
  int64_t hi = static_cast<int64_t>(items.size());
  const int64_t target = (static_cast<int64_t>(items.size()) + 1) / 2 - 1;
  while (hi - lo > 1) {
    const ItemId pivot = items[lo + (hi - lo) / 2];
    std::vector<ItemId> better, worse;
    for (int64_t index = lo; index < hi; ++index) {
      if (items[index] == pivot) continue;
      if (cmp(items[index], pivot)) {
        better.push_back(items[index]);
      } else {
        worse.push_back(items[index]);
      }
    }
    int64_t write = lo;
    for (ItemId id : better) items[write++] = id;
    const int64_t pivot_position = write;
    items[write++] = pivot;
    for (ItemId id : worse) items[write++] = id;
    if (pivot_position == target) return pivot;
    if (pivot_position > target) {
      hi = pivot_position;
    } else {
      lo = pivot_position + 1;
    }
  }
  return items[lo];
}

}  // namespace

MedianResult FindMedian(const std::vector<ItemId>& items,
                        const BetterThan& better,
                        MedianAlgorithm algorithm) {
  CROWDTOPK_CHECK(!items.empty());
  MedianResult result;
  const CountingComparator cmp{&better, &result.comparisons};
  switch (algorithm) {
    case MedianAlgorithm::kBubble:
      result.median = BubbleMedian(items, cmp);
      break;
    case MedianAlgorithm::kSelection:
      result.median = SelectionMedian(items, cmp);
      break;
    case MedianAlgorithm::kMerge:
      result.median = MergeMedian(items, cmp);
      break;
    case MedianAlgorithm::kHeap:
      result.median = HeapMedian(items, cmp);
      break;
    case MedianAlgorithm::kQuick:
      result.median = QuickMedian(items, cmp);
      break;
  }
  return result;
}

double MedianComparisonBound(MedianAlgorithm algorithm, int64_t m) {
  CROWDTOPK_CHECK_GE(m, 1);
  const double md = static_cast<double>(m);
  const double log_m = std::log2(std::max(2.0, md));
  switch (algorithm) {
    case MedianAlgorithm::kBubble:
    case MedianAlgorithm::kSelection:
      return (3.0 * md * md + md - 2.0) / 8.0;
    case MedianAlgorithm::kMerge:
      return 3.0 * md * log_m;
    case MedianAlgorithm::kHeap:
      return md + 2.0 * md * std::log2(std::max(1.0, md / 2.0));
    case MedianAlgorithm::kQuick:
      return md * (md - 1.0) / 2.0;
  }
  return 0.0;
}

const char* MedianAlgorithmName(MedianAlgorithm algorithm) {
  switch (algorithm) {
    case MedianAlgorithm::kBubble:
      return "Bubble";
    case MedianAlgorithm::kSelection:
      return "Selection";
    case MedianAlgorithm::kMerge:
      return "Merge";
    case MedianAlgorithm::kHeap:
      return "Heap";
    case MedianAlgorithm::kQuick:
      return "Quick";
  }
  return "?";
}

}  // namespace crowdtopk::core
