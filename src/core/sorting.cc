#include "core/sorting.h"

#include <algorithm>
#include <cmath>

#include "stats/normal.h"
#include "telemetry/recorder.h"
#include "util/check.h"

namespace crowdtopk::core {

double ThurstoneProbability(double mean_i, double sd_i, double mean_j,
                            double sd_j) {
  const double variance = sd_i * sd_i + sd_j * sd_j;
  if (variance <= 0.0) {
    if (mean_i > mean_j) return 1.0;
    if (mean_i < mean_j) return 0.0;
    return 0.5;
  }
  return stats::NormalCdf((mean_i - mean_j) / std::sqrt(variance));
}

std::vector<ItemId> InitialOrderByReference(
    const std::vector<ItemId>& items, ItemId reference,
    const judgment::ComparisonCache& cache) {
  std::vector<ItemId> order = items;
  auto estimated_mean = [&](ItemId o) {
    return o == reference ? 0.0 : cache.EstimatedMean(o, reference);
  };
  std::stable_sort(order.begin(), order.end(), [&](ItemId a, ItemId b) {
    const double ma = estimated_mean(a);
    const double mb = estimated_mean(b);
    if (ma != mb) return ma > mb;
    return a < b;
  });
  return order;
}

void ConfirmSort(std::vector<ItemId>* items, judgment::ComparisonCache* cache,
                 crowd::CrowdPlatform* platform) {
  CROWDTOPK_CHECK(items != nullptr);
  const size_t n = items->size();
  if (n < 2) return;
  telemetry::PhaseScope trace_phase(platform->recorder(), "confirm_sort");
  for (size_t pass = 0; pass < n; ++pass) {
    bool swapped = false;
    for (size_t pos = 0; pos + 1 < n; ++pos) {
      const ItemId a = (*items)[pos];
      const ItemId b = (*items)[pos + 1];
      const auto outcome = cache->Compare(a, b, platform);
      if (outcome == crowd::ComparisonOutcome::kRightWins) {
        std::swap((*items)[pos], (*items)[pos + 1]);
        swapped = true;
      }
      // kLeftWins keeps the order; kTie (budget exhausted) keeps the
      // estimated order, guaranteeing termination.
    }
    if (!swapped) break;
  }
}

std::vector<ItemId> SortByReference(const std::vector<ItemId>& items,
                                    ItemId reference,
                                    judgment::ComparisonCache* cache,
                                    crowd::CrowdPlatform* platform) {
  std::vector<ItemId> order =
      InitialOrderByReference(items, reference, *cache);
  ConfirmSort(&order, cache, platform);
  return order;
}

}  // namespace crowdtopk::core
