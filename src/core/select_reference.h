// Reference selection (Section 5.1, Algorithm 3).
//
// SPR wants a reference inside the "sweet spot" {o*_k, ..., o*_ck}. It takes
// m independent groups of x uniform samples (with replacement), finds each
// group's max by confidence-aware comparisons, and returns the *median* of
// the m maxima. (x, m) are chosen by solving the paper's optimization
// problem (2): maximise P{o*_k >= r >= o*_ck | x, m} subject to the sampling
// cost m(x-1) plus the bubble-sort median cost (3m^2 + m - 2)/8 staying
// within a budget of O(N) comparisons.

#ifndef CROWDTOPK_CORE_SELECT_REFERENCE_H_
#define CROWDTOPK_CORE_SELECT_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "crowd/platform.h"
#include "crowd/types.h"
#include "judgment/cache.h"
#include "util/random.h"

namespace crowdtopk::core {

using crowd::ItemId;

struct ReferenceSelectionPlan {
  int64_t x = 1;  // samples per group
  int64_t m = 1;  // number of groups (odd)
  // The objective value P{o*_k >= r >= o*_ck | x, m} at the optimum.
  double success_probability = 0.0;
};

// Upper bound on comparisons for finding the median of m numbers by bubble
// sort: (3m^2 + m - 2) / 8 (Appendix C).
int64_t BubbleMedianCost(int64_t m);

// P{group max is at least as good as the j-th best of n | x samples}
// = 1 - (1 - j/n)^x  (Equation (1)).
double GroupMaxReachesTopJ(int64_t n, int64_t j, int64_t x);

// P{o*_k >= median of m maxima >= o*_ck} for the given (x, m), computed with
// exact binomial tails (the displayed equation before Lemma 2).
double MedianInSweetSpotProbability(int64_t n, int64_t k, double c,
                                    int64_t x, int64_t m);

// Solves problem (2) by exact grid search over odd m and feasible x, with
// `comparison_budget` comparisons allowed (the paper's O(N); pass n).
ReferenceSelectionPlan PlanReferenceSelection(int64_t n, int64_t k, double c,
                                              int64_t comparison_budget);

// Algorithm 3: runs the sampling procedure over `items` and returns the
// median of the group maxima. `comparison_budget` bounds the number of
// selection comparisons (problem (2)'s right-hand side); the paper allows
// O(N), and in practice a fraction of N keeps the selection cost from
// dominating the partition cost (comparisons between group maxima are the
// most expensive ones in the whole query -- they pit top items against each
// other). Latency accounting: group tournaments run in parallel (max of the
// per-group round counts is charged); the median sort is sequential.
// Requires |items| >= 1.
ItemId SelectReference(const std::vector<ItemId>& items, int64_t k, double c,
                       int64_t comparison_budget,
                       judgment::ComparisonCache* cache,
                       crowd::CrowdPlatform* platform);

}  // namespace crowdtopk::core

#endif  // CROWDTOPK_CORE_SELECT_REFERENCE_H_
