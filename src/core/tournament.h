// Level-parallel single-elimination tournament over confidence-aware
// comparisons. Shared by SPR's reference sampling (group maxima, Section
// 5.1) and by the tournament-tree baseline (Section 4.1).

#ifndef CROWDTOPK_CORE_TOURNAMENT_H_
#define CROWDTOPK_CORE_TOURNAMENT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "crowd/platform.h"
#include "crowd/types.h"
#include "judgment/cache.h"

namespace crowdtopk::core {

using crowd::ItemId;

// Decides a finished (or tied) head-to-head from cache state: the confirmed
// outcome when one exists, otherwise the larger estimated mean (smaller id
// on a dead-even tie).
ItemId PickMatchWinner(ItemId a, ItemId b,
                       const judgment::ComparisonCache& cache);

struct TournamentRecord {
  ItemId winner = -1;
  // Every played match as (winner, loser); used by the tournament-tree
  // baseline to find the items that lost directly to a champion.
  std::vector<std::pair<ItemId, ItemId>> matches;
  // Batch rounds the tournament needed (each level advances its pairs in
  // parallel; waves of levels are sequential).
  int64_t rounds = 0;
};

// Runs the tournament over `items` (>= 1, distinct ids). If
// `charge_platform_rounds` is true, each wave advances the platform's round
// counter; otherwise rounds are only reported in the record (the caller is
// overlaying several tournaments in parallel).
TournamentRecord TournamentMax(const std::vector<ItemId>& items,
                               judgment::ComparisonCache* cache,
                               crowd::CrowdPlatform* platform,
                               bool charge_platform_rounds);

}  // namespace crowdtopk::core

#endif  // CROWDTOPK_CORE_TOURNAMENT_H_
