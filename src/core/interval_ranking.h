// Interval-based ranking refinement (the paper's Section 7 future-work
// optimisation, implemented).
//
// Reference-based sorting orders candidates by their estimated means against
// the shared reference r and only *corrects* the order where a direct
// comparison succeeds. The future-work idea inverts this: keep buying
// judgments of the candidate-vs-reference pairs themselves -- even though
// each pair's own COMP already concluded -- until the candidates'
// confidence intervals around mu_{o,r} become pairwise disjoint where it
// matters; disjoint intervals certify an order *without any direct
// candidate-vs-candidate comparison*, because mu_{o,r} is monotone in s(o)
// for the common reference.
//
// RefineByIntervals spends an extra refinement budget greedily on the most
// blocking overlap (the adjacent pair with the widest interval) until the
// requested prefix is certified or the budget runs out.

#ifndef CROWDTOPK_CORE_INTERVAL_RANKING_H_
#define CROWDTOPK_CORE_INTERVAL_RANKING_H_

#include <cstdint>
#include <vector>

#include "crowd/platform.h"
#include "crowd/types.h"
#include "judgment/cache.h"

namespace crowdtopk::core {

using crowd::ItemId;

struct IntervalRankingResult {
  // Candidates ordered best-first by the refined estimated means.
  std::vector<ItemId> ranked;
  // Extra microtasks spent by the refinement.
  int64_t refinement_cost = 0;
  // Number of adjacent pairs of `ranked` whose intervals are disjoint
  // (certified at the pairwise confidence level); |ranked| - 1 = fully
  // certified chain.
  int64_t certified_adjacent_pairs = 0;
  // True iff every adjacent pair is certified.
  bool fully_certified = false;
};

// Refines the ranking of `candidates` (each of which should already hold
// judgments against `reference` in `cache`; unsampled candidates are given
// a cold start first). Buys at most `refinement_budget` extra microtasks,
// one batch at a time, always for the widest-interval endpoint of the most
// overlapping adjacent pair. Latency: one platform round per purchased
// batch (the refinement is inherently adaptive/sequential).
IntervalRankingResult RefineByIntervals(const std::vector<ItemId>& candidates,
                                        ItemId reference,
                                        int64_t refinement_budget,
                                        judgment::ComparisonCache* cache,
                                        crowd::CrowdPlatform* platform);

}  // namespace crowdtopk::core

#endif  // CROWDTOPK_CORE_INTERVAL_RANKING_H_
