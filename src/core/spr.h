// The Select-Partition-Rank (SPR) framework (Section 5, Algorithm 2).
//
// SPR answers a crowdsourced top-k query by (1) selecting a reference item
// that lies in the sweet spot {o*_k ... o*_ck} with high probability
// (Algorithm 3: m sample-group tournaments + median of maxima, with (x, m)
// solved from optimization problem (2) -- select_reference.h),
// (2) partitioning all items against the reference with incremental
// confidence-aware comparisons and optional reference changing
// (Algorithm 4 -- partition.h), and (3) ranking the surviving candidates by
// reference-based sorting (Thurstone order + confirming bubble passes --
// sorting.h); when more than k candidates survive partitioning, Algorithm 2
// recurses on the winner set. All judgments flow through a ComparisonCache
// so nothing is ever purchased twice (Section 5.3).
//
// Guarantees reproduced here: expected precision at least (1 - alpha) / c
// (Section 5.4, SprPrecisionLowerBound below); the infimum cost bound SPR is
// benchmarked against is Lemmas 1/3 (infimum.h). Under tracing
// (docs/OBSERVABILITY.md) a run decomposes into the phases
// spr/{select,partition,rank}.

#ifndef CROWDTOPK_CORE_SPR_H_
#define CROWDTOPK_CORE_SPR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/topk_algorithm.h"
#include "judgment/cache.h"
#include "judgment/comparison.h"

namespace crowdtopk::core {

struct SprOptions {
  // Microtask-level parameters (alpha, B, I, eta, estimator).
  judgment::ComparisonOptions comparison;
  // Sweet-spot width c > 1 (Table 6 default 1.5).
  double sweet_spot_c = 1.5;
  // Maximum number of reference changes in the partition phase (Table 4
  // shows a shallow optimum around 2-4; 0 disables changing).
  int64_t max_reference_changes = 4;
  // Comparison budget of the reference-selection phase, as a fraction of N
  // (problem (2) allows O(N) comparisons).
  double selection_budget_fraction = 1.0;
  // Per-pair budget multiplier for selection comparisons, in units of the
  // cold-start workload I. Selection errors only affect efficiency, never
  // correctness (Section 5.4), so selection runs its comparisons under a
  // drastically reduced budget (default: exactly one cold-start batch per
  // pair, ties resolved by the sample mean); without this, the median-of-
  // maxima comparisons -- top items pitted against each other -- would
  // dominate the whole query's cost.
  int64_t selection_budget_per_pair_batches = 1;
};

class Spr : public TopKAlgorithm {
 public:
  explicit Spr(SprOptions options) : options_(std::move(options)) {}

  std::string name() const override { return "SPR"; }

  TopKResult Run(crowd::CrowdPlatform* platform, int64_t k) override;

  // Runs SPR over an explicit item subset (used by the recursion and by
  // HybridSPR). Returns the ranked top-min(k, |items|).
  std::vector<ItemId> RunOnItems(const std::vector<ItemId>& items, int64_t k,
                                 judgment::ComparisonCache* cache,
                                 crowd::CrowdPlatform* platform) const;

  const SprOptions& options() const { return options_; }

 private:
  SprOptions options_;
};

// Section 5.4: lower bound on SPR's expected precision, (1 - alpha) / c.
double SprPrecisionLowerBound(double alpha, double c);

}  // namespace crowdtopk::core

#endif  // CROWDTOPK_CORE_SPR_H_
