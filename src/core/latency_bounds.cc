#include "core/latency_bounds.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace crowdtopk::core {

LatencyBounds ComputeLatencyBounds(int64_t n, int64_t k,
                                   const judgment::ComparisonOptions& options,
                                   int64_t x, int64_t m) {
  CROWDTOPK_CHECK_GE(n, 2);
  CROWDTOPK_CHECK(k >= 1 && k <= n);
  CROWDTOPK_CHECK_GE(x, 1);
  CROWDTOPK_CHECK_GE(m, 1);
  const double rounds_per_comparison = std::ceil(
      static_cast<double>(options.budget) /
      static_cast<double>(options.batch_size));
  const double log_n = std::log2(static_cast<double>(n));
  const double log_k = std::max(1.0, std::log2(static_cast<double>(k)));
  const double log_log_n = std::max(1.0, std::log2(std::max(2.0, log_n)));

  LatencyBounds bounds;
  bounds.tournament_tree =
      rounds_per_comparison * (log_n + static_cast<double>(k) * log_log_n);
  bounds.heap_sort =
      rounds_per_comparison *
      (log_k * log_k + static_cast<double>(n - k) * log_k);
  bounds.quick_select = rounds_per_comparison * log_n;
  bounds.spr = rounds_per_comparison *
               (std::max(1.0, std::log2(static_cast<double>(x))) +
                std::max(1.0, std::log2(static_cast<double>(m))));
  return bounds;
}

}  // namespace crowdtopk::core
