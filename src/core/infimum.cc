#include "core/infimum.h"

#include <algorithm>
#include <cmath>

#include "crowd/platform.h"
#include "stats/student_t.h"
#include "util/check.h"

namespace crowdtopk::core {

namespace {

// Mean workload (and mean round count) of COMP(a, b) over `repetitions`
// simulated runs.
void MeanWorkload(const data::Dataset& dataset, crowd::ItemId a,
                  crowd::ItemId b, const judgment::ComparisonOptions& options,
                  stats::TCriticalCache* t_cache,
                  crowd::CrowdPlatform* platform, int64_t repetitions,
                  double* mean_workload, double* mean_rounds) {
  (void)dataset;
  double workload_total = 0.0;
  double rounds_total = 0.0;
  for (int64_t rep = 0; rep < repetitions; ++rep) {
    judgment::ComparisonSession session(a, b, &options, t_cache);
    int64_t local_rounds = 0;
    while (!session.Finished()) {
      session.Step(platform, options.batch_size);
      ++local_rounds;
    }
    workload_total += static_cast<double>(session.workload());
    rounds_total += static_cast<double>(local_rounds);
  }
  *mean_workload = workload_total / static_cast<double>(repetitions);
  *mean_rounds = rounds_total / static_cast<double>(repetitions);
}

}  // namespace

InfimumEstimate EstimateInfimumWithReference(
    const data::Dataset& dataset, int64_t k, int64_t ell,
    const judgment::ComparisonOptions& options, uint64_t seed,
    int64_t repetitions) {
  const int64_t n = dataset.num_items();
  CROWDTOPK_CHECK(k >= 1 && k <= n);
  CROWDTOPK_CHECK(ell >= k && ell <= n);
  CROWDTOPK_CHECK_GE(repetitions, 1);

  const std::vector<crowd::ItemId>& order = dataset.TrueOrder();
  stats::TCriticalCache t_cache(judgment::EffectiveAlpha(options));
  crowd::CrowdPlatform platform(&dataset, seed);

  InfimumEstimate estimate;
  double max_partition_rounds = 0.0;
  double max_sort_rounds = 0.0;

  // (i) Adjacent confirmations within the true top-k.
  for (int64_t j = 0; j + 1 < k; ++j) {
    double workload = 0.0;
    double rounds = 0.0;
    MeanWorkload(dataset, order[j], order[j + 1], options, &t_cache,
                 &platform, repetitions, &workload, &rounds);
    estimate.tmc += workload;
    max_sort_rounds = std::max(max_sort_rounds, rounds);
  }
  // (ii) o*_k beats o*_j for k < j <= ell.
  for (int64_t j = k; j < ell; ++j) {
    double workload = 0.0;
    double rounds = 0.0;
    MeanWorkload(dataset, order[j], order[k - 1], options, &t_cache,
                 &platform, repetitions, &workload, &rounds);
    estimate.tmc += workload;
    max_partition_rounds = std::max(max_partition_rounds, rounds);
  }
  // (iii) o*_ell beats o*_j for j > ell.
  for (int64_t j = ell; j < n; ++j) {
    double workload = 0.0;
    double rounds = 0.0;
    MeanWorkload(dataset, order[j], order[ell - 1], options, &t_cache,
                 &platform, repetitions, &workload, &rounds);
    estimate.tmc += workload;
    max_partition_rounds = std::max(max_partition_rounds, rounds);
  }

  // Best case: one fully parallel partition wave plus one parallel
  // confirmation wave over the already-sorted top-k.
  estimate.rounds = max_partition_rounds + max_sort_rounds;
  return estimate;
}

InfimumEstimate EstimateInfimum(const data::Dataset& dataset, int64_t k,
                                const judgment::ComparisonOptions& options,
                                uint64_t seed, int64_t repetitions) {
  return EstimateInfimumWithReference(dataset, k, k, options, seed,
                                      repetitions);
}

}  // namespace crowdtopk::core
