#include "core/interval_ranking.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace crowdtopk::core {

namespace {

struct Interval {
  ItemId item = -1;
  double mean = 0.0;
  double half_width = std::numeric_limits<double>::infinity();
  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
};

Interval ComputeInterval(ItemId o, ItemId reference,
                         judgment::ComparisonCache* cache) {
  Interval interval;
  interval.item = o;
  const int64_t n = cache->Workload(o, reference);
  if (n < 2) return interval;
  interval.mean = cache->EstimatedMean(o, reference);
  const double sd = cache->EstimatedStdDev(o, reference);
  interval.half_width =
      cache->t_cache()->Get(n - 1) * sd / std::sqrt(static_cast<double>(n));
  return interval;
}

}  // namespace

IntervalRankingResult RefineByIntervals(const std::vector<ItemId>& candidates,
                                        ItemId reference,
                                        int64_t refinement_budget,
                                        judgment::ComparisonCache* cache,
                                        crowd::CrowdPlatform* platform) {
  CROWDTOPK_CHECK_GE(refinement_budget, 0);
  IntervalRankingResult result;
  if (candidates.empty()) {
    result.fully_certified = true;
    return result;
  }
  const int64_t batch = cache->options().batch_size;
  const int64_t cost_before = platform->total_microtasks();

  // Cold-start any candidate that was never compared to the reference.
  for (ItemId o : candidates) {
    CROWDTOPK_CHECK_NE(o, reference);
    auto* session = cache->GetSession(o, reference);
    if (session->workload() == 0 && !session->Finished()) {
      session->Step(platform, batch);
      platform->NextRound();
    }
  }

  std::vector<Interval> intervals;
  intervals.reserve(candidates.size());
  for (ItemId o : candidates) {
    intervals.push_back(ComputeInterval(o, reference, cache));
  }

  int64_t spent = platform->total_microtasks() - cost_before;
  while (true) {
    // Order by mean, best first.
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) {
                if (a.mean != b.mean) return a.mean > b.mean;
                return a.item < b.item;
              });
    // Find the most-overlapping adjacent pair.
    double worst_overlap = 0.0;
    size_t worst_index = intervals.size();
    int64_t certified = 0;
    for (size_t p = 0; p + 1 < intervals.size(); ++p) {
      const double overlap = intervals[p + 1].hi() - intervals[p].lo();
      if (overlap <= 0.0) {
        ++certified;
      } else if (overlap > worst_overlap) {
        worst_overlap = overlap;
        worst_index = p;
      }
    }
    result.certified_adjacent_pairs = certified;
    if (worst_index == intervals.size()) {
      result.fully_certified = true;
      break;
    }
    if (spent >= refinement_budget) break;

    // Tighten the wider endpoint of the blocking pair.
    Interval& target =
        intervals[worst_index].half_width >= intervals[worst_index + 1].half_width
            ? intervals[worst_index]
            : intervals[worst_index + 1];
    auto* session = cache->GetSession(target.item, reference);
    const int64_t to_buy =
        std::min(batch, refinement_budget - spent);
    session->RefineWithExtraSamples(platform, to_buy);
    platform->NextRound();
    spent += to_buy;
    target = ComputeInterval(target.item, reference, cache);
  }

  result.refinement_cost = platform->total_microtasks() - cost_before;
  result.ranked.reserve(intervals.size());
  for (const Interval& interval : intervals) {
    result.ranked.push_back(interval.item);
  }
  return result;
}

}  // namespace crowdtopk::core
