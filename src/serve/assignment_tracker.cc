#include "serve/assignment_tracker.h"

#include <tuple>

#include "util/check.h"

namespace crowdtopk::serve {

AssignmentTracker::AssignmentTracker(int64_t max_attempts)
    : max_attempts_(max_attempts) {
  CROWDTOPK_CHECK_GE(max_attempts, 1);
}

void AssignmentTracker::Enqueue(const Assignment& assignment) {
  CROWDTOPK_CHECK_EQ(assignment.attempt, 0);
  pending_[assignment.query_id].push_back(assignment);
  ++stats_.enqueued;
}

bool AssignmentTracker::HasPending() const {
  for (const auto& [query, fifo] : pending_) {
    if (!fifo.empty()) return true;
  }
  return false;
}

int64_t AssignmentTracker::pending_count() const {
  int64_t count = 0;
  for (const auto& [query, fifo] : pending_) {
    count += static_cast<int64_t>(fifo.size());
  }
  return count;
}

std::vector<Assignment> AssignmentTracker::TakeWave(int64_t rotation,
                                                    int64_t capacity,
                                                    int64_t per_pair_cap) {
  CROWDTOPK_CHECK_GE(per_pair_cap, 1);
  std::vector<Assignment> wave;
  if (capacity <= 0) return wave;

  std::vector<int64_t> queries;
  queries.reserve(pending_.size());
  for (const auto& [query, fifo] : pending_) {
    if (!fifo.empty()) queries.push_back(query);
  }
  if (queries.empty()) return wave;

  // (query, i, j) -> assignments taken this wave; enforces the eta cap.
  std::map<std::tuple<int64_t, crowd::ItemId, crowd::ItemId>, int64_t> taken;
  const int64_t start =
      rotation % static_cast<int64_t>(queries.size());
  bool progress = true;
  while (static_cast<int64_t>(wave.size()) < capacity && progress) {
    progress = false;
    for (size_t s = 0;
         s < queries.size() && static_cast<int64_t>(wave.size()) < capacity;
         ++s) {
      const int64_t query =
          queries[(static_cast<size_t>(start) + s) % queries.size()];
      std::deque<Assignment>& fifo = pending_[query];
      if (fifo.empty()) continue;
      const Assignment& head = fifo.front();
      auto& pair_count = taken[{head.query_id, head.item_i, head.item_j}];
      // The head's pair already has eta tasks in flight this round; the
      // query sits out this pass (its FIFO order must be preserved).
      if (pair_count >= per_pair_cap) continue;
      ++pair_count;
      wave.push_back(head);
      fifo.pop_front();
      progress = true;
    }
  }
  stats_.scheduled += static_cast<int64_t>(wave.size());
  return wave;
}

AssignmentTracker::Resolution AssignmentTracker::Resolve(
    const Assignment& assignment, bool expired) {
  if (!expired) {
    ++stats_.completed;
    return Resolution::kCompleted;
  }
  ++stats_.expired;
  if (assignment.attempt + 1 >= max_attempts_) {
    ++stats_.failed;
    return Resolution::kFailed;
  }
  Assignment retry = assignment;
  ++retry.attempt;
  // Retries jump the queue so a straggling microtask cannot be pushed back
  // indefinitely by fresh purchases from its own query.
  pending_[retry.query_id].push_front(retry);
  ++stats_.requeued;
  return Resolution::kRequeued;
}

}  // namespace crowdtopk::serve
