// AssignmentTracker: straggler-tolerant bookkeeping of outsourced microtasks.
//
// Every microtask a query purchases through the serving layer becomes one
// *assignment* that must be worked off by the shared simulated crowd. Crowd
// workers are slow and unreliable (Hui & Berberich, PAPERS.md: highly
// variable completion times and abandonment), so an assignment handed to a
// worker may expire — the worker abandons it or blows the round deadline —
// in which case the tracker requeues it for the next round with a bumped
// attempt counter. Retries are bounded: an assignment that expires
// `max_attempts` times is declared permanently failed, which the scheduler
// surfaces to the owning query as util::Status (kResourceExhausted).
//
// The tracker keeps one FIFO of pending assignments per query and selects
// each round's wave with a rotating round-robin over the queries, so no
// query starves while another floods the platform. Selection is a pure
// function of the tracker state and the rotation index — no clocks, no
// thread identity — which is what keeps the whole serving layer bit-
// deterministic. Thread safety is the caller's job: the BatchScheduler only
// touches the tracker under its own mutex.

#ifndef CROWDTOPK_SERVE_ASSIGNMENT_TRACKER_H_
#define CROWDTOPK_SERVE_ASSIGNMENT_TRACKER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "crowd/types.h"

namespace crowdtopk::serve {

// Identity and state of one outsourced microtask.
struct Assignment {
  int64_t query_id = 0;
  int64_t seed_stream = 0;  // latency-stream key (defaults to query_id)
  int64_t request_seq = 0;  // per-query purchase sequence number
  int64_t task_index = 0;   // unit index within that purchase
  crowd::ItemId item_i = 0;
  crowd::ItemId item_j = -1;  // -1 for graded single-item tasks
  int64_t attempt = 0;        // 0 on first dispatch, +1 per requeue
};

// Lifetime counters over all assignments the tracker has seen.
struct AssignmentStats {
  int64_t enqueued = 0;   // distinct microtasks registered
  int64_t scheduled = 0;  // dispatch attempts handed to the crowd
  int64_t completed = 0;  // attempts that came back with a judgment
  int64_t expired = 0;    // attempts abandoned or past the deadline
  int64_t requeued = 0;   // expired attempts put back for retry
  int64_t failed = 0;     // microtasks dropped after max_attempts expiries
};

class AssignmentTracker {
 public:
  // An assignment is dispatched at most `max_attempts` times (>= 1).
  explicit AssignmentTracker(int64_t max_attempts);

  // Registers a fresh microtask (attempt 0) at the back of its query's FIFO.
  void Enqueue(const Assignment& assignment);

  bool HasPending() const;
  int64_t pending_count() const;

  // Selects the next round's wave: at most `capacity` assignments in total
  // and at most `per_pair_cap` for any one (query, pair) — the paper's
  // per-pair batch bound eta (Section 5.5). Queries are served one
  // assignment at a time in ascending-id order starting from `rotation`
  // (pass the global round number), so saturating queries interleave
  // fairly. Selected assignments leave the pending FIFOs; the caller must
  // Resolve() each of them afterwards.
  std::vector<Assignment> TakeWave(int64_t rotation, int64_t capacity,
                                   int64_t per_pair_cap);

  enum class Resolution {
    kCompleted,  // judgment arrived in time
    kRequeued,   // expired; put back at the front of its query's FIFO
    kFailed,     // expired with retries exhausted; dropped for good
  };

  // Reports the simulated outcome of one assignment taken by TakeWave.
  Resolution Resolve(const Assignment& assignment, bool expired);

  const AssignmentStats& stats() const { return stats_; }
  int64_t max_attempts() const { return max_attempts_; }

 private:
  int64_t max_attempts_;
  // query id -> FIFO of pending assignments. Ordered map: wave selection
  // iterates queries in ascending id, independent of insertion order.
  std::map<int64_t, std::deque<Assignment>> pending_;
  AssignmentStats stats_;
};

}  // namespace crowdtopk::serve

#endif  // CROWDTOPK_SERVE_ASSIGNMENT_TRACKER_H_
