#include "serve/async_platform.h"

#include "util/check.h"

namespace crowdtopk::serve {

AsyncPlatform::AsyncPlatform(const crowd::JudgmentOracle* oracle,
                             uint64_t seed, BatchScheduler* scheduler,
                             int64_t query_id)
    : crowd::CrowdPlatform(oracle, seed),
      scheduler_(scheduler),
      query_id_(query_id) {
  CROWDTOPK_CHECK(scheduler != nullptr);
}

void AsyncPlatform::CollectPreferences(crowd::ItemId i, crowd::ItemId j,
                                       int64_t count,
                                       std::vector<double>* out) {
  crowd::CrowdPlatform::CollectPreferences(i, j, count, out);
  scheduler_->PostPurchase(query_id_, i, j, count);
}

void AsyncPlatform::CollectBinaryVotes(crowd::ItemId i, crowd::ItemId j,
                                       int64_t count,
                                       std::vector<double>* out) {
  crowd::CrowdPlatform::CollectBinaryVotes(i, j, count, out);
  scheduler_->PostPurchase(query_id_, i, j, count);
}

void AsyncPlatform::CollectGrades(crowd::ItemId i, int64_t count,
                                  std::vector<double>* out) {
  crowd::CrowdPlatform::CollectGrades(i, count, out);
  scheduler_->PostPurchase(query_id_, i, /*j=*/-1, count);
}

void AsyncPlatform::NextRound() {
  crowd::CrowdPlatform::NextRound();
  scheduler_->Barrier(query_id_, 1);
}

void AsyncPlatform::AccountRounds(int64_t n) {
  crowd::CrowdPlatform::AccountRounds(n);
  if (n > 0) scheduler_->Barrier(query_id_, n);
}

void AsyncPlatform::Drain() { scheduler_->Barrier(query_id_, 0); }

}  // namespace crowdtopk::serve
