#include "serve/arrival.h"

#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace crowdtopk::serve {
namespace {

// Salt separating the arrival-trace stream from the judgment and latency
// streams derived elsewhere from the same master seed.
constexpr uint64_t kArrivalStream = 0x6172726976616c01ULL;

}  // namespace

std::vector<double> PoissonArrivals(int64_t n, double rate_per_second,
                                    uint64_t seed) {
  CROWDTOPK_CHECK_GE(n, 0);
  CROWDTOPK_CHECK(rate_per_second > 0.0);
  util::Rng rng(util::SplitSeed(seed, kArrivalStream));
  std::vector<double> arrivals;
  arrivals.reserve(n);
  double t = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    double u = rng.Uniform();
    while (u <= 0.0) u = rng.Uniform();
    t += -std::log(u) / rate_per_second;
    arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace crowdtopk::serve
