// BatchScheduler: shared-capacity round execution for concurrent queries.
//
// The paper's latency model runs one query against a private crowd: each
// batch round, every undecided pair advances by up to eta microtasks in
// parallel (Section 5.5). The serving layer generalises this to many
// queries competing for one crowd of W worker slots per round. Query driver
// threads post purchases (PostPurchase) and park at round boundaries
// (Barrier); the scheduler — driven by the QueryService thread — waits until
// every in-flight driver is parked or finished (quiescence), then executes
// one *global* round: it draws a wave of at most W assignments from the
// AssignmentTracker (eta per pair, round-robin across queries), simulates
// each worker's pickup/work latency and abandonment, requeues expired
// assignments, advances the simulated clock, and unparks the queries whose
// barrier condition is met.
//
// Determinism contract (matches src/exec): the entire simulation is a pure
// function of (options, seed, the queries' own purchase streams). Worker
// latencies are derived per (query, request, task, attempt) via chained
// util::SplitSeed — never from a shared draw-order-dependent stream — so
// the per-round wave simulation can fan out on an exec::ThreadPool with any
// number of threads and still produce bit-identical reports. The quiescence
// barrier removes the remaining source of nondeterminism: global rounds
// only close when no driver is mutating its query state, so the wave
// content never depends on OS scheduling.
//
// An assignment that expires max_attempts times is dropped and the owning
// query is marked failed (util::Status kResourceExhausted); the query still
// runs to completion — its judgments were delivered at purchase time — but
// the service reports the failure instead of the result.

#ifndef CROWDTOPK_SERVE_BATCH_SCHEDULER_H_
#define CROWDTOPK_SERVE_BATCH_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "crowd/types.h"
#include "exec/thread_pool.h"
#include "serve/assignment_tracker.h"
#include "util/status.h"

namespace crowdtopk::serve {

struct ScheduleOptions {
  // W: shared crowd worker slots per global round.
  int64_t crowd_workers = 100;
  // eta: per-(query, pair) microtask cap per round (Section 5.5).
  int64_t per_pair_batch = 30;
  // Worker latency model, mirroring crowd::SimulatorOptions (Appendix B:
  // ~11 s of work per question).
  double mean_pickup_seconds = 4.0;
  double mean_task_seconds = 11.0;
  double task_time_sigma = 0.35;
  // Probability a worker silently abandons an assignment.
  double abandon_probability = 0.03;
  // Probability an assignment lands on a no-show worker (fault-injection
  // layer, src/fault: fault::NoShowProbability): the worker accepts but
  // never submits, so the assignment always expires at the round deadline.
  // Distinct from abandonment, which still draws pickup/work latency and
  // may beat the deadline.
  double no_show_probability = 0.0;
  // Assignment deadline within a round: an assignment whose worker has not
  // submitted by then is declared expired and requeued. Also the round's
  // duration whenever at least one assignment expired (the barrier waits
  // out the deadline before giving up on stragglers).
  double deadline_seconds = 60.0;
  // Dispatch attempts per microtask before permanent failure.
  int64_t max_attempts = 4;
};

// Per-query serving statistics, readable once the query finished.
struct QueryServeStats {
  int64_t admitted_round = 0;
  double admitted_seconds = 0.0;
  int64_t finished_round = 0;
  double finished_seconds = 0.0;
  int64_t expired_assignments = 0;
  int64_t requeued_assignments = 0;
  int64_t failed_assignments = 0;
  util::Status status;  // first permanent assignment failure, if any
};

class BatchScheduler {
 public:
  // `pool` may be nullptr (serial wave simulation); if non-null it must
  // outlive the scheduler. `seed` drives worker latencies only — judgment
  // values belong to the queries' own platforms.
  BatchScheduler(const ScheduleOptions& options, uint64_t seed,
                 exec::ThreadPool* pool);

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  // ----- service-thread interface -------------------------------------

  // Registers query `query_id` and counts its driver as running. Call
  // before launching the driver thread. `seed_stream` keys the query's
  // worker-latency stream (QueryRequest::seed_stream; pass the query id
  // for the classic local behaviour — the default keeps old callers
  // byte-identical).
  void AdmitQuery(int64_t query_id, int64_t seed_stream = -1);

  // Blocks until every admitted driver is parked or finished.
  void WaitQuiescent();

  // True while some admitted, unfinished query is parked (i.e. a round must
  // run for the system to make progress). Call only when quiescent.
  bool AnyParked() const;

  // Executes one global round. Call only when quiescent.
  void ExecuteRound();

  // Fast-forwards the simulated clock to `seconds` (only forward; used to
  // idle until the next arrival). Call only when quiescent.
  void AdvanceTimeTo(double seconds);

  // Returns the ids of queries that finished since the last call.
  std::vector<int64_t> DrainFinished();

  double now_seconds() const;
  int64_t round() const;
  QueryServeStats QueryStats(int64_t query_id) const;
  AssignmentStats assignment_stats() const;

  // ----- driver-thread interface (via AsyncPlatform) ------------------

  // Registers `count` purchased microtasks for pair (i, j) of `query_id`
  // (j = -1 for graded tasks). Does not block.
  void PostPurchase(int64_t query_id, crowd::ItemId i, crowd::ItemId j,
                    int64_t count);

  // Parks the calling driver until all of its posted microtasks have been
  // worked off AND at least `rounds` further global rounds have closed.
  // `rounds` = 1 for NextRound, n for AccountRounds(n), 0 to drain pending
  // work without charging a round. Returns immediately when the condition
  // already holds.
  void Barrier(int64_t query_id, int64_t rounds);

  // Marks the calling driver finished; stamps completion round/time.
  void FinishQuery(int64_t query_id);

 private:
  struct QueryState {
    int64_t seed_stream = 0;  // latency-stream key (global id under a router)
    bool parked = false;
    bool finished = false;
    int64_t posted = 0;     // microtasks registered via PostPurchase
    int64_t resolved = 0;   // microtasks completed or permanently failed
    int64_t barrier_round = 0;  // unpark no earlier than this global round
    int64_t next_request_seq = 0;
    QueryServeStats stats;
  };

  // One simulated worker attempt; pure function of the assignment identity.
  struct AttemptOutcome {
    bool expired = false;
    double latency_seconds = 0.0;
  };
  AttemptOutcome SimulateAttempt(const Assignment& assignment) const;

  bool BarrierSatisfied(const QueryState& q) const {
    return q.resolved >= q.posted && round_ >= q.barrier_round;
  }

  ScheduleOptions options_;
  uint64_t seed_;
  exec::ThreadPool* pool_;
  double lognormal_mu_;

  mutable std::mutex mutex_;
  std::condition_variable quiescent_;  // service waits: running_ == 0
  std::condition_variable unparked_;   // drivers wait: !state.parked
  std::map<int64_t, QueryState> queries_;
  AssignmentTracker tracker_;
  int64_t running_ = 0;  // admitted drivers not parked and not finished
  int64_t round_ = 0;
  double now_seconds_ = 0.0;
  std::vector<int64_t> newly_finished_;
};

}  // namespace crowdtopk::serve

#endif  // CROWDTOPK_SERVE_BATCH_SCHEDULER_H_
