#include "serve/query_service.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <deque>
#include <thread>
#include <unordered_map>

#include "cache/cache_client.h"
#include "persist/format.h"
#include "metrics/ranking_metrics.h"
#include "metrics/trace_aggregate.h"
#include "serve/async_platform.h"
#include "telemetry/export.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/random.h"

namespace crowdtopk::serve {
namespace {

// Salt separating the per-query judgment streams from the latency and
// arrival streams derived from the same master seed.
constexpr uint64_t kJudgmentStream = 0x6a7564676d656e74ULL;

std::string FileToken(const std::string& name) {
  std::string token;
  for (char c : name) {
    token += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(std::tolower(c))
                 : '_';
  }
  return token.empty() ? "algo" : token;
}

// Everything that shapes the replay's outcomes goes into the persist
// manifest fingerprint: resuming under a different configuration would
// re-execute a *different* deterministic function and silently diverge
// from the durable records. jobs and trace_dir are excluded on purpose —
// they never change results, and resuming with a different worker count
// is an explicitly supported (and tested) case.
uint64_t ConfigFingerprint(const ServeOptions& options,
                           const std::vector<QueryRequest>& requests,
                           const std::vector<double>& arrivals) {
  persist::Encoder enc;
  enc.PutU64(options.seed);
  enc.PutI64(options.schedule.crowd_workers);
  enc.PutI64(options.schedule.per_pair_batch);
  enc.PutDouble(options.schedule.mean_pickup_seconds);
  enc.PutDouble(options.schedule.mean_task_seconds);
  enc.PutDouble(options.schedule.task_time_sigma);
  enc.PutDouble(options.schedule.abandon_probability);
  enc.PutDouble(options.schedule.no_show_probability);
  enc.PutDouble(options.schedule.deadline_seconds);
  enc.PutI64(options.schedule.max_attempts);
  enc.PutI64(options.max_inflight);
  enc.PutI64(options.max_queue);
  enc.PutU8(options.cache.enabled ? 1 : 0);
  enc.PutI64(options.cache.capacity);
  enc.PutU8(options.cache.transitivity ? 1 : 0);
  enc.PutU32(static_cast<uint32_t>(options.warm_cache.size()));
  for (const cache::ExportedEntry& entry : options.warm_cache) {
    persist::EncodeCacheEntry(entry, &enc);
  }
  enc.PutU32(static_cast<uint32_t>(requests.size()));
  for (size_t i = 0; i < requests.size(); ++i) {
    enc.PutI64(requests[i].k);
    enc.PutI64(requests[i].cache_universe);
    enc.PutI64(requests[i].seed_stream);
    enc.PutString(requests[i].algorithm->name());
    enc.PutU32(static_cast<uint32_t>(requests[i].cache_item_ids.size()));
    for (const crowd::ItemId id : requests[i].cache_item_ids) enc.PutI32(id);
    enc.PutDouble(arrivals[i]);
  }
  return util::Fnv1a64(enc.buffer());
}

}  // namespace

QueryService::QueryService(const ServeOptions& options)
    : options_(options),
      judgment_seed_(util::SplitSeed(options.seed, kJudgmentStream)) {
  CROWDTOPK_CHECK_GE(options.max_inflight, 1);
  CROWDTOPK_CHECK_GE(options.jobs, 0);
}

std::vector<QueryOutcome> QueryService::Replay(
    const std::vector<QueryRequest>& requests,
    const std::vector<double>& arrivals) {
  CROWDTOPK_CHECK(!replayed_);
  replayed_ = true;
  const int64_t n = static_cast<int64_t>(requests.size());
  CROWDTOPK_CHECK_EQ(n, static_cast<int64_t>(arrivals.size()));
  for (int64_t i = 0; i < n; ++i) {
    CROWDTOPK_CHECK(requests[i].algorithm != nullptr);
    CROWDTOPK_CHECK(requests[i].dataset != nullptr);
    CROWDTOPK_CHECK_GE(requests[i].k, 1);
    // One algorithm instance serves many concurrent queries.
    CROWDTOPK_CHECK(requests[i].algorithm->concurrent_runs_safe());
    if (i > 0) CROWDTOPK_CHECK(arrivals[i - 1] <= arrivals[i]);
  }

  requests_ = &requests;
  outcomes_.assign(n, QueryOutcome());
  if (options_.jobs != 1) {
    pool_ = std::make_unique<exec::ThreadPool>(
        options_.jobs == 0 ? exec::ThreadPool::HardwareThreads()
                           : options_.jobs);
  }
  scheduler_ = std::make_unique<BatchScheduler>(options_.schedule,
                                                options_.seed, pool_.get());
  if (options_.cache.enabled) {
    // Deferred commit is mandatory under concurrent drivers: inserts apply
    // only at the quiescence barriers below, in query-id order, keeping the
    // replay bit-identical for any jobs value.
    cache::CacheOptions cache_options = options_.cache;
    cache_options.deferred_commit = true;
    cache_ = std::make_unique<cache::JudgmentCache>(cache_options);
    // Resolve cache universes: explicit request values win; otherwise one
    // universe per distinct dataset pointer, numbered past the largest
    // explicit id in first-seen request order.
    universes_.assign(n, -1);
    int64_t next_universe = 0;
    for (const QueryRequest& request : requests) {
      next_universe = std::max(next_universe, request.cache_universe + 1);
    }
    std::unordered_map<const data::Dataset*, int64_t> by_dataset;
    for (int64_t i = 0; i < n; ++i) {
      if (requests[i].cache_universe >= 0) {
        universes_[i] = requests[i].cache_universe;
        continue;
      }
      const auto [it, inserted] =
          by_dataset.try_emplace(requests[i].dataset, next_universe);
      if (inserted) ++next_universe;
      universes_[i] = it->second;
    }
    if (!options_.warm_cache.empty()) {
      cache_->RestoreEntries(options_.warm_cache);
    }
  }

  // Durable state: open (or recover) the persist directory. Failures are
  // availability-first — the replay still runs and completes, the error is
  // surfaced through persist_status() so callers can refuse to trust the
  // directory afterwards.
  if (!options_.persist.dir.empty()) {
    persist_ = std::make_unique<persist::PersistenceManager>(
        options_.persist, ConfigFingerprint(options_, requests, arrivals));
    persist_status_ = persist_->Open();
    if (!persist_status_.ok()) {
      std::fprintf(stderr,
                   "crowdtopk persist: %s; replaying without persistence\n",
                   persist_status_.ToString().c_str());
      persist_.reset();
    }
  }

  std::vector<std::thread> drivers;
  drivers.reserve(n);
  std::deque<int64_t> admission;
  int64_t next_arrival = 0;
  int64_t inflight = 0;
  int64_t done = 0;

  // Admission bookkeeping mirrored for the snapshot image (service-thread
  // only; cheap even with persistence off).
  std::vector<int64_t> inflight_ids;
  std::vector<int64_t> rejected_ids;
  std::vector<persist::CompleteRecord> completed_records;

  // Builds the durable image at the current quiescence barrier; the
  // manager fills in position, fingerprint, and segment fields.
  const auto snapshot_source = [&]() {
    persist::SnapshotData data;
    data.queued.assign(admission.begin(), admission.end());
    std::vector<int64_t> ids = inflight_ids;
    std::sort(ids.begin(), ids.end());
    for (const int64_t id : ids) {
      const QueryServeStats stats = scheduler_->QueryStats(id);
      persist::InflightDescriptor d;
      d.query_id = id;
      d.admitted_round = stats.admitted_round;
      d.expired_assignments = stats.expired_assignments;
      d.requeued_assignments = stats.requeued_assignments;
      data.inflight.push_back(d);
    }
    data.completed = completed_records;
    std::sort(data.completed.begin(), data.completed.end(),
              [](const persist::CompleteRecord& a,
                 const persist::CompleteRecord& b) {
                return a.query_id < b.query_id;
              });
    data.rejected = rejected_ids;
    std::sort(data.rejected.begin(), data.rejected.end());
    if (cache_ != nullptr) data.cache_entries = cache_->Export();
    return data;
  };

  while (done < n) {
    // Move due arrivals into the admission queue (or reject on overflow).
    const double now = scheduler_->now_seconds();
    while (next_arrival < n && arrivals[next_arrival] <= now) {
      const int64_t id = next_arrival++;
      if (options_.max_queue >= 0 && inflight >= options_.max_inflight &&
          static_cast<int64_t>(admission.size()) >= options_.max_queue) {
        QueryOutcome& o = outcomes_[id];
        o.rejected = true;
        o.reject_reason = RejectReason::kQueueFull;
        o.status = util::Status::ResourceExhausted(
            "admission queue full (max_queue=" +
            std::to_string(options_.max_queue) + ")");
        ++done;
        rejected_ids.push_back(id);
        if (persist_ != nullptr) persist_->OnReject(id);
        continue;
      }
      admission.push_back(id);
    }
    // Admit FIFO into free in-flight slots; each admitted query gets its
    // own driver thread running the unmodified synchronous algorithm.
    while (!admission.empty() && inflight < options_.max_inflight) {
      const int64_t id = admission.front();
      admission.pop_front();
      const int64_t stream = requests[id].seed_stream >= 0
                                 ? requests[id].seed_stream
                                 : id;
      scheduler_->AdmitQuery(id, stream);
      ++inflight;
      inflight_ids.push_back(id);
      if (persist_ != nullptr) persist_->OnAdmit(id);
      drivers.emplace_back([this, id] { DriverMain(id); });
    }

    scheduler_->WaitQuiescent();
    // All drivers are parked or finished here: apply this round's staged
    // cache inserts so the next round's lookups see them. The applied list
    // (query-id order) is exactly the WAL's cache-insert sequence.
    if (cache_ != nullptr) {
      std::vector<cache::ExportedEntry> applied;
      cache_->CommitPending(persist_ != nullptr ? &applied : nullptr);
      for (const cache::ExportedEntry& entry : applied) {
        persist_->OnCacheInsert(entry);
      }
    }
    std::vector<int64_t> finished = scheduler_->DrainFinished();
    if (!finished.empty()) {
      inflight -= static_cast<int64_t>(finished.size());
      done += static_cast<int64_t>(finished.size());
      // DrainFinished returns completion-callback order, which depends on
      // thread timing; everything downstream (WAL events, snapshots) wants
      // the deterministic query-id order.
      std::sort(finished.begin(), finished.end());
      for (const int64_t id : finished) {
        inflight_ids.erase(
            std::find(inflight_ids.begin(), inflight_ids.end(), id));
        persist::CompleteRecord record;
        record.query_id = id;
        record.status_code =
            static_cast<uint32_t>(scheduler_->QueryStats(id).status.code());
        const QueryOutcome& o = outcomes_[id];
        record.total_microtasks = o.total_microtasks;
        record.rounds_private = o.rounds_private;
        record.precision_at_k = o.precision_at_k;
        record.items.assign(o.items.begin(), o.items.end());
        completed_records.push_back(record);
        if (persist_ != nullptr) persist_->OnComplete(record);
      }
    }
    // Quiescence barrier: seal this iteration's events. During catch-up
    // this verifies the re-derived digest against the durable record;
    // live, it appends one WAL batch (and maybe a snapshot).
    if (persist_ != nullptr) {
      const bool was_catchup = persist_->in_catchup();
      const util::Status barrier_status =
          persist_->OnBarrier(scheduler_->round(), scheduler_->now_seconds(),
                              next_arrival, done, snapshot_source);
      if (!barrier_status.ok() && persist_status_.ok()) {
        persist_status_ = barrier_status;
        std::fprintf(stderr, "crowdtopk persist: %s\n",
                     barrier_status.ToString().c_str());
      }
      if (was_catchup && !persist_->in_catchup()) {
        replayed_microtasks_ = scheduler_->assignment_stats().completed;
      }
    }
    if (!finished.empty()) {
      continue;  // freed slots admit waiting queries before the next round
    }
    if (scheduler_->AnyParked()) {
      scheduler_->ExecuteRound();
    } else if (next_arrival < n) {
      // Nothing in flight: idle forward to the next arrival.
      CROWDTOPK_CHECK_EQ(inflight, 0);
      scheduler_->AdvanceTimeTo(arrivals[next_arrival]);
    } else {
      CROWDTOPK_CHECK_EQ(done, n);
    }
  }
  for (std::thread& t : drivers) t.join();
  // Final barrier: fold the last round's publications into the stats, seal
  // them durably, and write the complete snapshot.
  if (cache_ != nullptr) {
    std::vector<cache::ExportedEntry> applied;
    cache_->CommitPending(persist_ != nullptr ? &applied : nullptr);
    for (const cache::ExportedEntry& entry : applied) {
      persist_->OnCacheInsert(entry);
    }
  }
  if (persist_ != nullptr) {
    const bool was_catchup = persist_->in_catchup();
    util::Status final_status =
        persist_->OnBarrier(scheduler_->round(), scheduler_->now_seconds(),
                            next_arrival, done, snapshot_source);
    if (was_catchup && !persist_->in_catchup()) {
      // The whole replay was catch-up (resume of an already-complete run).
      replayed_microtasks_ = scheduler_->assignment_stats().completed;
    }
    if (final_status.ok()) final_status = persist_->Finalize(snapshot_source);
    if (!final_status.ok() && persist_status_.ok()) {
      persist_status_ = final_status;
      std::fprintf(stderr, "crowdtopk persist: %s\n",
                   final_status.ToString().c_str());
    }
    WritePersistTrace();
  }

  for (int64_t id = 0; id < n; ++id) {
    QueryOutcome& o = outcomes_[id];
    o.query_id = id;
    o.algorithm = requests[id].algorithm->name();
    o.arrival_seconds = arrivals[id];
    if (o.rejected) {
      o.start_seconds = o.finish_seconds = arrivals[id];
      continue;
    }
    const QueryServeStats stats = scheduler_->QueryStats(id);
    o.status = stats.status;
    o.start_seconds = stats.admitted_seconds;
    o.finish_seconds = stats.finished_seconds;
    o.latency_seconds = stats.finished_seconds - arrivals[id];
    o.rounds_observed = stats.finished_round - stats.admitted_round;
    o.expired_assignments = stats.expired_assignments;
    o.requeued_assignments = stats.requeued_assignments;
  }
  assignment_stats_ = scheduler_->assignment_stats();
  makespan_seconds_ = scheduler_->now_seconds();
  total_rounds_ = scheduler_->round();
  return outcomes_;
}

cache::CacheStats QueryService::cache_stats() const {
  return cache_ == nullptr ? cache::CacheStats() : cache_->stats();
}

std::vector<cache::ExportedEntry> QueryService::ExportCache() const {
  return cache_ == nullptr ? std::vector<cache::ExportedEntry>()
                           : cache_->Export();
}

persist::PersistCounters QueryService::persist_counters() const {
  return persist_ == nullptr ? persist::PersistCounters()
                             : persist_->counters();
}

void QueryService::WritePersistTrace() const {
  telemetry::TraceRecorder recorder;
  const persist::PersistCounters& c = persist_->counters();
  const auto record = [&recorder](const char* name, int64_t value) {
    recorder.RecordCounter(name, static_cast<double>(value));
  };
  record("persist/wal_records", c.wal_records);
  record("persist/wal_bytes", c.wal_bytes);
  record("persist/wal_segments", c.wal_segments);
  record("persist/snapshots", c.snapshots);
  record("persist/snapshot_bytes", c.snapshot_bytes);
  record("persist/resumed", c.resumed);
  record("persist/snapshot_loaded", c.snapshot_loaded);
  record("persist/snapshots_skipped", c.snapshots_skipped);
  record("persist/durable_barrier", c.durable_barrier);
  record("persist/replayed_barriers", c.replayed_barriers);
  record("persist/verified_barriers", c.verified_barriers);
  record("persist/divergent_barriers", c.divergent_barriers);
  record("persist/cache_image_verified", c.cache_image_verified);
  record("persist/cache_image_divergent", c.cache_image_divergent);
  record("persist/wal_records_recovered", c.wal_records_recovered);
  record("persist/wal_records_dropped", c.wal_records_dropped);
  record("persist/wal_bytes_dropped", c.wal_bytes_dropped);
  record("persist/wal_truncated", c.wal_truncated);
  record("persist/replayed_microtasks", replayed_microtasks_);
  if (cache_ != nullptr) {
    const cache::CacheStats cs = cache_->stats();
    record("cache/restored", cs.restored);
    for (const auto& [universe, dropped] : cs.dropped_by_universe) {
      record(("cache/universe" + std::to_string(universe) + "/dropped")
                 .c_str(),
             dropped);
    }
  }
  const util::Status status = telemetry::WriteJsonlFile(
      recorder.events(), options_.persist.dir + "/persist.trace.jsonl");
  if (!status.ok()) {
    std::fprintf(stderr, "persist trace: %s\n", status.ToString().c_str());
  }
}

void QueryService::DriverMain(int64_t query_id) {
  const QueryRequest& request = (*requests_)[query_id];
  const int64_t stream =
      request.seed_stream >= 0 ? request.seed_stream : query_id;
  AsyncPlatform platform(request.dataset,
                         util::SplitSeed(judgment_seed_, stream),
                         scheduler_.get(), query_id);
  telemetry::TraceRecorder recorder;
  const bool tracing = !options_.trace_dir.empty();
  if (tracing) platform.SetRecorder(&recorder);
  std::unique_ptr<cache::CacheClient> cache_client;
  if (cache_ != nullptr) {
    cache_client = std::make_unique<cache::CacheClient>(
        cache_.get(), query_id, universes_[query_id], request.cache_item_ids);
    platform.SetCacheClient(cache_client.get());
  }

  const core::TopKResult result = request.algorithm->Run(&platform, request.k);
  // Flush trailing purchases so the query never finishes with microtasks
  // still queued at the crowd.
  platform.Drain();

  QueryOutcome& o = outcomes_[query_id];
  o.items = result.items;
  o.total_microtasks = platform.total_microtasks();
  o.rounds_private = platform.rounds();
  o.precision_at_k =
      metrics::PrecisionAtK(*request.dataset, result.items, request.k);
  if (cache_client != nullptr) {
    const cache::ClientStats& cs = cache_client->stats();
    o.cache_hits = cs.hits;
    o.cache_topups = cs.topups;
    o.cache_inferred = cs.inferred;
    o.cache_misses = cs.misses;
    o.cache_seeded_samples = cs.seeded_samples;
    if (tracing) {
      recorder.RecordCounter("cache/hits", static_cast<double>(cs.hits));
      recorder.RecordCounter("cache/topups", static_cast<double>(cs.topups));
      recorder.RecordCounter("cache/inferred",
                             static_cast<double>(cs.inferred));
      recorder.RecordCounter("cache/misses", static_cast<double>(cs.misses));
      recorder.RecordCounter("cache/seeded_samples",
                             static_cast<double>(cs.seeded_samples));
    }
  }

  if (tracing) {
    // The serve counters are stable here: the clock is frozen while this
    // driver runs, and a drained query has no assignments left in flight.
    const QueryServeStats stats = scheduler_->QueryStats(query_id);
    recorder.RecordCounter("serve/expired_assignments",
                           static_cast<double>(stats.expired_assignments));
    recorder.RecordCounter("serve/requeued_assignments",
                           static_cast<double>(stats.requeued_assignments));
    recorder.RecordCounter("serve/failed_assignments",
                           static_cast<double>(stats.failed_assignments));
    DumpQueryTrace(recorder, request, query_id);
  }
  scheduler_->FinishQuery(query_id);
}

void QueryService::DumpQueryTrace(const telemetry::TraceRecorder& recorder,
                                  const QueryRequest& request,
                                  int64_t query_id) const {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), "serve_q%05lld_",
                static_cast<long long>(query_id));
  const std::string stem = options_.trace_dir + "/" + suffix +
                           FileToken(request.algorithm->name());
  const util::Status status =
      telemetry::WriteJsonlFile(recorder.events(), stem + ".trace.jsonl");
  if (!status.ok()) {
    std::fprintf(stderr, "serve trace: %s\n", status.ToString().c_str());
    return;
  }
  metrics::PhaseTable(metrics::AggregateByPhaseRollup(recorder.events()),
                      request.algorithm->name())
      .WriteCsv(stem + ".phases.csv");
}

}  // namespace crowdtopk::serve
