#include "serve/query_service.h"

#include <cctype>
#include <cstdio>
#include <deque>
#include <thread>
#include <unordered_map>

#include "cache/cache_client.h"
#include "metrics/ranking_metrics.h"
#include "metrics/trace_aggregate.h"
#include "serve/async_platform.h"
#include "telemetry/export.h"
#include "util/check.h"
#include "util/random.h"

namespace crowdtopk::serve {
namespace {

// Salt separating the per-query judgment streams from the latency and
// arrival streams derived from the same master seed.
constexpr uint64_t kJudgmentStream = 0x6a7564676d656e74ULL;

std::string FileToken(const std::string& name) {
  std::string token;
  for (char c : name) {
    token += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(std::tolower(c))
                 : '_';
  }
  return token.empty() ? "algo" : token;
}

}  // namespace

QueryService::QueryService(const ServeOptions& options)
    : options_(options),
      judgment_seed_(util::SplitSeed(options.seed, kJudgmentStream)) {
  CROWDTOPK_CHECK_GE(options.max_inflight, 1);
  CROWDTOPK_CHECK_GE(options.jobs, 0);
}

std::vector<QueryOutcome> QueryService::Replay(
    const std::vector<QueryRequest>& requests,
    const std::vector<double>& arrivals) {
  CROWDTOPK_CHECK(!replayed_);
  replayed_ = true;
  const int64_t n = static_cast<int64_t>(requests.size());
  CROWDTOPK_CHECK_EQ(n, static_cast<int64_t>(arrivals.size()));
  for (int64_t i = 0; i < n; ++i) {
    CROWDTOPK_CHECK(requests[i].algorithm != nullptr);
    CROWDTOPK_CHECK(requests[i].dataset != nullptr);
    CROWDTOPK_CHECK_GE(requests[i].k, 1);
    // One algorithm instance serves many concurrent queries.
    CROWDTOPK_CHECK(requests[i].algorithm->concurrent_runs_safe());
    if (i > 0) CROWDTOPK_CHECK(arrivals[i - 1] <= arrivals[i]);
  }

  requests_ = &requests;
  outcomes_.assign(n, QueryOutcome());
  if (options_.jobs != 1) {
    pool_ = std::make_unique<exec::ThreadPool>(
        options_.jobs == 0 ? exec::ThreadPool::HardwareThreads()
                           : options_.jobs);
  }
  scheduler_ = std::make_unique<BatchScheduler>(options_.schedule,
                                                options_.seed, pool_.get());
  if (options_.cache.enabled) {
    // Deferred commit is mandatory under concurrent drivers: inserts apply
    // only at the quiescence barriers below, in query-id order, keeping the
    // replay bit-identical for any jobs value.
    cache::CacheOptions cache_options = options_.cache;
    cache_options.deferred_commit = true;
    cache_ = std::make_unique<cache::JudgmentCache>(cache_options);
    // Resolve cache universes: explicit request values win; otherwise one
    // universe per distinct dataset pointer, numbered past the largest
    // explicit id in first-seen request order.
    universes_.assign(n, -1);
    int64_t next_universe = 0;
    for (const QueryRequest& request : requests) {
      next_universe = std::max(next_universe, request.cache_universe + 1);
    }
    std::unordered_map<const data::Dataset*, int64_t> by_dataset;
    for (int64_t i = 0; i < n; ++i) {
      if (requests[i].cache_universe >= 0) {
        universes_[i] = requests[i].cache_universe;
        continue;
      }
      const auto [it, inserted] =
          by_dataset.try_emplace(requests[i].dataset, next_universe);
      if (inserted) ++next_universe;
      universes_[i] = it->second;
    }
  }

  std::vector<std::thread> drivers;
  drivers.reserve(n);
  std::deque<int64_t> admission;
  int64_t next_arrival = 0;
  int64_t inflight = 0;
  int64_t done = 0;

  while (done < n) {
    // Move due arrivals into the admission queue (or reject on overflow).
    const double now = scheduler_->now_seconds();
    while (next_arrival < n && arrivals[next_arrival] <= now) {
      const int64_t id = next_arrival++;
      if (options_.max_queue >= 0 && inflight >= options_.max_inflight &&
          static_cast<int64_t>(admission.size()) >= options_.max_queue) {
        QueryOutcome& o = outcomes_[id];
        o.rejected = true;
        o.status = util::Status::ResourceExhausted(
            "admission queue full (max_queue=" +
            std::to_string(options_.max_queue) + ")");
        ++done;
        continue;
      }
      admission.push_back(id);
    }
    // Admit FIFO into free in-flight slots; each admitted query gets its
    // own driver thread running the unmodified synchronous algorithm.
    while (!admission.empty() && inflight < options_.max_inflight) {
      const int64_t id = admission.front();
      admission.pop_front();
      scheduler_->AdmitQuery(id);
      ++inflight;
      drivers.emplace_back([this, id] { DriverMain(id); });
    }

    scheduler_->WaitQuiescent();
    // All drivers are parked or finished here: apply this round's staged
    // cache inserts so the next round's lookups see them.
    if (cache_ != nullptr) cache_->CommitPending();
    const std::vector<int64_t> finished = scheduler_->DrainFinished();
    if (!finished.empty()) {
      inflight -= static_cast<int64_t>(finished.size());
      done += static_cast<int64_t>(finished.size());
      continue;  // freed slots admit waiting queries before the next round
    }
    if (scheduler_->AnyParked()) {
      scheduler_->ExecuteRound();
    } else if (next_arrival < n) {
      // Nothing in flight: idle forward to the next arrival.
      CROWDTOPK_CHECK_EQ(inflight, 0);
      scheduler_->AdvanceTimeTo(arrivals[next_arrival]);
    } else {
      CROWDTOPK_CHECK_EQ(done, n);
    }
  }
  for (std::thread& t : drivers) t.join();
  // Final barrier: fold the last round's publications into the stats.
  if (cache_ != nullptr) cache_->CommitPending();

  for (int64_t id = 0; id < n; ++id) {
    QueryOutcome& o = outcomes_[id];
    o.query_id = id;
    o.algorithm = requests[id].algorithm->name();
    o.arrival_seconds = arrivals[id];
    if (o.rejected) {
      o.start_seconds = o.finish_seconds = arrivals[id];
      continue;
    }
    const QueryServeStats stats = scheduler_->QueryStats(id);
    o.status = stats.status;
    o.start_seconds = stats.admitted_seconds;
    o.finish_seconds = stats.finished_seconds;
    o.latency_seconds = stats.finished_seconds - arrivals[id];
    o.rounds_observed = stats.finished_round - stats.admitted_round;
    o.expired_assignments = stats.expired_assignments;
    o.requeued_assignments = stats.requeued_assignments;
  }
  assignment_stats_ = scheduler_->assignment_stats();
  makespan_seconds_ = scheduler_->now_seconds();
  total_rounds_ = scheduler_->round();
  return outcomes_;
}

cache::CacheStats QueryService::cache_stats() const {
  return cache_ == nullptr ? cache::CacheStats() : cache_->stats();
}

void QueryService::DriverMain(int64_t query_id) {
  const QueryRequest& request = (*requests_)[query_id];
  AsyncPlatform platform(request.dataset,
                         util::SplitSeed(judgment_seed_, query_id),
                         scheduler_.get(), query_id);
  telemetry::TraceRecorder recorder;
  const bool tracing = !options_.trace_dir.empty();
  if (tracing) platform.SetRecorder(&recorder);
  std::unique_ptr<cache::CacheClient> cache_client;
  if (cache_ != nullptr) {
    cache_client = std::make_unique<cache::CacheClient>(
        cache_.get(), query_id, universes_[query_id], request.cache_item_ids);
    platform.SetCacheClient(cache_client.get());
  }

  const core::TopKResult result = request.algorithm->Run(&platform, request.k);
  // Flush trailing purchases so the query never finishes with microtasks
  // still queued at the crowd.
  platform.Drain();

  QueryOutcome& o = outcomes_[query_id];
  o.items = result.items;
  o.total_microtasks = platform.total_microtasks();
  o.rounds_private = platform.rounds();
  o.precision_at_k =
      metrics::PrecisionAtK(*request.dataset, result.items, request.k);
  if (cache_client != nullptr) {
    const cache::ClientStats& cs = cache_client->stats();
    o.cache_hits = cs.hits;
    o.cache_topups = cs.topups;
    o.cache_inferred = cs.inferred;
    o.cache_misses = cs.misses;
    o.cache_seeded_samples = cs.seeded_samples;
    if (tracing) {
      recorder.RecordCounter("cache/hits", static_cast<double>(cs.hits));
      recorder.RecordCounter("cache/topups", static_cast<double>(cs.topups));
      recorder.RecordCounter("cache/inferred",
                             static_cast<double>(cs.inferred));
      recorder.RecordCounter("cache/misses", static_cast<double>(cs.misses));
      recorder.RecordCounter("cache/seeded_samples",
                             static_cast<double>(cs.seeded_samples));
    }
  }

  if (tracing) {
    // The serve counters are stable here: the clock is frozen while this
    // driver runs, and a drained query has no assignments left in flight.
    const QueryServeStats stats = scheduler_->QueryStats(query_id);
    recorder.RecordCounter("serve/expired_assignments",
                           static_cast<double>(stats.expired_assignments));
    recorder.RecordCounter("serve/requeued_assignments",
                           static_cast<double>(stats.requeued_assignments));
    recorder.RecordCounter("serve/failed_assignments",
                           static_cast<double>(stats.failed_assignments));
    DumpQueryTrace(recorder, request, query_id);
  }
  scheduler_->FinishQuery(query_id);
}

void QueryService::DumpQueryTrace(const telemetry::TraceRecorder& recorder,
                                  const QueryRequest& request,
                                  int64_t query_id) const {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), "serve_q%05lld_",
                static_cast<long long>(query_id));
  const std::string stem = options_.trace_dir + "/" + suffix +
                           FileToken(request.algorithm->name());
  const util::Status status =
      telemetry::WriteJsonlFile(recorder.events(), stem + ".trace.jsonl");
  if (!status.ok()) {
    std::fprintf(stderr, "serve trace: %s\n", status.ToString().c_str());
    return;
  }
  metrics::PhaseTable(metrics::AggregateByPhaseRollup(recorder.events()),
                      request.algorithm->name())
      .WriteCsv(stem + ".phases.csv");
}

}  // namespace crowdtopk::serve
