// ServeReport: deterministic aggregation of one serving replay.
//
// Throughput plus latency percentiles in both batch rounds and simulated
// seconds, over the successfully completed queries. Rendering is fully
// deterministic — fixed formats, no clocks, no locale — so two replays
// with equal (options, seed, trace) produce byte-identical reports no
// matter how many threads simulated them; the serve tests and the
// crowdtopk_serve CLI rely on that for the jobs=1 vs jobs=8 bit-identity
// check.

#ifndef CROWDTOPK_SERVE_REPORT_H_
#define CROWDTOPK_SERVE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/assignment_tracker.h"
#include "serve/query_service.h"

namespace crowdtopk::serve {

struct ServeReport {
  int64_t queries = 0;
  int64_t completed = 0;  // finished with Ok status
  int64_t failed = 0;     // finished, but an assignment failed permanently
  int64_t rejected = 0;   // bounced at admission

  double makespan_seconds = 0.0;
  int64_t total_rounds = 0;
  // Completed queries per simulated hour of makespan.
  double throughput_per_hour = 0.0;

  int64_t total_microtasks = 0;  // over all queries that ran
  double mean_queue_wait_seconds = 0.0;
  double mean_precision = 0.0;

  // Nearest-rank percentiles over completed queries.
  double p50_rounds = 0.0, p95_rounds = 0.0, p99_rounds = 0.0;
  double p50_seconds = 0.0, p95_seconds = 0.0, p99_seconds = 0.0;

  AssignmentStats assignments;
};

// Nearest-rank percentile (pct in (0, 100]) of `values`; 0 when empty.
double PercentileNearestRank(std::vector<double> values, double pct);

ServeReport BuildServeReport(const std::vector<QueryOutcome>& outcomes,
                             const AssignmentStats& assignments,
                             double makespan_seconds, int64_t total_rounds);

// Multi-line human-readable report; byte-deterministic.
std::string RenderServeReport(const ServeReport& report);

// One CSV-ish line per query (id, algo, status, timings, rounds, tmc,
// requeues, precision); byte-deterministic. Used by the CLI's per-query
// dump and by the bit-identity tests.
std::string RenderQueryTable(const std::vector<QueryOutcome>& outcomes);

// Machine-readable report: one {"record":"summary",...} line followed by
// one {"record":"query",...} line per outcome in trace order. Fixed key
// order, %.6f doubles, no locale — byte-deterministic, which is what the
// crash-recovery CI job byte-diffs and the golden-file test pins. Schema
// changes must update tests/golden/serve_report.jsonl deliberately.
std::string RenderServeReportJsonl(const ServeReport& report,
                                   const std::vector<QueryOutcome>& outcomes);

// Renders and writes atomically to `path`.
util::Status WriteServeReportJsonl(const ServeReport& report,
                                   const std::vector<QueryOutcome>& outcomes,
                                   const std::string& path);

}  // namespace crowdtopk::serve

#endif  // CROWDTOPK_SERVE_REPORT_H_
