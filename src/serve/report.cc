#include "serve/report.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "util/check.h"
#include "util/file_io.h"

namespace crowdtopk::serve {
namespace {

std::string Line(const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  return buffer;
}

// Unbounded variant for the JSONL records, whose lines outgrow Line()'s
// fixed buffer (the summary alone is ~700 bytes).
void AppendFormat(std::string* out, const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, copy);
  va_end(copy);
  CROWDTOPK_CHECK_GE(needed, 0);
  std::string line(static_cast<size_t>(needed), '\0');
  std::vsnprintf(line.data(), static_cast<size_t>(needed) + 1, format, args);
  va_end(args);
  out->append(line);
}

}  // namespace

double PercentileNearestRank(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  CROWDTOPK_CHECK(pct > 0.0 && pct <= 100.0);
  std::sort(values.begin(), values.end());
  const int64_t n = static_cast<int64_t>(values.size());
  const int64_t rank = static_cast<int64_t>(
      std::ceil(pct / 100.0 * static_cast<double>(n)));
  return values[std::max<int64_t>(rank, 1) - 1];
}

ServeReport BuildServeReport(const std::vector<QueryOutcome>& outcomes,
                             const AssignmentStats& assignments,
                             double makespan_seconds, int64_t total_rounds) {
  ServeReport report;
  report.queries = static_cast<int64_t>(outcomes.size());
  report.makespan_seconds = makespan_seconds;
  report.total_rounds = total_rounds;
  report.assignments = assignments;

  std::vector<double> rounds, seconds;
  double queue_wait = 0.0, precision = 0.0;
  for (const QueryOutcome& o : outcomes) {
    if (o.rejected) {
      ++report.rejected;
      continue;
    }
    report.total_microtasks += o.total_microtasks;
    queue_wait += o.start_seconds - o.arrival_seconds;
    if (!o.status.ok()) {
      ++report.failed;
      continue;
    }
    ++report.completed;
    precision += o.precision_at_k;
    rounds.push_back(static_cast<double>(o.rounds_observed));
    seconds.push_back(o.latency_seconds);
  }
  const int64_t ran = report.completed + report.failed;
  if (ran > 0) {
    report.mean_queue_wait_seconds = queue_wait / static_cast<double>(ran);
  }
  if (report.completed > 0) {
    report.mean_precision =
        precision / static_cast<double>(report.completed);
  }
  if (makespan_seconds > 0.0) {
    report.throughput_per_hour = static_cast<double>(report.completed) /
                                 (makespan_seconds / 3600.0);
  }
  report.p50_rounds = PercentileNearestRank(rounds, 50.0);
  report.p95_rounds = PercentileNearestRank(rounds, 95.0);
  report.p99_rounds = PercentileNearestRank(rounds, 99.0);
  report.p50_seconds = PercentileNearestRank(seconds, 50.0);
  report.p95_seconds = PercentileNearestRank(seconds, 95.0);
  report.p99_seconds = PercentileNearestRank(seconds, 99.0);
  return report;
}

std::string RenderServeReport(const ServeReport& r) {
  std::string out;
  out += Line("queries            %lld (completed %lld, failed %lld, "
              "rejected %lld)\n",
              static_cast<long long>(r.queries),
              static_cast<long long>(r.completed),
              static_cast<long long>(r.failed),
              static_cast<long long>(r.rejected));
  out += Line("makespan           %.3f s (%lld global rounds)\n",
              r.makespan_seconds, static_cast<long long>(r.total_rounds));
  out += Line("throughput         %.4f completed queries/h\n",
              r.throughput_per_hour);
  out += Line("latency rounds     p50 %.1f  p95 %.1f  p99 %.1f\n",
              r.p50_rounds, r.p95_rounds, r.p99_rounds);
  out += Line("latency seconds    p50 %.3f  p95 %.3f  p99 %.3f\n",
              r.p50_seconds, r.p95_seconds, r.p99_seconds);
  out += Line("queue wait         mean %.3f s\n", r.mean_queue_wait_seconds);
  out += Line("microtasks         %lld purchased\n",
              static_cast<long long>(r.total_microtasks));
  out += Line("assignments        %lld scheduled, %lld completed, "
              "%lld expired, %lld requeued, %lld failed\n",
              static_cast<long long>(r.assignments.scheduled),
              static_cast<long long>(r.assignments.completed),
              static_cast<long long>(r.assignments.expired),
              static_cast<long long>(r.assignments.requeued),
              static_cast<long long>(r.assignments.failed));
  out += Line("mean precision@k   %.4f (completed queries)\n",
              r.mean_precision);
  return out;
}

std::string RenderServeReportJsonl(const ServeReport& r,
                                   const std::vector<QueryOutcome>& outcomes) {
  std::string out;
  AppendFormat(
      &out,
      "{\"record\":\"summary\",\"queries\":%lld,\"completed\":%lld,"
      "\"failed\":%lld,\"rejected\":%lld,\"makespan_seconds\":%.6f,"
      "\"total_rounds\":%lld,\"throughput_per_hour\":%.6f,"
      "\"total_microtasks\":%lld,\"mean_queue_wait_seconds\":%.6f,"
      "\"mean_precision\":%.6f,\"p50_rounds\":%.6f,\"p95_rounds\":%.6f,"
      "\"p99_rounds\":%.6f,\"p50_seconds\":%.6f,\"p95_seconds\":%.6f,"
      "\"p99_seconds\":%.6f,\"assignments_scheduled\":%lld,"
      "\"assignments_completed\":%lld,\"assignments_expired\":%lld,"
      "\"assignments_requeued\":%lld,\"assignments_failed\":%lld}\n",
      static_cast<long long>(r.queries), static_cast<long long>(r.completed),
      static_cast<long long>(r.failed), static_cast<long long>(r.rejected),
      r.makespan_seconds, static_cast<long long>(r.total_rounds),
      r.throughput_per_hour, static_cast<long long>(r.total_microtasks),
      r.mean_queue_wait_seconds, r.mean_precision, r.p50_rounds, r.p95_rounds,
      r.p99_rounds, r.p50_seconds, r.p95_seconds, r.p99_seconds,
      static_cast<long long>(r.assignments.scheduled),
      static_cast<long long>(r.assignments.completed),
      static_cast<long long>(r.assignments.expired),
      static_cast<long long>(r.assignments.requeued),
      static_cast<long long>(r.assignments.failed));
  for (const QueryOutcome& o : outcomes) {
    std::string items = "[";
    for (size_t i = 0; i < o.items.size(); ++i) {
      if (i > 0) items += ",";
      items += std::to_string(o.items[i]);
    }
    items += "]";
    AppendFormat(
        &out,
        "{\"record\":\"query\",\"query_id\":%lld,\"algorithm\":\"%s\","
        "\"status\":\"%s\",\"arrival_seconds\":%.6f,\"start_seconds\":%.6f,"
        "\"finish_seconds\":%.6f,\"latency_seconds\":%.6f,"
        "\"rounds_observed\":%lld,\"rounds_private\":%lld,"
        "\"total_microtasks\":%lld,\"expired_assignments\":%lld,"
        "\"requeued_assignments\":%lld,\"precision_at_k\":%.6f,"
        "\"cache_hits\":%lld,\"cache_topups\":%lld,\"cache_inferred\":%lld,"
        "\"cache_misses\":%lld,\"items\":%s}\n",
        static_cast<long long>(o.query_id), o.algorithm.c_str(),
        o.rejected ? "REJECTED" : (o.status.ok() ? "OK" : "FAILED"),
        o.arrival_seconds, o.start_seconds, o.finish_seconds,
        o.latency_seconds, static_cast<long long>(o.rounds_observed),
        static_cast<long long>(o.rounds_private),
        static_cast<long long>(o.total_microtasks),
        static_cast<long long>(o.expired_assignments),
        static_cast<long long>(o.requeued_assignments), o.precision_at_k,
        static_cast<long long>(o.cache_hits),
        static_cast<long long>(o.cache_topups),
        static_cast<long long>(o.cache_inferred),
        static_cast<long long>(o.cache_misses), items.c_str());
  }
  return out;
}

util::Status WriteServeReportJsonl(const ServeReport& report,
                                   const std::vector<QueryOutcome>& outcomes,
                                   const std::string& path) {
  return util::WriteFileAtomic(path, RenderServeReportJsonl(report, outcomes));
}

std::string RenderQueryTable(const std::vector<QueryOutcome>& outcomes) {
  std::string out =
      "query,algo,status,arrival_s,start_s,finish_s,latency_s,"
      "rounds_observed,rounds_private,tmc,requeued,precision\n";
  for (const QueryOutcome& o : outcomes) {
    out += Line("%lld,%s,%s,%.3f,%.3f,%.3f,%.3f,%lld,%lld,%lld,%lld,%.4f\n",
                static_cast<long long>(o.query_id), o.algorithm.c_str(),
                o.rejected ? "REJECTED"
                           : (o.status.ok() ? "OK" : "FAILED"),
                o.arrival_seconds, o.start_seconds, o.finish_seconds,
                o.latency_seconds,
                static_cast<long long>(o.rounds_observed),
                static_cast<long long>(o.rounds_private),
                static_cast<long long>(o.total_microtasks),
                static_cast<long long>(o.requeued_assignments),
                o.precision_at_k);
  }
  return out;
}

}  // namespace crowdtopk::serve
