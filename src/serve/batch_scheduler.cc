#include "serve/batch_scheduler.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "exec/parallel_for.h"
#include "util/check.h"
#include "util/random.h"

namespace crowdtopk::serve {
namespace {

// Salt separating the worker-latency seed stream from the per-query
// judgment streams derived elsewhere from the same master seed.
constexpr uint64_t kLatencyStream = 0x6c61746e63790001ULL;

}  // namespace

BatchScheduler::BatchScheduler(const ScheduleOptions& options, uint64_t seed,
                               exec::ThreadPool* pool)
    : options_(options),
      seed_(util::SplitSeed(seed, kLatencyStream)),
      pool_(pool),
      tracker_(options.max_attempts) {
  CROWDTOPK_CHECK_GE(options.crowd_workers, 1);
  CROWDTOPK_CHECK_GE(options.per_pair_batch, 1);
  CROWDTOPK_CHECK(options.mean_task_seconds > 0.0);
  CROWDTOPK_CHECK(options.task_time_sigma >= 0.0);
  CROWDTOPK_CHECK(options.mean_pickup_seconds >= 0.0);
  CROWDTOPK_CHECK(options.abandon_probability >= 0.0 &&
                  options.abandon_probability <= 1.0);
  CROWDTOPK_CHECK(options.no_show_probability >= 0.0 &&
                  options.no_show_probability <= 1.0);
  CROWDTOPK_CHECK(options.deadline_seconds > 0.0);
  // Lognormal with mean m and sigma s has mu = ln(m) - s^2/2.
  lognormal_mu_ = std::log(options.mean_task_seconds) -
                  0.5 * options.task_time_sigma * options.task_time_sigma;
}

void BatchScheduler::AdmitQuery(int64_t query_id, int64_t seed_stream) {
  std::lock_guard<std::mutex> lock(mutex_);
  CROWDTOPK_CHECK(queries_.find(query_id) == queries_.end());
  QueryState& q = queries_[query_id];
  q.seed_stream = seed_stream >= 0 ? seed_stream : query_id;
  q.barrier_round = round_;
  q.stats.admitted_round = round_;
  q.stats.admitted_seconds = now_seconds_;
  ++running_;
}

void BatchScheduler::WaitQuiescent() {
  std::unique_lock<std::mutex> lock(mutex_);
  quiescent_.wait(lock, [this] { return running_ == 0; });
}

bool BatchScheduler::AnyParked() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, q] : queries_) {
    if (q.parked && !q.finished) return true;
  }
  return false;
}

void BatchScheduler::AdvanceTimeTo(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  CROWDTOPK_CHECK_EQ(running_, 0);
  now_seconds_ = std::max(now_seconds_, seconds);
}

std::vector<int64_t> BatchScheduler::DrainFinished() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int64_t> finished;
  finished.swap(newly_finished_);
  return finished;
}

double BatchScheduler::now_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return now_seconds_;
}

int64_t BatchScheduler::round() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return round_;
}

QueryServeStats BatchScheduler::QueryStats(int64_t query_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queries_.at(query_id).stats;
}

AssignmentStats BatchScheduler::assignment_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tracker_.stats();
}

void BatchScheduler::PostPurchase(int64_t query_id, crowd::ItemId i,
                                  crowd::ItemId j, int64_t count) {
  if (count <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  QueryState& q = queries_.at(query_id);
  CROWDTOPK_CHECK(!q.finished);
  const int64_t request_seq = q.next_request_seq++;
  for (int64_t t = 0; t < count; ++t) {
    Assignment assignment;
    assignment.query_id = query_id;
    assignment.seed_stream = q.seed_stream;
    assignment.request_seq = request_seq;
    assignment.task_index = t;
    assignment.item_i = i;
    assignment.item_j = j;
    tracker_.Enqueue(assignment);
  }
  q.posted += count;
}

void BatchScheduler::Barrier(int64_t query_id, int64_t rounds) {
  CROWDTOPK_CHECK_GE(rounds, 0);
  std::unique_lock<std::mutex> lock(mutex_);
  QueryState& q = queries_.at(query_id);
  q.barrier_round = round_ + rounds;
  if (BarrierSatisfied(q)) return;
  q.parked = true;
  --running_;
  quiescent_.notify_all();
  unparked_.wait(lock, [&q] { return !q.parked; });
}

void BatchScheduler::FinishQuery(int64_t query_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  QueryState& q = queries_.at(query_id);
  CROWDTOPK_CHECK(!q.finished);
  // Drivers drain before finishing (AsyncPlatform::Drain), so no pending
  // work of this query can be left behind to stall the tracker.
  CROWDTOPK_CHECK_GE(q.resolved, q.posted);
  q.finished = true;
  q.stats.finished_round = round_;
  q.stats.finished_seconds = now_seconds_;
  newly_finished_.push_back(query_id);
  --running_;
  quiescent_.notify_all();
}

BatchScheduler::AttemptOutcome BatchScheduler::SimulateAttempt(
    const Assignment& assignment) const {
  // Pure function of (scheduler seed, assignment identity, attempt): the
  // same microtask retried later, or simulated on a different thread,
  // always draws the same worker. The stream key is the query's seed_stream
  // (== query_id unless a router overrode it), so a re-dispatched query
  // meets the same workers on its new shard.
  uint64_t seed = util::SplitSeed(seed_, assignment.seed_stream);
  seed = util::SplitSeed(seed, assignment.request_seq);
  seed = util::SplitSeed(seed, assignment.task_index);
  seed = util::SplitSeed(seed, assignment.attempt);
  util::Rng rng(seed);

  double pickup = 0.0;
  if (options_.mean_pickup_seconds > 0.0) {
    double u = rng.Uniform();
    while (u <= 0.0) u = rng.Uniform();
    pickup = -options_.mean_pickup_seconds * std::log(u);
  }
  double work = options_.mean_task_seconds;
  if (options_.task_time_sigma > 0.0) {
    work = std::exp(rng.Gaussian(lognormal_mu_, options_.task_time_sigma));
  }
  const bool abandoned = rng.Bernoulli(options_.abandon_probability);
  // Drawn after the honest-path coins so a zero rate leaves every existing
  // (seed, assignment) outcome untouched.
  const bool no_show = options_.no_show_probability > 0.0 &&
                       rng.Bernoulli(options_.no_show_probability);

  AttemptOutcome outcome;
  outcome.latency_seconds = pickup + work;
  outcome.expired = abandoned || no_show ||
                    outcome.latency_seconds > options_.deadline_seconds;
  // A no-show never returns: the round waits out the full deadline for it.
  if (no_show) outcome.latency_seconds = options_.deadline_seconds;
  return outcome;
}

void BatchScheduler::ExecuteRound() {
  std::lock_guard<std::mutex> lock(mutex_);
  CROWDTOPK_CHECK_EQ(running_, 0);

  const std::vector<Assignment> wave = tracker_.TakeWave(
      round_, options_.crowd_workers, options_.per_pair_batch);
  double duration = 0.0;
  if (!wave.empty()) {
    // Fan the wave simulation out on the thread pool: outcome[i] is a pure
    // function of wave[i], so any worker count produces identical results.
    std::vector<AttemptOutcome> outcomes(wave.size());
    exec::ParallelFor(pool_, 0, static_cast<int64_t>(wave.size()),
                      [&](int64_t i) { outcomes[i] = SimulateAttempt(wave[i]); });
    bool any_expired = false;
    for (size_t i = 0; i < wave.size(); ++i) {
      QueryState& q = queries_.at(wave[i].query_id);
      switch (tracker_.Resolve(wave[i], outcomes[i].expired)) {
        case AssignmentTracker::Resolution::kCompleted:
          ++q.resolved;
          duration = std::max(duration, outcomes[i].latency_seconds);
          break;
        case AssignmentTracker::Resolution::kRequeued:
          ++q.stats.expired_assignments;
          ++q.stats.requeued_assignments;
          any_expired = true;
          break;
        case AssignmentTracker::Resolution::kFailed:
          // Give up on the microtask so the barrier can release; the query
          // is marked failed and the service reports the status instead of
          // the (already computed) answer.
          ++q.resolved;
          ++q.stats.expired_assignments;
          ++q.stats.failed_assignments;
          any_expired = true;
          if (q.stats.status.ok()) {
            q.stats.status = util::Status::ResourceExhausted(
                "assignment for pair (" + std::to_string(wave[i].item_i) +
                ", " + std::to_string(wave[i].item_j) + ") of query " +
                std::to_string(wave[i].query_id) + " expired " +
                std::to_string(tracker_.max_attempts()) + " times");
          }
          break;
      }
    }
    // The round is a barrier: if anything expired, the platform waited out
    // the full deadline before requeueing.
    if (any_expired) duration = options_.deadline_seconds;
  }
  ++round_;
  now_seconds_ += duration;

  for (auto& [id, q] : queries_) {
    if (q.parked && BarrierSatisfied(q)) {
      q.parked = false;
      ++running_;
    }
  }
  unparked_.notify_all();
}

}  // namespace crowdtopk::serve
