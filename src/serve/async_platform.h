// AsyncPlatform: the bridge between a synchronous top-k algorithm and the
// shared BatchScheduler.
//
// Algorithms (SPR and every baseline, APIs unmodified) drive a
// crowd::CrowdPlatform. AsyncPlatform derives from it: judgment *values*
// and cost/round accounting are delegated to the base class — so a query
// served through this adapter buys the exact judgment stream, TMC, and
// private round count it would buy on a private platform with the same
// seed — while every purchase is additionally registered with the shared
// scheduler and every round boundary parks the driver thread until the
// crowd has actually worked the query's microtasks off. The base class's
// rounds() counter therefore reads as the query's *private* latency (what
// it would cost alone, the paper's Section 5.5 metric) and the scheduler's
// global round span as its *observed* latency including cross-query
// contention, stragglers, and requeues.
//
// One AsyncPlatform is owned by exactly one driver thread; it is as
// thread-compatible as the base class (not thread-safe) and relies on the
// scheduler for all cross-thread coordination.

#ifndef CROWDTOPK_SERVE_ASYNC_PLATFORM_H_
#define CROWDTOPK_SERVE_ASYNC_PLATFORM_H_

#include <cstdint>
#include <vector>

#include "crowd/oracle.h"
#include "crowd/platform.h"
#include "serve/batch_scheduler.h"

namespace crowdtopk::serve {

class AsyncPlatform : public crowd::CrowdPlatform {
 public:
  // `oracle` and `scheduler` must outlive the platform; `query_id` must
  // already be admitted to the scheduler.
  AsyncPlatform(const crowd::JudgmentOracle* oracle, uint64_t seed,
                BatchScheduler* scheduler, int64_t query_id);

  void CollectPreferences(crowd::ItemId i, crowd::ItemId j, int64_t count,
                          std::vector<double>* out) override;
  void CollectBinaryVotes(crowd::ItemId i, crowd::ItemId j, int64_t count,
                          std::vector<double>* out) override;
  void CollectGrades(crowd::ItemId i, int64_t count,
                     std::vector<double>* out) override;

  // Parks until this query's outstanding microtasks are worked off and one
  // more global round has closed.
  void NextRound() override;

  // Parks until outstanding microtasks are worked off and `n` more global
  // rounds have closed.
  void AccountRounds(int64_t n) override;

  // Flushes purchases made after the last round boundary without charging
  // another round. QueryService calls this after the algorithm returns, so
  // a query never finishes with work still queued at the crowd.
  void Drain();

  int64_t query_id() const { return query_id_; }

 private:
  BatchScheduler* scheduler_;
  int64_t query_id_;
};

}  // namespace crowdtopk::serve

#endif  // CROWDTOPK_SERVE_ASYNC_PLATFORM_H_
