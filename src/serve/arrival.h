// Open-loop arrival traces for the serving layer.
//
// A serving experiment replays a deterministic trace of query arrival
// times: open-loop (arrivals do not react to completions, the standard
// model for latency benchmarking under load) and Poisson (exponential
// inter-arrival gaps), generated from a seed — never from the wall clock —
// so the same seed always yields the same trace.

#ifndef CROWDTOPK_SERVE_ARRIVAL_H_
#define CROWDTOPK_SERVE_ARRIVAL_H_

#include <cstdint>
#include <vector>

namespace crowdtopk::serve {

// `n` arrival times in simulated seconds, ascending, starting at the first
// exponential gap after t = 0. `rate_per_second` > 0 is the Poisson
// intensity lambda (mean inter-arrival time 1 / lambda).
std::vector<double> PoissonArrivals(int64_t n, double rate_per_second,
                                    uint64_t seed);

}  // namespace crowdtopk::serve

#endif  // CROWDTOPK_SERVE_ARRIVAL_H_
