// LatencyModel: an optional observer that converts the platform's abstract
// cost/latency events into a richer model (e.g. wall-clock marketplace
// simulation, crowd/simulator.h). The platform reports every purchase and
// every batch-round boundary; the model decides what they mean in seconds.

#ifndef CROWDTOPK_CROWD_LATENCY_MODEL_H_
#define CROWDTOPK_CROWD_LATENCY_MODEL_H_

#include <cstdint>

namespace crowdtopk::crowd {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  // `count` microtasks were just purchased (they belong to the current,
  // still-open batch round).
  virtual void OnPurchase(int64_t count) = 0;

  // The current batch round closed: everything purchased since the last
  // boundary ran in parallel.
  virtual void OnRoundBoundary() = 0;
};

}  // namespace crowdtopk::crowd

#endif  // CROWDTOPK_CROWD_LATENCY_MODEL_H_
