// Basic vocabulary types for the crowdsourcing layer.

#ifndef CROWDTOPK_CROWD_TYPES_H_
#define CROWDTOPK_CROWD_TYPES_H_

#include <cstdint>

namespace crowdtopk::crowd {

// Identifies an item within a dataset; items are dense indices [0, N).
using ItemId = int32_t;

// The three judgment models compared in Section 3 / Table 1.
enum class JudgmentModel {
  kPreference,  // signed strength in [-1, 1] for a pair (our model)
  kBinary,      // vote in {-1, +1} for a pair (Busa-Fekete et al.)
  kGraded,      // absolute rating of a single item (Likert-style)
};

// Outcome of a pairwise comparison process COMP(o_i, o_j).
enum class ComparisonOutcome {
  kLeftWins,    // o_i  >  o_j at the requested confidence
  kRightWins,   // o_i  <  o_j at the requested confidence
  kTie,         // indistinguishable within the per-pair budget B
};

// Flips the outcome as if the operands were swapped.
inline ComparisonOutcome Reverse(ComparisonOutcome outcome) {
  switch (outcome) {
    case ComparisonOutcome::kLeftWins:
      return ComparisonOutcome::kRightWins;
    case ComparisonOutcome::kRightWins:
      return ComparisonOutcome::kLeftWins;
    case ComparisonOutcome::kTie:
      return ComparisonOutcome::kTie;
  }
  return ComparisonOutcome::kTie;
}

}  // namespace crowdtopk::crowd

#endif  // CROWDTOPK_CROWD_TYPES_H_
