// WallClockSimulator: a discrete-event marketplace model in simulated
// seconds.
//
// The paper measures latency in abstract batch rounds (Section 5.5) and
// reports one live data point: the PeopleAge query took 6 h 55 min for
// ~10.5k microtasks on CrowdFlower, with workers averaging ~11 s per
// question (Appendix B). This simulator converts the platform's
// purchase/round event stream into wall-clock time under a worker-pool
// model: a fixed number of concurrent worker slots; each microtask is
// picked up after an exponential delay and worked on for a lognormal
// duration; a batch round completes when its last microtask does (rounds
// are barriers, exactly like the abstract model).
//
// Attach it with CrowdPlatform::SetLatencyModel; it observes any algorithm
// unchanged.

#ifndef CROWDTOPK_CROWD_SIMULATOR_H_
#define CROWDTOPK_CROWD_SIMULATOR_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "crowd/latency_model.h"
#include "util/random.h"

namespace crowdtopk::crowd {

struct SimulatorOptions {
  // Concurrent worker slots picking up microtasks.
  int64_t num_workers = 5;
  // Mean seconds of actual work per microtask (Appendix B: ~11 s).
  double mean_task_seconds = 11.0;
  // Lognormal sigma of the work duration (0 = deterministic).
  double task_time_sigma = 0.35;
  // Mean exponential delay before a posted microtask is picked up.
  double mean_pickup_seconds = 4.0;
  // Price per microtask (Appendix B / Section 6.1: 0.1 US cent).
  double cost_per_task_usd = 0.001;
};

class WallClockSimulator : public LatencyModel {
 public:
  WallClockSimulator(SimulatorOptions options, uint64_t seed);

  // LatencyModel:
  void OnPurchase(int64_t count) override;
  void OnRoundBoundary() override;

  // Simulated elapsed time so far (rounds completed).
  double now_seconds() const { return now_seconds_; }
  double now_hours() const { return now_seconds_ / 3600.0; }

  // Money spent so far.
  double total_cost_usd() const { return total_cost_usd_; }

  int64_t total_microtasks() const { return total_microtasks_; }

 private:
  SimulatorOptions options_;
  util::Rng rng_;
  double now_seconds_ = 0.0;
  double total_cost_usd_ = 0.0;
  int64_t total_microtasks_ = 0;
  int64_t pending_tasks_ = 0;  // purchased in the open round
  double lognormal_mu_;        // parameter giving the requested mean
};

}  // namespace crowdtopk::crowd

#endif  // CROWDTOPK_CROWD_SIMULATOR_H_
