#include "crowd/simulator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace crowdtopk::crowd {

WallClockSimulator::WallClockSimulator(SimulatorOptions options,
                                       uint64_t seed)
    : options_(options), rng_(seed ^ 0x51b0c10cULL) {
  CROWDTOPK_CHECK_GE(options.num_workers, 1);
  CROWDTOPK_CHECK(options.mean_task_seconds > 0.0);
  CROWDTOPK_CHECK(options.task_time_sigma >= 0.0);
  CROWDTOPK_CHECK(options.mean_pickup_seconds >= 0.0);
  // Lognormal with mean m and sigma s has mu = ln(m) - s^2/2.
  lognormal_mu_ = std::log(options.mean_task_seconds) -
                  0.5 * options.task_time_sigma * options.task_time_sigma;
}

void WallClockSimulator::OnPurchase(int64_t count) {
  CROWDTOPK_CHECK_GE(count, 0);
  pending_tasks_ += count;
  total_microtasks_ += count;
  total_cost_usd_ +=
      static_cast<double>(count) * options_.cost_per_task_usd;
}

void WallClockSimulator::OnRoundBoundary() {
  if (pending_tasks_ == 0) return;  // an empty round costs no time
  // Discrete-event wave: every worker slot is free at round start; each
  // task goes to the earliest-free slot after an exponential pickup delay;
  // the round (a barrier) ends when the last task finishes.
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      worker_free;
  for (int64_t w = 0; w < options_.num_workers; ++w) worker_free.push(0.0);
  double round_end = 0.0;
  for (int64_t task = 0; task < pending_tasks_; ++task) {
    const double free_at = worker_free.top();
    worker_free.pop();
    double pickup = 0.0;
    if (options_.mean_pickup_seconds > 0.0) {
      // Exponential via inverse CDF.
      double u = rng_.Uniform();
      while (u <= 0.0) u = rng_.Uniform();
      pickup = -options_.mean_pickup_seconds * std::log(u);
    }
    double work = options_.mean_task_seconds;
    if (options_.task_time_sigma > 0.0) {
      work = std::exp(
          rng_.Gaussian(lognormal_mu_, options_.task_time_sigma));
    }
    const double finish = free_at + pickup + work;
    worker_free.push(finish);
    round_end = std::max(round_end, finish);
  }
  now_seconds_ += round_end;
  pending_tasks_ = 0;
}

}  // namespace crowdtopk::crowd
