// Worker-quality models: a decorator that filters any oracle's judgments
// through a simulated worker population.
//
// The paper assumes i.i.d. judgments and leaves worker quality to future
// work ("a high quality worker should have a consistent personal standard",
// Section 4); related systems (iCrowd [17], CrowdBT [9]) model it
// explicitly. WorkerPoolOracle makes the assumption testable: every judgment
// is routed through a random worker who distorts it with a personal scale,
// bias, extra noise, or -- for spammers -- replaces it with garbage.
// The ablation bench `ablation_worker_quality` measures how much distortion
// the confidence-aware comparison process absorbs before accuracy degrades.

#ifndef CROWDTOPK_CROWD_WORKERS_H_
#define CROWDTOPK_CROWD_WORKERS_H_

#include <cstdint>
#include <vector>

#include "crowd/oracle.h"
#include "crowd/types.h"
#include "util/random.h"

namespace crowdtopk::crowd {

// One simulated worker's response profile.
struct WorkerProfile {
  // Multiplies the underlying preference (0.5 = timid, 2 = emphatic).
  double scale = 1.0;
  // Added to every preference (systematic lean toward the left item).
  double bias = 0.0;
  // Stddev of extra zero-mean Gaussian noise on each judgment.
  double noise = 0.0;
  // With this probability the worker answers uniformly at random in [-1, 1]
  // (a spammer click).
  double spam_rate = 0.0;
};

// Parameters for generating a worker population.
struct WorkerPoolOptions {
  int64_t num_workers = 200;
  // Worker scales are drawn log-uniformly in [1/scale_spread, scale_spread].
  double scale_spread = 1.5;
  // Worker biases ~ N(0, bias_stddev).
  double bias_stddev = 0.0;
  // Worker noise levels are drawn uniformly in [0, max_noise].
  double max_noise = 0.0;
  // Fraction of the pool that are spammers (spam_rate = 1 for them).
  double spammer_fraction = 0.0;
};

// Wraps a base oracle: every judgment is answered by a uniformly random
// worker from a fixed pool, applying her profile to the base judgment.
// Binary judgments take the sign of the distorted preference; grades are
// distorted on the [0, 1] scale with the same noise/spam profile.
class WorkerPoolOracle : public JudgmentOracle {
 public:
  // `base` must outlive this oracle. The pool is generated from `seed`.
  WorkerPoolOracle(const JudgmentOracle* base, WorkerPoolOptions options,
                   uint64_t seed);

  // Direct construction from explicit profiles (tests).
  WorkerPoolOracle(const JudgmentOracle* base,
                   std::vector<WorkerProfile> workers);

  int64_t num_items() const override { return base_->num_items(); }
  int64_t num_workers() const {
    return static_cast<int64_t>(workers_.size());
  }
  const WorkerProfile& worker(int64_t w) const { return workers_[w]; }

  double PreferenceJudgment(ItemId i, ItemId j,
                            util::Rng* rng) const override;
  double GradedJudgment(ItemId i, util::Rng* rng) const override;

 private:
  const JudgmentOracle* base_;
  std::vector<WorkerProfile> workers_;
};

}  // namespace crowdtopk::crowd

#endif  // CROWDTOPK_CROWD_WORKERS_H_
