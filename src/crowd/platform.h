// CrowdPlatform: the simulated crowdsourcing marketplace.
//
// Every microtask purchased through the platform increments the total
// monetary cost (TMC, Section 4: unit cost per microtask). Latency is
// measured in *batch rounds* (Section 5.5): within one round, all independent
// comparisons may advance in parallel by up to eta microtasks each; the
// algorithm driving the platform marks round boundaries with NextRound().
//
// For per-phase cost/latency attribution a telemetry::TraceRecorder can be
// attached (SetRecorder): the platform then emits one structured event per
// purchase and per round boundary, and algorithm layers delimit their phases
// through telemetry::PhaseScope(platform->recorder(), ...). See
// docs/OBSERVABILITY.md.

#ifndef CROWDTOPK_CROWD_PLATFORM_H_
#define CROWDTOPK_CROWD_PLATFORM_H_

#include <cstdint>
#include <vector>

#include "crowd/latency_model.h"
#include "crowd/oracle.h"
#include "crowd/types.h"
#include "telemetry/recorder.h"
#include "util/random.h"

namespace crowdtopk::cache {
class CacheClient;  // src/cache — attached opaquely, see SetCacheClient
}  // namespace crowdtopk::cache

namespace crowdtopk::crowd {

// The purchase and round-boundary methods are virtual so that a serving
// layer can interpose on the metering point without touching any algorithm:
// serve::AsyncPlatform (src/serve) derives from CrowdPlatform, delegates
// judgment sampling and accounting to this base class, and additionally
// parks the calling query at round boundaries while a shared BatchScheduler
// multiplexes the microtasks of all in-flight queries.
class CrowdPlatform {
 public:
  // `oracle` must outlive the platform. `seed` drives all judgment sampling.
  CrowdPlatform(const JudgmentOracle* oracle, uint64_t seed);

  CrowdPlatform(const CrowdPlatform&) = delete;
  CrowdPlatform& operator=(const CrowdPlatform&) = delete;

  virtual ~CrowdPlatform() = default;

  const JudgmentOracle& oracle() const { return *oracle_; }
  int64_t num_items() const { return oracle_->num_items(); }

  // Buys `count` preference judgments for the pair (i, j), appending them to
  // *out. Each judgment costs one microtask.
  virtual void CollectPreferences(ItemId i, ItemId j, int64_t count,
                                  std::vector<double>* out);

  // Buys `count` binary judgments in {-1, +1}.
  virtual void CollectBinaryVotes(ItemId i, ItemId j, int64_t count,
                                  std::vector<double>* out);

  // Buys `count` graded judgments of item i in [0, 1].
  virtual void CollectGrades(ItemId i, int64_t count,
                             std::vector<double>* out);

  // Marks the end of one batch round: everything purchased since the last
  // call is considered to have been outsourced in parallel.
  virtual void NextRound();

  // Accounts `n` additional rounds at once (for sequential sub-phases whose
  // round count is known in closed form).
  virtual void AccountRounds(int64_t n);

  // Attaches an observer translating purchases/rounds into a richer latency
  // model (e.g. the wall-clock marketplace simulator). May be nullptr to
  // detach; must outlive the platform while attached.
  void SetLatencyModel(LatencyModel* model) { latency_model_ = model; }

  // Attaches a telemetry recorder receiving one event per purchase and per
  // round boundary. May be nullptr to detach; must outlive the platform
  // while attached. Algorithms read it back via recorder() to open phase
  // scopes and record counters.
  void SetRecorder(telemetry::TraceRecorder* recorder) {
    recorder_ = recorder;
  }
  telemetry::TraceRecorder* recorder() const { return recorder_; }

  // Attaches this query's handle onto the cross-query judgment cache
  // (src/cache). Like the recorder, the pointer is merely carried here:
  // the judgment layer reads it back at ComparisonCache construction to
  // serve memoised verdicts before buying fresh microtasks. May be nullptr
  // to detach; must outlive the platform while attached.
  void SetCacheClient(cache::CacheClient* client) { cache_client_ = client; }
  cache::CacheClient* cache_client() const { return cache_client_; }

  // Total microtasks purchased so far (the paper's TMC).
  int64_t total_microtasks() const { return total_microtasks_; }

  // Batch rounds elapsed (the paper's query latency).
  int64_t rounds() const { return rounds_; }

  // Resets cost and latency counters (not the RNG stream).
  void ResetCounters();

  util::Rng* rng() { return &rng_; }

 private:
  const JudgmentOracle* oracle_;
  util::Rng rng_;
  LatencyModel* latency_model_ = nullptr;
  telemetry::TraceRecorder* recorder_ = nullptr;
  cache::CacheClient* cache_client_ = nullptr;
  int64_t total_microtasks_ = 0;
  int64_t rounds_ = 0;
};

}  // namespace crowdtopk::crowd

#endif  // CROWDTOPK_CROWD_PLATFORM_H_
