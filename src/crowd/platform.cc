#include "crowd/platform.h"

#include "util/check.h"

namespace crowdtopk::crowd {

CrowdPlatform::CrowdPlatform(const JudgmentOracle* oracle, uint64_t seed)
    : oracle_(oracle), rng_(seed) {
  CROWDTOPK_CHECK(oracle != nullptr);
}

void CrowdPlatform::CollectPreferences(ItemId i, ItemId j, int64_t count,
                                       std::vector<double>* out) {
  CROWDTOPK_CHECK_GE(count, 0);
  CROWDTOPK_DCHECK(i != j);
  for (int64_t t = 0; t < count; ++t) {
    out->push_back(oracle_->PreferenceJudgment(i, j, &rng_));
  }
  total_microtasks_ += count;
  if (latency_model_ != nullptr && count > 0) {
    latency_model_->OnPurchase(count);
  }
  if (recorder_ != nullptr && count > 0) {
    recorder_->RecordPurchase(telemetry::PurchaseKind::kPreference, i, j,
                              count);
  }
}

void CrowdPlatform::CollectBinaryVotes(ItemId i, ItemId j, int64_t count,
                                       std::vector<double>* out) {
  CROWDTOPK_CHECK_GE(count, 0);
  CROWDTOPK_DCHECK(i != j);
  for (int64_t t = 0; t < count; ++t) {
    out->push_back(oracle_->BinaryJudgment(i, j, &rng_));
  }
  total_microtasks_ += count;
  if (latency_model_ != nullptr && count > 0) {
    latency_model_->OnPurchase(count);
  }
  if (recorder_ != nullptr && count > 0) {
    recorder_->RecordPurchase(telemetry::PurchaseKind::kBinary, i, j, count);
  }
}

void CrowdPlatform::CollectGrades(ItemId i, int64_t count,
                                  std::vector<double>* out) {
  CROWDTOPK_CHECK_GE(count, 0);
  for (int64_t t = 0; t < count; ++t) {
    out->push_back(oracle_->GradedJudgment(i, &rng_));
  }
  total_microtasks_ += count;
  if (latency_model_ != nullptr && count > 0) {
    latency_model_->OnPurchase(count);
  }
  if (recorder_ != nullptr && count > 0) {
    recorder_->RecordPurchase(telemetry::PurchaseKind::kGraded, i,
                              /*item_j=*/-1, count);
  }
}

void CrowdPlatform::NextRound() {
  ++rounds_;
  if (latency_model_ != nullptr) latency_model_->OnRoundBoundary();
  if (recorder_ != nullptr) recorder_->RecordRounds(1);
}

void CrowdPlatform::AccountRounds(int64_t n) {
  rounds_ += n;
  if (latency_model_ != nullptr) {
    for (int64_t r = 0; r < n; ++r) latency_model_->OnRoundBoundary();
  }
  if (recorder_ != nullptr && n > 0) recorder_->RecordRounds(n);
}

void CrowdPlatform::ResetCounters() {
  total_microtasks_ = 0;
  rounds_ = 0;
}

}  // namespace crowdtopk::crowd
