#include "crowd/oracle.h"

namespace crowdtopk::crowd {

double JudgmentOracle::BinaryJudgment(ItemId i, ItemId j,
                                      util::Rng* rng) const {
  // Ties are unidentifiable and dropped (Section 3.2); bound the retries so a
  // degenerate oracle cannot spin forever, breaking the final tie randomly.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double v = PreferenceJudgment(i, j, rng);
    if (v > 0.0) return 1.0;
    if (v < 0.0) return -1.0;
  }
  return rng->Bernoulli(0.5) ? 1.0 : -1.0;
}

}  // namespace crowdtopk::crowd
