// JudgmentOracle: the source of (simulated) human judgments.
//
// A dataset implements this interface; the platform draws judgments through
// it. Sign convention follows Section 3.1 of the paper: a preference
// v(o_i, o_j) > 0 means the worker prefers o_i (the left operand), because
// the preference mean is monotonically increasing in s(o_i) - s(o_j).

#ifndef CROWDTOPK_CROWD_ORACLE_H_
#define CROWDTOPK_CROWD_ORACLE_H_

#include <cstdint>

#include "crowd/types.h"
#include "util/random.h"

namespace crowdtopk::crowd {

class JudgmentOracle {
 public:
  virtual ~JudgmentOracle() = default;

  // Number of items the oracle can judge.
  virtual int64_t num_items() const = 0;

  // One pairwise preference judgment v(i, j) in [-1, 1]; positive favours i.
  virtual double PreferenceJudgment(ItemId i, ItemId j,
                                    util::Rng* rng) const = 0;

  // One pairwise binary judgment in {-1, +1}. The default derives it from a
  // preference judgment by taking the sign, re-drawing on exact ties
  // (matching Section 3.2: tied samples are dropped as unidentifiable).
  virtual double BinaryJudgment(ItemId i, ItemId j, util::Rng* rng) const;

  // One graded (absolute) judgment of a single item, normalised to [0, 1].
  virtual double GradedJudgment(ItemId i, util::Rng* rng) const = 0;
};

}  // namespace crowdtopk::crowd

#endif  // CROWDTOPK_CROWD_ORACLE_H_
