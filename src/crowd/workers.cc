#include "crowd/workers.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace crowdtopk::crowd {

WorkerPoolOracle::WorkerPoolOracle(const JudgmentOracle* base,
                                   WorkerPoolOptions options, uint64_t seed)
    : base_(base) {
  CROWDTOPK_CHECK(base != nullptr);
  CROWDTOPK_CHECK_GE(options.num_workers, 1);
  CROWDTOPK_CHECK_GE(options.scale_spread, 1.0);
  CROWDTOPK_CHECK(options.spammer_fraction >= 0.0 &&
                  options.spammer_fraction <= 1.0);
  util::Rng rng(seed ^ 0x3083e25ULL);
  workers_.reserve(options.num_workers);
  const int64_t num_spammers = static_cast<int64_t>(
      std::llround(options.spammer_fraction *
                   static_cast<double>(options.num_workers)));
  for (int64_t w = 0; w < options.num_workers; ++w) {
    WorkerProfile profile;
    if (w < num_spammers) {
      profile.spam_rate = 1.0;
    } else {
      const double log_spread = std::log(options.scale_spread);
      profile.scale = std::exp(rng.Uniform(-log_spread, log_spread));
      profile.bias = rng.Gaussian(0.0, options.bias_stddev);
      profile.noise = rng.Uniform(0.0, options.max_noise);
    }
    workers_.push_back(profile);
  }
  rng.Shuffle(&workers_);
}

WorkerPoolOracle::WorkerPoolOracle(const JudgmentOracle* base,
                                   std::vector<WorkerProfile> workers)
    : base_(base), workers_(std::move(workers)) {
  CROWDTOPK_CHECK(base != nullptr);
  CROWDTOPK_CHECK(!workers_.empty());
}

double WorkerPoolOracle::PreferenceJudgment(ItemId i, ItemId j,
                                            util::Rng* rng) const {
  const WorkerProfile& worker =
      workers_[rng->UniformInt(static_cast<int64_t>(workers_.size()))];
  if (worker.spam_rate > 0.0 && rng->Bernoulli(worker.spam_rate)) {
    return rng->Uniform(-1.0, 1.0);
  }
  double v = base_->PreferenceJudgment(i, j, rng);
  v = worker.scale * v + worker.bias;
  if (worker.noise > 0.0) v += rng->Gaussian(0.0, worker.noise);
  return std::clamp(v, -1.0, 1.0);
}

double WorkerPoolOracle::GradedJudgment(ItemId i, util::Rng* rng) const {
  const WorkerProfile& worker =
      workers_[rng->UniformInt(static_cast<int64_t>(workers_.size()))];
  if (worker.spam_rate > 0.0 && rng->Bernoulli(worker.spam_rate)) {
    return rng->Uniform(0.0, 1.0);
  }
  double g = base_->GradedJudgment(i, rng);
  // Scale around the neutral grade 0.5; bias and noise act directly.
  g = 0.5 + worker.scale * (g - 0.5) + worker.bias;
  if (worker.noise > 0.0) g += rng->Gaussian(0.0, worker.noise);
  return std::clamp(g, 0.0, 1.0);
}

}  // namespace crowdtopk::crowd
