#include "stats/anytime.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace crowdtopk::stats {

double AnytimeHalfWidth(int64_t n, double sd, double alpha) {
  CROWDTOPK_CHECK_GE(n, 2);
  CROWDTOPK_CHECK(sd >= 0.0);
  CROWDTOPK_CHECK(alpha > 0.0 && alpha < 1.0);
  // The bound plugs in the *empirical* standard deviation, which is too
  // unreliable below ~10 samples to support a trajectory-wide guarantee
  // (empirically, almost all coverage violations happen there); the
  // sequence therefore only activates at n >= 10.
  constexpr int64_t kMinSamples = 10;
  if (n < kMinSamples) return std::numeric_limits<double>::infinity();
  // Stitched LIL bound; the 1.7 scale absorbs the union over geometric
  // epochs (a standard conservative constant for this form).
  constexpr double kScale = 1.7;
  const double nd = static_cast<double>(n);
  const double iterated_log = std::log(std::max(1.0, std::log(M_E * nd)));
  const double radius =
      kScale * std::sqrt((iterated_log + std::log(2.0 / alpha)) / nd);
  return sd * radius;
}

}  // namespace crowdtopk::stats
