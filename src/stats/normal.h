// Standard normal distribution: density, CDF (Phi), quantile (Phi^-1).
//
// Used by Thurstone's probability calculation in reference-based sorting
// (Section 5.3), by the binary-judgment analysis (Appendix D), and as the
// large-degrees-of-freedom limit of the Student-t quantile.

#ifndef CROWDTOPK_STATS_NORMAL_H_
#define CROWDTOPK_STATS_NORMAL_H_

namespace crowdtopk::stats {

// Density of N(0, 1) at z.
double NormalPdf(double z);

// Phi(z) = P(Z <= z) for Z ~ N(0, 1); accurate in both tails (erfc-based).
double NormalCdf(double z);

// Phi^-1(p) for p in (0, 1); Acklam's rational approximation refined by one
// Halley step, giving ~full double precision. CHECK-fails outside (0, 1).
double NormalQuantile(double p);

}  // namespace crowdtopk::stats

#endif  // CROWDTOPK_STATS_NORMAL_H_
