// Hoeffding-inequality confidence bounds for bounded samples.
//
// Used by the pairwise *binary* judgment baseline (Busa-Fekete et al. [8],
// analysed in Appendix D): binary votes live in {-1, +1}, so Hoeffding gives
// |mean - sample_mean| <= sqrt(range^2 ln(2/alpha) / (2 n)) with probability
// at least 1 - alpha.

#ifndef CROWDTOPK_STATS_HOEFFDING_H_
#define CROWDTOPK_STATS_HOEFFDING_H_

#include <cstdint>

namespace crowdtopk::stats {

// Half-width of the two-sided 1-alpha Hoeffding interval after n samples of
// a variable bounded in an interval of length `range`. Requires n >= 1,
// range > 0, alpha in (0, 1).
double HoeffdingHalfWidth(int64_t n, double range, double alpha);

// Smallest n such that HoeffdingHalfWidth(n, range, alpha) <= target.
// Equation (3) of the paper with range = 2: n_b = 2 ln(2/alpha) / mu~^2.
int64_t HoeffdingRequiredSamples(double target, double range, double alpha);

}  // namespace crowdtopk::stats

#endif  // CROWDTOPK_STATS_HOEFFDING_H_
