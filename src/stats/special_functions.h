// Special functions backing the distribution code.
//
// The paper's judgment models need Student-t quantiles and normal tail
// probabilities (Sections 3.1, 5.3, Appendix D/E); no third-party math
// library is assumed, so the regularized incomplete beta function and its
// inverse are implemented here (Lentz continued fraction + bracketed Newton),
// following the classical formulations (Abramowitz & Stegun 26.5, Numerical
// Recipes 6.4).

#ifndef CROWDTOPK_STATS_SPECIAL_FUNCTIONS_H_
#define CROWDTOPK_STATS_SPECIAL_FUNCTIONS_H_

namespace crowdtopk::stats {

// Natural log of |Gamma(x)|. Thread-safe, unlike std::lgamma, which writes
// the process-global `signgam` on every call — a data race when experiment
// repetitions run concurrently (src/exec). All stats code calls this
// wrapper instead of std::lgamma directly.
double LogGamma(double x);

// Natural log of the Beta function B(a, b). Requires a > 0, b > 0.
double LogBeta(double a, double b);

// Regularized incomplete beta function I_x(a, b) for x in [0, 1], a, b > 0.
// I_0 = 0, I_1 = 1; monotonically increasing in x.
double RegularizedIncompleteBeta(double a, double b, double x);

// Inverse of the regularized incomplete beta: returns x such that
// I_x(a, b) = p, for p in [0, 1]. Accurate to ~1e-13 relative.
double InverseRegularizedIncompleteBeta(double a, double b, double p);

}  // namespace crowdtopk::stats

#endif  // CROWDTOPK_STATS_SPECIAL_FUNCTIONS_H_
