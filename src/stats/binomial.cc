#include "stats/binomial.h"

#include <algorithm>
#include <cmath>

#include "stats/normal.h"
#include "stats/special_functions.h"
#include "util/check.h"

namespace crowdtopk::stats {

double LogBinomialCoefficient(int64_t n, int64_t k) {
  CROWDTOPK_CHECK(k >= 0 && k <= n);
  return LogGamma(static_cast<double>(n) + 1.0) -
         LogGamma(static_cast<double>(k) + 1.0) -
         LogGamma(static_cast<double>(n - k) + 1.0);
}

double BinomialPmf(int64_t n, int64_t k, double p) {
  CROWDTOPK_CHECK(p >= 0.0 && p <= 1.0);
  CROWDTOPK_CHECK(k >= 0 && k <= n);
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = LogBinomialCoefficient(n, k) +
                         static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double BinomialTailAtLeast(int64_t n, int64_t k, double p) {
  CROWDTOPK_CHECK(p >= 0.0 && p <= 1.0);
  CROWDTOPK_CHECK_GE(n, 0);
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  return RegularizedIncompleteBeta(static_cast<double>(k),
                                   static_cast<double>(n - k) + 1.0, p);
}

ProportionInterval WilsonScoreInterval(int64_t successes, int64_t n,
                                       double alpha) {
  CROWDTOPK_CHECK_GE(n, 1);
  CROWDTOPK_CHECK(successes >= 0 && successes <= n);
  CROWDTOPK_CHECK(alpha > 0.0 && alpha < 1.0);
  const double z = NormalQuantile(1.0 - 0.5 * alpha);
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(successes) / nn;
  const double z2 = z * z;
  const double denominator = 1.0 + z2 / nn;
  const double center = (p + z2 / (2.0 * nn)) / denominator;
  const double half_width =
      z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn)) / denominator;
  ProportionInterval interval;
  interval.lo = std::max(0.0, center - half_width);
  interval.hi = std::min(1.0, center + half_width);
  return interval;
}

double BinomialTailAtMost(int64_t n, int64_t k, double p) {
  return 1.0 - BinomialTailAtLeast(n, k + 1, p);
}

double BinomialTailAtLeastBySum(int64_t n, int64_t k, double p) {
  CROWDTOPK_CHECK(p >= 0.0 && p <= 1.0);
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  double total = 0.0;
  for (int64_t i = k; i <= n; ++i) total += BinomialPmf(n, i, p);
  return total > 1.0 ? 1.0 : total;
}

}  // namespace crowdtopk::stats
