// Binomial tail probabilities.
//
// The reference-selection analysis (Lemma 2 and the optimization problem (2))
// evaluates P{Binomial(m, p) >= i} terms for the median-of-maxima bound;
// these are computed exactly through the incomplete beta identity, with a
// direct log-space summation available for cross-checking.

#ifndef CROWDTOPK_STATS_BINOMIAL_H_
#define CROWDTOPK_STATS_BINOMIAL_H_

#include <cstdint>

namespace crowdtopk::stats {

// log of C(n, k). Requires 0 <= k <= n.
double LogBinomialCoefficient(int64_t n, int64_t k);

// P(X = k) for X ~ Binomial(n, p).
double BinomialPmf(int64_t n, int64_t k, double p);

// P(X >= k) for X ~ Binomial(n, p); exact via the identity
// P(X >= k) = I_p(k, n - k + 1) for 1 <= k <= n, handling the edges.
double BinomialTailAtLeast(int64_t n, int64_t k, double p);

// A two-sided confidence interval for a Binomial proportion, clamped to
// [0, 1].
struct ProportionInterval {
  double lo = 0.0;
  double hi = 1.0;
};

// Wilson score interval at confidence 1 - alpha for a proportion with
// `successes` successes in `n` trials. Requires n >= 1,
// 0 <= successes <= n, alpha in (0, 1). Unlike the Wald interval it never
// degenerates at the edges: p_hat = 0 gives lo = 0 with hi > 0, p_hat = 1
// gives hi = 1 with lo < 1, and n = 1 stays well-defined. The shared
// pass/fail band of the guarantee-verification harness (src/verify) and of
// error-rate benches; do not re-derive normal-approximation bands ad hoc.
ProportionInterval WilsonScoreInterval(int64_t successes, int64_t n,
                                       double alpha);

// P(X <= k) = 1 - P(X >= k + 1).
double BinomialTailAtMost(int64_t n, int64_t k, double p);

// Direct log-space summation of P(X >= k); O(n). For testing and for small n.
double BinomialTailAtLeastBySum(int64_t n, int64_t k, double p);

}  // namespace crowdtopk::stats

#endif  // CROWDTOPK_STATS_BINOMIAL_H_
