#include "stats/special_functions.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace crowdtopk::stats {

double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  // lgamma_r reports the sign through an out-parameter instead of writing
  // the process-global `signgam`, so concurrent runs do not race.
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

double LogBeta(double a, double b) {
  CROWDTOPK_CHECK(a > 0.0 && b > 0.0);
  return LogGamma(a) + LogGamma(b) - LogGamma(a + b);
}

namespace {

// Continued-fraction expansion of the incomplete beta (modified Lentz).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3.0e-16;
  constexpr double kFpMin = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  CROWDTOPK_CHECK(a > 0.0 && b > 0.0);
  CROWDTOPK_CHECK(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_front =
      a * std::log(x) + b * std::log1p(-x) - LogBeta(a, b);
  const double front = std::exp(log_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double InverseRegularizedIncompleteBeta(double a, double b, double p) {
  CROWDTOPK_CHECK(a > 0.0 && b > 0.0);
  CROWDTOPK_CHECK(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;

  // Bracketed Newton: the function is monotone, so keep a [lo, hi] bracket
  // and fall back to bisection whenever a Newton step escapes it.
  double lo = 0.0;
  double hi = 1.0;
  double x = a / (a + b);  // crude but safe starting point
  const double log_beta = LogBeta(a, b);
  for (int iteration = 0; iteration < 200; ++iteration) {
    const double f = RegularizedIncompleteBeta(a, b, x) - p;
    if (f > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    // Derivative of I_x(a,b) wrt x is the beta density.
    double next;
    if (x > 0.0 && x < 1.0) {
      const double log_pdf =
          (a - 1.0) * std::log(x) + (b - 1.0) * std::log1p(-x) - log_beta;
      const double pdf = std::exp(log_pdf);
      next = (pdf > 0.0 && std::isfinite(pdf)) ? x - f / pdf : 0.5 * (lo + hi);
    } else {
      next = 0.5 * (lo + hi);
    }
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::fabs(next - x) <= 1e-15 * (1.0 + std::fabs(x))) {
      x = next;
      break;
    }
    x = next;
  }
  return x;
}

}  // namespace crowdtopk::stats
