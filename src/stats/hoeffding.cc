#include "stats/hoeffding.h"

#include <cmath>

#include "util/check.h"

namespace crowdtopk::stats {

double HoeffdingHalfWidth(int64_t n, double range, double alpha) {
  CROWDTOPK_CHECK_GE(n, 1);
  CROWDTOPK_CHECK(range > 0.0);
  CROWDTOPK_CHECK(alpha > 0.0 && alpha < 1.0);
  return range * std::sqrt(std::log(2.0 / alpha) /
                           (2.0 * static_cast<double>(n)));
}

int64_t HoeffdingRequiredSamples(double target, double range, double alpha) {
  CROWDTOPK_CHECK(target > 0.0);
  CROWDTOPK_CHECK(range > 0.0);
  CROWDTOPK_CHECK(alpha > 0.0 && alpha < 1.0);
  const double n = range * range * std::log(2.0 / alpha) /
                   (2.0 * target * target);
  return static_cast<int64_t>(std::ceil(n));
}

}  // namespace crowdtopk::stats
