// Welford's online mean/variance accumulator.
//
// The comparison process (Section 3.1) re-estimates the sample mean and the
// sample standard deviation after every purchased judgment; Welford's update
// makes each step O(1) and numerically stable for long bags.

#ifndef CROWDTOPK_STATS_RUNNING_STATS_H_
#define CROWDTOPK_STATS_RUNNING_STATS_H_

#include <cstdint>

namespace crowdtopk::stats {

class RunningStats {
 public:
  RunningStats() = default;

  // Adds one observation.
  void Add(double x);

  // Merges another accumulator (parallel-Welford / Chan et al.).
  void Merge(const RunningStats& other);

  // Number of observations so far.
  int64_t count() const { return count_; }

  // Sample mean; 0 when empty.
  double Mean() const { return mean_; }

  // Unbiased sample variance (divides by n-1); 0 when count < 2.
  double Variance() const;

  // sqrt(Variance()).
  double StdDev() const;

  // Sum of observations.
  double Sum() const { return mean_ * static_cast<double>(count_); }

  // Raw sum of squared deviations from the running mean. Together with
  // count() and Mean() this is the accumulator's full state; it is what the
  // cross-query judgment cache (src/cache) memoises so a restored bag is
  // bit-identical to the donor's.
  double M2() const { return m2_; }

  // Restores the full accumulator state from a (count, mean, m2) summary
  // previously read off another instance. Only valid on an empty
  // accumulator.
  void Restore(int64_t count, double mean, double m2);

  void Reset();

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
};

}  // namespace crowdtopk::stats

#endif  // CROWDTOPK_STATS_RUNNING_STATS_H_
