#include "stats/running_stats.h"

#include <cmath>

#include "util/check.h"

namespace crowdtopk::stats {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

void RunningStats::Restore(int64_t count, double mean, double m2) {
  CROWDTOPK_CHECK_EQ(count_, 0);
  CROWDTOPK_CHECK_GE(count, 0);
  count_ = count;
  mean_ = mean;
  m2_ = m2;
}

void RunningStats::Reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

}  // namespace crowdtopk::stats
