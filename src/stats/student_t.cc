#include "stats/student_t.h"

#include <cmath>
#include <limits>

#include "stats/normal.h"
#include "stats/special_functions.h"
#include "util/check.h"

namespace crowdtopk::stats {

double StudentTPdf(double t, double df) {
  CROWDTOPK_CHECK(df > 0.0);
  const double log_norm = LogGamma(0.5 * (df + 1.0)) - LogGamma(0.5 * df) -
                          0.5 * std::log(df * M_PI);
  return std::exp(log_norm -
                  0.5 * (df + 1.0) * std::log1p(t * t / df));
}

double StudentTCdf(double t, double df) {
  CROWDTOPK_CHECK(df > 0.0);
  if (t == 0.0) return 0.5;
  const double x = df / (df + t * t);
  const double tail = 0.5 * RegularizedIncompleteBeta(0.5 * df, 0.5, x);
  return t > 0.0 ? 1.0 - tail : tail;
}

double StudentTQuantile(double p, double df) {
  CROWDTOPK_CHECK(p > 0.0 && p < 1.0);
  CROWDTOPK_CHECK(df > 0.0);
  if (df > 1e6) return NormalQuantile(p);
  if (p == 0.5) return 0.0;
  // Symmetric: solve for the upper half and mirror.
  const bool upper = p > 0.5;
  const double tail2 = upper ? 2.0 * (1.0 - p) : 2.0 * p;  // I_x(df/2, 1/2)
  const double x = InverseRegularizedIncompleteBeta(0.5 * df, 0.5, tail2);
  // x = df / (df + t^2)  =>  t = sqrt(df (1 - x) / x).
  double t;
  if (x <= 0.0) {
    t = std::numeric_limits<double>::infinity();
  } else {
    t = std::sqrt(df * (1.0 - x) / x);
  }
  return upper ? t : -t;
}

double StudentTCritical(double alpha, double df) {
  CROWDTOPK_CHECK(alpha > 0.0 && alpha < 1.0);
  return StudentTQuantile(1.0 - 0.5 * alpha, df);
}

TCriticalCache::TCriticalCache(double alpha) : alpha_(alpha) {
  CROWDTOPK_CHECK(alpha > 0.0 && alpha < 1.0);
  normal_limit_ = NormalQuantile(1.0 - 0.5 * alpha);
}

double TCriticalCache::Get(int64_t df) {
  CROWDTOPK_CHECK_GE(df, 1);
  if (df > kMaxCachedDf) return normal_limit_;
  const size_t index = static_cast<size_t>(df);
  if (index >= cache_.size()) {
    cache_.resize(index + 1, std::numeric_limits<double>::quiet_NaN());
  }
  if (std::isnan(cache_[index])) {
    cache_[index] = StudentTCritical(alpha_, static_cast<double>(df));
  }
  return cache_[index];
}

}  // namespace crowdtopk::stats
