// Anytime-valid confidence sequences (law-of-the-iterated-logarithm style).
// An extension beyond the paper, plugged into the Section 3 comparison
// process as Estimator::kAnytime (judgment/comparison.h).
//
// The paper's Algorithm 1 (StudentComp) checks a *fixed-sample-size*
// Student-t interval after every purchased judgment. Under such continuous
// monitoring the realised error
// probability of the fixed-n interval exceeds its nominal alpha (the
// peeking problem of sequential analysis). A confidence *sequence* widens
// the interval by an iterated-logarithm factor so that the coverage holds
// simultaneously over all sample sizes:
//
//   P( exists n >= 2 : |mean_n - mu| > HalfWidth(n) ) <= alpha.
//
// We use a stitched LIL bound of the standard form
//   HalfWidth(n) = sd_n * kScale * sqrt((log log(e n) + log(2/alpha)) / n),
// a conservative, easily-auditable choice (cf. Howard et al., "Time-uniform
// Chernoff bounds"; Jamieson et al., lil'UCB). The comparison process
// exposes it as Estimator::kAnytime; the ablation bench
// `ablation_anytime_validity` measures the realised any-time error of both
// rules.

#ifndef CROWDTOPK_STATS_ANYTIME_H_
#define CROWDTOPK_STATS_ANYTIME_H_

#include <cstdint>

namespace crowdtopk::stats {

// Half-width of the level-(1-alpha) confidence sequence around the sample
// mean after n samples with sample standard deviation sd. Requires n >= 2.
double AnytimeHalfWidth(int64_t n, double sd, double alpha);

}  // namespace crowdtopk::stats

#endif  // CROWDTOPK_STATS_ANYTIME_H_
