// Student's t-distribution: pdf, CDF, quantile, and a cached critical value.
//
// Algorithm 1 (StudentComp) evaluates t_{alpha/2, n-1} after every purchased
// judgment, so the two-sided critical value is on the hot path; TCriticalCache
// memoizes it per degrees-of-freedom for a fixed confidence level.

#ifndef CROWDTOPK_STATS_STUDENT_T_H_
#define CROWDTOPK_STATS_STUDENT_T_H_

#include <cstdint>
#include <vector>

namespace crowdtopk::stats {

// Density of the t-distribution with `df` degrees of freedom at t.
double StudentTPdf(double t, double df);

// P(T <= t) for T ~ t(df). Requires df > 0.
double StudentTCdf(double t, double df);

// Quantile: returns t such that P(T <= t) = p, for p in (0, 1), df > 0.
// For df > 1e6 the normal quantile is used (the distributions agree to well
// below the accuracy the comparison process needs).
double StudentTQuantile(double p, double df);

// Two-sided critical value t_{alpha/2, df}: the value exceeded with
// right-tail probability alpha/2. Requires alpha in (0, 1).
double StudentTCritical(double alpha, double df);

// Memoized StudentTCritical for one fixed alpha, indexed by integer df.
// Grows on demand; entry df=0 is unused.
class TCriticalCache {
 public:
  explicit TCriticalCache(double alpha);

  double alpha() const { return alpha_; }

  // Returns t_{alpha/2, df}. Requires df >= 1.
  double Get(int64_t df);

 private:
  // Above this many degrees of freedom, the normal quantile is used and no
  // cache entry is stored.
  static constexpr int64_t kMaxCachedDf = 1 << 20;

  double alpha_;
  double normal_limit_;  // z_{alpha/2}
  std::vector<double> cache_;  // NaN = not yet computed
};

}  // namespace crowdtopk::stats

#endif  // CROWDTOPK_STATS_STUDENT_T_H_
