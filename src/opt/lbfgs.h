// Limited-memory BFGS minimiser.
//
// The CrowdBT baseline (Section 6.5) fits Bradley-Terry-Luce scores by
// maximum likelihood; the original paper optimises with BFGS [31]. This is a
// compact L-BFGS (two-loop recursion) with Armijo backtracking, sufficient
// for the smooth, well-conditioned BTL negative log-likelihood.

#ifndef CROWDTOPK_OPT_LBFGS_H_
#define CROWDTOPK_OPT_LBFGS_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace crowdtopk::opt {

// Objective: fills *gradient (resized by the caller contract to x.size())
// and returns f(x).
using Objective =
    std::function<double(const std::vector<double>& x,
                         std::vector<double>* gradient)>;

struct LbfgsOptions {
  int max_iterations = 100;
  int history = 8;                 // number of (s, y) pairs kept
  double gradient_tolerance = 1e-6;  // stop when ||g||_inf below this
  double armijo_c1 = 1e-4;
  double step_shrink = 0.5;
  int max_line_search_steps = 40;
};

struct LbfgsResult {
  std::vector<double> x;      // final iterate
  double value = 0.0;         // f at the final iterate
  int iterations = 0;         // outer iterations performed
  bool converged = false;     // gradient tolerance reached
};

// Minimises `objective` starting from `x0`.
LbfgsResult MinimizeLbfgs(const Objective& objective,
                          std::vector<double> x0,
                          const LbfgsOptions& options = LbfgsOptions());

}  // namespace crowdtopk::opt

#endif  // CROWDTOPK_OPT_LBFGS_H_
