#include "opt/lbfgs.h"

#include <cmath>
#include <deque>

#include "util/check.h"

namespace crowdtopk::opt {

namespace {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) total += a[i] * b[i];
  return total;
}

double InfNorm(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

}  // namespace

LbfgsResult MinimizeLbfgs(const Objective& objective, std::vector<double> x0,
                          const LbfgsOptions& options) {
  CROWDTOPK_CHECK(!x0.empty());
  const size_t n = x0.size();

  LbfgsResult result;
  result.x = std::move(x0);

  std::vector<double> gradient(n, 0.0);
  double value = objective(result.x, &gradient);

  struct Pair {
    std::vector<double> s, y;
    double rho;
  };
  std::deque<Pair> history;

  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    result.iterations = iteration;
    if (InfNorm(gradient) <= options.gradient_tolerance) {
      result.converged = true;
      break;
    }

    // Two-loop recursion: direction = -H * gradient.
    std::vector<double> q = gradient;
    std::vector<double> alphas(history.size());
    for (size_t i = history.size(); i-- > 0;) {
      const Pair& pair = history[i];
      alphas[i] = pair.rho * Dot(pair.s, q);
      for (size_t j = 0; j < n; ++j) q[j] -= alphas[i] * pair.y[j];
    }
    // Initial Hessian scaling gamma = s'y / y'y from the latest pair.
    double gamma = 1.0;
    if (!history.empty()) {
      const Pair& last = history.back();
      const double yy = Dot(last.y, last.y);
      if (yy > 0.0) gamma = Dot(last.s, last.y) / yy;
    }
    for (double& qi : q) qi *= gamma;
    for (size_t i = 0; i < history.size(); ++i) {
      const Pair& pair = history[i];
      const double beta = pair.rho * Dot(pair.y, q);
      for (size_t j = 0; j < n; ++j) q[j] += (alphas[i] - beta) * pair.s[j];
    }
    std::vector<double> direction(n);
    for (size_t j = 0; j < n; ++j) direction[j] = -q[j];

    double directional = Dot(gradient, direction);
    if (directional >= 0.0) {
      // Not a descent direction (can happen with a stale history); restart
      // with steepest descent.
      history.clear();
      for (size_t j = 0; j < n; ++j) direction[j] = -gradient[j];
      directional = -Dot(gradient, gradient);
      if (directional == 0.0) {
        result.converged = true;
        break;
      }
    }

    // Armijo backtracking.
    double step = 1.0;
    std::vector<double> x_new(n);
    std::vector<double> gradient_new(n, 0.0);
    double value_new = value;
    bool accepted = false;
    for (int ls = 0; ls < options.max_line_search_steps; ++ls) {
      for (size_t j = 0; j < n; ++j) {
        x_new[j] = result.x[j] + step * direction[j];
      }
      value_new = objective(x_new, &gradient_new);
      if (std::isfinite(value_new) &&
          value_new <= value + options.armijo_c1 * step * directional) {
        accepted = true;
        break;
      }
      step *= options.step_shrink;
    }
    if (!accepted) break;  // line search failed; give up at current iterate

    Pair pair;
    pair.s.resize(n);
    pair.y.resize(n);
    for (size_t j = 0; j < n; ++j) {
      pair.s[j] = x_new[j] - result.x[j];
      pair.y[j] = gradient_new[j] - gradient[j];
    }
    const double sy = Dot(pair.s, pair.y);
    if (sy > 1e-12) {
      pair.rho = 1.0 / sy;
      history.push_back(std::move(pair));
      if (static_cast<int>(history.size()) > options.history) {
        history.pop_front();
      }
    }

    result.x = std::move(x_new);
    gradient = std::move(gradient_new);
    value = value_new;
    // Reallocate scratch moved away above.
    x_new.assign(n, 0.0);
    gradient_new.assign(n, 0.0);
  }

  result.value = value;
  return result;
}

}  // namespace crowdtopk::opt
