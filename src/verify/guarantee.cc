#include "verify/guarantee.h"

#include <cmath>
#include <functional>
#include <memory>
#include <utility>

#include "core/spr.h"
#include "crowd/platform.h"
#include "data/gaussian_dataset.h"
#include "data/generators.h"
#include "stats/binomial.h"
#include "stats/student_t.h"
#include "telemetry/export.h"
#include "telemetry/recorder.h"
#include "util/check.h"
#include "util/random.h"

namespace crowdtopk::verify {
namespace {

// Salt separating the fault pool's profile seed from the per-trial streams
// derived from the same master seed.
constexpr uint64_t kFaultPoolStream = 0x76657269667900ULL;  // "verify"

// '/' is the telemetry phase-path separator; keep labels one level deep.
std::string PhaseToken(const std::string& label) {
  std::string token = label;
  for (char& c : token) {
    if (c == '/') c = '_';
  }
  return token.empty() ? "check" : token;
}

// A trial returns {errors, ties, workload, bernoulli trials}; the driver
// accumulates blocks and applies the sequential stopping rule. All
// arithmetic that feeds the rule is integer, so the trajectory is exact.
GuaranteeReport RunSequential(
    const std::string& label, const std::string& kind, double alpha,
    double contract, const VerifyOptions& options, exec::RunEngine* engine,
    uint64_t seed,
    const std::function<std::vector<double>(int64_t, uint64_t)>& trial,
    int64_t jobs_override) {
  CROWDTOPK_CHECK(engine != nullptr);
  CROWDTOPK_CHECK_GE(options.max_trials, 1);
  CROWDTOPK_CHECK_GE(options.block_trials, 1);
  CROWDTOPK_CHECK(contract > 0.0 && contract < 1.0);

  GuaranteeReport report;
  report.label = label;
  report.kind = kind;
  report.alpha = alpha;
  report.contract = contract;

  int64_t runs = 0;
  double workload_sum = 0.0;
  int64_t block_index = 0;
  while (runs < options.max_trials) {
    const int64_t block =
        std::min(options.block_trials, options.max_trials - runs);
    const int64_t base = runs;
    // Trial t's seed is SplitSeed(seed, t) regardless of which block or
    // worker executes it; the engine-provided per-run seed is ignored so
    // the stream survives re-blocking.
    const std::vector<std::vector<double>> records = engine->Run(
        {"verify/" + kind + "/" + label, block_index}, block, seed,
        [&](int64_t run, uint64_t) {
          const int64_t t = base + run;
          return trial(t, util::SplitSeed(seed, static_cast<uint64_t>(t)));
        },
        jobs_override);
    ++block_index;
    for (const std::vector<double>& record : records) {
      report.errors += std::llround(record[0]);
      report.ties += std::llround(record[1]);
      workload_sum += record[2];
      report.trials += std::llround(record[3]);
    }
    runs += block;
    const stats::ProportionInterval band = stats::WilsonScoreInterval(
        report.errors, report.trials, options.band_alpha);
    // Early stop once the band decides either way: entirely at or below the
    // contract (decisive pass) or entirely above it (decisive violation).
    if (band.hi <= contract || band.lo > contract) {
      report.decisive = true;
      break;
    }
  }

  const stats::ProportionInterval band = stats::WilsonScoreInterval(
      report.errors, report.trials, options.band_alpha);
  report.error_rate =
      static_cast<double>(report.errors) / static_cast<double>(report.trials);
  report.wilson_lo = band.lo;
  report.wilson_hi = band.hi;
  report.mean_workload = workload_sum / static_cast<double>(runs);
  report.verdict =
      report.wilson_lo > contract ? Verdict::kFail : Verdict::kPass;
  return report;
}

}  // namespace

const char* VerdictName(Verdict verdict) {
  return verdict == Verdict::kPass ? "PASS" : "FAIL";
}

GuaranteeReport VerifyComparisonGuarantee(const CompCheckSpec& spec,
                                          const VerifyOptions& options,
                                          exec::RunEngine* engine,
                                          uint64_t seed) {
  CROWDTOPK_CHECK(spec.alpha > 0.0 && spec.alpha < 1.0);
  CROWDTOPK_CHECK(spec.effect > 0.0);
  // Ground truth: item 1 beats item 0; one judgment has mean/sd = effect.
  data::GaussianDataset pair("verify", {0.0, 1.0}, 1.0 / spec.effect, 10.0);
  std::unique_ptr<fault::FaultInjectionOracle> injector;
  const crowd::JudgmentOracle* oracle = &pair;
  if (fault::AnyValueFaults(spec.faults)) {
    // Immutable after construction: safe to share across parallel trials.
    injector = std::make_unique<fault::FaultInjectionOracle>(
        &pair, spec.faults, util::SplitSeed(seed, kFaultPoolStream));
    oracle = injector.get();
  }
  judgment::ComparisonOptions comparison;
  comparison.alpha = spec.alpha;
  comparison.budget = spec.budget;
  comparison.min_workload = spec.min_workload;
  comparison.batch_size = spec.batch_size;
  comparison.estimator = spec.estimator;

  return RunSequential(
      spec.label, "comp", spec.alpha, /*contract=*/spec.alpha, options,
      engine, seed,
      [&](int64_t, uint64_t trial_seed) -> std::vector<double> {
        crowd::CrowdPlatform platform(oracle, trial_seed);
        // Per-trial cache: TCriticalCache grows on demand and is not
        // thread-safe, so concurrent trials must not share one.
        stats::TCriticalCache t_cache(judgment::EffectiveAlpha(comparison));
        judgment::ComparisonSession session(1, 0, &comparison, &t_cache);
        const crowd::ComparisonOutcome outcome =
            session.RunToCompletion(&platform);
        return {outcome == crowd::ComparisonOutcome::kRightWins ? 1.0 : 0.0,
                outcome == crowd::ComparisonOutcome::kTie ? 1.0 : 0.0,
                static_cast<double>(session.workload()), 1.0};
      },
      options.jobs_override);
}

GuaranteeReport VerifySprGuarantee(const SprCheckSpec& spec,
                                   const VerifyOptions& options,
                                   exec::RunEngine* engine, uint64_t seed) {
  CROWDTOPK_CHECK(spec.alpha > 0.0 && spec.alpha < 1.0);
  CROWDTOPK_CHECK(spec.k >= 1 && spec.k <= spec.n);
  const std::unique_ptr<data::GaussianDataset> ladder =
      data::MakeUniformLadder(spec.n, spec.gap, spec.noise);
  std::unique_ptr<fault::FaultInjectionOracle> injector;
  const crowd::JudgmentOracle* oracle = ladder.get();
  if (fault::AnyValueFaults(spec.faults)) {
    injector = std::make_unique<fault::FaultInjectionOracle>(
        ladder.get(), spec.faults, util::SplitSeed(seed, kFaultPoolStream));
    oracle = injector.get();
  }
  core::SprOptions spr_options;
  spr_options.comparison.alpha = spec.alpha;
  spr_options.comparison.budget = spec.budget;
  spr_options.sweet_spot_c = spec.sweet_spot_c;
  core::Spr spr(spr_options);
  const int64_t jobs_override =
      spr.concurrent_runs_safe() ? options.jobs_override : 1;

  // Section 5.4: expected precision >= (1 - alpha) / c, i.e. the per-slot
  // top-k error rate is contracted to stay below 1 - (1 - alpha) / c.
  const double contract =
      1.0 - core::SprPrecisionLowerBound(spec.alpha, spec.sweet_spot_c);
  return RunSequential(
      spec.label, "spr", spec.alpha, contract, options, engine, seed,
      [&](int64_t, uint64_t trial_seed) -> std::vector<double> {
        crowd::CrowdPlatform platform(oracle, trial_seed);
        const core::TopKResult result = spr.Run(&platform, spec.k);
        // True top-k of the ladder: the k highest item ids.
        int64_t wrong = 0;
        for (const crowd::ItemId item : result.items) {
          if (item < spec.n - spec.k) ++wrong;
        }
        return {static_cast<double>(wrong), 0.0,
                static_cast<double>(result.total_microtasks),
                static_cast<double>(result.items.size())};
      },
      jobs_override);
}

std::vector<telemetry::TraceEvent> ReportEvents(
    const std::vector<GuaranteeReport>& reports) {
  telemetry::TraceRecorder recorder;
  telemetry::PhaseScope verify_scope(&recorder, "verify");
  for (const GuaranteeReport& report : reports) {
    telemetry::PhaseScope scope(&recorder,
                                PhaseToken(report.kind + "_" + report.label));
    recorder.RecordCounter("alpha", report.alpha);
    recorder.RecordCounter("contract", report.contract);
    recorder.RecordCounter("trials", static_cast<double>(report.trials));
    recorder.RecordCounter("errors", static_cast<double>(report.errors));
    recorder.RecordCounter("ties", static_cast<double>(report.ties));
    recorder.RecordCounter("error_rate", report.error_rate);
    recorder.RecordCounter("wilson_lo", report.wilson_lo);
    recorder.RecordCounter("wilson_hi", report.wilson_hi);
    recorder.RecordCounter("mean_workload", report.mean_workload);
    recorder.RecordCounter("decisive", report.decisive ? 1.0 : 0.0);
    recorder.RecordCounter("pass",
                           report.verdict == Verdict::kPass ? 1.0 : 0.0);
  }
  return recorder.events();
}

util::Status WriteReportJsonl(const std::vector<GuaranteeReport>& reports,
                              const std::string& path) {
  return telemetry::WriteJsonlFile(ReportEvents(reports), path);
}

}  // namespace crowdtopk::verify
