// Statistical-guarantee verification harness.
//
// The paper's core claim is probabilistic: COMP returns the correct
// preference with probability >= 1 - alpha (Section 3, Algorithms 1/5), and
// SPR's expected precision is >= (1 - alpha) / c (Section 5.4). This module
// turns those contracts into executable checks: Monte-Carlo sweeps estimate
// the empirical error rate on a ground-truth oracle — clean or wrapped in a
// fault::FaultInjectionOracle — and judge it against the contract with a
// shared Wilson pass/fail band (stats::WilsonScoreInterval). Trials are
// fanned out in fixed-size blocks on the exec::RunEngine with per-trial
// SplitSeed streams, and the sequential early-stop rule only looks at
// block-boundary integer counts, so a check's full trajectory — trial
// results, stopping point, verdict — is bit-identical for any worker count.
// Reports serialise through the telemetry layer as JSONL counter events
// (docs/OBSERVABILITY.md). Driven by tools/crowdtopk_verify and the verify
// unit/property tests.

#ifndef CROWDTOPK_VERIFY_GUARANTEE_H_
#define CROWDTOPK_VERIFY_GUARANTEE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/run_engine.h"
#include "fault/injector.h"
#include "judgment/comparison.h"
#include "telemetry/events.h"
#include "util/status.h"

namespace crowdtopk::verify {

// Sequential sampling policy shared by every check.
struct VerifyOptions {
  // Upper bound on Monte-Carlo trials per check.
  int64_t max_trials = 400;
  // Trials per sequential block; the early-stop rule is evaluated at block
  // boundaries only (what keeps the trajectory independent of the engine's
  // worker count).
  int64_t block_trials = 50;
  // Significance of the Wilson pass/fail band. Deliberately much stricter
  // than the contracts under test: a check only fails when the violation is
  // overwhelming, not on Monte-Carlo noise.
  double band_alpha = 0.002;
  // Per-check engine worker override; 0 = engine default.
  int64_t jobs_override = 0;
};

// One COMP error-rate check: a two-item ground-truth pair whose single
// judgment has mean/sd = effect, compared at significance alpha.
struct CompCheckSpec {
  // Report label; '/' is replaced by '_' in telemetry phase names.
  std::string label;
  judgment::Estimator estimator = judgment::Estimator::kStudent;
  double alpha = 0.05;
  // Effect size: mean / stddev of one preference judgment.
  double effect = 0.6;
  // Per-pair budget; large by default so ties cannot mask errors.
  int64_t budget = int64_t{1} << 20;
  int64_t min_workload = 30;
  int64_t batch_size = 30;
  // All-zero rates = clean crowd.
  fault::FaultPlan faults;
};

// One end-to-end SPR check on a separable ladder (data::MakeUniformLadder):
// each of the k returned slots is one Bernoulli trial (item in the true
// top-k or not), so the mean success rate is exactly the expected precision
// the Section 5.4 bound constrains.
struct SprCheckSpec {
  std::string label;
  double alpha = 0.05;
  double sweet_spot_c = 1.5;
  int64_t n = 30;
  int64_t k = 5;
  double gap = 1.0;
  double noise = 1.5;
  int64_t budget = 1000;
  fault::FaultPlan faults;
};

enum class Verdict {
  // The contract is consistent with the data: the Wilson band for the true
  // error rate still contains (or lies below) the contracted bound.
  kPass,
  // Guarantee violation: even the Wilson lower bound exceeds the contract.
  kFail,
};

const char* VerdictName(Verdict verdict);

struct GuaranteeReport {
  std::string label;
  std::string kind;       // "comp" | "spr"
  double alpha = 0.0;     // contract significance level
  double contract = 0.0;  // contracted max error rate being tested
  int64_t trials = 0;     // Bernoulli trials counted (runs, or k x runs)
  int64_t errors = 0;
  int64_t ties = 0;  // comp only: budget-exhausted undecided outcomes
  double error_rate = 0.0;
  double wilson_lo = 0.0;  // Wilson band at 1 - band_alpha
  double wilson_hi = 0.0;
  double mean_workload = 0.0;  // microtasks per comparison / TMC per query
  bool decisive = false;       // sequential early stop fired
  Verdict verdict = Verdict::kPass;
};

// Estimates COMP's empirical error rate against its 1 - alpha contract.
// Trial t draws everything from SplitSeed(seed, t) — independent of block
// size, dispatch order, and worker count.
GuaranteeReport VerifyComparisonGuarantee(const CompCheckSpec& spec,
                                          const VerifyOptions& options,
                                          exec::RunEngine* engine,
                                          uint64_t seed);

// Estimates SPR's per-slot top-k error rate against the Section 5.4 bound
// (contract: error <= 1 - (1 - alpha) / c).
GuaranteeReport VerifySprGuarantee(const SprCheckSpec& spec,
                                   const VerifyOptions& options,
                                   exec::RunEngine* engine, uint64_t seed);

// Serialises reports as telemetry counter events — one phase per check
// ("verify/<kind>_<label>"), one counter per field — ready for the JSONL
// exporter; schema in docs/OBSERVABILITY.md.
std::vector<telemetry::TraceEvent> ReportEvents(
    const std::vector<GuaranteeReport>& reports);

// Writes ReportEvents(reports) as JSONL to `path` (telemetry::WriteJsonlFile).
util::Status WriteReportJsonl(const std::vector<GuaranteeReport>& reports,
                              const std::string& path);

}  // namespace crowdtopk::verify

#endif  // CROWDTOPK_VERIFY_GUARANTEE_H_
