// Tests for the durable-state subsystem (src/persist): record codec
// round-trips, WAL framing / rotation / torn-tail truncation / repair,
// snapshot atomicity and corruption fallback, manifest fingerprint
// pinning, and the end-to-end contract — a serving replay halted
// mid-run and resumed from disk produces byte-identical reports for any
// worker count, even after the WAL tail is corrupted.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/heap_sort.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "judgment/comparison.h"
#include "persist/format.h"
#include "persist/manager.h"
#include "persist/recovery.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "serve/arrival.h"
#include "serve/query_service.h"
#include "serve/report.h"
#include "util/file_io.h"
#include "util/status.h"

namespace crowdtopk::persist {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  // Clear leftovers from a previous test-process run.
  std::vector<std::string> files;
  if (util::ListDirectoryFiles(dir, &files).ok()) {
    for (const std::string& f : files) {
      EXPECT_TRUE(util::RemoveFileIfExists(dir + "/" + f).ok());
    }
  }
  EXPECT_TRUE(util::EnsureDirectory(dir).ok());
  return dir;
}

cache::ExportedEntry SampleEntry() {
  cache::ExportedEntry entry;
  entry.universe = 3;
  entry.kind = 1;
  entry.lo = 4;
  entry.hi = 9;
  entry.entry.outcome = crowd::ComparisonOutcome::kLeftWins;
  entry.entry.decisive = true;
  entry.entry.alpha = 0.05;
  entry.entry.count = 37;
  entry.entry.mean = 0.123456789012345;
  entry.entry.m2 = 9.87654321e-3;
  entry.entry.first_stage_count = 12;
  entry.entry.first_stage_sd = 0.25;
  return entry;
}

// ------------------------------------------------------------- format

TEST(FormatTest, RecordCodecRoundTrips) {
  WalRecord out;
  ASSERT_TRUE(DecodeRecord(EncodeAdmit(17), &out));
  EXPECT_EQ(out.type, RecordType::kAdmit);
  EXPECT_EQ(out.query_id, 17);

  ASSERT_TRUE(DecodeRecord(EncodeReject(5), &out));
  EXPECT_EQ(out.type, RecordType::kReject);
  EXPECT_EQ(out.query_id, 5);

  CompleteRecord complete;
  complete.query_id = 8;
  complete.status_code = 0;
  complete.total_microtasks = 4242;
  complete.rounds_private = 12;
  complete.precision_at_k = 0.75;
  complete.items = {3, 1, 4};
  ASSERT_TRUE(DecodeRecord(EncodeComplete(complete), &out));
  EXPECT_EQ(out.type, RecordType::kComplete);
  EXPECT_EQ(out.complete.query_id, 8);
  EXPECT_EQ(out.complete.total_microtasks, 4242);
  EXPECT_EQ(out.complete.items, (std::vector<int32_t>{3, 1, 4}));

  const cache::ExportedEntry entry = SampleEntry();
  ASSERT_TRUE(DecodeRecord(EncodeCacheInsert(entry), &out));
  EXPECT_EQ(out.type, RecordType::kCacheInsert);
  EXPECT_EQ(out.cache_insert.universe, 3);
  EXPECT_EQ(out.cache_insert.lo, 4);
  EXPECT_EQ(out.cache_insert.hi, 9);
  // Bit-exact doubles (the Welford-restore contract).
  EXPECT_EQ(out.cache_insert.entry.mean, entry.entry.mean);
  EXPECT_EQ(out.cache_insert.entry.m2, entry.entry.m2);

  BarrierRecord barrier;
  barrier.barrier = 41;
  barrier.round = 99;
  barrier.now_seconds = 123.456;
  barrier.next_arrival = 7;
  barrier.done = 6;
  barrier.digest = 0xdeadbeefcafef00dULL;
  ASSERT_TRUE(DecodeRecord(EncodeBarrier(barrier), &out));
  EXPECT_EQ(out.type, RecordType::kBarrier);
  EXPECT_EQ(out.barrier.barrier, 41);
  EXPECT_EQ(out.barrier.now_seconds, 123.456);
  EXPECT_EQ(out.barrier.digest, 0xdeadbeefcafef00dULL);
}

TEST(FormatTest, DecodeRejectsMalformedPayloads) {
  WalRecord out;
  EXPECT_FALSE(DecodeRecord("", &out));
  EXPECT_FALSE(DecodeRecord("\x07", &out));  // unknown type byte
  // Trailing garbage after a well-formed record is corruption too.
  EXPECT_FALSE(DecodeRecord(EncodeAdmit(1) + "x", &out));
  // Truncated body.
  const std::string admit = EncodeAdmit(123456789);
  EXPECT_FALSE(DecodeRecord(admit.substr(0, admit.size() - 1), &out));
}

TEST(FormatTest, FileNamesRoundTrip) {
  int64_t id = -1;
  EXPECT_TRUE(ParseWalSegmentName(WalSegmentName(42), &id));
  EXPECT_EQ(id, 42);
  EXPECT_TRUE(ParseSnapshotName(SnapshotName(1234), &id));
  EXPECT_EQ(id, 1234);
  EXPECT_FALSE(ParseWalSegmentName("snapshot-0000000001.snap", &id));
  EXPECT_FALSE(ParseSnapshotName("wal-00000001.log", &id));
  EXPECT_FALSE(ParseWalSegmentName("wal-abc.log", &id));
}

// ---------------------------------------------------------------- wal

TEST(WalTest, AppendReadRoundTripAcrossRotation) {
  const std::string dir = FreshDir("wal_round_trip");
  WalWriterOptions options;
  options.dir = dir;
  options.segment_bytes = 128;  // force rotation every couple of batches
  options.fsync = false;
  WalWriter writer(options, /*start_segment=*/0);

  std::vector<std::string> expected;
  for (int64_t b = 0; b < 10; ++b) {
    std::vector<std::string> batch = {EncodeAdmit(b)};
    BarrierRecord barrier;
    barrier.barrier = b;
    batch.push_back(EncodeBarrier(barrier));
    expected.insert(expected.end(), batch.begin(), batch.end());
    ASSERT_TRUE(writer.AppendBatch(batch).ok());
  }
  EXPECT_GT(writer.counters().segments, 1);

  const auto read = ReadWal(dir, 0);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->truncated);
  ASSERT_EQ(read->records.size(), expected.size());
  int64_t barriers_seen = 0;
  for (const WalRecord& record : read->records) {
    if (record.type == RecordType::kBarrier) {
      EXPECT_EQ(record.barrier.barrier, barriers_seen++);
    }
  }
  EXPECT_EQ(barriers_seen, 10);
}

TEST(WalTest, TornTailKeepsPrefixAndDropsBeyond) {
  const std::string dir = FreshDir("wal_torn_tail");
  WalWriterOptions options;
  options.dir = dir;
  options.segment_bytes = 64;  // several segments
  options.fsync = false;
  WalWriter writer(options, 0);
  for (int64_t b = 0; b < 8; ++b) {
    BarrierRecord barrier;
    barrier.barrier = b;
    ASSERT_TRUE(writer.AppendBatch({EncodeAdmit(b), EncodeBarrier(barrier)})
                    .ok());
  }
  ASSERT_GT(MaxWalSegment(dir), 0);

  // Flip one byte in the middle of segment 1: everything in segment 1 from
  // the damaged record on, plus every later segment, must be dropped.
  const std::string victim = dir + "/" + WalSegmentName(1);
  std::string bytes;
  ASSERT_TRUE(util::ReadFileToString(victim, &bytes).ok());
  bytes[bytes.size() / 2] ^= 0x40;
  ASSERT_TRUE(util::WriteFileAtomic(victim, bytes).ok());

  const auto read = ReadWal(dir, 0);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->truncated);
  EXPECT_GT(read->bytes_dropped, 0);
  EXPECT_FALSE(read->records.empty());
  // Every surviving barrier is a strict prefix 0,1,...
  int64_t next = 0;
  for (const WalRecord& record : read->records) {
    if (record.type == RecordType::kBarrier) {
      EXPECT_EQ(record.barrier.barrier, next++);
    }
  }
  EXPECT_LT(next, 8);

  // Repair truncates the torn segment and deletes later ones; the next
  // read is clean and sees exactly the surviving prefix.
  ASSERT_TRUE(RepairWal(dir, 0).ok());
  const auto repaired = ReadWal(dir, 0);
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(repaired->truncated);
  EXPECT_EQ(repaired->records.size(), read->records.size());
}

TEST(WalTest, MissingSegmentStopsReplay) {
  const std::string dir = FreshDir("wal_gap");
  WalWriterOptions options;
  options.dir = dir;
  options.fsync = false;
  WalWriter writer(options, 0);
  BarrierRecord barrier;
  ASSERT_TRUE(writer.AppendBatch({EncodeBarrier(barrier)}).ok());
  // Reading from an index past every existing segment replays nothing.
  const auto read = ReadWal(dir, 5);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 0u);
  EXPECT_EQ(read->segments_read, 0);
}

// ----------------------------------------------------------- snapshot

SnapshotData SampleSnapshot() {
  SnapshotData data;
  data.barrier.barrier = 12;
  data.barrier.round = 40;
  data.barrier.now_seconds = 321.0625;
  data.barrier.digest = 0x1234567890abcdefULL;
  data.config_fingerprint = 777;
  data.next_wal_segment = 3;
  data.queued = {9, 10};
  InflightDescriptor inflight;
  inflight.query_id = 7;
  inflight.admitted_round = 35;
  data.inflight = {inflight};
  CompleteRecord complete;
  complete.query_id = 2;
  complete.items = {5, 6};
  complete.precision_at_k = 1.0;
  data.completed = {complete};
  data.rejected = {4};
  data.cache_entries = {SampleEntry()};
  return data;
}

TEST(SnapshotTest, WriteReadRoundTripIsBitExact) {
  const std::string dir = FreshDir("snapshot_round_trip");
  const std::string path = dir + "/" + SnapshotName(12);
  const SnapshotData data = SampleSnapshot();
  int64_t bytes = 0;
  ASSERT_TRUE(WriteSnapshot(path, data, &bytes).ok());
  EXPECT_GT(bytes, 0);

  SnapshotData loaded;
  ASSERT_TRUE(ReadSnapshot(path, &loaded).ok());
  EXPECT_EQ(loaded.barrier.barrier, 12);
  EXPECT_EQ(loaded.barrier.now_seconds, data.barrier.now_seconds);
  EXPECT_EQ(loaded.barrier.digest, data.barrier.digest);
  EXPECT_EQ(loaded.config_fingerprint, 777u);
  EXPECT_EQ(loaded.next_wal_segment, 3);
  EXPECT_EQ(loaded.queued, data.queued);
  ASSERT_EQ(loaded.inflight.size(), 1u);
  EXPECT_EQ(loaded.inflight[0].query_id, 7);
  ASSERT_EQ(loaded.completed.size(), 1u);
  EXPECT_EQ(loaded.completed[0].items, (std::vector<int32_t>{5, 6}));
  EXPECT_EQ(loaded.rejected, data.rejected);
  ASSERT_EQ(loaded.cache_entries.size(), 1u);
  EXPECT_EQ(loaded.cache_entries[0].entry.mean, SampleEntry().entry.mean);
  EXPECT_EQ(loaded.cache_digest, CacheImageDigest(data.cache_entries));
}

TEST(SnapshotTest, CorruptSnapshotIsRejected) {
  const std::string dir = FreshDir("snapshot_corrupt");
  const std::string path = dir + "/" + SnapshotName(1);
  ASSERT_TRUE(WriteSnapshot(path, SampleSnapshot(), nullptr).ok());
  std::string bytes;
  ASSERT_TRUE(util::ReadFileToString(path, &bytes).ok());
  bytes[bytes.size() - 3] ^= 0x01;
  ASSERT_TRUE(util::WriteFileAtomic(path, bytes).ok());
  SnapshotData loaded;
  EXPECT_FALSE(ReadSnapshot(path, &loaded).ok());
}

TEST(SnapshotTest, LoadLatestFallsBackOverCorruptNewest) {
  const std::string dir = FreshDir("snapshot_fallback");
  SnapshotData older = SampleSnapshot();
  older.barrier.barrier = 5;
  ASSERT_TRUE(WriteSnapshot(dir + "/" + SnapshotName(5), older, nullptr).ok());
  SnapshotData newer = SampleSnapshot();
  newer.barrier.barrier = 9;
  const std::string newest = dir + "/" + SnapshotName(9);
  ASSERT_TRUE(WriteSnapshot(newest, newer, nullptr).ok());
  // Damage the newest image.
  std::string bytes;
  ASSERT_TRUE(util::ReadFileToString(newest, &bytes).ok());
  bytes[bytes.size() / 2] ^= 0xff;
  ASSERT_TRUE(util::WriteFileAtomic(newest, bytes).ok());

  SnapshotData loaded;
  int64_t skipped = 0;
  ASSERT_TRUE(LoadLatestSnapshot(dir, &loaded, &skipped).ok());
  EXPECT_EQ(loaded.barrier.barrier, 5);
  EXPECT_EQ(skipped, 1);
}

// ----------------------------------------------------------- recovery

TEST(RecoveryTest, ManifestPinsConfigurationFingerprint) {
  const std::string dir = FreshDir("recovery_manifest");
  uint64_t fingerprint = 0;
  EXPECT_EQ(ReadManifest(dir, &fingerprint).code(),
            util::StatusCode::kNotFound);
  ASSERT_TRUE(WriteManifest(dir, 0xabcdULL).ok());
  ASSERT_TRUE(ReadManifest(dir, &fingerprint).ok());
  EXPECT_EQ(fingerprint, 0xabcdULL);

  // Matching fingerprint recovers (empty state); a different one refuses.
  EXPECT_TRUE(Recover(dir, 0xabcdULL).ok());
  const auto mismatch = Recover(dir, 0x9999ULL);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(RecoveryTest, RecoversFrontierFromWalAndSnapshot) {
  const std::string dir = FreshDir("recovery_frontier");
  ASSERT_TRUE(WriteManifest(dir, 1ULL).ok());

  WalWriterOptions options;
  options.dir = dir;
  options.fsync = false;
  WalWriter writer(options, 0);
  for (int64_t b = 0; b < 4; ++b) {
    BarrierRecord barrier;
    barrier.barrier = b;
    barrier.digest = 1000 + static_cast<uint64_t>(b);
    ASSERT_TRUE(writer.AppendBatch({EncodeAdmit(b), EncodeBarrier(barrier)})
                    .ok());
  }

  const auto recovered = Recover(dir, 1ULL);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered->has_snapshot);
  EXPECT_EQ(recovered->durable_barrier, 3);
  EXPECT_EQ(recovered->barriers.size(), 4u);
  EXPECT_EQ(recovered->barriers.at(2).digest, 1002u);
  // Live appends must land in a fresh segment past everything on disk.
  EXPECT_GT(recovered->next_wal_segment, MaxWalSegment(dir));
}

// --------------------------------------------------- end-to-end serve

struct ReplayResult {
  std::string report_jsonl;
  util::Status persist_status;
  PersistCounters counters;
  int64_t replayed_microtasks = 0;
  int64_t total_microtasks = 0;
  cache::CacheStats cache_stats;
};

// One full serving replay of a fixed 8-query workload.
ReplayResult RunReplay(const std::string& persist_dir, bool resume,
                       int64_t halt_after_barrier, int64_t jobs,
                       bool with_cache = false,
                       std::vector<cache::ExportedEntry> warm = {}) {
  static const auto dataset = data::MakeUniformLadder(12, 1.0, 0.8);
  static judgment::ComparisonOptions comparison;
  static baselines::HeapSortTopK algorithm(comparison);

  const std::vector<double> arrivals =
      serve::PoissonArrivals(8, 0.01, /*seed=*/31);
  std::vector<serve::QueryRequest> requests(8);
  for (serve::QueryRequest& request : requests) {
    request.algorithm = &algorithm;
    request.dataset = dataset.get();
    request.k = 4;
  }

  serve::ServeOptions options;
  options.schedule.abandon_probability = 0.05;  // exercise requeues
  options.max_inflight = 3;
  options.jobs = jobs;
  options.seed = 31;
  options.cache.enabled = with_cache;
  options.warm_cache = std::move(warm);
  options.persist.dir = persist_dir;
  options.persist.resume = resume;
  options.persist.snapshot_every = 4;
  options.persist.wal_fsync = false;  // keep the suite fast
  options.persist.halt_after_barrier = halt_after_barrier;

  serve::QueryService service(options);
  const std::vector<serve::QueryOutcome> outcomes =
      service.Replay(requests, arrivals);

  ReplayResult result;
  result.report_jsonl = serve::RenderServeReportJsonl(
      serve::BuildServeReport(outcomes, service.assignment_stats(),
                              service.makespan_seconds(),
                              service.total_rounds()),
      outcomes);
  result.persist_status = service.persist_status();
  result.counters = service.persist_counters();
  result.replayed_microtasks = service.replayed_microtasks();
  result.cache_stats = service.cache_stats();
  for (const serve::QueryOutcome& o : outcomes) {
    result.total_microtasks += o.total_microtasks;
  }
  return result;
}

// The tentpole contract: halt persistence mid-run (the on-disk state a
// crash would leave), resume, and the resumed run's machine-readable
// report is byte-identical to an uninterrupted run's — for jobs=1 and
// jobs=8, with catch-up verified rather than assumed.
TEST(PersistEndToEndTest, HaltAndResumeIsByteIdentical) {
  const ReplayResult baseline =
      RunReplay(/*persist_dir=*/"", false, -1, /*jobs=*/1);
  ASSERT_FALSE(baseline.report_jsonl.empty());

  for (const int64_t jobs : {int64_t{1}, int64_t{8}}) {
    SCOPED_TRACE(jobs);
    const std::string dir =
        FreshDir("persist_resume_jobs" + std::to_string(jobs));
    const ReplayResult halted =
        RunReplay(dir, false, /*halt_after_barrier=*/6, jobs);
    ASSERT_TRUE(halted.persist_status.ok());
    // The halted run still finished (halt is fail-stop for persistence
    // only), and its own report already matches.
    EXPECT_EQ(halted.report_jsonl, baseline.report_jsonl);

    const ReplayResult resumed = RunReplay(dir, true, -1, jobs);
    ASSERT_TRUE(resumed.persist_status.ok());
    EXPECT_EQ(resumed.report_jsonl, baseline.report_jsonl);
    EXPECT_EQ(resumed.counters.resumed, 1);
    EXPECT_EQ(resumed.counters.durable_barrier, 6);
    EXPECT_EQ(resumed.counters.replayed_barriers, 7);
    // Barriers 0..2 were pruned when the barrier-3 snapshot landed; 3 is
    // verified against the snapshot, 4..6 against their WAL records.
    EXPECT_EQ(resumed.counters.verified_barriers, 4);
    EXPECT_EQ(resumed.counters.cache_image_verified, 1);
    EXPECT_EQ(resumed.counters.divergent_barriers, 0);
    EXPECT_EQ(resumed.counters.cache_image_divergent, 0);
    EXPECT_GT(resumed.replayed_microtasks, 0);
  }
}

// Corrupting the WAL tail lowers the durable frontier (longer catch-up)
// but never changes the output or crashes the resume.
TEST(PersistEndToEndTest, CorruptWalTailDegradesGracefully) {
  const ReplayResult baseline = RunReplay("", false, -1, 1);
  const std::string dir = FreshDir("persist_corrupt_tail");
  const ReplayResult halted = RunReplay(dir, false, 6, 1);
  ASSERT_TRUE(halted.persist_status.ok());

  // Damage the newest segment's tail.
  const int64_t last = MaxWalSegment(dir);
  ASSERT_GE(last, 0);
  const std::string victim = dir + "/" + WalSegmentName(last);
  std::string bytes;
  ASSERT_TRUE(util::ReadFileToString(victim, &bytes).ok());
  bytes[bytes.size() - 2] ^= 0x10;
  ASSERT_TRUE(util::WriteFileAtomic(victim, bytes).ok());

  const ReplayResult resumed = RunReplay(dir, true, -1, 1);
  ASSERT_TRUE(resumed.persist_status.ok());
  EXPECT_EQ(resumed.report_jsonl, baseline.report_jsonl);
  EXPECT_EQ(resumed.counters.wal_truncated, 1);
  EXPECT_GT(resumed.counters.wal_bytes_dropped, 0);
  EXPECT_LT(resumed.counters.durable_barrier, 6);
  EXPECT_EQ(resumed.counters.divergent_barriers, 0);
}

// Resuming under a different configuration is refused (the replay still
// completes, without durability) instead of silently diverging.
TEST(PersistEndToEndTest, ResumeRefusesConfigMismatch) {
  const std::string dir = FreshDir("persist_fingerprint");
  const ReplayResult first = RunReplay(dir, false, 6, 1);
  ASSERT_TRUE(first.persist_status.ok());

  // Same directory, different workload shape: cache toggled on changes the
  // configuration fingerprint.
  const ReplayResult mismatched = RunReplay(dir, true, -1, 1,
                                            /*with_cache=*/true);
  EXPECT_EQ(mismatched.persist_status.code(),
            util::StatusCode::kFailedPrecondition);
  ASSERT_FALSE(mismatched.report_jsonl.empty());
}

// Warm restart: a later generation seeded with the snapshot's cache image
// reuses the previous run's judgments and buys strictly fewer microtasks.
TEST(PersistEndToEndTest, WarmRestartReusesCacheImage) {
  const std::string dir = FreshDir("persist_warm");
  const ReplayResult cold = RunReplay(dir, false, -1, 1, /*with_cache=*/true);
  ASSERT_TRUE(cold.persist_status.ok());
  ASSERT_GT(cold.counters.snapshots, 0);

  SnapshotData snapshot;
  ASSERT_TRUE(LoadLatestSnapshot(dir, &snapshot, nullptr).ok());
  EXPECT_TRUE(snapshot.complete);
  ASSERT_FALSE(snapshot.cache_entries.empty());

  const ReplayResult warm =
      RunReplay("", false, -1, 1, /*with_cache=*/true,
                snapshot.cache_entries);
  EXPECT_EQ(warm.cache_stats.restored,
            static_cast<int64_t>(snapshot.cache_entries.size()));
  EXPECT_GT(warm.cache_stats.hits, 0);
  EXPECT_LT(warm.total_microtasks, cold.total_microtasks);
}

// A fully-durable directory (the run completed) resumes as pure catch-up:
// nothing is re-appended, the report still matches.
TEST(PersistEndToEndTest, ResumeOfCompleteRunIsPureCatchup) {
  const std::string dir = FreshDir("persist_complete");
  const ReplayResult full = RunReplay(dir, false, -1, 1);
  ASSERT_TRUE(full.persist_status.ok());

  const ReplayResult resumed = RunReplay(dir, true, -1, 1);
  ASSERT_TRUE(resumed.persist_status.ok());
  EXPECT_EQ(resumed.report_jsonl, full.report_jsonl);
  EXPECT_EQ(resumed.counters.divergent_barriers, 0);
  EXPECT_EQ(resumed.counters.wal_records, 0);
}

}  // namespace
}  // namespace crowdtopk::persist
