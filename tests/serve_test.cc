// Tests for the multi-query serving layer (src/serve): sync-algorithm
// equivalence through the AsyncPlatform bridge, scheduler fairness under
// saturation, straggler requeueing and bounded-retry failure, admission
// overflow, and bit-identity of the serve report across worker counts.

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "baselines/heap_sort.h"
#include "baselines/quick_select.h"
#include "core/topk_algorithm.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "fault/injector.h"
#include "gtest/gtest.h"
#include "judgment/comparison.h"
#include "serve/arrival.h"
#include "serve/async_platform.h"
#include "serve/batch_scheduler.h"
#include "serve/query_service.h"
#include "serve/report.h"
#include "util/env.h"
#include "util/file_io.h"
#include "util/status.h"

namespace crowdtopk::serve {
namespace {

// A deterministic workload with a known shape: `rounds` batch rounds, each
// buying `per_round` preference microtasks on one pair, cycling through the
// dataset's pairs so the per-pair cap stays exercised. Stateless across
// Run() calls (concurrent_runs_safe).
class ScriptedAlgorithm : public core::TopKAlgorithm {
 public:
  ScriptedAlgorithm(int64_t rounds, int64_t per_round)
      : rounds_(rounds), per_round_(per_round) {}

  std::string name() const override { return "Scripted"; }

  core::TopKResult Run(crowd::CrowdPlatform* platform, int64_t k) override {
    std::vector<double> out;
    for (int64_t r = 0; r < rounds_; ++r) {
      platform->CollectPreferences(r % 3, r % 3 + 1, per_round_, &out);
      platform->NextRound();
    }
    core::TopKResult result;
    for (int64_t i = 0; i < k; ++i) result.items.push_back(i);
    result.total_microtasks = platform->total_microtasks();
    result.rounds = platform->rounds();
    return result;
  }

 private:
  int64_t rounds_;
  int64_t per_round_;
};

// Runs the minimal service loop for a standalone scheduler until `queries`
// driver threads have finished.
void PumpScheduler(BatchScheduler* scheduler, int64_t queries) {
  int64_t done = 0;
  while (done < queries) {
    scheduler->WaitQuiescent();
    done += static_cast<int64_t>(scheduler->DrainFinished().size());
    if (done < queries && scheduler->AnyParked()) scheduler->ExecuteRound();
  }
}

ScheduleOptions ReliableCrowd() {
  ScheduleOptions options;
  options.abandon_probability = 0.0;  // no stragglers unless a test asks
  return options;
}

// The core serving invariant: a query served through AsyncPlatform buys the
// exact answer, TMC, and private round count it would buy on a private
// CrowdPlatform with the same seed — sharing the crowd never changes what
// a query pays, only when its work gets scheduled.
TEST(AsyncPlatformTest, ServedQueryMatchesPrivateRun) {
  const auto dataset = data::MakeUniformLadder(20, 1.0, 0.6);
  judgment::ComparisonOptions comparison;
  baselines::HeapSortTopK algorithm(comparison);

  crowd::CrowdPlatform direct(dataset.get(), /*seed=*/123);
  const core::TopKResult expected = algorithm.Run(&direct, 5);

  BatchScheduler scheduler(ReliableCrowd(), /*seed=*/999, nullptr);
  scheduler.AdmitQuery(0);
  core::TopKResult served;
  int64_t served_microtasks = 0;
  int64_t served_rounds = 0;
  std::thread driver([&] {
    AsyncPlatform platform(dataset.get(), /*seed=*/123, &scheduler, 0);
    served = algorithm.Run(&platform, 5);
    platform.Drain();
    served_microtasks = platform.total_microtasks();
    served_rounds = platform.rounds();
    scheduler.FinishQuery(0);
  });
  PumpScheduler(&scheduler, 1);
  driver.join();

  EXPECT_EQ(served.items, expected.items);
  EXPECT_EQ(served_microtasks, direct.total_microtasks());
  EXPECT_EQ(served_rounds, direct.rounds());
}

// Round-robin wave selection must not starve anyone: four identical
// saturating queries (combined demand = 2x the crowd's W slots) have to
// finish within a couple of global rounds of each other.
TEST(SchedulerTest, FairnessUnderSaturation) {
  const auto dataset = data::MakeUniformLadder(8, 1.0, 0.5);
  ScriptedAlgorithm algorithm(/*rounds=*/6, /*per_round=*/10);

  ServeOptions options;
  options.schedule = ReliableCrowd();
  options.schedule.crowd_workers = 20;   // demand: 4 queries x 10 = 40
  options.schedule.per_pair_batch = 10;
  options.max_inflight = 4;
  options.jobs = 1;

  std::vector<QueryRequest> requests(4);
  for (QueryRequest& request : requests) {
    request.algorithm = &algorithm;
    request.dataset = dataset.get();
    request.k = 3;
  }
  QueryService service(options);
  const std::vector<QueryOutcome> outcomes =
      service.Replay(requests, std::vector<double>(4, 0.0));

  int64_t min_rounds = outcomes[0].rounds_observed;
  int64_t max_rounds = outcomes[0].rounds_observed;
  for (const QueryOutcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    min_rounds = std::min(min_rounds, outcome.rounds_observed);
    max_rounds = std::max(max_rounds, outcome.rounds_observed);
  }
  // Everyone needed >= 2 global rounds per script round (demand 2x W), and
  // the round-robin keeps the finish spread within one extra round.
  EXPECT_GE(min_rounds, 12);
  EXPECT_LE(max_rounds - min_rounds, 1);
}

// Stragglers: with a high abandonment rate, assignments must observably
// expire and be requeued, yet every query still completes successfully as
// long as retries remain.
TEST(SchedulerTest, ExpiredAssignmentsAreRequeued) {
  const auto dataset = data::MakeUniformLadder(8, 1.0, 0.5);
  ScriptedAlgorithm algorithm(/*rounds=*/4, /*per_round=*/15);

  ServeOptions options;
  options.schedule.abandon_probability = 0.5;
  options.schedule.max_attempts = 16;
  options.jobs = 1;

  std::vector<QueryRequest> requests(2);
  for (QueryRequest& request : requests) {
    request.algorithm = &algorithm;
    request.dataset = dataset.get();
    request.k = 3;
  }
  QueryService service(options);
  const std::vector<QueryOutcome> outcomes =
      service.Replay(requests, {0.0, 0.0});

  for (const QueryOutcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  }
  const AssignmentStats stats = service.assignment_stats();
  EXPECT_GT(stats.expired, 0);
  EXPECT_GT(stats.requeued, 0);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.completed, outcomes[0].total_microtasks +
                                 outcomes[1].total_microtasks);
  // The per-query telemetry sees the same retries.
  EXPECT_GT(outcomes[0].requeued_assignments + outcomes[1].requeued_assignments,
            0);
}

// Bounded retries: when every attempt is abandoned, each assignment fails
// after max_attempts and the query is reported kResourceExhausted — but the
// replay still terminates and returns an outcome (no deadlock on the
// barrier).
TEST(SchedulerTest, BoundedRetriesFailTheQuery) {
  const auto dataset = data::MakeUniformLadder(8, 1.0, 0.5);
  ScriptedAlgorithm algorithm(/*rounds=*/2, /*per_round=*/5);

  ServeOptions options;
  options.schedule.abandon_probability = 1.0;
  options.schedule.max_attempts = 2;
  options.jobs = 1;

  std::vector<QueryRequest> requests(1);
  requests[0].algorithm = &algorithm;
  requests[0].dataset = dataset.get();
  requests[0].k = 3;
  QueryService service(options);
  const std::vector<QueryOutcome> outcomes = service.Replay(requests, {0.0});

  EXPECT_FALSE(outcomes[0].rejected);
  EXPECT_EQ(outcomes[0].status.code(), util::StatusCode::kResourceExhausted);
  const AssignmentStats stats = service.assignment_stats();
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.failed, 10);              // 2 rounds x 5 microtasks
  EXPECT_EQ(stats.scheduled, 2 * stats.failed);  // max_attempts each
}

// No-show faults (fault::FaultPlan::no_show_fraction routed through
// ScheduleOptions::no_show_probability): assignments that never return must
// expire at the round deadline, surface in the serve/* retry counters of
// the query outcome, and — with retries left — still let every query
// complete.
TEST(SchedulerTest, NoShowFaultsExpireRequeueAndRecover) {
  const auto dataset = data::MakeUniformLadder(8, 1.0, 0.5);
  ScriptedAlgorithm algorithm(/*rounds=*/4, /*per_round=*/15);

  fault::FaultPlan plan;
  plan.no_show_fraction = 0.4;

  ServeOptions options;
  options.schedule = ReliableCrowd();  // isolate the no-show fault
  options.schedule.no_show_probability = fault::NoShowProbability(plan);
  options.schedule.max_attempts = 16;
  options.jobs = 1;

  std::vector<QueryRequest> requests(2);
  for (QueryRequest& request : requests) {
    request.algorithm = &algorithm;
    request.dataset = dataset.get();
    request.k = 3;
  }
  QueryService service(options);
  const std::vector<QueryOutcome> outcomes = service.Replay(requests, {0.0, 0.0});

  int64_t expired = 0, requeued = 0;
  for (const QueryOutcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    expired += outcome.expired_assignments;
    requeued += outcome.requeued_assignments;
  }
  // ~40% of attempts are no-shows, so retries must be visible per query.
  EXPECT_GT(expired, 0);
  EXPECT_GT(requeued, 0);
  const AssignmentStats stats = service.assignment_stats();
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.expired, expired);
  EXPECT_EQ(stats.completed, outcomes[0].total_microtasks +
                                 outcomes[1].total_microtasks);
}

// An all-no-show crowd: every attempt waits out the full deadline, bounded
// retries kick in, and the query ends kResourceExhausted without stalling
// the replay loop.
TEST(SchedulerTest, AllNoShowCrowdFailsBoundedWithoutStalling) {
  const auto dataset = data::MakeUniformLadder(8, 1.0, 0.5);
  ScriptedAlgorithm algorithm(/*rounds=*/2, /*per_round=*/5);

  ServeOptions options;
  options.schedule = ReliableCrowd();
  options.schedule.no_show_probability = 1.0;
  options.schedule.max_attempts = 3;
  options.schedule.deadline_seconds = 60.0;
  options.jobs = 1;

  std::vector<QueryRequest> requests(1);
  requests[0].algorithm = &algorithm;
  requests[0].dataset = dataset.get();
  requests[0].k = 3;
  QueryService service(options);
  const std::vector<QueryOutcome> outcomes = service.Replay(requests, {0.0});

  EXPECT_FALSE(outcomes[0].rejected);
  EXPECT_EQ(outcomes[0].status.code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(outcomes[0].expired_assignments, outcomes[0].requeued_assignments +
                                                 10);  // 10 permanent failures
  const AssignmentStats stats = service.assignment_stats();
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.failed, 10);              // 2 rounds x 5 microtasks
  EXPECT_EQ(stats.scheduled, 3 * stats.failed);  // max_attempts each
  // Every expiring round waited out the deadline on the simulated clock.
  EXPECT_GE(service.makespan_seconds(), 3 * options.schedule.deadline_seconds);
}

// A bounded admission queue rejects arrivals that find both the in-flight
// window and the queue full.
TEST(QueryServiceTest, AdmissionQueueOverflowRejects) {
  const auto dataset = data::MakeUniformLadder(8, 1.0, 0.5);
  ScriptedAlgorithm algorithm(/*rounds=*/4, /*per_round=*/5);

  ServeOptions options;
  options.schedule = ReliableCrowd();
  options.max_inflight = 1;
  options.max_queue = 0;
  options.jobs = 1;

  std::vector<QueryRequest> requests(2);
  for (QueryRequest& request : requests) {
    request.algorithm = &algorithm;
    request.dataset = dataset.get();
    request.k = 3;
  }
  // Query 1 arrives while query 0 is still in flight (rounds take ~15 s
  // each) and there is no queue to wait in.
  QueryService service(options);
  const std::vector<QueryOutcome> outcomes =
      service.Replay(requests, {0.0, 10.0});

  EXPECT_TRUE(outcomes[0].status.ok());
  EXPECT_EQ(outcomes[0].reject_reason, RejectReason::kNone);
  EXPECT_TRUE(outcomes[1].rejected);
  EXPECT_EQ(outcomes[1].status.code(), util::StatusCode::kResourceExhausted);
  // The machine-readable reason the network front-end maps to an error
  // frame (no string-matching on the status message).
  EXPECT_EQ(outcomes[1].reject_reason, RejectReason::kQueueFull);
}

// The determinism contract of the whole layer: same options + seed + trace
// => bit-identical rendered report and per-query table for any worker
// count, stragglers included.
TEST(QueryServiceTest, ReportBitIdenticalAcrossJobs) {
  const auto dataset = data::MakeUniformLadder(16, 1.0, 0.8);
  judgment::ComparisonOptions comparison;
  baselines::HeapSortTopK heap(comparison);
  baselines::QuickSelectTopK quick(comparison);
  core::TopKAlgorithm* algorithms[] = {&heap, &quick};

  const std::vector<double> arrivals = PoissonArrivals(10, 0.01, 77);
  std::vector<QueryRequest> requests(10);
  for (int64_t q = 0; q < 10; ++q) {
    requests[q].algorithm = algorithms[q % 2];
    requests[q].dataset = dataset.get();
    requests[q].k = 4;
  }

  std::string rendered[2];
  std::string tables[2];
  const int64_t jobs[] = {1, 8};
  for (int v = 0; v < 2; ++v) {
    ServeOptions options;
    options.schedule.abandon_probability = 0.1;  // exercise requeues too
    options.max_inflight = 4;
    options.jobs = jobs[v];
    options.seed = 77;
    QueryService service(options);
    const std::vector<QueryOutcome> outcomes =
        service.Replay(requests, arrivals);
    rendered[v] = RenderServeReport(
        BuildServeReport(outcomes, service.assignment_stats(),
                         service.makespan_seconds(), service.total_rounds()));
    tables[v] = RenderQueryTable(outcomes);
  }
  EXPECT_EQ(rendered[0], rendered[1]);
  EXPECT_EQ(tables[0], tables[1]);
}

// Pins the machine-readable report schema to a golden file. The JSONL
// output is what the crash-recovery CI job byte-diffs and what external
// dashboards parse, so schema drift must be a deliberate, reviewed act:
// regenerate with CROWDTOPK_UPDATE_GOLDEN=1 (writes the golden in the
// source tree) and commit the diff.
TEST(ReportTest, JsonlMatchesGoldenFile) {
  const auto dataset = data::MakeUniformLadder(12, 1.0, 0.8);
  judgment::ComparisonOptions comparison;
  baselines::HeapSortTopK heap(comparison);
  baselines::QuickSelectTopK quick(comparison);
  core::TopKAlgorithm* algorithms[] = {&heap, &quick};

  const std::vector<double> arrivals = PoissonArrivals(6, 0.01, 2017);
  std::vector<QueryRequest> requests(6);
  for (int64_t q = 0; q < 6; ++q) {
    requests[q].algorithm = algorithms[q % 2];
    requests[q].dataset = dataset.get();
    requests[q].k = 3;
  }

  ServeOptions options;
  options.schedule.abandon_probability = 0.1;  // exercise requeue columns
  options.max_inflight = 2;
  options.max_queue = 2;  // force at least one REJECTED row
  options.jobs = 1;
  options.seed = 2017;
  QueryService service(options);
  const std::vector<QueryOutcome> outcomes = service.Replay(requests, arrivals);
  const std::string rendered = RenderServeReportJsonl(
      BuildServeReport(outcomes, service.assignment_stats(),
                       service.makespan_seconds(), service.total_rounds()),
      outcomes);

  const std::string golden_path =
      std::string(CROWDTOPK_GOLDEN_DIR) + "/serve_report.jsonl";
  if (util::GetEnvBool("CROWDTOPK_UPDATE_GOLDEN", false)) {
    ASSERT_TRUE(util::WriteFileAtomic(golden_path, rendered).ok());
    GTEST_SKIP() << "golden updated: " << golden_path;
  }
  std::string golden;
  ASSERT_TRUE(util::ReadFileToString(golden_path, &golden).ok())
      << "missing " << golden_path
      << " — run once with CROWDTOPK_UPDATE_GOLDEN=1";
  EXPECT_EQ(rendered, golden)
      << "ServeReport JSONL schema drifted; if intentional, regenerate the "
         "golden with CROWDTOPK_UPDATE_GOLDEN=1 and commit it";
}

// ----- golden JSONL round trip ---------------------------------------------

// Raw value text of `"key":` in one fixed-schema JSONL line: the quoted
// body for strings, the bracketed body for arrays, the token up to the
// next delimiter otherwise. The schema is printf-generated with a fixed
// key order, so plain substring extraction is exact.
std::string JsonValue(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << "no \"" << key << "\" in: " << line;
  if (pos == std::string::npos) return "";
  const size_t begin = pos + needle.size();
  if (line[begin] == '"') {
    const size_t end = line.find('"', begin + 1);
    return line.substr(begin + 1, end - begin - 1);
  }
  if (line[begin] == '[') {
    const size_t end = line.find(']', begin);
    return line.substr(begin, end - begin + 1);
  }
  return line.substr(begin, line.find_first_of(",}", begin) - begin);
}

int64_t JsonInt(const std::string& line, const std::string& key) {
  return std::strtoll(JsonValue(line, key).c_str(), nullptr, 10);
}

double JsonDouble(const std::string& line, const std::string& key) {
  return std::strtod(JsonValue(line, key).c_str(), nullptr);
}

// Round trip through the pinned report: parse the golden JSONL back into
// ServeReport + QueryOutcome structs, re-render, and byte-diff against the
// golden. JsonlMatchesGoldenFile pins render(fresh replay); this pins
// render(parse(x)) == x, so the schema stays faithfully parseable — a
// consumer can reconstruct every rendered field, including the %.6f
// doubles, with no information lost to formatting.
TEST(ReportTest, GoldenJsonlReparsesAndRerendersByteIdentically) {
  if (util::GetEnvBool("CROWDTOPK_UPDATE_GOLDEN", false)) {
    GTEST_SKIP() << "goldens being regenerated; see JsonlMatchesGoldenFile";
  }
  const std::string golden_path =
      std::string(CROWDTOPK_GOLDEN_DIR) + "/serve_report.jsonl";
  std::string golden;
  ASSERT_TRUE(util::ReadFileToString(golden_path, &golden).ok())
      << "missing " << golden_path
      << " — run once with CROWDTOPK_UPDATE_GOLDEN=1";

  ServeReport report;
  std::vector<QueryOutcome> outcomes;
  size_t pos = 0;
  while (pos < golden.size()) {
    const size_t eol = golden.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "golden must end with a newline";
    const std::string line = golden.substr(pos, eol - pos);
    pos = eol + 1;
    const std::string record = JsonValue(line, "record");
    if (record == "summary") {
      report.queries = JsonInt(line, "queries");
      report.completed = JsonInt(line, "completed");
      report.failed = JsonInt(line, "failed");
      report.rejected = JsonInt(line, "rejected");
      report.makespan_seconds = JsonDouble(line, "makespan_seconds");
      report.total_rounds = JsonInt(line, "total_rounds");
      report.throughput_per_hour = JsonDouble(line, "throughput_per_hour");
      report.total_microtasks = JsonInt(line, "total_microtasks");
      report.mean_queue_wait_seconds =
          JsonDouble(line, "mean_queue_wait_seconds");
      report.mean_precision = JsonDouble(line, "mean_precision");
      report.p50_rounds = JsonDouble(line, "p50_rounds");
      report.p95_rounds = JsonDouble(line, "p95_rounds");
      report.p99_rounds = JsonDouble(line, "p99_rounds");
      report.p50_seconds = JsonDouble(line, "p50_seconds");
      report.p95_seconds = JsonDouble(line, "p95_seconds");
      report.p99_seconds = JsonDouble(line, "p99_seconds");
      report.assignments.scheduled = JsonInt(line, "assignments_scheduled");
      report.assignments.completed = JsonInt(line, "assignments_completed");
      report.assignments.expired = JsonInt(line, "assignments_expired");
      report.assignments.requeued = JsonInt(line, "assignments_requeued");
      report.assignments.failed = JsonInt(line, "assignments_failed");
      continue;
    }
    ASSERT_EQ(record, "query") << line;
    QueryOutcome o;
    o.query_id = JsonInt(line, "query_id");
    o.algorithm = JsonValue(line, "algorithm");
    const std::string status = JsonValue(line, "status");
    o.rejected = status == "REJECTED";
    if (status == "FAILED") o.status = util::Status::Internal("parsed");
    o.arrival_seconds = JsonDouble(line, "arrival_seconds");
    o.start_seconds = JsonDouble(line, "start_seconds");
    o.finish_seconds = JsonDouble(line, "finish_seconds");
    o.latency_seconds = JsonDouble(line, "latency_seconds");
    o.rounds_observed = JsonInt(line, "rounds_observed");
    o.rounds_private = JsonInt(line, "rounds_private");
    o.total_microtasks = JsonInt(line, "total_microtasks");
    o.expired_assignments = JsonInt(line, "expired_assignments");
    o.requeued_assignments = JsonInt(line, "requeued_assignments");
    o.precision_at_k = JsonDouble(line, "precision_at_k");
    o.cache_hits = JsonInt(line, "cache_hits");
    o.cache_topups = JsonInt(line, "cache_topups");
    o.cache_inferred = JsonInt(line, "cache_inferred");
    o.cache_misses = JsonInt(line, "cache_misses");
    std::string items = JsonValue(line, "items");
    ASSERT_GE(items.size(), 2u) << line;
    items = items.substr(1, items.size() - 2);  // strip [ ]
    for (size_t start = 0; start < items.size();) {
      size_t comma = items.find(',', start);
      if (comma == std::string::npos) comma = items.size();
      o.items.push_back(static_cast<crowd::ItemId>(
          std::strtoll(items.substr(start, comma - start).c_str(), nullptr,
                       10)));
      start = comma + 1;
    }
    outcomes.push_back(std::move(o));
  }
  ASSERT_GT(outcomes.size(), 0u);
  EXPECT_EQ(RenderServeReportJsonl(report, outcomes), golden)
      << "parse -> render is not the identity on the pinned report";
}

// Nearest-rank percentile sanity.
TEST(ReportTest, PercentileNearestRank) {
  const std::vector<double> values = {5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(PercentileNearestRank(values, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(values, 95.0), 5.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(values, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank({}, 50.0), 0.0);
}

}  // namespace
}  // namespace crowdtopk::serve
