// Tests for the sharded scale-out subsystem (src/shard,
// docs/SHARDING.md): placement hashing (determinism, rendezvous stability
// under resize), the router's shard-count / thread-count invariance of the
// merged pure-column table, bounded failover re-dispatch, the cache-sync
// alpha gate, and agreement between a 1-shard router and a plain
// serve::QueryService fed the same stamped seed streams.

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "baselines/heap_sort.h"
#include "baselines/quick_select.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "judgment/comparison.h"
#include "serve/query_service.h"
#include "shard/hash.h"
#include "shard/local_backend.h"
#include "shard/report.h"
#include "shard/router.h"
#include "util/status.h"

namespace crowdtopk::shard {
namespace {

constexpr uint64_t kSeed = 20170514;

// A small two-algorithm workload every router test shares. Algorithms are
// owned here; RoutedQuery carries raw pointers like the router engine does.
struct Workload {
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<baselines::HeapSortTopK> heap;
  std::unique_ptr<baselines::QuickSelectTopK> quick;

  explicit Workload(double alpha = 0.05) {
    dataset = data::MakeUniformLadder(10, 1.0, 1.0);
    judgment::ComparisonOptions comparison;
    comparison.alpha = alpha;
    comparison.budget = 500;
    heap = std::make_unique<baselines::HeapSortTopK>(comparison);
    quick = std::make_unique<baselines::QuickSelectTopK>(comparison);
  }

  std::vector<RoutedQuery> Trace(int64_t queries, double alpha = 0.05) const {
    std::vector<RoutedQuery> trace(static_cast<size_t>(queries));
    for (int64_t q = 0; q < queries; ++q) {
      RoutedQuery& routed = trace[static_cast<size_t>(q)];
      routed.global_id = q;
      routed.dataset = "ladder";
      routed.algo = q % 2 == 0 ? "heapsort" : "quickselect";
      routed.k = 3;
      routed.alpha = alpha;
      routed.universe = 0;
      routed.dataset_ptr = dataset.get();
      routed.algorithm = q % 2 == 0
                             ? static_cast<core::TopKAlgorithm*>(heap.get())
                             : static_cast<core::TopKAlgorithm*>(quick.get());
    }
    return trace;
  }
};

LocalShardBackend::Options BackendOptions(int64_t jobs = 1) {
  LocalShardBackend::Options options;
  options.seed = kSeed;
  options.schedule.crowd_workers = 16;
  options.schedule.per_pair_batch = 4;
  options.max_inflight = 4;
  options.jobs = jobs;
  return options;
}

std::vector<std::unique_ptr<ShardBackend>> MakeShards(
    int64_t count, const LocalShardBackend::Options& options,
    int64_t fail_shard = -1, int64_t fail_at_batch = 1) {
  std::vector<std::unique_ptr<ShardBackend>> backends;
  for (int64_t s = 0; s < count; ++s) {
    LocalShardBackend::Options shard_options = options;
    if (s == fail_shard || fail_shard == -2) {
      shard_options.fail_at_batch = fail_at_batch;
    }
    backends.push_back(std::make_unique<LocalShardBackend>(shard_options));
  }
  return backends;
}

// ----- placement hashing ---------------------------------------------------

TEST(ShardHashTest, RankShardsIsDeterministicAndAPermutation) {
  for (const Policy policy : {Policy::kRendezvous, Policy::kModulo}) {
    for (int64_t shards = 1; shards <= 6; ++shards) {
      for (int64_t u = 0; u < 8; ++u) {
        const PlacementKey key{u, "ds" + std::to_string(u % 3),
                               u % 2 == 0 ? "spr" : "heapsort"};
        const std::vector<int64_t> a = RankShards(key, shards, policy);
        const std::vector<int64_t> b = RankShards(key, shards, policy);
        EXPECT_EQ(a, b) << "same inputs, different preference list";
        std::vector<int64_t> sorted = a;
        std::sort(sorted.begin(), sorted.end());
        std::vector<int64_t> want(static_cast<size_t>(shards));
        for (int64_t s = 0; s < shards; ++s) want[static_cast<size_t>(s)] = s;
        EXPECT_EQ(sorted, want) << "not a permutation of [0, " << shards
                                << ")";
      }
    }
  }
}

TEST(ShardHashTest, ModuloWalksFromThePrimary) {
  const PlacementKey key{3, "imdb", "spr"};
  const std::vector<int64_t> prefs = RankShards(key, 5, Policy::kModulo);
  ASSERT_EQ(prefs.size(), 5u);
  for (size_t i = 1; i < prefs.size(); ++i) {
    EXPECT_EQ(prefs[i], (prefs[0] + static_cast<int64_t>(i)) % 5);
  }
}

// The HRW stability contract: each shard's weight for a key is independent
// of the shard count, so adding shard K never reorders shards [0, K) — it
// can only insert itself somewhere. Removal is the mirror image, which is
// exactly the failover walk (skip the dead entry, order unchanged).
TEST(ShardHashTest, RendezvousIsStableUnderAddAndRemove) {
  int64_t moved = 0;
  constexpr int64_t kKeys = 64;
  for (int64_t u = 0; u < kKeys; ++u) {
    const PlacementKey key{u, "ds" + std::to_string(u), "spr"};
    const std::vector<int64_t> before =
        RankShards(key, 4, Policy::kRendezvous);
    const std::vector<int64_t> after =
        RankShards(key, 5, Policy::kRendezvous);
    // Restricted to the old shards, the order must be untouched.
    std::vector<int64_t> restricted;
    for (const int64_t s : after) {
      if (s < 4) restricted.push_back(s);
    }
    EXPECT_EQ(restricted, before) << "adding shard 4 reordered keys";
    if (after.front() != before.front()) {
      EXPECT_EQ(after.front(), 4) << "a moved key must move to the new shard";
      ++moved;
    }
  }
  // ~1/5 of keys move to the new shard; far fewer than a reshuffle. The
  // bound is loose (3x expectation) so the test never flakes on the fixed
  // fingerprints, while still failing for modulo-style near-total moves.
  EXPECT_LT(moved, kKeys * 3 / 5);
  EXPECT_GT(moved, 0) << "no key ever moves: the new shard would stay cold";
}

// ----- merged-table invariance ---------------------------------------------

TEST(ShardRouterTest, MergedTableIdenticalAcrossShardCountsAndPolicies) {
  const Workload workload;
  std::string reference;
  for (const int64_t shards : {1, 2, 4}) {
    for (const Policy policy : {Policy::kRendezvous, Policy::kModulo}) {
      RouterOptions options;
      options.policy = policy;
      ShardRouter router(options, MakeShards(shards, BackendOptions()));
      const std::vector<RoutedOutcome> outcomes =
          router.RouteBatch(workload.Trace(8));
      const std::string table = RenderMergedTable(outcomes);
      if (reference.empty()) {
        reference = table;
        continue;
      }
      EXPECT_EQ(table, reference)
          << "merged table depends on placement (shards=" << shards
          << ", policy=" << PolicyName(policy) << ")";
    }
  }
  EXPECT_NE(reference.find("gid,dataset,algo"), std::string::npos);
}

TEST(ShardRouterTest, MergedTableIdenticalAcrossJobs) {
  const Workload workload;
  RouterOptions options;
  ShardRouter narrow(options, MakeShards(3, BackendOptions(1)));
  ShardRouter wide(options, MakeShards(3, BackendOptions(8)));
  const std::string a = RenderMergedTable(narrow.RouteBatch(workload.Trace(8)));
  const std::string b = RenderMergedTable(wide.RouteBatch(workload.Trace(8)));
  EXPECT_EQ(a, b) << "per-shard jobs count leaked into the merged table";
}

// ----- failover ------------------------------------------------------------

TEST(ShardRouterTest, FailoverRedispatchesToSurvivorsByteIdentically) {
  const Workload workload;
  RouterOptions options;
  ShardRouter healthy(options, MakeShards(4, BackendOptions()));
  const std::string want =
      RenderMergedTable(healthy.RouteBatch(workload.Trace(8)));

  // Kill the first query's primary on its first sub-batch: its group is
  // lost in wave 1 and must complete on survivors in wave 2.
  const std::vector<RoutedQuery> trace = workload.Trace(8);
  const int64_t victim =
      RankShards(PlacementKey{trace[0].universe, trace[0].dataset,
                              trace[0].algo},
                 4, Policy::kRendezvous)
          .front();
  ShardRouter router(options, MakeShards(4, BackendOptions(), victim));
  const std::vector<RoutedOutcome> outcomes = router.RouteBatch(trace);

  EXPECT_EQ(RenderMergedTable(outcomes), want)
      << "failover changed the merged result table";
  const RouterCounters& counters = router.counters();
  EXPECT_GE(counters.shard_failures, 1);
  EXPECT_GE(counters.redispatched_queries, 1);
  EXPECT_EQ(counters.exhausted_queries, 0);
  EXPECT_EQ(router.healthy_shards(), 3);
  int64_t repurchased = 0;
  for (const RoutedOutcome& o : outcomes) {
    EXPECT_TRUE(o.result.status.ok()) << o.result.status.ToString();
    EXPECT_NE(o.shard_id, victim) << "dead shard reported a result";
    EXPECT_LE(o.redispatches, options.max_redispatch);
    if (o.redispatches > 0) repurchased += o.result.total_microtasks;
  }
  EXPECT_EQ(counters.repurchased_microtasks, repurchased)
      << "re-purchase trace counter does not match the outcomes";
}

TEST(ShardRouterTest, ExhaustedRedispatchBudgetFailsResourceExhausted) {
  const Workload workload;
  RouterOptions options;
  options.max_redispatch = 2;
  // Every shard dies on its first batch (fail_shard = -2 in MakeShards):
  // wave 1 kills the primaries, the re-dispatch waves kill the rest, and
  // each query must stop after its bounded budget instead of spinning.
  ShardRouter router(options, MakeShards(3, BackendOptions(), -2));
  const std::vector<RoutedOutcome> outcomes =
      router.RouteBatch(workload.Trace(6));
  EXPECT_EQ(router.healthy_shards(), 0);
  for (const RoutedOutcome& o : outcomes) {
    EXPECT_EQ(o.result.status.code(), util::StatusCode::kResourceExhausted)
        << o.result.status.ToString();
    EXPECT_EQ(o.shard_id, -1);
    EXPECT_LE(o.redispatches, options.max_redispatch);
  }
  const RouterCounters& counters = router.counters();
  EXPECT_EQ(counters.exhausted_queries, 6);
  EXPECT_LE(counters.redispatched_queries, 6 * options.max_redispatch);
}

// ----- cache sync ----------------------------------------------------------

// Runs `trace` on a single cached shard, optionally warm-started with
// `warm`, and returns the microtasks it purchased.
int64_t CachedRunMicrotasks(const std::vector<RoutedQuery>& trace,
                            const std::vector<cache::ExportedEntry>* warm,
                            std::vector<cache::ExportedEntry>* exported) {
  LocalShardBackend::Options options = BackendOptions();
  options.cache.enabled = true;
  LocalShardBackend backend(options);
  if (warm != nullptr) backend.SetWarmCache(*warm);
  const util::StatusOr<ShardBatchResult> result = backend.RunBatch(trace);
  EXPECT_TRUE(result.ok());
  if (exported != nullptr) *exported = backend.ExportCache();
  return result.value().microtasks;
}

// The alpha gate survives gossip. An entry arriving over RestoreEntries —
// the import path SyncCaches/SetWarmCache feeds — is held to exactly the
// local-lookup rule: a verdict decided at a looser alpha than the
// requester's is never served as a HIT (trusted without sampling); at most
// its bag seeds a top-up, after which the requester still buys until its
// own interval excludes 0. A covering (tighter) entry must hit, or the
// refusal branch would pass vacuously.
TEST(ShardCacheSyncTest, GossipedEntriesRespectTheAlphaGate) {
  cache::CacheOptions options;
  options.enabled = true;
  cache::JudgmentCache receiving(options);

  cache::ExportedEntry gossiped;
  gossiped.universe = 0;
  gossiped.kind = static_cast<int32_t>(cache::JudgmentKind::kPreference);
  gossiped.lo = 1;
  gossiped.hi = 2;
  gossiped.entry.outcome = crowd::ComparisonOutcome::kLeftWins;
  gossiped.entry.decisive = true;
  gossiped.entry.alpha = 0.2;
  gossiped.entry.count = 40;
  gossiped.entry.mean = 0.5;
  gossiped.entry.m2 = 1.0;
  receiving.RestoreEntries({gossiped});
  ASSERT_EQ(receiving.num_pairs(), 1);

  // Tighter requester (0.02 < 0.2): the cached confidence does not cover
  // it — the entry may only seed a top-up.
  const cache::LookupResult tight = receiving.Lookup(
      0, 1, 2, 0.02, 500, cache::JudgmentKind::kPreference);
  EXPECT_EQ(tight.status, cache::LookupStatus::kTopUp)
      << "a loose-alpha gossiped entry was served as a hit";

  // Looser requester (0.25 >= 0.2): covered, served outright.
  const cache::LookupResult covered = receiving.Lookup(
      0, 1, 2, 0.25, 500, cache::JudgmentKind::kPreference);
  EXPECT_EQ(covered.status, cache::LookupStatus::kHit)
      << "a covering gossiped entry never hits; the refusal test is vacuous";
}

// End-to-end flavour of the same gate through LocalShardBackend warm
// starts: loose-alpha exports seeding a tight trace may reduce purchases
// (top-up reuses real samples) but can never eliminate them, while tight
// exports serve a loose re-run of the pairs they decided as outright hits.
TEST(ShardCacheSyncTest, WarmStartTopsUpButNeverTrustsLooseVerdicts) {
  const Workload tight_workload(0.01);
  const Workload loose_workload(0.2);
  const std::vector<RoutedQuery> tight = tight_workload.Trace(2, 0.01);
  const std::vector<RoutedQuery> loose = loose_workload.Trace(2, 0.2);

  std::vector<cache::ExportedEntry> tight_entries;
  std::vector<cache::ExportedEntry> loose_entries;
  const int64_t tight_cold = CachedRunMicrotasks(tight, nullptr, &tight_entries);
  const int64_t loose_cold = CachedRunMicrotasks(loose, nullptr, &loose_entries);
  ASSERT_FALSE(tight_entries.empty());
  ASSERT_GT(tight_cold, 0);

  const int64_t tight_warmed_loose =
      CachedRunMicrotasks(tight, &loose_entries, nullptr);
  EXPECT_GT(tight_warmed_loose, 0)
      << "tight queries bought nothing over loose-alpha seeds — verdicts "
         "were trusted past the alpha gate";
  EXPECT_LE(tight_warmed_loose, tight_cold);

  const int64_t loose_warmed_tight =
      CachedRunMicrotasks(loose, &tight_entries, nullptr);
  EXPECT_LT(loose_warmed_tight, loose_cold)
      << "covering gossiped entries never served a hit";
}

TEST(ShardCacheSyncTest, RouterGossipKeepsCapacityBoundAndCounters) {
  const Workload workload;
  LocalShardBackend::Options backend_options = BackendOptions();
  backend_options.cache.enabled = true;
  backend_options.cache.capacity = 2;
  RouterOptions options;
  options.cache_sync = true;
  options.cache.enabled = true;
  options.cache.capacity = 2;
  ShardRouter router(options, MakeShards(3, backend_options));
  router.RouteBatch(workload.Trace(6));
  const RouterCounters& counters = router.counters();
  EXPECT_GE(counters.cache_sync_rounds, 1);
  // The merge vessel enforces the same capacity bound as any shard cache,
  // so one gossip round can never broadcast more distinct pairs than the
  // configured capacity.
  EXPECT_LE(counters.cache_entries_gossiped,
            counters.cache_sync_rounds * 2);
}

// ----- router vs plain serving stack ---------------------------------------

// A 1-shard router is the same machine as a plain QueryService fed stamped
// seed streams: pure columns must agree field-for-field.
TEST(ShardRouterTest, SingleShardMatchesPlainQueryService) {
  const Workload workload;
  const std::vector<RoutedQuery> trace = workload.Trace(6);

  RouterOptions options;
  ShardRouter router(options, MakeShards(1, BackendOptions()));
  const std::vector<RoutedOutcome> routed = router.RouteBatch(trace);

  serve::ServeOptions serve_options;
  serve_options.schedule = BackendOptions().schedule;
  serve_options.max_inflight = BackendOptions().max_inflight;
  serve_options.max_queue = -1;
  serve_options.seed = kSeed;
  std::vector<serve::QueryRequest> requests(trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    requests[i].algorithm = trace[i].algorithm;
    requests[i].dataset = trace[i].dataset_ptr;
    requests[i].k = trace[i].k;
    requests[i].cache_universe = trace[i].universe;
    requests[i].seed_stream = trace[i].global_id;
  }
  serve::QueryService service(serve_options);
  const std::vector<serve::QueryOutcome> direct =
      service.Replay(requests, std::vector<double>(trace.size(), 0.0));

  ASSERT_EQ(routed.size(), direct.size());
  for (size_t i = 0; i < routed.size(); ++i) {
    const ShardQueryResult& r = routed[i].result;
    const serve::QueryOutcome& d = direct[i];
    EXPECT_EQ(r.status.code(), d.status.code()) << "query " << i;
    EXPECT_EQ(r.items, d.items) << "query " << i;
    EXPECT_EQ(r.precision_at_k, d.precision_at_k) << "query " << i;
    EXPECT_EQ(r.total_microtasks, d.total_microtasks) << "query " << i;
    EXPECT_EQ(r.rounds_private, d.rounds_private) << "query " << i;
    EXPECT_EQ(r.expired_assignments, d.expired_assignments) << "query " << i;
    EXPECT_EQ(r.requeued_assignments, d.requeued_assignments) << "query " << i;
  }
}

}  // namespace
}  // namespace crowdtopk::shard
