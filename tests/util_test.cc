// Tests for util: Status/StatusOr, deterministic RNG, tables, env options.

#include <cstdlib>
#include <map>
#include <set>

#include "gtest/gtest.h"
#include "util/env.h"
#include "util/random.h"
#include "util/status.h"
#include "util/table.h"

namespace crowdtopk::util {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::InvalidArgument("k must be positive");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "k must be positive");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: k must be positive");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("x").code(), Status::OutOfRange("x").code(),
      Status::FailedPrecondition("x").code(),
      Status::ResourceExhausted("x").code(), Status::Internal("x").code(),
      Status::NotFound("x").code()};
  EXPECT_EQ(codes.size(), 6u);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("no such pair"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("payload"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

Status FailsThenPropagates() {
  CROWDTOPK_RETURN_IF_ERROR(Status::OutOfRange("inner"));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  const Status status = FailsThenPropagates();
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
}

// ------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(17);
  std::map<int64_t, int> counts;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) ++counts[rng.UniformInt(6)];
  EXPECT_EQ(counts.size(), 6u);
  for (const auto& [value, count] : counts) {
    EXPECT_GE(value, 0);
    EXPECT_LT(value, 6);
    // Each bucket within 10% of the expectation.
    EXPECT_NEAR(count, trials / 6.0, trials / 6.0 * 0.1);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(5);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(8);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(11);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::map<int64_t, int> counts;
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts.count(1), 0u);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.75, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(21);
  Rng child = parent.Fork();
  // Child stream should not mirror the parent stream.
  int equal = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// ---------------------------------------------------------------- Table

TEST(TableTest, CsvRoundTrip) {
  TablePrinter table("demo");
  table.SetHeader({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"with,comma", "2"});
  const std::string path = "/tmp/crowdtopk_table_test.csv";
  ASSERT_TRUE(table.WriteCsv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buffer[256];
  ASSERT_NE(std::fgets(buffer, sizeof(buffer), f), nullptr);
  EXPECT_STREQ(buffer, "name,value\n");
  ASSERT_NE(std::fgets(buffer, sizeof(buffer), f), nullptr);
  EXPECT_STREQ(buffer, "a,1\n");
  ASSERT_NE(std::fgets(buffer, sizeof(buffer), f), nullptr);
  EXPECT_STREQ(buffer, "\"with,comma\",2\n");
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1000.0, 0), "1000");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(TableTest, RowCountTracked) {
  TablePrinter table("");
  table.SetHeader({"x"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"1"});
  table.AddRow({"2"});
  EXPECT_EQ(table.num_rows(), 2u);
}

// ------------------------------------------------------------------ Env

TEST(EnvTest, IntFallbackAndParse) {
  ::unsetenv("CROWDTOPK_TEST_INT");
  EXPECT_EQ(GetEnvInt64("CROWDTOPK_TEST_INT", 7), 7);
  ::setenv("CROWDTOPK_TEST_INT", "42", 1);
  EXPECT_EQ(GetEnvInt64("CROWDTOPK_TEST_INT", 7), 42);
  ::setenv("CROWDTOPK_TEST_INT", "junk", 1);
  EXPECT_EQ(GetEnvInt64("CROWDTOPK_TEST_INT", 7), 7);
  ::unsetenv("CROWDTOPK_TEST_INT");
}

TEST(EnvTest, DoubleFallbackAndParse) {
  ::unsetenv("CROWDTOPK_TEST_DBL");
  EXPECT_EQ(GetEnvDouble("CROWDTOPK_TEST_DBL", 1.5), 1.5);
  ::setenv("CROWDTOPK_TEST_DBL", "0.25", 1);
  EXPECT_EQ(GetEnvDouble("CROWDTOPK_TEST_DBL", 1.5), 0.25);
  ::unsetenv("CROWDTOPK_TEST_DBL");
}

TEST(EnvTest, IntRejectsTrailingGarbage) {
  // "4x" must not silently parse as 4 (a typo'd CROWDTOPK_JOBS=4x would
  // otherwise change thread counts without anyone noticing).
  ::setenv("CROWDTOPK_TEST_INT_GARBAGE", "4x", 1);
  EXPECT_EQ(GetEnvInt64("CROWDTOPK_TEST_INT_GARBAGE", 7), 7);
  ::setenv("CROWDTOPK_TEST_INT_GARBAGE", "12 cores", 1);
  EXPECT_EQ(GetEnvInt64("CROWDTOPK_TEST_INT_GARBAGE", 7), 7);
  // Trailing whitespace is not garbage.
  ::setenv("CROWDTOPK_TEST_INT_GARBAGE", "42 ", 1);
  EXPECT_EQ(GetEnvInt64("CROWDTOPK_TEST_INT_GARBAGE", 7), 42);
  ::setenv("CROWDTOPK_TEST_INT_GARBAGE", "-3", 1);
  EXPECT_EQ(GetEnvInt64("CROWDTOPK_TEST_INT_GARBAGE", 7), -3);
  ::unsetenv("CROWDTOPK_TEST_INT_GARBAGE");
}

TEST(EnvTest, DoubleRejectsTrailingGarbage) {
  ::setenv("CROWDTOPK_TEST_DBL_GARBAGE", "0.25s", 1);
  EXPECT_EQ(GetEnvDouble("CROWDTOPK_TEST_DBL_GARBAGE", 1.5), 1.5);
  ::setenv("CROWDTOPK_TEST_DBL_GARBAGE", "junk", 1);
  EXPECT_EQ(GetEnvDouble("CROWDTOPK_TEST_DBL_GARBAGE", 1.5), 1.5);
  ::setenv("CROWDTOPK_TEST_DBL_GARBAGE", "1e-3\t", 1);
  EXPECT_EQ(GetEnvDouble("CROWDTOPK_TEST_DBL_GARBAGE", 1.5), 1e-3);
  ::unsetenv("CROWDTOPK_TEST_DBL_GARBAGE");
}

TEST(EnvTest, OutOfRangeValuesFallBack) {
  // strtoll/strtod clamp and set ERANGE on overflow; a clamped value is a
  // typo, not a request for INT64_MAX, so the fallback must win.
  ::setenv("CROWDTOPK_TEST_INT_RANGE", "99999999999999999999999", 1);
  EXPECT_EQ(GetEnvInt64("CROWDTOPK_TEST_INT_RANGE", 7), 7);
  ::setenv("CROWDTOPK_TEST_INT_RANGE", "-99999999999999999999999", 1);
  EXPECT_EQ(GetEnvInt64("CROWDTOPK_TEST_INT_RANGE", 7), 7);
  ::unsetenv("CROWDTOPK_TEST_INT_RANGE");

  ::setenv("CROWDTOPK_TEST_DBL_RANGE", "1e999", 1);
  EXPECT_EQ(GetEnvDouble("CROWDTOPK_TEST_DBL_RANGE", 1.5), 1.5);
  ::unsetenv("CROWDTOPK_TEST_DBL_RANGE");
}

TEST(EnvTest, EmptyValueMeansUnset) {
  ::setenv("CROWDTOPK_TEST_EMPTY", "", 1);
  EXPECT_EQ(GetEnvInt64("CROWDTOPK_TEST_EMPTY", 7), 7);
  EXPECT_EQ(GetEnvDouble("CROWDTOPK_TEST_EMPTY", 1.5), 1.5);
  EXPECT_EQ(GetEnvString("CROWDTOPK_TEST_EMPTY", "fallback"), "fallback");
  EXPECT_TRUE(GetEnvBool("CROWDTOPK_TEST_EMPTY", true));
  // Empty is silent — no strict-parse warning.
  const int64_t before = internal::EnvWarningCountForTest();
  EXPECT_EQ(GetEnvInt64("CROWDTOPK_TEST_EMPTY", 7), 7);
  EXPECT_EQ(internal::EnvWarningCountForTest(), before);
  ::unsetenv("CROWDTOPK_TEST_EMPTY");
}

TEST(EnvTest, BadValueWarnsOncePerVariable) {
  const int64_t before = internal::EnvWarningCountForTest();
  ::setenv("CROWDTOPK_TEST_WARN_ONCE", "junk", 1);
  GetEnvInt64("CROWDTOPK_TEST_WARN_ONCE", 7);
  EXPECT_EQ(internal::EnvWarningCountForTest(), before + 1);
  // Re-reading the same bad variable must not spam: a knob consulted in a
  // per-round loop would otherwise flood stderr.
  GetEnvInt64("CROWDTOPK_TEST_WARN_ONCE", 7);
  GetEnvDouble("CROWDTOPK_TEST_WARN_ONCE", 1.5);
  EXPECT_EQ(internal::EnvWarningCountForTest(), before + 1);
  // A different variable gets its own single warning.
  ::setenv("CROWDTOPK_TEST_WARN_TWICE", "alsojunk", 1);
  GetEnvDouble("CROWDTOPK_TEST_WARN_TWICE", 1.5);
  EXPECT_EQ(internal::EnvWarningCountForTest(), before + 2);
  ::unsetenv("CROWDTOPK_TEST_WARN_ONCE");
  ::unsetenv("CROWDTOPK_TEST_WARN_TWICE");
}

TEST(EnvTest, ResetClearsTheWarnOnceRegistry) {
  ::setenv("CROWDTOPK_TEST_WARN_RESET", "junk", 1);
  GetEnvInt64("CROWDTOPK_TEST_WARN_RESET", 7);  // registry now holds the name
  const int64_t before = internal::EnvWarningCountForTest();
  GetEnvInt64("CROWDTOPK_TEST_WARN_RESET", 7);
  EXPECT_EQ(internal::EnvWarningCountForTest(), before);  // still suppressed

  // Reset clears the per-variable registry but not the running counter, so
  // the same bad value warns again — the isolation hook tests rely on for
  // order-independent warn-once assertions.
  internal::ResetEnvWarningsForTest();
  GetEnvInt64("CROWDTOPK_TEST_WARN_RESET", 7);
  EXPECT_EQ(internal::EnvWarningCountForTest(), before + 1);
  GetEnvInt64("CROWDTOPK_TEST_WARN_RESET", 7);
  EXPECT_EQ(internal::EnvWarningCountForTest(), before + 1);
  ::unsetenv("CROWDTOPK_TEST_WARN_RESET");
}

TEST(EnvTest, StringFallback) {
  ::unsetenv("CROWDTOPK_TEST_STR");
  EXPECT_EQ(GetEnvString("CROWDTOPK_TEST_STR", "imdb"), "imdb");
  ::setenv("CROWDTOPK_TEST_STR", "book", 1);
  EXPECT_EQ(GetEnvString("CROWDTOPK_TEST_STR", "imdb"), "book");
  ::unsetenv("CROWDTOPK_TEST_STR");
}

// The CROWDTOPK_SHARD_* knobs follow the same strict-parse contract as
// the numeric ones: a typo'd policy warns once and falls back to
// rendezvous instead of silently routing differently.
TEST(EnvTest, ShardKnobsParseStrictly) {
  internal::ResetEnvWarningsForTest();
  const int64_t before = internal::EnvWarningCountForTest();
  ::setenv("CROWDTOPK_SHARD_POLICY", "roundrobin", 1);
  EXPECT_EQ(ShardPolicy(), "rendezvous");
  EXPECT_EQ(internal::EnvWarningCountForTest(), before + 1);
  ShardPolicy();  // consulted again (e.g. per-knob logging): no spam
  EXPECT_EQ(internal::EnvWarningCountForTest(), before + 1);
  ::setenv("CROWDTOPK_SHARD_POLICY", "modulo", 1);
  EXPECT_EQ(ShardPolicy(), "modulo");
  ::unsetenv("CROWDTOPK_SHARD_POLICY");
  EXPECT_EQ(ShardPolicy(), "rendezvous");

  ::setenv("CROWDTOPK_SHARDS", "0", 1);
  EXPECT_EQ(ShardCount(), 1);  // clamped, not an error
  ::setenv("CROWDTOPK_SHARDS", "four", 1);
  EXPECT_EQ(ShardCount(), 1);
  EXPECT_EQ(internal::EnvWarningCountForTest(), before + 2);
  ::unsetenv("CROWDTOPK_SHARDS");

  ::setenv("CROWDTOPK_SHARD_REDISPATCH", "lots", 1);
  EXPECT_EQ(ShardRedispatch(), 2);
  EXPECT_EQ(internal::EnvWarningCountForTest(), before + 3);
  ::unsetenv("CROWDTOPK_SHARD_REDISPATCH");
}

}  // namespace
}  // namespace crowdtopk::util
