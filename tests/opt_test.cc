// Tests for the L-BFGS minimiser.

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "opt/lbfgs.h"
#include "util/random.h"

namespace crowdtopk::opt {
namespace {

TEST(LbfgsTest, MinimisesSimpleQuadratic) {
  // f(x) = sum (x_i - i)^2.
  const Objective objective = [](const std::vector<double>& x,
                                 std::vector<double>* gradient) {
    double f = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - static_cast<double>(i);
      f += d * d;
      (*gradient)[i] = 2.0 * d;
    }
    return f;
  };
  const LbfgsResult result = MinimizeLbfgs(objective, {5.0, -3.0, 10.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 0.0, 1e-5);
  EXPECT_NEAR(result.x[1], 1.0, 1e-5);
  EXPECT_NEAR(result.x[2], 2.0, 1e-5);
  EXPECT_NEAR(result.value, 0.0, 1e-9);
}

TEST(LbfgsTest, MinimisesIllConditionedQuadratic) {
  // f(x) = 0.5 x' D x with condition number 1e4.
  const std::vector<double> diag = {1.0, 100.0, 10000.0};
  const Objective objective = [&](const std::vector<double>& x,
                                  std::vector<double>* gradient) {
    double f = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      f += 0.5 * diag[i] * x[i] * x[i];
      (*gradient)[i] = diag[i] * x[i];
    }
    return f;
  };
  LbfgsOptions options;
  options.max_iterations = 200;
  options.gradient_tolerance = 1e-8;
  const LbfgsResult result =
      MinimizeLbfgs(objective, {1.0, 1.0, 1.0}, options);
  EXPECT_NEAR(result.x[0], 0.0, 1e-6);
  EXPECT_NEAR(result.x[1], 0.0, 1e-6);
  EXPECT_NEAR(result.x[2], 0.0, 1e-6);
}

TEST(LbfgsTest, MinimisesRosenbrock) {
  const Objective objective = [](const std::vector<double>& x,
                                 std::vector<double>* gradient) {
    const double a = x[0], b = x[1];
    const double f =
        (1 - a) * (1 - a) + 100.0 * (b - a * a) * (b - a * a);
    (*gradient)[0] = -2.0 * (1 - a) - 400.0 * a * (b - a * a);
    (*gradient)[1] = 200.0 * (b - a * a);
    return f;
  };
  LbfgsOptions options;
  // Armijo-only backtracking (no Wolfe condition) is slow on Rosenbrock's
  // curved valley; it converges reliably but needs ~700 iterations.
  options.max_iterations = 2000;
  options.gradient_tolerance = 1e-8;
  const LbfgsResult result = MinimizeLbfgs(objective, {-1.2, 1.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 1e-4);
  EXPECT_NEAR(result.x[1], 1.0, 1e-4);
}

TEST(LbfgsTest, RecoversBtlScoresFromVotes) {
  // Generate BTL votes from known scores and check the fit recovers the
  // ordering (this is exactly CrowdBT's inner problem).
  util::Rng rng(1);
  const std::vector<double> truth = {2.0, 1.0, 0.0, -1.0, -2.0};
  const int n = static_cast<int>(truth.size());
  std::vector<std::vector<int>> wins(n, std::vector<int>(n, 0));
  for (int t = 0; t < 20000; ++t) {
    const int i = static_cast<int>(rng.UniformInt(n));
    int j = i;
    while (j == i) j = static_cast<int>(rng.UniformInt(n));
    const double p = 1.0 / (1.0 + std::exp(-(truth[i] - truth[j])));
    if (rng.Bernoulli(p)) {
      ++wins[i][j];
    } else {
      ++wins[j][i];
    }
  }
  const double lambda = 0.01;
  const Objective objective = [&](const std::vector<double>& s,
                                  std::vector<double>* gradient) {
    double nll = 0.0;
    std::fill(gradient->begin(), gradient->end(), 0.0);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (wins[i][j] == 0) continue;
        const double d = s[i] - s[j];
        const double sigmoid = 1.0 / (1.0 + std::exp(-d));
        nll -= wins[i][j] * std::log(std::max(sigmoid, 1e-300));
        const double g = -wins[i][j] * (1.0 - sigmoid);
        (*gradient)[i] += g;
        (*gradient)[j] -= g;
      }
    }
    for (int i = 0; i < n; ++i) {
      nll += 0.5 * lambda * s[i] * s[i];
      (*gradient)[i] += lambda * s[i];
    }
    return nll;
  };
  const LbfgsResult result =
      MinimizeLbfgs(objective, std::vector<double>(n, 0.0));
  for (int i = 0; i + 1 < n; ++i) {
    EXPECT_GT(result.x[i], result.x[i + 1]) << "i=" << i;
  }
  EXPECT_NEAR(result.x[0] - result.x[4], 4.0, 0.35);
}

TEST(LbfgsTest, AlreadyAtOptimumConvergesImmediately) {
  const Objective objective = [](const std::vector<double>& x,
                                 std::vector<double>* gradient) {
    (*gradient)[0] = 2.0 * x[0];
    return x[0] * x[0];
  };
  const LbfgsResult result = MinimizeLbfgs(objective, {0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0);
}

TEST(LbfgsTest, RespectsIterationCap) {
  // Slowly converging objective with a tiny iteration cap.
  const Objective objective = [](const std::vector<double>& x,
                                 std::vector<double>* gradient) {
    double f = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      f += std::pow(std::fabs(x[i]), 1.5);
      (*gradient)[i] = 1.5 * std::pow(std::fabs(x[i]), 0.5) *
                       (x[i] >= 0 ? 1.0 : -1.0);
    }
    return f;
  };
  LbfgsOptions options;
  options.max_iterations = 3;
  const LbfgsResult result = MinimizeLbfgs(objective, {100.0}, options);
  EXPECT_LE(result.iterations, 3);
}

}  // namespace
}  // namespace crowdtopk::opt
