// Tests for the cross-query judgment cache (src/cache) and its judgment- and
// serve-layer wiring: hit/top-up confidence rules, orientation and id
// translation, capacity semantics (0 = byte-identical pass-through),
// deferred-commit determinism, the transitivity composition rule, bit-exact
// session resumption against a cold run, and end-to-end TMC savings with
// bit-identity across serve worker counts.

#include <memory>
#include <vector>

#include "baselines/tournament_tree.h"
#include "cache/cache_client.h"
#include "cache/judgment_cache.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "data/subset_dataset.h"
#include "gtest/gtest.h"
#include "judgment/cache.h"
#include "judgment/comparison.h"
#include "serve/query_service.h"
#include "stats/student_t.h"

namespace crowdtopk::cache {
namespace {

using crowd::ComparisonOutcome;
using crowd::ItemId;

CachedComparison DecisiveEntry(double alpha, int64_t count, double mean) {
  CachedComparison entry;
  entry.outcome =
      mean > 0 ? ComparisonOutcome::kLeftWins : ComparisonOutcome::kRightWins;
  entry.decisive = true;
  entry.alpha = alpha;
  entry.count = count;
  entry.mean = mean;
  entry.m2 = 0.5 * static_cast<double>(count);
  entry.first_stage_count = 30;
  entry.first_stage_sd = 0.7;
  return entry;
}

CachedComparison TieEntry(int64_t count) {
  CachedComparison entry;
  entry.outcome = ComparisonOutcome::kTie;
  entry.decisive = false;
  entry.alpha = 0.02;
  entry.count = count;
  entry.mean = 0.001;
  entry.m2 = 0.5 * static_cast<double>(count);
  return entry;
}

TEST(JudgmentCacheTest, MissOnEmpty) {
  JudgmentCache cache(CacheOptions{});
  const LookupResult result = cache.Lookup(
      0, 1, 2, 0.02, 1000, JudgmentKind::kPreference);
  EXPECT_EQ(result.status, LookupStatus::kMiss);
  EXPECT_EQ(cache.stats().misses, 1);
}

// The hit rule: a decisive entry answers only requests whose confidence the
// cached verdict covers (cached alpha <= requested alpha); stricter
// requesters get the bag as a top-up seed instead.
TEST(JudgmentCacheTest, HitOnlyAtCoveringConfidence) {
  JudgmentCache cache(CacheOptions{});
  cache.Record(0, 0, 1, 2, JudgmentKind::kPreference,
               DecisiveEntry(/*alpha=*/0.02, /*count=*/60, /*mean=*/0.4));

  EXPECT_EQ(cache.Lookup(0, 1, 2, 0.02, 1000, JudgmentKind::kPreference)
                .status,
            LookupStatus::kHit);
  EXPECT_EQ(cache.Lookup(0, 1, 2, 0.10, 1000, JudgmentKind::kPreference)
                .status,
            LookupStatus::kHit);
  EXPECT_EQ(cache.Lookup(0, 1, 2, 0.01, 1000, JudgmentKind::kPreference)
                .status,
            LookupStatus::kTopUp);
}

// A budget-exhausted tie is only an answer for requesters whose own budget
// the cached funding already covers; a richer requester keeps sampling.
TEST(JudgmentCacheTest, TieHitRequiresBudgetCoverage) {
  JudgmentCache cache(CacheOptions{});
  cache.Record(0, 0, 1, 2, JudgmentKind::kPreference, TieEntry(/*count=*/100));

  EXPECT_EQ(cache.Lookup(0, 1, 2, 0.02, 100, JudgmentKind::kPreference)
                .status,
            LookupStatus::kHit);
  EXPECT_EQ(cache.Lookup(0, 1, 2, 0.02, 80, JudgmentKind::kPreference).status,
            LookupStatus::kHit);
  EXPECT_EQ(cache.Lookup(0, 1, 2, 0.02, 500, JudgmentKind::kPreference)
                .status,
            LookupStatus::kTopUp);
}

// Entries are stored canonically but served oriented for the asked (i, j):
// looking the pair up backwards flips the verdict and negates the mean.
TEST(JudgmentCacheTest, LookupOrientsEntryForCaller) {
  JudgmentCache cache(CacheOptions{});
  cache.Record(0, 0, /*i=*/5, /*j=*/3, JudgmentKind::kPreference,
               DecisiveEntry(0.02, 60, /*mean=*/0.4));  // 5 beats 3

  const LookupResult forward =
      cache.Lookup(0, 5, 3, 0.02, 1000, JudgmentKind::kPreference);
  EXPECT_EQ(forward.entry.outcome, ComparisonOutcome::kLeftWins);
  EXPECT_DOUBLE_EQ(forward.entry.mean, 0.4);

  const LookupResult backward =
      cache.Lookup(0, 3, 5, 0.02, 1000, JudgmentKind::kPreference);
  EXPECT_EQ(backward.entry.outcome, ComparisonOutcome::kRightWins);
  EXPECT_DOUBLE_EQ(backward.entry.mean, -0.4);
}

// Preference and binary bags are different sample spaces; universes are
// disjoint namespaces. Neither may serve the other.
TEST(JudgmentCacheTest, KindAndUniverseNamespacesAreDisjoint) {
  JudgmentCache cache(CacheOptions{});
  cache.Record(0, /*universe=*/0, 1, 2, JudgmentKind::kPreference,
               DecisiveEntry(0.02, 60, 0.4));

  EXPECT_EQ(cache.Lookup(0, 1, 2, 0.02, 1000, JudgmentKind::kBinary).status,
            LookupStatus::kMiss);
  EXPECT_EQ(cache.Lookup(1, 1, 2, 0.02, 1000, JudgmentKind::kPreference)
                .status,
            LookupStatus::kMiss);
}

TEST(JudgmentCacheTest, CapacityZeroStoresAndServesNothing) {
  CacheOptions options;
  options.capacity = 0;
  JudgmentCache cache(options);
  cache.Record(0, 0, 1, 2, JudgmentKind::kPreference,
               DecisiveEntry(0.02, 60, 0.4));
  EXPECT_EQ(cache.num_pairs(), 0);
  EXPECT_EQ(cache.Lookup(0, 1, 2, 0.02, 1000, JudgmentKind::kPreference)
                .status,
            LookupStatus::kMiss);
}

TEST(JudgmentCacheTest, FullCacheDropsNewPairsDeterministically) {
  CacheOptions options;
  options.capacity = 1;
  JudgmentCache cache(options);
  cache.Record(0, 0, 1, 2, JudgmentKind::kPreference,
               DecisiveEntry(0.02, 60, 0.4));
  cache.Record(0, 0, 3, 4, JudgmentKind::kPreference,
               DecisiveEntry(0.02, 60, 0.4));
  EXPECT_EQ(cache.num_pairs(), 1);
  EXPECT_EQ(cache.stats().dropped_capacity, 1);
  // Upgrading the resident pair still works at capacity.
  cache.Record(0, 0, 1, 2, JudgmentKind::kPreference,
               DecisiveEntry(0.01, 90, 0.4));
  EXPECT_EQ(cache.stats().upgrades, 1);
}

// The merge rule: decisive beats tie, then lower alpha, then higher count;
// anything else keeps the incumbent, so commit order cannot matter.
TEST(JudgmentCacheTest, BetterEntryReplacesWorse) {
  JudgmentCache cache(CacheOptions{});
  cache.Record(0, 0, 1, 2, JudgmentKind::kPreference, TieEntry(1000));
  cache.Record(0, 0, 1, 2, JudgmentKind::kPreference,
               DecisiveEntry(0.02, 60, 0.4));
  EXPECT_EQ(cache.stats().upgrades, 1);
  EXPECT_TRUE(cache.Lookup(0, 1, 2, 0.02, 1000, JudgmentKind::kPreference)
                  .entry.decisive);
  // A later, weaker verdict does not displace the stronger one.
  cache.Record(0, 0, 1, 2, JudgmentKind::kPreference,
               DecisiveEntry(0.05, 40, 0.4));
  EXPECT_EQ(cache.stats().upgrades, 1);
  EXPECT_DOUBLE_EQ(
      cache.Lookup(0, 1, 2, 0.02, 1000, JudgmentKind::kPreference).entry.alpha,
      0.02);
}

TEST(JudgmentCacheTest, DeferredCommitAppliesOnlyAtBarrier) {
  CacheOptions options;
  options.deferred_commit = true;
  JudgmentCache cache(options);
  cache.Record(/*query_id=*/7, 0, 1, 2, JudgmentKind::kPreference,
               DecisiveEntry(0.02, 60, 0.4));
  EXPECT_EQ(cache.Lookup(0, 1, 2, 0.02, 1000, JudgmentKind::kPreference)
                .status,
            LookupStatus::kMiss);
  cache.CommitPending();
  EXPECT_EQ(cache.Lookup(0, 1, 2, 0.02, 1000, JudgmentKind::kPreference)
                .status,
            LookupStatus::kHit);
}

// ---------------------------------------------------------------------------
// Transitivity.

TEST(TransitivityTest, ComposesSameDirectionChainsUnderUnionBound) {
  CacheOptions options;
  options.transitivity = true;
  JudgmentCache cache(options);
  // 1 beats 5 and 5 beats 2, both at alpha = 0.005.
  cache.Record(0, 0, 1, 5, JudgmentKind::kPreference,
               DecisiveEntry(0.005, 60, 0.4));
  cache.Record(0, 0, 5, 2, JudgmentKind::kPreference,
               DecisiveEntry(0.005, 60, 0.4));

  // alpha = 0.02 >= 0.005 + 0.005: served.
  const LookupResult inferred =
      cache.Lookup(0, 1, 2, 0.02, 1000, JudgmentKind::kPreference);
  ASSERT_EQ(inferred.status, LookupStatus::kInferred);
  EXPECT_EQ(inferred.entry.outcome, ComparisonOutcome::kLeftWins);
  EXPECT_DOUBLE_EQ(inferred.entry.alpha, 0.01);
  // No samples ride along with a composed verdict.
  EXPECT_EQ(inferred.entry.count, 0);
  // Reverse orientation flips the verdict.
  EXPECT_EQ(cache.Lookup(0, 2, 1, 0.02, 1000, JudgmentKind::kPreference)
                .entry.outcome,
            ComparisonOutcome::kRightWins);
}

TEST(TransitivityTest, RefusesWhenComposedAlphaExceedsRequest) {
  CacheOptions options;
  options.transitivity = true;
  JudgmentCache cache(options);
  // Both links at the requester's own alpha: 0.02 + 0.02 > 0.02.
  cache.Record(0, 0, 1, 5, JudgmentKind::kPreference,
               DecisiveEntry(0.02, 60, 0.4));
  cache.Record(0, 0, 5, 2, JudgmentKind::kPreference,
               DecisiveEntry(0.02, 60, 0.4));
  EXPECT_EQ(cache.Lookup(0, 1, 2, 0.02, 1000, JudgmentKind::kPreference)
                .status,
            LookupStatus::kMiss);
}

TEST(TransitivityTest, RefusesMixedDirectionChains) {
  CacheOptions options;
  options.transitivity = true;
  JudgmentCache cache(options);
  // 1 beats 5 but 2 beats 5: the chain does not point through 5.
  cache.Record(0, 0, 1, 5, JudgmentKind::kPreference,
               DecisiveEntry(0.005, 60, 0.4));
  cache.Record(0, 0, 2, 5, JudgmentKind::kPreference,
               DecisiveEntry(0.005, 60, 0.4));
  EXPECT_EQ(cache.Lookup(0, 1, 2, 0.02, 1000, JudgmentKind::kPreference)
                .status,
            LookupStatus::kMiss);
}

TEST(TransitivityTest, OffByDefault) {
  JudgmentCache cache(CacheOptions{});
  cache.Record(0, 0, 1, 5, JudgmentKind::kPreference,
               DecisiveEntry(0.005, 60, 0.4));
  cache.Record(0, 0, 5, 2, JudgmentKind::kPreference,
               DecisiveEntry(0.005, 60, 0.4));
  EXPECT_EQ(cache.Lookup(0, 1, 2, 0.02, 1000, JudgmentKind::kPreference)
                .status,
            LookupStatus::kMiss);
}

// ---------------------------------------------------------------------------
// CacheClient id translation.

TEST(CacheClientTest, TranslatesLocalIdsAndPreservesOrientation) {
  JudgmentCache cache(CacheOptions{});
  // Query A runs over universe items {10, 20, 30} as locals {0, 1, 2} and
  // resolves local 0 > local 2 (universe 10 > 30).
  CacheClient a(&cache, /*query_id=*/0, /*universe=*/0, {10, 20, 30});
  a.Record(0, 2, JudgmentKind::kPreference, DecisiveEntry(0.02, 60, 0.4));

  // Query B sees the same universe items in a different local order.
  CacheClient b(&cache, /*query_id=*/1, /*universe=*/0, {30, 10});
  const LookupResult result =
      b.Lookup(/*i=*/0, /*j=*/1, 0.02, 1000, JudgmentKind::kPreference);
  ASSERT_EQ(result.status, LookupStatus::kHit);
  // B's local 0 is universe 30, which loses to universe 10 (B's local 1).
  EXPECT_EQ(result.entry.outcome, ComparisonOutcome::kRightWins);
  EXPECT_DOUBLE_EQ(result.entry.mean, -0.4);
  EXPECT_EQ(b.stats().hits, 1);
  EXPECT_EQ(b.stats().seeded_samples, 60);
}

// ---------------------------------------------------------------------------
// Session resumption: a top-up must reproduce the cold run bit for bit.

// An oracle replaying a fixed judgment sequence (ignoring the rng), with a
// settable read position so a warm session can resume mid-sequence.
class SequenceOracle : public data::Dataset {
 public:
  SequenceOracle() : Dataset("Sequence", {1.0, 0.0}) {}

  double PreferenceJudgment(ItemId, ItemId, util::Rng*) const override {
    return ValueAt(position_++);
  }
  double GradedJudgment(ItemId, util::Rng*) const override { return 0.5; }

  void set_position(int64_t position) const { position_ = position; }
  int64_t position() const { return position_; }

  // Mixed early samples (the interval stays wide through the cold start),
  // then a strong positive run so the session concludes mid-sequence.
  static double ValueAt(int64_t t) {
    if (t < 45) return t % 2 == 0 ? 1.0 : -1.0;
    return 1.0;
  }

 private:
  mutable int64_t position_ = 0;
};

TEST(SessionSeedTest, TopUpReproducesColdRunBitForBit) {
  judgment::ComparisonOptions options;
  stats::TCriticalCache t_cache(judgment::EffectiveAlpha(options));

  // Cold reference run: one session from scratch to completion.
  SequenceOracle oracle;
  crowd::CrowdPlatform cold_platform(&oracle, /*seed=*/1);
  judgment::ComparisonSession cold(0, 1, &options, &t_cache);
  const ComparisonOutcome cold_outcome = cold.RunToCompletion(&cold_platform);
  const int64_t cold_workload = cold.workload();
  ASSERT_GT(cold_workload, options.min_workload);  // concluded mid-sequence

  // Donor run: same sequence from the start, but only the cold-start batch.
  oracle.set_position(0);
  crowd::CrowdPlatform donor_platform(&oracle, /*seed=*/2);
  judgment::ComparisonSession donor(0, 1, &options, &t_cache);
  donor.Step(&donor_platform, options.batch_size);
  ASSERT_FALSE(donor.Finished());
  const int64_t donated = donor.workload();

  // Warm run: seed from the donor's summary, then resume the sequence at
  // the donor's position. Must replay the cold run's tail exactly.
  crowd::CrowdPlatform warm_platform(&oracle, /*seed=*/3);
  judgment::ComparisonSession warm(0, 1, &options, &t_cache);
  warm.SeedFromCache(donor.workload(), donor.Mean(), donor.M2(),
                     donor.first_stage_count(), donor.first_stage_sd());
  ASSERT_FALSE(warm.Finished());
  oracle.set_position(donated);
  const ComparisonOutcome warm_outcome = warm.RunToCompletion(&warm_platform);

  EXPECT_EQ(warm_outcome, cold_outcome);
  EXPECT_EQ(warm.workload(), cold_workload);
  // The warm platform is charged exactly the cold remainder.
  EXPECT_EQ(warm_platform.total_microtasks(), cold_workload - donated);
  // Bit-exact accumulator state, not merely close.
  EXPECT_EQ(warm.Mean(), cold.Mean());
  EXPECT_EQ(warm.M2(), cold.M2());
}

// ---------------------------------------------------------------------------
// Judgment-layer wiring: ComparisonCache consults and publishes through the
// platform-attached client.

TEST(ComparisonCacheSharedTest, SecondQueryHitsWithoutPurchases) {
  const auto dataset = data::MakeUniformLadder(6, 10.0, 2.0);
  judgment::ComparisonOptions options;
  JudgmentCache shared(CacheOptions{});

  crowd::CrowdPlatform first_platform(dataset.get(), /*seed=*/11);
  CacheClient first_client(&shared, /*query_id=*/0, /*universe=*/0);
  first_platform.SetCacheClient(&first_client);
  ComparisonOutcome first_outcome;
  {
    judgment::ComparisonCache cache(options, &first_platform);
    first_outcome = cache.Compare(0, 1, &first_platform);
  }  // destructor publishes
  ASSERT_GT(first_platform.total_microtasks(), 0);
  EXPECT_EQ(shared.num_pairs(), 1);

  crowd::CrowdPlatform second_platform(dataset.get(), /*seed=*/22);
  CacheClient second_client(&shared, /*query_id=*/1, /*universe=*/0);
  second_platform.SetCacheClient(&second_client);
  judgment::ComparisonCache cache(options, &second_platform);
  EXPECT_EQ(cache.Compare(0, 1, &second_platform), first_outcome);
  EXPECT_EQ(second_platform.total_microtasks(), 0);
  EXPECT_EQ(second_client.stats().hits, 1);
  // The seeded session exposes the donor's estimates to the algorithm.
  EXPECT_NE(cache.EstimatedMean(0, 1), 0.0);
}

// Without a client on the platform nothing is consulted or published — the
// legacy single-query path is untouched.
TEST(ComparisonCacheSharedTest, NoClientMeansNoSharing) {
  const auto dataset = data::MakeUniformLadder(6, 10.0, 2.0);
  judgment::ComparisonOptions options;
  crowd::CrowdPlatform platform(dataset.get(), /*seed=*/11);
  judgment::ComparisonCache cache(options, &platform);
  cache.Compare(0, 1, &platform);
  EXPECT_GT(platform.total_microtasks(), 0);
}

// ---------------------------------------------------------------------------
// Serve-layer wiring.

serve::ServeOptions SequentialServe(bool cached) {
  serve::ServeOptions options;
  options.max_inflight = 1;
  options.jobs = 1;
  options.seed = 77;
  options.cache.enabled = cached;
  return options;
}

std::vector<serve::QueryOutcome> ReplayTwice(
    const data::Dataset* dataset, core::TopKAlgorithm* algorithm,
    const serve::ServeOptions& options) {
  std::vector<serve::QueryRequest> requests(2);
  for (serve::QueryRequest& request : requests) {
    request.algorithm = algorithm;
    request.dataset = dataset;
    request.k = 3;
  }
  serve::QueryService service(options);
  return service.Replay(requests, {0.0, 0.0});
}

TEST(ServeCacheTest, RepeatQueryReusesAndSavesMicrotasks) {
  // Small universe: the two queries' random brackets are certain to share
  // pairs.
  const auto dataset = data::MakeUniformLadder(10, 10.0, 2.0);
  judgment::ComparisonOptions comparison;
  baselines::TournamentTree algorithm(comparison);

  const auto uncached =
      ReplayTwice(dataset.get(), &algorithm, SequentialServe(false));
  const auto cached =
      ReplayTwice(dataset.get(), &algorithm, SequentialServe(true));

  // Query 0 runs cold either way; query 1 reuses whatever pairs its bracket
  // shares with query 0's and must get strictly cheaper.
  EXPECT_EQ(cached[0].total_microtasks, uncached[0].total_microtasks);
  EXPECT_EQ(cached[0].cache_hits, 0);
  EXPECT_GT(cached[1].cache_hits, 0);
  EXPECT_LT(cached[1].total_microtasks, uncached[1].total_microtasks);
  // Reuse never changes the answer on a well-separated ladder.
  EXPECT_EQ(cached[1].items, uncached[1].items);
}

TEST(ServeCacheTest, ZeroCapacityIsByteIdenticalToDisabled) {
  const auto dataset = data::MakeUniformLadder(16, 10.0, 2.0);
  judgment::ComparisonOptions comparison;
  baselines::TournamentTree algorithm(comparison);

  serve::ServeOptions zero_capacity = SequentialServe(true);
  zero_capacity.cache.capacity = 0;
  const auto disabled =
      ReplayTwice(dataset.get(), &algorithm, SequentialServe(false));
  const auto passthrough =
      ReplayTwice(dataset.get(), &algorithm, zero_capacity);

  ASSERT_EQ(disabled.size(), passthrough.size());
  for (size_t q = 0; q < disabled.size(); ++q) {
    EXPECT_EQ(disabled[q].items, passthrough[q].items);
    EXPECT_EQ(disabled[q].total_microtasks, passthrough[q].total_microtasks);
    EXPECT_EQ(disabled[q].rounds_observed, passthrough[q].rounds_observed);
    EXPECT_EQ(disabled[q].finish_seconds, passthrough[q].finish_seconds);
    EXPECT_EQ(passthrough[q].cache_hits, 0);
    EXPECT_EQ(passthrough[q].cache_topups, 0);
  }
}

// The determinism contract extends to the shared cache: a concurrent cached
// replay is bit-identical between jobs=1 and jobs=8.
TEST(ServeCacheTest, CachedReplayBitIdenticalAcrossJobs) {
  const auto dataset = data::MakeUniformLadder(16, 10.0, 2.0);
  judgment::ComparisonOptions comparison;
  baselines::TournamentTree algorithm(comparison);

  std::vector<serve::QueryRequest> requests(6);
  for (serve::QueryRequest& request : requests) {
    request.algorithm = &algorithm;
    request.dataset = dataset.get();
    request.k = 3;
  }
  const std::vector<double> arrivals(6, 0.0);

  std::vector<std::vector<serve::QueryOutcome>> by_jobs;
  for (const int64_t jobs : {int64_t{1}, int64_t{8}}) {
    serve::ServeOptions options;
    options.max_inflight = 4;  // concurrent drivers share the cache
    options.jobs = jobs;
    options.seed = 77;
    options.cache.enabled = true;
    serve::QueryService service(options);
    by_jobs.push_back(service.Replay(requests, arrivals));
  }
  ASSERT_EQ(by_jobs[0].size(), by_jobs[1].size());
  for (size_t q = 0; q < by_jobs[0].size(); ++q) {
    EXPECT_EQ(by_jobs[0][q].items, by_jobs[1][q].items);
    EXPECT_EQ(by_jobs[0][q].total_microtasks, by_jobs[1][q].total_microtasks);
    EXPECT_EQ(by_jobs[0][q].cache_hits, by_jobs[1][q].cache_hits);
    EXPECT_EQ(by_jobs[0][q].cache_topups, by_jobs[1][q].cache_topups);
    EXPECT_EQ(by_jobs[0][q].finish_seconds, by_jobs[1][q].finish_seconds);
  }
}

// Subset queries translate local ids through cache_item_ids, so two
// different subset views of one parent share judgments in parent-id space.
TEST(ServeCacheTest, SubsetQueriesShareThroughIdTranslation) {
  const auto parent = data::MakeUniformLadder(12, 10.0, 2.0);
  // Two subsets over the SAME parent items, listed in different local
  // orders.
  data::SubsetDataset first(parent.get(), {0, 2, 4, 6, 8, 10});
  data::SubsetDataset second(parent.get(), {10, 8, 6, 4, 2, 0});
  judgment::ComparisonOptions comparison;
  baselines::TournamentTree algorithm(comparison);

  std::vector<serve::QueryRequest> requests(2);
  for (serve::QueryRequest& request : requests) {
    request.algorithm = &algorithm;
    request.k = 3;
    request.cache_universe = 0;
  }
  requests[0].dataset = &first;
  requests[0].cache_item_ids = first.parent_ids();
  requests[1].dataset = &second;
  requests[1].cache_item_ids = second.parent_ids();

  serve::QueryService service(SequentialServe(true));
  const auto outcomes = service.Replay(requests, {0.0, 0.0});
  EXPECT_GT(outcomes[1].cache_hits + outcomes[1].cache_topups, 0);
  // Translation must preserve correctness: both queries agree on the true
  // top items (locals differ, parents match).
  std::vector<ItemId> first_parents, second_parents;
  for (ItemId local : outcomes[0].items) {
    first_parents.push_back(first.ToParentId(local));
  }
  for (ItemId local : outcomes[1].items) {
    second_parents.push_back(second.ToParentId(local));
  }
  EXPECT_EQ(first_parents, second_parents);
}

// Capacity drops are attributed to the universe whose insert was refused,
// ascending by universe id, and sum to the aggregate dropped_capacity.
TEST(JudgmentCacheTest, DropsAreCountedPerUniverse) {
  CacheOptions options;
  options.capacity = 2;
  JudgmentCache cache(options);
  cache.Record(0, /*universe=*/0, 1, 2, JudgmentKind::kPreference,
               DecisiveEntry(0.02, 50, 0.9));
  cache.Record(0, /*universe=*/7, 1, 2, JudgmentKind::kPreference,
               DecisiveEntry(0.02, 50, 0.9));
  // Full: one refused insert for universe 7, two for universe 0.
  cache.Record(0, 7, 3, 4, JudgmentKind::kPreference,
               DecisiveEntry(0.02, 50, 0.9));
  cache.Record(0, 0, 3, 4, JudgmentKind::kPreference,
               DecisiveEntry(0.02, 50, 0.9));
  cache.Record(0, 0, 5, 6, JudgmentKind::kPreference,
               DecisiveEntry(0.02, 50, 0.9));

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.dropped_capacity, 3);
  ASSERT_EQ(stats.dropped_by_universe.size(), 2u);
  EXPECT_EQ(stats.dropped_by_universe[0], (std::pair<int64_t, int64_t>(0, 2)));
  EXPECT_EQ(stats.dropped_by_universe[1], (std::pair<int64_t, int64_t>(7, 1)));
  // Upgrades of an existing pair are not drops.
  cache.Record(0, 0, 1, 2, JudgmentKind::kPreference,
               DecisiveEntry(0.01, 80, 0.9));
  EXPECT_EQ(cache.stats().dropped_capacity, 3);
}

// Export/RestoreEntries is the warm-restart unit: a fresh cache restored
// from an export serves the same verdicts, counts the imports under
// `restored` (not `inserts`), and re-exports the identical image.
TEST(JudgmentCacheTest, ExportRestoreRoundTrip) {
  JudgmentCache donor(CacheOptions{});
  donor.Record(0, 0, 1, 2, JudgmentKind::kPreference,
               DecisiveEntry(0.02, 50, 0.9));
  donor.Record(0, 3, /*i=*/9, /*j=*/4, JudgmentKind::kPreference,
               DecisiveEntry(0.05, 20, -0.4));
  const std::vector<ExportedEntry> image = donor.Export();
  ASSERT_EQ(image.size(), 2u);
  // Canonical order: (universe, pair) ascending, lo < hi.
  EXPECT_EQ(image[0].universe, 0);
  EXPECT_EQ(image[1].universe, 3);
  EXPECT_LT(image[1].lo, image[1].hi);

  JudgmentCache restored(CacheOptions{});
  restored.RestoreEntries(image);
  const CacheStats stats = restored.stats();
  EXPECT_EQ(stats.restored, 2);
  EXPECT_EQ(stats.inserts, 0);
  EXPECT_EQ(stats.pairs, 2);

  const LookupResult hit =
      restored.Lookup(0, 1, 2, 0.05, 1000, JudgmentKind::kPreference);
  EXPECT_EQ(hit.status, LookupStatus::kHit);
  EXPECT_EQ(hit.entry.outcome, ComparisonOutcome::kLeftWins);

  // Bit-exact round trip, orientation included.
  const std::vector<ExportedEntry> again = restored.Export();
  ASSERT_EQ(again.size(), image.size());
  for (size_t i = 0; i < image.size(); ++i) {
    EXPECT_EQ(again[i].universe, image[i].universe);
    EXPECT_EQ(again[i].lo, image[i].lo);
    EXPECT_EQ(again[i].hi, image[i].hi);
    EXPECT_EQ(again[i].entry.mean, image[i].entry.mean);
    EXPECT_EQ(again[i].entry.m2, image[i].entry.m2);
    EXPECT_EQ(again[i].entry.count, image[i].entry.count);
  }
}

}  // namespace
}  // namespace crowdtopk::cache
