// Tests for the ranking metrics (NDCG, precision/recall, Kendall tau,
// Spearman footrule).

#include <vector>

#include "data/gaussian_dataset.h"
#include "gtest/gtest.h"
#include "metrics/ranking_metrics.h"

namespace crowdtopk::metrics {
namespace {

// Scores 9, 8, ..., 0: item i has true rank 10 - i.
data::GaussianDataset TenItems() {
  std::vector<double> scores;
  for (int i = 0; i < 10; ++i) scores.push_back(static_cast<double>(i));
  return data::GaussianDataset("m", std::move(scores), 1.0, 10.0);
}

TEST(NdcgTest, PerfectRankingScoresOne) {
  data::GaussianDataset dataset = TenItems();
  const std::vector<crowd::ItemId> perfect = {9, 8, 7, 6, 5};
  EXPECT_DOUBLE_EQ(Ndcg(dataset, perfect, 5), 1.0);
}

TEST(NdcgTest, BottomItemsScoreLowButNearMissesGetPartialCredit) {
  data::GaussianDataset dataset = TenItems();
  // Items of true rank 10..6: all outside the true top-5, but within the
  // linear-decay window (rank < 2k + 1 = 11), so a little credit remains.
  const std::vector<crowd::ItemId> wrong = {0, 1, 2, 3, 4};
  const double ndcg = Ndcg(dataset, wrong, 5);
  EXPECT_GT(ndcg, 0.0);
  EXPECT_LT(ndcg, 0.45);
  // The strict variant gives no credit outside the true top-k.
  EXPECT_DOUBLE_EQ(NdcgStrict(dataset, wrong, 5), 0.0);
}

TEST(NdcgStrictTest, PerfectScoresOneAndDominatedByNdcg) {
  data::GaussianDataset dataset = TenItems();
  EXPECT_DOUBLE_EQ(NdcgStrict(dataset, {9, 8, 7, 6, 5}, 5), 1.0);
  // Strict <= graded for any result.
  const std::vector<crowd::ItemId> mixed = {9, 4, 7, 2, 5};
  EXPECT_LE(NdcgStrict(dataset, mixed, 5), Ndcg(dataset, mixed, 5));
}

TEST(NdcgTest, RightSetWrongOrderIsBetweenZeroAndOne) {
  data::GaussianDataset dataset = TenItems();
  const std::vector<crowd::ItemId> reversed = {5, 6, 7, 8, 9};
  const double ndcg = Ndcg(dataset, reversed, 5);
  EXPECT_GT(ndcg, 0.5);
  EXPECT_LT(ndcg, 1.0);
}

TEST(NdcgTest, SwappingTopPairCostsMoreThanBottomPair) {
  data::GaussianDataset dataset = TenItems();
  const double swap_top = Ndcg(dataset, {8, 9, 7, 6, 5}, 5);
  const double swap_bottom = Ndcg(dataset, {9, 8, 7, 5, 6}, 5);
  EXPECT_LT(swap_top, swap_bottom);
}

TEST(NdcgTest, ShortResultPenalised) {
  data::GaussianDataset dataset = TenItems();
  const double full = Ndcg(dataset, {9, 8, 7, 6, 5}, 5);
  const double partial = Ndcg(dataset, {9, 8, 7}, 5);
  EXPECT_LT(partial, full);
  EXPECT_GT(partial, 0.0);
}

TEST(PrecisionRecallTest, CountsTrueTopKMembership) {
  data::GaussianDataset dataset = TenItems();
  // 3 of 5 returned are true top-5 (9, 8, 7 yes; 0, 1 no).
  const std::vector<crowd::ItemId> mixed = {9, 0, 8, 1, 7};
  EXPECT_DOUBLE_EQ(PrecisionAtK(dataset, mixed, 5), 0.6);
  EXPECT_DOUBLE_EQ(RecallAtK(dataset, mixed, 5), 0.6);
}

TEST(PrecisionRecallTest, OrderIrrelevant) {
  data::GaussianDataset dataset = TenItems();
  EXPECT_DOUBLE_EQ(PrecisionAtK(dataset, {5, 6, 7, 8, 9}, 5), 1.0);
}

TEST(KendallTauTest, PerfectAndReversed) {
  data::GaussianDataset dataset = TenItems();
  EXPECT_DOUBLE_EQ(KendallTau(dataset, {9, 8, 7, 6}), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau(dataset, {6, 7, 8, 9}), -1.0);
}

TEST(KendallTauTest, OneSwap) {
  data::GaussianDataset dataset = TenItems();
  // 1 discordant pair of 6 => (5 - 1) / 6.
  EXPECT_NEAR(KendallTau(dataset, {9, 7, 8, 6}), 4.0 / 6.0, 1e-12);
}

TEST(SpearmanFootruleTest, ZeroForPerfectOrder) {
  data::GaussianDataset dataset = TenItems();
  EXPECT_EQ(SpearmanFootrule(dataset, {9, 8, 7, 6, 5}), 0);
}

TEST(SpearmanFootruleTest, AdjacentSwapCostsTwo) {
  data::GaussianDataset dataset = TenItems();
  EXPECT_EQ(SpearmanFootrule(dataset, {8, 9, 7, 6, 5}), 2);
}

TEST(SpearmanFootruleTest, FullReversal) {
  data::GaussianDataset dataset = TenItems();
  // Reversal of 4 items: |0-3| + |1-2| + |2-1| + |3-0| = 8.
  EXPECT_EQ(SpearmanFootrule(dataset, {6, 7, 8, 9}), 8);
}

}  // namespace
}  // namespace crowdtopk::metrics
