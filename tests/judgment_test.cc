// Tests for the comparison process (Algorithms 1 & 5, Hoeffding baseline),
// the judgment cache, and graded aggregation.

#include <memory>

#include "crowd/platform.h"
#include "data/gaussian_dataset.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "judgment/cache.h"
#include "judgment/comparison.h"
#include "judgment/graded.h"
#include "util/random.h"

namespace crowdtopk::judgment {
namespace {

ComparisonOptions DefaultOptions(Estimator estimator = Estimator::kStudent) {
  ComparisonOptions options;
  options.alpha = 0.05;
  options.budget = 1000;
  options.min_workload = 30;
  options.batch_size = 30;
  options.estimator = estimator;
  return options;
}

// Easy pair: scores 0 vs 10, noise 5 => preference mean 0.5, sd 0.25.
data::GaussianDataset EasyPair() {
  return data::GaussianDataset("easy", {0.0, 10.0}, 5.0, 20.0);
}

// Hard pair: scores 0 vs 0.1, noise 5 => mean 0.005, far below resolvable.
data::GaussianDataset HardPair() {
  return data::GaussianDataset("hard", {0.0, 0.1}, 5.0, 20.0);
}

TEST(ComparisonSessionTest, EasyPairResolvesQuicklyAndCorrectly) {
  data::GaussianDataset dataset = EasyPair();
  crowd::CrowdPlatform platform(&dataset, 1);
  ComparisonOptions options = DefaultOptions();
  stats::TCriticalCache t_cache(options.alpha);
  ComparisonSession session(1, 0, &options, &t_cache);
  const auto outcome = session.RunToCompletion(&platform);
  EXPECT_EQ(outcome, crowd::ComparisonOutcome::kLeftWins);
  // mean/sd = 2 => a handful of batches at most.
  EXPECT_LE(session.workload(), 90);
  EXPECT_GE(session.workload(), options.min_workload);
  EXPECT_EQ(platform.total_microtasks(), session.workload());
}

TEST(ComparisonSessionTest, OrientationRespected) {
  data::GaussianDataset dataset = EasyPair();
  crowd::CrowdPlatform platform(&dataset, 2);
  ComparisonOptions options = DefaultOptions();
  stats::TCriticalCache t_cache(options.alpha);
  ComparisonSession session(0, 1, &options, &t_cache);  // worse item left
  EXPECT_EQ(session.RunToCompletion(&platform),
            crowd::ComparisonOutcome::kRightWins);
  EXPECT_LT(session.Mean(), 0.0);
}

TEST(ComparisonSessionTest, HardPairExhaustsBudgetAsTie) {
  data::GaussianDataset dataset = HardPair();
  crowd::CrowdPlatform platform(&dataset, 3);
  ComparisonOptions options = DefaultOptions();
  options.budget = 300;
  stats::TCriticalCache t_cache(options.alpha);
  ComparisonSession session(1, 0, &options, &t_cache);
  const auto outcome = session.RunToCompletion(&platform);
  EXPECT_EQ(outcome, crowd::ComparisonOutcome::kTie);
  EXPECT_TRUE(session.BudgetExhausted());
  EXPECT_EQ(session.workload(), 300);
}

TEST(ComparisonSessionTest, WorkloadNeverExceedsBudget) {
  data::GaussianDataset dataset = HardPair();
  ComparisonOptions options = DefaultOptions();
  options.budget = 100;  // not a multiple of batch 30
  stats::TCriticalCache t_cache(options.alpha);
  crowd::CrowdPlatform platform(&dataset, 4);
  ComparisonSession session(0, 1, &options, &t_cache);
  session.RunToCompletion(&platform);
  EXPECT_EQ(session.workload(), 100);
}

TEST(ComparisonSessionTest, FirstStepBuysColdStartWorkload) {
  data::GaussianDataset dataset = EasyPair();
  ComparisonOptions options = DefaultOptions();
  options.min_workload = 40;
  stats::TCriticalCache t_cache(options.alpha);
  crowd::CrowdPlatform platform(&dataset, 5);
  ComparisonSession session(1, 0, &options, &t_cache);
  session.Step(&platform, 1);  // asks for 1, must get I = 40
  EXPECT_EQ(session.workload(), 40);
}

TEST(ComparisonSessionTest, RoundsMatchBatchCount) {
  data::GaussianDataset dataset = HardPair();
  ComparisonOptions options = DefaultOptions();
  options.budget = 90;
  stats::TCriticalCache t_cache(options.alpha);
  crowd::CrowdPlatform platform(&dataset, 6);
  ComparisonSession session(0, 1, &options, &t_cache);
  session.RunToCompletion(&platform);
  // 90 microtasks in batches of 30 = 3 rounds.
  EXPECT_EQ(platform.rounds(), 3);
}

// The headline statistical guarantee (Section 3.1): when a conclusion is
// reached, it is wrong with probability at most ~alpha.
TEST(ComparisonSessionTest, DecisionAccuracyMeetsConfidence) {
  data::GaussianDataset dataset("pair", {0.0, 1.0}, 2.0, 10.0);
  ComparisonOptions options = DefaultOptions();
  options.alpha = 0.10;
  options.budget = 1 << 20;  // B = infinity, as in Table 3
  stats::TCriticalCache t_cache(options.alpha);
  crowd::CrowdPlatform platform(&dataset, 7);
  int correct = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    ComparisonSession session(1, 0, &options, &t_cache);
    const auto outcome = session.RunToCompletion(&platform);
    ASSERT_NE(outcome, crowd::ComparisonOutcome::kTie);
    if (outcome == crowd::ComparisonOutcome::kLeftWins) ++correct;
  }
  // Expected accuracy >= 1 - alpha = 0.90; allow Monte-Carlo slack.
  EXPECT_GE(correct / static_cast<double>(trials), 0.86);
}

TEST(ComparisonSessionTest, HigherConfidenceCostsMoreWorkload) {
  data::GaussianDataset dataset("pair", {0.0, 1.0}, 3.0, 10.0);
  int64_t workload_90 = 0, workload_99 = 0;
  for (double alpha : {0.10, 0.01}) {
    ComparisonOptions options = DefaultOptions();
    options.alpha = alpha;
    options.budget = 1 << 20;
    options.batch_size = 1;  // fine-grained stopping
    stats::TCriticalCache t_cache(options.alpha);
    crowd::CrowdPlatform platform(&dataset, 8);
    int64_t total = 0;
    for (int t = 0; t < 50; ++t) {
      ComparisonSession session(1, 0, &options, &t_cache);
      session.RunToCompletion(&platform);
      total += session.workload();
    }
    (alpha == 0.10 ? workload_90 : workload_99) = total;
  }
  EXPECT_GT(workload_99, workload_90);
}

TEST(ComparisonSessionTest, SteinAgreesWithStudentOnEasyPair) {
  data::GaussianDataset dataset = EasyPair();
  for (Estimator estimator : {Estimator::kStudent, Estimator::kStein}) {
    ComparisonOptions options = DefaultOptions(estimator);
    stats::TCriticalCache t_cache(options.alpha);
    crowd::CrowdPlatform platform(&dataset, 9);
    ComparisonSession session(1, 0, &options, &t_cache);
    EXPECT_EQ(session.RunToCompletion(&platform),
              crowd::ComparisonOutcome::kLeftWins);
  }
}

TEST(ComparisonSessionTest, SteinAccuracyMeetsConfidence) {
  data::GaussianDataset dataset("pair", {0.0, 1.0}, 2.0, 10.0);
  ComparisonOptions options = DefaultOptions(Estimator::kStein);
  options.alpha = 0.10;
  options.budget = 1 << 20;
  stats::TCriticalCache t_cache(options.alpha);
  crowd::CrowdPlatform platform(&dataset, 10);
  int correct = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    ComparisonSession session(1, 0, &options, &t_cache);
    if (session.RunToCompletion(&platform) ==
        crowd::ComparisonOutcome::kLeftWins) {
      ++correct;
    }
  }
  EXPECT_GE(correct / static_cast<double>(trials), 0.86);
}

TEST(ComparisonSessionTest, HoeffdingUsesBinaryVotesAndCostsMore) {
  data::GaussianDataset dataset("pair", {0.0, 1.0}, 4.0, 10.0);
  // Preference: mean 0.1, sd 0.4 (mean/sd = 0.25) -- a realistically hard
  // comparison; in this regime the binary/Hoeffding workload is ~3x the
  // preference/Student workload (Appendix D; the ratio approaches
  // 2 ln(2/alpha) / (0.637 z^2) ~ 3 as mean/sd -> 0).
  int64_t student_workload = 0, hoeffding_workload = 0;
  for (Estimator estimator : {Estimator::kStudent, Estimator::kHoeffding}) {
    ComparisonOptions options = DefaultOptions(estimator);
    options.budget = 1 << 22;
    options.batch_size = 1;  // compare pure sample complexities
    stats::TCriticalCache t_cache(options.alpha);
    crowd::CrowdPlatform platform(&dataset, 11);
    int64_t total = 0;
    for (int t = 0; t < 20; ++t) {
      ComparisonSession session(1, 0, &options, &t_cache);
      session.RunToCompletion(&platform);
      total += session.workload();
    }
    (estimator == Estimator::kStudent ? student_workload
                                      : hoeffding_workload) = total;
  }
  // Table 3's headline: binary+Hoeffding needs several times the workload.
  EXPECT_GT(hoeffding_workload, 2 * student_workload);
}

TEST(ComparisonSessionTest, AnytimeEstimatorDecidesEasyPairs) {
  data::GaussianDataset dataset = EasyPair();
  ComparisonOptions options = DefaultOptions(Estimator::kAnytime);
  stats::TCriticalCache t_cache(options.alpha);
  crowd::CrowdPlatform platform(&dataset, 30);
  ComparisonSession session(1, 0, &options, &t_cache);
  EXPECT_EQ(session.RunToCompletion(&platform),
            crowd::ComparisonOutcome::kLeftWins);
}

TEST(ComparisonSessionTest, AnytimeNeverFalselyDecidesTiedPairInHorizon) {
  // The anytime guarantee: on an exactly tied pair, the probability of EVER
  // deciding within the horizon is <= alpha (checked with slack).
  data::GaussianDataset tied("tied", {1.0, 1.0}, 2.0, 10.0);
  ComparisonOptions options = DefaultOptions(Estimator::kAnytime);
  options.alpha = 0.05;
  options.budget = 1500;
  options.min_workload = 2;
  stats::TCriticalCache t_cache(options.alpha);
  crowd::CrowdPlatform platform(&tied, 31);
  int decided = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    ComparisonSession session(0, 1, &options, &t_cache);
    while (!session.Finished()) session.Step(&platform, 64);
    if (session.outcome() != crowd::ComparisonOutcome::kTie) ++decided;
  }
  EXPECT_LE(decided, 10);  // alpha = 0.05 plus generous slack
}

TEST(ComparisonSessionTest, StudentPeekingExceedsNominalAlphaOnTiedPair) {
  // The flip side (the peeking problem Algorithm 1 accepts): the fixed-n
  // t-interval, checked after every sample, falsely decides a tied pair far
  // more often than alpha over a long horizon.
  data::GaussianDataset tied("tied", {1.0, 1.0}, 2.0, 10.0);
  ComparisonOptions options = DefaultOptions(Estimator::kStudent);
  options.alpha = 0.05;
  options.budget = 1500;
  options.min_workload = 2;
  stats::TCriticalCache t_cache(options.alpha);
  crowd::CrowdPlatform platform(&tied, 32);
  int decided = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    ComparisonSession session(0, 1, &options, &t_cache);
    while (!session.Finished()) session.Step(&platform, 1);
    if (session.outcome() != crowd::ComparisonOutcome::kTie) ++decided;
  }
  EXPECT_GT(decided, 10);  // empirically ~25-35 of 100
}

TEST(ComparisonSessionTest, DegenerateZeroVarianceDecidesImmediately) {
  // Constant positive preference: sd = 0, must decide at the cold start.
  data::GaussianDataset dataset("const", {0.0, 5.0}, 0.0, 10.0);
  ComparisonOptions options = DefaultOptions();
  stats::TCriticalCache t_cache(options.alpha);
  crowd::CrowdPlatform platform(&dataset, 12);
  ComparisonSession session(1, 0, &options, &t_cache);
  EXPECT_EQ(session.RunToCompletion(&platform),
            crowd::ComparisonOutcome::kLeftWins);
  EXPECT_EQ(session.workload(), options.min_workload);
}

TEST(ComparisonSessionTest, AddSampleForTestDrivesDecision) {
  ComparisonOptions options = DefaultOptions();
  options.min_workload = 5;
  stats::TCriticalCache t_cache(options.alpha);
  ComparisonSession session(0, 1, &options, &t_cache);
  for (int i = 0; i < 5 && !session.Finished(); ++i) {
    session.AddSampleForTest(0.5 + 0.001 * i);
  }
  EXPECT_TRUE(session.Finished());
  EXPECT_EQ(session.outcome(), crowd::ComparisonOutcome::kLeftWins);
}

TEST(RunComparisonTest, ReportsWorkload) {
  data::GaussianDataset dataset = EasyPair();
  ComparisonOptions options = DefaultOptions();
  stats::TCriticalCache t_cache(options.alpha);
  crowd::CrowdPlatform platform(&dataset, 13);
  int64_t workload = 0;
  const auto outcome =
      RunComparison(1, 0, options, &t_cache, &platform, &workload);
  EXPECT_EQ(outcome, crowd::ComparisonOutcome::kLeftWins);
  EXPECT_EQ(workload, platform.total_microtasks());
}

// ------------------------------------------------------------------ Cache

TEST(ComparisonCacheTest, CanonicalOrientation) {
  ComparisonOptions options = DefaultOptions();
  ComparisonCache cache(options);
  auto* session_a = cache.GetSession(7, 3);
  auto* session_b = cache.GetSession(3, 7);
  EXPECT_EQ(session_a, session_b);
  EXPECT_EQ(session_a->left(), 3);
  EXPECT_EQ(cache.num_pairs(), 1);
}

TEST(ComparisonCacheTest, CompareIsFreeOnceResolved) {
  data::GaussianDataset dataset = EasyPair();
  ComparisonCache cache(DefaultOptions());
  crowd::CrowdPlatform platform(&dataset, 14);
  const auto first = cache.Compare(1, 0, &platform);
  EXPECT_EQ(first, crowd::ComparisonOutcome::kLeftWins);
  const int64_t cost_after_first = platform.total_microtasks();
  const int64_t rounds_after_first = platform.rounds();
  // Re-asking (either orientation) costs nothing.
  EXPECT_EQ(cache.Compare(1, 0, &platform),
            crowd::ComparisonOutcome::kLeftWins);
  EXPECT_EQ(cache.Compare(0, 1, &platform),
            crowd::ComparisonOutcome::kRightWins);
  EXPECT_EQ(platform.total_microtasks(), cost_after_first);
  EXPECT_EQ(platform.rounds(), rounds_after_first);
}

TEST(ComparisonCacheTest, EstimatedMeanOrientation) {
  data::GaussianDataset dataset = EasyPair();
  ComparisonCache cache(DefaultOptions());
  crowd::CrowdPlatform platform(&dataset, 15);
  cache.Compare(0, 1, &platform);
  EXPECT_GT(cache.EstimatedMean(1, 0), 0.0);
  EXPECT_LT(cache.EstimatedMean(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(cache.EstimatedMean(1, 0), -cache.EstimatedMean(0, 1));
  EXPECT_GT(cache.EstimatedStdDev(0, 1), 0.0);
  EXPECT_GT(cache.Workload(0, 1), 0);
}

TEST(ComparisonCacheTest, UnsampledPairReportsZero) {
  ComparisonCache cache(DefaultOptions());
  EXPECT_EQ(cache.EstimatedMean(0, 1), 0.0);
  EXPECT_EQ(cache.EstimatedStdDev(0, 1), 0.0);
  EXPECT_EQ(cache.Workload(0, 1), 0);
  EXPECT_FALSE(cache.LikelyBetter(0, 1));
  EXPECT_EQ(cache.FindSession(0, 1), nullptr);
}

TEST(ComparisonCacheTest, LikelyBetterUsesConfirmedOutcome) {
  data::GaussianDataset dataset = EasyPair();
  ComparisonCache cache(DefaultOptions());
  crowd::CrowdPlatform platform(&dataset, 16);
  cache.Compare(0, 1, &platform);
  EXPECT_TRUE(cache.LikelyBetter(1, 0));
  EXPECT_FALSE(cache.LikelyBetter(0, 1));
}

// ------------------------------------------------------------------ Graded

TEST(GradedTest, MeanGradesSeparateItems) {
  data::GaussianDataset dataset("g", {0.0, 50.0, 100.0}, 5.0, 100.0);
  crowd::CrowdPlatform platform(&dataset, 17);
  const std::vector<crowd::ItemId> items = {0, 1, 2};
  const std::vector<double> grades =
      judgment::CollectMeanGrades(items, 60, 30, &platform);
  EXPECT_EQ(platform.total_microtasks(), 180);
  EXPECT_EQ(platform.rounds(), 2);  // 60 grades in batches of 30
  EXPECT_LT(grades[0], grades[1]);
  EXPECT_LT(grades[1], grades[2]);
  const auto ranked = judgment::RankByGrades(items, grades);
  EXPECT_EQ(ranked, (std::vector<crowd::ItemId>{2, 1, 0}));
}

TEST(GradedTest, RankByGradesBreaksTiesById) {
  const std::vector<crowd::ItemId> items = {5, 2, 9};
  const std::vector<double> grades = {0.5, 0.5, 0.5};
  EXPECT_EQ(judgment::RankByGrades(items, grades),
            (std::vector<crowd::ItemId>{2, 5, 9}));
}

}  // namespace
}  // namespace crowdtopk::judgment
