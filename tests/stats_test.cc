// Tests for the statistical substrate: special functions, normal and
// Student-t distributions, binomial tails, Hoeffding bounds, Welford stats.

#include <cmath>
#include <random>
#include <tuple>

#include "gtest/gtest.h"
#include "stats/anytime.h"
#include "stats/binomial.h"
#include "stats/hoeffding.h"
#include "stats/normal.h"
#include "stats/running_stats.h"
#include "stats/special_functions.h"
#include "stats/student_t.h"
#include "util/random.h"

namespace crowdtopk::stats {
namespace {

// ---------------------------------------------------------------- LogBeta

TEST(LogBetaTest, MatchesKnownValues) {
  // B(1, 1) = 1, B(2, 3) = 1/12, B(0.5, 0.5) = pi.
  EXPECT_NEAR(LogBeta(1, 1), 0.0, 1e-12);
  EXPECT_NEAR(LogBeta(2, 3), std::log(1.0 / 12.0), 1e-12);
  EXPECT_NEAR(LogBeta(0.5, 0.5), std::log(M_PI), 1e-12);
}

TEST(LogBetaTest, Symmetry) {
  EXPECT_DOUBLE_EQ(LogBeta(3.7, 9.1), LogBeta(9.1, 3.7));
}

// ------------------------------------------- RegularizedIncompleteBeta

TEST(IncompleteBetaTest, Endpoints) {
  EXPECT_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, UniformCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(IncompleteBetaTest, ClosedFormAOne) {
  // I_x(1, b) = 1 - (1 - x)^b.
  for (double b : {0.5, 2.0, 7.0}) {
    for (double x : {0.05, 0.3, 0.6, 0.95}) {
      EXPECT_NEAR(RegularizedIncompleteBeta(1.0, b, x),
                  1.0 - std::pow(1.0 - x, b), 1e-12)
          << "b=" << b << " x=" << x;
    }
  }
}

TEST(IncompleteBetaTest, SymmetryIdentity) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (double a : {0.7, 2.0, 11.5}) {
    for (double b : {1.3, 4.0, 25.0}) {
      for (double x : {0.1, 0.42, 0.73}) {
        EXPECT_NEAR(RegularizedIncompleteBeta(a, b, x),
                    1.0 - RegularizedIncompleteBeta(b, a, 1.0 - x), 1e-11);
      }
    }
  }
}

TEST(IncompleteBetaTest, MonotoneInX) {
  double previous = -1.0;
  for (double x = 0.0; x <= 1.0; x += 0.01) {
    const double value = RegularizedIncompleteBeta(3.5, 2.5, x);
    EXPECT_GE(value, previous);
    previous = value;
  }
}

TEST(InverseIncompleteBetaTest, RoundTrips) {
  for (double a : {0.6, 1.0, 5.0, 40.0}) {
    for (double b : {0.5, 2.5, 17.0}) {
      for (double p : {0.001, 0.05, 0.5, 0.95, 0.999}) {
        const double x = InverseRegularizedIncompleteBeta(a, b, p);
        EXPECT_NEAR(RegularizedIncompleteBeta(a, b, x), p, 1e-9)
            << "a=" << a << " b=" << b << " p=" << p;
      }
    }
  }
}

// -------------------------------------------------------------- Normal

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.959963984540054), 0.025, 1e-12);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalTest, QuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.99), 2.3263478740408408, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.0013498980316300933), -3.0, 1e-8);
}

TEST(NormalTest, QuantileCdfRoundTrip) {
  for (double p = 0.0005; p < 1.0; p += 0.0101) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-12) << "p=" << p;
  }
}

TEST(NormalTest, PdfIntegratesToCdfDelta) {
  // Trapezoidal integral of the pdf over [-1, 2] equals Phi(2) - Phi(-1).
  const double lo = -1.0, hi = 2.0;
  const int steps = 20000;
  double integral = 0.0;
  for (int s = 0; s < steps; ++s) {
    const double x0 = lo + (hi - lo) * s / steps;
    const double x1 = lo + (hi - lo) * (s + 1) / steps;
    integral += 0.5 * (NormalPdf(x0) + NormalPdf(x1)) * (x1 - x0);
  }
  EXPECT_NEAR(integral, NormalCdf(hi) - NormalCdf(lo), 1e-8);
}

// ------------------------------------------------------------ Student-t

TEST(StudentTTest, CdfSymmetry) {
  for (double df : {1.0, 4.0, 30.0}) {
    for (double t : {0.3, 1.7, 4.2}) {
      EXPECT_NEAR(StudentTCdf(t, df) + StudentTCdf(-t, df), 1.0, 1e-12);
    }
  }
}

TEST(StudentTTest, CdfKnownValuesCauchy) {
  // df = 1 is the Cauchy distribution: F(t) = 1/2 + atan(t)/pi.
  for (double t : {-3.0, -1.0, 0.0, 0.5, 2.0}) {
    EXPECT_NEAR(StudentTCdf(t, 1.0), 0.5 + std::atan(t) / M_PI, 1e-12);
  }
}

TEST(StudentTTest, CriticalValuesMatchTables) {
  // Classic two-sided critical values t_{alpha/2, df}.
  EXPECT_NEAR(StudentTCritical(0.05, 1), 12.706, 2e-3);
  EXPECT_NEAR(StudentTCritical(0.05, 10), 2.228, 1e-3);
  EXPECT_NEAR(StudentTCritical(0.05, 29), 2.045, 1e-3);
  EXPECT_NEAR(StudentTCritical(0.01, 29), 2.756, 1e-3);
  EXPECT_NEAR(StudentTCritical(0.02, 29), 2.462, 1e-3);
  EXPECT_NEAR(StudentTCritical(0.10, 5), 2.015, 1e-3);
}

TEST(StudentTTest, QuantileCdfRoundTrip) {
  for (double df : {2.0, 7.0, 29.0, 500.0}) {
    for (double p : {0.01, 0.2, 0.5, 0.9, 0.995}) {
      EXPECT_NEAR(StudentTCdf(StudentTQuantile(p, df), df), p, 1e-9)
          << "df=" << df << " p=" << p;
    }
  }
}

TEST(StudentTTest, ApproachesNormalForLargeDf) {
  EXPECT_NEAR(StudentTQuantile(0.975, 1e5), NormalQuantile(0.975), 1e-4);
  EXPECT_NEAR(StudentTQuantile(0.975, 1e7), NormalQuantile(0.975), 1e-12);
}

TEST(StudentTTest, CriticalDecreasesWithDf) {
  double previous = StudentTCritical(0.02, 1);
  for (int df = 2; df <= 200; ++df) {
    const double value = StudentTCritical(0.02, df);
    EXPECT_LT(value, previous) << "df=" << df;
    previous = value;
  }
}

TEST(TCriticalCacheTest, MatchesDirectComputation) {
  TCriticalCache cache(0.02);
  for (int64_t df : {1, 2, 29, 30, 999, 5000}) {
    EXPECT_DOUBLE_EQ(cache.Get(df),
                     StudentTCritical(0.02, static_cast<double>(df)));
  }
  // Second lookup hits the cache and must agree.
  EXPECT_DOUBLE_EQ(cache.Get(29), StudentTCritical(0.02, 29.0));
}

TEST(TCriticalCacheTest, HugeDfFallsBackToNormal) {
  TCriticalCache cache(0.05);
  EXPECT_NEAR(cache.Get(int64_t{1} << 21), NormalQuantile(0.975), 1e-12);
}

// ------------------------------------------------------------ Binomial

TEST(BinomialTest, PmfSumsToOne) {
  for (double p : {0.0, 0.2, 0.5, 0.9, 1.0}) {
    double total = 0.0;
    for (int64_t i = 0; i <= 20; ++i) total += BinomialPmf(20, i, p);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(BinomialTest, TailMatchesDirectSum) {
  for (int64_t n : {1, 5, 17, 40}) {
    for (double p : {0.05, 0.37, 0.5, 0.93}) {
      for (int64_t k = 0; k <= n + 1; ++k) {
        EXPECT_NEAR(BinomialTailAtLeast(n, k, p),
                    BinomialTailAtLeastBySum(n, k, p), 1e-10)
            << "n=" << n << " p=" << p << " k=" << k;
      }
    }
  }
}

TEST(BinomialTest, TailEdges) {
  EXPECT_EQ(BinomialTailAtLeast(10, 0, 0.3), 1.0);
  EXPECT_EQ(BinomialTailAtLeast(10, 11, 0.3), 0.0);
  EXPECT_EQ(BinomialTailAtLeast(10, 5, 0.0), 0.0);
  EXPECT_EQ(BinomialTailAtLeast(10, 5, 1.0), 1.0);
}

TEST(BinomialTest, AtMostComplementsAtLeast) {
  for (int64_t k = 0; k <= 12; ++k) {
    EXPECT_NEAR(
        BinomialTailAtMost(12, k, 0.4) + BinomialTailAtLeast(12, k + 1, 0.4),
        1.0, 1e-12);
  }
}

// ----------------------------------------------- Wilson score interval

TEST(WilsonIntervalTest, ContainsPhatAndTightensWithN) {
  double previous_width = 1.0;
  for (int64_t n : {10, 100, 1000, 10000}) {
    const ProportionInterval interval =
        WilsonScoreInterval(3 * n / 10, n, 0.05);
    EXPECT_LT(interval.lo, 0.3);
    EXPECT_GT(interval.hi, 0.3);
    const double width = interval.hi - interval.lo;
    EXPECT_LT(width, previous_width) << "n=" << n;
    previous_width = width;
  }
}

TEST(WilsonIntervalTest, MatchesKnownValue) {
  // Classic worked example: 8/20 successes at 95% confidence.
  const ProportionInterval interval = WilsonScoreInterval(8, 20, 0.05);
  EXPECT_NEAR(interval.lo, 0.2188, 5e-4);
  EXPECT_NEAR(interval.hi, 0.6134, 5e-4);
}

TEST(WilsonIntervalTest, EdgeProportions) {
  // p-hat = 0: the lower bound is exactly 0 but the upper bound must stay
  // strictly positive (zero observed successes never proves p = 0).
  const ProportionInterval none = WilsonScoreInterval(0, 50, 0.05);
  EXPECT_EQ(none.lo, 0.0);
  EXPECT_GT(none.hi, 0.0);
  EXPECT_LT(none.hi, 0.15);
  // p-hat = 1: mirrored.
  const ProportionInterval all = WilsonScoreInterval(50, 50, 0.05);
  EXPECT_EQ(all.hi, 1.0);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_GT(all.lo, 0.85);
  // Symmetry of the two edges around 1/2.
  EXPECT_NEAR(none.hi, 1.0 - all.lo, 1e-12);
}

TEST(WilsonIntervalTest, SingleTrialStaysInformativeAndBounded) {
  for (int64_t successes : {int64_t{0}, int64_t{1}}) {
    const ProportionInterval interval =
        WilsonScoreInterval(successes, 1, 0.05);
    EXPECT_GE(interval.lo, 0.0);
    EXPECT_LE(interval.hi, 1.0);
    EXPECT_LT(interval.lo, interval.hi);  // n = 1 decides nothing
    EXPECT_GT(interval.hi - interval.lo, 0.5);
  }
}

TEST(WilsonIntervalTest, StricterAlphaWidens) {
  const ProportionInterval loose = WilsonScoreInterval(20, 100, 0.1);
  const ProportionInterval strict = WilsonScoreInterval(20, 100, 0.002);
  EXPECT_LT(strict.lo, loose.lo);
  EXPECT_GT(strict.hi, loose.hi);
}

// ------------------------------------------------------------ Hoeffding

TEST(HoeffdingTest, HalfWidthShrinksWithN) {
  double previous = HoeffdingHalfWidth(1, 2.0, 0.05);
  for (int64_t n = 2; n <= 1000; n *= 2) {
    const double width = HoeffdingHalfWidth(n, 2.0, 0.05);
    EXPECT_LT(width, previous);
    previous = width;
  }
}

TEST(HoeffdingTest, RequiredSamplesIsInverse) {
  const double alpha = 0.02;
  const double target = 0.12;
  const int64_t n = HoeffdingRequiredSamples(target, 2.0, alpha);
  EXPECT_LE(HoeffdingHalfWidth(n, 2.0, alpha), target);
  if (n > 1) {
    EXPECT_GT(HoeffdingHalfWidth(n - 1, 2.0, alpha), target);
  }
}

TEST(HoeffdingTest, MatchesPaperEquation3) {
  // Appendix D: n_b = (2 / mu~^2) log(2 / alpha) for votes in {-1, +1}.
  const double mu = 0.3;
  const double alpha = 0.05;
  const double expected = 2.0 / (mu * mu) * std::log(2.0 / alpha);
  EXPECT_EQ(HoeffdingRequiredSamples(mu, 2.0, alpha),
            static_cast<int64_t>(std::ceil(expected)));
}

// -------------------------------------------------------------- Anytime

TEST(AnytimeTest, InactiveBelowTenSamples) {
  EXPECT_TRUE(std::isinf(AnytimeHalfWidth(2, 1.0, 0.05)));
  EXPECT_TRUE(std::isinf(AnytimeHalfWidth(9, 1.0, 0.05)));
  EXPECT_FALSE(std::isinf(AnytimeHalfWidth(10, 1.0, 0.05)));
}

TEST(AnytimeTest, WiderThanFixedNStudentInterval) {
  // The trajectory-wide guarantee must cost width wherever it is active.
  for (int64_t n : {10, 30, 100, 1000, 100000}) {
    const double sd = 1.0;
    const double fixed = StudentTCritical(0.05, static_cast<double>(n - 1)) *
                         sd / std::sqrt(static_cast<double>(n));
    EXPECT_GT(AnytimeHalfWidth(n, sd, 0.05), fixed) << "n=" << n;
  }
}

TEST(AnytimeTest, ShrinksWithNAndScalesWithSd) {
  double previous = AnytimeHalfWidth(10, 1.0, 0.05);
  for (int64_t n = 20; n <= 1 << 20; n *= 2) {
    const double width = AnytimeHalfWidth(n, 1.0, 0.05);
    EXPECT_LT(width, previous);
    previous = width;
  }
  EXPECT_DOUBLE_EQ(AnytimeHalfWidth(100, 2.0, 0.05),
                   2.0 * AnytimeHalfWidth(100, 1.0, 0.05));
  EXPECT_EQ(AnytimeHalfWidth(100, 0.0, 0.05), 0.0);
}

TEST(AnytimeTest, TighterAlphaWiderInterval) {
  EXPECT_GT(AnytimeHalfWidth(50, 1.0, 0.01), AnytimeHalfWidth(50, 1.0, 0.1));
}

TEST(AnytimeTest, CoversTrajectoryOfTrueNull) {
  // Empirical check of the headline property: for mu = 0 Gaussian samples,
  // the running mean stays inside the sequence over a long horizon in all
  // but ~alpha of trajectories. (Monte Carlo; generous threshold.)
  util::Rng rng(123);
  const double alpha = 0.05;
  const int trials = 200;
  const int horizon = 1500;
  int violated = 0;
  for (int t = 0; t < trials; ++t) {
    RunningStats stats;
    bool violation = false;
    for (int n = 0; n < horizon; ++n) {
      stats.Add(rng.Gaussian());
      if (stats.count() >= 2 && stats.StdDev() > 0.0) {
        const double half =
            AnytimeHalfWidth(stats.count(), stats.StdDev(), alpha);
        if (std::fabs(stats.Mean()) > half) {
          violation = true;
          break;
        }
      }
    }
    if (violation) ++violated;
  }
  EXPECT_LE(violated / static_cast<double>(trials), alpha + 0.03);
}

// --------------------------------------------------------- RunningStats

TEST(RunningStatsTest, MatchesNaiveComputation) {
  util::Rng rng(42);
  RunningStats stats;
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Gaussian(3.0, 2.0);
    samples.push_back(x);
    stats.Add(x);
  }
  double mean = 0.0;
  for (double x : samples) mean += x;
  mean /= samples.size();
  double variance = 0.0;
  for (double x : samples) variance += (x - mean) * (x - mean);
  variance /= (samples.size() - 1);
  EXPECT_NEAR(stats.Mean(), mean, 1e-10);
  EXPECT_NEAR(stats.Variance(), variance, 1e-8);
  EXPECT_EQ(stats.count(), 1000);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.Mean(), 0.0);
  EXPECT_EQ(stats.Variance(), 0.0);
  stats.Add(5.0);
  EXPECT_EQ(stats.Mean(), 5.0);
  EXPECT_EQ(stats.Variance(), 0.0);
}

TEST(RunningStatsTest, MergeEqualsConcatenation) {
  util::Rng rng(7);
  RunningStats a, b, all;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.Uniform(-1, 1);
    if (i % 3 == 0) {
      a.Add(x);
    } else {
      b.Add(x);
    }
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-12);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-12);
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(2.0);
  const double mean = a.Mean();
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.Mean(), mean);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_EQ(empty.Mean(), mean);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats stats;
  stats.Add(4.0);
  stats.Reset();
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.Mean(), 0.0);
}

// ----------------------------------------------- Property sweeps (TEST_P)

class TQuantileRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(TQuantileRoundTrip, RoundTrips) {
  const double df = std::get<0>(GetParam());
  const double p = std::get<1>(GetParam());
  EXPECT_NEAR(StudentTCdf(StudentTQuantile(p, df), df), p, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TQuantileRoundTrip,
    ::testing::Combine(::testing::Values(1.0, 2.0, 5.0, 29.0, 100.0, 2000.0),
                       ::testing::Values(0.005, 0.05, 0.25, 0.5, 0.75, 0.95,
                                         0.995)));

class BinomialTailProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(BinomialTailProperty, MonotoneInP) {
  const int n = std::get<0>(GetParam());
  const double p = std::get<1>(GetParam());
  // P(X >= k) is non-increasing in k and non-decreasing in p.
  for (int k = 1; k <= n; ++k) {
    EXPECT_LE(BinomialTailAtLeast(n, k, p), BinomialTailAtLeast(n, k - 1, p));
    EXPECT_LE(BinomialTailAtLeast(n, k, p),
              BinomialTailAtLeast(n, k, std::min(1.0, p + 0.1)) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BinomialTailProperty,
                         ::testing::Combine(::testing::Values(3, 9, 31),
                                            ::testing::Values(0.1, 0.5,
                                                              0.85)));

}  // namespace
}  // namespace crowdtopk::stats
