// Tests for the fault-injection layer: seed-pure worker profiles, the
// documented composition order, pass-through byte-identity at zero rates,
// and bit-identical faulty sweeps for any engine worker count.

#include <cstdint>
#include <vector>

#include "data/gaussian_dataset.h"
#include "exec/run_engine.h"
#include "fault/injector.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace crowdtopk::fault {
namespace {

// Deterministic rng-free base: preference +0.5 iff i < j (crowd_test idiom).
class FixedOracle : public crowd::JudgmentOracle {
 public:
  int64_t num_items() const override { return 8; }
  double PreferenceJudgment(crowd::ItemId i, crowd::ItemId j,
                            util::Rng*) const override {
    return i < j ? 0.5 : -0.5;
  }
  double GradedJudgment(crowd::ItemId i, util::Rng*) const override {
    return static_cast<double>(i) / 8.0;
  }
};

FaultInjectionOracle SingleWorker(const crowd::JudgmentOracle* base,
                                  WorkerFaultProfile profile,
                                  uint64_t seed = 11) {
  return FaultInjectionOracle(base, {profile}, seed);
}

TEST(FaultPlanTest, AnyValueFaultsIgnoresNoShow) {
  FaultPlan plan;
  EXPECT_FALSE(AnyValueFaults(plan));
  plan.no_show_fraction = 0.5;
  EXPECT_FALSE(AnyValueFaults(plan));  // delivery fault, not a value fault
  EXPECT_DOUBLE_EQ(NoShowProbability(plan), 0.5);
  plan.spammer_fraction = 0.01;
  EXPECT_TRUE(AnyValueFaults(plan));
}

TEST(WorkerProfilesTest, PureFunctionOfSeedWithMatchingRates) {
  FaultPlan plan;
  plan.num_workers = 4000;
  plan.spammer_fraction = 0.25;
  plan.adversary_fraction = 0.1;
  plan.lazy_fraction = 0.05;
  const std::vector<WorkerFaultProfile> a = MakeWorkerProfiles(plan, 123);
  const std::vector<WorkerFaultProfile> b = MakeWorkerProfiles(plan, 123);
  ASSERT_EQ(a.size(), 4000u);
  int64_t spam = 0, adversary = 0, lazy = 0, duplicate = 0, differs = 0;
  for (size_t w = 0; w < a.size(); ++w) {
    EXPECT_EQ(a[w].spammer, b[w].spammer);
    EXPECT_EQ(a[w].adversary, b[w].adversary);
    EXPECT_EQ(a[w].lazy, b[w].lazy);
    EXPECT_EQ(a[w].duplicate, b[w].duplicate);
    spam += a[w].spammer;
    adversary += a[w].adversary;
    lazy += a[w].lazy;
    duplicate += a[w].duplicate;
  }
  EXPECT_NEAR(static_cast<double>(spam) / 4000.0, 0.25, 0.03);
  EXPECT_NEAR(static_cast<double>(adversary) / 4000.0, 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(lazy) / 4000.0, 0.05, 0.02);
  EXPECT_EQ(duplicate, 0);
  const std::vector<WorkerFaultProfile> c = MakeWorkerProfiles(plan, 124);
  for (size_t w = 0; w < a.size(); ++w) {
    differs += a[w].spammer != c[w].spammer;
  }
  EXPECT_GT(differs, 0);
}

// The zero-rate injector must consume nothing from the platform stream:
// identical judgments AND an identical downstream rng state.
TEST(FaultInjectionOracleTest, ZeroRatePlanIsByteIdenticalPassThrough) {
  data::GaussianDataset base("pair", {0.0, 1.0}, 2.0, 10.0);
  FaultInjectionOracle injector(&base, FaultPlan{}, 99);
  EXPECT_FALSE(injector.active());
  util::Rng direct(7), wrapped(7);
  for (int t = 0; t < 200; ++t) {
    EXPECT_EQ(base.PreferenceJudgment(0, 1, &direct),
              injector.PreferenceJudgment(0, 1, &wrapped));
    EXPECT_EQ(base.GradedJudgment(1, &direct),
              injector.GradedJudgment(1, &wrapped));
  }
  EXPECT_EQ(direct.NextUint64(), wrapped.NextUint64());
}

TEST(FaultInjectionOracleTest, AdversaryFlipsPreferenceAndReflectsGrade) {
  FixedOracle base;
  const FaultInjectionOracle injector =
      SingleWorker(&base, {.adversary = true});
  EXPECT_TRUE(injector.active());
  util::Rng rng(3);
  for (int t = 0; t < 50; ++t) {
    EXPECT_DOUBLE_EQ(injector.PreferenceJudgment(0, 1, &rng), -0.5);
    EXPECT_DOUBLE_EQ(injector.PreferenceJudgment(1, 0, &rng), 0.5);
    EXPECT_DOUBLE_EQ(injector.GradedJudgment(2, &rng), 1.0 - 2.0 / 8.0);
  }
}

TEST(FaultInjectionOracleTest, LazyCollapsesTowardNeutral) {
  FixedOracle base;
  const FaultInjectionOracle injector = SingleWorker(&base, {.lazy = true});
  util::Rng rng(4);
  for (int t = 0; t < 200; ++t) {
    EXPECT_LE(std::abs(injector.PreferenceJudgment(0, 1, &rng)), 0.02);
    EXPECT_NEAR(injector.GradedJudgment(0, &rng), 0.5, 0.01);
  }
}

TEST(FaultInjectionOracleTest, SpammerIsUniformNoise) {
  FixedOracle base;
  const FaultInjectionOracle injector =
      SingleWorker(&base, {.spammer = true});
  util::Rng rng(5);
  double sum = 0.0;
  bool varies = false;
  double first = injector.PreferenceJudgment(0, 1, &rng);
  for (int t = 0; t < 2000; ++t) {
    const double v = injector.PreferenceJudgment(0, 1, &rng);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
    varies |= v != first;
    sum += v;
  }
  EXPECT_TRUE(varies);
  EXPECT_NEAR(sum / 2000.0, 0.0, 0.1);  // nothing like the honest +0.5
}

// Duplicate workers freeze the first answer per pair, even over a noisy
// base whose honest answers vary draw to draw.
TEST(FaultInjectionOracleTest, DuplicateWorkerResubmitsFrozenAnswer) {
  data::GaussianDataset base("pair", {0.0, 1.0, 2.0}, 2.0, 10.0);
  const FaultInjectionOracle injector =
      SingleWorker(&base, {.duplicate = true});
  util::Rng rng(6);
  const double frozen01 = injector.PreferenceJudgment(0, 1, &rng);
  const double frozen02 = injector.PreferenceJudgment(0, 2, &rng);
  for (int t = 0; t < 50; ++t) {
    EXPECT_DOUBLE_EQ(injector.PreferenceJudgment(0, 1, &rng), frozen01);
    EXPECT_DOUBLE_EQ(injector.PreferenceJudgment(0, 2, &rng), frozen02);
  }
  EXPECT_NE(frozen01, frozen02);
  util::Rng honest(6);
  const double h1 = base.PreferenceJudgment(0, 1, &honest);
  const double h2 = base.PreferenceJudgment(0, 1, &honest);
  EXPECT_NE(h1, h2);  // the base really is noisy; freezing is the injector
}

// Composition order: duplicate -> spammer -> adversary -> lazy, later
// stages win.
TEST(FaultInjectionOracleTest, CompositionOrderLaterStagesWin) {
  FixedOracle base;
  // An adversarial duplicate flips the frozen answer (+0.5 -> -0.5).
  const FaultInjectionOracle dup_adv =
      SingleWorker(&base, {.adversary = true, .duplicate = true});
  // A lazy spammer-adversary still answers near neutral: lazy is last.
  const FaultInjectionOracle all = SingleWorker(
      &base,
      {.spammer = true, .adversary = true, .lazy = true, .duplicate = true});
  util::Rng rng(8);
  for (int t = 0; t < 100; ++t) {
    EXPECT_DOUBLE_EQ(dup_adv.PreferenceJudgment(0, 1, &rng), -0.5);
    EXPECT_LE(std::abs(all.PreferenceJudgment(0, 1, &rng)), 0.02);
  }
}

// The flagship contract: a faulty sweep fanned out on the run engine is
// bit-identical for jobs=1 and jobs=8, sharing one injector across runs.
TEST(FaultInjectionOracleTest, FaultySweepIsBitIdenticalAcrossJobs) {
  data::GaussianDataset base("pair", {0.0, 1.0}, 2.0, 10.0);
  FaultPlan plan;
  plan.num_workers = 50;
  plan.spammer_fraction = 0.3;
  plan.adversary_fraction = 0.1;
  plan.duplicate_fraction = 0.2;
  const FaultInjectionOracle injector(&base, plan, 77);

  const auto sweep = [&](int64_t jobs) {
    exec::RunEngine::Options engine_options;
    engine_options.jobs = jobs;
    exec::RunEngine engine(engine_options);
    return engine.Run(
        {"fault_sweep", 0}, /*runs=*/16, /*master_seed=*/2024,
        [&](int64_t, uint64_t run_seed) {
          util::Rng rng(run_seed);
          std::vector<double> values;
          for (int t = 0; t < 64; ++t) {
            values.push_back(injector.PreferenceJudgment(0, 1, &rng));
          }
          return values;
        });
  };
  const std::vector<std::vector<double>> serial = sweep(1);
  const std::vector<std::vector<double>> parallel = sweep(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t run = 0; run < serial.size(); ++run) {
    ASSERT_EQ(serial[run].size(), parallel[run].size());
    for (size_t t = 0; t < serial[run].size(); ++t) {
      EXPECT_EQ(serial[run][t], parallel[run][t])
          << "run " << run << " draw " << t;
    }
  }
}

}  // namespace
}  // namespace crowdtopk::fault
