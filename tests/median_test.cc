// Tests for the median-selection strategies (Appendix C / Table 10).

#include <algorithm>
#include <numeric>
#include <tuple>
#include <vector>

#include "core/median.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace crowdtopk::core {
namespace {

// Value-backed comparator: item a better than b iff value[a] > value[b].
BetterThan ByValue(const std::vector<double>* value) {
  return [value](ItemId a, ItemId b) { return (*value)[a] > (*value)[b]; };
}

// Ground truth: the (ceil(m/2))-th best item.
ItemId TrueMedian(const std::vector<ItemId>& items,
                  const std::vector<double>& value) {
  std::vector<ItemId> sorted = items;
  std::sort(sorted.begin(), sorted.end(),
            [&](ItemId a, ItemId b) { return value[a] > value[b]; });
  return sorted[(sorted.size() + 1) / 2 - 1];
}

const std::vector<MedianAlgorithm> kAll = {
    MedianAlgorithm::kBubble, MedianAlgorithm::kSelection,
    MedianAlgorithm::kMerge, MedianAlgorithm::kHeap,
    MedianAlgorithm::kQuick};

TEST(MedianTest, SingleItem) {
  const std::vector<double> value = {3.0};
  for (auto algorithm : kAll) {
    const MedianResult result = FindMedian({0}, ByValue(&value), algorithm);
    EXPECT_EQ(result.median, 0);
    EXPECT_EQ(result.comparisons, 0);
  }
}

TEST(MedianTest, ThreeItems) {
  const std::vector<double> value = {1.0, 9.0, 5.0};
  for (auto algorithm : kAll) {
    const MedianResult result =
        FindMedian({0, 1, 2}, ByValue(&value), algorithm);
    EXPECT_EQ(result.median, 2) << MedianAlgorithmName(algorithm);
  }
}

class MedianSweep
    : public ::testing::TestWithParam<std::tuple<MedianAlgorithm, int>> {};

TEST_P(MedianSweep, CorrectAndWithinBound) {
  const MedianAlgorithm algorithm = std::get<0>(GetParam());
  const int m = std::get<1>(GetParam());
  util::Rng rng(1000 + m);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> value(m);
    for (double& v : value) v = rng.Uniform();
    std::vector<ItemId> items(m);
    std::iota(items.begin(), items.end(), 0);
    rng.Shuffle(&items);
    const MedianResult result = FindMedian(items, ByValue(&value), algorithm);
    EXPECT_EQ(result.median, TrueMedian(items, value))
        << MedianAlgorithmName(algorithm) << " m=" << m;
    EXPECT_LE(static_cast<double>(result.comparisons),
              MedianComparisonBound(algorithm, m) + 1e-9)
        << MedianAlgorithmName(algorithm) << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MedianSweep,
    ::testing::Combine(
        ::testing::Values(MedianAlgorithm::kBubble,
                          MedianAlgorithm::kSelection,
                          MedianAlgorithm::kMerge, MedianAlgorithm::kHeap,
                          MedianAlgorithm::kQuick),
        ::testing::Values(2, 3, 5, 8, 15, 31, 64)));

TEST(MedianTest, BoundsMatchTable10Formulas) {
  // Spot-check the closed forms at m = 8.
  EXPECT_DOUBLE_EQ(MedianComparisonBound(MedianAlgorithm::kBubble, 8),
                   (3.0 * 64 + 8 - 2) / 8.0);
  EXPECT_DOUBLE_EQ(MedianComparisonBound(MedianAlgorithm::kQuick, 8),
                   8.0 * 7.0 / 2.0);
  EXPECT_DOUBLE_EQ(MedianComparisonBound(MedianAlgorithm::kMerge, 8),
                   3.0 * 8.0 * 3.0);
  EXPECT_DOUBLE_EQ(MedianComparisonBound(MedianAlgorithm::kHeap, 8),
                   8.0 + 2.0 * 8.0 * 2.0);
}

TEST(MedianTest, QuadraticAlgorithmsCostMoreThanLinearithmicAtScale) {
  util::Rng rng(7);
  const int m = 63;
  std::vector<double> value(m);
  for (double& v : value) v = rng.Uniform();
  std::vector<ItemId> items(m);
  std::iota(items.begin(), items.end(), 0);
  rng.Shuffle(&items);
  const auto bubble =
      FindMedian(items, ByValue(&value), MedianAlgorithm::kBubble);
  const auto heap = FindMedian(items, ByValue(&value), MedianAlgorithm::kHeap);
  EXPECT_GT(bubble.comparisons, heap.comparisons);
}

}  // namespace
}  // namespace crowdtopk::core
