// Tests for the dataset layer: ground truth bookkeeping, the four paper
// dataset generators, subsetting, and the statistical properties the
// algorithms rely on.

#include <algorithm>
#include <cmath>
#include <memory>

#include "data/dataset.h"
#include "data/gaussian_dataset.h"
#include "data/generators.h"
#include "data/histogram_dataset.h"
#include "data/subset_dataset.h"
#include "gtest/gtest.h"
#include "stats/running_stats.h"
#include "util/random.h"

namespace crowdtopk::data {
namespace {

TEST(DatasetTest, TrueOrderSortsByScoreDescending) {
  GaussianDataset dataset("d", {3.0, 1.0, 2.0, 5.0}, 0.1, 10.0);
  const std::vector<ItemId> expected = {3, 0, 2, 1};
  EXPECT_EQ(dataset.TrueOrder(), expected);
  EXPECT_EQ(dataset.TrueRank(3), 1);
  EXPECT_EQ(dataset.TrueRank(1), 4);
  EXPECT_TRUE(dataset.TrueBetter(3, 0));
  EXPECT_FALSE(dataset.TrueBetter(1, 2));
}

TEST(DatasetTest, ScoreTiesBreakById) {
  GaussianDataset dataset("d", {1.0, 1.0, 2.0}, 0.1, 10.0);
  const std::vector<ItemId> expected = {2, 0, 1};
  EXPECT_EQ(dataset.TrueOrder(), expected);
}

TEST(DatasetTest, TrueTopK) {
  GaussianDataset dataset("d", {3.0, 1.0, 2.0, 5.0}, 0.1, 10.0);
  const std::vector<ItemId> top2 = dataset.TrueTopK(2);
  EXPECT_EQ(top2, (std::vector<ItemId>{3, 0}));
}

TEST(GaussianDatasetTest, PreferenceMeanTracksScoreGap) {
  GaussianDataset dataset("d", {0.0, 4.0}, 1.0, 10.0);
  util::Rng rng(1);
  stats::RunningStats v10;  // judgment of (better=1, worse=0)
  for (int t = 0; t < 20000; ++t) {
    v10.Add(dataset.PreferenceJudgment(1, 0, &rng));
  }
  // mean = (4 - 0) / 10 = 0.4; sd = 1/10 = 0.1.
  EXPECT_NEAR(v10.Mean(), 0.4, 0.01);
  EXPECT_NEAR(v10.StdDev(), 0.1, 0.01);
}

TEST(GaussianDatasetTest, PreferenceAntisymmetricInExpectation) {
  GaussianDataset dataset("d", {0.0, 2.0}, 1.0, 10.0);
  util::Rng rng(2);
  stats::RunningStats forward, backward;
  for (int t = 0; t < 20000; ++t) {
    forward.Add(dataset.PreferenceJudgment(1, 0, &rng));
    backward.Add(dataset.PreferenceJudgment(0, 1, &rng));
  }
  EXPECT_NEAR(forward.Mean(), -backward.Mean(), 0.01);
}

TEST(GaussianDatasetTest, JudgmentsClampedToUnitInterval) {
  GaussianDataset dataset("d", {0.0, 100.0}, 50.0, 10.0);  // extreme
  util::Rng rng(3);
  for (int t = 0; t < 1000; ++t) {
    const double v = dataset.PreferenceJudgment(1, 0, &rng);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

// ------------------------------------------------------------ Histogram

TEST(HistogramDatasetTest, WeightedRankFormula) {
  // votes >> K pulls toward the mean; votes << K pulls toward C.
  EXPECT_NEAR(WeightedRank(9.0, 1e9, 25000.0, 6.9), 9.0, 1e-3);
  EXPECT_NEAR(WeightedRank(9.0, 1.0, 25000.0, 6.9), 6.9, 1e-3);
  const double mid = WeightedRank(9.0, 25000.0, 25000.0, 6.9);
  EXPECT_NEAR(mid, (9.0 + 6.9) / 2.0, 1e-9);
  // k_constant == 0 disables the shrinkage.
  EXPECT_EQ(WeightedRank(4.2, 10.0, 0.0, 6.9), 4.2);
}

HistogramDataset MakeTwoItemHistogram() {
  // Item 0: all votes on rating 2. Item 1: all votes on rating 8.
  std::vector<VoteHistogram> histograms(2);
  histograms[0].counts = {0, 100, 0, 0, 0, 0, 0, 0, 0, 0};
  histograms[1].counts = {0, 0, 0, 0, 0, 0, 0, 100, 0, 0};
  HistogramDataset::Options options;
  options.bin_values = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  return HistogramDataset("h", std::move(histograms), std::move(options));
}

TEST(HistogramDatasetTest, DegenerateHistogramsGiveExactJudgments) {
  HistogramDataset dataset = MakeTwoItemHistogram();
  util::Rng rng(4);
  // v(1, 0) = (8 - 2) / 9 always.
  for (int t = 0; t < 100; ++t) {
    EXPECT_DOUBLE_EQ(dataset.PreferenceJudgment(1, 0, &rng), 6.0 / 9.0);
  }
  EXPECT_EQ(dataset.TrueRank(1), 1);
  EXPECT_EQ(dataset.TrueRank(0), 2);
}

TEST(HistogramDatasetTest, GradedJudgmentNormalised) {
  HistogramDataset dataset = MakeTwoItemHistogram();
  util::Rng rng(5);
  EXPECT_DOUBLE_EQ(dataset.GradedJudgment(0, &rng), 1.0 / 9.0);
  EXPECT_DOUBLE_EQ(dataset.GradedJudgment(1, &rng), 7.0 / 9.0);
}

TEST(HistogramDatasetTest, SampleRatingFollowsHistogram) {
  std::vector<VoteHistogram> histograms(1);
  histograms[0].counts = {0, 0, 0, 0, 300, 0, 0, 0, 0, 100};  // 75% 5s, 25% 10s
  HistogramDataset::Options options;
  options.bin_values = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  HistogramDataset dataset("h", std::move(histograms), std::move(options));
  util::Rng rng(6);
  int fives = 0, tens = 0;
  for (int t = 0; t < 40000; ++t) {
    const double r = dataset.SampleRating(0, &rng);
    if (r == 5.0) ++fives;
    if (r == 10.0) ++tens;
  }
  EXPECT_EQ(fives + tens, 40000);
  EXPECT_NEAR(fives / 40000.0, 0.75, 0.02);
}

// ----------------------------------------------------------- Generators

TEST(GeneratorsTest, SizesMatchTable5) {
  EXPECT_EQ(MakeImdbLike(1)->num_items(), 1225);
  EXPECT_EQ(MakeBookLike(1)->num_items(), 537);
  EXPECT_EQ(MakeJesterLike(1)->num_items(), 100);
  EXPECT_EQ(MakePhotoLike(1)->num_items(), 200);
  EXPECT_EQ(MakePeopleAgeLike(1)->num_items(), 100);
}

TEST(GeneratorsTest, DeterministicInSeed) {
  auto a = MakeImdbLike(77);
  auto b = MakeImdbLike(77);
  for (ItemId i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a->TrueScore(i), b->TrueScore(i));
  }
  auto c = MakeImdbLike(78);
  int identical = 0;
  for (ItemId i = 0; i < 50; ++i) {
    if (a->TrueScore(i) == c->TrueScore(i)) ++identical;
  }
  EXPECT_LT(identical, 5);
}

TEST(GeneratorsTest, ImdbJudgmentMeanHasCorrectSign) {
  auto imdb = MakeImdbLike(2);
  util::Rng rng(10);
  const ItemId best = imdb->TrueOrder().front();
  const ItemId worst = imdb->TrueOrder().back();
  stats::RunningStats stats;
  for (int t = 0; t < 5000; ++t) {
    stats.Add(imdb->PreferenceJudgment(best, worst, &rng));
  }
  EXPECT_GT(stats.Mean(), 0.05);
}

TEST(GeneratorsTest, JesterSameUserDifferencing) {
  auto jester = MakeJesterLike(3);
  util::Rng rng(11);
  for (int t = 0; t < 1000; ++t) {
    const double v = jester->PreferenceJudgment(0, 1, &rng);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
  // The best joke should beat the worst in expectation.
  const ItemId best = jester->TrueOrder().front();
  const ItemId worst = jester->TrueOrder().back();
  stats::RunningStats stats;
  for (int t = 0; t < 5000; ++t) {
    stats.Add(jester->PreferenceJudgment(best, worst, &rng));
  }
  EXPECT_GT(stats.Mean(), 0.02);
}

TEST(GeneratorsTest, PhotoRecordsAreLikertQuantised) {
  auto photo = MakePhotoLike(4);
  util::Rng rng(12);
  for (int t = 0; t < 500; ++t) {
    const double v = photo->PreferenceJudgment(3, 77, &rng);
    // 8 Likert levels mapped to {-1, -5/7, ..., 5/7, 1}.
    const double level = (v + 1.0) / 2.0 * 7.0;
    EXPECT_NEAR(level, std::round(level), 1e-9);
  }
}

TEST(GeneratorsTest, PhotoOrientationAntisymmetric) {
  auto photo = MakePhotoLike(4);
  EXPECT_GE(photo->NumRecords(10, 20), 10);
  util::Rng a(5), b(5);
  // Same RNG stream: v(i,j) must be exactly -v(j,i).
  const double forward = photo->PreferenceJudgment(10, 20, &a);
  const double backward = photo->PreferenceJudgment(20, 10, &b);
  EXPECT_DOUBLE_EQ(forward, -backward);
}

TEST(GeneratorsTest, PeopleAgeYoungestRanksFirst) {
  auto people = MakePeopleAgeLike(6);
  // Item 0 has age 1 (the youngest) and must be the true best.
  EXPECT_EQ(people->TrueOrder().front(), 0);
  EXPECT_EQ(people->TrueOrder().back(), 99);
}

TEST(GeneratorsTest, UniformLadderScores) {
  auto ladder = MakeUniformLadder(10, 2.0, 1.0);
  EXPECT_EQ(ladder->num_items(), 10);
  EXPECT_EQ(ladder->TrueOrder().front(), 9);
  EXPECT_DOUBLE_EQ(ladder->TrueScore(4), 8.0);
}

TEST(GeneratorsTest, MakeByNameDispatch) {
  EXPECT_EQ(MakeByName("imdb", 1)->name(), "IMDb");
  EXPECT_EQ(MakeByName("book", 1)->name(), "Book");
  EXPECT_EQ(MakeByName("jester", 1)->name(), "Jester");
  EXPECT_EQ(MakeByName("photo", 1)->name(), "Photo");
  EXPECT_EQ(MakeByName("peopleage", 1)->name(), "PeopleAge");
}

// --------------------------------------------------------------- Subset

TEST(SubsetDatasetTest, RemapsScoresAndJudgments) {
  GaussianDataset parent("p", {1.0, 5.0, 3.0, 4.0}, 0.5, 10.0);
  SubsetDataset subset(&parent, {1, 3});
  EXPECT_EQ(subset.num_items(), 2);
  EXPECT_DOUBLE_EQ(subset.TrueScore(0), 5.0);
  EXPECT_DOUBLE_EQ(subset.TrueScore(1), 4.0);
  EXPECT_EQ(subset.TrueOrder().front(), 0);
  EXPECT_EQ(subset.ToParentId(1), 3);
  util::Rng a(9), b(9);
  EXPECT_DOUBLE_EQ(subset.PreferenceJudgment(0, 1, &a),
                   parent.PreferenceJudgment(1, 3, &b));
}

TEST(SubsetDatasetTest, RandomSubsetHasRequestedSize) {
  auto parent = MakeUniformLadder(50, 1.0, 1.0);
  util::Rng rng(14);
  auto subset = RandomSubset(parent.get(), 20, &rng);
  EXPECT_EQ(subset->num_items(), 20);
  // All parent ids distinct.
  std::vector<ItemId> ids;
  for (ItemId i = 0; i < 20; ++i) ids.push_back(subset->ToParentId(i));
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

}  // namespace
}  // namespace crowdtopk::data
